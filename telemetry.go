package qec

import (
	"context"
	"time"

	"repro/internal/obs"
)

// Telemetry array sizes: the quality tiers (exact, serving) and built-in
// expansion methods (ISKR, PEBC, DeltaF, OR-ISKR, Vector, Lexical,
// Orthogonal) are closed enums, so the metrics below are fixed arrays of
// lock-free histograms — no maps, no registration, nothing to allocate per
// request. Custom backends registered with WithExpander share one extra
// "custom" slot.
const (
	// NumQualities is the number of clustering quality tiers.
	NumQualities = 2
	// NumMethods is the number of built-in expansion methods.
	NumMethods = 7
	// CustomMethodSlot is the shared telemetry slot of all custom backends.
	CustomMethodSlot = NumMethods
	// NumMethodSlots is the per-method metrics array size: the built-in
	// methods plus the custom slot.
	NumMethodSlots = NumMethods + 1
)

// QualityIndex maps a Quality to its metrics slot (0 = exact, 1 = serving).
func QualityIndex(q Quality) int {
	if q == QualityServing {
		return 1
	}
	return 0
}

// QualityLabel names a metrics slot ("exact" / "serving").
func QualityLabel(i int) string {
	if i == 1 {
		return "serving"
	}
	return "exact"
}

// MethodLabel names a method metrics slot in wire form ("iskr", "pebc",
// "deltaf", "or", "vector", "lexical", "orthogonal", and "custom" for the
// shared WithExpander slot).
func MethodLabel(i int) string {
	if i == CustomMethodSlot {
		return "custom"
	}
	if i >= 0 && i < NumMethods {
		return methodRegistry[i].Name
	}
	return "iskr"
}

// ExpansionMetrics aggregates the engine's pipeline telemetry. All fields
// are lock-free obs primitives: recording is wait-free and allocation-free,
// and reading produces mergeable snapshots. Latency histograms cover actual
// pipeline runs only — cache hits and coalesced waits are excluded here and
// measured by the serving layer, which sees user-visible latency per
// endpoint.
type ExpansionMetrics struct {
	// PerQuality and PerMethod are cold-expansion latency histograms keyed
	// by QualityIndex / Method ordinal (custom backends land in the shared
	// CustomMethodSlot).
	PerQuality [NumQualities]obs.Histogram
	PerMethod  [NumMethodSlots]obs.Histogram
	// PerStage holds one latency histogram per pipeline stage.
	PerStage [obs.NumStages]obs.Histogram
	// KMeansRestarts, KMeansIterations and AbandonedRestarts total the
	// lockstep clustering driver's bookkeeping across all runs.
	KMeansRestarts    obs.Counter
	KMeansIterations  obs.Counter
	AbandonedRestarts obs.Counter
}

// observe records one completed pipeline run. slot is the dispatched
// backend's metrics slot, as resolved by backendFor — the Method ordinal
// for built-ins, CustomMethodSlot for custom backends.
func (m *ExpansionMetrics) observe(opts ExpandOptions, slot int, tr *obs.Trace, total time.Duration) {
	m.PerQuality[QualityIndex(opts.Quality)].Observe(total)
	if slot < 0 || slot >= NumMethodSlots {
		slot = 0
	}
	m.PerMethod[slot].Observe(total)
	for s := 0; s < obs.NumStages; s++ {
		if d := tr.Durations[s]; d > 0 {
			m.PerStage[s].Observe(d)
		}
	}
	m.KMeansRestarts.Add(uint64(tr.KMeansRestarts))
	m.KMeansIterations.Add(uint64(tr.KMeansIterations))
	m.AbandonedRestarts.Add(uint64(tr.KMeansAbandoned))
}

// Metrics exposes the engine's telemetry for rendering (the HTTP server's
// /metrics and /stats read it). The returned pointer is live — snapshot the
// histograms to read consistent values. Safe for concurrent use.
func (e *Engine) Metrics() *ExpansionMetrics { return &e.metrics }

// ExpandTraced is Expand with a request trace and cancellation attached:
// per-stage spans, k-means restart bookkeeping and the cache disposition are
// recorded into tr. A nil tr records engine metrics only (Expand delegates
// here with context.Background and nil). On a cache hit or a coalesced wait
// the trace carries the cache state and no stage spans — the pipeline did
// not run for this caller.
//
// Cancellation: ctx is polled at pipeline round boundaries (k-means rounds,
// per-cluster solves); a cancelled run returns ctx.Err() and caches nothing.
// Coalesced callers share the computing leader's fate — if the leader's ctx
// is cancelled, followers get its error too (they are free to retry).
func (e *Engine) ExpandTraced(ctx context.Context, raw string, opts ExpandOptions, tr *obs.Trace) (*Expansion, error) {
	if e.expCache == nil {
		return e.expand(ctx, raw, opts, tr)
	}
	key := e.expandKey(raw, opts)
	if exp, ok := e.expCache.Get(key); ok {
		tr.MarkCache(obs.CacheHit)
		return exp, nil
	}
	exp, err, shared := e.flight.Do(key, func() (*Expansion, error) {
		// Double-check under the flight: a concurrent computation may have
		// landed between our Get miss and Do, and recomputing then would
		// break the one-computation guarantee coalescing exists to give.
		// Peek, not Get — the outer Get already counted this request.
		if exp, ok := e.expCache.Peek(key); ok {
			tr.MarkCache(obs.CacheHit)
			return exp, nil
		}
		exp, err := e.expand(ctx, raw, opts, tr)
		if err == nil {
			e.expCache.Add(key, exp)
		}
		return exp, err
	})
	if shared {
		// This caller's closure never ran; its result came from another
		// caller's in-flight computation.
		tr.MarkCache(obs.CacheCoalesced)
	}
	return exp, err
}
