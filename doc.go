// Package qec is a from-scratch Go implementation of "Query Expansion Based
// on Clustered Results" (Liu, Natarajan, Chen; PVLDB 4(6), 2011).
//
// Given a keyword query over a corpus of text documents or structured
// (entity:attribute:value) products, the library:
//
//  1. retrieves the query's results with a built-in inverted-index search
//     engine (AND semantics, TF-IDF ranking),
//  2. clusters the results with k-means over TF vectors (cosine
//     similarity), and
//  3. generates one expanded query per cluster whose result set is as close
//     to the cluster as possible, maximizing the rank-weighted F-measure —
//     using the paper's ISKR or PEBC algorithms (or the exact-but-slow
//     delta-F variant).
//
// The expanded queries classify the possible interpretations of an
// ambiguous or exploratory query: searching "apple" yields one query per
// meaning (fruit, company, ...) rather than popular words biased toward the
// dominant interpretation.
//
// Quick start:
//
//	e := qec.NewEngine()
//	e.AddText("", "apple fruit orchard harvest ...")
//	e.AddText("", "apple iphone store launch ...")
//	...
//	e.Build()
//	exp, err := e.Expand("apple", qec.ExpandOptions{K: 2})
//	for _, q := range exp.Queries {
//	    fmt.Println(q.Terms, q.F)
//	}
//
// # Serving
//
// The library doubles as an online service. Constructing the engine with
// WithExpansionCache memoizes Expand results in a sharded LRU cache and
// coalesces concurrent identical calls into one computation, so a popular
// ambiguous query costs one k-means + ISKR run regardless of how many
// callers issue it at once:
//
//	e := qec.NewEngine(qec.WithExpansionCache(1024))
//	// ... load corpus, Build ...
//	exp, err := e.Expand("apple", qec.ExpandOptions{K: 3})   // computed
//	exp, err = e.Expand("apple", qec.ExpandOptions{K: 3})    // cache hit
//	fmt.Println(e.CacheStats().HitRate())
//
// Build is idempotent and safe for concurrent callers; see the concurrency
// contract on Engine. The qec-serve command (cmd/qec-serve) wraps the engine
// in a JSON HTTP API — POST /search, POST /expand, GET /healthz, GET /stats,
// GET /metrics — with per-request deadlines, a bounded expansion worker pool
// and graceful shutdown; see README.md for a quick start.
//
// # Expansion paradigms
//
// Every expansion method — the paper's clustered pipeline included — is an
// Expander backend selected per request, so all paradigms share the cache,
// the coalescing layer, per-stage tracing and per-method histograms:
//
//   - Clustered (Method ISKR, PEBC, DeltaF, ORExpansion): the paper's
//     pipeline — k-means over result TF vectors, one expansion problem per
//     cluster, solved by the selected core algorithm. Expansion.Clusters
//     carries the membership; Quality, Interleave and the engine seed apply.
//   - VectorNeighborhood ("vector"): the TF-IDF centroid of the top results
//     ranks neighborhood terms; top non-query terms become single-term
//     expansions measured against the whole neighborhood. The classic
//     pseudo-relevance-feedback baseline — no clustering, no seed.
//   - LexicalSynonym ("lexical"): query terms map through a WordNet-style
//     SynonymSource (WithSynonyms; built-in demo table by default),
//     candidates are analyzer-normalized and vocabulary-filtered, and the
//     corpus F-measure ranks the survivors.
//   - Orthogonal ("orthogonal"): greedy coverage picks mutually dissimilar
//     expansions — each pick is the keyword adding the most yet-uncovered
//     result weight, so suggestions tend to land one per sense without
//     running k-means.
//
// Methods parse from strings with ParseMethod (aliases included; one
// canonical error lists the valid names), enumerate with Methods, and
// select per request via ExpandOptions.Method or ExpandOptions.MethodName.
// Custom backends register with WithExpander and are chosen by MethodName.
//
// Each backend carries its own determinism leg, all pinned by goldens and
// cross-worker tests: the clustered family inherits the bit-identity
// contract below (fixed seed ⇒ identical output at any worker count);
// vector accumulates its centroid in ascending TermID order and ranks with
// a stable sort keyed (weight desc, TermID asc); lexical generates
// candidates in query-then-source order and ranks (F desc, term asc);
// orthogonal's greedy argmax scans keywords in lexicographic pool order
// with a strictly-greater tie-break. The method is a leg of the expansion
// cache key ("m=..."; custom backends get a distinct "x:"-prefixed leg), so
// no two methods can share a cache entry. See docs/EXPANDERS.md for the
// full contract and a walkthrough of writing a backend.
//
// # Performance and determinism
//
// The index is built on a corpus-global term dictionary
// (internal/termdict): every distinct term gets a dense int32 TermID
// assigned in lexicographic order, postings are flat []int32 doc slices
// with aligned []uint16 frequencies in a shared arena keyed by TermID,
// each document's term set is a sorted TermID slice in a second arena, and
// per-term IDF is precomputed at Build. Search resolves query strings to
// TermIDs once per evaluation and intersects raw posting slices with a
// galloping merge; candidate-pool scoring accumulates TF-IDF in a flat
// []float64 indexed by TermID (no string map anywhere on the hot path).
//
// Bounded retrievals (topK > 0) take a max-score/block-max pruned path:
// the index carries a per-term score upper bound and per-128-posting
// block maxima (recomputed from the postings on every Build and Load, so
// the snapshot format is unchanged), and Search drives a bounded top-K
// heap that skips whole blocks (AND) or demotes low-bound terms to
// verification-only (OR) once the heap's floor exceeds what they can
// contribute. The pruning is exact, not approximate: bounds are only
// ever compared strictly against the running threshold, every surviving
// document's score is accumulated in the same order and from the same
// float expressions as the full-scoring path, and ties break on
// ascending DocID exactly as the full sort does — so for every query,
// semantics and topK the pruned result slice is bit-identical to a
// prefix of the full ranking (pinned by a property test over random
// corpora with duplicated documents, and by Validate cross-checking
// every stored bound against the postings).
//
// The clustering hot path runs on sparse points against dense centroids,
// both over the global TermID space. A document's vector shares the index's
// term arena slice directly (no per-run dictionary interning) with its norm
// cached at construction; a k-means centroid is a dense []float64 over the
// vocabulary with its sorted support tracked, so each point·centroid
// distance is a gather over the point's IDs — cells the sparse merge-join
// would skip read an exact 0.0, and adding w·0 to a non-negative partial
// sum never changes its bits, which is why the gather is bit-identical to
// the merge-join it replaced. K-means assignment and the k-means++ D² scan
// execute concurrently across GOMAXPROCS workers with serial index-order
// reductions; restarts advance in deterministic lockstep rounds.
//
// # Clustering quality modes
//
// ExpandOptions.Quality selects the clustering speed/accuracy trade, with a
// distinct determinism contract per mode:
//
//   - QualityExact (default): the full restart budget with every distance
//     computed. Contract: bit identity — for a fixed seed the clustering
//     equals the historical implementation's output down to the last float
//     bit, regardless of worker count (pinned by the kmeans and expansion
//     golden files). Experiments and golden captures always use this mode.
//   - QualityServing: at most two restarts; assignment is Hamerly-style
//     single-bound pruned in chord space (lossless — a property test pins
//     pruned runs to the unpruned clustering bit for bit); and a restart
//     whose running distortion already exceeds the best completed restart
//     is abandoned. Abandonment is the accuracy trade: distortion is not
//     strictly monotone under the cosine/mean update, so occasionally the
//     abandoned restart would have won (never yielding a better-than-exact
//     result — the winner comes from a subset of the identical restarts).
//     Contract: determinism — a fixed seed yields the identical clustering
//     on every run and worker count, because restarts advance in lockstep
//     rounds and abandonment decisions are a pure function of iteration
//     counts, never of goroutine timing.
//
// Quality is part of the expansion cache key (see expandKey), so cached
// engines serve both modes side by side; the server maps the wire field
// "quality" ("exact"/"serving") onto it, with qec-serve -quality supplying
// the fleet default.
//
// The degradation ladder (internal/degrade, docs/DEGRADATION.md) composes
// these contracts rather than weakening them. ExpandOptions.RestartBudget
// and AggressiveAbandon — the knobs tiers T2+ apply — join Quality in the
// cache key, and every (quality, budget, abandon) triple is its own
// deterministic pipeline: a fixed seed yields bit-identical output for a
// given triple on every run and worker count. RestartBudget only ever
// lowers the restart count, so a budgeted run picks its winner from a
// prefix of the identical lockstep restarts; aggressive abandonment
// tightens the serving-mode abandonment threshold, which stays a pure
// function of round counts. The per-tier bit-identity leg is pinned at the
// cluster layer by the tier goldens in internal/cluster and at the wire by
// TestDegradationLadder's per-tier response goldens.
//
// The expansion core works in a problem-local dense ID space: universe
// documents map to 0..n-1 in ascending DocID order, pool keywords intern to
// int32 IDs in lexicographic order, and keyword→document incidence is
// packed into bitsets, so ISKR elimination and PEBC's incremental
// benefit/cost maintenance are word-wise And/AndNot/popcount operations.
// The dense-ID determinism contract has four legs. First, bitset iteration
// is ascending, and a dense ID ascends exactly when its DocID does, so
// visiting members of any set reproduces the sorted-DocID order of the
// original map-backed implementation. Second, every floating-point
// accumulation over a set is a flat left-fold in that ascending order —
// weighted sums never form per-word partial sums, because float addition is
// not associative and regrouping would perturb the low bits that argmax
// tie-breaking epsilons are calibrated against (unweighted sums are exact
// integers and may shortcut to popcounts). Third, argmax scans run in
// keyword-ID (= lexicographic pool) order with the historical tie-break
// rules, and all parallel fan-outs (per-cluster Expand calls, the
// experiment runner) collect results by index. Fourth, global TermIDs are
// assigned in lexicographic order, so iterating a term table in ascending
// TermID order is exactly the sorted-string iteration the historical code
// performed — which makes pool scoring, clustering dot products and
// baseline label sums bit-identical even though no strings are compared.
// Together these make expansion output bit-identical for fixed seeds
// across representations and worker counts — pinned by golden tests
// captured from the pre-refactor implementations and by map-vs-bitset
// property tests.
//
// # Telemetry
//
// The pipeline is instrumented end to end through internal/obs: lock-free
// counters, gauges and log-scale latency histograms (28 power-of-two
// buckets spanning 256ns to ~34s, atomic bins, mergeable snapshots), and a
// pooled per-request Trace recording wall time per pipeline stage
// (parse, search, problem, cluster, solve, assemble), the cache
// disposition, and k-means restart/iteration/abandonment counts.
// Engine.ExpandTraced is Expand plus a trace; Engine.Metrics exposes the
// engine-wide aggregates (per-quality, per-method and per-stage histograms,
// cumulative k-means counters). Instrumentation only reads clocks — traced
// output is bit-identical to untraced output (pinned by
// TestExpandTracedBitIdentical over the full options grid), the traced hot
// path allocates nothing extra, and its overhead is gated in CI within 5%
// ns/op and +0 allocs/op of the uninstrumented cold path.
//
// Engine.ExpandExplained goes beyond timings to the decision trail itself:
// the retrieval leg's pruning counters, each k-means restart's seed,
// iteration count and fate, and per-cluster solver detail — the candidate
// pool with benefit/cost/F per keyword, the picked keywords, the rejected
// alternatives' scores and the move sequence. The trail is strictly
// read-along: collectors observe decisions without participating in them,
// so the explained expansion is bit-identical to the plain one (pinned by
// TestExpandExplainedBitIdentical over the same options grid), and with
// explain off every collector pointer is nil — the off path is branch-only
// and gated in CI at +0 allocs/op and within 5% ns/op of the instrumented
// cold path (BenchmarkExplainOff).
//
// The server renders these as a Prometheus text exposition on GET /metrics
// (validated structurally in CI against a live scrape; includes build info
// and windowed 1m/5m QPS/error/abandon rates from a ring of periodic
// counter snapshots), quantile summaries and the same windowed rates on
// GET /stats, an X-Trace-Id header per request (inbound 16-hex IDs are
// adopted), JSON-lines access and slow-query logs, an inline per-stage
// breakdown on expand responses that set "debug": true, and the full
// explain trail on responses that set "explain": true. A lock-free flight
// recorder retains the most recent completed request records — sampled
// under load, but slow and failed requests always survive — served on
// GET /debug/requests (filterable, plus the in-flight registry) and
// GET /debug/requests/{trace_id}; SIGUSR1 dumps the in-flight registry to
// the access log. With a pprof listener enabled, expansion goroutines
// carry per-stage pprof labels so CPU profiles split by pipeline stage.
// docs/OBSERVABILITY.md is the operator's tour.
//
// # Snapshot versioning
//
// Engine.Save persists the index as a versioned binary snapshot: format
// v2 stores the term dictionary and the postings/doc-term arenas verbatim
// (IDF is recomputed at load — it is a pure function of the stored
// document frequencies). LoadEngine reads v2 directly, migrates legacy v1
// (map-format) snapshots in memory, and fails with a versioned error for
// anything else; every loaded index passes the full Index.Validate
// cross-check (dictionary sorted, offsets monotone, postings and doc
// arenas mutually consistent) before it is used. The decode path is fuzzed
// in CI.
//
// The internal packages implement the full substrate described in DESIGN.md:
// analysis (tokenizer, stopwords, Porter stemmer), index, search, cluster,
// eval, core (ISKR/PEBC), expander (the flat vector/lexical/orthogonal
// backends), baseline (Data Clouds, TFICF cluster
// summarization, query-log suggestion), dataset (synthetic shopping and
// Wikipedia corpora), userstudy (simulated raters), experiment (the
// figure-regeneration harness), cache (sharded LRU + request coalescing),
// obs (counters, histograms, traces, Prometheus exposition) and server (the
// HTTP API).
package qec
