// Package qec is a from-scratch Go implementation of "Query Expansion Based
// on Clustered Results" (Liu, Natarajan, Chen; PVLDB 4(6), 2011).
//
// Given a keyword query over a corpus of text documents or structured
// (entity:attribute:value) products, the library:
//
//  1. retrieves the query's results with a built-in inverted-index search
//     engine (AND semantics, TF-IDF ranking),
//  2. clusters the results with k-means over TF vectors (cosine
//     similarity), and
//  3. generates one expanded query per cluster whose result set is as close
//     to the cluster as possible, maximizing the rank-weighted F-measure —
//     using the paper's ISKR or PEBC algorithms (or the exact-but-slow
//     delta-F variant).
//
// The expanded queries classify the possible interpretations of an
// ambiguous or exploratory query: searching "apple" yields one query per
// meaning (fruit, company, ...) rather than popular words biased toward the
// dominant interpretation.
//
// Quick start:
//
//	e := qec.NewEngine()
//	e.AddText("", "apple fruit orchard harvest ...")
//	e.AddText("", "apple iphone store launch ...")
//	...
//	e.Build()
//	exp, err := e.Expand("apple", qec.ExpandOptions{K: 2})
//	for _, q := range exp.Queries {
//	    fmt.Println(q.Terms, q.F)
//	}
//
// The internal packages implement the full substrate described in DESIGN.md:
// analysis (tokenizer, stopwords, Porter stemmer), index, search, cluster,
// eval, core (ISKR/PEBC), baseline (Data Clouds, TFICF cluster
// summarization, query-log suggestion), dataset (synthetic shopping and
// Wikipedia corpora), userstudy (simulated raters) and experiment (the
// figure-regeneration harness).
package qec
