package qec

import (
	"context"
	"io"
	"strings"

	xp "repro/internal/expander"
	"repro/internal/obs"
)

// Expander is the pluggable expansion backend contract: given the shared
// parse + search preamble's output, produce one Expansion. The engine
// dispatches to a backend per request — the four clustered-pipeline methods
// (ISKR, PEBC, DeltaF, OR-ISKR), the three alternative paradigms (vector,
// lexical, orthogonal), or a custom backend registered with WithExpander.
//
// The backend contract (docs/EXPANDERS.md spells out each leg):
//
//   - Determinism: Expand must be a pure function of (corpus, query,
//     options, seed) — bit-identical output on every run and worker count.
//   - Cache keying: a backend is identified by its Name in the expansion
//     cache key, so two backends can never share a cached entry; a backend
//     whose output depends on state outside (corpus, query, options, seed)
//     breaks caching and must not be registered on cached engines.
//   - Quality: backends that do not cluster ignore Opts.Quality; the engine
//     still keys the cache on it.
//   - Telemetry: stage spans recorded through the trace must reuse the
//     pipeline stage names (parse/search/problem/cluster/solve/assemble);
//     custom backends are accounted wholly to the solve stage.
type Expander interface {
	// Name returns the backend's method string: its telemetry label, its
	// cache-key leg, and the name ExpandOptions.MethodName selects it by.
	Name() string
	// Expand generates the expansion for one request. The input arrives by
	// value and its slices must be treated as read-only.
	Expand(in ExpandInput) (*Expansion, error)
}

// ExpandInput is what the engine hands a backend: the parsed query and its
// ranked results (the shared parse + search preamble has already run — the
// query is non-empty and Results is non-empty), plus the request options
// and the engine itself for corpus access.
type ExpandInput struct {
	// Engine is the serving engine (index built).
	Engine *Engine
	// Query is the parsed user query.
	Query Query
	// Results are the ranked hits, already cut to Opts.TopK.
	Results []Result
	// Opts is the request's options. K may be zero (meaning 3) — use
	// in.SuggestionCount for the resolved value.
	Opts ExpandOptions
	// Seed is the engine's deterministic seed.
	Seed int64

	// ctx is the request's cancellation signal (never nil — the engine
	// defaults it to context.Background). Backends may poll it at natural
	// round boundaries to stop early; a run cut short must return an error,
	// never a partial Expansion, so cancelled work is not cached.
	ctx context.Context
	// trace carries the per-request stage spans; built-in adapters record
	// into it and custom backends are spanned by the engine.
	trace *obs.Trace
	// explain, when non-nil, asks the backend to fill the decision trail as
	// it goes. Collection must be read-along only: the expansion returned
	// with an explain attached must be bit-identical to one without.
	explain *Explain
}

// Context returns the request's cancellation context (never nil).
func (in ExpandInput) Context() context.Context {
	if in.ctx != nil {
		return in.ctx
	}
	return context.Background()
}

// SuggestionCount resolves Opts.K against its default (3).
func (in ExpandInput) SuggestionCount() int {
	if in.Opts.K > 0 {
		return in.Opts.K
	}
	return 3
}

// SynonymSource supplies synonym candidates for the lexical backend. See
// NewSynonymTable and LoadSynonyms for the in-memory and file-backed
// implementations; implementations must return sorted, self-free slices and
// be deterministic call-to-call.
type SynonymSource = xp.SynonymSource

// NewSynonymTable builds an in-memory SynonymSource from a headword →
// synonyms map (entries are lowercased, deduplicated and sorted).
func NewSynonymTable(raw map[string][]string) SynonymSource { return xp.NewTable(raw) }

// LoadSynonyms parses a synonym file (lines of "head: syn1, syn2" or
// symmetric groups "a, b, c"; #-comments) into a SynonymSource.
func LoadSynonyms(r io.Reader) (SynonymSource, error) { return xp.LoadTable(r) }

// WithSynonyms sets the engine's synonym source for the lexical backend
// (default: a small built-in demo table).
func WithSynonyms(src SynonymSource) Option {
	return func(e *Engine) { e.synonyms = src }
}

// WithExpander registers a custom backend under its Name (lowercased).
// Requests select it with ExpandOptions.MethodName; the custom registry is
// checked before the built-in method names, so a custom backend may shadow
// a built-in (its cache-key leg stays distinct). The backend must honor the
// Expander contract; its whole run is accounted to the solve stage and the
// "custom" telemetry slot.
func WithExpander(x Expander) Option {
	return func(e *Engine) {
		if e.custom == nil {
			e.custom = make(map[string]Expander)
		}
		e.custom[strings.ToLower(strings.TrimSpace(x.Name()))] = customAdapter{x}
	}
}

// MethodInfo describes one built-in expansion method for the registry-driven
// surfaces: ParseMethod's error, qec-expand -method=help, and the docs
// consistency check.
type MethodInfo struct {
	// Method is the enum value.
	Method Method
	// Name is the canonical wire string ("iskr", "vector", ...).
	Name string
	// Aliases also parse to this method.
	Aliases []string
	// Summary is a one-line description.
	Summary string
	// Paradigm groups the method ("clustered", "vector", "lexical",
	// "coverage").
	Paradigm string
	// Clusters reports whether the method emits per-cluster queries (and
	// fills Expansion.Clusters).
	Clusters bool
	// UsesQuality reports whether Opts.Quality changes the output.
	UsesQuality bool
	// UsesSeed reports whether the engine seed changes the output.
	UsesSeed bool
	// UsesSynonyms reports whether the engine's SynonymSource feeds the
	// method.
	UsesSynonyms bool
}

// methodRegistry is the single source of truth for the built-in methods:
// ParseMethod, MethodNames, the help matrix and the docs-consistency test
// all derive from it. Indexed by Method ordinal (compile-enforced size).
var methodRegistry = [NumMethods]MethodInfo{
	ISKR: {
		Method: ISKR, Name: "iskr",
		Summary:  "iterative single-keyword refinement per cluster (paper §3; default)",
		Paradigm: "clustered", Clusters: true, UsesQuality: true, UsesSeed: true,
	},
	PEBC: {
		Method: PEBC, Name: "pebc",
		Summary:  "partial-elimination convergence per cluster (paper §4)",
		Paradigm: "clustered", Clusters: true, UsesQuality: true, UsesSeed: true,
	},
	DeltaF: {
		Method: DeltaF, Name: "deltaf", Aliases: []string{"delta-f", "fmeasure", "f-measure"},
		Summary:  "exact delta-F keyword values per cluster (paper's F-measure variant)",
		Paradigm: "clustered", Clusters: true, UsesQuality: true, UsesSeed: true,
	},
	ORExpansion: {
		Method: ORExpansion, Name: "or", Aliases: []string{"oriskr", "or-iskr"},
		Summary:  "OR-semantics cluster coverage (paper appendix)",
		Paradigm: "clustered", Clusters: true, UsesQuality: true, UsesSeed: true,
	},
	VectorNeighborhood: {
		Method: VectorNeighborhood, Name: "vector", Aliases: []string{"vector-neighborhood", "neighborhood"},
		Summary:  "TF-IDF neighborhood-centroid terms of the top results",
		Paradigm: "vector",
	},
	LexicalSynonym: {
		Method: LexicalSynonym, Name: "lexical", Aliases: []string{"lexical-synonym", "synonym", "wordnet"},
		Summary:  "WordNet-style synonyms of the query terms, F-ranked in-corpus",
		Paradigm: "lexical", UsesSynonyms: true,
	},
	Orthogonal: {
		Method: Orthogonal, Name: "orthogonal", Aliases: []string{"ortho"},
		Summary:  "mutually dissimilar expansions by greedy result coverage",
		Paradigm: "coverage",
	},
}

// Methods lists the built-in expansion methods in Method-ordinal order.
func Methods() []MethodInfo {
	out := make([]MethodInfo, NumMethods)
	copy(out, methodRegistry[:])
	return out
}

// MethodNames lists the canonical method strings in Method-ordinal order.
func MethodNames() []string {
	out := make([]string, NumMethods)
	for i, mi := range methodRegistry {
		out[i] = mi.Name
	}
	return out
}

// builtinExpanders holds one pre-converted adapter per built-in method, so
// dispatch costs an array load — no per-request interface conversion (the
// cold-expansion benchmark pins zero instrumentation allocations).
var builtinExpanders = [NumMethods]Expander{
	ISKR:               clusteredExpander{ISKR},
	PEBC:               clusteredExpander{PEBC},
	DeltaF:             clusteredExpander{DeltaF},
	ORExpansion:        clusteredExpander{ORExpansion},
	VectorNeighborhood: vectorExpander{},
	LexicalSynonym:     lexicalExpander{},
	Orthogonal:         orthogonalExpander{},
}

// backendFor resolves a request's options to its backend and telemetry
// slot. MethodName (when set) overrides Method: the custom registry is
// checked first, then the built-in names/aliases; unknown names get
// ParseMethod's canonical error. A plain Method outside the enum clamps to
// ISKR, matching the historical switch default.
func (e *Engine) backendFor(opts ExpandOptions) (Expander, int, error) {
	if opts.MethodName != "" {
		name := strings.ToLower(strings.TrimSpace(opts.MethodName))
		if x, ok := e.custom[name]; ok {
			return x, CustomMethodSlot, nil
		}
		m, err := ParseMethod(name)
		if err != nil {
			return nil, 0, err
		}
		return builtinExpanders[m], int(m), nil
	}
	m := opts.Method
	if m < 0 || m >= NumMethods {
		m = ISKR
	}
	return builtinExpanders[m], int(m), nil
}

// methodLeg is the cache key's method component. Built-in methods use their
// canonical label (aliases and the Method/MethodName spellings of the same
// method share an entry); custom backends get an "x:"-prefixed leg so they
// can never collide with a built-in of the same name.
func (e *Engine) methodLeg(opts ExpandOptions) string {
	if opts.MethodName != "" {
		name := strings.ToLower(strings.TrimSpace(opts.MethodName))
		if _, ok := e.custom[name]; ok {
			return "x:" + name
		}
		if m, err := ParseMethod(name); err == nil {
			return MethodLabel(int(m))
		}
		// Unknown names error out of expand before anything is cached; the
		// leg only needs to be non-colliding.
		return "bad:" + name
	}
	return MethodLabel(int(opts.Method))
}

// synonymSource resolves the engine's synonym source (nil → the built-in
// demo table).
func (e *Engine) synonymSource() SynonymSource {
	if e.synonyms != nil {
		return e.synonyms
	}
	return defaultSynonyms
}

// defaultSynonyms is built once — the table is immutable by convention.
var defaultSynonyms = xp.DefaultSynonyms()

// input converts the public ExpandInput to the internal backend input.
func (in ExpandInput) input() *xp.Input {
	e := in.Engine
	return &xp.Input{
		Idx:        e.idx,
		Eng:        e.eng,
		Query:      in.Query,
		Results:    in.Results,
		K:          in.SuggestionCount(),
		Unweighted: in.Opts.Unweighted,
		Seed:       in.Seed,
		Synonyms:   e.synonymSource(),
		Trace:      in.trace,
	}
}

// assembleFlat converts an internal backend output to the public Expansion
// under the assemble span. Non-clustered backends leave Clusters nil; the
// Cluster ordinal is the suggestion's rank.
func assembleFlat(in ExpandInput, o *xp.Output) (*Expansion, error) {
	tr := in.trace
	tr.Begin(obs.StageAssemble)
	out := &Expansion{Original: in.Query.Terms, Score: o.Score}
	for i, s := range o.Suggestions {
		out.Queries = append(out.Queries, ExpandedQuery{
			Terms:     s.Terms,
			Cluster:   i,
			Precision: s.PRF.Precision,
			Recall:    s.PRF.Recall,
			F:         s.PRF.F,
		})
	}
	tr.End(obs.StageAssemble)
	return out, nil
}

// vectorExpander adapts the internal vector-neighborhood backend.
type vectorExpander struct{}

func (vectorExpander) Name() string { return methodRegistry[VectorNeighborhood].Name }
func (vectorExpander) Expand(in ExpandInput) (*Expansion, error) {
	return assembleFlat(in, xp.Vector{}.Expand(in.input()))
}

// lexicalExpander adapts the internal lexical-synonym backend.
type lexicalExpander struct{}

func (lexicalExpander) Name() string { return methodRegistry[LexicalSynonym].Name }
func (lexicalExpander) Expand(in ExpandInput) (*Expansion, error) {
	return assembleFlat(in, xp.Lexical{}.Expand(in.input()))
}

// orthogonalExpander adapts the internal orthogonal backend.
type orthogonalExpander struct{}

func (orthogonalExpander) Name() string { return methodRegistry[Orthogonal].Name }
func (orthogonalExpander) Expand(in ExpandInput) (*Expansion, error) {
	return assembleFlat(in, xp.Orthogonal{}.Expand(in.input()))
}

// customAdapter wraps a WithExpander-registered backend so its whole run is
// accounted to the solve stage (custom code cannot reach the trace).
type customAdapter struct{ x Expander }

func (c customAdapter) Name() string { return c.x.Name() }
func (c customAdapter) Expand(in ExpandInput) (*Expansion, error) {
	tr := in.trace
	tr.Begin(obs.StageSolve)
	out, err := c.x.Expand(in)
	tr.End(obs.StageSolve)
	return out, err
}
