package qec_test

import (
	"fmt"
	"slices"

	qec "repro"
)

// exampleEngine builds the doc.go "apple" corpus: four documents per sense
// (fruit, company), so every expansion paradigm has signal to work with.
func exampleEngine(opts ...qec.Option) *qec.Engine {
	e := qec.NewEngine(opts...)
	for _, body := range []string{
		"apple fruit orchard harvest",
		"apple fruit pie cider",
		"apple fruit tree juice",
		"apple fruit crop farm",
		"apple company iphone launch",
		"apple company store retail",
		"apple company laptop software",
		"apple company stock shares",
	} {
		e.AddText("", body)
	}
	return e
}

// Method strings parse case-insensitively, aliases included; unknown names
// get one canonical error enumerating every valid method.
func ExampleParseMethod() {
	m, _ := qec.ParseMethod("wordnet") // alias of "lexical"
	fmt.Println(m)
	_, err := qec.ParseMethod("nope")
	fmt.Println(err)
	// Output:
	// Lexical
	// qec: unknown method "nope" (valid: iskr, pebc, deltaf, or, vector, lexical, orthogonal)
}

// The vector-neighborhood backend suggests the TF-IDF-heaviest terms of the
// result neighborhood — no clustering stage, so Expansion.Clusters is nil.
func ExampleEngine_Expand_vector() {
	e := exampleEngine()
	exp, err := e.Expand("apple", qec.ExpandOptions{K: 2, Method: qec.VectorNeighborhood})
	if err != nil {
		panic(err)
	}
	for _, q := range exp.Queries {
		fmt.Println(q.Terms)
	}
	fmt.Println("clusters:", exp.Clusters == nil)
	// Output:
	// [apple company]
	// [apple fruit]
	// clusters: true
}

// The lexical backend expands through a synonym source: candidates come
// from the thesaurus, the corpus F-measure picks the useful ones.
func ExampleWithSynonyms() {
	src := qec.NewSynonymTable(map[string][]string{
		"apple": {"fruit", "company", "granny smith"},
	})
	e := exampleEngine(qec.WithSynonyms(src))
	exp, err := e.Expand("apple", qec.ExpandOptions{K: 2, MethodName: "lexical"})
	if err != nil {
		panic(err)
	}
	for _, q := range exp.Queries {
		fmt.Println(q.Terms)
	}
	// Output:
	// [apple company]
	// [apple fruit]
}

// reverseExpander is the smallest complete custom backend: deterministic,
// allocation-light, and honest about its (trivial) scoring. Real backends
// follow the same shape — read ExpandInput, return an Expansion.
type reverseExpander struct{}

func (reverseExpander) Name() string { return "reverse" }

func (reverseExpander) Expand(in qec.ExpandInput) (*qec.Expansion, error) {
	terms := slices.Clone(in.Query.Terms)
	slices.Reverse(terms)
	return &qec.Expansion{
		Original: in.Query.Terms,
		Queries:  []qec.ExpandedQuery{{Terms: terms}},
		Score:    1,
	}, nil
}

// Custom backends register at construction and are selected per request by
// MethodName; their results are cached under an "x:"-prefixed cache-key leg
// that can never collide with a built-in method.
func ExampleWithExpander() {
	e := exampleEngine(qec.WithExpander(reverseExpander{}))
	exp, err := e.Expand("apple fruit", qec.ExpandOptions{MethodName: "reverse"})
	if err != nil {
		panic(err)
	}
	fmt.Println(exp.Queries[0].Terms)
	// Output: [fruit apple]
}

// Methods is the registry behind ParseMethod, qec-expand -method=help and
// the docs-consistency test: one row per built-in method.
func ExampleMethods() {
	for _, mi := range qec.Methods() {
		fmt.Printf("%-10s %s\n", mi.Name, mi.Paradigm)
	}
	// Output:
	// iskr       clustered
	// pebc       clustered
	// deltaf     clustered
	// or         clustered
	// vector     vector
	// lexical    lexical
	// orthogonal coverage
}
