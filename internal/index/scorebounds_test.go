package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
)

// multiBlockIndex builds a corpus where the shared term's posting list spans
// several score blocks, with varied frequencies and document lengths so the
// per-block maxima actually differ.
func multiBlockIndex(t *testing.T) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	c := document.NewCorpus()
	for d := 0; d < 3*ScoreBlockSize+17; d++ {
		text := "common"
		for r := rng.Intn(4); r > 0; r-- {
			text += " common"
		}
		for p := rng.Intn(6); p > 0; p-- {
			text += fmt.Sprintf(" filler%d", rng.Intn(20))
		}
		c.AddText("", text)
	}
	return Build(c, analysis.Simple())
}

func TestScoreBoundsMultiBlock(t *testing.T) {
	idx := multiBlockIndex(t)
	if err := idx.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tid, ok := idx.Dict().Lookup("common")
	if !ok {
		t.Fatal("common missing from dictionary")
	}
	docs := idx.PostingsDocs(tid)
	freqs := idx.PostingsFreqs(tid)
	blocks := idx.BlockMaxScores(tid)
	wantBlocks := (len(docs) + ScoreBlockSize - 1) / ScoreBlockSize
	if wantBlocks < 4 {
		t.Fatalf("corpus too small: %d postings span %d blocks, want >= 4", len(docs), wantBlocks)
	}
	if len(blocks) != wantBlocks {
		t.Fatalf("BlockMaxScores has %d blocks for %d postings, want %d", len(blocks), len(docs), wantBlocks)
	}
	// Every posting's contribution is bounded by its block max, every block
	// max is attained by a member, and the term max is the max over blocks.
	tmax := 0.0
	for b, bm := range blocks {
		lo, hi := b*ScoreBlockSize, min((b+1)*ScoreBlockSize, len(docs))
		attained := false
		for i := lo; i < hi; i++ {
			c := idx.postingScoreBound(docs[i], freqs[i], tid)
			if c > bm {
				t.Fatalf("block %d: contribution %v of doc %d exceeds block max %v", b, c, docs[i], bm)
			}
			if c == bm {
				attained = true
			}
		}
		if !attained {
			t.Errorf("block %d: max %v not attained by any member", b, bm)
		}
		tmax = max(tmax, bm)
	}
	if got := idx.TermMaxScore(tid); got != tmax {
		t.Errorf("TermMaxScore = %v, want max over blocks %v", got, tmax)
	}
}

func TestScoreBoundsSurviveSnapshot(t *testing.T) {
	idx := multiBlockIndex(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, analysis.Simple())
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot format does not carry the bound tables; Load recomputes
	// them and must land on the same values bit for bit.
	if !reflect.DeepEqual(loaded.termMaxScore, idx.termMaxScore) {
		t.Error("termMaxScore differs after Save/Load round trip")
	}
	if !reflect.DeepEqual(loaded.blockMax, idx.blockMax) {
		t.Error("blockMax differs after Save/Load round trip")
	}
	if !reflect.DeepEqual(loaded.blockOff, idx.blockOff) {
		t.Error("blockOff differs after Save/Load round trip")
	}
}

func TestValidateDetectsUnderstatedBlockMax(t *testing.T) {
	// A too-small block max no longer bounds its members — the corruption
	// that would make pruning skip documents that belong in the top K.
	corrupt(t, "below member contribution", func(idx *Index) {
		idx.blockMax[0] /= 2
	})
}

func TestValidateDetectsOverstatedBlockMax(t *testing.T) {
	corrupt(t, "block max", func(idx *Index) {
		idx.blockMax[0] *= 2
	})
}

func TestValidateDetectsTermMaxScoreDrift(t *testing.T) {
	corrupt(t, "termMaxScore", func(idx *Index) {
		idx.termMaxScore[0] *= 2
	})
}

func TestValidateDetectsBlockOffSpanDrift(t *testing.T) {
	corrupt(t, "blocks", func(idx *Index) {
		idx.blockOff[len(idx.blockOff)-1]++
	})
}

func TestValidateDetectsMissingScoreBounds(t *testing.T) {
	corrupt(t, "termMaxScore", func(idx *Index) {
		idx.termMaxScore = nil
	})
}

// TestScoreBoundsEmptyIndex pins that a term-free index still carries
// well-formed (empty) bound tables.
func TestScoreBoundsEmptyIndex(t *testing.T) {
	idx := Build(document.NewCorpus(), analysis.Simple())
	if err := idx.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(idx.termMaxScore) != 0 || len(idx.blockMax) != 0 {
		t.Errorf("empty index has %d term maxima, %d block maxima", len(idx.termMaxScore), len(idx.blockMax))
	}
}
