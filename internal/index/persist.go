package index

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/document"
)

// persistVersion guards the on-disk format; bump on incompatible change.
const persistVersion = 1

// snapshot is the gob-encoded form of an index together with its corpus.
// The analyzer is not serialized (it contains function values); the loader
// receives it explicitly and the snapshot records only which standard
// pipeline was used, as a consistency check.
type snapshot struct {
	Version  int
	Docs     []document.Document
	Postings map[string]PostingList
	DocTerms map[document.DocID][]string
	DocLen   map[document.DocID]int
	TotalLen int
}

// encodeSnapshot writes a raw snapshot; split out so tests can craft
// version-mismatched streams.
func encodeSnapshot(w io.Writer, snap *snapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}

// Save writes the index (including its corpus) to w in gob format.
func (idx *Index) Save(w io.Writer) error {
	snap := snapshot{
		Version:  persistVersion,
		Postings: idx.postings,
		DocTerms: idx.docTerms,
		DocLen:   idx.docLen,
		TotalLen: idx.totalLen,
	}
	for _, d := range idx.corpus.Docs() {
		snap.Docs = append(snap.Docs, *d)
	}
	if err := encodeSnapshot(w, &snap); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save. The analyzer must be the
// same pipeline the index was built with; queries analyzed differently will
// not match the stored postings.
func Load(r io.Reader, analyzer *analysis.Analyzer) (*Index, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("index: load: unsupported snapshot version %d", snap.Version)
	}
	corpus := document.NewCorpus()
	for i := range snap.Docs {
		d := snap.Docs[i]
		corpus.Add(&d)
	}
	idx := &Index{
		corpus:   corpus,
		analyzer: analyzer,
		postings: snap.Postings,
		docTerms: snap.DocTerms,
		docLen:   snap.DocLen,
		totalLen: snap.TotalLen,
	}
	if idx.postings == nil {
		idx.postings = map[string]PostingList{}
	}
	if idx.docTerms == nil {
		idx.docTerms = map[document.DocID][]string{}
	}
	if idx.docLen == nil {
		idx.docLen = map[document.DocID]int{}
	}
	// The snapshot format (version 1) does not carry the aligned frequency
	// slices; rebuild them from the postings once at load time.
	idx.docFreqs = make(map[document.DocID][]int, len(idx.docTerms))
	for id, terms := range idx.docTerms {
		freqs := make([]int, len(terms))
		for i, term := range terms {
			freqs[i] = idx.postings[term].Freq(id)
		}
		idx.docFreqs[id] = freqs
	}
	if err := idx.Validate(); err != nil {
		return nil, fmt.Errorf("index: load: corrupt snapshot: %w", err)
	}
	return idx, nil
}
