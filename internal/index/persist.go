package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/termdict"
)

// persistVersion guards the on-disk format; bump on incompatible change.
//
// Version history:
//
//	1 — gob maps: Postings map[string]PostingList, DocTerms
//	    map[document.DocID][]string, DocLen map. Read path: migrated to the
//	    arena layout at load.
//	2 — termdict + arenas: the dictionary's sorted vocabulary plus the flat
//	    postings/doc-terms slices and their offset tables, exactly the
//	    in-memory layout. Written by Save; IDF is recomputed at load (it is
//	    a pure function of the stored document frequencies).
const persistVersion = 2

// snapshot is the gob-encoded form of an index together with its corpus.
// The analyzer is not serialized (it contains function values); the loader
// receives it explicitly. The struct carries the fields of every readable
// version — gob ignores stream fields the decoder's struct lacks and leaves
// absent fields zero, so one decode works for both v1 and v2 streams and
// Version selects the interpretation.
type snapshot struct {
	Version int
	Docs    []document.Document

	// Version 2: dictionary + arenas (the in-memory layout).
	Terms      []string
	PostDocs   []int32
	PostFreqs  []uint16
	PostOff    []int32
	DocTermIDs []int32
	DocFreqs   []uint16
	DocOff     []int32
	DocLens    []int32
	TotalLen   int

	// Version 1 legacy fields (read path only).
	Postings map[string]PostingList
	DocTerms map[document.DocID][]string
	DocLen   map[document.DocID]int
}

// encodeSnapshot writes a raw snapshot; split out so tests can craft
// version-mismatched streams.
func encodeSnapshot(w io.Writer, snap *snapshot) error {
	return gob.NewEncoder(w).Encode(snap)
}

// Save writes the index (including its corpus) to w as a version-2 snapshot:
// the term dictionary and the flat arenas, verbatim.
func (idx *Index) Save(w io.Writer) error {
	snap := snapshot{
		Version:    persistVersion,
		Terms:      idx.dict.Terms(),
		PostDocs:   idx.postDocs,
		PostFreqs:  idx.postFreqs,
		PostOff:    idx.postOff,
		DocTermIDs: idx.docTermIDs,
		DocFreqs:   idx.docFreqs,
		DocOff:     idx.docOff,
		DocLens:    idx.docLen,
		TotalLen:   idx.totalLen,
	}
	for _, d := range idx.corpus.Docs() {
		snap.Docs = append(snap.Docs, *d)
	}
	if err := encodeSnapshot(w, &snap); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save. Version-2 snapshots map
// straight onto the arena layout; version-1 snapshots (the pre-termdict map
// format) are migrated in memory; any other version is a versioned error.
// The analyzer must be the same pipeline the index was built with; queries
// analyzed differently will not match the stored postings.
func Load(r io.Reader, analyzer *analysis.Analyzer) (*Index, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	corpus := document.NewCorpus()
	for i := range snap.Docs {
		d := snap.Docs[i]
		corpus.Add(&d)
	}
	var idx *Index
	var err error
	switch snap.Version {
	case 2:
		idx = loadV2(corpus, analyzer, &snap)
	case 1:
		idx, err = migrateV1(corpus, analyzer, &snap)
		if err != nil {
			return nil, fmt.Errorf("index: load: corrupt snapshot: %w", err)
		}
	default:
		return nil, fmt.Errorf("index: load: unsupported snapshot version %d (supported: 1, 2)", snap.Version)
	}
	if err := idx.Validate(); err != nil {
		return nil, fmt.Errorf("index: load: corrupt snapshot: %w", err)
	}
	return idx, nil
}

// loadV2 wraps the stored arenas directly; only IDF is recomputed.
func loadV2(corpus *document.Corpus, analyzer *analysis.Analyzer, snap *snapshot) *Index {
	idx := &Index{
		corpus:     corpus,
		analyzer:   analyzer,
		dict:       termdict.FromSorted(snap.Terms),
		postDocs:   snap.PostDocs,
		postFreqs:  snap.PostFreqs,
		postOff:    snap.PostOff,
		docTermIDs: snap.DocTermIDs,
		docFreqs:   snap.DocFreqs,
		docOff:     snap.DocOff,
		docLen:     snap.DocLens,
		totalLen:   snap.TotalLen,
	}
	idx.normalizeEmpty(corpus.Len())
	// A corrupt stream can carry a mis-sized offset table; building IDF off
	// it would panic before Validate gets to report the corruption. Leave the
	// IDF table empty in that case — Validate flags the offsets.
	if len(idx.postOff) == idx.dict.Len()+1 {
		idx.buildIDF()
		// The score-bound tables additionally slice the postings arena
		// through postOff, so they need the offsets to actually be sane —
		// not just correctly sized — before recomputation is safe. On a
		// hostile stream the tables stay empty and Validate reports the
		// offset corruption first.
		if idx.postingOffsetsSane() {
			idx.buildScoreBounds()
		}
	} else {
		idx.idf = []float64{}
	}
	return idx
}

// postingOffsetsSane reports whether postOff can be used to slice the
// postings arena without panicking: zero-based, monotone, spanning exactly
// the (aligned) postDocs/postFreqs slices. A subset of Validate's checks,
// needed before Validate runs.
func (idx *Index) postingOffsetsSane() bool {
	v := idx.dict.Len()
	if len(idx.postDocs) != len(idx.postFreqs) {
		return false
	}
	if idx.postOff[0] != 0 || int(idx.postOff[v]) != len(idx.postDocs) {
		return false
	}
	for t := 0; t < v; t++ {
		if idx.postOff[t] > idx.postOff[t+1] {
			return false
		}
	}
	return true
}

// migrateV1 rebuilds the arena layout from a version-1 snapshot's maps. The
// stored postings are authoritative (v1 loads never re-analyzed the corpus),
// so the migrated index is exactly the one the v1 loader produced, in the
// new representation. A doc term with no posting list is corruption the old
// loader also rejected — it is an error, not something to drop silently.
func migrateV1(corpus *document.Corpus, analyzer *analysis.Analyzer, snap *snapshot) (*Index, error) {
	n := corpus.Len()
	terms := make([]string, 0, len(snap.Postings))
	for term := range snap.Postings {
		terms = append(terms, term)
	}
	dict := termdict.New(terms)

	idx := &Index{
		corpus:   corpus,
		analyzer: analyzer,
		dict:     dict,
		docOff:   make([]int32, n+1),
		docLen:   make([]int32, n),
	}
	for d := 0; d < n; d++ {
		id := document.DocID(d)
		docTerms := snap.DocTerms[id]
		// v1 stored doc terms sorted lexicographically = ascending TermID.
		for _, term := range docTerms {
			tid, ok := dict.Lookup(term)
			if !ok {
				return nil, fmt.Errorf("docTerm %q of doc %d missing from postings", term, d)
			}
			f := snap.Postings[term].Freq(id)
			if f <= 0 {
				// Freq 0 = no posting for this doc; negative = corrupt data
				// the uint16 conversion would otherwise wrap into a huge TF.
				return nil, fmt.Errorf("docTerm %q of doc %d missing from postings", term, d)
			}
			if f > maxFreq {
				f = maxFreq
			}
			idx.docTermIDs = append(idx.docTermIDs, tid)
			idx.docFreqs = append(idx.docFreqs, uint16(f))
		}
		idx.docOff[d+1] = int32(len(idx.docTermIDs))
		idx.docLen[d] = int32(snap.DocLen[id])
	}
	idx.totalLen = snap.TotalLen

	idx.postOff = make([]int32, dict.Len()+1)
	for t := 0; t < dict.Len(); t++ {
		plist := snap.Postings[dict.Term(termdict.TermID(t))]
		idx.postOff[t+1] = idx.postOff[t] + int32(len(plist))
		for _, p := range plist {
			f := p.Freq
			if f <= 0 {
				return nil, fmt.Errorf("non-positive freq for %q in doc %d", dict.Term(termdict.TermID(t)), p.Doc)
			}
			if f > maxFreq {
				f = maxFreq
			}
			idx.postDocs = append(idx.postDocs, int32(p.Doc))
			idx.postFreqs = append(idx.postFreqs, uint16(f))
		}
	}
	idx.normalizeEmpty(n)
	idx.buildIDF()
	// The migration built the offsets itself, so they are sane by
	// construction and the score bounds can always be recomputed.
	idx.buildScoreBounds()
	return idx, nil
}

// normalizeEmpty gives nil offset tables their minimal valid shape (gob
// leaves empty slices nil), so Validate and the accessors never index into a
// nil table.
func (idx *Index) normalizeEmpty(n int) {
	if idx.postOff == nil {
		idx.postOff = make([]int32, idx.dict.Len()+1)
	}
	if idx.docOff == nil {
		idx.docOff = make([]int32, n+1)
	}
	if idx.docLen == nil {
		idx.docLen = make([]int32, n)
	}
}

// legacySnapshotV1 renders the index in the version-1 map format. It exists
// for the migration tests (and the checked-in v1 fixture): the writer for v1
// is gone from Save, but the read path must keep understanding old files.
func (idx *Index) legacySnapshotV1() *snapshot {
	snap := &snapshot{
		Version:  1,
		Postings: map[string]PostingList{},
		DocTerms: map[document.DocID][]string{},
		DocLen:   map[document.DocID]int{},
		TotalLen: idx.totalLen,
	}
	for _, d := range idx.corpus.Docs() {
		snap.Docs = append(snap.Docs, *d)
	}
	for t := 0; t < idx.dict.Len(); t++ {
		term := idx.dict.Term(termdict.TermID(t))
		snap.Postings[term] = idx.Postings(term)
	}
	for d := 0; d < idx.NumDocs(); d++ {
		id := document.DocID(d)
		terms := idx.DocTerms(id)
		sort.Strings(terms)
		snap.DocTerms[id] = terms
		snap.DocLen[id] = idx.DocLen(id)
	}
	return snap
}
