package index

import (
	"strings"
	"testing"
)

// corrupt builds a fresh test index, applies the mutation, and asserts that
// Validate reports an error mentioning want.
func corrupt(t *testing.T, want string, mutate func(*Index)) {
	t.Helper()
	idx := buildTestIndex(t)
	if err := idx.Validate(); err != nil {
		t.Fatalf("fresh index invalid: %v", err)
	}
	mutate(idx)
	err := idx.Validate()
	if err == nil {
		t.Fatalf("corruption undetected (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestValidateDetectsUnsortedDict(t *testing.T) {
	corrupt(t, "not strictly sorted", func(idx *Index) {
		terms := idx.dict.Terms()
		terms[0], terms[1] = terms[1], terms[0]
	})
}

func TestValidateDetectsMisalignedArenas(t *testing.T) {
	corrupt(t, "misaligned", func(idx *Index) {
		idx.docFreqs = idx.docFreqs[:len(idx.docFreqs)-1]
	})
}

func TestValidateDetectsNonMonotonePostOff(t *testing.T) {
	corrupt(t, "not monotone", func(idx *Index) {
		idx.postOff[1] = idx.postOff[len(idx.postOff)-1] + 5
		idx.postOff[2] = 0
	})
}

func TestValidateDetectsDocFreqMismatch(t *testing.T) {
	corrupt(t, "misaligned", func(idx *Index) {
		idx.docFreqs[0]++
	})
}

func TestValidateDetectsZeroFreq(t *testing.T) {
	corrupt(t, "non-positive freq", func(idx *Index) {
		idx.postFreqs[0] = 0
	})
}

func TestValidateDetectsIDFDrift(t *testing.T) {
	corrupt(t, "idf", func(idx *Index) {
		idx.idf[0] *= 2
	})
}

func TestValidateDetectsOutOfRangeDocTerm(t *testing.T) {
	corrupt(t, "outside dictionary", func(idx *Index) {
		idx.docTermIDs[0] = int32(idx.NumTerms()) + 7
	})
}
