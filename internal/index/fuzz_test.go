package index

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
)

// fuzzSeedSnapshots returns valid v1, v2 and truncated streams as seed
// corpus entries for the snapshot-decode fuzzer.
func fuzzSeedSnapshots(tb testing.TB) [][]byte {
	tb.Helper()
	c := document.NewCorpus()
	c.AddText("", "apple fruit orchard apple")
	c.AddText("", "apple computer store")
	c.AddStructured("canon", []document.Triplet{
		{Entity: "canonproducts", Attribute: "category", Value: "camera"},
	})
	idx := Build(c, analysis.Simple())
	var v2 bytes.Buffer
	if err := idx.Save(&v2); err != nil {
		tb.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := encodeSnapshot(&v1, idx.legacySnapshotV1()); err != nil {
		tb.Fatal(err)
	}
	var empty bytes.Buffer
	if err := Build(document.NewCorpus(), analysis.Simple()).Save(&empty); err != nil {
		tb.Fatal(err)
	}
	return [][]byte{
		v2.Bytes(),
		v1.Bytes(),
		empty.Bytes(),
		v2.Bytes()[:len(v2.Bytes())/2],
		[]byte("not a gob stream"),
	}
}

// FuzzSnapshotLoad drives Load with arbitrary byte streams: any input must
// either produce a valid index (Validate passes — Load runs it internally)
// or return an error. It must never panic — a corrupt or hostile snapshot
// file is an expected input for a service that loads indexes from disk.
func FuzzSnapshotLoad(f *testing.F) {
	for _, seed := range fuzzSeedSnapshots(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data), analysis.Simple())
		if err != nil {
			return
		}
		// A successfully loaded index must be internally consistent and
		// usable for basic queries.
		if err := idx.Validate(); err != nil {
			t.Fatalf("Load accepted an index that fails Validate: %v", err)
		}
		for _, term := range idx.Vocabulary() {
			_ = idx.DocFreq(term)
		}
	})
}
