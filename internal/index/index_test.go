package index

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	c := document.NewCorpus()
	c.AddText("", "apple fruit orchard apple")
	c.AddText("", "apple computer store")
	c.AddText("", "banana fruit")
	c.AddStructured("canon", []document.Triplet{
		{Entity: "canonproducts", Attribute: "category", Value: "camera"},
	})
	return Build(c, analysis.Simple())
}

func TestBuildPostings(t *testing.T) {
	idx := buildTestIndex(t)
	apple := idx.Postings("apple")
	if got := apple.Docs(); !reflect.DeepEqual(got, []document.DocID{0, 1}) {
		t.Errorf("apple postings = %v", got)
	}
	if apple.Freq(0) != 2 {
		t.Errorf("freq(apple, d0) = %d, want 2", apple.Freq(0))
	}
	if apple.Freq(1) != 1 {
		t.Errorf("freq(apple, d1) = %d, want 1", apple.Freq(1))
	}
}

func TestCompositeTermsIndexed(t *testing.T) {
	idx := buildTestIndex(t)
	p := idx.Postings("canonproducts:category:camera")
	if got := p.Docs(); !reflect.DeepEqual(got, []document.DocID{3}) {
		t.Errorf("composite postings = %v", got)
	}
	// Parts are searchable too.
	if idx.DocFreq("camera") != 1 || idx.DocFreq("canonproducts") != 1 {
		t.Error("triplet parts not indexed")
	}
}

func TestDocFreqAndIDF(t *testing.T) {
	idx := buildTestIndex(t)
	if idx.DocFreq("fruit") != 2 {
		t.Errorf("DocFreq(fruit) = %d, want 2", idx.DocFreq("fruit"))
	}
	if idx.DocFreq("nosuchterm") != 0 {
		t.Error("DocFreq of unseen term should be 0")
	}
	if idx.IDF("nosuchterm") != 0 {
		t.Error("IDF of unseen term should be 0")
	}
	wantIDF := math.Log(1 + 4.0/2.0)
	if got := idx.IDF("fruit"); math.Abs(got-wantIDF) > 1e-12 {
		t.Errorf("IDF(fruit) = %v, want %v", got, wantIDF)
	}
	// Rarer terms have higher IDF.
	if idx.IDF("banana") <= idx.IDF("fruit") {
		t.Error("rarer term should have higher IDF")
	}
}

func TestTFIDF(t *testing.T) {
	idx := buildTestIndex(t)
	if idx.TFIDF(2, "apple") != 0 {
		t.Error("TFIDF for absent term should be 0")
	}
	// d0 has apple twice, d1 once: same idf, double tf.
	r := idx.TFIDF(0, "apple") / idx.TFIDF(1, "apple")
	if math.Abs(r-2) > 1e-12 {
		t.Errorf("TFIDF ratio = %v, want 2", r)
	}
}

func TestDocTermsSortedDistinct(t *testing.T) {
	idx := buildTestIndex(t)
	terms := idx.DocTerms(0)
	if !sort.StringsAreSorted(terms) {
		t.Errorf("DocTerms not sorted: %v", terms)
	}
	want := []string{"apple", "fruit", "orchard"} // "apple" deduped
	if !reflect.DeepEqual(terms, want) {
		t.Errorf("DocTerms = %v, want %v", terms, want)
	}
}

func TestHasTerm(t *testing.T) {
	idx := buildTestIndex(t)
	if !idx.HasTerm(0, "apple") || idx.HasTerm(0, "banana") {
		t.Error("HasTerm wrong")
	}
	if idx.HasTerm(99, "apple") {
		t.Error("HasTerm on unknown doc should be false")
	}
}

func TestDocLenAndAvg(t *testing.T) {
	idx := buildTestIndex(t)
	if idx.DocLen(0) != 4 {
		t.Errorf("DocLen(0) = %d, want 4", idx.DocLen(0))
	}
	if idx.AvgDocLen() <= 0 {
		t.Error("AvgDocLen should be positive")
	}
}

func TestNumDocsTerms(t *testing.T) {
	idx := buildTestIndex(t)
	if idx.NumDocs() != 4 {
		t.Errorf("NumDocs = %d", idx.NumDocs())
	}
	if idx.NumTerms() == 0 {
		t.Error("NumTerms = 0")
	}
}

func TestEmptyCorpus(t *testing.T) {
	idx := Build(document.NewCorpus(), analysis.Simple())
	if idx.NumDocs() != 0 || idx.NumTerms() != 0 || idx.AvgDocLen() != 0 {
		t.Error("empty corpus stats wrong")
	}
	if err := idx.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateOK(t *testing.T) {
	idx := buildTestIndex(t)
	if err := idx.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPostingListContains(t *testing.T) {
	p := PostingList{{Doc: 1, Freq: 1}, {Doc: 5, Freq: 2}, {Doc: 9, Freq: 1}}
	for _, id := range []document.DocID{1, 5, 9} {
		if !p.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []document.DocID{0, 2, 10} {
		if p.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
}

func TestVocabularySorted(t *testing.T) {
	idx := buildTestIndex(t)
	v := idx.Vocabulary()
	if !sort.StringsAreSorted(v) {
		t.Errorf("Vocabulary not sorted: %v", v)
	}
}

// Property: on a random corpus, the index validates and document frequency
// equals a naive recount.
func TestIndexPropertyRandomCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa"}
	for trial := 0; trial < 25; trial++ {
		c := document.NewCorpus()
		n := 1 + rng.Intn(20)
		raw := make([][]string, n)
		for i := 0; i < n; i++ {
			m := 1 + rng.Intn(12)
			doc := make([]string, m)
			for j := range doc {
				doc[j] = words[rng.Intn(len(words))]
			}
			raw[i] = doc
			c.AddText("", joinWords(doc))
		}
		idx := Build(c, analysis.Simple())
		if err := idx.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v", trial, err)
		}
		for _, w := range words {
			naive := 0
			for _, doc := range raw {
				for _, t2 := range doc {
					if t2 == w {
						naive++
						break
					}
				}
			}
			if got := idx.DocFreq(w); got != naive {
				t.Fatalf("trial %d: DocFreq(%q) = %d, want %d", trial, w, got, naive)
			}
		}
	}
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
