// Package index implements the in-memory inverted index that backs the
// search substrate. The index is built on the corpus-global term dictionary
// (internal/termdict): every distinct term gets a dense int32 TermID in
// lexicographic order, postings live as flat doc/freq slices in one shared
// arena keyed by TermID, each document's term set is a sorted TermID slice in
// a second arena, and per-term IDF is precomputed at Build. String-keyed
// accessors remain for tests and cold paths, but the hot paths (search's
// AND merge, pool scoring, clustering vectors, baseline labels) read the
// TermID tables directly and never touch a map or a string.
package index

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/termdict"
)

// maxFreq caps stored term frequencies at the uint16 arena width. Real
// corpora here are orders of magnitude below it; a pathological document
// saturates rather than overflows.
const maxFreq = 1<<16 - 1

// ScoreBlockSize is the posting-block granularity of the block-max score
// tables: every run of ScoreBlockSize consecutive postings of a term shares
// one precomputed maximum normalized score contribution. 128 keeps the
// tables under 1% of the postings arena while letting top-K search skip
// whole cache lines of postings at a time.
const ScoreBlockSize = 128

// Posting records one document's occurrences of a term.
type Posting struct {
	Doc document.DocID
	// Freq is the number of occurrences of the term in the document.
	Freq int
}

// PostingList is the ordered (by DocID) list of postings for one term.
type PostingList []Posting

// Docs returns the document IDs of the posting list, in order.
func (p PostingList) Docs() []document.DocID {
	out := make([]document.DocID, len(p))
	for i, e := range p {
		out[i] = e.Doc
	}
	return out
}

// Contains reports whether the posting list has an entry for id, using
// binary search.
func (p PostingList) Contains(id document.DocID) bool {
	i := sort.Search(len(p), func(i int) bool { return p[i].Doc >= id })
	return i < len(p) && p[i].Doc == id
}

// Freq returns the term frequency for id, or 0 when absent.
func (p PostingList) Freq(id document.DocID) int {
	i := sort.Search(len(p), func(i int) bool { return p[i].Doc >= id })
	if i < len(p) && p[i].Doc == id {
		return p[i].Freq
	}
	return 0
}

// Index is an inverted index over a corpus. It is built once and then
// read-only; concurrent readers are safe after Build returns.
//
// Storage layout: the term dictionary assigns TermIDs 0..V-1 in
// lexicographic order. The postings of term t are the parallel slices
// postDocs[postOff[t]:postOff[t+1]] (ascending DocIDs) and the same range of
// postFreqs. The distinct terms of document d are
// docTermIDs[docOff[d]:docOff[d+1]] (ascending TermIDs — which, because
// TermID order is lexicographic, is exactly the sorted-string order the
// scoring layers accumulate in) with aligned frequencies in docFreqs.
type Index struct {
	corpus   *document.Corpus
	analyzer *analysis.Analyzer
	dict     *termdict.Dict

	// Postings arena, keyed by TermID.
	postDocs  []int32
	postFreqs []uint16
	postOff   []int32 // len = dict.Len()+1

	// idf[t] = log(1 + N/df(t)), precomputed at Build.
	idf []float64

	// Document→terms arena, keyed by DocID.
	docTermIDs []termdict.TermID
	docFreqs   []uint16
	docOff     []int32 // len = NumDocs+1

	// docLen[d] is the total token count (for TF normalization).
	docLen []int32
	// totalLen is the sum of docLen (for average document length).
	totalLen int

	// Score-upper-bound tables for exact top-K pruning, derived from the
	// arenas above (never serialized; rebuilt at Build and Load).
	// termMaxScore[t] is the largest normalized score contribution
	// tf·idf/(1+len/avgLen) any single document receives from term t; the
	// blocks blockMax[blockOff[t]:blockOff[t+1]] hold the same maximum per
	// run of ScoreBlockSize postings, aligned with PostingsDocs(t).
	termMaxScore []float64
	blockMax     []float64
	blockOff     []int32 // len = dict.Len()+1
}

// Build indexes every document of the corpus with the given analyzer.
// Structured documents additionally index their composite triplet terms
// (entity:attribute:value) verbatim, so expanded queries can reference exact
// features.
func Build(corpus *document.Corpus, analyzer *analysis.Analyzer) *Index {
	n := corpus.Len()
	counts := make([]map[string]int, n)
	seen := make(map[string]struct{}, 1024)
	var vocab []string
	totalTerms := 0
	for i, doc := range corpus.Docs() {
		m := make(map[string]int)
		for _, tok := range analyzer.Analyze(doc.FullText()) {
			m[tok.Term]++
		}
		for _, composite := range doc.CompositeTerms() {
			m[composite]++
		}
		counts[i] = m
		totalTerms += len(m)
		for term := range m {
			if _, ok := seen[term]; !ok {
				seen[term] = struct{}{}
				vocab = append(vocab, term)
			}
		}
	}
	sort.Strings(vocab)
	dict := termdict.FromSorted(vocab)

	idx := &Index{
		corpus:     corpus,
		analyzer:   analyzer,
		dict:       dict,
		docTermIDs: make([]termdict.TermID, 0, totalTerms),
		docFreqs:   make([]uint16, 0, totalTerms),
		docOff:     make([]int32, n+1),
		docLen:     make([]int32, n),
	}

	// Fill the document arena in DocID order, terms ascending by TermID, and
	// count document frequencies along the way. Each doc's (TermID, freq)
	// pairs are packed into int64s — frequency in the low 16 bits — so one
	// integer sort orders the whole pair (TermIDs are distinct within a doc).
	df := make([]int32, dict.Len())
	packed := make([]int64, 0, 64)
	for i := 0; i < n; i++ {
		packed = packed[:0]
		total := 0
		for term, c := range counts[i] {
			tid, _ := dict.Lookup(term)
			total += c
			if c > maxFreq {
				c = maxFreq
			}
			packed = append(packed, int64(tid)<<16|int64(c))
		}
		slices.Sort(packed)
		for _, p := range packed {
			tid := termdict.TermID(p >> 16)
			idx.docTermIDs = append(idx.docTermIDs, tid)
			idx.docFreqs = append(idx.docFreqs, uint16(p&maxFreq))
			df[tid]++
		}
		idx.docOff[i+1] = int32(len(idx.docTermIDs))
		idx.docLen[i] = int32(total)
		idx.totalLen += total
		counts[i] = nil
	}

	// Postings arena: prefix-sum offsets from the document frequencies, then
	// one pass over documents in ID order fills each term's range in
	// ascending-DocID order.
	idx.postOff = make([]int32, dict.Len()+1)
	for t, d := range df {
		idx.postOff[t+1] = idx.postOff[t] + d
	}
	idx.postDocs = make([]int32, len(idx.docTermIDs))
	idx.postFreqs = make([]uint16, len(idx.docTermIDs))
	cursor := make([]int32, dict.Len())
	copy(cursor, idx.postOff[:dict.Len()])
	for d := 0; d < n; d++ {
		lo, hi := idx.docOff[d], idx.docOff[d+1]
		for j := lo; j < hi; j++ {
			tid := idx.docTermIDs[j]
			idx.postDocs[cursor[tid]] = int32(d)
			idx.postFreqs[cursor[tid]] = idx.docFreqs[j]
			cursor[tid]++
		}
	}

	idx.buildIDF()
	idx.buildScoreBounds()
	return idx
}

// buildIDF precomputes the smoothed IDF of every dictionary term.
func (idx *Index) buildIDF() {
	idx.idf = make([]float64, idx.dict.Len())
	nd := float64(idx.NumDocs())
	for t := range idx.idf {
		if df := idx.DocFreqByID(termdict.TermID(t)); df > 0 {
			idx.idf[t] = math.Log(1 + nd/float64(df))
		}
	}
}

// postingScoreBound is the normalized score contribution one posting gives
// its document: tf·idf divided by the document-length normalizer. The
// divisor is a per-document constant, so summing these contributions over a
// document's query terms bounds the document's search score — which is what
// makes the per-term and per-block maxima below valid pruning bounds.
func (idx *Index) postingScoreBound(doc int32, freq uint16, tid termdict.TermID) float64 {
	c := float64(freq) * idx.idf[tid]
	if n := idx.DocLen(document.DocID(doc)); n > 0 {
		c /= 1 + float64(n)/idx.AvgDocLen()
	}
	return c
}

// buildScoreBounds fills the termMaxScore/blockMax tables from the postings
// arena and the IDF table. It is a pure function of the stored arenas, so
// the snapshot loader recomputes it instead of serializing it.
func (idx *Index) buildScoreBounds() {
	v := idx.dict.Len()
	idx.termMaxScore = make([]float64, v)
	idx.blockOff = make([]int32, v+1)
	for t := 0; t < v; t++ {
		n := int(idx.postOff[t+1] - idx.postOff[t])
		idx.blockOff[t+1] = idx.blockOff[t] + int32((n+ScoreBlockSize-1)/ScoreBlockSize)
	}
	idx.blockMax = make([]float64, idx.blockOff[v])
	for t := 0; t < v; t++ {
		tid := termdict.TermID(t)
		docs := idx.PostingsDocs(tid)
		freqs := idx.PostingsFreqs(tid)
		blocks := idx.blockMax[idx.blockOff[t]:idx.blockOff[t+1]]
		tmax := 0.0
		for i := range docs {
			c := idx.postingScoreBound(docs[i], freqs[i], tid)
			if b := i / ScoreBlockSize; c > blocks[b] {
				blocks[b] = c
			}
			if c > tmax {
				tmax = c
			}
		}
		idx.termMaxScore[t] = tmax
	}
}

// TermMaxScore returns the largest normalized score contribution
// (tf·idf/(1+len/avgLen)) any document receives from term tid — the
// max-score upper bound used by top-K pruning.
func (idx *Index) TermMaxScore(tid termdict.TermID) float64 { return idx.termMaxScore[tid] }

// BlockMaxScores returns the block-max table of term tid: entry b bounds the
// contributions of postings [b*ScoreBlockSize, (b+1)*ScoreBlockSize) of
// PostingsDocs(tid). The slice is shared and must not be mutated.
func (idx *Index) BlockMaxScores(tid termdict.TermID) []float64 {
	return idx.blockMax[idx.blockOff[tid]:idx.blockOff[tid+1]]
}

// Corpus returns the indexed corpus.
func (idx *Index) Corpus() *document.Corpus { return idx.corpus }

// Analyzer returns the analyzer the index was built with; queries must be
// analyzed with the same pipeline.
func (idx *Index) Analyzer() *analysis.Analyzer { return idx.analyzer }

// Dict returns the corpus-global term dictionary.
func (idx *Index) Dict() *termdict.Dict { return idx.dict }

// LookupTerm resolves a term string to its TermID.
func (idx *Index) LookupTerm(term string) (termdict.TermID, bool) {
	return idx.dict.Lookup(term)
}

// TermByID returns the term string of a TermID.
func (idx *Index) TermByID(tid termdict.TermID) string { return idx.dict.Term(tid) }

// PostingsDocs returns the documents containing term tid as ascending
// []int32 DocIDs — the raw arena slice the search AND merge gallops over.
// The slice is shared and must not be mutated.
func (idx *Index) PostingsDocs(tid termdict.TermID) []int32 {
	return idx.postDocs[idx.postOff[tid]:idx.postOff[tid+1]]
}

// PostingsFreqs returns the term frequencies aligned with PostingsDocs. The
// slice is shared and must not be mutated.
func (idx *Index) PostingsFreqs(tid termdict.TermID) []uint16 {
	return idx.postFreqs[idx.postOff[tid]:idx.postOff[tid+1]]
}

// DocFreqByID returns the number of documents containing term tid.
func (idx *Index) DocFreqByID(tid termdict.TermID) int {
	return int(idx.postOff[tid+1] - idx.postOff[tid])
}

// Postings returns the posting list for a term (nil when the term does not
// occur). It materializes from the arena and allocates; hot paths should use
// PostingsDocs/PostingsFreqs instead.
func (idx *Index) Postings(term string) PostingList {
	tid, ok := idx.dict.Lookup(term)
	if !ok {
		return nil
	}
	docs, freqs := idx.PostingsDocs(tid), idx.PostingsFreqs(tid)
	out := make(PostingList, len(docs))
	for i, d := range docs {
		out[i] = Posting{Doc: document.DocID(d), Freq: int(freqs[i])}
	}
	return out
}

// DocFreq returns the number of documents containing term.
func (idx *Index) DocFreq(term string) int {
	tid, ok := idx.dict.Lookup(term)
	if !ok {
		return 0
	}
	return idx.DocFreqByID(tid)
}

// NumDocs returns the corpus size.
func (idx *Index) NumDocs() int { return idx.corpus.Len() }

// NumTerms returns the vocabulary size (the exclusive upper bound on
// TermIDs).
func (idx *Index) NumTerms() int { return idx.dict.Len() }

// AvgDocLen returns the mean token count per document.
func (idx *Index) AvgDocLen() float64 {
	if idx.NumDocs() == 0 {
		return 0
	}
	return float64(idx.totalLen) / float64(idx.NumDocs())
}

// DocLen returns the token count of a document (0 when out of range).
func (idx *Index) DocLen(id document.DocID) int {
	if id < 0 || int(id) >= len(idx.docLen) {
		return 0
	}
	return int(idx.docLen[id])
}

// DocTermIDs returns the distinct terms of a document as ascending TermIDs —
// which is also ascending lexicographic order. The slice is shared and must
// not be mutated; nil for out-of-range documents.
func (idx *Index) DocTermIDs(id document.DocID) []termdict.TermID {
	if id < 0 || int(id) >= idx.NumDocs() {
		return nil
	}
	return idx.docTermIDs[idx.docOff[id]:idx.docOff[id+1]]
}

// DocTermFreqs returns the term frequencies of a document, aligned with
// DocTermIDs. The slice is shared and must not be mutated.
func (idx *Index) DocTermFreqs(id document.DocID) []uint16 {
	if id < 0 || int(id) >= idx.NumDocs() {
		return nil
	}
	return idx.docFreqs[idx.docOff[id]:idx.docOff[id+1]]
}

// DocTerms returns the sorted distinct terms of a document as strings. It
// materializes from the TermID arena and allocates; hot paths should use
// DocTermIDs.
func (idx *Index) DocTerms(id document.DocID) []string {
	tids := idx.DocTermIDs(id)
	out := make([]string, len(tids))
	for i, tid := range tids {
		out[i] = idx.dict.Term(tid)
	}
	return out
}

// HasTermID reports whether document id contains term tid, by binary search
// over the document's sorted TermID slice.
func (idx *Index) HasTermID(id document.DocID, tid termdict.TermID) bool {
	tids := idx.DocTermIDs(id)
	i := sort.Search(len(tids), func(i int) bool { return tids[i] >= tid })
	return i < len(tids) && tids[i] == tid
}

// HasTerm reports whether document id contains term.
func (idx *Index) HasTerm(id document.DocID, term string) bool {
	tid, ok := idx.dict.Lookup(term)
	return ok && idx.HasTermID(id, tid)
}

// TermFreqByID returns the frequency of term tid in document id (0 when
// absent).
func (idx *Index) TermFreqByID(id document.DocID, tid termdict.TermID) int {
	tids := idx.DocTermIDs(id)
	i := sort.Search(len(tids), func(i int) bool { return tids[i] >= tid })
	if i < len(tids) && tids[i] == tid {
		return int(idx.DocTermFreqs(id)[i])
	}
	return 0
}

// TermFreq returns the frequency of term in document id.
func (idx *Index) TermFreq(id document.DocID, term string) int {
	tid, ok := idx.dict.Lookup(term)
	if !ok {
		return 0
	}
	return idx.TermFreqByID(id, tid)
}

// IDFByID returns the precomputed smoothed inverse document frequency of
// term tid.
func (idx *Index) IDFByID(tid termdict.TermID) float64 { return idx.idf[tid] }

// IDF returns the smoothed inverse document frequency
// log(1 + N/df); 0 for unseen terms.
func (idx *Index) IDF(term string) float64 {
	tid, ok := idx.dict.Lookup(term)
	if !ok {
		return 0
	}
	return idx.idf[tid]
}

// TFIDFByID returns tf · idf for term tid in document id.
func (idx *Index) TFIDFByID(id document.DocID, tid termdict.TermID) float64 {
	tf := idx.TermFreqByID(id, tid)
	if tf == 0 {
		return 0
	}
	return float64(tf) * idx.idf[tid]
}

// TFIDF returns tf · idf for a term in a document, with raw term-frequency
// weighting as used by the paper's setup ("the weight of each component is
// the TF of the feature"; results ranked by "tfidf of the keywords").
func (idx *Index) TFIDF(id document.DocID, term string) float64 {
	tid, ok := idx.dict.Lookup(term)
	if !ok {
		return 0
	}
	return idx.TFIDFByID(id, tid)
}

// Vocabulary returns all indexed terms, sorted. Intended for tests and
// debugging; it allocates.
func (idx *Index) Vocabulary() []string {
	return append([]string(nil), idx.dict.Terms()...)
}

// Validate checks internal invariants — dictionary strictly sorted, arena
// offsets monotone and aligned, postings sorted with positive frequencies,
// document term slices sorted and cross-consistent with the postings, IDF
// table aligned with the dictionary — and returns an error describing the
// first violation. Used by tests, the property suite and the snapshot
// loader.
func (idx *Index) Validate() error {
	v := idx.dict.Len()
	n := idx.NumDocs()
	if !idx.dict.Sorted() {
		return fmt.Errorf("dictionary not strictly sorted")
	}
	if len(idx.postOff) != v+1 || len(idx.docOff) != n+1 {
		return fmt.Errorf("offset tables missized: %d postOff for %d terms, %d docOff for %d docs",
			len(idx.postOff), v, len(idx.docOff), n)
	}
	if len(idx.idf) != v {
		return fmt.Errorf("idf table has %d entries for %d terms", len(idx.idf), v)
	}
	if len(idx.postDocs) != len(idx.postFreqs) || len(idx.docTermIDs) != len(idx.docFreqs) {
		return fmt.Errorf("arena slices misaligned: %d/%d postings, %d/%d doc terms",
			len(idx.postDocs), len(idx.postFreqs), len(idx.docTermIDs), len(idx.docFreqs))
	}
	if v > 0 && (idx.postOff[0] != 0 || int(idx.postOff[v]) != len(idx.postDocs)) {
		return fmt.Errorf("postings offsets do not span the arena")
	}
	if n > 0 && (idx.docOff[0] != 0 || int(idx.docOff[n]) != len(idx.docTermIDs)) {
		return fmt.Errorf("doc offsets do not span the arena")
	}
	if len(idx.docLen) != n {
		return fmt.Errorf("docLen has %d entries for %d docs", len(idx.docLen), n)
	}
	// Both offset tables must be fully monotone before any arena slicing:
	// a later out-of-order entry would otherwise make an earlier slice
	// expression panic on hostile (fuzzed or corrupt) snapshots.
	for t := 0; t < v; t++ {
		if idx.postOff[t] > idx.postOff[t+1] {
			return fmt.Errorf("postings offsets not monotone at term %d", t)
		}
	}
	for d := 0; d < n; d++ {
		if idx.docOff[d] > idx.docOff[d+1] {
			return fmt.Errorf("doc offsets not monotone at doc %d", d)
		}
	}
	// The doc arena's TermIDs must be in dictionary range before the
	// postings cross-checks below dereference them.
	for j, tid := range idx.docTermIDs {
		if tid < 0 || int(tid) >= v {
			return fmt.Errorf("doc arena entry %d references term %d outside dictionary of %d", j, tid, v)
		}
	}
	for t := 0; t < v; t++ {
		docs := idx.PostingsDocs(termdict.TermID(t))
		freqs := idx.PostingsFreqs(termdict.TermID(t))
		for i := range docs {
			if i > 0 && docs[i-1] >= docs[i] {
				return fmt.Errorf("postings for %q not strictly sorted at %d", idx.dict.Term(termdict.TermID(t)), i)
			}
			if docs[i] < 0 || int(docs[i]) >= n {
				return fmt.Errorf("posting for %q references doc %d outside corpus of %d", idx.dict.Term(termdict.TermID(t)), docs[i], n)
			}
			if freqs[i] == 0 {
				return fmt.Errorf("non-positive freq for %q in doc %d", idx.dict.Term(termdict.TermID(t)), docs[i])
			}
			if got := idx.TermFreqByID(document.DocID(docs[i]), termdict.TermID(t)); got != int(freqs[i]) {
				return fmt.Errorf("doc arena misaligned for %q in doc %d: %d vs posting %d",
					idx.dict.Term(termdict.TermID(t)), docs[i], got, freqs[i])
			}
		}
		want := math.Log(1 + float64(n)/float64(len(docs)))
		if len(docs) == 0 {
			want = 0
		}
		if idx.idf[t] != want {
			return fmt.Errorf("idf for %q is %v, want %v", idx.dict.Term(termdict.TermID(t)), idx.idf[t], want)
		}
	}
	for d := 0; d < n; d++ {
		id := document.DocID(d)
		tids := idx.DocTermIDs(id)
		freqs := idx.DocTermFreqs(id)
		for i, tid := range tids {
			if i > 0 && tids[i-1] >= tid {
				return fmt.Errorf("docTermIDs of doc %d not strictly sorted at %d", d, i)
			}
			docs := idx.PostingsDocs(tid)
			j := sort.Search(len(docs), func(j int) bool { return docs[j] >= int32(d) })
			if j >= len(docs) || docs[j] != int32(d) {
				return fmt.Errorf("docTerm %q of doc %d missing from postings", idx.dict.Term(tid), d)
			}
			if idx.PostingsFreqs(tid)[j] != freqs[i] {
				return fmt.Errorf("docFreqs misaligned for %q in doc %d: %d vs posting %d",
					idx.dict.Term(tid), d, freqs[i], idx.PostingsFreqs(tid)[j])
			}
		}
	}
	// Score-bound tables: blockOff must mirror postOff at ScoreBlockSize
	// granularity, every block max must equal the true maximum contribution
	// of its member postings (in particular, bound every member), and
	// termMaxScore must be the maximum over the term's blocks. These run
	// last: they recompute contributions through the same arena accessors the
	// checks above have already proven safe to slice.
	if len(idx.termMaxScore) != v {
		return fmt.Errorf("termMaxScore has %d entries for %d terms", len(idx.termMaxScore), v)
	}
	if len(idx.blockOff) != v+1 {
		return fmt.Errorf("blockOff has %d entries for %d terms", len(idx.blockOff), v)
	}
	for t := 0; t < v; t++ {
		tid := termdict.TermID(t)
		n := idx.DocFreqByID(tid)
		blocks := (n + ScoreBlockSize - 1) / ScoreBlockSize
		if idx.blockOff[t+1]-idx.blockOff[t] != int32(blocks) {
			return fmt.Errorf("blockOff for %q spans %d blocks, want %d for %d postings",
				idx.dict.Term(tid), idx.blockOff[t+1]-idx.blockOff[t], blocks, n)
		}
	}
	if idx.blockOff[0] != 0 || int(idx.blockOff[v]) != len(idx.blockMax) {
		return fmt.Errorf("blockMax offsets do not span the arena: [%d, %d] over %d entries",
			idx.blockOff[0], idx.blockOff[v], len(idx.blockMax))
	}
	for t := 0; t < v; t++ {
		tid := termdict.TermID(t)
		docs := idx.PostingsDocs(tid)
		freqs := idx.PostingsFreqs(tid)
		blocks := idx.BlockMaxScores(tid)
		tmax := 0.0
		for b := range blocks {
			lo, hi := b*ScoreBlockSize, (b+1)*ScoreBlockSize
			if hi > len(docs) {
				hi = len(docs)
			}
			bmax := 0.0
			for i := lo; i < hi; i++ {
				c := idx.postingScoreBound(docs[i], freqs[i], tid)
				if c > blocks[b] {
					return fmt.Errorf("block max for %q block %d is %v, below member contribution %v (doc %d)",
						idx.dict.Term(tid), b, blocks[b], c, docs[i])
				}
				if c > bmax {
					bmax = c
				}
			}
			if blocks[b] != bmax {
				return fmt.Errorf("block max for %q block %d is %v, want %v", idx.dict.Term(tid), b, blocks[b], bmax)
			}
			if bmax > tmax {
				tmax = bmax
			}
		}
		if idx.termMaxScore[t] != tmax {
			return fmt.Errorf("termMaxScore for %q is %v, want %v", idx.dict.Term(tid), idx.termMaxScore[t], tmax)
		}
	}
	return nil
}
