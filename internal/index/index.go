// Package index implements the in-memory inverted index that backs the
// search substrate. Postings lists are sorted by document ID and carry term
// frequencies, which the ranking layer (TF-IDF) and the baselines (Data
// Clouds, TFICF cluster summarization) consume.
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/document"
)

// Posting records one document's occurrences of a term.
type Posting struct {
	Doc document.DocID
	// Freq is the number of occurrences of the term in the document.
	Freq int
}

// PostingList is the ordered (by DocID) list of postings for one term.
type PostingList []Posting

// Docs returns the document IDs of the posting list, in order.
func (p PostingList) Docs() []document.DocID {
	out := make([]document.DocID, len(p))
	for i, e := range p {
		out[i] = e.Doc
	}
	return out
}

// Contains reports whether the posting list has an entry for id, using
// binary search.
func (p PostingList) Contains(id document.DocID) bool {
	i := sort.Search(len(p), func(i int) bool { return p[i].Doc >= id })
	return i < len(p) && p[i].Doc == id
}

// Freq returns the term frequency for id, or 0 when absent.
func (p PostingList) Freq(id document.DocID) int {
	i := sort.Search(len(p), func(i int) bool { return p[i].Doc >= id })
	if i < len(p) && p[i].Doc == id {
		return p[i].Freq
	}
	return 0
}

// Index is an inverted index over a corpus. It is built once and then
// read-only; concurrent readers are safe after Build returns.
type Index struct {
	corpus   *document.Corpus
	analyzer *analysis.Analyzer

	postings map[string]PostingList
	// docTerms[id] is the sorted set of distinct terms of each document —
	// the "document as a set of words" of Section 2. The QEC algorithms
	// iterate these to enumerate candidate keywords.
	docTerms map[document.DocID][]string
	// docFreqs[id] holds the term frequencies aligned with docTerms[id], so
	// hot paths that walk a document's terms (TF vectors, pool scoring) get
	// each frequency without re-finding the document in the term's posting
	// list.
	docFreqs map[document.DocID][]int
	// docLen[id] is the total token count (for TF normalization).
	docLen map[document.DocID]int
	// totalLen is the sum of docLen (for average document length).
	totalLen int
}

// Build indexes every document of the corpus with the given analyzer.
// Structured documents additionally index their composite triplet terms
// (entity:attribute:value) verbatim, so expanded queries can reference exact
// features.
func Build(corpus *document.Corpus, analyzer *analysis.Analyzer) *Index {
	idx := &Index{
		corpus:   corpus,
		analyzer: analyzer,
		postings: make(map[string]PostingList),
		docTerms: make(map[document.DocID][]string),
		docFreqs: make(map[document.DocID][]int),
		docLen:   make(map[document.DocID]int),
	}
	for _, doc := range corpus.Docs() {
		idx.add(doc)
	}
	return idx
}

func (idx *Index) add(doc *document.Document) {
	counts := make(map[string]int)
	tokens := idx.analyzer.Analyze(doc.FullText())
	for _, tok := range tokens {
		counts[tok.Term]++
	}
	for _, composite := range doc.CompositeTerms() {
		counts[composite]++
	}
	terms := make([]string, 0, len(counts))
	total := 0
	for term, n := range counts {
		terms = append(terms, term)
		total += n
		idx.postings[term] = append(idx.postings[term], Posting{Doc: doc.ID, Freq: n})
	}
	sort.Strings(terms)
	freqs := make([]int, len(terms))
	for i, term := range terms {
		freqs[i] = counts[term]
	}
	idx.docTerms[doc.ID] = terms
	idx.docFreqs[doc.ID] = freqs
	idx.docLen[doc.ID] = total
	idx.totalLen += total
}

// Corpus returns the indexed corpus.
func (idx *Index) Corpus() *document.Corpus { return idx.corpus }

// Analyzer returns the analyzer the index was built with; queries must be
// analyzed with the same pipeline.
func (idx *Index) Analyzer() *analysis.Analyzer { return idx.analyzer }

// Postings returns the posting list for a term (nil when the term does not
// occur). The returned slice is shared and must not be mutated.
func (idx *Index) Postings(term string) PostingList { return idx.postings[term] }

// DocFreq returns the number of documents containing term.
func (idx *Index) DocFreq(term string) int { return len(idx.postings[term]) }

// NumDocs returns the corpus size.
func (idx *Index) NumDocs() int { return idx.corpus.Len() }

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.postings) }

// AvgDocLen returns the mean token count per document.
func (idx *Index) AvgDocLen() float64 {
	if idx.NumDocs() == 0 {
		return 0
	}
	return float64(idx.totalLen) / float64(idx.NumDocs())
}

// DocLen returns the token count of a document.
func (idx *Index) DocLen(id document.DocID) int { return idx.docLen[id] }

// DocTerms returns the sorted distinct terms of a document. The returned
// slice is shared and must not be mutated.
func (idx *Index) DocTerms(id document.DocID) []string { return idx.docTerms[id] }

// DocTermFreqs returns the term frequencies of a document, aligned with
// DocTerms. The returned slice is shared and must not be mutated.
func (idx *Index) DocTermFreqs(id document.DocID) []int { return idx.docFreqs[id] }

// HasTerm reports whether document id contains term.
func (idx *Index) HasTerm(id document.DocID, term string) bool {
	terms := idx.docTerms[id]
	i := sort.SearchStrings(terms, term)
	return i < len(terms) && terms[i] == term
}

// TermFreq returns the frequency of term in document id.
func (idx *Index) TermFreq(id document.DocID, term string) int {
	return idx.postings[term].Freq(id)
}

// IDF returns the smoothed inverse document frequency
// log(1 + N/df); 0 for unseen terms.
func (idx *Index) IDF(term string) float64 {
	df := idx.DocFreq(term)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(idx.NumDocs())/float64(df))
}

// TFIDF returns tf · idf for a term in a document, with raw term-frequency
// weighting as used by the paper's setup ("the weight of each component is
// the TF of the feature"; results ranked by "tfidf of the keywords").
func (idx *Index) TFIDF(id document.DocID, term string) float64 {
	tf := idx.TermFreq(id, term)
	if tf == 0 {
		return 0
	}
	return float64(tf) * idx.IDF(term)
}

// Vocabulary returns all indexed terms, sorted. Intended for tests and
// debugging; it allocates.
func (idx *Index) Vocabulary() []string {
	terms := make([]string, 0, len(idx.postings))
	for t := range idx.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Validate checks internal invariants (postings sorted, doc frequencies
// consistent with document term sets) and returns an error describing the
// first violation. Used by tests and the property suite.
func (idx *Index) Validate() error {
	for term, plist := range idx.postings {
		for i := 1; i < len(plist); i++ {
			if plist[i-1].Doc >= plist[i].Doc {
				return fmt.Errorf("postings for %q not strictly sorted at %d", term, i)
			}
		}
		for _, p := range plist {
			if p.Freq <= 0 {
				return fmt.Errorf("non-positive freq for %q in doc %d", term, p.Doc)
			}
			if !idx.HasTerm(p.Doc, term) {
				return fmt.Errorf("posting %q->%d missing from docTerms", term, p.Doc)
			}
		}
	}
	for id, terms := range idx.docTerms {
		freqs := idx.docFreqs[id]
		if len(freqs) != len(terms) {
			return fmt.Errorf("docFreqs of doc %d has %d entries for %d terms", id, len(freqs), len(terms))
		}
		for i, term := range terms {
			if !idx.postings[term].Contains(id) {
				return fmt.Errorf("docTerm %q of doc %d missing from postings", term, id)
			}
			if freqs[i] != idx.postings[term].Freq(id) {
				return fmt.Errorf("docFreqs misaligned for %q in doc %d: %d vs posting %d",
					term, id, freqs[i], idx.postings[term].Freq(id))
			}
		}
	}
	return nil
}
