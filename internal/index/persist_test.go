package index

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := buildTestIndex(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, analysis.Simple())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != orig.NumDocs() || loaded.NumTerms() != orig.NumTerms() {
		t.Fatalf("stats differ: %d/%d docs, %d/%d terms",
			loaded.NumDocs(), orig.NumDocs(), loaded.NumTerms(), orig.NumTerms())
	}
	for _, term := range orig.Vocabulary() {
		if loaded.DocFreq(term) != orig.DocFreq(term) {
			t.Errorf("DocFreq(%q) differs", term)
		}
	}
	// Corpus round-trips including triplets.
	doc := loaded.Corpus().Get(3)
	if doc == nil || len(doc.Triplets) != 1 {
		t.Fatalf("structured doc lost: %+v", doc)
	}
	if err := loaded.Validate(); err != nil {
		t.Errorf("Validate after load: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream")), analysis.Simple()); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	orig := buildTestIndex(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by decoding into the raw snapshot.
	// Simpler: corrupt via a fresh snapshot with wrong version.
	var corrupted bytes.Buffer
	bad := snapshot{Version: persistVersion + 1}
	if err := encodeSnapshot(&corrupted, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&corrupted, analysis.Simple()); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestSaveLoadEmptyIndex(t *testing.T) {
	orig := Build(document.NewCorpus(), analysis.Simple())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, analysis.Simple())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != 0 {
		t.Errorf("NumDocs = %d", loaded.NumDocs())
	}
}
