package index

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/termdict"
)

// equalIndexes asserts deep equality of two indexes: vocabulary, postings
// (docs and freqs), document term arenas, lengths and IDF tables.
func equalIndexes(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() || got.NumTerms() != want.NumTerms() {
		t.Fatalf("stats differ: %d/%d docs, %d/%d terms",
			got.NumDocs(), want.NumDocs(), got.NumTerms(), want.NumTerms())
	}
	if got.totalLen != want.totalLen {
		t.Errorf("totalLen = %d, want %d", got.totalLen, want.totalLen)
	}
	for tnum := 0; tnum < want.NumTerms(); tnum++ {
		tid := termdict.TermID(tnum)
		term := want.TermByID(tid)
		gtid, ok := got.LookupTerm(term)
		if !ok || gtid != tid {
			t.Fatalf("term %q: id %d,%v, want %d", term, gtid, ok, tid)
		}
		gd, wd := got.PostingsDocs(tid), want.PostingsDocs(tid)
		gf, wf := got.PostingsFreqs(tid), want.PostingsFreqs(tid)
		if len(gd) != len(wd) {
			t.Fatalf("postings of %q: %d docs, want %d", term, len(gd), len(wd))
		}
		for i := range wd {
			if gd[i] != wd[i] || gf[i] != wf[i] {
				t.Fatalf("postings of %q differ at %d: (%d,%d) vs (%d,%d)",
					term, i, gd[i], gf[i], wd[i], wf[i])
			}
		}
		if got.IDFByID(tid) != want.IDFByID(tid) {
			t.Errorf("IDF of %q differs: %v vs %v", term, got.IDFByID(tid), want.IDFByID(tid))
		}
	}
	for d := 0; d < want.NumDocs(); d++ {
		id := document.DocID(d)
		gt, wt := got.DocTermIDs(id), want.DocTermIDs(id)
		gf, wf := got.DocTermFreqs(id), want.DocTermFreqs(id)
		if len(gt) != len(wt) {
			t.Fatalf("doc %d: %d terms, want %d", d, len(gt), len(wt))
		}
		for i := range wt {
			if gt[i] != wt[i] || gf[i] != wf[i] {
				t.Fatalf("doc %d terms differ at %d", d, i)
			}
		}
		if got.DocLen(id) != want.DocLen(id) {
			t.Errorf("DocLen(%d) = %d, want %d", d, got.DocLen(id), want.DocLen(id))
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := buildTestIndex(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, analysis.Simple())
	if err != nil {
		t.Fatal(err)
	}
	equalIndexes(t, loaded, orig)
	// Corpus round-trips including triplets.
	doc := loaded.Corpus().Get(3)
	if doc == nil || len(doc.Triplets) != 1 {
		t.Fatalf("structured doc lost: %+v", doc)
	}
	if err := loaded.Validate(); err != nil {
		t.Errorf("Validate after load: %v", err)
	}
}

// TestLoadV1Migration pins the legacy read path: a version-1 (map-format)
// snapshot loads through the migration and is indistinguishable from the
// arena-built index.
func TestLoadV1Migration(t *testing.T) {
	orig := buildTestIndex(t)
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, orig.legacySnapshotV1()); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, analysis.Simple())
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	equalIndexes(t, loaded, orig)
	if err := loaded.Validate(); err != nil {
		t.Errorf("Validate after v1 migration: %v", err)
	}
}

const v1FixturePath = "testdata/snapshot_v1.gob"

// TestV1FixtureMigration loads the checked-in version-1 snapshot — written
// by the pre-termdict format (regenerate with QEC_WRITE_V1_FIXTURE=1, which
// re-encodes buildTestIndex through the legacy layout) — and verifies the
// migration reproduces the index built fresh from the same corpus.
func TestV1FixtureMigration(t *testing.T) {
	if os.Getenv("QEC_WRITE_V1_FIXTURE") != "" {
		if err := os.MkdirAll(filepath.Dir(v1FixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := encodeSnapshot(&buf, buildTestIndex(t).legacySnapshotV1()); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(v1FixturePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", v1FixturePath, buf.Len())
	}
	data, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("fixture missing (regenerate with QEC_WRITE_V1_FIXTURE=1): %v", err)
	}
	loaded, err := Load(bytes.NewReader(data), analysis.Simple())
	if err != nil {
		t.Fatalf("v1 fixture rejected: %v", err)
	}
	equalIndexes(t, loaded, buildTestIndex(t))
}

// TestLoadV1RejectsOrphanDocTerm pins that migration keeps the old loader's
// strictness: a v1 snapshot whose DocTerms lists a term with no posting list
// is corrupt and must be rejected, not silently dropped.
func TestLoadV1RejectsOrphanDocTerm(t *testing.T) {
	snap := buildTestIndex(t).legacySnapshotV1()
	snap.DocTerms[0] = append(snap.DocTerms[0], "zzz-orphan")
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, analysis.Simple())
	if err == nil {
		t.Fatal("orphan doc term accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("missing from postings")) {
		t.Errorf("error %q does not mention the orphan", err)
	}
}

// TestLoadV1RejectsNonPositiveFreq pins that migration rejects corrupt v1
// frequencies instead of wrapping them through the uint16 conversion.
func TestLoadV1RejectsNonPositiveFreq(t *testing.T) {
	snap := buildTestIndex(t).legacySnapshotV1()
	for term, plist := range snap.Postings {
		plist[0].Freq = -1
		snap.Postings[term] = plist
		break
	}
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, analysis.Simple()); err == nil {
		t.Fatal("negative v1 freq accepted (uint16 wrap)")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream")), analysis.Simple()); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	for _, version := range []int{0, persistVersion + 1, 99} {
		var buf bytes.Buffer
		bad := snapshot{Version: version}
		if err := encodeSnapshot(&buf, &bad); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&buf, analysis.Simple())
		if err == nil {
			t.Errorf("version %d accepted", version)
			continue
		}
		if want := "unsupported snapshot version"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("version %d: error %q does not mention %q", version, err, want)
		}
	}
}

func TestSaveLoadEmptyIndex(t *testing.T) {
	orig := Build(document.NewCorpus(), analysis.Simple())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, analysis.Simple())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != 0 {
		t.Errorf("NumDocs = %d", loaded.NumDocs())
	}
}
