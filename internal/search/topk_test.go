package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

// TestSearchTopKMatchesFullScoring is the pruning soundness property: for
// every (query, semantics, topK), the block-max pruned paths must return
// bit-identical results to scoring every match and truncating — same
// documents, same float scores, same (score desc, DocID asc) order. Corpora
// include duplicated documents (exactly tied scores, so the DocID tie-break
// is load-bearing) and queries include out-of-vocabulary terms.
func TestSearchTopKMatchesFullScoring(t *testing.T) {
	for _, corpus := range []struct {
		seed  int64
		docs  int
		vocab int
	}{
		{seed: 7, docs: 40, vocab: 4},    // dense overlap, many ties
		{seed: 13, docs: 200, vocab: 10}, // multi-block posting lists
		{seed: 29, docs: 75, vocab: 25},  // sparse overlap, short lists
	} {
		t.Run(fmt.Sprintf("seed%d", corpus.seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(corpus.seed))
			words := make([]string, corpus.vocab)
			for i := range words {
				words[i] = fmt.Sprintf("w%d", i)
			}
			c := document.NewCorpus()
			prev := words[0]
			for i := 0; i < corpus.docs; i++ {
				if i > 0 && rng.Intn(4) == 0 {
					// Duplicate the previous document verbatim: identical
					// term stats, identical score, distinct DocID.
					c.AddText("", prev)
					continue
				}
				n := 1 + rng.Intn(7)
				text := ""
				for j := 0; j < n; j++ {
					if j > 0 {
						text += " "
					}
					text += words[rng.Intn(len(words))]
				}
				c.AddText("", text)
				prev = text
			}
			e := NewEngine(index.Build(c, analysis.Simple()))

			for trial := 0; trial < 60; trial++ {
				nt := 1 + rng.Intn(3)
				terms := make([]string, nt)
				for i := range terms {
					terms[i] = words[rng.Intn(len(words))]
				}
				if rng.Intn(5) == 0 {
					terms = append(terms, "zzz-out-of-vocabulary")
				}
				q := NewQuery(terms...)
				for _, sem := range []Semantics{And, Or} {
					full := e.Search(q, sem, 0)
					for _, topK := range []int{1, 5, 10, 0} {
						got := e.Search(q, sem, topK)
						want := full
						if topK > 0 && topK < len(want) {
							want = want[:topK]
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("Search(%v, %v, %d) diverges from full scoring:\n got %v\nwant %v",
								q.Terms, sem, topK, got, want)
						}
					}
				}
			}
		})
	}
}

// TestSearchPrunedBitIdentical pins the EXPLAIN leg of the pruning
// contract: attaching a PruneStats collector must not change a single bit of
// the results, and on corpora deep enough to fill the heap the collector
// actually observes the traversal (candidates scored, threshold trajectory).
func TestSearchPrunedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	words := []string{"w0", "w1", "w2", "w3", "w4"}
	c := document.NewCorpus()
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(6)
		text := ""
		for j := 0; j < n; j++ {
			if j > 0 {
				text += " "
			}
			text += words[rng.Intn(len(words))]
		}
		c.AddText("", text)
	}
	e := NewEngine(index.Build(c, analysis.Simple()))
	for _, sem := range []Semantics{And, Or} {
		q := NewQuery("w0", "w1")
		want := e.Search(q, sem, 10)
		var ps PruneStats
		got := e.SearchPruned(q, sem, 10, &ps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SearchPruned(%v) diverges from Search:\n got %v\nwant %v", sem, got, want)
		}
		if !ps.Pruned {
			t.Errorf("%v: pruned path did not run", sem)
		}
		if ps.DocsScored == 0 {
			t.Errorf("%v: no candidates scored", sem)
		}
		if ps.DocsScored+ps.DocsSkipped < len(want) {
			t.Errorf("%v: scored %d + skipped %d < %d results", sem, ps.DocsScored, ps.DocsSkipped, len(want))
		}
		if len(ps.Thresholds) == 0 {
			t.Errorf("%v: empty threshold trajectory on a heap-filling corpus", sem)
		}
		if ps.CursorAdvances == 0 {
			t.Errorf("%v: no cursor advances recorded", sem)
		}
	}
	// The full-scan paths report Pruned=false and touch nothing else.
	var ps PruneStats
	e.SearchPruned(NewQuery("w0"), And, 0, &ps)
	if ps.Pruned || ps.DocsScored != 0 {
		t.Errorf("full scan recorded pruning stats: %+v", ps)
	}
}

// TestSearchTopKEdgeQueries pins the paths the property grid can miss: the
// empty AND query (full-corpus retrieval stays on the unpruned path), a
// purely out-of-vocabulary query, and topK larger than the corpus.
func TestSearchTopKEdgeQueries(t *testing.T) {
	c := document.NewCorpus()
	c.AddText("", "apple fruit")
	c.AddText("", "apple computer")
	c.AddText("", "banana fruit")
	e := NewEngine(index.Build(c, analysis.Simple()))

	empty := NewQuery()
	if got, want := e.Search(empty, And, 2), e.Search(empty, And, 0)[:2]; !reflect.DeepEqual(got, want) {
		t.Errorf("empty AND query with topK: got %v, want %v", got, want)
	}

	oov := NewQuery("zzz")
	for _, sem := range []Semantics{And, Or} {
		got := e.Search(oov, sem, 5)
		if got == nil || len(got) != 0 {
			t.Errorf("OOV query (%v) = %v, want non-nil empty", sem, got)
		}
	}

	big := e.Search(NewQuery("fruit"), Or, 100)
	if len(big) != 2 {
		t.Errorf("topK beyond corpus returned %d results, want 2", len(big))
	}
}
