// Package search implements boolean keyword retrieval with TF-IDF ranking
// over the inverted index. A result of a query is, per Section 2 of the
// paper, a document that contains all the query keywords (AND semantics);
// OR semantics is also provided since the paper notes it is "essentially the
// identical problem".
package search

import (
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/termdict"
)

// Semantics selects how multiple keywords combine.
type Semantics int

const (
	// And retrieves documents containing every keyword.
	And Semantics = iota
	// Or retrieves documents containing at least one keyword.
	Or
)

// Query is a keyword query: a set of normalized terms. Terms may be plain
// words or composite triplet terms (entity:attribute:value).
type Query struct {
	Terms []string
}

// ParseQuery analyzes raw user text into a query using the index's analyzer.
// Composite terms (containing ':') are kept verbatim.
func ParseQuery(idx *index.Index, raw string) Query {
	var terms []string
	seen := make(map[string]struct{})
	for _, field := range strings.Fields(raw) {
		if strings.Contains(field, ":") {
			if _, ok := seen[field]; !ok {
				seen[field] = struct{}{}
				terms = append(terms, strings.ToLower(field))
			}
			continue
		}
		for _, term := range idx.Analyzer().UniqueTerms(field) {
			if _, ok := seen[term]; !ok {
				seen[term] = struct{}{}
				terms = append(terms, term)
			}
		}
	}
	return Query{Terms: terms}
}

// NewQuery builds a query from already-normalized terms, deduplicated,
// preserving order.
func NewQuery(terms ...string) Query {
	seen := make(map[string]struct{}, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return Query{Terms: out}
}

// With returns a copy of q with term appended (no-op if already present).
func (q Query) With(term string) Query {
	for _, t := range q.Terms {
		if t == term {
			return q
		}
	}
	terms := make([]string, len(q.Terms), len(q.Terms)+1)
	copy(terms, q.Terms)
	return Query{Terms: append(terms, term)}
}

// Without returns a copy of q with term removed.
func (q Query) Without(term string) Query {
	terms := make([]string, 0, len(q.Terms))
	for _, t := range q.Terms {
		if t != term {
			terms = append(terms, t)
		}
	}
	return Query{Terms: terms}
}

// Contains reports whether the query includes term.
func (q Query) Contains(term string) bool {
	for _, t := range q.Terms {
		if t == term {
			return true
		}
	}
	return false
}

// Len returns the number of terms.
func (q Query) Len() int { return len(q.Terms) }

// String renders the query as space-joined terms.
func (q Query) String() string { return strings.Join(q.Terms, " ") }

// Result is one ranked search hit.
type Result struct {
	Doc   document.DocID
	Score float64
}

// Engine evaluates queries against an index.
type Engine struct {
	idx *index.Index
}

// NewEngine returns a search engine over idx.
func NewEngine(idx *index.Index) *Engine { return &Engine{idx: idx} }

// Index returns the underlying index.
func (e *Engine) Index() *index.Index { return e.idx }

// Eval returns the unranked result set of q under the given semantics.
// An empty AND query matches every document; an empty OR query matches none.
func (e *Engine) Eval(q Query, sem Semantics) document.DocSet {
	if sem == Or {
		return e.evalOr(e.resolveTerms(q))
	}
	return e.evalAnd(q)
}

// resolveTerms interns q's terms through the index's global term dictionary,
// once per evaluation. Terms outside the corpus vocabulary resolve to
// termdict.NoTerm (they match no document).
func (e *Engine) resolveTerms(q Query) []termdict.TermID {
	tids := make([]termdict.TermID, len(q.Terms))
	for i, t := range q.Terms {
		tid, ok := e.idx.LookupTerm(t)
		if !ok {
			tid = termdict.NoTerm
		}
		tids[i] = tid
	}
	return tids
}

// evalAndIDs returns the AND result as ascending document IDs, via a
// sorted-postings merge over the raw []int32 arena slices: postings are
// intersected smallest-first, each round advancing through the longer list
// with a galloping search from the current merge position, so no
// intermediate map (or string lookup) happens inside the merge.
func (e *Engine) evalAndIDs(tids []termdict.TermID) []document.DocID {
	if len(tids) == 0 {
		all := make([]document.DocID, e.idx.NumDocs())
		for i := range all {
			all[i] = document.DocID(i)
		}
		return all
	}
	lists := make([][]int32, len(tids))
	for i, tid := range tids {
		if tid == termdict.NoTerm {
			return nil
		}
		lists[i] = e.idx.PostingsDocs(tid)
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cands := make([]document.DocID, len(lists[0]))
	for i, d := range lists[0] {
		cands[i] = document.DocID(d)
	}
	for _, plist := range lists[1:] {
		out := cands[:0]
		j := 0
		for _, id := range cands {
			k := sort.Search(len(plist)-j, func(i int) bool { return plist[j+i] >= int32(id) })
			j += k
			if j < len(plist) && plist[j] == int32(id) {
				out = append(out, id)
				j++
			}
		}
		cands = out
		if len(cands) == 0 {
			return nil
		}
	}
	return cands
}

func (e *Engine) evalAnd(q Query) document.DocSet {
	ids := e.evalAndIDs(e.resolveTerms(q))
	out := make(document.DocSet, len(ids))
	for _, id := range ids {
		out.Add(id)
	}
	return out
}

func (e *Engine) evalOr(tids []termdict.TermID) document.DocSet {
	out := document.DocSet{}
	for _, tid := range tids {
		if tid == termdict.NoTerm {
			continue
		}
		for _, d := range e.idx.PostingsDocs(tid) {
			out.Add(document.DocID(d))
		}
	}
	return out
}

// scoreIDs is Score over pre-resolved TermIDs — the per-result ranking cost
// of Search, free of string lookups.
func (e *Engine) scoreIDs(id document.DocID, tids []termdict.TermID) float64 {
	s := 0.0
	for _, tid := range tids {
		if tid != termdict.NoTerm {
			s += e.idx.TFIDFByID(id, tid)
		}
	}
	if n := e.idx.DocLen(id); n > 0 {
		s /= 1 + float64(n)/e.idx.AvgDocLen()
	}
	return s
}

// Score returns the TF-IDF relevance score of document id for query q:
// the sum of tf·idf over the query terms, normalized by document length.
// This is the ranking the experimental setup describes ("the results are
// ranked using tfidf of the keywords").
func (e *Engine) Score(id document.DocID, q Query) float64 {
	return e.scoreIDs(id, e.resolveTerms(q))
}

// Search evaluates q and returns results ranked by descending TF-IDF score
// (ties broken by ascending DocID for determinism). topK <= 0 returns all.
// Query strings are resolved to TermIDs once; the AND path scores straight
// off the merged posting IDs — no intermediate set is materialized.
func (e *Engine) Search(q Query, sem Semantics, topK int) []Result {
	tids := e.resolveTerms(q)
	var results []Result
	if sem == And {
		ids := e.evalAndIDs(tids)
		results = make([]Result, 0, len(ids))
		for _, id := range ids {
			results = append(results, Result{Doc: id, Score: e.scoreIDs(id, tids)})
		}
	} else {
		set := e.evalOr(tids)
		results = make([]Result, 0, set.Len())
		for id := range set {
			results = append(results, Result{Doc: id, Score: e.scoreIDs(id, tids)})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
	if topK > 0 && len(results) > topK {
		results = results[:topK]
	}
	return results
}

// ResultSet converts ranked results into a DocSet.
func ResultSet(results []Result) document.DocSet {
	s := make(document.DocSet, len(results))
	for _, r := range results {
		s.Add(r.Doc)
	}
	return s
}
