// Package search implements boolean keyword retrieval with TF-IDF ranking
// over the inverted index. A result of a query is, per Section 2 of the
// paper, a document that contains all the query keywords (AND semantics);
// OR semantics is also provided since the paper notes it is "essentially the
// identical problem".
package search

import (
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/termdict"
)

// Semantics selects how multiple keywords combine.
type Semantics int

const (
	// And retrieves documents containing every keyword.
	And Semantics = iota
	// Or retrieves documents containing at least one keyword.
	Or
)

// Query is a keyword query: a set of normalized terms. Terms may be plain
// words or composite triplet terms (entity:attribute:value).
type Query struct {
	Terms []string
}

// ParseQuery analyzes raw user text into a query using the index's analyzer.
// Composite terms (containing ':') are kept verbatim.
func ParseQuery(idx *index.Index, raw string) Query {
	var terms []string
	seen := make(map[string]struct{})
	for _, field := range strings.Fields(raw) {
		if strings.Contains(field, ":") {
			if _, ok := seen[field]; !ok {
				seen[field] = struct{}{}
				terms = append(terms, strings.ToLower(field))
			}
			continue
		}
		for _, term := range idx.Analyzer().UniqueTerms(field) {
			if _, ok := seen[term]; !ok {
				seen[term] = struct{}{}
				terms = append(terms, term)
			}
		}
	}
	return Query{Terms: terms}
}

// NewQuery builds a query from already-normalized terms, deduplicated,
// preserving order.
func NewQuery(terms ...string) Query {
	seen := make(map[string]struct{}, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return Query{Terms: out}
}

// With returns a copy of q with term appended (no-op if already present).
func (q Query) With(term string) Query {
	for _, t := range q.Terms {
		if t == term {
			return q
		}
	}
	terms := make([]string, len(q.Terms), len(q.Terms)+1)
	copy(terms, q.Terms)
	return Query{Terms: append(terms, term)}
}

// Without returns a copy of q with term removed.
func (q Query) Without(term string) Query {
	terms := make([]string, 0, len(q.Terms))
	for _, t := range q.Terms {
		if t != term {
			terms = append(terms, t)
		}
	}
	return Query{Terms: terms}
}

// Contains reports whether the query includes term.
func (q Query) Contains(term string) bool {
	for _, t := range q.Terms {
		if t == term {
			return true
		}
	}
	return false
}

// Len returns the number of terms.
func (q Query) Len() int { return len(q.Terms) }

// String renders the query as space-joined terms.
func (q Query) String() string { return strings.Join(q.Terms, " ") }

// Result is one ranked search hit.
type Result struct {
	Doc   document.DocID
	Score float64
}

// Engine evaluates queries against an index.
type Engine struct {
	idx *index.Index
}

// NewEngine returns a search engine over idx.
func NewEngine(idx *index.Index) *Engine { return &Engine{idx: idx} }

// Index returns the underlying index.
func (e *Engine) Index() *index.Index { return e.idx }

// Eval returns the unranked result of q under the given semantics as
// ascending document IDs — the raw sorted-postings merge output, with no
// intermediate set materialized. An empty AND query matches every document;
// an empty OR query matches none. Callers needing set algebra can wrap the
// slice with document.NewDocSet.
func (e *Engine) Eval(q Query, sem Semantics) []document.DocID {
	if sem == Or {
		return e.evalOrIDs(e.resolveTerms(q))
	}
	return e.evalAndIDs(e.resolveTerms(q))
}

// resolveTerms interns q's terms through the index's global term dictionary,
// once per evaluation. Terms outside the corpus vocabulary resolve to
// termdict.NoTerm (they match no document).
func (e *Engine) resolveTerms(q Query) []termdict.TermID {
	tids := make([]termdict.TermID, len(q.Terms))
	for i, t := range q.Terms {
		tid, ok := e.idx.LookupTerm(t)
		if !ok {
			tid = termdict.NoTerm
		}
		tids[i] = tid
	}
	return tids
}

// evalAndIDs returns the AND result as ascending document IDs, via a
// sorted-postings merge over the raw []int32 arena slices: postings are
// intersected smallest-first, each round advancing through the longer list
// with a galloping search from the current merge position, so no
// intermediate map (or string lookup) happens inside the merge.
func (e *Engine) evalAndIDs(tids []termdict.TermID) []document.DocID {
	if len(tids) == 0 {
		all := make([]document.DocID, e.idx.NumDocs())
		for i := range all {
			all[i] = document.DocID(i)
		}
		return all
	}
	lists := make([][]int32, len(tids))
	for i, tid := range tids {
		if tid == termdict.NoTerm {
			return nil
		}
		lists[i] = e.idx.PostingsDocs(tid)
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cands := make([]document.DocID, len(lists[0]))
	for i, d := range lists[0] {
		cands[i] = document.DocID(d)
	}
	for _, plist := range lists[1:] {
		out := cands[:0]
		j := 0
		for _, id := range cands {
			k := sort.Search(len(plist)-j, func(i int) bool { return plist[j+i] >= int32(id) })
			j += k
			if j < len(plist) && plist[j] == int32(id) {
				out = append(out, id)
				j++
			}
		}
		cands = out
		if len(cands) == 0 {
			return nil
		}
	}
	return cands
}

// evalOrIDs returns the OR result as ascending document IDs, via a k-way
// merge over the sorted posting arena slices: each round emits the smallest
// current document across the lists and advances every cursor sitting on it.
// No map (or per-document hashing) is involved, and the output order is the
// ascending-DocID order the scoring layers fold in.
func (e *Engine) evalOrIDs(tids []termdict.TermID) []document.DocID {
	lists := make([][]int32, 0, len(tids))
	longest := 0
	for _, tid := range tids {
		if tid == termdict.NoTerm {
			continue
		}
		if l := e.idx.PostingsDocs(tid); len(l) > 0 {
			lists = append(lists, l)
			if len(l) > longest {
				longest = len(l)
			}
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]document.DocID, len(lists[0]))
		for i, d := range lists[0] {
			out[i] = document.DocID(d)
		}
		return out
	}
	pos := make([]int, len(lists))
	out := make([]document.DocID, 0, longest)
	for {
		min := int32(-1)
		for i, l := range lists {
			if pos[i] < len(l) && (min < 0 || l[pos[i]] < min) {
				min = l[pos[i]]
			}
		}
		if min < 0 {
			return out
		}
		out = append(out, document.DocID(min))
		for i, l := range lists {
			if pos[i] < len(l) && l[pos[i]] == min {
				pos[i]++
			}
		}
	}
}

// scoreIDs is Score over pre-resolved TermIDs — the per-result ranking cost
// of Search, free of string lookups.
func (e *Engine) scoreIDs(id document.DocID, tids []termdict.TermID) float64 {
	s := 0.0
	for _, tid := range tids {
		if tid != termdict.NoTerm {
			s += e.idx.TFIDFByID(id, tid)
		}
	}
	if n := e.idx.DocLen(id); n > 0 {
		s /= 1 + float64(n)/e.idx.AvgDocLen()
	}
	return s
}

// Score returns the TF-IDF relevance score of document id for query q:
// the sum of tf·idf over the query terms, normalized by document length.
// This is the ranking the experimental setup describes ("the results are
// ranked using tfidf of the keywords").
func (e *Engine) Score(id document.DocID, q Query) float64 {
	return e.scoreIDs(id, e.resolveTerms(q))
}

// PruneStats collects the top-K pruning counters of one Search: how many
// driving-list blocks the block-max check skipped wholesale, how many cursor
// advances the galloping skips performed, how many candidates were scored
// versus dropped by a bound check, and the heap-threshold trajectory (the
// K-th best score each time it moved, capped at maxThresholdSamples). A nil
// *PruneStats is valid everywhere — every method no-ops — so the pruned
// paths carry no explain branches beyond a nil test. Recording never touches
// the score arithmetic: SearchPruned with a collector is bit-identical to
// Search.
type PruneStats struct {
	// Pruned reports whether a pruned top-K path ran at all (false for
	// topK <= 0 and the empty AND query, which scan fully).
	Pruned bool
	// BlocksSkipped counts driving-list blocks skipped wholesale by the
	// AND path's block-max check.
	BlocksSkipped int
	// CursorAdvances counts posting-cursor moves: galloping advances in
	// the AND intersection, per-list pops in the OR merge.
	CursorAdvances int
	// DocsScored and DocsSkipped split the candidates that survived the
	// traversal: fully scored versus dropped by a bound check just before
	// scoring.
	DocsScored, DocsSkipped int
	// NonEssential is the OR path's final non-essential prefix size.
	NonEssential int
	// Thresholds is the heap-threshold trajectory: the K-th best score
	// each time it changed, oldest first.
	Thresholds []float64
}

// maxThresholdSamples bounds the recorded threshold trajectory.
const maxThresholdSamples = 64

func (ps *PruneStats) markPruned() {
	if ps != nil {
		ps.Pruned = true
	}
}

func (ps *PruneStats) blockSkipped() {
	if ps != nil {
		ps.BlocksSkipped++
	}
}

func (ps *PruneStats) advanced() {
	if ps != nil {
		ps.CursorAdvances++
	}
}

func (ps *PruneStats) scored() {
	if ps != nil {
		ps.DocsScored++
	}
}

func (ps *PruneStats) skipped() {
	if ps != nil {
		ps.DocsSkipped++
	}
}

func (ps *PruneStats) noteThreshold(v float64) {
	if ps == nil {
		return
	}
	if n := len(ps.Thresholds); n < maxThresholdSamples && (n == 0 || ps.Thresholds[n-1] != v) {
		ps.Thresholds = append(ps.Thresholds, v)
	}
}

// Search evaluates q and returns results ranked by descending TF-IDF score
// (ties broken by ascending DocID for determinism). topK <= 0 returns all.
// Query strings are resolved to TermIDs once.
//
// A finite topK runs the max-score/block-max pruned paths (searchTopKAnd /
// searchTopKOr), which skip scoring — and for AND, skip whole posting
// blocks — for documents whose score upper bound cannot reach the current
// K-th best. Pruning is exact: the returned slice is bit-identical to
// scoring the entire result and truncating, which topK <= 0 (and the empty
// AND query, whose result is the whole corpus) still does.
func (e *Engine) Search(q Query, sem Semantics, topK int) []Result {
	return e.SearchPruned(q, sem, topK, nil)
}

// SearchPruned is Search with an optional pruning-counter collector for the
// EXPLAIN surface. ps may be nil (then this is exactly Search); with a
// collector attached the results are still bit-identical — only counters and
// the threshold trajectory are recorded.
func (e *Engine) SearchPruned(q Query, sem Semantics, topK int, ps *PruneStats) []Result {
	tids := e.resolveTerms(q)
	if topK > 0 {
		if sem == Or {
			return e.searchTopKOr(tids, topK, ps)
		}
		if len(tids) > 0 {
			return e.searchTopKAnd(tids, topK, ps)
		}
	}
	var results []Result
	if sem == And {
		ids := e.evalAndIDs(tids)
		results = make([]Result, 0, len(ids))
		for _, id := range ids {
			results = append(results, Result{Doc: id, Score: e.scoreIDs(id, tids)})
		}
	} else {
		ids := e.evalOrIDs(tids)
		results = make([]Result, 0, len(ids))
		for _, id := range ids {
			results = append(results, Result{Doc: id, Score: e.scoreIDs(id, tids)})
		}
	}
	sortResults(results)
	if topK > 0 && len(results) > topK {
		results = results[:topK]
	}
	return results
}

// boundSlack inflates every score upper bound before it is compared against
// the heap threshold. The block-max tables bound per-posting contributions
// computed as tf·idf/D in isolation, while scoreIDs divides the summed
// tf·idf once at the end; in real arithmetic the summed bounds dominate the
// true score, but the two float expressions can disagree by a few ulps.
// Multiplying the bound by 1+1e-9 — many orders of magnitude above the
// worst-case accumulated rounding of any realistic query width — and
// pruning only when the inflated bound still falls strictly below the
// threshold keeps every skip provably safe: a pruned document's true float
// score is strictly below the current K-th best, so it could not have
// entered the result even on a tie.
const boundSlack = 1 + 1e-9

// worse reports whether a ranks strictly below b in the engine's result
// ordering (score descending, DocID ascending).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// topKHeap is a bounded min-heap keyed worst-first under the result
// ordering: the root is the current K-th best hit, whose score is the
// pruning threshold.
type topKHeap struct {
	k     int
	items []Result
}

func (h *topKHeap) full() bool { return len(h.items) == h.k }

// threshold returns the K-th best score; callers check full() first.
func (h *topKHeap) threshold() float64 { return h.items[0].Score }

// push offers a result. Until full it inserts; once full it replaces the
// root only when r ranks strictly above it.
func (h *topKHeap) push(r Result) {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h.items[i], h.items[p]) {
				break
			}
			h.items[i], h.items[p] = h.items[p], h.items[i]
			i = p
		}
		return
	}
	if !worse(h.items[0], r) {
		return
	}
	h.items[0] = r
	i := 0
	for {
		c := 2*i + 1
		if c >= len(h.items) {
			return
		}
		if rc := c + 1; rc < len(h.items) && worse(h.items[rc], h.items[c]) {
			c = rc
		}
		if !worse(h.items[c], h.items[i]) {
			return
		}
		h.items[i], h.items[c] = h.items[c], h.items[i]
		i = c
	}
}

// sorted returns the collected results in final rank order.
func (h *topKHeap) sorted() []Result {
	sortResults(h.items)
	return h.items
}

// sortResults orders results by descending score, ties by ascending DocID —
// the engine-wide ranking order.
func sortResults(results []Result) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
}

// advancePostings returns the first position >= pos whose document is >=
// target, galloping exponentially from pos before binary-searching the
// bracketed window — the skip primitive of both pruned paths.
func advancePostings(docs []int32, pos int, target int32) int {
	if pos >= len(docs) || docs[pos] >= target {
		return pos
	}
	step := 1
	hi := pos + 1
	for hi < len(docs) && docs[hi] < target {
		pos = hi
		hi += step
		step <<= 1
	}
	if hi > len(docs) {
		hi = len(docs)
	}
	lo := pos + 1
	return lo + sort.Search(hi-lo, func(k int) bool { return docs[lo+k] >= target })
}

// searchTopKAnd is the pruned AND path: the same smallest-first galloping
// intersection as evalAndIDs, threaded with block-max skipping once the
// heap is full. Whole driving-list blocks are skipped when the block max
// plus the other terms' max-scores cannot strictly beat the K-th best
// score, and intersection survivors are scored only when the sum of the
// per-list block maxes at their positions can. Candidates arrive in
// ascending DocID order, and survivors are scored straight off the cursor
// positions the intersection already holds — each term's tf is the aligned
// freqs entry, so no per-term posting lookup — folding the tf·idf
// contributions in original query-term order, exactly scoreIDs' fold
// (TFIDFByID is float64(tf)·idf), so the output is bit-identical to the
// full-scoring path.
func (e *Engine) searchTopKAnd(qtids []termdict.TermID, topK int, ps *PruneStats) []Result {
	ps.markPruned()
	type andCursor struct {
		docs  []int32
		freqs []uint16
		bm    []float64
		idf   float64
		ub    float64
		ord   int // position in qtids = scoring fold order
		pos   int
	}
	curs := make([]andCursor, len(qtids))
	for i, tid := range qtids {
		if tid == termdict.NoTerm {
			return []Result{}
		}
		docs := e.idx.PostingsDocs(tid)
		if len(docs) == 0 {
			return []Result{}
		}
		curs[i] = andCursor{
			docs:  docs,
			freqs: e.idx.PostingsFreqs(tid),
			bm:    e.idx.BlockMaxScores(tid),
			idf:   e.idx.IDFByID(tid),
			ub:    e.idx.TermMaxScore(tid),
			ord:   i,
		}
	}
	sort.Slice(curs, func(i, j int) bool { return len(curs[i].docs) < len(curs[j].docs) })
	restUB := 0.0
	for _, c := range curs[1:] {
		restUB += c.ub
	}
	contrib := make([]float64, len(curs)) // indexed by ord; every slot set per survivor
	avg := e.idx.AvgDocLen()
	h := &topKHeap{k: topK, items: make([]Result, 0, min(topK, len(curs[0].docs)))}
	drive := &curs[0]
	i := 0
outer:
	for i < len(drive.docs) {
		if h.full() {
			b := i / index.ScoreBlockSize
			if (drive.bm[b]+restUB)*boundSlack < h.threshold() {
				i = (b + 1) * index.ScoreBlockSize
				ps.blockSkipped()
				continue
			}
		}
		d := drive.docs[i]
		bound := drive.bm[i/index.ScoreBlockSize]
		contrib[drive.ord] = float64(drive.freqs[i]) * drive.idf
		for j := 1; j < len(curs); j++ {
			c := &curs[j]
			c.pos = advancePostings(c.docs, c.pos, d)
			ps.advanced()
			if c.pos >= len(c.docs) {
				break outer
			}
			if c.docs[c.pos] != d {
				i++
				continue outer
			}
			bound += c.bm[c.pos/index.ScoreBlockSize]
			contrib[c.ord] = float64(c.freqs[c.pos]) * c.idf
		}
		if !h.full() || bound*boundSlack >= h.threshold() {
			id := document.DocID(d)
			s := 0.0
			for _, v := range contrib {
				s += v
			}
			if n := e.idx.DocLen(id); n > 0 {
				s /= 1 + float64(n)/avg
			}
			h.push(Result{Doc: id, Score: s})
			ps.scored()
			if h.full() {
				ps.noteThreshold(h.threshold())
			}
		} else {
			ps.skipped()
		}
		i++
	}
	return h.sorted()
}

// searchTopKOr is the pruned OR path: a document-at-a-time max-score
// traversal over the sorted postings. Cursors are ordered by ascending term
// max-score; once the heap is full, a growing prefix of them turns
// non-essential — their total max-score cannot lift any document past the
// threshold on its own — and candidate documents come only from the
// essential suffix, bounded per candidate by the non-essential prefix sum
// plus the block max of every essential cursor sitting on the document.
// Candidates arrive in ascending DocID order and survivors are scored by
// the unchanged scoreIDs fold, so the output is bit-identical to scoring
// the whole union.
func (e *Engine) searchTopKOr(qtids []termdict.TermID, topK int, ps *PruneStats) []Result {
	ps.markPruned()
	type orCursor struct {
		docs []int32
		bm   []float64
		ub   float64
		pos  int
	}
	curs := make([]orCursor, 0, len(qtids))
	for _, tid := range qtids {
		if tid == termdict.NoTerm {
			continue
		}
		if docs := e.idx.PostingsDocs(tid); len(docs) > 0 {
			curs = append(curs, orCursor{docs: docs, bm: e.idx.BlockMaxScores(tid), ub: e.idx.TermMaxScore(tid)})
		}
	}
	if len(curs) == 0 {
		return []Result{}
	}
	sort.Slice(curs, func(i, j int) bool { return curs[i].ub < curs[j].ub })
	// prefixUB[i] bounds the joint contribution of lists 0..i: a left-fold
	// of their max-scores in cursor order.
	prefixUB := make([]float64, len(curs))
	acc := 0.0
	for i := range curs {
		acc += curs[i].ub
		prefixUB[i] = acc
	}
	h := &topKHeap{k: topK, items: make([]Result, 0, topK)}
	ness := 0 // cursors [0, ness) are non-essential
	for ness < len(curs) {
		d := int32(-1)
		for j := ness; j < len(curs); j++ {
			c := &curs[j]
			if c.pos < len(c.docs) && (d < 0 || c.docs[c.pos] < d) {
				d = c.docs[c.pos]
			}
		}
		if d < 0 {
			break // essential lists exhausted; the prefix cannot beat the threshold
		}
		bound := 0.0
		if ness > 0 {
			bound = prefixUB[ness-1]
		}
		for j := ness; j < len(curs); j++ {
			c := &curs[j]
			if c.pos < len(c.docs) && c.docs[c.pos] == d {
				bound += c.bm[c.pos/index.ScoreBlockSize]
				c.pos++
				ps.advanced()
			}
		}
		if !h.full() || bound*boundSlack >= h.threshold() {
			id := document.DocID(d)
			h.push(Result{Doc: id, Score: e.scoreIDs(id, qtids)})
			ps.scored()
			if h.full() {
				ps.noteThreshold(h.threshold())
				for ness < len(curs) && prefixUB[ness]*boundSlack < h.threshold() {
					ness++
				}
			}
		} else {
			ps.skipped()
		}
	}
	if ps != nil {
		ps.NonEssential = ness
	}
	return h.sorted()
}

// ResultSet converts ranked results into a DocSet.
func ResultSet(results []Result) document.DocSet {
	s := make(document.DocSet, len(results))
	for _, r := range results {
		s.Add(r.Doc)
	}
	return s
}

// ResultIDs returns the result documents as ascending DocIDs — the sorted
// universe form the expansion pipeline consumes — without materializing a
// set.
func ResultIDs(results []Result) []document.DocID {
	ids := make([]document.DocID, len(results))
	for i, r := range results {
		ids[i] = r.Doc
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
