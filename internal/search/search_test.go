package search

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

func buildEngine(t *testing.T) *Engine {
	t.Helper()
	c := document.NewCorpus()
	c.AddText("", "apple fruit orchard")         // 0
	c.AddText("", "apple computer store")        // 1
	c.AddText("", "apple store location")        // 2
	c.AddText("", "banana fruit")                // 3
	c.AddText("", "apple apple apple fruit pie") // 4
	return NewEngine(index.Build(c, analysis.Simple()))
}

func TestEvalAnd(t *testing.T) {
	e := buildEngine(t)
	got := e.Eval(NewQuery("apple", "fruit"), And)
	want := []document.DocID{0, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}

func TestEvalAndNoMatch(t *testing.T) {
	e := buildEngine(t)
	if got := e.Eval(NewQuery("apple", "banana"), And); len(got) != 0 {
		t.Errorf("Eval = %v, want empty", got)
	}
	if got := e.Eval(NewQuery("nosuchterm"), And); len(got) != 0 {
		t.Errorf("Eval unseen term = %v, want empty", got)
	}
}

func TestEvalAndEmptyQueryMatchesAll(t *testing.T) {
	e := buildEngine(t)
	if got := len(e.Eval(NewQuery(), And)); got != 5 {
		t.Errorf("empty AND query matched %d docs, want 5", got)
	}
}

func TestEvalOr(t *testing.T) {
	e := buildEngine(t)
	got := e.Eval(NewQuery("banana", "orchard"), Or)
	want := []document.DocID{0, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	if got := len(e.Eval(NewQuery(), Or)); got != 0 {
		t.Errorf("empty OR query matched %d docs, want 0", got)
	}
}

func TestSearchRankingByTF(t *testing.T) {
	e := buildEngine(t)
	res := e.Search(NewQuery("apple"), And, 0)
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	// d4 has apple 3 times; it should rank first despite longer doc.
	if res[0].Doc != 4 {
		t.Errorf("top result = %d, want 4", res[0].Doc)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Error("results not sorted by descending score")
		}
	}
}

func TestSearchTopK(t *testing.T) {
	e := buildEngine(t)
	res := e.Search(NewQuery("apple"), And, 2)
	if len(res) != 2 {
		t.Errorf("topK=2 returned %d", len(res))
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	e := buildEngine(t)
	a := e.Search(NewQuery("apple"), And, 0)
	b := e.Search(NewQuery("apple"), And, 0)
	if !reflect.DeepEqual(a, b) {
		t.Error("Search not deterministic")
	}
}

func TestQueryWithWithout(t *testing.T) {
	q := NewQuery("apple")
	q2 := q.With("fruit")
	if q.Len() != 1 || q2.Len() != 2 {
		t.Error("With mutated receiver or failed to add")
	}
	if q3 := q2.With("fruit"); q3.Len() != 2 {
		t.Error("With duplicated term")
	}
	q4 := q2.Without("apple")
	if q4.Len() != 1 || q4.Contains("apple") || !q4.Contains("fruit") {
		t.Errorf("Without = %v", q4.Terms)
	}
	if q2.Len() != 2 {
		t.Error("Without mutated receiver")
	}
}

func TestQueryWithDoesNotShareBacking(t *testing.T) {
	q := NewQuery("a", "b")
	q2 := q.With("c")
	q3 := q.With("d")
	if q2.Terms[2] == "d" || q3.Terms[2] == "c" {
		t.Error("With shares backing array between derived queries")
	}
}

func TestNewQueryDeduplicates(t *testing.T) {
	q := NewQuery("a", "b", "a", "c", "b")
	if got := q.Terms; !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Terms = %v", got)
	}
}

func TestParseQuery(t *testing.T) {
	e := buildEngine(t)
	q := ParseQuery(e.Index(), "Apple  the Fruit")
	if got := q.Terms; !reflect.DeepEqual(got, []string{"apple", "fruit"}) {
		t.Errorf("ParseQuery = %v", got)
	}
}

func TestParseQueryKeepsComposite(t *testing.T) {
	e := buildEngine(t)
	q := ParseQuery(e.Index(), "TV:Brand:Toshiba plasma")
	if !q.Contains("tv:brand:toshiba") || !q.Contains("plasma") {
		t.Errorf("ParseQuery = %v", q.Terms)
	}
}

func TestQueryString(t *testing.T) {
	if got := NewQuery("a", "b").String(); got != "a b" {
		t.Errorf("String = %q", got)
	}
}

func TestResultSet(t *testing.T) {
	rs := ResultSet([]Result{{Doc: 3}, {Doc: 1}})
	if !rs.Equal(document.NewDocSet(1, 3)) {
		t.Errorf("ResultSet = %v", rs.IDs())
	}
}

// Property: AND results contain all query terms; adding a term never grows
// the result set (anti-monotonicity) — the core retrieval invariant the QEC
// algorithms rely on.
func TestSearchPropertyAndSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	words := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	c := document.NewCorpus()
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(6)
		text := ""
		for j := 0; j < n; j++ {
			if j > 0 {
				text += " "
			}
			text += words[rng.Intn(len(words))]
		}
		c.AddText("", text)
	}
	idx := index.Build(c, analysis.Simple())
	e := NewEngine(idx)
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(3)
		terms := make([]string, k)
		for i := range terms {
			terms[i] = words[rng.Intn(len(words))]
		}
		q := NewQuery(terms...)
		res := e.Eval(q, And)
		if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i] < res[j] }) {
			t.Fatalf("AND Eval not ascending: %v", res)
		}
		for _, id := range res {
			for _, term := range q.Terms {
				if !idx.HasTerm(id, term) {
					t.Fatalf("doc %d in R(%v) but lacks %q", id, q.Terms, term)
				}
			}
		}
		// anti-monotonicity
		extended := q.With(words[rng.Intn(len(words))])
		sub := e.Eval(extended, And)
		if len(sub) > len(res) {
			t.Fatalf("adding a keyword grew the result set: %d -> %d", len(res), len(sub))
		}
		resSet := document.NewDocSet(res...)
		for _, id := range sub {
			if !resSet.Contains(id) {
				t.Fatalf("R(q∪k) ⊄ R(q)")
			}
		}
		// OR is the dual: superset of every single-term result set.
		orRes := e.Eval(q, Or)
		if !sort.SliceIsSorted(orRes, func(i, j int) bool { return orRes[i] < orRes[j] }) {
			t.Fatalf("OR Eval not ascending: %v", orRes)
		}
		orSet := document.NewDocSet(orRes...)
		for _, term := range q.Terms {
			for _, id := range e.Eval(NewQuery(term), Or) {
				if !orSet.Contains(id) {
					t.Fatalf("R(%q) ⊄ OR result", term)
				}
			}
		}
	}
}

// Property: scores are non-negative and sorted output is stable under rerun.
func TestSearchPropertyScoresNonNegative(t *testing.T) {
	e := buildEngine(t)
	for _, q := range []Query{NewQuery("apple"), NewQuery("fruit"), NewQuery("apple", "fruit")} {
		res := e.Search(q, And, 0)
		for _, r := range res {
			if r.Score < 0 {
				t.Errorf("negative score %v for doc %d", r.Score, r.Doc)
			}
		}
		if !sort.SliceIsSorted(res, func(i, j int) bool {
			if res[i].Score != res[j].Score {
				return res[i].Score > res[j].Score
			}
			return res[i].Doc < res[j].Doc
		}) {
			t.Error("results not sorted")
		}
	}
}
