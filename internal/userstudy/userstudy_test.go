package userstudy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoolSize(t *testing.T) {
	p := NewPool(1)
	if got := len(p.JudgeIndividual(0.5, 0.5)); got != 45 {
		t.Errorf("judgments = %d, want 45 raters", got)
	}
	if got := len(p.JudgeCollective(0.5, 0.5)); got != 45 {
		t.Errorf("judgments = %d, want 45 raters", got)
	}
}

func TestJudgeDeterministic(t *testing.T) {
	a := NewPool(7).JudgeIndividual(0.7, 0.6)
	b := NewPool(7).JudgeIndividual(0.7, 0.6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different judgments")
		}
	}
}

func TestBetterProxiesScoreHigher(t *testing.T) {
	p := NewPool(3)
	good := Summarize(p.JudgeIndividual(0.95, 0.9))
	bad := Summarize(p.JudgeIndividual(0.2, 0.15))
	if good.MeanScore <= bad.MeanScore {
		t.Errorf("good %v <= bad %v", good.MeanScore, bad.MeanScore)
	}
	if good.MeanScore < 4 {
		t.Errorf("excellent query mean = %v, want >= 4", good.MeanScore)
	}
	if bad.MeanScore > 2.5 {
		t.Errorf("poor query mean = %v, want <= 2.5", bad.MeanScore)
	}
}

func TestUnrelatedQueryGetsOptionC(t *testing.T) {
	p := NewPool(3)
	s := Summarize(p.JudgeIndividual(0.05, 0.5))
	if s.PctC < 80 {
		t.Errorf("unrelated query got only %.0f%% option C", s.PctC)
	}
}

func TestExcellentQueryGetsOptionA(t *testing.T) {
	p := NewPool(3)
	s := Summarize(p.JudgeIndividual(0.95, 0.95))
	if s.PctA < 70 {
		t.Errorf("excellent query got only %.0f%% option A", s.PctA)
	}
}

func TestCollectiveOptionLogic(t *testing.T) {
	p := NewPool(5)
	both := Summarize(p.JudgeCollective(0.95, 0.95))
	if both.PctC < 70 {
		t.Errorf("both-properties set got %.0f%% option C", both.PctC)
	}
	neither := Summarize(p.JudgeCollective(0.1, 0.1))
	if neither.PctA < 70 {
		t.Errorf("neither-property set got %.0f%% option A", neither.PctA)
	}
	oneOnly := Summarize(p.JudgeCollective(0.95, 0.1))
	if oneOnly.PctB < 60 {
		t.Errorf("one-property set got %.0f%% option B", oneOnly.PctB)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v", s)
	}
}

func TestSummarizePercentagesSum(t *testing.T) {
	p := NewPool(11)
	for _, proxies := range [][2]float64{{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.2}} {
		s := Summarize(p.JudgeIndividual(proxies[0], proxies[1]))
		if math.Abs(s.PctA+s.PctB+s.PctC-100) > 1e-9 {
			t.Errorf("percentages sum to %v", s.PctA+s.PctB+s.PctC)
		}
	}
}

// Property: scores are always within 1..5 and percentages within [0,100].
func TestJudgmentPropertyBounds(t *testing.T) {
	p := NewPool(13)
	prop := func(a, b uint8) bool {
		x := float64(a%101) / 100
		y := float64(b%101) / 100
		for _, js := range [][]Judgment{p.JudgeIndividual(x, y), p.JudgeCollective(x, y)} {
			for _, j := range js {
				if j.Score < 1 || j.Score > 5 {
					return false
				}
				if j.Option != OptionA && j.Option != OptionB && j.Option != OptionC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean score is monotone in quality (comparing two clearly
// separated quality levels).
func TestJudgmentPropertyMonotone(t *testing.T) {
	p := NewPool(17)
	for q := 0.0; q <= 0.6; q += 0.1 {
		lo := Summarize(p.JudgeIndividual(q, q)).MeanScore
		hi := Summarize(p.JudgeIndividual(q+0.35, q+0.35)).MeanScore
		if hi <= lo {
			t.Errorf("quality %v: hi %v <= lo %v", q, hi, lo)
		}
	}
}
