// Package userstudy simulates the paper's Mechanical Turk evaluation
// (Section 5.2.1, Figures 1–4) with a deterministic synthetic rater pool.
//
// Substitution note (see DESIGN.md): the paper asked 45 human raters to
// score expanded queries individually (1–5 plus an option A/B/C justifying
// the score) and collectively (1–5 plus an option about comprehensiveness
// and diversity). Part 3 of the study found that raters value
// comprehensiveness and diversity; our rater model therefore scores exactly
// the measurable proxies of those notions — per-query relatedness and
// helpfulness, and per-set comprehensiveness and diversity — with per-rater
// bias and jitter. The relative ordering of approaches emerges from the
// proxies, not from hard-coded per-approach numbers.
package userstudy

import (
	"math/rand"
	"sync"
)

// Option is a rater's multiple-choice justification.
type Option byte

// Individual-score options (Figure 2):
//
//	A — "highly related to the search and helpful"
//	B — "related but there are better ones"
//	C — "not related to the search"
//
// Collective-score options (Figure 4):
//
//	A — "not comprehensive and not diverse"
//	B — "either not comprehensive or not diverse"
//	C — "comprehensive and diverse"
const (
	OptionA Option = 'A'
	OptionB Option = 'B'
	OptionC Option = 'C'
)

// Judgment is one rater's verdict: a 1–5 score and an option.
type Judgment struct {
	Score  int
	Option Option
}

// Pool is a reproducible population of raters.
type Pool struct {
	// N is the number of raters (paper: 45).
	N int
	// Seed drives all rater randomness.
	Seed int64

	// memo caches the derived rater population. Historically raters() built
	// N fresh rand.Rands per judgment call, and each jitter source was
	// consulted exactly once before being rebuilt — so seeding the
	// generators (a 607-word state initialization apiece) dominated the
	// whole simulated study (~84% of the Figure 1 benchmark). The first
	// jitter draw per rater is therefore a constant, precomputed here;
	// outputs are bit-identical to the rebuild-per-call behaviour.
	memoMu   sync.Mutex
	memo     []rater
	memoN    int
	memoSeed int64
}

// NewPool returns the paper's 45-rater pool.
func NewPool(seed int64) *Pool { return &Pool{N: 45, Seed: seed} }

// rater is one simulated participant: a leniency bias applied to every
// score and personal thresholds for the option choice.
type rater struct {
	bias    float64 // additive score bias in [-0.5, +0.5]
	jitter  float64 // the rater's per-judgment jitter draw
	optHigh float64 // threshold for the favourable option
	optLow  float64 // threshold below which the harsh option is chosen
}

func (p *Pool) raters() []rater {
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	if p.memo != nil && p.memoN == p.N && p.memoSeed == p.Seed {
		return p.memo
	}
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]rater, p.N)
	for i := range out {
		out[i] = rater{
			bias:    (rng.Float64() - 0.5),
			jitter:  rand.New(rand.NewSource(rng.Int63())).Float64(),
			optHigh: 0.68 + 0.12*(rng.Float64()-0.5),
			optLow:  0.30 + 0.12*(rng.Float64()-0.5),
		}
	}
	p.memo, p.memoN, p.memoSeed = out, p.N, p.Seed
	return out
}

func clampScore(s float64) int {
	n := int(s + 0.5)
	if n < 1 {
		return 1
	}
	if n > 5 {
		return 5
	}
	return n
}

// JudgeIndividual returns every rater's judgment of one expanded query,
// given its measurable proxies:
//
//	relatedness — how results-oriented the query is (fraction of the
//	  original results containing the expansion terms); the paper's raters
//	  penalized Google's out-of-corpus suggestions on exactly this ground.
//	helpfulness — the query's F-measure against its best-matching cluster
//	  (how well it isolates one meaning of the original query).
func (p *Pool) JudgeIndividual(relatedness, helpfulness float64) []Judgment {
	quality := 0.45*relatedness + 0.55*helpfulness
	out := make([]Judgment, 0, p.N)
	for _, r := range p.raters() {
		perceived := quality + r.bias*0.2 + (r.jitter-0.5)*0.25
		score := clampScore(1 + 4*perceived)
		var opt Option
		switch {
		case relatedness < r.optLow: // not related to the search at all
			opt = OptionC
			if score > 2 {
				score = 2
			}
		case perceived >= r.optHigh:
			opt = OptionA
		default:
			opt = OptionB
		}
		out = append(out, Judgment{Score: score, Option: opt})
	}
	return out
}

// JudgeCollective returns every rater's judgment of a whole set of expanded
// queries for one user query, given:
//
//	comprehensiveness — rank-weighted coverage of the original result set
//	  by the union of the expanded queries' results.
//	diversity — 1 − mean pairwise overlap of the expanded queries' results.
//
// Option A = neither property holds, B = exactly one holds, C = both hold
// (Figure 4's legend).
func (p *Pool) JudgeCollective(comprehensiveness, diversity float64) []Judgment {
	quality := 0.55*comprehensiveness + 0.45*diversity
	out := make([]Judgment, 0, p.N)
	for _, r := range p.raters() {
		perceived := quality + r.bias*0.2 + (r.jitter-0.5)*0.25
		score := clampScore(1 + 4*perceived)
		compOK := comprehensiveness+r.bias*0.1 >= r.optHigh*0.85
		divOK := diversity+r.bias*0.1 >= r.optHigh*0.85
		var opt Option
		switch {
		case compOK && divOK:
			opt = OptionC
		case compOK || divOK:
			opt = OptionB
		default:
			opt = OptionA
			if score > 2 {
				score = 2
			}
		}
		out = append(out, Judgment{Score: score, Option: opt})
	}
	return out
}

// Summary aggregates a slice of judgments: mean score and the percentage of
// raters choosing each option.
type Summary struct {
	MeanScore float64
	PctA      float64
	PctB      float64
	PctC      float64
	N         int
}

// Summarize aggregates judgments (from one or many queries).
func Summarize(js []Judgment) Summary {
	if len(js) == 0 {
		return Summary{}
	}
	var total float64
	var a, b, c int
	for _, j := range js {
		total += float64(j.Score)
		switch j.Option {
		case OptionA:
			a++
		case OptionB:
			b++
		default:
			c++
		}
	}
	n := float64(len(js))
	return Summary{
		MeanScore: total / n,
		PctA:      100 * float64(a) / n,
		PctB:      100 * float64(b) / n,
		PctC:      100 * float64(c) / n,
		N:         len(js),
	}
}
