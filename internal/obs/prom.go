package obs

import "strconv"

// Prometheus text-exposition rendering, in the repo's pooled append-encode
// style: every helper appends complete exposition lines to dst and returns
// it, so a scrape renders into one pooled buffer with no intermediate
// strings. Label sets are passed pre-rendered (`quality="exact"`) — the
// server's label values are compile-time constants, so building a scrape
// performs no per-metric allocations beyond the shared buffer's growth.

// bucketLE holds the `le` label value of every histogram bucket upper bound,
// in seconds, formatted once at init exactly as AppendPromFloat would.
var bucketLE [NumBuckets]string

func init() {
	for i := range bucketLE {
		bucketLE[i] = strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64)
	}
}

// AppendPromHeader appends the # HELP and # TYPE lines for a metric.
func AppendPromHeader(dst []byte, name, help, typ string) []byte {
	dst = append(dst, "# HELP "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, help...)
	dst = append(dst, "\n# TYPE "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, typ...)
	return append(dst, '\n')
}

// appendNameLabels appends `name` or `name{labels}`.
func appendNameLabels(dst []byte, name, labels string) []byte {
	dst = append(dst, name...)
	if labels != "" {
		dst = append(dst, '{')
		dst = append(dst, labels...)
		dst = append(dst, '}')
	}
	return dst
}

// AppendPromUint appends one sample line with an unsigned integer value.
func AppendPromUint(dst []byte, name, labels string, v uint64) []byte {
	dst = appendNameLabels(dst, name, labels)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, v, 10)
	return append(dst, '\n')
}

// AppendPromInt appends one sample line with a signed integer value.
func AppendPromInt(dst []byte, name, labels string, v int64) []byte {
	dst = appendNameLabels(dst, name, labels)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\n')
}

// AppendPromFloat appends one sample line with a float value.
func AppendPromFloat(dst []byte, name, labels string, v float64) []byte {
	dst = appendNameLabels(dst, name, labels)
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	return append(dst, '\n')
}

// AppendPromHistogram appends a full Prometheus histogram — cumulative
// `_bucket` lines (le in seconds, plus the +Inf rollup), `_sum` (seconds)
// and `_count` — for one labeled snapshot. The metric's # HELP/# TYPE
// header must be appended once by the caller before its first label set.
func AppendPromHistogram(dst []byte, name, labels string, s HistSnapshot) []byte {
	cum := uint64(0)
	for i, n := range s.Bins {
		cum += n
		dst = append(dst, name...)
		dst = append(dst, "_bucket{"...)
		if labels != "" {
			dst = append(dst, labels...)
			dst = append(dst, ',')
		}
		dst = append(dst, "le=\""...)
		dst = append(dst, bucketLE[i]...)
		dst = append(dst, "\"} "...)
		dst = strconv.AppendUint(dst, cum, 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, name...)
	dst = append(dst, "_bucket{"...)
	if labels != "" {
		dst = append(dst, labels...)
		dst = append(dst, ',')
	}
	dst = append(dst, "le=\"+Inf\"} "...)
	dst = strconv.AppendUint(dst, s.Count, 10)
	dst = append(dst, '\n')
	dst = append(dst, name...)
	dst = appendNameLabels(dst, "_sum", labels)
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, float64(s.Sum)/1e9, 'g', -1, 64)
	dst = append(dst, '\n')
	dst = append(dst, name...)
	dst = appendNameLabels(dst, "_count", labels)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, s.Count, 10)
	return append(dst, '\n')
}
