package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Begin(StageParse)
	tr.End(StageParse)
	tr.SetKMeans(1, 2, 3)
	tr.MarkCache(CacheHit)
	tr.Reset()
	tr.WriteTable(&strings.Builder{})
	if tr.Total() != 0 {
		t.Fatal("nil trace Total should be 0")
	}
}

func TestTraceAccumulatesRepeatedSpans(t *testing.T) {
	tr := GetTrace()
	defer PutTrace(tr)
	for i := 0; i < 2; i++ {
		tr.Begin(StageSolve)
		time.Sleep(2 * time.Millisecond)
		tr.End(StageSolve)
	}
	if d := tr.Durations[StageSolve]; d < 4*time.Millisecond {
		t.Fatalf("accumulated solve span %v; want >= 4ms", d)
	}
	if tr.Total() != tr.Durations[StageSolve] {
		t.Fatalf("Total %v != solve span %v", tr.Total(), tr.Durations[StageSolve])
	}
	tr.SetKMeans(5, 17, 1)
	var sb strings.Builder
	tr.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"solve", "total", "k-means: 5 restarts, 17 iterations, 1 abandoned"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTable output missing %q:\n%s", want, out)
		}
	}
}

func TestTracePoolResets(t *testing.T) {
	tr := GetTrace()
	tr.ID = 99
	tr.MarkCache(CacheCoalesced)
	tr.Begin(StageParse)
	tr.End(StageParse)
	PutTrace(tr)
	tr2 := GetTrace()
	defer PutTrace(tr2)
	if tr2.ID != 0 || tr2.Cache != CacheNone || tr2.Total() != 0 {
		t.Fatalf("pooled trace not reset: %+v", tr2)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NextTraceID(), NextTraceID()
	if a == b {
		t.Fatal("trace IDs must differ")
	}
	if b != a+1 {
		t.Fatalf("IDs not sequential: %d then %d", a, b)
	}
	if s := IDString(0xdeadbeef); s != "00000000deadbeef" {
		t.Fatalf("IDString = %q", s)
	}
	if got := string(AppendID(nil, 0)); got != "0000000000000000" {
		t.Fatalf("AppendID(0) = %q", got)
	}
}

func TestStageAndCacheNames(t *testing.T) {
	want := []string{"parse", "search", "problem", "cluster", "solve", "assemble"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("Stage(%d).String() = %q; want %q", s, s.String(), want[s])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
	states := map[CacheState]string{
		CacheNone: "none", CacheComputed: "computed", CacheHit: "hit", CacheCoalesced: "coalesced",
	}
	for st, name := range states {
		if st.String() != name {
			t.Fatalf("CacheState(%d).String() = %q; want %q", st, st.String(), name)
		}
	}
}

func TestProfileLabelsToggle(t *testing.T) {
	if ProfileLabelsEnabled() {
		t.Fatal("labels should default off")
	}
	EnableProfileLabels(true)
	defer EnableProfileLabels(false)
	if !ProfileLabelsEnabled() {
		t.Fatal("labels should be on after enable")
	}
	// Spans must still work (and stay allocation-free) with labels applied.
	tr := GetTrace()
	defer PutTrace(tr)
	tr.Begin(StageCluster)
	tr.End(StageCluster)
	if tr.Durations[StageCluster] < 0 {
		t.Fatal("span did not record")
	}
}

// TestHotPathAllocFree pins the zero-allocation contract of every primitive
// the pipeline touches per request.
func TestHotPathAllocFree(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	tr := GetTrace()
	defer PutTrace(tr)
	cases := map[string]func(){
		"observe": func() { h.Observe(time.Millisecond) },
		"counter": func() { c.Inc() },
		"gauge":   func() { g.Inc(); g.Dec() },
		"span":    func() { tr.Begin(StageSolve); tr.End(StageSolve) },
		"pool":    func() { PutTrace(GetTrace()) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op; want 0", name, allocs)
		}
	}
}
