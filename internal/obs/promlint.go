package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// promLabel is one parsed name="value" pair from a sample's label set, with
// the value unescaped.
type promLabel struct {
	name, value string
}

// parsePromLabels parses the inside of a {...} label set. Unlike a naive
// comma split it honors the exposition-format escaping rules: label values
// are double-quoted and may contain commas, escaped quotes (\"), escaped
// backslashes (\\) and escaped newlines (\n).
func parsePromLabels(labels string) ([]promLabel, error) {
	var out []promLabel
	i := 0
	for i < len(labels) {
		// Label name up to '='.
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", labels[i:])
		}
		name := labels[i : i+eq]
		if name == "" {
			return nil, fmt.Errorf("empty label name in %q", labels)
		}
		for j, c := range name {
			if !(c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (j > 0 && c >= '0' && c <= '9')) {
				return nil, fmt.Errorf("invalid label name %q", name)
			}
		}
		i += eq + 1
		if i >= len(labels) || labels[i] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(labels) {
			c := labels[i]
			if c == '\\' {
				if i+1 >= len(labels) {
					return nil, fmt.Errorf("label %q value ends mid-escape", name)
				}
				switch labels[i+1] {
				case '"':
					val.WriteByte('"')
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %q has invalid escape \\%c", name, labels[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %q value is unterminated", name)
		}
		out = append(out, promLabel{name: name, value: val.String()})
		if i < len(labels) {
			if labels[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", labels[i:])
			}
			i++
			if i == len(labels) {
				return nil, fmt.Errorf("trailing ',' in label set %q", labels)
			}
		}
	}
	return out, nil
}

// escapePromLabelValue re-escapes a label value for series-key rebuilding.
func escapePromLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// ValidatePromText is a strict structural check of Prometheus text exposition
// used by the obs and server tests (and by the CI scrape step via
// qec-benchdiff -promlint): every line must be a well-formed HELP/TYPE header
// or a sample with a parseable finite value (NaN and ±Inf samples are
// rejected — nothing in this codebase legitimately emits them), label sets
// must parse under the exposition escaping rules, samples must follow a TYPE
// header for their metric, histogram buckets must be cumulative with a +Inf
// rollup equal to _count, and no metric name may repeat a header.
func ValidatePromText(text string) error {
	types := map[string]string{}
	lastBucket := map[string]uint64{} // series (name+labels sans le) → cumulative
	infSeen := map[string]uint64{}
	counts := map[string]uint64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				return fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped" {
				return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value separator: %q", lineNo, line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valText, err)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return fmt.Errorf("line %d: non-finite sample value %q", lineNo, valText)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return fmt.Errorf("line %d: unterminated label set: %q", lineNo, line)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		for _, c := range name {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
		}
		var pairs []promLabel
		if labels != "" {
			if pairs, err = parsePromLabels(labels); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		typ, ok := types[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE header", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		// Histogram-specific checks.
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le := ""
			rest := make([]string, 0, 4)
			for _, l := range pairs {
				if l.name == "le" {
					le = l.value
				} else {
					rest = append(rest, l.name+`="`+escapePromLabelValue(l.value)+`"`)
				}
			}
			if le == "" {
				return fmt.Errorf("line %d: bucket without le label: %q", lineNo, line)
			}
			key := base + "{" + strings.Join(rest, ",") + "}"
			if uint64(val) < lastBucket[key] {
				return fmt.Errorf("line %d: bucket counts not cumulative for %s", lineNo, key)
			}
			lastBucket[key] = uint64(val)
			if le == "+Inf" {
				infSeen[key] = uint64(val)
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("line %d: bad le %q", lineNo, le)
			}
		case strings.HasSuffix(name, "_count"):
			counts[base+"{"+labels+"}"] = uint64(val)
		}
	}
	for key, c := range counts {
		if inf, ok := infSeen[key]; !ok {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		} else if inf != c {
			return fmt.Errorf("histogram %s: +Inf bucket %d != count %d", key, inf, c)
		}
	}
	return nil
}
