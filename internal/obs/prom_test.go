package obs

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

// scrapedMetrics lets CI point this package's exposition linter at a page
// scraped from a live qec-serve with curl; see the "Scrape /metrics" step in
// .github/workflows/ci.yml. Without the flag the test is skipped.
var scrapedMetrics = flag.String("scraped-metrics", "", "path to a scraped /metrics page to validate")

func TestScrapedMetricsPage(t *testing.T) {
	if *scrapedMetrics == "" {
		t.Skip("no -scraped-metrics file provided")
	}
	data, err := os.ReadFile(*scrapedMetrics)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if err := ValidatePromText(text); err != nil {
		t.Fatalf("scraped page malformed: %v", err)
	}
	for _, want := range []string{"qec_http_requests_total", "qec_expand_request_duration_seconds"} {
		if !strings.Contains(text, want) {
			t.Fatalf("scraped page missing %q", want)
		}
	}
}

func TestAppendPromHistogramExposition(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, time.Microsecond, time.Millisecond, 50 * time.Millisecond, time.Hour} {
		h.Observe(d)
	}
	var dst []byte
	dst = AppendPromHeader(dst, "qec_test_seconds", "A test histogram.", "histogram")
	dst = AppendPromHistogram(dst, "qec_test_seconds", `quality="exact"`, h.Snapshot())
	dst = AppendPromHeader(dst, "qec_test_total", "A test counter.", "counter")
	dst = AppendPromUint(dst, "qec_test_total", "", 7)
	text := string(dst)
	if err := ValidatePromText(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	// Spot-check the shape: NumBuckets finite buckets + the +Inf rollup.
	if got := strings.Count(text, "qec_test_seconds_bucket"); got != NumBuckets+1 {
		t.Fatalf("bucket lines = %d; want %d", got, NumBuckets+1)
	}
	if !strings.Contains(text, `le="+Inf"} 5`) {
		t.Fatalf("missing +Inf rollup of 5:\n%s", text)
	}
	if !strings.Contains(text, "qec_test_seconds_count{quality=\"exact\"} 5") {
		t.Fatalf("missing _count line:\n%s", text)
	}
}

func TestValidatePromTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"qec_orphan 1",                             // sample without TYPE
		"# TYPE qec_x bogus\nqec_x 1",              // unknown type
		"# TYPE qec_y counter\nqec_y notanumber",   // bad value
		"# TYPE qec_z counter\nqec_z{oops 1",       // unterminated labels
		"# TYPE qec_w counter\n# TYPE qec_w gauge", // duplicate TYPE
	}
	for _, text := range bad {
		if err := ValidatePromText(text); err == nil {
			t.Errorf("expected error for:\n%s", text)
		}
	}
}

// TestValidatePromTextEscapedLabels pins the linter's label parser: values
// containing commas, escaped quotes, escaped backslashes and escaped
// newlines are legal exposition and must not confuse series keying.
func TestValidatePromTextEscapedLabels(t *testing.T) {
	good := []string{
		"# TYPE qec_build_info gauge\n" +
			`qec_build_info{version="0.9.0",goversion="go1.24.0, linux/amd64"} 1`,
		"# TYPE qec_esc counter\n" +
			`qec_esc{msg="say \"hi\", twice"} 2`,
		"# TYPE qec_esc2 counter\n" +
			`qec_esc2{path="C:\\tmp",note="line\nbreak"} 1`,
	}
	for _, text := range good {
		if err := ValidatePromText(text); err != nil {
			t.Errorf("valid escaped labels rejected: %v\n%s", err, text)
		}
	}
	bad := []string{
		"# TYPE qec_b counter\n" + `qec_b{msg="unterminated} 1`,
		"# TYPE qec_b counter\n" + `qec_b{msg="bad \q escape"} 1`,
		"# TYPE qec_b counter\n" + `qec_b{msg=unquoted} 1`,
		"# TYPE qec_b counter\n" + `qec_b{9bad="x"} 1`,
		"# TYPE qec_b counter\n" + `qec_b{a="x" b="y"} 1`,
		"# TYPE qec_b counter\n" + `qec_b{a="x",} 1`,
	}
	for _, text := range bad {
		if err := ValidatePromText(text); err == nil {
			t.Errorf("malformed labels accepted:\n%s", text)
		}
	}
	// An escaped quote inside an le-adjacent label must not break the
	// histogram's cumulative check.
	hist := "# TYPE qec_h histogram\n" +
		`qec_h_bucket{tag="a,\"b\"",le="0.1"} 1` + "\n" +
		`qec_h_bucket{tag="a,\"b\"",le="+Inf"} 2` + "\n" +
		`qec_h_sum{tag="a,\"b\""} 0.5` + "\n" +
		`qec_h_count{tag="a,\"b\""} 2`
	if err := ValidatePromText(hist); err != nil {
		t.Errorf("escaped labels inside histogram rejected: %v", err)
	}
}

// TestValidatePromTextRejectsNonFinite: NaN and ±Inf sample values are
// structural errors — nothing in this codebase legitimately emits them, so
// their appearance means a rate or mean divided by zero upstream.
func TestValidatePromTextRejectsNonFinite(t *testing.T) {
	for _, val := range []string{"NaN", "+Inf", "-Inf", "nan", "inf"} {
		text := "# TYPE qec_v gauge\nqec_v " + val
		if err := ValidatePromText(text); err == nil {
			t.Errorf("non-finite value %q accepted", val)
		}
	}
	// le="+Inf" stays legal: it is a label, not a sample value.
	hist := "# TYPE qec_h histogram\n" +
		`qec_h_bucket{le="+Inf"} 1` + "\n" +
		"qec_h_sum 0.5\nqec_h_count 1"
	if err := ValidatePromText(hist); err != nil {
		t.Errorf("le=+Inf label rejected: %v", err)
	}
}

func TestAppendPromAllocFree(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	snap := h.Snapshot()
	dst := make([]byte, 0, 1<<14)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = dst[:0]
		dst = AppendPromHeader(dst, "qec_x_seconds", "help", "histogram")
		dst = AppendPromHistogram(dst, "qec_x_seconds", `quality="exact"`, snap)
		dst = AppendPromInt(dst, "qec_y", "", 3)
		dst = AppendPromFloat(dst, "qec_z", "", 1.5)
	}); allocs != 0 {
		t.Fatalf("prom render: %v allocs/op; want 0", allocs)
	}
}
