package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0 covers
// [0, 256ns); bucket i (i >= 1) covers [256ns·2^(i-1), 256ns·2^i); the last
// bucket additionally absorbs everything above its lower bound, so the +Inf
// rollup is implicit. Power-of-two bounds make the bucket index one
// bits.Len64 — no search, no float math — and span 256ns .. ~34s, wide
// enough for a cached hit (~1µs) and a saturated cold expansion alike.
const NumBuckets = 28

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(ns uint64) int {
	i := bits.Len64(ns >> 8)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i. The final
// bucket's nominal bound is returned even though that bucket is open-ended.
func BucketBound(i int) time.Duration {
	return time.Duration(256 << uint(i))
}

// Histogram is a fixed-bucket log-scale latency histogram. Bins are
// lock-free atomic.Uint64 counters, so Observe is wait-free and
// allocation-free; Snapshot produces a consistent-enough point-in-time copy
// (bins are read individually — a concurrent Observe may or may not be
// included, which is the standard scrape-time trade). The zero value is
// ready to use.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64 // total observed nanoseconds
	bins  [NumBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	h.bins[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.bins {
		s.Bins[i] = h.bins[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to merge,
// aggregate and render without synchronization.
type HistSnapshot struct {
	// Count is the number of observations and Sum their total in
	// nanoseconds.
	Count, Sum uint64
	// Bins are the per-bucket observation counts (see NumBuckets for the
	// bound layout).
	Bins [NumBuckets]uint64
}

// Merge adds o's observations into s (for aggregating per-shard or
// per-engine histograms into one view).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Bins {
		s.Bins[i] += o.Bins[i]
	}
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear interpolation
// inside the bucket holding the target rank, the usual fixed-bucket
// estimator. Returns 0 for an empty histogram.
func (s *HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	cum := 0.0
	for i, n := range s.Bins {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			hi := float64(BucketBound(i))
			frac := (rank - cum) / float64(n)
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return BucketBound(NumBuckets - 1)
}

// Mean returns the average observed duration (0 when empty).
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
