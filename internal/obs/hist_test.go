package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds checks the bucket layout invariants: every duration
// lands in a bucket whose bound window contains it, indices are monotone in
// the duration, and bounds are the documented powers of two.
func TestBucketIndexBounds(t *testing.T) {
	if got := BucketBound(0); got != 256*time.Nanosecond {
		t.Fatalf("BucketBound(0) = %v; want 256ns", got)
	}
	prev := -1
	for _, ns := range []uint64{0, 1, 255, 256, 257, 1000, 1 << 20, 1 << 40, 1 << 62} {
		i := bucketIndex(ns)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", ns, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, i, prev)
		}
		prev = i
		if i < NumBuckets-1 {
			if time.Duration(ns) >= BucketBound(i) {
				t.Fatalf("ns %d >= upper bound %v of its bucket %d", ns, BucketBound(i), i)
			}
			if i > 0 && time.Duration(ns) < BucketBound(i-1) {
				t.Fatalf("ns %d < lower bound %v of its bucket %d", ns, BucketBound(i-1), i)
			}
		}
	}
	// Exhaustive boundary check: bound of bucket i maps to bucket i+1.
	for i := 0; i < NumBuckets-2; i++ {
		b := uint64(BucketBound(i))
		if got := bucketIndex(b - 1); got != i {
			t.Fatalf("bucketIndex(bound(%d)-1) = %d; want %d", i, got, i)
		}
		if got := bucketIndex(b); got != i+1 {
			t.Fatalf("bucketIndex(bound(%d)) = %d; want %d", i, got, i+1)
		}
	}
}

// TestHistogramProperties drives a randomized workload and checks the
// snapshot invariants: count equals observations, sum matches the exact
// total, bin counts total the count, and quantiles are monotone in p and
// bracketed by the observed range's bucket bounds.
func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var exactSum uint64
	const n = 10000
	for i := 0; i < n; i++ {
		// Log-uniform over ~ns..30s so every bucket range gets traffic.
		d := time.Duration(rng.Int63n(1 << uint(10+rng.Intn(25))))
		exactSum += uint64(d)
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("Count = %d; want %d", s.Count, n)
	}
	if s.Sum != exactSum {
		t.Fatalf("Sum = %d; want exact %d", s.Sum, exactSum)
	}
	var binTotal uint64
	for _, b := range s.Bins {
		binTotal += b
	}
	if binTotal != s.Count {
		t.Fatalf("bins total %d != count %d", binTotal, s.Count)
	}
	prevQ := time.Duration(-1)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := s.Quantile(p)
		if q < prevQ {
			t.Fatalf("Quantile not monotone: p=%v gave %v < %v", p, q, prevQ)
		}
		prevQ = q
	}
	if mean := s.Mean(); mean != time.Duration(exactSum/n) {
		t.Fatalf("Mean = %v; want %v", mean, time.Duration(exactSum/n))
	}
}

// TestHistogramMergeConsistent splits one observation stream across two
// histograms and checks that merging their snapshots is bit-identical to
// observing everything in one histogram.
func TestHistogramMergeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, partA, partB Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(40 * time.Second)))
		whole.Observe(d)
		if i%2 == 0 {
			partA.Observe(d)
		} else {
			partB.Observe(d)
		}
	}
	merged := partA.Snapshot()
	merged.Merge(partB.Snapshot())
	if merged != whole.Snapshot() {
		t.Fatalf("merged snapshot differs from whole-stream snapshot")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to 0
	h.Observe(0)
	h.Observe(time.Hour) // beyond the last bound: lands in the final bucket
	s := h.Snapshot()
	if s.Bins[0] != 2 || s.Bins[NumBuckets-1] != 1 {
		t.Fatalf("edge bins = %d/%d; want 2/1", s.Bins[0], s.Bins[NumBuckets-1])
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean should be 0")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// with -race this doubles as the data-race check, and the final count/sum
// must be exact because all updates are atomic.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}(int64(w))
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("Count = %d; want %d", s.Count, workers*per)
	}
	if c.Load() != workers*per {
		t.Fatalf("Counter = %d; want %d", c.Load(), workers*per)
	}
	if g.Load() != 0 {
		t.Fatalf("Gauge = %d; want 0", g.Load())
	}
}
