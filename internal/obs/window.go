package obs

import (
	"sync"
	"time"
)

// WindowSample is one periodic snapshot of a set of monotonic counters and
// instantaneous gauges, timestamped at capture. The caller defines what each
// index means and must keep the layout stable across ticks.
type WindowSample struct {
	At       time.Time
	Counters []uint64
	Gauges   []int64
}

// RateWindow derives windowed rates from a ring of periodic counter
// snapshots: QPS over the last minute, error rate over five, queue-depth
// trends — the derivative signals a point-in-time scrape cannot give.
// The serving layer ticks it on a fixed interval; readers ask for the rate
// of any counter over any window.
//
// A zero-valued baseline sample stamped at construction time anchors the
// ring, so rates are well-defined (counted from process start) before the
// first tick lands and the 1m QPS a fresh server reports is already
// non-zero once it has served anything.
type RateWindow struct {
	mu      sync.Mutex
	samples []WindowSample
	head    int // next write position
	n       int // samples stored
}

// NewRateWindow returns a window keeping the last capacity samples. The
// baseline sample holds nCounters zero counters (and no gauges) stamped now.
// With a 10s tick, capacity 32 spans >5 minutes.
func NewRateWindow(capacity, nCounters int) *RateWindow {
	if capacity < 2 {
		capacity = 2
	}
	w := &RateWindow{samples: make([]WindowSample, 0, capacity)}
	w.Tick(WindowSample{At: time.Now(), Counters: make([]uint64, nCounters)})
	return w
}

// Tick appends one snapshot, evicting the oldest beyond capacity. The
// sample's slices are retained; the caller must hand over fresh ones.
func (w *RateWindow) Tick(s WindowSample) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < cap(w.samples) {
		w.samples = append(w.samples, s)
		w.n++
		w.head = w.n % cap(w.samples)
		return
	}
	w.samples[w.head] = s
	w.head = (w.head + 1) % w.n
}

// at returns the stored sample i ticks back from the newest (0 = newest).
// Caller holds mu.
func (w *RateWindow) at(i int) *WindowSample {
	idx := (w.head - 1 - i + 2*w.n) % w.n
	return &w.samples[idx]
}

// base returns the newest stored sample at least window older than now;
// if every sample is newer than that horizon, the oldest stored sample.
// Caller holds mu.
func (w *RateWindow) base(now time.Time, window time.Duration) *WindowSample {
	horizon := now.Add(-window)
	for i := 0; i < w.n; i++ {
		s := w.at(i)
		if !s.At.After(horizon) {
			return s
		}
	}
	return w.at(w.n - 1)
}

// Rate returns the per-second rate of counter idx over the trailing window:
// (current − value at the window's base sample) / elapsed. current is the
// counter's live value now (the window only stores history). Returns 0 when
// the base sample is too fresh for a meaningful rate (<1s elapsed), too old
// to describe the asked-for window (older than 2×window — after a long idle
// stretch with no ticks the stored history is stale, and a rate computed
// against it would smear old traffic across the idle gap), or does not
// carry idx.
func (w *RateWindow) Rate(now time.Time, window time.Duration, idx int, current uint64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	s := w.base(now, window)
	elapsed := now.Sub(s.At).Seconds()
	if elapsed < 1 || elapsed > 2*window.Seconds() || idx >= len(s.Counters) || current < s.Counters[idx] {
		return 0
	}
	return float64(current-s.Counters[idx]) / elapsed
}

// Ratio returns the fraction numIdx/denIdx of counter deltas over the
// trailing window (for example errors per request, abandoned restarts per
// restart). Returns 0 when the denominator delta is zero, or when the base
// sample is staler than 2×window (same long-idle guard as Rate — the
// degradation controller keys on these ratios, and a stale error ratio must
// not hold a recovered server degraded).
func (w *RateWindow) Ratio(now time.Time, window time.Duration, numIdx, denIdx int, numCur, denCur uint64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	s := w.base(now, window)
	if now.Sub(s.At) > 2*window {
		return 0
	}
	if numIdx >= len(s.Counters) || denIdx >= len(s.Counters) {
		return 0
	}
	if numCur < s.Counters[numIdx] || denCur < s.Counters[denIdx] {
		return 0
	}
	den := denCur - s.Counters[denIdx]
	if den == 0 {
		return 0
	}
	return float64(numCur-s.Counters[numIdx]) / float64(den)
}

// GaugeTrend returns the mean and max of gauge idx across the samples inside
// the trailing window (the baseline sample carries no gauges and is skipped).
// ok is false when no stored sample in the window carries the gauge.
func (w *RateWindow) GaugeTrend(now time.Time, window time.Duration, idx int) (mean float64, max int64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	horizon := now.Add(-window)
	var sum int64
	var count int
	for i := 0; i < w.n; i++ {
		s := w.at(i)
		if s.At.Before(horizon) {
			break
		}
		if idx >= len(s.Gauges) {
			continue
		}
		v := s.Gauges[idx]
		sum += v
		if !ok || v > max {
			max = v
		}
		ok = true
		count++
	}
	if count == 0 {
		return 0, 0, false
	}
	return float64(sum) / float64(count), max, true
}
