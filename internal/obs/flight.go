package obs

import (
	"sync/atomic"
	"time"
)

// Outcome classifies how a request finished. It is coarser than an HTTP
// status: the serving layer maps its terminal states onto these buckets so
// the flight recorder can filter without re-deriving policy from codes.
type Outcome uint8

const (
	// OutcomeOK is a request that completed normally.
	OutcomeOK Outcome = iota
	// OutcomeError is a request that failed (4xx/5xx other than the
	// dedicated buckets below).
	OutcomeError
	// OutcomeTimeout is a request that hit the server's request deadline.
	OutcomeTimeout
	// OutcomeCanceled is a request whose client went away mid-flight.
	OutcomeCanceled
	// OutcomeRejected is a request shed at admission (no worker slot).
	OutcomeRejected
	// NumOutcomes is the outcome count.
	NumOutcomes = iota
)

var outcomeNames = [NumOutcomes]string{
	"ok", "error", "timeout", "canceled", "rejected",
}

// String names the outcome ("ok", "error", "timeout", "canceled",
// "rejected").
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// ParseOutcome maps an outcome name back to its value (the /debug/requests
// filter input).
func ParseOutcome(s string) (Outcome, bool) {
	for i, name := range outcomeNames {
		if s == name {
			return Outcome(i), true
		}
	}
	return 0, false
}

// RequestRecord is one completed request as the flight recorder retains it.
// Records are immutable once handed to Record: the recorder stores the
// pointer, and concurrent readers receive the same pointer, so the writing
// handler must not touch the record afterwards.
type RequestRecord struct {
	// TraceID is the request's trace identifier (16-hex on the wire).
	TraceID uint64
	// Endpoint is the request path ("/expand", "/search").
	Endpoint string
	// Query is the raw user query.
	Query string
	// Method and Quality are the expansion method/quality labels ("" for
	// /search).
	Method  string
	Quality string
	// Status is the HTTP status written.
	Status int
	// Outcome is the coarse terminal state.
	Outcome Outcome
	// Cache is the expansion cache disposition (CacheNone for /search).
	Cache CacheState
	// Start is when the handler accepted the request; Took is end-to-end
	// handler latency.
	Start time.Time
	Took  time.Duration
	// Stages holds the per-stage pipeline spans (zero for /search and for
	// cache hits).
	Stages [NumStages]time.Duration
	// KMeansRestarts, KMeansIterations and KMeansAbandoned mirror the
	// request trace's clustering bookkeeping.
	KMeansRestarts, KMeansIterations, KMeansAbandoned int
	// Notable marks records the recorder exempts from sampling
	// (slow/error/aborted requests); set by Record.
	Notable bool
	// Tier is the degradation-ladder rung the request was served (or shed)
	// at — 0 both for tier T0 and when degradation is disabled (see
	// internal/degrade).
	Tier int
}

// FromTrace copies the trace-derived fields (id, cache state, stage spans,
// k-means bookkeeping) into the record. A nil trace leaves them zero.
func (r *RequestRecord) FromTrace(tr *Trace) {
	if tr == nil {
		return
	}
	r.TraceID = tr.ID
	r.Cache = tr.Cache
	r.Stages = tr.Durations
	r.KMeansRestarts = tr.KMeansRestarts
	r.KMeansIterations = tr.KMeansIterations
	r.KMeansAbandoned = tr.KMeansAbandoned
}

// FlightRecorder is a lock-free fixed-capacity ring of completed request
// records. Two rings back it: the main ring holds the most recent admitted
// records of any kind, and a smaller notable ring holds only
// slow/error/aborted requests, so a burst of fast traffic can never evict
// the one record an operator is looking for. Plain (fast, successful)
// records are sampled adaptively: when the main ring wraps faster than
// minWrap the admission rate halves (up to 1-in-1024), and it recovers when
// traffic slows. Notable records are always admitted to both rings.
//
// Writers publish immutable *RequestRecord values with a single atomic
// pointer store; readers load pointers. No locks, no seqlocks, no torn
// reads — eviction is overwrite.
type FlightRecorder struct {
	slots    []atomic.Pointer[RequestRecord]
	notables []atomic.Pointer[RequestRecord]

	head        atomic.Uint64 // admitted main-ring records (next ticket)
	notableHead atomic.Uint64 // admitted notable-ring records
	plainSeq    atomic.Uint64 // plain records offered (sampling input)

	sampleShift atomic.Int32 // admit 1 in 2^shift plain records
	lastWrapNS  atomic.Int64 // wall clock of the main ring's last wrap

	recorded Counter // records admitted to the main ring
	sampled  Counter // plain records dropped by sampling

	minWrap time.Duration // target minimum time for one main-ring lap
}

// Flight recorder tuning. maxSampleShift bounds the adaptive decimation at
// 1-in-1024; defaultMinWrap is the lap time below which the recorder starts
// shedding plain records.
const (
	maxSampleShift = 10
	defaultMinWrap = time.Second
)

// NewFlightRecorder returns a recorder whose main ring holds capacity
// records and whose notable ring holds notableCapacity slow/error/aborted
// records. Capacities are clamped to at least 1.
func NewFlightRecorder(capacity, notableCapacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	if notableCapacity < 1 {
		notableCapacity = 1
	}
	return &FlightRecorder{
		slots:    make([]atomic.Pointer[RequestRecord], capacity),
		notables: make([]atomic.Pointer[RequestRecord], notableCapacity),
		minWrap:  defaultMinWrap,
	}
}

// Capacity returns the main ring's slot count.
func (f *FlightRecorder) Capacity() int { return len(f.slots) }

// Record admits one completed request. notable marks slow/error/aborted
// requests: they bypass sampling and are retained in the dedicated notable
// ring as well as the main ring. The record must not be mutated after the
// call.
func (f *FlightRecorder) Record(rec *RequestRecord, notable bool) {
	rec.Notable = notable
	if notable {
		i := f.notableHead.Add(1) - 1
		f.notables[i%uint64(len(f.notables))].Store(rec)
	} else if shift := f.sampleShift.Load(); shift > 0 {
		seq := f.plainSeq.Add(1)
		if seq&(1<<uint(shift)-1) != 0 {
			f.sampled.Inc()
			return
		}
	}
	i := f.head.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(rec)
	f.recorded.Inc()
	if i > 0 && i%uint64(len(f.slots)) == 0 {
		f.adjustSampling()
	}
}

// adjustSampling runs once per main-ring lap: laps faster than minWrap
// double the plain-record decimation, laps slower than 8x minWrap halve it.
func (f *FlightRecorder) adjustSampling() {
	now := time.Now().UnixNano()
	last := f.lastWrapNS.Swap(now)
	if last == 0 {
		return
	}
	lap := time.Duration(now - last)
	switch shift := f.sampleShift.Load(); {
	case lap < f.minWrap && shift < maxSampleShift:
		f.sampleShift.CompareAndSwap(shift, shift+1)
	case lap > 8*f.minWrap && shift > 0:
		f.sampleShift.CompareAndSwap(shift, shift-1)
	}
}

// Snapshot returns up to max records, newest first: the main ring's most
// recent records, then any notable records the main ring has already
// evicted (deduplicated by trace ID). max <= 0 means all retained records.
func (f *FlightRecorder) Snapshot(max int) []*RequestRecord {
	limit := len(f.slots) + len(f.notables)
	if max <= 0 || max > limit {
		max = limit
	}
	out := make([]*RequestRecord, 0, max)
	seen := make(map[uint64]struct{}, max)
	collect := func(slots []atomic.Pointer[RequestRecord], head uint64) {
		n := uint64(len(slots))
		filled := head
		if filled > n {
			filled = n
		}
		for k := uint64(0); k < filled && len(out) < max; k++ {
			// Walk backwards from the newest admitted ticket; head > k so
			// the subtraction cannot underflow.
			rec := slots[(head-1-k)%n].Load()
			if rec == nil {
				continue
			}
			if _, dup := seen[rec.TraceID]; dup {
				continue
			}
			seen[rec.TraceID] = struct{}{}
			out = append(out, rec)
		}
	}
	if h := f.head.Load(); h > 0 {
		collect(f.slots, h)
	}
	if h := f.notableHead.Load(); h > 0 {
		collect(f.notables, h)
	}
	return out
}

// Find returns the retained record with the given trace ID, or nil. Both
// rings are scanned; the notable ring wins ties (it is never sampled).
func (f *FlightRecorder) Find(id uint64) *RequestRecord {
	for i := range f.notables {
		if rec := f.notables[i].Load(); rec != nil && rec.TraceID == id {
			return rec
		}
	}
	for i := range f.slots {
		if rec := f.slots[i].Load(); rec != nil && rec.TraceID == id {
			return rec
		}
	}
	return nil
}

// Stats reports the recorder's admission counters: records admitted, plain
// records dropped by sampling, and the current 1-in-2^shift sampling shift.
func (f *FlightRecorder) Stats() (recorded, sampledOut uint64, shift int) {
	return f.recorded.Load(), f.sampled.Load(), int(f.sampleShift.Load())
}

// --- active-request registry ------------------------------------------------

// ActiveRequest is one in-flight request as the registry exposes it. Values
// are immutable once registered.
type ActiveRequest struct {
	// TraceID, Endpoint and Query identify the request.
	TraceID  uint64
	Endpoint string
	Query    string
	// Start is when the handler accepted the request.
	Start time.Time
}

// ActiveSet tracks in-flight requests in a fixed array of atomic pointers:
// Begin CAS-claims a free slot, End releases it, Snapshot loads them all.
// Lock-free and allocation-free apart from the caller's ActiveRequest.
type ActiveSet struct {
	slots []atomic.Pointer[ActiveRequest]
	hint  atomic.Uint64
}

// NewActiveSet returns a registry with the given slot capacity (size it to
// the worker pool plus admission queue; requests beyond capacity are simply
// not tracked).
func NewActiveSet(capacity int) *ActiveSet {
	if capacity < 1 {
		capacity = 1
	}
	return &ActiveSet{slots: make([]atomic.Pointer[ActiveRequest], capacity)}
}

// Begin registers an in-flight request and returns its slot token for End.
// Returns -1 (and tracks nothing) when every slot is taken.
func (a *ActiveSet) Begin(req *ActiveRequest) int {
	n := uint64(len(a.slots))
	start := a.hint.Add(1)
	for k := uint64(0); k < n; k++ {
		i := (start + k) % n
		if a.slots[i].CompareAndSwap(nil, req) {
			return int(i)
		}
	}
	return -1
}

// End releases the slot returned by Begin. A -1 token is a no-op.
func (a *ActiveSet) End(token int) {
	if token >= 0 && token < len(a.slots) {
		a.slots[token].Store(nil)
	}
}

// Snapshot returns the currently tracked in-flight requests, oldest first.
func (a *ActiveSet) Snapshot() []*ActiveRequest {
	out := make([]*ActiveRequest, 0, len(a.slots))
	for i := range a.slots {
		if req := a.slots[i].Load(); req != nil {
			out = append(out, req)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start.Before(out[j-1].Start); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
