package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func mkRec(id uint64, took time.Duration) *RequestRecord {
	return &RequestRecord{
		TraceID:  id,
		Endpoint: "/expand",
		Query:    "java",
		Start:    time.Now(),
		Took:     took,
	}
}

func TestFlightRecorderRetainsNewestFirst(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	for id := uint64(1); id <= 6; id++ {
		f.Record(mkRec(id, time.Millisecond), false)
	}
	got := f.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot size = %d, want 4", len(got))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if got[i].TraceID != want {
			t.Errorf("snapshot[%d] = %d, want %d", i, got[i].TraceID, want)
		}
	}
	if f.Find(2) != nil {
		t.Error("evicted record still findable")
	}
	if rec := f.Find(5); rec == nil || rec.TraceID != 5 {
		t.Error("retained record not findable")
	}
}

// TestFlightRecorderNotableSurvivesEviction pins the acceptance property:
// a slow/error record survives 2x ring-capacity of subsequent fast traffic
// because the notable ring is never sampled and never sees plain records.
func TestFlightRecorderNotableSurvivesEviction(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	f.Record(mkRec(100, 2*time.Second), true) // the slow request
	f.Record(mkRec(101, time.Millisecond), false)
	// errRec: an error outcome is notable too.
	errRec := mkRec(102, time.Millisecond)
	errRec.Outcome = OutcomeError
	f.Record(errRec, true)
	for id := uint64(200); id < 200+2*8; id++ { // 2x main-ring capacity
		f.Record(mkRec(id, time.Millisecond), false)
	}
	if rec := f.Find(100); rec == nil || !rec.Notable {
		t.Fatal("slow request evicted by 2x-capacity fast traffic")
	}
	if rec := f.Find(102); rec == nil || rec.Outcome != OutcomeError {
		t.Fatal("error request evicted by 2x-capacity fast traffic")
	}
	snap := f.Snapshot(0)
	if len(snap) > 8+4 {
		t.Fatalf("snapshot %d records exceeds total capacity %d", len(snap), 12)
	}
	found := false
	for _, rec := range snap {
		if rec.TraceID == 100 {
			found = true
		}
	}
	if !found {
		t.Error("snapshot does not surface the retained slow request")
	}
}

// TestFlightRecorderSampling drives the ring through fast laps and checks
// that adaptive decimation kicks in, sheds only plain records, and that the
// ring never exceeds capacity.
func TestFlightRecorderSampling(t *testing.T) {
	f := NewFlightRecorder(16, 4)
	f.minWrap = time.Hour // any lap is "too fast": force sampling on
	for id := uint64(1); id <= 4096; id++ {
		f.Record(mkRec(id, time.Microsecond), false)
	}
	recorded, sampledOut, shift := f.Stats()
	if shift == 0 {
		t.Error("sampling shift never increased under fast wrap")
	}
	if sampledOut == 0 {
		t.Error("no plain records were shed")
	}
	if recorded+sampledOut != 4096 {
		t.Errorf("recorded %d + sampled %d != offered 4096", recorded, sampledOut)
	}
	// Notables still always land.
	f.Record(mkRec(9999, time.Second), true)
	if f.Find(9999) == nil {
		t.Error("notable dropped while sampling active")
	}
	if got := len(f.Snapshot(0)); got > 20 {
		t.Errorf("snapshot %d records exceeds capacity 20", got)
	}
}

// TestFlightRecorderConcurrent hammers concurrent record/read/evict under
// -race: writers wrap the ring many times while readers snapshot and Find.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, 2)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range f.Snapshot(0) {
					if rec.TraceID == 0 {
						t.Error("zero-ID record surfaced")
						return
					}
				}
				f.Find(42)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				f.Record(mkRec(id, time.Millisecond), i%17 == 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	if got := len(f.Snapshot(0)); got > 10 {
		t.Errorf("snapshot %d records exceeds capacity 10", got)
	}
}

// TestFlightRecorderProperties drives random traffic mixes through
// recorders of random geometry and checks the structural invariants that
// every example-based test above spot-checks: notables within the notable
// ring's reach are always retrievable no matter how much plain traffic
// followed, snapshots never exceed total capacity or repeat a trace ID,
// and the admission ledger accounts for every offered record.
func TestFlightRecorderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20110811))
	for trial := 0; trial < 50; trial++ {
		capMain := 1 + rng.Intn(32)
		capNotable := 1 + rng.Intn(8)
		f := NewFlightRecorder(capMain, capNotable)
		if rng.Intn(2) == 0 {
			f.minWrap = time.Hour // force decimation of plain records
		}
		var notables []uint64
		var offered, notableCount uint64
		n := 1 + rng.Intn(512)
		for id := uint64(1); id <= uint64(n); id++ {
			notable := rng.Intn(8) == 0
			f.Record(mkRec(id, time.Duration(rng.Intn(1e6))), notable)
			offered++
			if notable {
				notables = append(notables, id)
				notableCount++
			}
		}
		// Every notable the dedicated ring can still hold must be findable.
		start := 0
		if len(notables) > capNotable {
			start = len(notables) - capNotable
		}
		for _, id := range notables[start:] {
			if rec := f.Find(id); rec == nil || !rec.Notable {
				t.Fatalf("trial %d (cap %d/%d): notable %d lost after %d records",
					trial, capMain, capNotable, id, n)
			}
		}
		snap := f.Snapshot(0)
		if len(snap) > capMain+capNotable {
			t.Fatalf("trial %d: snapshot %d exceeds capacity %d",
				trial, len(snap), capMain+capNotable)
		}
		seen := make(map[uint64]bool, len(snap))
		for _, rec := range snap {
			if seen[rec.TraceID] {
				t.Fatalf("trial %d: trace %d repeated in snapshot", trial, rec.TraceID)
			}
			seen[rec.TraceID] = true
		}
		// recorded counts main-ring admissions (notables always land there
		// too); sampled counts decimated plain records; together they must
		// account for every offer.
		recorded, sampledOut, _ := f.Stats()
		if recorded+sampledOut != offered {
			t.Fatalf("trial %d: recorded %d + sampled %d != offered %d",
				trial, recorded, sampledOut, offered)
		}
		if sampledOut > offered-notableCount {
			t.Fatalf("trial %d: %d sampled out exceeds %d plain offers",
				trial, sampledOut, offered-notableCount)
		}
	}
}

func TestActiveSet(t *testing.T) {
	a := NewActiveSet(3)
	t1 := a.Begin(&ActiveRequest{TraceID: 1, Endpoint: "/expand", Start: time.Unix(10, 0)})
	t2 := a.Begin(&ActiveRequest{TraceID: 2, Endpoint: "/search", Start: time.Unix(5, 0)})
	if t1 < 0 || t2 < 0 {
		t.Fatal("Begin failed with free slots")
	}
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("active = %d, want 2", len(snap))
	}
	if snap[0].TraceID != 2 || snap[1].TraceID != 1 {
		t.Errorf("snapshot not oldest-first: %d, %d", snap[0].TraceID, snap[1].TraceID)
	}
	a.End(t1)
	if got := a.Snapshot(); len(got) != 1 || got[0].TraceID != 2 {
		t.Errorf("End did not release slot: %+v", got)
	}
	// Fill to capacity; the overflow Begin is untracked but harmless.
	a.Begin(&ActiveRequest{TraceID: 3, Start: time.Unix(1, 0)})
	a.Begin(&ActiveRequest{TraceID: 4, Start: time.Unix(2, 0)})
	if tok := a.Begin(&ActiveRequest{TraceID: 5}); tok != -1 {
		t.Errorf("Begin beyond capacity returned %d, want -1", tok)
	}
	a.End(-1) // no-op
}

func TestActiveSetConcurrent(t *testing.T) {
	a := NewActiveSet(64)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok := a.Begin(&ActiveRequest{TraceID: uint64(w + 1), Start: time.Now()})
				a.Snapshot()
				a.End(tok)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Snapshot(); len(got) != 0 {
		t.Errorf("%d requests leaked in the active set", len(got))
	}
}

func TestOutcomeNames(t *testing.T) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		name := o.String()
		if name == "unknown" {
			t.Fatalf("outcome %d has no name", o)
		}
		back, ok := ParseOutcome(name)
		if !ok || back != o {
			t.Errorf("ParseOutcome(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := ParseOutcome("bogus"); ok {
		t.Error("ParseOutcome accepted bogus name")
	}
}
