package obs

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of an expansion request. The order is
// the pipeline order; it is also the iteration order of per-stage metrics.
type Stage uint8

const (
	// StageParse is query analysis (string → term IDs).
	StageParse Stage = iota
	// StageSearch is the AND-semantics retrieval of the result universe.
	StageSearch
	// StageProblem is universe/problem construction: the result set, rank
	// weights and the per-cluster Definition 2.2 problems (candidate-pool
	// scoring included).
	StageProblem
	// StageCluster is k-means over the result universe (all restarts).
	StageCluster
	// StageSolve is the ISKR/PEBC/ΔF/OR solve over every cluster problem.
	StageSolve
	// StageAssemble is suggestion assembly: the wire-shaped Expansion built
	// from the solver output.
	StageAssemble
	// NumStages is the stage count (array sizes, iteration bounds).
	NumStages = iota
)

var stageNames = [NumStages]string{
	"parse", "search", "problem", "cluster", "solve", "assemble",
}

// String names the stage ("parse", "search", ...).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// CacheState classifies how an Expand request was satisfied.
type CacheState uint8

const (
	// CacheNone means the request never consulted the expansion cache
	// (tracing was attached outside Expand, or caching is disabled and the
	// pipeline has not run yet).
	CacheNone CacheState = iota
	// CacheComputed means the pipeline actually ran for this request.
	CacheComputed
	// CacheHit means the LRU cache served the result.
	CacheHit
	// CacheCoalesced means the request shared another caller's in-flight
	// computation (singleflight).
	CacheCoalesced
)

// String names the cache state ("computed", "hit", "coalesced", "none").
func (c CacheState) String() string {
	switch c {
	case CacheComputed:
		return "computed"
	case CacheHit:
		return "hit"
	case CacheCoalesced:
		return "coalesced"
	default:
		return "none"
	}
}

// Trace records the per-stage timing of one request. A nil *Trace is valid
// everywhere — every method no-ops — so instrumented code needs no nil
// branches at call sites. Traces are not safe for concurrent use; recycle
// them through GetTrace/PutTrace (sync.Pool), which keeps the hot path free
// of per-request allocations.
type Trace struct {
	// ID is the request's trace identifier (see NextTraceID / AppendID).
	ID uint64
	// Durations holds the accumulated time per stage. A stage entered twice
	// (interleave rounds) accumulates across its intervals.
	Durations [NumStages]time.Duration
	// Cache is how the request was satisfied.
	Cache CacheState
	// KMeansRestarts, KMeansIterations and KMeansAbandoned mirror the
	// lockstep driver's per-run bookkeeping: restarts launched, total
	// iterations across all restarts, and restarts abandoned early
	// (serving mode only).
	KMeansRestarts, KMeansIterations, KMeansAbandoned int

	starts [NumStages]time.Time
}

// Reset clears the trace for reuse.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	*t = Trace{}
}

// Begin marks the start of a stage (and, when profiling labels are enabled,
// labels the goroutine so CPU samples taken during the stage — including on
// workers spawned by it — attribute to it).
func (t *Trace) Begin(s Stage) {
	if labelsOn.Load() {
		pprof.SetGoroutineLabels(stageLabelCtx[s])
	}
	if t == nil {
		return
	}
	t.starts[s] = time.Now()
}

// End closes the latest Begin of the stage, accumulating its elapsed time.
func (t *Trace) End(s Stage) {
	if labelsOn.Load() {
		pprof.SetGoroutineLabels(noLabelCtx)
	}
	if t == nil {
		return
	}
	t.Durations[s] += time.Since(t.starts[s])
}

// Total returns the sum of all stage durations.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for _, d := range t.Durations {
		sum += d
	}
	return sum
}

// SetKMeans records the clustering driver's restart bookkeeping.
func (t *Trace) SetKMeans(restarts, iterations, abandoned int) {
	if t == nil {
		return
	}
	t.KMeansRestarts = restarts
	t.KMeansIterations = iterations
	t.KMeansAbandoned = abandoned
}

// MarkCache records how the request was satisfied.
func (t *Trace) MarkCache(c CacheState) {
	if t == nil {
		return
	}
	t.Cache = c
}

// WriteTable writes a human-readable per-stage timing table (used by
// qec-expand -trace and useful in tests).
func (t *Trace) WriteTable(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "%-10s %12s\n", "stage", "time")
	for s := Stage(0); s < NumStages; s++ {
		fmt.Fprintf(w, "%-10s %12v\n", s, t.Durations[s])
	}
	fmt.Fprintf(w, "%-10s %12v\n", "total", t.Total())
	if t.KMeansRestarts > 0 {
		fmt.Fprintf(w, "k-means: %d restarts, %d iterations, %d abandoned\n",
			t.KMeansRestarts, t.KMeansIterations, t.KMeansAbandoned)
	}
}

// --- trace pool -------------------------------------------------------------

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// GetTrace returns a reset Trace from the pool.
func GetTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.Reset()
	return t
}

// PutTrace recycles a trace. The caller must not retain it.
func PutTrace(t *Trace) {
	if t != nil {
		tracePool.Put(t)
	}
}

// --- trace IDs --------------------------------------------------------------

// traceSeq issues trace IDs: a per-process random base (so IDs from
// different processes don't collide trivially) plus an atomic increment.
var traceSeq atomic.Uint64

func init() {
	var seed [8]byte
	// maphash-quality randomness is unnecessary; the time base only has to
	// differ between processes.
	binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	traceSeq.Store(binary.LittleEndian.Uint64(seed[:]) * 0x9E3779B97F4A7C15)
}

// NextTraceID returns a process-unique request identifier.
func NextTraceID() uint64 { return traceSeq.Add(1) }

// AppendID appends the canonical 16-hex-digit rendering of a trace ID.
func AppendID(dst []byte, id uint64) []byte {
	const hex = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hex[(id>>uint(shift))&0xF])
	}
	return dst
}

// IDString renders a trace ID as its 16-hex-digit string.
func IDString(id uint64) string {
	var buf [16]byte
	return string(AppendID(buf[:0], id))
}

// ParseID parses the canonical 16-hex-digit rendering of a trace ID
// (uppercase digits accepted). Used to validate inbound X-Trace-Id headers:
// anything that does not parse gets a fresh server-generated ID instead.
func ParseID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < 16; i++ {
		var d uint64
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	return id, true
}

// --- pprof stage labels -----------------------------------------------------

// labelsOn gates per-stage pprof labels. Off by default: swapping goroutine
// label maps is cheap but not free, and the serving benchmarks pin the
// instrumented hot path at zero extra allocations — the label contexts below
// are built once at init so enabling them stays allocation-free per call.
var labelsOn atomic.Bool

var (
	noLabelCtx    = context.Background()
	stageLabelCtx [NumStages]context.Context
)

func init() {
	for s := Stage(0); s < NumStages; s++ {
		stageLabelCtx[s] = pprof.WithLabels(context.Background(),
			pprof.Labels("qec_stage", s.String()))
	}
}

// EnableProfileLabels switches per-stage pprof goroutine labels on or off
// (qec-serve enables them alongside -pprof-addr).
func EnableProfileLabels(on bool) { labelsOn.Store(on) }

// ProfileLabelsEnabled reports whether stage labels are being applied.
func ProfileLabelsEnabled() bool { return labelsOn.Load() }
