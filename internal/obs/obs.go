// Package obs is the corpus-wide telemetry layer: allocation-free atomic
// counters and gauges, fixed-bucket log-scale latency histograms with
// lock-free bins and mergeable snapshots, and a per-request Trace that
// records one span per pipeline stage (parse, search, problem construction,
// k-means, solve, assembly) with optional runtime/pprof labels so CPU
// profiles attribute samples to stages.
//
// Contract: every primitive here is safe for concurrent use and performs
// zero heap allocations on the record path (Counter.Add, Gauge.Set,
// Histogram.Observe, Trace.Begin/End are all plain atomic or field writes;
// Traces recycle through a sync.Pool). Instrumentation only reads clocks and
// counts events — it never touches pipeline arithmetic — so instrumented and
// uninstrumented runs produce bit-identical expansion output (pinned by
// TestInstrumentationBitIdentity in the root package and by the benchdiff
// alloc gate on the instrumented cold-expansion benchmark).
package obs

import "sync/atomic"

// Counter is a monotonically increasing event counter. The zero value is
// ready to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight requests). The
// zero value is ready to use; all methods are safe for concurrent use and
// allocation-free.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc and Dec move the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }
