package obs

import (
	"testing"
	"time"
)

func TestRateWindowBasics(t *testing.T) {
	w := NewRateWindow(8, 2)
	base := time.Now()
	// Ticks every 10s: counter 0 grows by 50/tick, counter 1 by 1/tick.
	for i := 1; i <= 6; i++ {
		w.Tick(WindowSample{
			At:       base.Add(time.Duration(i) * 10 * time.Second),
			Counters: []uint64{uint64(i) * 50, uint64(i)},
			Gauges:   []int64{int64(i * 2)},
		})
	}
	now := base.Add(60 * time.Second)
	// 1m window: base sample is the baseline at t=0 (60s old) → 300/60 = 5/s.
	if got := w.Rate(now, time.Minute, 0, 300); got < 4.9 || got > 5.1 {
		t.Errorf("1m rate = %v, want ~5", got)
	}
	// 30s window: base sample is t=30 (150) → (300-150)/30 = 5/s.
	if got := w.Rate(now, 30*time.Second, 0, 300); got < 4.9 || got > 5.1 {
		t.Errorf("30s rate = %v, want ~5", got)
	}
	// Ratio of counter 1 to counter 0 over the window: 6/300.
	if got := w.Ratio(now, time.Minute, 1, 0, 6, 300); got < 0.019 || got > 0.021 {
		t.Errorf("ratio = %v, want 0.02", got)
	}
	mean, max, ok := w.GaugeTrend(now, time.Minute, 0)
	if !ok {
		t.Fatal("gauge trend missing")
	}
	if max != 12 {
		t.Errorf("gauge max = %d, want 12", max)
	}
	if mean < 6.9 || mean > 7.1 { // (2+4+6+8+10+12)/6
		t.Errorf("gauge mean = %v, want 7", mean)
	}
}

// TestRateWindowBaselineFallback: before any tick lands, rates fall back to
// the construction-time baseline, so a fresh server still reports non-zero
// QPS once it has served anything.
func TestRateWindowBaselineFallback(t *testing.T) {
	w := NewRateWindow(8, 1)
	now := time.Now().Add(5 * time.Second)
	if got := w.Rate(now, time.Minute, 0, 50); got < 9 || got > 11 {
		t.Errorf("baseline-fallback rate = %v, want ~10 (50 over ~5s)", got)
	}
	// A sub-second-old baseline yields 0, not a nonsense spike.
	w2 := NewRateWindow(8, 1)
	if got := w2.Rate(time.Now(), time.Minute, 0, 50); got != 0 {
		t.Errorf("sub-second rate = %v, want 0", got)
	}
}

func TestRateWindowEviction(t *testing.T) {
	w := NewRateWindow(4, 1)
	base := time.Now()
	for i := 1; i <= 10; i++ {
		w.Tick(WindowSample{
			At:       base.Add(time.Duration(i) * time.Second),
			Counters: []uint64{uint64(i) * 10},
		})
	}
	// Only samples 7..10 remain; a huge window clamps to the oldest stored
	// sample (t=7, value 70).
	now := base.Add(10 * time.Second)
	got := w.Rate(now, time.Hour, 0, 100)
	if got < 9.9 || got > 10.1 { // (100-70)/3s
		t.Errorf("clamped rate = %v, want ~10", got)
	}
	// Counter reset (current < base) reports 0 rather than underflowing.
	if got := w.Rate(now, time.Hour, 0, 5); got != 0 {
		t.Errorf("reset counter rate = %v, want 0", got)
	}
	// Out-of-range index.
	if got := w.Rate(now, time.Hour, 7, 100); got != 0 {
		t.Errorf("out-of-range rate = %v, want 0", got)
	}
}

// TestRateStaleAfterLongIdle pins the long-idle guard: when the newest
// stored sample is older than twice the asked-for window (no ticks landed
// during an idle stretch), Rate and Ratio report 0 instead of smearing old
// traffic across the gap — the degradation controller must not be held at a
// degraded tier by rates describing load that ended minutes ago.
func TestRateStaleAfterLongIdle(t *testing.T) {
	w := NewRateWindow(8, 2)
	base := time.Now()
	for i := 1; i <= 5; i++ {
		w.Tick(WindowSample{
			At:       base.Add(time.Duration(i) * 10 * time.Second),
			Counters: []uint64{uint64(i) * 100, uint64(i) * 10},
		})
	}
	// Fresh read: well-defined rate and ratio.
	now := base.Add(60 * time.Second)
	if got := w.Rate(now, 30*time.Second, 0, 600); got == 0 {
		t.Fatal("fresh rate = 0, want non-zero")
	}
	if got := w.Ratio(now, 30*time.Second, 1, 0, 60, 600); got == 0 {
		t.Fatal("fresh ratio = 0, want non-zero")
	}
	// Ten minutes of silence: every stored sample is far beyond 2x any
	// minute-scale window — both reads must go to zero, not report the
	// pre-idle burst as current traffic.
	idle := base.Add(11 * time.Minute)
	if got := w.Rate(idle, time.Minute, 0, 600); got != 0 {
		t.Errorf("stale rate = %v, want 0", got)
	}
	if got := w.Ratio(idle, time.Minute, 1, 0, 60, 600); got != 0 {
		t.Errorf("stale ratio = %v, want 0", got)
	}
	// A fresh tick after the idle stretch revives the signal once it is old
	// enough to anchor the window (a single post-idle sample cannot describe
	// a full minute until a minute has passed — that, too, is the guard).
	w.Tick(WindowSample{At: idle, Counters: []uint64{600, 60}})
	if got := w.Rate(idle.Add(30*time.Second), time.Minute, 0, 900); got != 0 {
		t.Errorf("rate 30s after revival tick = %v, want 0 (base still stale)", got)
	}
	revived := idle.Add(70 * time.Second)
	if got := w.Rate(revived, time.Minute, 0, 1300); got < 9.9 || got > 10.1 {
		t.Errorf("revived rate = %v, want ~10", got)
	}
}

// TestGaugeTrendEmptyAfterIdle: a fully-evicted window (every sample before
// the horizon) reports ok=false, never stale gauge values.
func TestGaugeTrendEmptyAfterIdle(t *testing.T) {
	w := NewRateWindow(4, 1)
	base := time.Now()
	for i := 1; i <= 4; i++ {
		w.Tick(WindowSample{
			At:       base.Add(time.Duration(i) * time.Second),
			Counters: []uint64{0},
			Gauges:   []int64{int64(i)},
		})
	}
	if _, _, ok := w.GaugeTrend(base.Add(10*time.Minute), time.Minute, 0); ok {
		t.Error("GaugeTrend ok=true long after the last sample, want false")
	}
}
