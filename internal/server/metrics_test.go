package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	qec "repro"
	"repro/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestMetricsExposition scrapes /metrics from a live test server after mixed
// traffic and validates the page structurally (the same check CI runs):
// well-formed HELP/TYPE headers, parseable samples, cumulative histogram
// buckets with +Inf == _count.
func TestMetricsExposition(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(16))
	ts := httptest.NewServer(New(eng, Options{}).Handler())
	defer ts.Close()
	client := ts.Client()

	postJSON(t, client, ts.URL+"/search", SearchRequest{Query: "apple"})
	for _, quality := range []string{"exact", "serving"} {
		postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2, Quality: quality})
	}
	// Second exact request: a cache hit, so hit counters move too.
	postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2, Quality: "exact"})
	// One request per alternative paradigm, so the per-method histograms
	// carry every backend family.
	for _, method := range []string{"vector", "lexical", "orthogonal"} {
		postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2, Method: method})
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if err := obs.ValidatePromText(text); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	for _, want := range []string{
		"qec_http_requests_total",
		`qec_http_endpoint_requests_total{endpoint="expand"} 6`,
		"qec_cache_hits_total 1",
		"qec_workers_capacity",
		`qec_http_request_duration_seconds_bucket{endpoint="search",le="+Inf"} 1`,
		`qec_expand_request_duration_seconds_count{quality="serving"} 1`,
		`qec_expand_pipeline_duration_seconds_count{quality="exact"} 4`,
		`qec_expand_method_duration_seconds_count{method="iskr"} 2`,
		`qec_expand_method_duration_seconds_count{method="vector"} 1`,
		`qec_expand_method_duration_seconds_count{method="lexical"} 1`,
		`qec_expand_method_duration_seconds_count{method="orthogonal"} 1`,
		`qec_expand_method_duration_seconds_count{method="custom"} 0`,
		`qec_stage_duration_seconds_bucket{stage="cluster",`,
		"qec_kmeans_restarts_total",
		"qec_core_fans_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestExpandDebugAndTraceHeader checks the "debug": true contract: the inline
// breakdown matches the X-Trace-Id header, a computed request carries stage
// timings, and a repeat request reports the cache hit with no stages.
func TestExpandDebugAndTraceHeader(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(16))
	ts := httptest.NewServer(New(eng, Options{}).Handler())
	defer ts.Close()

	issue := func() (*http.Response, *ExpandResponse) {
		t.Helper()
		resp, data := postJSON(t, ts.Client(), ts.URL+"/expand",
			ExpandRequest{Query: "apple", K: 2, Debug: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
		var er ExpandResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		return resp, &er
	}

	resp, er := issue()
	if er.Debug == nil {
		t.Fatal("debug requested but response has no debug section")
	}
	if !traceIDRe.MatchString(er.Debug.TraceID) {
		t.Fatalf("trace_id %q is not 16 hex digits", er.Debug.TraceID)
	}
	if hdr := resp.Header.Get("X-Trace-Id"); hdr != er.Debug.TraceID {
		t.Fatalf("X-Trace-Id %q != debug trace_id %q", hdr, er.Debug.TraceID)
	}
	if er.Debug.Cache != "computed" {
		t.Fatalf("first request cache = %q; want computed", er.Debug.Cache)
	}
	if len(er.Debug.Stages) == 0 {
		t.Fatal("computed request should carry stage timings")
	}
	if er.Debug.KMeans.Restarts == 0 {
		t.Fatal("computed request should report k-means restarts")
	}

	resp2, er2 := issue()
	if er2.Debug.Cache != "hit" {
		t.Fatalf("repeat request cache = %q; want hit", er2.Debug.Cache)
	}
	if len(er2.Debug.Stages) != 0 {
		t.Fatalf("cache hit should carry no stage timings, got %v", er2.Debug.Stages)
	}
	if resp2.Header.Get("X-Trace-Id") == resp.Header.Get("X-Trace-Id") {
		t.Fatal("trace IDs should be unique per request")
	}

	// Without "debug" the response must not carry the section.
	respNo, data := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	if respNo.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", respNo.StatusCode)
	}
	if bytes.Contains(data, []byte(`"debug"`)) {
		t.Fatalf("undebugged response leaked a debug section: %s", data)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newSyncBuffer() *syncBuffer {
	sb := &syncBuffer{mu: make(chan struct{}, 1)}
	sb.mu <- struct{}{}
	return sb
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.String()
}

// TestAccessAndSlowQueryLog drives requests through a server with both logs
// configured and checks every line is valid JSON with the contract fields,
// and that slow lines (threshold 0s exceeded by everything) carry the stage
// breakdown.
func TestAccessAndSlowQueryLog(t *testing.T) {
	access, slow := newSyncBuffer(), newSyncBuffer()
	eng := ambiguousEngine(t, qec.WithExpansionCache(16))
	ts := httptest.NewServer(New(eng, Options{
		AccessLog: access,
		SlowQuery: time.Nanosecond,
		SlowLog:   slow,
	}).Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/search", SearchRequest{Query: "apple"})
	postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2}) // cache hit

	type logLine struct {
		TS       string             `json:"ts"`
		Trace    string             `json:"trace"`
		Endpoint string             `json:"endpoint"`
		Query    string             `json:"query"`
		Quality  string             `json:"quality"`
		Status   int                `json:"status"`
		TookMS   *float64           `json:"took_ms"`
		Cache    string             `json:"cache"`
		Slow     bool               `json:"slow"`
		Stages   map[string]float64 `json:"stages"`
		KMeans   *KMeansDebug       `json:"kmeans"`
	}
	parse := func(text string) []logLine {
		t.Helper()
		var lines []logLine
		for _, ln := range strings.Split(strings.TrimSpace(text), "\n") {
			if ln == "" {
				continue
			}
			var ll logLine
			if err := json.Unmarshal([]byte(ln), &ll); err != nil {
				t.Fatalf("log line is not valid JSON: %v\n%s", err, ln)
			}
			lines = append(lines, ll)
		}
		return lines
	}

	accessLines := parse(access.String())
	if len(accessLines) != 3 {
		t.Fatalf("access log has %d lines; want 3", len(accessLines))
	}
	for _, ll := range accessLines {
		if !traceIDRe.MatchString(ll.Trace) {
			t.Fatalf("bad trace id %q in %+v", ll.Trace, ll)
		}
		if ll.Status != http.StatusOK || ll.TookMS == nil || ll.Query != "apple" {
			t.Fatalf("incomplete access line: %+v", ll)
		}
		if _, err := time.Parse(time.RFC3339Nano, ll.TS); err != nil {
			t.Fatalf("bad timestamp %q: %v", ll.TS, err)
		}
	}
	if accessLines[0].Endpoint != "search" || accessLines[1].Endpoint != "expand" {
		t.Fatalf("unexpected endpoints: %+v", accessLines)
	}
	if accessLines[1].Cache != "computed" || accessLines[2].Cache != "hit" {
		t.Fatalf("cache dispositions = %q, %q; want computed, hit",
			accessLines[1].Cache, accessLines[2].Cache)
	}

	// Dedicated slow log: every line marked slow, expands carry stages.
	slowLines := parse(slow.String())
	if len(slowLines) != 3 {
		t.Fatalf("slow log has %d lines; want 3", len(slowLines))
	}
	for _, ll := range slowLines {
		if !ll.Slow {
			t.Fatalf("slow line not marked slow: %+v", ll)
		}
	}
	computed := slowLines[1]
	if len(computed.Stages) == 0 || computed.KMeans == nil || computed.KMeans.Restarts == 0 {
		t.Fatalf("computed slow line missing stage breakdown: %+v", computed)
	}
	if _, ok := computed.Stages["cluster"]; !ok {
		t.Fatalf("slow breakdown missing cluster stage: %+v", computed.Stages)
	}
}

// TestStatsLatencyAndWorkers checks the extended /stats payload: latency
// quantiles per endpoint and per quality tier, worker pool occupancy, and the
// k-means totals.
func TestStatsLatencyAndWorkers(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(16))
	ts := httptest.NewServer(New(eng, Options{}).Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/search", SearchRequest{Query: "apple"})
	postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2, Quality: "serving"})

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Latency.Search.Count != 1 || stats.Latency.Expand.Count != 2 {
		t.Fatalf("latency counts = %+v", stats.Latency)
	}
	if stats.Latency.Expand.P99MS < stats.Latency.Expand.P50MS {
		t.Fatalf("p99 < p50: %+v", stats.Latency.Expand)
	}
	if q := stats.Latency.Quality; q["exact"].Count != 1 || q["serving"].Count != 1 {
		t.Fatalf("per-quality counts = %+v", q)
	}
	if stats.Workers.Capacity <= 0 || stats.Workers.InFlight != 0 || stats.Workers.Queued != 0 {
		t.Fatalf("workers = %+v", stats.Workers)
	}
	if stats.KMeans.Restarts == 0 || stats.KMeans.Iterations == 0 {
		t.Fatalf("kmeans totals = %+v", stats.KMeans)
	}
	// Both pipeline runs used the default method; methods never run are
	// omitted from the per-method split.
	if m := stats.Latency.Method; m["iskr"].Count != 2 || len(m) != 1 {
		t.Fatalf("per-method latency = %+v; want iskr:2 only", m)
	}
}
