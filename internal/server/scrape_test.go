package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"
)

// CI scrapes a live qec-serve after real traffic and hands the captured
// bodies to these tests, mirroring the obs package's -scraped-metrics
// contract: the shape checks live next to the wire types so the workflow
// file stays a dumb pipe.
var (
	scrapedDebug   = flag.String("scraped-debug", "", "path to a GET /debug/requests body captured from a live server")
	scrapedExplain = flag.String("scraped-explain", "", `path to an "explain": true POST /expand body captured from a live server`)
)

// TestScrapedDebugRequests validates a live /debug/requests capture: the
// listing must decode into the wire shape, agree with its own count, carry
// only well-formed records (16-hex trace, known outcome, endpoint, start
// time) and include the explain request CI tagged with a fixed trace ID.
func TestScrapedDebugRequests(t *testing.T) {
	if *scrapedDebug == "" {
		t.Skip("no -scraped-debug file; run via the CI live-scrape step")
	}
	raw, err := os.ReadFile(*scrapedDebug)
	if err != nil {
		t.Fatal(err)
	}
	var resp DebugRequestsResponse
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode /debug/requests body: %v\n%s", err, raw)
	}
	if resp.Count != len(resp.Records) {
		t.Fatalf("count %d != len(records) %d", resp.Count, len(resp.Records))
	}
	if resp.Count == 0 {
		t.Fatal("no flight records after live traffic")
	}
	if resp.Sampling.Recorded == 0 {
		t.Fatalf("sampling.recorded = 0 with %d records listed", resp.Count)
	}
	var sawExplainTrace bool
	for i, rec := range resp.Records {
		if len(rec.Trace) != 16 {
			t.Errorf("record %d: trace %q is not 16 hex chars", i, rec.Trace)
		}
		if rec.Endpoint == "" {
			t.Errorf("record %d: empty endpoint", i)
		}
		if rec.Outcome == "" {
			t.Errorf("record %d: empty outcome", i)
		}
		if rec.Start.IsZero() {
			t.Errorf("record %d: zero start time", i)
		}
		if rec.TookMS < 0 {
			t.Errorf("record %d: negative took_ms %v", i, rec.TookMS)
		}
		// The CI step sends its explain request with this header so the
		// scrape can prove inbound trace IDs land in the recorder.
		if rec.Trace == "feedc0defeedc0de" {
			sawExplainTrace = true
		}
	}
	if !sawExplainTrace {
		t.Error(`the X-Trace-Id: feedc0defeedc0de explain request is missing from the listing`)
	}
}

// TestScrapedExplainResponse validates a live "explain": true /expand
// capture: a normal expansion payload plus a decision trail whose legs are
// populated and aligned with the returned queries.
func TestScrapedExplainResponse(t *testing.T) {
	if *scrapedExplain == "" {
		t.Skip("no -scraped-explain file; run via the CI live-scrape step")
	}
	raw, err := os.ReadFile(*scrapedExplain)
	if err != nil {
		t.Fatal(err)
	}
	var resp ExpandResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode /expand body: %v\n%s", err, raw)
	}
	if len(resp.Queries) == 0 {
		t.Fatal("explain response carries no expanded queries")
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatalf("no explain payload in response:\n%s", raw)
	}
	if len(ex.Query) == 0 {
		t.Error("explain.query is empty")
	}
	if ex.Method == "" || ex.Quality == "" {
		t.Errorf("explain method/quality unresolved: %q / %q", ex.Method, ex.Quality)
	}
	if ex.Results == 0 {
		t.Error("explain.results = 0: pipeline saw no documents")
	}
	if ex.KMeans == nil {
		t.Fatal("explain.kmeans missing for a clustered expansion")
	}
	if len(ex.KMeans.Restarts) == 0 {
		t.Error("explain.kmeans.restarts is empty")
	}
	var won int
	for _, r := range ex.KMeans.Restarts {
		if r.Won {
			won++
		}
	}
	if won != 1 {
		t.Errorf("explain.kmeans: %d restarts won, want exactly 1", won)
	}
	if len(ex.Clusters) != len(resp.Queries) {
		t.Fatalf("explain has %d clusters, response has %d queries",
			len(ex.Clusters), len(resp.Queries))
	}
	for i, c := range ex.Clusters {
		if c.Cluster != i {
			t.Errorf("cluster %d: ordinal %d", i, c.Cluster)
		}
		if len(c.Pool) == 0 {
			t.Errorf("cluster %d: empty candidate pool", i)
		}
	}
}
