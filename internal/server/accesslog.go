package server

import (
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// jsonLogger serializes JSON-lines log records to a writer. One mutex and one
// reused buffer: lines are appended-encoded under the lock so concurrent
// requests never interleave bytes, and steady-state logging allocates nothing
// beyond what the underlying writer does.
type jsonLogger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

func newJSONLogger(w io.Writer) *jsonLogger {
	if w == nil {
		return nil
	}
	return &jsonLogger{w: w}
}

// log appends one record via fn and writes it with a trailing newline.
// Nil-safe: a nil logger drops the record without calling fn.
func (l *jsonLogger) log(fn func(dst []byte) []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = fn(l.buf[:0])
	l.buf = append(l.buf, '\n')
	_, _ = l.w.Write(l.buf)
}

// accessEntry is everything one request log line carries. stages toggles the
// per-stage breakdown (slow-query lines get it, plain access lines do not).
type accessEntry struct {
	trace    uint64
	endpoint string
	query    string
	method   string
	quality  string
	status   int
	took     time.Duration
	cache    obs.CacheState
	tier     int
	tr       *obs.Trace
	stages   bool
	slow     bool
}

// appendAccessEntry renders one JSON log line (without the newline).
func appendAccessEntry(dst []byte, e *accessEntry, now time.Time) []byte {
	dst = append(dst, `{"ts":"`...)
	dst = now.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","trace":"`...)
	dst = obs.AppendID(dst, e.trace)
	dst = append(dst, `","endpoint":`...)
	dst = appendJSONString(dst, e.endpoint)
	dst = append(dst, `,"query":`...)
	dst = appendJSONString(dst, e.query)
	if e.method != "" {
		dst = append(dst, `,"method":`...)
		dst = appendJSONString(dst, e.method)
	}
	if e.quality != "" {
		dst = append(dst, `,"quality":`...)
		dst = appendJSONString(dst, e.quality)
	}
	dst = append(dst, `,"status":`...)
	dst = strconv.AppendInt(dst, int64(e.status), 10)
	dst = append(dst, `,"took_ms":`...)
	dst = appendJSONFloat(dst, float64(e.took.Microseconds())/1000)
	if e.cache != obs.CacheNone {
		dst = append(dst, `,"cache":`...)
		dst = appendJSONString(dst, e.cache.String())
	}
	if e.tier > 0 {
		dst = append(dst, `,"tier":`...)
		dst = strconv.AppendInt(dst, int64(e.tier), 10)
	}
	if e.slow {
		dst = append(dst, `,"slow":true`...)
	}
	if e.stages && e.tr != nil {
		dst = append(dst, `,"stages":{`...)
		first := true
		for st := 0; st < obs.NumStages; st++ {
			d := e.tr.Durations[st]
			if d <= 0 {
				continue
			}
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = append(dst, '"')
			dst = append(dst, obs.Stage(st).String()...)
			dst = append(dst, `":`...)
			dst = appendJSONFloat(dst, float64(d.Microseconds())/1000)
		}
		dst = append(dst, '}')
		dst = append(dst, `,"kmeans":{"restarts":`...)
		dst = strconv.AppendInt(dst, int64(e.tr.KMeansRestarts), 10)
		dst = append(dst, `,"iterations":`...)
		dst = strconv.AppendInt(dst, int64(e.tr.KMeansIterations), 10)
		dst = append(dst, `,"abandoned":`...)
		dst = strconv.AppendInt(dst, int64(e.tr.KMeansAbandoned), 10)
		dst = append(dst, '}')
	}
	dst = append(dst, '}')
	return dst
}

// logRequest emits the request's access-log line and, when the request was
// slower than Options.SlowQuery, a slow-query line with the full per-stage
// breakdown. When both logs share a destination the slow breakdown rides
// inline on the access line instead of duplicating it.
func (s *Server) logRequest(e *accessEntry) {
	if s.accessLog == nil && s.slowLog == nil {
		return
	}
	e.slow = s.opts.SlowQuery > 0 && e.took >= s.opts.SlowQuery
	now := time.Now()
	if s.accessLog != nil {
		e.stages = e.slow && s.slowLog == nil
		s.accessLog.log(func(dst []byte) []byte { return appendAccessEntry(dst, e, now) })
	}
	if e.slow && s.slowLog != nil {
		e.stages = true
		s.slowLog.log(func(dst []byte) []byte { return appendAccessEntry(dst, e, now) })
	}
}
