package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	qec "repro"
	"repro/internal/core"
	"repro/internal/degrade"
	"repro/internal/obs"
)

// GET /metrics renders the server's telemetry in Prometheus text exposition
// format (version 0.0.4): request counters, cache/coalescer stats, worker
// pool gauges, and the latency histograms — per endpoint, per quality tier,
// per expansion method and per pipeline stage. The page is rendered with
// the wire layer's pooled append-encode buffers, so a scrape costs no
// steady-state allocations beyond the response write itself.

// engineMetrics is the optional interface a served engine implements to
// expose its pipeline telemetry (*qec.Engine does via Metrics()).
type engineMetrics interface {
	Metrics() *qec.ExpansionMetrics
}

// Pre-rendered label sets: compile-time constants so the scrape path builds
// no label strings.
var (
	qualityLabels = [qec.NumQualities]string{`quality="exact"`, `quality="serving"`}
	methodLabels  = [qec.NumMethodSlots]string{
		`method="iskr"`, `method="pebc"`, `method="deltaf"`, `method="or"`,
		`method="vector"`, `method="lexical"`, `method="orthogonal"`,
		`method="custom"`,
	}
	stageLabels = [obs.NumStages]string{
		`stage="parse"`, `stage="search"`, `stage="problem"`,
		`stage="cluster"`, `stage="solve"`, `stage="assemble"`,
	}
	tierLabels = [degrade.NumTiers]string{
		`tier="T0"`, `tier="T1"`, `tier="T2"`, `tier="T3"`, `tier="T4"`,
	}
)

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	wb := bufPool.Get().(*wireBuf)
	defer bufPool.Put(wb)
	wb.enc = s.appendMetrics(wb.enc[:0])
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(wb.enc)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(wb.enc)
}

// buildInfoLabels is the qec_build_info label set, rendered once at startup:
// the module version (when built from a module-aware build), the Go toolchain
// and the process's GOMAXPROCS.
var buildInfoLabels = func() string {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return `version="` + version + `",goversion="` + runtime.Version() +
		`",gomaxprocs="` + strconv.Itoa(runtime.GOMAXPROCS(0)) + `"`
}()

// appendMetrics renders the whole exposition page.
func (s *Server) appendMetrics(dst []byte) []byte {
	// --- process ---
	dst = obs.AppendPromHeader(dst, "qec_build_info", "Build metadata; the value is always 1.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_build_info", buildInfoLabels, 1)
	dst = obs.AppendPromHeader(dst, "qec_start_time_seconds", "Unix time the server started.", "gauge")
	dst = obs.AppendPromFloat(dst, "qec_start_time_seconds", "", float64(s.started.UnixNano())/1e9)
	dst = obs.AppendPromHeader(dst, "qec_uptime_seconds", "Seconds since the server started.", "gauge")
	dst = obs.AppendPromFloat(dst, "qec_uptime_seconds", "", time.Since(s.started).Seconds())
	dst = obs.AppendPromHeader(dst, "qec_corpus_docs", "Documents in the served corpus.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_corpus_docs", "", int64(s.eng.Len()))

	// --- windowed rates ---
	rates := s.rateStats()
	dst = obs.AppendPromHeader(dst, "qec_qps_1m", "Requests per second over the trailing minute.", "gauge")
	dst = obs.AppendPromFloat(dst, "qec_qps_1m", "", rates.QPS1M)
	dst = obs.AppendPromHeader(dst, "qec_qps_5m", "Requests per second over the trailing five minutes.", "gauge")
	dst = obs.AppendPromFloat(dst, "qec_qps_5m", "", rates.QPS5M)
	dst = obs.AppendPromHeader(dst, "qec_error_ratio_1m", "Non-2xx responses per request over the trailing minute.", "gauge")
	dst = obs.AppendPromFloat(dst, "qec_error_ratio_1m", "", rates.ErrorRate1M)
	dst = obs.AppendPromHeader(dst, "qec_kmeans_abandon_ratio_1m",
		"K-means restarts abandoned per restart over the trailing minute.", "gauge")
	dst = obs.AppendPromFloat(dst, "qec_kmeans_abandon_ratio_1m", "", rates.AbandonRate1M)
	dst = obs.AppendPromHeader(dst, "qec_queue_depth_1m_max",
		"Maximum sampled worker-queue depth over the trailing minute.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_queue_depth_1m_max", "", rates.QueueMax1M)

	// --- flight recorder ---
	recorded, dropped, shift := s.flight.Stats()
	dst = obs.AppendPromHeader(dst, "qec_flight_recorded_total", "Request records admitted to the flight recorder.", "counter")
	dst = obs.AppendPromUint(dst, "qec_flight_recorded_total", "", recorded)
	dst = obs.AppendPromHeader(dst, "qec_flight_sampled_out_total",
		"Plain request records shed by the flight recorder's adaptive sampling.", "counter")
	dst = obs.AppendPromUint(dst, "qec_flight_sampled_out_total", "", dropped)
	dst = obs.AppendPromHeader(dst, "qec_flight_sample_shift",
		"Current flight-recorder decimation: 1 in 2^shift plain records admitted.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_flight_sample_shift", "", int64(shift))

	// --- request counters ---
	dst = obs.AppendPromHeader(dst, "qec_http_requests_total", "HTTP requests received, all endpoints.", "counter")
	dst = obs.AppendPromInt(dst, "qec_http_requests_total", "", s.total.Load())
	dst = obs.AppendPromHeader(dst, "qec_http_endpoint_requests_total", "HTTP requests by endpoint.", "counter")
	dst = obs.AppendPromInt(dst, "qec_http_endpoint_requests_total", `endpoint="search"`, s.searches.Load())
	dst = obs.AppendPromInt(dst, "qec_http_endpoint_requests_total", `endpoint="expand"`, s.expands.Load())
	dst = obs.AppendPromHeader(dst, "qec_http_errors_total", "Requests answered with a non-2xx status.", "counter")
	dst = obs.AppendPromInt(dst, "qec_http_errors_total", "", s.errcount.Load())
	dst = obs.AppendPromHeader(dst, "qec_http_timeouts_total", "Expansions that exceeded the request deadline.", "counter")
	dst = obs.AppendPromInt(dst, "qec_http_timeouts_total", "", s.timeouts.Load())
	dst = obs.AppendPromHeader(dst, "qec_http_rejected_total", "Requests rejected because the worker pool stayed saturated.", "counter")
	dst = obs.AppendPromInt(dst, "qec_http_rejected_total", "", s.rejects.Load())
	dst = obs.AppendPromHeader(dst, "qec_http_canceled_total", "Requests whose client disconnected first.", "counter")
	dst = obs.AppendPromInt(dst, "qec_http_canceled_total", "", s.canceled.Load())

	// --- worker pool ---
	dst = obs.AppendPromHeader(dst, "qec_workers_capacity", "Expansion worker pool size.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_workers_capacity", "", int64(s.opts.MaxConcurrent))
	dst = obs.AppendPromHeader(dst, "qec_workers_in_flight", "Expansions currently executing.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_workers_in_flight", "", s.inFlight.Load())
	dst = obs.AppendPromHeader(dst, "qec_workers_queued", "Requests waiting for a worker slot.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_workers_queued", "", s.queued.Load())

	// --- degradation controller (when enabled) ---
	if s.ctrl != nil {
		dst = obs.AppendPromHeader(dst, "qec_degrade_tier",
			"Current degradation ladder tier (0 = full quality, 4 = shedding).", "gauge")
		dst = obs.AppendPromInt(dst, "qec_degrade_tier", "", int64(s.ctrl.Tier()))
		dst = obs.AppendPromHeader(dst, "qec_degrade_transitions_total",
			"Degradation tier changes, both directions.", "counter")
		dst = obs.AppendPromInt(dst, "qec_degrade_transitions_total", "", s.ctrl.Transitions())
		dst = obs.AppendPromHeader(dst, "qec_shed_total",
			"Requests shed by the degradation controller (tier T4).", "counter")
		dst = obs.AppendPromInt(dst, "qec_shed_total", "", s.sheds.Load())
		dst = obs.AppendPromHeader(dst, "qec_degrade_request_duration_seconds",
			"Expand request latency by the degradation tier served at.", "histogram")
		for ti := range s.tierHist {
			dst = obs.AppendPromHistogram(dst, "qec_degrade_request_duration_seconds",
				tierLabels[ti], s.tierHist[ti].Snapshot())
		}
	}

	// --- expansion cache / coalescer ---
	cs := s.eng.CacheStats()
	dst = obs.AppendPromHeader(dst, "qec_cache_hits_total", "Expansion cache hits.", "counter")
	dst = obs.AppendPromInt(dst, "qec_cache_hits_total", "", cs.Hits)
	dst = obs.AppendPromHeader(dst, "qec_cache_misses_total", "Expansion cache misses.", "counter")
	dst = obs.AppendPromInt(dst, "qec_cache_misses_total", "", cs.Misses)
	dst = obs.AppendPromHeader(dst, "qec_cache_evictions_total", "Expansion cache evictions.", "counter")
	dst = obs.AppendPromInt(dst, "qec_cache_evictions_total", "", cs.Evictions)
	dst = obs.AppendPromHeader(dst, "qec_cache_entries", "Current expansion cache entries.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_cache_entries", "", int64(cs.Entries))
	dst = obs.AppendPromHeader(dst, "qec_cache_capacity", "Configured expansion cache capacity.", "gauge")
	dst = obs.AppendPromInt(dst, "qec_cache_capacity", "", int64(cs.Capacity))
	dst = obs.AppendPromHeader(dst, "qec_computations_total", "Actual expansion pipeline runs.", "counter")
	dst = obs.AppendPromInt(dst, "qec_computations_total", "", cs.Computations)
	dst = obs.AppendPromHeader(dst, "qec_coalesced_total", "Expand calls that shared an in-flight computation.", "counter")
	dst = obs.AppendPromInt(dst, "qec_coalesced_total", "", cs.Coalesced)

	// --- endpoint latency (user-visible, cache hits included) ---
	dst = obs.AppendPromHeader(dst, "qec_http_request_duration_seconds",
		"Request latency by endpoint, including queueing and cache hits.", "histogram")
	dst = obs.AppendPromHistogram(dst, "qec_http_request_duration_seconds", `endpoint="search"`, s.searchHist.Snapshot())
	var expandAll obs.HistSnapshot
	for qi := range s.expandHist {
		expandAll.Merge(s.expandHist[qi].Snapshot())
	}
	dst = obs.AppendPromHistogram(dst, "qec_http_request_duration_seconds", `endpoint="expand"`, expandAll)

	dst = obs.AppendPromHeader(dst, "qec_expand_request_duration_seconds",
		"Expand request latency by clustering quality tier.", "histogram")
	for qi := range s.expandHist {
		dst = obs.AppendPromHistogram(dst, "qec_expand_request_duration_seconds", qualityLabels[qi], s.expandHist[qi].Snapshot())
	}

	// --- engine pipeline telemetry (when the engine exposes it) ---
	em, ok := s.eng.(engineMetrics)
	if !ok {
		return dst
	}
	m := em.Metrics()
	dst = obs.AppendPromHeader(dst, "qec_expand_pipeline_duration_seconds",
		"Uncached expansion pipeline latency by quality tier.", "histogram")
	for qi := range m.PerQuality {
		dst = obs.AppendPromHistogram(dst, "qec_expand_pipeline_duration_seconds", qualityLabels[qi], m.PerQuality[qi].Snapshot())
	}
	dst = obs.AppendPromHeader(dst, "qec_expand_method_duration_seconds",
		"Uncached expansion pipeline latency by expansion method.", "histogram")
	for mi := range m.PerMethod {
		dst = obs.AppendPromHistogram(dst, "qec_expand_method_duration_seconds", methodLabels[mi], m.PerMethod[mi].Snapshot())
	}
	dst = obs.AppendPromHeader(dst, "qec_stage_duration_seconds",
		"Pipeline stage latency across expansion runs.", "histogram")
	for si := range m.PerStage {
		dst = obs.AppendPromHistogram(dst, "qec_stage_duration_seconds", stageLabels[si], m.PerStage[si].Snapshot())
	}
	dst = obs.AppendPromHeader(dst, "qec_kmeans_restarts_total", "K-means restarts launched by the lockstep driver.", "counter")
	dst = obs.AppendPromUint(dst, "qec_kmeans_restarts_total", "", m.KMeansRestarts.Load())
	dst = obs.AppendPromHeader(dst, "qec_kmeans_iterations_total", "K-means iterations summed across restarts.", "counter")
	dst = obs.AppendPromUint(dst, "qec_kmeans_iterations_total", "", m.KMeansIterations.Load())
	dst = obs.AppendPromHeader(dst, "qec_kmeans_abandoned_restarts_total",
		"Restarts abandoned early by serving-mode early abandonment.", "counter")
	dst = obs.AppendPromUint(dst, "qec_kmeans_abandoned_restarts_total", "", m.AbandonedRestarts.Load())

	// --- core fan budget (process-wide, shared with the experiment runner) ---
	dst = obs.AppendPromHeader(dst, "qec_core_fans_total",
		"Multi-item ParallelFor fans (per-cluster solving and experiment sweeps).", "counter")
	dst = obs.AppendPromUint(dst, "qec_core_fans_total", "", core.FanCalls.Load())
	dst = obs.AppendPromHeader(dst, "qec_core_fans_serial_total",
		"Fans that ran serial because the process-wide worker budget was exhausted.", "counter")
	dst = obs.AppendPromUint(dst, "qec_core_fans_serial_total", "", core.FanSerial.Load())
	dst = obs.AppendPromHeader(dst, "qec_core_fan_helpers_total",
		"Helper goroutines granted to fans from the process-wide budget.", "counter")
	dst = obs.AppendPromUint(dst, "qec_core_fan_helpers_total", "", core.FanHelpers.Load())
	return dst
}
