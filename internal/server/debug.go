// GET /debug/requests — the flight recorder's introspection surface.
//
//	GET /debug/requests                 → last-N completed requests + in-flight
//	GET /debug/requests?n=20            → at most 20 records
//	GET /debug/requests?endpoint=expand → only /expand records
//	GET /debug/requests?min_ms=50       → only requests that took ≥ 50ms
//	GET /debug/requests?outcome=timeout → only that terminal outcome
//	GET /debug/requests/{trace_id}      → one retained record by trace ID
//
// Records come from a fixed-capacity lock-free ring: under load, fast
// successful requests are sampled, but slow/error/aborted requests are always
// retained (a dedicated notable ring shields them from eviction by fast
// traffic). The response's sampling section reports how much was shed.
package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// debugDefaultN bounds how many records an unparameterized listing returns.
const debugDefaultN = 50

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	n := debugDefaultN
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	endpoint := q.Get("endpoint")
	var minTook time.Duration
	if raw := q.Get("min_ms"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			s.writeError(w, http.StatusBadRequest, "min_ms must be a non-negative number")
			return
		}
		minTook = time.Duration(v * float64(time.Millisecond))
	}
	var wantOutcome obs.Outcome
	filterOutcome := false
	if raw := q.Get("outcome"); raw != "" {
		o, ok := obs.ParseOutcome(raw)
		if !ok {
			s.writeError(w, http.StatusBadRequest, "unknown outcome "+strconv.Quote(raw))
			return
		}
		wantOutcome, filterOutcome = o, true
	}

	resp := DebugRequestsResponse{Records: []FlightRecordWire{}}
	// Snapshot everything retained, filter, then trim to n — a filter must
	// not shrink the candidate set before it runs.
	for _, rec := range s.flight.Snapshot(0) {
		if endpoint != "" && rec.Endpoint != endpoint {
			continue
		}
		if rec.Took < minTook {
			continue
		}
		if filterOutcome && rec.Outcome != wantOutcome {
			continue
		}
		resp.Records = append(resp.Records, newFlightRecordWire(rec))
		if len(resp.Records) >= n {
			break
		}
	}
	resp.Count = len(resp.Records)
	now := time.Now()
	for _, req := range s.active.Snapshot() {
		resp.Active = append(resp.Active, ActiveRequestWire{
			Trace:    obs.IDString(req.TraceID),
			Endpoint: req.Endpoint,
			Query:    req.Query,
			AgeMS:    float64(now.Sub(req.Start).Microseconds()) / 1000,
		})
	}
	recorded, dropped, shift := s.flight.Stats()
	resp.Sampling = SamplingStats{Recorded: recorded, Dropped: dropped, Shift: shift}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	id, ok := obs.ParseID(raw)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "trace id must be 16 hex digits")
		return
	}
	rec := s.flight.Find(id)
	if rec == nil {
		s.writeError(w, http.StatusNotFound, "no retained record for trace "+raw)
		return
	}
	wire := newFlightRecordWire(rec)
	s.writeJSON(w, http.StatusOK, &wire)
}

// newFlightRecordWire converts one retained record to its wire form.
func newFlightRecordWire(rec *obs.RequestRecord) FlightRecordWire {
	wire := FlightRecordWire{
		Trace:    obs.IDString(rec.TraceID),
		Endpoint: rec.Endpoint,
		Query:    rec.Query,
		Method:   rec.Method,
		Quality:  rec.Quality,
		Status:   rec.Status,
		Outcome:  rec.Outcome.String(),
		Start:    rec.Start.UTC(),
		TookMS:   float64(rec.Took.Microseconds()) / 1000,
		Notable:  rec.Notable,
		Tier:     rec.Tier,
	}
	if rec.Cache != obs.CacheNone {
		wire.Cache = rec.Cache.String()
	}
	for st := 0; st < obs.NumStages; st++ {
		if d := rec.Stages[st]; d > 0 {
			wire.Stages = append(wire.Stages, StageTiming{
				Stage: obs.Stage(st).String(),
				MS:    float64(d.Microseconds()) / 1000,
			})
		}
	}
	if rec.KMeansRestarts > 0 {
		wire.KMeans = &KMeansDebug{
			Restarts:   rec.KMeansRestarts,
			Iterations: rec.KMeansIterations,
			Abandoned:  rec.KMeansAbandoned,
		}
	}
	return wire
}
