package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	qec "repro"
)

// TestCodecDecodeMatchesStdlib drives both request decoders over a grid of
// bodies and checks the hand-rolled result (value and accept/reject
// decision) against a strict encoding/json decode of the same bytes.
func TestCodecDecodeMatchesStdlib(t *testing.T) {
	stdlibDecode := func(data []byte, v any) error {
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return err
		}
		if dec.More() {
			return fmt.Errorf("trailing data")
		}
		return nil
	}
	bodies := []string{
		`{}`,
		`{"query":"apple"}`,
		`{"query":"apple","top_k":5}`,
		`{"query":"apple","top_k":-3}`,
		`{"query":"caf\u00e9 \"quoted\" \\ \/ \n\t\r\b\f"}`,
		`{"query":"surrogate \ud83d\ude00 pair"}`,
		`{"query":null,"top_k":null}`,
		`  {  "query" : "spaced"  ,  "top_k" : 2 }  `,
		`{"query":"dup","query":"wins"}`,
		`{"query":"x","bogus":1}`,
		`{"query":"x"} trailing`,
		`{"query":`,
		`[1,2]`,
		`{"top_k":"nope"}`,
		`{"top_k":1.5}`,
		`{"top_k":1e2}`,
		`{"top_k":01}`,
		`{"top_k":-0}`,
		`{"top_k":0}`,
		`{"query":"bad\x19control"}`,
		"{\"query\":\"raw \xff invalid utf8\"}",
		"{\"query\":\"truncated rune \xc3\"}",
		``,
	}
	for _, body := range bodies {
		var ours, std SearchRequest
		ourErr := ours.decodeJSON([]byte(body))
		stdErr := stdlibDecode([]byte(body), &std)
		if (ourErr == nil) != (stdErr == nil) {
			t.Errorf("search %q: ours err=%v, stdlib err=%v", body, ourErr, stdErr)
			continue
		}
		if ourErr == nil && !reflect.DeepEqual(ours, std) {
			t.Errorf("search %q: ours %+v, stdlib %+v", body, ours, std)
		}
	}
	expandBodies := []string{
		`{"query":"apple","k":2,"top_k":30,"method":"pebc","unweighted":true,"parallel":false,"interleave":3,"quality":"serving"}`,
		`{"query":"apple","quality":"exact"}`,
		`{"unweighted":null,"parallel":true}`,
		`{"quality":7}`,
		`{"unweighted":"yes"}`,
		`{"query":"apple","debug":true}`,
		`{"query":"apple","debug":false}`,
		`{"debug":null}`,
		`{"debug":1}`,
		`{"debug":"on"}`,
	}
	for _, body := range expandBodies {
		var ours, std ExpandRequest
		ourErr := ours.decodeJSON([]byte(body))
		stdErr := stdlibDecode([]byte(body), &std)
		if (ourErr == nil) != (stdErr == nil) {
			t.Errorf("expand %q: ours err=%v, stdlib err=%v", body, ourErr, stdErr)
			continue
		}
		if ourErr == nil && !reflect.DeepEqual(ours, std) {
			t.Errorf("expand %q: ours %+v, stdlib %+v", body, ours, std)
		}
	}
}

// TestCodecEncodeMatchesStdlib pins byte identity between the hand-rolled
// response encoders and encoding/json (including HTML escaping, omitempty,
// nil-vs-empty slices and float formatting), so clients cannot observe the
// codec swap.
func TestCodecEncodeMatchesStdlib(t *testing.T) {
	responses := []any{
		&SearchResponse{},
		&SearchResponse{Count: 2, TookMS: 0.123, Hits: []SearchHit{
			{ID: 1, Title: "plain", Score: 1.5},
			{ID: 2, Score: math.SmallestNonzeroFloat64}, // omitempty title, 'e' float
		}},
		&SearchResponse{Count: 1, Hits: []SearchHit{
			{ID: 3, Title: `<b>&"escape\n` + "\u2028\u2029" + `"</b>`, Score: 1e21},
		}},
		&SearchResponse{Count: 1, Hits: []SearchHit{
			{ID: 4, Title: "invalid \xff utf8 \xc3 tail", Score: 1},
		}},
		&ExpandResponse{},
		&ExpandResponse{
			Original: []string{"apple"},
			Queries: []ExpandedQuery{
				{Terms: []string{"apple", "piè"}, Cluster: 0, Precision: 1, Recall: 0.5, F: 2.0 / 3.0},
				{Terms: nil, Cluster: 1},
			},
			Clusters: [][]int{{0, 1}, {}},
			Score:    0.75,
			TookMS:   12.5,
		},
		&ExpandResponse{
			Original: []string{"apple"},
			Score:    0.5,
			Debug: &ExpandDebug{
				TraceID: "00000000deadbeef",
				Cache:   "computed",
				Stages: []StageTiming{
					{Stage: "parse", MS: 0.001},
					{Stage: "cluster", MS: 1.25},
				},
				KMeans: KMeansDebug{Restarts: 5, Iterations: 17, Abandoned: 1},
			},
		},
		&ExpandResponse{
			TookMS: 3,
			Debug:  &ExpandDebug{TraceID: "0000000000000001", Cache: "hit", Stages: []StageTiming{}},
		},
		&ExpandResponse{
			Debug: &ExpandDebug{TraceID: "0000000000000002", Cache: "coalesced"},
		},
	}
	for _, resp := range responses {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.(jsonAppendable).appendJSON(nil)
		// The stdlib Encoder (which the wire layer replaced) appends a
		// newline after the value; the codec keeps that for byte identity.
		if string(got) != string(want)+"\n" {
			t.Errorf("encode %T:\n ours:   %q\n stdlib: %q", resp, got, string(want)+"\n")
		}
	}
}

// TestExpandQualityWire drives the quality field end to end: valid modes
// round-trip, unknown ones 400, and the server-level default applies only
// when the request leaves the field empty.
func TestExpandQualityWire(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	for _, quality := range []string{"", "exact", "serving"} {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/expand",
			ExpandRequest{Query: "apple", K: 2, Quality: quality})
		if resp.StatusCode != 200 {
			t.Fatalf("quality %q: status %d, body %s", quality, resp.StatusCode, data)
		}
		er := decode[ExpandResponse](t, data)
		if er.Score <= 0 {
			t.Fatalf("quality %q: score %v", quality, er.Score)
		}
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/expand",
		ExpandRequest{Query: "apple", Quality: "warp"})
	if resp.StatusCode != 400 {
		t.Fatalf("unknown quality: status %d, body %s", resp.StatusCode, data)
	}

	// A serving-default server still honours explicit per-request "exact".
	def := httptest.NewServer(New(ambiguousEngine(t),
		Options{DefaultQuality: qec.QualityServing}).Handler())
	defer def.Close()
	for _, quality := range []string{"", "exact"} {
		resp, data := postJSON(t, def.Client(), def.URL+"/expand",
			ExpandRequest{Query: "apple", K: 2, Quality: quality})
		if resp.StatusCode != 200 {
			t.Fatalf("default-serving, quality %q: status %d, body %s", quality, resp.StatusCode, data)
		}
	}
}

// TestExpandRequestOptionsQuality pins the wire→ExpandOptions mapping of the
// quality field, including the server-default fallback.
func TestExpandRequestOptionsQuality(t *testing.T) {
	cases := []struct {
		wire string
		def  qec.Quality
		want qec.Quality
		ok   bool
	}{
		{"", qec.QualityExact, qec.QualityExact, true},
		{"", qec.QualityServing, qec.QualityServing, true},
		{"exact", qec.QualityServing, qec.QualityExact, true},
		{"Serving", qec.QualityExact, qec.QualityServing, true},
		{"bogus", qec.QualityExact, qec.QualityExact, false},
	}
	for _, tc := range cases {
		opts, err := (&ExpandRequest{Query: "q", Quality: tc.wire}).Options(tc.def)
		if (err == nil) != tc.ok {
			t.Fatalf("quality %q: err = %v, want ok=%v", tc.wire, err, tc.ok)
		}
		if err == nil && opts.Quality != tc.want {
			t.Fatalf("quality %q (default %v): got %v, want %v", tc.wire, tc.def, opts.Quality, tc.want)
		}
	}
}
