package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	qec "repro"
	"repro/internal/obs"
)

func getJSON[T any](t *testing.T, ts *httptest.Server, path string) T {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, data)
	}
	return decode[T](t, data)
}

func TestDebugRequestsListAndFetch(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/search", SearchRequest{Query: "apple fruit"})
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	expandTrace := resp.Header.Get("X-Trace-Id")
	if len(expandTrace) != 16 {
		t.Fatalf("X-Trace-Id = %q; want 16 hex digits", expandTrace)
	}

	dr := getJSON[DebugRequestsResponse](t, ts, "/debug/requests")
	if dr.Count != 2 || len(dr.Records) != 2 {
		t.Fatalf("count = %d, records = %d; want 2", dr.Count, len(dr.Records))
	}
	// Newest first: the expand came last.
	if dr.Records[0].Endpoint != "expand" || dr.Records[1].Endpoint != "search" {
		t.Fatalf("order = %s, %s; want expand, search", dr.Records[0].Endpoint, dr.Records[1].Endpoint)
	}
	if dr.Records[0].Trace != expandTrace {
		t.Fatalf("record trace = %q; want %q", dr.Records[0].Trace, expandTrace)
	}
	if dr.Records[0].Outcome != "ok" || dr.Records[0].Status != http.StatusOK {
		t.Fatalf("expand record = %+v; want ok/200", dr.Records[0])
	}
	if dr.Records[0].Method == "" || dr.Records[0].Quality == "" {
		t.Fatalf("expand record should carry method/quality: %+v", dr.Records[0])
	}
	if len(dr.Records[0].Stages) == 0 {
		t.Fatalf("uncached expand record should carry stage spans: %+v", dr.Records[0])
	}
	if dr.Sampling.Recorded != 2 || dr.Sampling.Shift != 0 {
		t.Fatalf("sampling = %+v; want recorded=2 shift=0", dr.Sampling)
	}

	// Endpoint filter.
	only := getJSON[DebugRequestsResponse](t, ts, "/debug/requests?endpoint=search")
	if only.Count != 1 || only.Records[0].Endpoint != "search" {
		t.Fatalf("endpoint filter: %+v", only.Records)
	}

	// Single-record fetch by trace ID.
	rec := getJSON[FlightRecordWire](t, ts, "/debug/requests/"+expandTrace)
	if rec.Trace != expandTrace || rec.Endpoint != "expand" {
		t.Fatalf("fetched record = %+v", rec)
	}

	// Bad and missing IDs.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/debug/requests/zzz", http.StatusBadRequest},
		{"/debug/requests/00000000000000ff", http.StatusNotFound},
		{"/debug/requests?n=0", http.StatusBadRequest},
		{"/debug/requests?outcome=bogus", http.StatusBadRequest},
		{"/debug/requests?min_ms=-1", http.StatusBadRequest},
	} {
		resp, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status %d; want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// slowExpandEngine delays expansions so tests can manufacture slow requests.
type slowExpandEngine struct {
	*qec.Engine
	delay time.Duration
}

func (g *slowExpandEngine) ExpandTraced(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, error) {
	time.Sleep(g.delay)
	return g.Engine.ExpandTraced(ctx, raw, opts, tr)
}

// TestDebugSlowRequestSurvivesFastTraffic is the acceptance check for the
// notable ring: after 2x main-ring-capacity fast requests, the most recent
// slow request must still be retrievable.
func TestDebugSlowRequestSurvivesFastTraffic(t *testing.T) {
	const capacity = 8
	eng := &slowExpandEngine{Engine: ambiguousEngine(t), delay: 30 * time.Millisecond}
	ts := httptest.NewServer(New(eng, Options{
		FlightCapacity: capacity,
		SlowQuery:      20 * time.Millisecond,
	}).Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	slowTrace := resp.Header.Get("X-Trace-Id")

	for i := 0; i < 2*capacity; i++ {
		postJSON(t, ts.Client(), ts.URL+"/search", SearchRequest{Query: "apple fruit"})
	}

	rec := getJSON[FlightRecordWire](t, ts, "/debug/requests/"+slowTrace)
	if rec.Trace != slowTrace || !rec.Notable {
		t.Fatalf("slow record = %+v; want notable with trace %s", rec, slowTrace)
	}
	dr := getJSON[DebugRequestsResponse](t, ts, "/debug/requests?min_ms=20")
	found := false
	for _, r := range dr.Records {
		if r.Trace == slowTrace {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow request %s missing from min_ms listing: %+v", slowTrace, dr.Records)
	}
}

func TestDebugRequestsErrorRetained(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "zzzznosuchterm", K: 2})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d; want 404", resp.StatusCode)
	}
	dr := getJSON[DebugRequestsResponse](t, ts, "/debug/requests?outcome=error")
	if dr.Count != 1 || !dr.Records[0].Notable || dr.Records[0].Status != http.StatusNotFound {
		t.Fatalf("error record = %+v; want one notable 404", dr.Records)
	}
}

func TestInboundTraceID(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()

	body, _ := json.Marshal(SearchRequest{Query: "apple"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", "00c0ffee00c0ffee")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "00c0ffee00c0ffee" {
		t.Fatalf("echoed trace = %q; want the inbound one", got)
	}
	// The flight record must be filed under the inbound ID.
	rec := getJSON[FlightRecordWire](t, ts, "/debug/requests/00c0ffee00c0ffee")
	if rec.Query != "apple" {
		t.Fatalf("record = %+v", rec)
	}

	// Invalid inbound IDs (wrong length, non-hex, zero) get replaced.
	for _, bad := range []string{"short", "zzzzzzzzzzzzzzzz", "0000000000000000", strings.Repeat("a", 17)} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
		req.Header.Set("X-Trace-Id", bad)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Trace-Id")
		if got == bad || len(got) != 16 {
			t.Fatalf("inbound %q: echoed %q; want a fresh generated ID", bad, got)
		}
	}
}

func TestExpandExplainWire(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()

	// Baseline: no explain section without the flag.
	_, plain := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	if bytes.Contains(plain, []byte(`"explain"`)) {
		t.Fatalf("unexplained response carries explain: %s", plain)
	}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/expand",
		ExpandRequest{Query: "apple", K: 2, Explain: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	er := decode[ExpandResponse](t, data)
	if er.Explain == nil {
		t.Fatalf("no explain section: %s", data)
	}
	ex := er.Explain
	if len(ex.Query) == 0 || ex.Query[0] != "apple" {
		t.Fatalf("explain query = %v", ex.Query)
	}
	if ex.Method == "" || ex.Quality == "" || ex.Results == 0 {
		t.Fatalf("explain header incomplete: %+v", ex)
	}
	if ex.KMeans == nil || len(ex.KMeans.Restarts) == 0 {
		t.Fatalf("explain kmeans leg missing: %+v", ex.KMeans)
	}
	if len(ex.Clusters) != len(er.Queries) {
		t.Fatalf("explain clusters = %d, queries = %d", len(ex.Clusters), len(er.Queries))
	}
	for i, cx := range ex.Clusters {
		if len(cx.Pool) == 0 {
			t.Fatalf("cluster %d: empty pool", i)
		}
	}

	// The expansion payload itself must be bit-identical to the unexplained
	// response (minus took_ms, which is wall time, and the explain subtree).
	per := decode[ExpandResponse](t, plain)
	er.TookMS, per.TookMS = 0, 0
	er.Explain = nil
	a, _ := json.Marshal(er)
	b, _ := json.Marshal(per)
	if !bytes.Equal(a, b) {
		t.Fatalf("explained expansion differs from plain:\n%s\n%s", a, b)
	}
}

func TestStatsRatesNonZero(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/search", SearchRequest{Query: "apple"})
	postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	// The rate window refuses sub-second baselines (a rate over 50ms of
	// history is noise); wait out the guard.
	time.Sleep(1100 * time.Millisecond)
	st := getJSON[StatsResponse](t, ts, "/stats")
	if st.Rates.QPS1M <= 0 {
		t.Fatalf("qps_1m = %v; want > 0 after traffic", st.Rates.QPS1M)
	}
	if st.Rates.QPS5M <= 0 {
		t.Fatalf("qps_5m = %v; want > 0 after traffic", st.Rates.QPS5M)
	}
	if st.Rates.ErrorRate1M != 0 {
		t.Fatalf("error_rate_1m = %v; want 0 with no errors", st.Rates.ErrorRate1M)
	}
}

func TestMetricsBuildInfoAndRates(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"qec_build_info{version=", `goversion="go`, "gomaxprocs=",
		"qec_start_time_seconds", "qec_qps_1m", "qec_qps_5m",
		"qec_error_ratio_1m", "qec_flight_recorded_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	if err := obs.ValidatePromText(text); err != nil {
		t.Fatalf("metrics page malformed: %v", err)
	}
}

func TestDumpActive(t *testing.T) {
	buf := newSyncBuffer()
	gate := &gateEngine{
		Engine:  ambiguousEngine(t),
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	srv := New(gate, Options{AccessLog: buf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	donec := make(chan struct{})
	go func() {
		defer close(donec)
		postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	}()
	<-gate.entered
	n := srv.DumpActive()
	close(gate.release)
	<-donec
	if n != 1 {
		t.Fatalf("DumpActive = %d; want 1 in-flight request", n)
	}
	line := buf.String()
	if !strings.Contains(line, `"dump":"active"`) || !strings.Contains(line, `"query":"apple"`) {
		t.Fatalf("dump line = %q", line)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &parsed); err != nil {
		t.Fatalf("dump line is not JSON: %v: %q", err, line)
	}
	// After completion the registry is empty again.
	if n := srv.DumpActive(); n != 0 {
		t.Fatalf("DumpActive after completion = %d; want 0", n)
	}
}
