package server

import (
	"fmt"
	"time"

	qec "repro"
	"repro/internal/obs"
)

// SearchRequest is the body of POST /search.
type SearchRequest struct {
	// Query is the raw keyword query (required).
	Query string `json:"query"`
	// TopK limits the number of returned hits; 0 returns all.
	TopK int `json:"top_k,omitempty"`
}

// SearchHit is one ranked result.
type SearchHit struct {
	ID    int     `json:"id"`
	Title string  `json:"title,omitempty"`
	Score float64 `json:"score"`
}

// SearchResponse is the body of a successful POST /search.
type SearchResponse struct {
	Count  int         `json:"count"`
	Hits   []SearchHit `json:"hits"`
	TookMS float64     `json:"took_ms"`
}

// ExpandRequest is the body of POST /expand. It wire-maps every field of
// qec.ExpandOptions.
type ExpandRequest struct {
	// Query is the raw keyword query (required).
	Query string `json:"query"`
	// K is the maximum number of clusters / expanded queries (0 = 3).
	K int `json:"k,omitempty"`
	// TopK considers only the top-ranked results (0 = all).
	TopK int `json:"top_k,omitempty"`
	// Method selects the expansion backend: "iskr" (default), "pebc",
	// "deltaf", "or", "vector", "lexical" or "orthogonal" (aliases accepted
	// — see qec.Methods). Unknown names are rejected with a 400 enumerating
	// the valid methods.
	Method string `json:"method,omitempty"`
	// Unweighted disables rank-weighted precision/recall.
	Unweighted bool `json:"unweighted,omitempty"`
	// Parallel expands the clusters concurrently.
	Parallel bool `json:"parallel,omitempty"`
	// Interleave alternates expansion and re-clustering for up to this many
	// rounds (0 = off).
	Interleave int `json:"interleave,omitempty"`
	// Quality is "exact" (default) or "serving": the clustering
	// speed/accuracy trade. Empty inherits the server's -quality default.
	Quality string `json:"quality,omitempty"`
	// Debug asks for a per-stage timing breakdown in the response ("debug"
	// section): trace ID, cache disposition, stage spans and k-means restart
	// counts. Costs nothing when false.
	Debug bool `json:"debug,omitempty"`
	// Explain asks for the full decision trail in the response ("explain"
	// section): pruning counters, k-means restart fates, per-cluster
	// candidate pools with benefit/cost/value, picked keywords and what every
	// rejected alternative scored. Explain requests bypass the expansion
	// cache (the pipeline is deterministic, so the expansion itself is
	// bit-identical either way). Costs nothing when false.
	Explain bool `json:"explain,omitempty"`
}

// Options converts the wire request into qec.ExpandOptions. def is the
// server's default clustering quality, applied when the request leaves the
// field empty.
func (r *ExpandRequest) Options(def qec.Quality) (qec.ExpandOptions, error) {
	method, err := qec.ParseMethod(r.Method)
	if err != nil {
		return qec.ExpandOptions{}, err
	}
	quality := def
	if r.Quality != "" {
		var ok bool
		if quality, ok = qec.ParseQuality(r.Quality); !ok {
			return qec.ExpandOptions{}, fmt.Errorf("unknown quality %q", r.Quality)
		}
	}
	return qec.ExpandOptions{
		K:          r.K,
		TopK:       r.TopK,
		Method:     method,
		Unweighted: r.Unweighted,
		Parallel:   r.Parallel,
		Interleave: r.Interleave,
		Quality:    quality,
	}, nil
}

// ExpandedQuery is one expanded query of an ExpandResponse.
type ExpandedQuery struct {
	Terms     []string `json:"terms"`
	Cluster   int      `json:"cluster"`
	Precision float64  `json:"precision"`
	Recall    float64  `json:"recall"`
	F         float64  `json:"f"`
}

// ExpandResponse is the body of a successful POST /expand.
type ExpandResponse struct {
	Original []string        `json:"original"`
	Queries  []ExpandedQuery `json:"queries"`
	// Clusters holds the document IDs of each cluster, aligned with Queries.
	Clusters [][]int `json:"clusters"`
	// Score is the harmonic mean of the queries' F-measures (Eq. 1).
	Score  float64 `json:"score"`
	TookMS float64 `json:"took_ms"`
	// Degraded is the degradation-ladder tier the request was served at
	// (1 = forced serving quality, 2 = + restart budget, 3 = cache only);
	// omitted at full quality or when degradation is disabled. The same
	// value rides in the X-Qec-Tier response header.
	Degraded int `json:"degraded,omitempty"`
	// Debug carries the per-stage timing breakdown when the request set
	// "debug": true; omitted otherwise.
	Debug *ExpandDebug `json:"debug,omitempty"`
	// Explain carries the full decision trail when the request set
	// "explain": true; omitted otherwise.
	Explain *qec.Explain `json:"explain,omitempty"`
}

// StageTiming is one pipeline stage's wall time within a traced expansion.
type StageTiming struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
}

// KMeansDebug reports the clustering driver's restart bookkeeping for one
// traced expansion.
type KMeansDebug struct {
	Restarts   int `json:"restarts"`
	Iterations int `json:"iterations"`
	Abandoned  int `json:"abandoned"`
}

// ExpandDebug is the "debug" section of an ExpandResponse: the same trace the
// server writes to its slow-query log, inline for the caller. Cache hits and
// coalesced waits carry no stage timings — the pipeline did not run for them.
type ExpandDebug struct {
	TraceID string        `json:"trace_id"`
	Cache   string        `json:"cache"`
	Stages  []StageTiming `json:"stages"`
	KMeans  KMeansDebug   `json:"kmeans"`
}

// newExpandDebug converts a completed request trace to its wire form.
func newExpandDebug(tr *obs.Trace) *ExpandDebug {
	d := &ExpandDebug{
		TraceID: obs.IDString(tr.ID),
		Cache:   tr.Cache.String(),
		Stages:  make([]StageTiming, 0, obs.NumStages),
		KMeans: KMeansDebug{
			Restarts:   tr.KMeansRestarts,
			Iterations: tr.KMeansIterations,
			Abandoned:  tr.KMeansAbandoned,
		},
	}
	for st := 0; st < obs.NumStages; st++ {
		if dur := tr.Durations[st]; dur > 0 {
			d.Stages = append(d.Stages, StageTiming{
				Stage: obs.Stage(st).String(),
				MS:    float64(dur.Microseconds()) / 1000,
			})
		}
	}
	return d
}

// newExpandResponse converts a qec.Expansion to its wire form.
func newExpandResponse(exp *qec.Expansion, tookMS float64) *ExpandResponse {
	resp := &ExpandResponse{
		Original: exp.Original,
		Queries:  make([]ExpandedQuery, 0, len(exp.Queries)),
		Clusters: make([][]int, 0, len(exp.Clusters)),
		Score:    exp.Score,
		TookMS:   tookMS,
	}
	for _, q := range exp.Queries {
		resp.Queries = append(resp.Queries, ExpandedQuery{
			Terms:     q.Terms,
			Cluster:   q.Cluster,
			Precision: q.Precision,
			Recall:    q.Recall,
			F:         q.F,
		})
	}
	for _, cl := range exp.Clusters {
		ids := make([]int, len(cl))
		for i, id := range cl {
			ids[i] = int(id)
		}
		resp.Clusters = append(resp.Clusters, ids)
	}
	return resp
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Docs   int    `json:"docs"`
}

// RequestStats are the server's request counters.
type RequestStats struct {
	Total    int64 `json:"total"`
	Search   int64 `json:"search"`
	Expand   int64 `json:"expand"`
	Errors   int64 `json:"errors"`
	Timeouts int64 `json:"timeouts"`
	// Rejected counts requests turned away because the expansion worker
	// pool stayed saturated for the whole request deadline.
	Rejected int64 `json:"rejected"`
	// Canceled counts requests whose client disconnected before a
	// response; these are deliberately kept out of Timeouts/Rejected.
	Canceled int64 `json:"canceled"`
}

// CacheStats is the wire form of qec.CacheStats.
type CacheStats struct {
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	Evictions    int64   `json:"evictions"`
	Entries      int     `json:"entries"`
	Capacity     int     `json:"capacity"`
	HitRate      float64 `json:"hit_rate"`
	Computations int64   `json:"computations"`
	Coalesced    int64   `json:"coalesced"`
}

// HistogramSummary condenses a latency histogram to the quantiles operators
// watch. Quantiles are estimated by linear interpolation within the log-scale
// buckets, so they are approximations with bucket-width resolution.
type HistogramSummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func summarize(s obs.HistSnapshot) HistogramSummary {
	return HistogramSummary{
		Count:  s.Count,
		MeanMS: float64(s.Mean().Microseconds()) / 1000,
		P50MS:  float64(s.Quantile(0.50).Microseconds()) / 1000,
		P90MS:  float64(s.Quantile(0.90).Microseconds()) / 1000,
		P99MS:  float64(s.Quantile(0.99).Microseconds()) / 1000,
	}
}

// LatencyStats reports user-visible request latency per endpoint, expand
// latency split by clustering quality tier, and uncached pipeline-run
// latency split by expansion method (cache hits and coalesced waits are
// excluded from the method split — they never ran a backend).
type LatencyStats struct {
	Search  HistogramSummary            `json:"search"`
	Expand  HistogramSummary            `json:"expand"`
	Quality map[string]HistogramSummary `json:"quality"`
	Method  map[string]HistogramSummary `json:"method"`
}

// KMeansStats totals the clustering driver's restart bookkeeping across all
// expansion runs.
type KMeansStats struct {
	Restarts   int64 `json:"restarts"`
	Iterations int64 `json:"iterations"`
	Abandoned  int64 `json:"abandoned"`
}

// WorkerStats reports the expansion worker pool's instantaneous occupancy.
type WorkerStats struct {
	Capacity int   `json:"capacity"`
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
}

// RateStats reports windowed rates derived from the server's periodic
// counter snapshots — the derivative signals a point-in-time counter scrape
// cannot give. Windows shorter than the server's uptime fall back to "since
// start".
type RateStats struct {
	// QPS1M / QPS5M are requests per second over the trailing 1/5 minutes.
	QPS1M float64 `json:"qps_1m"`
	QPS5M float64 `json:"qps_5m"`
	// ErrorRate1M / ErrorRate5M are non-2xx responses per request over the
	// same windows.
	ErrorRate1M float64 `json:"error_rate_1m"`
	ErrorRate5M float64 `json:"error_rate_5m"`
	// AbandonRate1M is k-means restarts abandoned per restart launched over
	// the last minute (serving-quality early abandonment).
	AbandonRate1M float64 `json:"abandon_rate_1m"`
	// QueueMean1M / QueueMax1M summarize the worker-queue depth across the
	// last minute's samples.
	QueueMean1M float64 `json:"queue_mean_1m"`
	QueueMax1M  int64   `json:"queue_max_1m"`
}

// DegradeStats reports the degradation controller's state: the current
// ladder tier, how often it moved, how many requests were shed, and request
// latency split by the tier requests were served at.
type DegradeStats struct {
	// Tier is the current rung ("T0".."T4"); MaxTier the configured clamp.
	Tier    string `json:"tier"`
	MaxTier string `json:"max_tier"`
	// Pressure is the last computed load scalar the tier derives from.
	Pressure float64 `json:"pressure"`
	// Steps counts controller sampling steps; Transitions tier changes.
	Steps       int64 `json:"steps"`
	Transitions int64 `json:"transitions"`
	// Shed counts requests rejected at tier T4.
	Shed int64 `json:"shed"`
	// Latency summarizes expand latency per serving tier (tiers with no
	// requests yet are omitted).
	Latency map[string]HistogramSummary `json:"latency"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Docs          int          `json:"docs"`
	Requests      RequestStats `json:"requests"`
	Cache         CacheStats   `json:"cache"`
	Workers       WorkerStats  `json:"workers"`
	Latency       LatencyStats `json:"latency"`
	KMeans        KMeansStats  `json:"kmeans"`
	Rates         RateStats    `json:"rates"`
	// Degrade reports the degradation controller; omitted when disabled.
	Degrade *DegradeStats `json:"degrade,omitempty"`
}

// FlightRecordWire is one retained request record of GET /debug/requests.
type FlightRecordWire struct {
	Trace    string    `json:"trace"`
	Endpoint string    `json:"endpoint"`
	Query    string    `json:"query"`
	Method   string    `json:"method,omitempty"`
	Quality  string    `json:"quality,omitempty"`
	Status   int       `json:"status"`
	Outcome  string    `json:"outcome"`
	Cache    string    `json:"cache,omitempty"`
	Start    time.Time `json:"start"`
	TookMS   float64   `json:"took_ms"`
	// Notable marks slow/error/aborted records, which are exempt from
	// sampling and fast-traffic eviction.
	Notable bool `json:"notable,omitempty"`
	// Tier is the degradation-ladder rung the request was served or shed at
	// (omitted at T0 and when degradation is disabled).
	Tier int `json:"tier,omitempty"`
	// Stages is the per-stage pipeline breakdown (absent for /search and
	// cache hits); KMeans the clustering bookkeeping when the pipeline ran.
	Stages []StageTiming `json:"stages,omitempty"`
	KMeans *KMeansDebug  `json:"kmeans,omitempty"`
}

// ActiveRequestWire is one in-flight request of GET /debug/requests.
type ActiveRequestWire struct {
	Trace    string  `json:"trace"`
	Endpoint string  `json:"endpoint"`
	Query    string  `json:"query"`
	AgeMS    float64 `json:"age_ms"`
}

// SamplingStats reports the flight recorder's admission bookkeeping.
type SamplingStats struct {
	// Recorded counts records admitted to the main ring; Dropped counts
	// plain records shed by adaptive sampling; Shift is the current
	// decimation (1 in 2^shift plain records admitted).
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Shift    int    `json:"shift"`
}

// DebugRequestsResponse is the body of GET /debug/requests.
type DebugRequestsResponse struct {
	// Count is len(Records) after filtering; Records are newest first.
	Count    int                 `json:"count"`
	Records  []FlightRecordWire  `json:"records"`
	Active   []ActiveRequestWire `json:"active,omitempty"`
	Sampling SamplingStats       `json:"sampling"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
