package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	qec "repro"
	"repro/internal/obs"
)

// ctxBlockEngine blocks every expansion until its context is cancelled —
// the shape of a wedged computation that only cooperative cancellation can
// reclaim.
type ctxBlockEngine struct {
	*qec.Engine
	entered chan struct{}
}

func (g *ctxBlockEngine) ExpandTraced(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, error) {
	g.entered <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancelMidExpandFreesWorkerSlot: when a client walks away mid-expand,
// the cancellation threads into the pipeline, the computation stops, and the
// worker slot frees immediately — not at the request deadline. With a pool
// of one, the next request can only start if the first slot was reclaimed.
func TestCancelMidExpandFreesWorkerSlot(t *testing.T) {
	gate := &ctxBlockEngine{Engine: ambiguousEngine(t), entered: make(chan struct{}, 2)}
	// The 10s deadline is the point: the slot must free on cancel, long
	// before the deadline would have reclaimed it.
	srv := New(gate, Options{MaxConcurrent: 1, RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	send := func(ctx context.Context) chan error {
		errc := make(chan error, 1)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/expand",
			strings.NewReader(`{"query": "apple"}`))
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			_, err := ts.Client().Do(req)
			errc <- err
		}()
		return errc
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := send(ctxA)
	<-gate.entered // A holds the only worker slot
	cancelA()      // the client walks away
	if err := <-errA; err == nil {
		t.Fatal("request A should fail once its context is cancelled")
	}

	// B can only enter the engine if A's cancellation freed the slot.
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	errB := send(ctxB)
	select {
	case <-gate.entered:
		// Slot reclaimed well before A's 10s deadline.
	case <-time.After(5 * time.Second):
		t.Fatal("worker slot not freed by cancellation: request B never started")
	}
	cancelB()
	<-errB

	if n := srv.timeouts.Load(); n != 0 {
		t.Fatalf("timeouts = %d; cancellations must not count as timeouts", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.canceled.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled = %d, want 2", srv.canceled.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainServesInFlightAndRejectsNew: shutdown lets executing requests run
// to completion, answers anything arriving afterwards with 503 + Retry-After,
// and has flushed the in-flight request's access-log line by the time Serve
// returns.
func TestDrainServesInFlightAndRejectsNew(t *testing.T) {
	gate := &gateEngine{
		Engine:  ambiguousEngine(t),
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	logBuf := newSyncBuffer()
	srv := New(gate, Options{
		MaxConcurrent:   2,
		ShutdownTimeout: 5 * time.Second,
		AccessLog:       logBuf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// Request A enters the engine and blocks on the gate.
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, http.DefaultClient,
			"http://"+ln.Addr().String()+"/expand", ExpandRequest{Query: "apple"})
		aDone <- resp.StatusCode
	}()
	<-gate.entered

	// Shutdown begins while A is still executing.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}

	// A request arriving during the drain (e.g. on a keep-alive connection
	// Shutdown has not torn down yet) is refused with a retryable 503, not
	// queued behind a closing server.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/expand",
		strings.NewReader(`{"query": "apple"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
		t.Fatalf("draining Retry-After = %q, want an integer in [1,30]", rec.Header().Get("Retry-After"))
	}

	// The in-flight request drains to a normal 200.
	close(gate.release)
	if code := <-aDone; code != http.StatusOK {
		t.Fatalf("in-flight request status = %d; want 200 (drained, not killed)", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v; want nil after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// The drained request's access-log line is on disk before Serve returns.
	logged := logBuf.String()
	if !strings.Contains(logged, `"endpoint":"expand"`) || !strings.Contains(logged, `"query":"apple"`) {
		t.Fatalf("access log missing the drained request: %q", logged)
	}
	if !strings.Contains(logged, `"status":200`) {
		t.Fatalf("access log entry is not a 200: %q", logged)
	}
}

// TestRetryAfterFromDrainRate pins the Retry-After arithmetic: queue ahead
// of you divided by the 1m completion rate, clamped to [1,30], with the
// conservative fallbacks when no completions have been observed.
func TestRetryAfterFromDrainRate(t *testing.T) {
	srv := New(ambiguousEngine(t), Options{MaxConcurrent: 2})

	// No history, empty queue: come back soon.
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle Retry-After = %d, want 1", got)
	}

	// No history but a standing queue: maximum back-off.
	srv.queued.Inc()
	srv.queued.Inc()
	if got := srv.retryAfterSeconds(); got != 30 {
		t.Fatalf("no-drain-rate Retry-After = %d, want 30", got)
	}
	srv.queued.Dec()
	srv.queued.Dec()

	// A measured drain rate: 2 queued ÷ (60 done / 60s) → ceil(3/1) = 3s.
	// The sample a minute ago saw zero completions; the live counter says 60.
	srv.rates.Tick(srv.rateSample(time.Now().Add(-time.Minute)))
	srv.expandsDone.Store(60)
	srv.queued.Inc()
	srv.queued.Inc()
	defer srv.queued.Dec()
	defer srv.queued.Dec()
	got := srv.retryAfterSeconds()
	if got < 2 || got > 4 {
		t.Fatalf("measured Retry-After = %d, want ~3", got)
	}
}
