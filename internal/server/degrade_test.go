package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	qec "repro"
	"repro/internal/degrade"
	"repro/internal/faultinject"
)

const ladderGoldenPath = "testdata/degrade_ladder.json"

// normalizeExpandBody strips the one per-run field (took_ms) and re-marshals
// with sorted keys, so two responses can be compared byte for byte.
func normalizeExpandBody(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("normalize %q: %v", data, err)
	}
	delete(m, "took_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestDegradationLadder is the soak: drive the controller up the full ladder
// with a synthetic pressure ramp, serve requests at every rung, and prove
//
//   - the climb is monotone (the tier never dips while pressure ramps up),
//   - no request is shed (503) before the controller reaches T4,
//   - every response at a given tier is bit-identical to that tier's golden
//     (the per-(quality,budget) determinism contract, pinned at the wire),
//   - recovery descends exactly one rung per MinDwell calm steps back to T0,
//     after which responses are byte-identical to the undegraded golden.
//
// The engine is wrapped in the fault injector (periodic latency spikes), so
// the ladder is exercised with the chaos harness in the loop — the spikes
// shift took_ms only, which normalization strips.
func TestDegradationLadder(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(64))
	inj := faultinject.Wrap(eng, faultinject.Plan{LatencyEvery: 5, Latency: 2 * time.Millisecond})
	srv := New(inj, Options{MaxConcurrent: 4, RequestTimeout: 10 * time.Second, Degrade: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// press feeds the controller one synthetic sample of the given pressure
	// (queued = p × capacity, everything else calm) — the no-wall-clock
	// contract means the ladder moves on samples, not on time, so the test
	// replays a ramp deterministically.
	press := func(p float64) degrade.Tier {
		return srv.ctrl.Step(degrade.Signals{Queued: int64(p * 8), Capacity: 8})
	}
	expand := func(query string) (*http.Response, []byte) {
		t.Helper()
		return postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: query, K: 2})
	}

	// The synthetic ramp: pressure rises through every enter threshold. The
	// tier sequence must be monotone non-decreasing — overload never makes
	// the ladder dip.
	ramp := []struct {
		p    float64
		want degrade.Tier
	}{
		{0.5, degrade.Tier0},  // below every enter threshold
		{1.0, degrade.Tier1},  // enterAt[1]
		{0.75, degrade.Tier1}, // inside the T1 hysteresis band: no flap
		{2.0, degrade.Tier2},
		{3.0, degrade.Tier3},
		{5.0, degrade.Tier4},
	}

	goldens := map[string]string{}
	record := func(phase string, data []byte) {
		t.Helper()
		norm := normalizeExpandBody(t, data)
		if prev, ok := goldens[phase]; ok && prev != norm {
			t.Fatalf("phase %s: responses within one tier differ:\n%s\n%s", phase, prev, norm)
		}
		goldens[phase] = norm
	}

	// serveAt runs the same request three times and insists every response
	// is bit-identical — the within-tier determinism leg.
	serveAt := func(phase, query string, wantTier degrade.Tier) {
		t.Helper()
		for i := 0; i < 3; i++ {
			resp, data := expand(query)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("phase %s: status = %d, body %s", phase, resp.StatusCode, data)
			}
			if got := resp.Header.Get("X-Qec-Tier"); got != wantTier.String() {
				t.Fatalf("phase %s: X-Qec-Tier = %q, want %q", phase, got, wantTier)
			}
			er := decode[ExpandResponse](t, data)
			if er.Degraded != int(wantTier) {
				t.Fatalf("phase %s: degraded = %d, want %d", phase, er.Degraded, wantTier)
			}
			record(phase, data)
		}
	}

	// --- Climb ---
	prev := degrade.Tier0
	for _, step := range ramp {
		got := press(step.p)
		if got != step.want {
			t.Fatalf("pressure %.2f: tier = %v, want %v", step.p, got, step.want)
		}
		if got < prev {
			t.Fatalf("climb not monotone: %v after %v", got, prev)
		}
		prev = got

		switch got {
		case degrade.Tier0:
			serveAt("tier0", "apple", degrade.Tier0)
		case degrade.Tier1:
			serveAt("tier1", "apple", degrade.Tier1)
		case degrade.Tier2:
			serveAt("tier2", "apple", degrade.Tier2)
		case degrade.Tier3:
			// Hit: "apple" was computed (and cached) back at T0 under these
			// exact options — T3 serves that full-fidelity answer.
			serveAt("tier3_hit", "apple", degrade.Tier3)
			// Miss: a query never seen before falls back to the fast
			// single-cluster path through the worker pool.
			serveAt("tier3_miss", "apple stock", degrade.Tier3)
		}
		if got < degrade.Tier4 && srv.sheds.Load() != 0 {
			t.Fatalf("shed a request at %v — 503s are reserved for T4", got)
		}
	}

	// --- T4: shedding ---
	if srv.sheds.Load() != 0 {
		t.Fatalf("sheds = %d before any T4 request", srv.sheds.Load())
	}
	resp, data := expand("apple")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("T4 status = %d, body %s; want 503", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Qec-Tier"); got != "T4" {
		t.Fatalf("T4 X-Qec-Tier = %q", got)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	if srv.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", srv.sheds.Load())
	}

	// The shed is notable: it must be in the flight recorder under
	// outcome=rejected, stamped with its tier.
	dresp, err := client.Get(ts.URL + "/debug/requests?outcome=rejected")
	if err != nil {
		t.Fatal(err)
	}
	ddata, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	dbg := decode[DebugRequestsResponse](t, ddata)
	foundShed := false
	for _, rec := range dbg.Records {
		if rec.Endpoint == "expand" && rec.Status == http.StatusServiceUnavailable && rec.Tier == 4 {
			foundShed = true
		}
	}
	if !foundShed {
		t.Fatalf("shed request not in flight recorder (outcome=rejected): %s", ddata)
	}

	// --- Recovery: one rung per MinDwell calm steps, no skipping ---
	wantDescent := []degrade.Tier{
		degrade.Tier4, degrade.Tier4, degrade.Tier3,
		degrade.Tier3, degrade.Tier3, degrade.Tier2,
		degrade.Tier2, degrade.Tier2, degrade.Tier1,
		degrade.Tier1, degrade.Tier1, degrade.Tier0,
	}
	for i, want := range wantDescent {
		if got := press(0); got != want {
			t.Fatalf("calm step %d: tier = %v, want %v", i+1, got, want)
		}
	}

	// Recovered responses are byte-identical to the undegraded golden.
	serveAt("tier0", "apple", degrade.Tier0)

	// The cache-only hit serves exactly the full-fidelity answer T0
	// computed — identical bytes except for the stamped tier.
	hit := strings.Replace(goldens["tier3_hit"], `"degraded":3,`, "", 1)
	if hit != goldens["tier0"] {
		t.Fatalf("tier3 cache hit is not the T0 answer:\n%s\n%s", goldens["tier3_hit"], goldens["tier0"])
	}

	// --- /stats and /metrics surfaces ---
	sresp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sdata, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	stats := decode[StatsResponse](t, sdata)
	if stats.Degrade == nil {
		t.Fatal("/stats has no degrade block with the controller enabled")
	}
	if stats.Degrade.Tier != "T0" || stats.Degrade.Shed != 1 {
		t.Fatalf("/stats degrade = %+v; want tier T0, shed 1", stats.Degrade)
	}
	if stats.Degrade.Transitions != 8 { // 4 up + 4 down
		t.Fatalf("transitions = %d, want 8", stats.Degrade.Transitions)
	}
	if len(stats.Degrade.Latency) == 0 {
		t.Fatal("/stats degrade block has no per-tier latency")
	}

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"qec_degrade_tier 0",
		"qec_degrade_transitions_total 8",
		"qec_shed_total 1",
		`qec_degrade_request_duration_seconds_count{tier="T0"}`,
	} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// The injector's spikes actually fired during the soak.
	if inj.Counts().Spikes == 0 {
		t.Fatal("fault injector never fired — the soak ran without its chaos harness")
	}

	// --- Golden comparison ---
	if os.Getenv("QEC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(ladderGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(goldens, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ladderGoldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", ladderGoldenPath)
		return
	}
	raw, err := os.ReadFile(ladderGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with QEC_UPDATE_GOLDEN=1): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(goldens) {
		t.Fatalf("golden has %d phases, run produced %d", len(want), len(goldens))
	}
	for phase, body := range goldens {
		if want[phase] != body {
			t.Errorf("phase %s diverged from golden:\ngot  %s\nwant %s", phase, body, want[phase])
		}
	}
}

// TestDegradeMaxTierForbidsShedding: with -degrade-max-tier 3 the controller
// saturates at cache-only — even absurd pressure never sheds.
func TestDegradeMaxTierForbidsShedding(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(16))
	srv := New(eng, Options{MaxConcurrent: 2, Degrade: true, DegradeMaxTier: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if got := srv.ctrl.Step(degrade.Signals{Queued: 100, Capacity: 1}); got != degrade.Tier3 {
			t.Fatalf("tier = %v, want clamp at T3", got)
		}
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s; want 200 (T3 fallback, never shed)", resp.StatusCode, data)
	}
	if srv.sheds.Load() != 0 {
		t.Fatalf("sheds = %d with MaxTier 3", srv.sheds.Load())
	}
}

// TestDegradeDisabledBytesUnchanged: with the controller off, responses carry
// no tier header and no degraded field — the wire bytes of an undegraded
// server are exactly the pre-degradation bytes.
func TestDegradeDisabledBytesUnchanged(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	resp, data := postJSON(t, ts.Client(), ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Qec-Tier"); h != "" {
		t.Fatalf("X-Qec-Tier = %q with degradation disabled", h)
	}
	if strings.Contains(string(data), `"degraded"`) {
		t.Fatalf("response carries a degraded field with degradation disabled: %s", data)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"original", "queries", "clusters", "score", "took_ms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("response missing %q: %s", key, data)
		}
	}
}

// TestDeadlineEscalation: a request arriving with almost no remaining budget
// is individually escalated to cache-only even while the ladder sits at T0.
func TestDeadlineEscalation(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(16))
	srv := New(eng, Options{Degrade: true, RequestTimeout: 10 * time.Second})
	if srv.ctrl.Tier() != degrade.Tier0 {
		t.Fatal("controller not at T0")
	}
	// Warm the cache so the escalated request can be answered from it.
	if _, err := eng.ExpandTraced(context.Background(), "apple", qec.ExpandOptions{K: 2}, nil); err != nil {
		t.Fatal(err)
	}
	// TightDeadline = RequestTimeout/4 = 2.5s. 100ms remaining < 2.5s/4.
	dec := srv.ctrl.Admit(100 * time.Millisecond)
	if dec.Tier != degrade.Tier3 || !dec.CacheOnly {
		t.Fatalf("decision = %+v; want T3 cache-only under a tight deadline", dec)
	}
	if dec.Shed {
		t.Fatal("deadline escalation must never shed")
	}
}
