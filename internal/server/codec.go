// Hand-rolled JSON codec for the wire layer's two small request types and
// their responses. The generic encoding/json path allocates a Decoder (with
// its internal read buffer) and an Encoder per request; the request bodies
// here are tiny flat objects and the responses are fixed shapes, so a direct
// scanner over the pooled body bytes and a direct append into the pooled
// output buffer leave the steady-state request path with no codec
// allocations at all (WireExpandCached / WireSearch pin this via the
// benchdiff alloc gates).
//
// Decoding matches the strict behaviour the stdlib path enforced: unknown
// fields, type mismatches, malformed JSON and trailing data are all errors;
// null is accepted for any field (leaving its zero value), matching
// json.Decoder. Encoding produces the same bytes encoding/json would
// (HTML-escaped strings, stdlib float formatting), so clients cannot tell
// the codec changed.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// jsonDecodable is implemented by request types with a hand-rolled strict
// decoder; Server.decode uses it in place of encoding/json.
type jsonDecodable interface {
	decodeJSON(data []byte) error
}

// jsonAppendable is implemented by response types with a hand-rolled
// encoder; Server.writeJSON uses it in place of encoding/json.
type jsonAppendable interface {
	appendJSON(dst []byte) []byte
}

// --- decoding ---------------------------------------------------------------

// jscan is a minimal JSON scanner over a byte slice.
type jscan struct {
	b []byte
	i int
}

var errJSONSyntax = errors.New("malformed JSON")

func (s *jscan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// consume advances past c, which must be the next non-space byte.
func (s *jscan) consume(c byte) error {
	s.ws()
	if s.i >= len(s.b) || s.b[s.i] != c {
		return errJSONSyntax
	}
	s.i++
	return nil
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (s *jscan) peek() byte {
	s.ws()
	if s.i >= len(s.b) {
		return 0
	}
	return s.b[s.i]
}

// literal consumes the given keyword (true/false/null tail).
func (s *jscan) literal(lit string) error {
	if len(s.b)-s.i < len(lit) || string(s.b[s.i:s.i+len(lit)]) != lit {
		return errJSONSyntax
	}
	s.i += len(lit)
	return nil
}

// null consumes a null literal if present, reporting whether it did.
func (s *jscan) null() (bool, error) {
	if s.peek() != 'n' {
		return false, nil
	}
	return true, s.literal("null")
}

// str decodes a JSON string. The fast path (printable ASCII, no escapes)
// copies the bytes once — the scanner's buffer is pooled, so the value must
// not alias it. Escapes and non-ASCII bytes take the slow path, which also
// sanitizes invalid UTF-8 to U+FFFD exactly as the stdlib decoder does.
func (s *jscan) str() (string, error) {
	if err := s.consume('"'); err != nil {
		return "", err
	}
	start := s.i
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '"':
			out := string(s.b[start:s.i])
			s.i++
			return out, nil
		case c == '\\' || c >= 0x80:
			return s.strSlow(start)
		case c < 0x20:
			return "", errJSONSyntax
		default:
			s.i++
		}
	}
	return "", errJSONSyntax
}

// strSlow finishes decoding a string that contains escapes or non-ASCII
// bytes, starting over from the opening quote's successor.
func (s *jscan) strSlow(start int) (string, error) {
	out := append([]byte(nil), s.b[start:s.i]...)
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			s.i++
			return string(out), nil
		case c < 0x20:
			return "", errJSONSyntax
		case c >= 0x80:
			// Valid multibyte runes pass through; invalid UTF-8 becomes
			// U+FFFD, matching encoding/json's unquote.
			r, size := utf8.DecodeRune(s.b[s.i:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, 0xFFFD)
			} else {
				out = append(out, s.b[s.i:s.i+size]...)
			}
			s.i += size
		case c != '\\':
			out = append(out, c)
			s.i++
		default:
			s.i++
			if s.i >= len(s.b) {
				return "", errJSONSyntax
			}
			esc := s.b[s.i]
			s.i++
			switch esc {
			case '"', '\\', '/':
				out = append(out, esc)
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'u':
				r, err := s.hex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// Expect a low surrogate; otherwise emit U+FFFD like
					// the stdlib decoder.
					r2 := rune(0xFFFD)
					if s.i+1 < len(s.b) && s.b[s.i] == '\\' && s.b[s.i+1] == 'u' {
						s.i += 2
						lo, err := s.hex4()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(r, lo); dec != 0xFFFD {
							r2 = dec
						} else {
							out = utf8.AppendRune(out, 0xFFFD)
							r2 = lo
						}
					}
					r = r2
				}
				out = utf8.AppendRune(out, r)
			default:
				return "", errJSONSyntax
			}
		}
	}
	return "", errJSONSyntax
}

// hex4 decodes four hex digits of a \u escape.
func (s *jscan) hex4() (rune, error) {
	if len(s.b)-s.i < 4 {
		return 0, errJSONSyntax
	}
	var r rune
	for j := 0; j < 4; j++ {
		c := s.b[s.i+j]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, errJSONSyntax
		}
	}
	s.i += 4
	return r, nil
}

// integer decodes a JSON number into an int, rejecting fractions and
// exponents (the stdlib errors on those for int fields too).
func (s *jscan) integer(field string) (int, error) {
	s.ws()
	start := s.i
	if s.i < len(s.b) && s.b[s.i] == '-' {
		s.i++
	}
	digits := 0
	first := byte(0)
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		if digits == 0 {
			first = s.b[s.i]
		}
		s.i++
		digits++
	}
	if digits == 0 || (first == '0' && digits > 1) {
		// No digits, or a leading zero ("01") — malformed JSON per the
		// number grammar, which the stdlib decoder rejects too.
		return 0, errJSONSyntax
	}
	if s.i < len(s.b) {
		if c := s.b[s.i]; c == '.' || c == 'e' || c == 'E' {
			return 0, fmt.Errorf("field %q: not an integer", field)
		}
	}
	n, err := strconv.Atoi(string(s.b[start:s.i]))
	if err != nil {
		return 0, fmt.Errorf("field %q: %v", field, err)
	}
	return n, nil
}

// boolean decodes true or false.
func (s *jscan) boolean() (bool, error) {
	switch s.peek() {
	case 't':
		return true, s.literal("true")
	case 'f':
		return false, s.literal("false")
	default:
		return false, errJSONSyntax
	}
}

// object drives the decode of one flat JSON object: field is called for
// every key with the scanner positioned at the value. Afterwards the input
// must hold nothing but whitespace (the stdlib path rejected trailing data).
func (s *jscan) object(field func(key string) error) error {
	if err := s.consume('{'); err != nil {
		return err
	}
	if s.peek() == '}' {
		s.i++
	} else {
		for {
			key, err := s.str()
			if err != nil {
				return err
			}
			if err := s.consume(':'); err != nil {
				return err
			}
			if err := field(key); err != nil {
				return err
			}
			if s.peek() == ',' {
				s.i++
				continue
			}
			if err := s.consume('}'); err != nil {
				return err
			}
			break
		}
	}
	s.ws()
	if s.i != len(s.b) {
		return errors.New("trailing data")
	}
	return nil
}

// strField / intField / boolField decode one value into dst, honouring null.
func (s *jscan) strField(dst *string) error {
	if ok, err := s.null(); ok || err != nil {
		return err
	}
	v, err := s.str()
	if err == nil {
		*dst = v
	}
	return err
}

func (s *jscan) intField(dst *int, key string) error {
	if ok, err := s.null(); ok || err != nil {
		return err
	}
	v, err := s.integer(key)
	if err == nil {
		*dst = v
	}
	return err
}

func (s *jscan) boolField(dst *bool) error {
	if ok, err := s.null(); ok || err != nil {
		return err
	}
	v, err := s.boolean()
	if err == nil {
		*dst = v
	}
	return err
}

func unknownField(key string) error {
	return fmt.Errorf("unknown field %q", key)
}

// decodeJSON implements jsonDecodable for SearchRequest.
func (r *SearchRequest) decodeJSON(data []byte) error {
	s := jscan{b: data}
	return s.object(func(key string) error {
		switch key {
		case "query":
			return s.strField(&r.Query)
		case "top_k":
			return s.intField(&r.TopK, key)
		default:
			return unknownField(key)
		}
	})
}

// decodeJSON implements jsonDecodable for ExpandRequest.
func (r *ExpandRequest) decodeJSON(data []byte) error {
	s := jscan{b: data}
	return s.object(func(key string) error {
		switch key {
		case "query":
			return s.strField(&r.Query)
		case "k":
			return s.intField(&r.K, key)
		case "top_k":
			return s.intField(&r.TopK, key)
		case "method":
			return s.strField(&r.Method)
		case "unweighted":
			return s.boolField(&r.Unweighted)
		case "parallel":
			return s.boolField(&r.Parallel)
		case "interleave":
			return s.intField(&r.Interleave, key)
		case "quality":
			return s.strField(&r.Quality)
		case "debug":
			return s.boolField(&r.Debug)
		case "explain":
			return s.boolField(&r.Explain)
		default:
			return unknownField(key)
		}
	})
}

// --- encoding ---------------------------------------------------------------

const hexDigits = "0123456789abcdef"

// appendJSONString appends a quoted, escaped JSON string, byte-identical to
// encoding/json's default (HTML-escaping) encoder.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters and the HTML-sensitive <, >, & become
				// \u00xx, matching the stdlib's escapeHTML behaviour.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 becomes the six-byte escape, matching the
			// stdlib encoder (which writes \ufffd, not the literal rune).
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends a float exactly as encoding/json formats it
// (shortest representation, 'e' form outside [1e-6, 1e21) with a trimmed
// exponent). The wire values are finite by construction.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e+09" to "e+9", as the stdlib does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSON implements jsonAppendable for SearchResponse, mirroring the
// struct's json tags (title is omitempty).
func (r *SearchResponse) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"count":`...)
	dst = strconv.AppendInt(dst, int64(r.Count), 10)
	dst = append(dst, `,"hits":`...)
	if r.Hits == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, h := range r.Hits {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"id":`...)
			dst = strconv.AppendInt(dst, int64(h.ID), 10)
			if h.Title != "" {
				dst = append(dst, `,"title":`...)
				dst = appendJSONString(dst, h.Title)
			}
			dst = append(dst, `,"score":`...)
			dst = appendJSONFloat(dst, h.Score)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"took_ms":`...)
	dst = appendJSONFloat(dst, r.TookMS)
	return append(dst, '}', '\n')
}

// appendJSON implements jsonAppendable for ExpandResponse.
func (r *ExpandResponse) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"original":`...)
	dst = appendStringArray(dst, r.Original)
	dst = append(dst, `,"queries":`...)
	if r.Queries == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, q := range r.Queries {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"terms":`...)
			dst = appendStringArray(dst, q.Terms)
			dst = append(dst, `,"cluster":`...)
			dst = strconv.AppendInt(dst, int64(q.Cluster), 10)
			dst = append(dst, `,"precision":`...)
			dst = appendJSONFloat(dst, q.Precision)
			dst = append(dst, `,"recall":`...)
			dst = appendJSONFloat(dst, q.Recall)
			dst = append(dst, `,"f":`...)
			dst = appendJSONFloat(dst, q.F)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"clusters":`...)
	if r.Clusters == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, cl := range r.Clusters {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, '[')
			for j, id := range cl {
				if j > 0 {
					dst = append(dst, ',')
				}
				dst = strconv.AppendInt(dst, int64(id), 10)
			}
			dst = append(dst, ']')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"score":`...)
	dst = appendJSONFloat(dst, r.Score)
	dst = append(dst, `,"took_ms":`...)
	dst = appendJSONFloat(dst, r.TookMS)
	if r.Degraded > 0 {
		// omitempty semantics: absent at T0 and with degradation disabled,
		// so undegraded responses stay byte-identical to older servers'.
		dst = append(dst, `,"degraded":`...)
		dst = strconv.AppendInt(dst, int64(r.Degraded), 10)
	}
	if d := r.Debug; d != nil {
		dst = append(dst, `,"debug":{"trace_id":`...)
		dst = appendJSONString(dst, d.TraceID)
		dst = append(dst, `,"cache":`...)
		dst = appendJSONString(dst, d.Cache)
		dst = append(dst, `,"stages":`...)
		if d.Stages == nil {
			dst = append(dst, `null`...)
		} else {
			dst = append(dst, '[')
			for i, st := range d.Stages {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = append(dst, `{"stage":`...)
				dst = appendJSONString(dst, st.Stage)
				dst = append(dst, `,"ms":`...)
				dst = appendJSONFloat(dst, st.MS)
				dst = append(dst, '}')
			}
			dst = append(dst, ']')
		}
		dst = append(dst, `,"kmeans":{"restarts":`...)
		dst = strconv.AppendInt(dst, int64(d.KMeans.Restarts), 10)
		dst = append(dst, `,"iterations":`...)
		dst = strconv.AppendInt(dst, int64(d.KMeans.Iterations), 10)
		dst = append(dst, `,"abandoned":`...)
		dst = strconv.AppendInt(dst, int64(d.KMeans.Abandoned), 10)
		dst = append(dst, '}', '}')
	}
	if r.Explain != nil {
		// Explain requests are rare and their payload is deep, so the
		// subtree goes through encoding/json instead of growing the
		// hand-rolled encoder; the surrounding shape stays byte-identical
		// for every non-explain response.
		if sub, err := json.Marshal(r.Explain); err == nil {
			dst = append(dst, `,"explain":`...)
			dst = append(dst, sub...)
		}
	}
	return append(dst, '}', '\n')
}

// appendStringArray appends a []string as a JSON array (null when nil,
// matching encoding/json).
func appendStringArray(dst []byte, ss []string) []byte {
	if ss == nil {
		return append(dst, `null`...)
	}
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, s)
	}
	return append(dst, ']')
}
