// Package server exposes a qec.Engine as a JSON HTTP API — the serving
// subsystem that turns the paper's one-shot pipeline into an online query
// expansion service.
//
// Endpoints:
//
//	POST /search   {"query": "...", "top_k": N}        → ranked hits
//	POST /expand   {"query": "...", "k": N, ...}       → expanded queries
//	GET  /healthz                                       → liveness + doc count
//	GET  /stats                                         → request + cache counters + latency quantiles
//	GET  /metrics                                       → Prometheus text exposition
//
// The server applies a per-request deadline, bounds concurrent expansions
// with a worker pool (requests that cannot get a worker before their deadline
// are rejected with 503), and shuts down gracefully when its context is
// cancelled (in-flight requests drain, new ones get 503 + Retry-After).
// Expansion results are cached/coalesced by the engine when it was
// constructed with qec.WithExpansionCache.
//
// With Options.Degrade the server consults an adaptive degradation
// controller (internal/degrade) at admission: under load it forces serving
// quality, caps the k-means restart budget, falls back to cache-only
// answers, and only as the last rung sheds with 503 + Retry-After. The tier
// a request was served at is stamped into the response ("degraded" field and
// X-Qec-Tier header), the access log, the flight recorder, /stats and
// /metrics — docs/DEGRADATION.md has the operator guide.
//
// Every search/expand request gets a trace ID, returned in the X-Trace-Id
// response header and stamped on the optional JSON-lines access log
// (Options.AccessLog) and slow-query log (Options.SlowQuery/SlowLog).
// Requests with "debug": true receive the per-stage timing breakdown inline.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	qec "repro"
	"repro/internal/degrade"
	"repro/internal/obs"
)

// Engine is the part of *qec.Engine the server needs. It is an interface so
// tests can inject slow or failing engines; *qec.Engine satisfies it.
type Engine interface {
	Search(raw string, topK int) []qec.Result
	ExpandTraced(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, error)
	ExpandExplained(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, *qec.Explain, error)
	// ExpandCached answers from the expansion cache without running the
	// pipeline (false on miss or when the engine has no cache) — the
	// degradation ladder's cache-only read path.
	ExpandCached(raw string, opts qec.ExpandOptions) (*qec.Expansion, bool)
	Len() int
	CacheStats() qec.CacheStats
}

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// RequestTimeout is the per-request deadline, covering both the wait
	// for a worker slot and the computation itself. Default 10s.
	RequestTimeout time.Duration
	// MaxConcurrent bounds concurrently executing expansions (the worker
	// pool size). Search requests are not pooled — they are index lookups,
	// orders of magnitude cheaper than clustering + ISKR.
	// Default 2×GOMAXPROCS.
	MaxConcurrent int
	// ShutdownTimeout bounds graceful drain in Run. Default 5s.
	ShutdownTimeout time.Duration
	// MaxBodyBytes bounds request body size. Default 1MiB.
	MaxBodyBytes int64
	// DefaultQuality is the clustering quality mode applied to expand
	// requests that leave "quality" unset. The zero value is
	// qec.QualityExact; operators trade accuracy for latency fleet-wide
	// with qec-serve -quality serving, while individual requests can still
	// pin either mode.
	DefaultQuality qec.Quality
	// AccessLog, when non-nil, receives one JSON line per served
	// search/expand request: timestamp, trace ID, endpoint, query, method,
	// quality, status, latency and cache disposition.
	AccessLog io.Writer
	// SlowQuery, when positive, marks requests at or above this latency as
	// slow: their log line gains the full per-stage timing breakdown.
	SlowQuery time.Duration
	// SlowLog, when non-nil, receives the slow-query lines. When nil and
	// AccessLog is set, slow breakdowns ride inline on the access line.
	SlowLog io.Writer
	// FlightCapacity sizes the flight recorder's main ring of completed
	// request records (GET /debug/requests). Default 256; the notable ring
	// (slow/error/aborted requests, exempt from sampling and fast-traffic
	// eviction) holds a quarter of it.
	FlightCapacity int
	// Degrade enables the adaptive degradation controller: expand requests
	// are admitted through the internal/degrade tier ladder, shedding
	// quality (serving mode, capped restarts, cache-only) before shedding
	// requests. Off by default.
	Degrade bool
	// DegradeMaxTier clamps the ladder (1..4; see degrade.Tier). Values
	// outside that range mean 4 — shedding allowed. 3 forbids shedding
	// entirely: the server serves through any saturation, degraded.
	DegradeMaxTier int
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if o.ShutdownTimeout <= 0 {
		o.ShutdownTimeout = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.FlightCapacity <= 0 {
		o.FlightCapacity = 256
	}
	return o
}

// Server serves an Engine over HTTP. Construct with New; all methods are
// safe for concurrent use.
type Server struct {
	eng     Engine
	opts    Options
	workers chan struct{}
	mux     *http.ServeMux
	started time.Time

	total, searches, expands              atomic.Int64
	errcount, timeouts, rejects, canceled atomic.Int64

	// inFlight and queued expose the worker pool's occupancy; searchHist and
	// expandHist (indexed by qec.QualityIndex) record user-visible request
	// latency, queueing and cache hits included.
	inFlight   obs.Gauge
	queued     obs.Gauge
	searchHist obs.Histogram
	expandHist [qec.NumQualities]obs.Histogram

	// flight retains completed request records for /debug/requests; active
	// tracks in-flight requests; rates derives windowed QPS/error-rate from
	// periodic counter snapshots (ticked lazily by reads and by Serve's
	// background ticker).
	flight       *obs.FlightRecorder
	active       *obs.ActiveSet
	rates        *obs.RateWindow
	lastRateTick atomic.Int64 // UnixNano of the newest rate sample

	// ctrl is the degradation controller (nil unless Options.Degrade). It is
	// stepped on the rate-tick cadence with the same sampled signals the rate
	// window stores; tierHist records expand latency per serving tier; sheds
	// counts T4 rejections; expandsDone counts completed expansions (the
	// queue drain rate Retry-After is derived from).
	ctrl        *degrade.Controller
	tierHist    [degrade.NumTiers]obs.Histogram
	sheds       atomic.Int64
	expandsDone atomic.Int64

	// draining flips when graceful shutdown begins: in-flight requests
	// finish, new ones get 503 + Retry-After.
	draining atomic.Bool

	accessLog *jsonLogger
	slowLog   *jsonLogger
}

// statusClientClosedRequest is nginx's non-standard 499, the conventional
// status for "the client disconnected before we could respond"; it is only
// ever written to an already-dead socket, but it keeps logs unambiguous.
const statusClientClosedRequest = 499

// New returns a Server for eng. The engine must already hold its corpus;
// when it also exposes Build (as *qec.Engine does), New builds the index
// eagerly so the first request does not pay the indexing cost.
func New(eng Engine, opts Options) *Server {
	if b, ok := eng.(interface{ Build() }); ok {
		b.Build()
	}
	s := &Server{
		eng:     eng,
		opts:    opts.withDefaults(),
		started: time.Now(),
	}
	s.workers = make(chan struct{}, s.opts.MaxConcurrent)
	s.accessLog = newJSONLogger(s.opts.AccessLog)
	s.slowLog = newJSONLogger(s.opts.SlowLog)
	s.flight = obs.NewFlightRecorder(s.opts.FlightCapacity, (s.opts.FlightCapacity+3)/4)
	s.active = obs.NewActiveSet(2 * s.opts.MaxConcurrent)
	s.rates = obs.NewRateWindow(rateWindowSamples, numRateCounters)
	s.lastRateTick.Store(time.Now().UnixNano())
	if s.opts.Degrade {
		s.ctrl = degrade.New(degrade.Config{
			MaxTier: degrade.Tier(s.opts.DegradeMaxTier),
			// A request whose remaining deadline cannot fit a typical full
			// pipeline run is individually escalated to a cheaper tier.
			TightDeadline: s.opts.RequestTimeout / 4,
		})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/expand", s.handleExpand)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("/debug/requests/", s.handleDebugRequest)
	return s
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Run listens on addr and serves until ctx is cancelled, then drains
// in-flight requests for up to Options.ShutdownTimeout. It returns nil after
// a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run with a caller-provided listener (which Serve takes ownership
// of), so callers and tests can bind port 0 and discover the address.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// Background rate sampling, so windowed QPS stays fresh even when
	// nothing scrapes /stats (reads also tick lazily — see maybeTickRates).
	tickerDone := make(chan struct{})
	defer close(tickerDone)
	go func() {
		t := time.NewTicker(rateTickInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.maybeTickRates()
			case <-tickerDone:
				return
			}
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Draining: requests already executing run to completion (bounded by
		// ShutdownTimeout); new requests — including ones arriving on live
		// keep-alive connections Shutdown has not closed yet — are refused
		// with 503 + Retry-After instead of queueing behind a closing server.
		s.draining.Store(true)
		drain, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownTimeout)
		defer cancel()
		return srv.Shutdown(drain)
	}
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// rejectDraining answers one request arriving after shutdown began. Returns
// true when the request was rejected.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.rejects.Add(1)
	s.writeRetryError(w, http.StatusServiceUnavailable, "server draining")
	return true
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Docs: s.eng.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	cs := s.eng.CacheStats()
	var expandAll obs.HistSnapshot
	quality := make(map[string]HistogramSummary, qec.NumQualities)
	for qi := range s.expandHist {
		snap := s.expandHist[qi].Snapshot()
		expandAll.Merge(snap)
		quality[qec.QualityLabel(qi)] = summarize(snap)
	}
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Docs:          s.eng.Len(),
		Requests: RequestStats{
			Total:    s.total.Load(),
			Search:   s.searches.Load(),
			Expand:   s.expands.Load(),
			Errors:   s.errcount.Load(),
			Timeouts: s.timeouts.Load(),
			Rejected: s.rejects.Load(),
			Canceled: s.canceled.Load(),
		},
		Cache: CacheStats{
			Hits:         cs.Hits,
			Misses:       cs.Misses,
			Evictions:    cs.Evictions,
			Entries:      cs.Entries,
			Capacity:     cs.Capacity,
			HitRate:      cs.HitRate(),
			Computations: cs.Computations,
			Coalesced:    cs.Coalesced,
		},
		Workers: WorkerStats{
			Capacity: s.opts.MaxConcurrent,
			InFlight: s.inFlight.Load(),
			Queued:   s.queued.Load(),
		},
		Latency: LatencyStats{
			Search:  summarize(s.searchHist.Snapshot()),
			Expand:  summarize(expandAll),
			Quality: quality,
		},
		Rates: s.rateStats(),
	}
	if s.ctrl != nil {
		snap := s.ctrl.Snapshot()
		tiers := make(map[string]HistogramSummary, degrade.NumTiers)
		for ti := range s.tierHist {
			if hs := s.tierHist[ti].Snapshot(); hs.Count > 0 {
				tiers[degrade.Tier(ti).String()] = summarize(hs)
			}
		}
		resp.Degrade = &DegradeStats{
			Tier:        snap.Tier.String(),
			MaxTier:     snap.MaxTier.String(),
			Pressure:    snap.Pressure,
			Steps:       snap.Steps,
			Transitions: snap.Transitions,
			Shed:        s.sheds.Load(),
			Latency:     tiers,
		}
	}
	if em, ok := s.eng.(engineMetrics); ok {
		m := em.Metrics()
		resp.KMeans = KMeansStats{
			Restarts:   int64(m.KMeansRestarts.Load()),
			Iterations: int64(m.KMeansIterations.Load()),
			Abandoned:  int64(m.AbandonedRestarts.Load()),
		}
		// Per-method split of *uncached pipeline-run* latency (the engine
		// only observes actual backend runs, never cache hits or coalesced
		// waits). Methods with no runs yet are omitted.
		method := make(map[string]HistogramSummary, qec.NumMethodSlots)
		for mi := range m.PerMethod {
			if snap := m.PerMethod[mi].Snapshot(); snap.Count > 0 {
				method[qec.MethodLabel(mi)] = summarize(snap)
			}
		}
		resp.Latency.Method = method
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	s.searches.Add(1)
	if !s.allowMethod(w, r, http.MethodPost) {
		return
	}
	if s.rejectDraining(w) {
		return
	}
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.writeError(w, http.StatusBadRequest, "query is required")
		return
	}
	traceID := s.requestTraceID(r)
	w.Header().Set("X-Trace-Id", obs.IDString(traceID))
	start := time.Now()
	token := s.active.Begin(&obs.ActiveRequest{
		TraceID: traceID, Endpoint: "search", Query: req.Query, Start: start,
	})
	defer s.active.End(token)
	results := s.eng.Search(req.Query, req.TopK)
	resp := SearchResponse{
		Count:  len(results),
		Hits:   make([]SearchHit, 0, len(results)),
		TookMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	getter, hasGetter := s.eng.(interface{ Get(qec.DocID) *qec.Document })
	for _, res := range results {
		hit := SearchHit{ID: int(res.Doc), Score: res.Score}
		if hasGetter {
			if doc := getter.Get(res.Doc); doc != nil {
				hit.Title = doc.Title
			}
		}
		resp.Hits = append(resp.Hits, hit)
	}
	s.writeJSON(w, http.StatusOK, resp)
	took := time.Since(start)
	s.searchHist.Observe(took)
	entry := accessEntry{
		trace:    traceID,
		endpoint: "search",
		query:    req.Query,
		status:   http.StatusOK,
		took:     took,
	}
	s.logRequest(&entry)
	s.recordFlight(&entry, start, nil)
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	s.total.Add(1)
	s.expands.Add(1)
	if !s.allowMethod(w, r, http.MethodPost) {
		return
	}
	if s.rejectDraining(w) {
		return
	}
	var req ExpandRequest
	if !s.decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.writeError(w, http.StatusBadRequest, "query is required")
		return
	}
	opts, err := req.Options(s.opts.DefaultQuality)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	traceID := s.requestTraceID(r)
	w.Header().Set("X-Trace-Id", obs.IDString(traceID))
	entry := accessEntry{
		trace:    traceID,
		endpoint: "expand",
		query:    req.Query,
		method:   qec.MethodLabel(int(opts.Method)),
	}
	start := time.Now()
	token := s.active.Begin(&obs.ActiveRequest{
		TraceID: traceID, Endpoint: "expand", Query: req.Query, Start: start,
	})
	defer s.active.End(token)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	// Admission: consult the degradation controller (when enabled) before
	// the request touches the worker queue. The decision is stamped on the
	// response header up front so even shed requests carry their tier.
	var dec degrade.Decision
	if s.ctrl != nil {
		remaining := s.opts.RequestTimeout
		if dl, ok := ctx.Deadline(); ok {
			remaining = time.Until(dl)
		}
		dec = s.ctrl.Admit(remaining)
		w.Header().Set("X-Qec-Tier", dec.Tier.String())
		entry.tier = int(dec.Tier)
	}
	if dec.Shed {
		// T4: the ladder's last rung. The 503 carries a Retry-After derived
		// from the queue drain rate; the shed is notable in the flight
		// recorder (outcome "rejected"), so operators can see exactly which
		// queries were turned away.
		s.sheds.Add(1)
		s.rejects.Add(1)
		s.writeRetryError(w, http.StatusServiceUnavailable,
			"degraded to shedding (tier T4), try again later")
		entry.status = http.StatusServiceUnavailable
		entry.took = time.Since(start)
		s.tierHist[dec.Tier].Observe(entry.took)
		s.logRequest(&entry)
		s.recordFlight(&entry, start, nil)
		return
	}
	if dec.CacheOnly {
		// T3: answer from the expansion cache under the request's own
		// options — cached entries hold full-fidelity answers computed in
		// calmer times, strictly better than anything T3 could compute now.
		if exp, ok := s.eng.ExpandCached(req.Query, opts); ok {
			took := time.Since(start)
			s.expandHist[qec.QualityIndex(opts.Quality)].Observe(took)
			s.tierHist[dec.Tier].Observe(took)
			resp := newExpandResponse(exp, float64(took.Microseconds())/1000)
			resp.Degraded = int(dec.Tier)
			s.writeJSON(w, http.StatusOK, resp)
			entry.status = http.StatusOK
			entry.took = took
			entry.cache = obs.CacheHit
			entry.quality = qec.QualityLabel(qec.QualityIndex(opts.Quality))
			s.logRequest(&entry)
			s.recordFlight(&entry, start, nil)
			return
		}
		// Miss: a fast single-cluster fallback (K=1 skips the k-means
		// restart ladder almost entirely) through the worker pool, under the
		// T2 clustering knobs applied below.
		opts.K = 1
		opts.Interleave = 0
	}
	if dec.ForceServing {
		opts.Quality = qec.QualityServing
		opts.RestartBudget = dec.RestartBudget
		opts.AggressiveAbandon = dec.AggressiveAbandon
	}
	qi := qec.QualityIndex(opts.Quality)
	entry.quality = qec.QualityLabel(qi)

	// Acquire a worker slot, giving up at the request deadline.
	s.queued.Inc()
	select {
	case s.workers <- struct{}{}:
		s.queued.Dec()
	case <-ctx.Done():
		s.queued.Dec()
		if r.Context().Err() != nil {
			// The client went away while queued — not server saturation.
			s.canceled.Add(1)
			s.writeError(w, statusClientClosedRequest, "client closed request")
			entry.status = statusClientClosedRequest
		} else {
			s.rejects.Add(1)
			s.writeRetryError(w, http.StatusServiceUnavailable,
				"expansion workers saturated, try again")
			entry.status = http.StatusServiceUnavailable
		}
		entry.took = time.Since(start)
		s.logRequest(&entry)
		s.recordFlight(&entry, start, nil)
		return
	}

	type outcome struct {
		exp *qec.Expansion
		ex  *qec.Explain
		err error
	}
	tr := obs.GetTrace()
	tr.ID = traceID
	done := make(chan outcome, 1)
	go func() {
		// The request context threads all the way into the pipeline: a
		// timed-out or abandoned computation stops at the next round
		// boundary (k-means round, per-cluster solve) and frees its worker
		// slot promptly instead of running to completion — under saturation
		// that reclaimed slot is the difference between draining the queue
		// and compounding it. Cancelled runs error out and cache nothing.
		s.inFlight.Inc()
		defer func() {
			s.inFlight.Dec()
			s.expandsDone.Add(1)
			<-s.workers
		}()
		var out outcome
		if req.Explain {
			out.exp, out.ex, out.err = s.eng.ExpandExplained(ctx, req.Query, opts, tr)
		} else {
			out.exp, out.err = s.eng.ExpandTraced(ctx, req.Query, opts, tr)
		}
		done <- out
	}()

	select {
	case out := <-done:
		took := time.Since(start)
		entry.took = took
		entry.cache = tr.Cache
		entry.tr = tr
		s.expandHist[qi].Observe(took)
		if s.ctrl != nil {
			s.tierHist[dec.Tier].Observe(took)
		}
		switch {
		case r.Context().Err() != nil:
			// The client disconnected while the expansion ran and the
			// completion beat the connection-close notification to this
			// select: still a disconnect, not a served request. (Without
			// this, the classification depends on which signal wins the
			// race.)
			s.canceled.Add(1)
			s.writeError(w, statusClientClosedRequest, "client closed request")
			entry.status = statusClientClosedRequest
		case errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded):
			// The engine surfaced our own cancellation (the pipeline stopped
			// at a round boundary). The deadline case races with ctx.Done
			// below — both classify it as a timeout either way.
			s.timeouts.Add(1)
			s.writeRetryError(w, http.StatusGatewayTimeout, "expansion timed out")
			entry.status = http.StatusGatewayTimeout
		case out.err != nil:
			status := http.StatusUnprocessableEntity
			switch {
			case errors.Is(out.err, qec.ErrNoResults):
				status = http.StatusNotFound
			case errors.Is(out.err, qec.ErrEmptyQuery):
				status = http.StatusBadRequest
			}
			s.writeError(w, status, out.err.Error())
			entry.status = status
		default:
			tookMS := float64(took.Microseconds()) / 1000
			resp := newExpandResponse(out.exp, tookMS)
			resp.Degraded = int(dec.Tier)
			if req.Debug {
				resp.Debug = newExpandDebug(tr)
			}
			resp.Explain = out.ex
			s.writeJSON(w, http.StatusOK, resp)
			entry.status = http.StatusOK
		}
		s.logRequest(&entry)
		s.recordFlight(&entry, start, tr)
		entry.tr = nil
		obs.PutTrace(tr)
	case <-ctx.Done():
		// The worker goroutine is still writing to tr, so it cannot be
		// recycled on this path — it escapes to the garbage collector.
		entry.took = time.Since(start)
		if r.Context().Err() != nil {
			// Client disconnect, not a slow expansion: keep the timeout
			// counter honest for operators watching /stats.
			s.canceled.Add(1)
			s.writeError(w, statusClientClosedRequest, "client closed request")
			entry.status = statusClientClosedRequest
		} else {
			s.timeouts.Add(1)
			s.writeRetryError(w, http.StatusGatewayTimeout, "expansion timed out")
			entry.status = http.StatusGatewayTimeout
		}
		s.logRequest(&entry)
		// tr is still owned by the worker goroutine on this path, so the
		// flight record carries no stage spans.
		s.recordFlight(&entry, start, nil)
	}
}

// --- request introspection ---------------------------------------------------

// requestTraceID honours a valid inbound X-Trace-Id header (16 hex digits —
// upstream proxies propagate their own IDs through it) and otherwise
// generates a fresh ID.
func (s *Server) requestTraceID(r *http.Request) uint64 {
	if h := r.Header.Get("X-Trace-Id"); h != "" {
		if id, ok := obs.ParseID(h); ok && id != 0 {
			return id
		}
	}
	return obs.NextTraceID()
}

// outcomeFor maps the terminal HTTP status onto the flight recorder's coarse
// outcome buckets.
func outcomeFor(status int) obs.Outcome {
	switch {
	case status == http.StatusGatewayTimeout:
		return obs.OutcomeTimeout
	case status == statusClientClosedRequest:
		return obs.OutcomeCanceled
	case status == http.StatusServiceUnavailable:
		return obs.OutcomeRejected
	case status >= 400:
		return obs.OutcomeError
	default:
		return obs.OutcomeOK
	}
}

// recordFlight hands one completed request to the flight recorder. Slow and
// non-OK requests are notable: exempt from sampling and retained in the
// dedicated notable ring. tr may be nil (search requests, timed-out
// expansions whose trace is still owned by the worker goroutine).
func (s *Server) recordFlight(e *accessEntry, start time.Time, tr *obs.Trace) {
	rec := &obs.RequestRecord{
		TraceID:  e.trace,
		Endpoint: e.endpoint,
		Query:    e.query,
		Method:   e.method,
		Quality:  e.quality,
		Status:   e.status,
		Outcome:  outcomeFor(e.status),
		Start:    start,
		Took:     e.took,
	}
	rec.FromTrace(tr)
	rec.TraceID = e.trace
	rec.Tier = e.tier
	if rec.Cache == obs.CacheNone {
		// Paths that never ran a trace (the T3 cache-only read) still carry
		// a disposition on the entry.
		rec.Cache = e.cache
	}
	notable := rec.Outcome != obs.OutcomeOK ||
		(s.opts.SlowQuery > 0 && e.took >= s.opts.SlowQuery)
	s.flight.Record(rec, notable)
}

// DumpActive writes a snapshot of in-flight requests to the access log (the
// slow log when no access log is configured) — the SIGQUIT-style "what is
// this server doing right now" dump; qec-serve wires it to SIGUSR1. Returns
// the number of requests dumped.
func (s *Server) DumpActive() int {
	reqs := s.active.Snapshot()
	dst := s.accessLog
	if dst == nil {
		dst = s.slowLog
	}
	now := time.Now()
	dst.log(func(b []byte) []byte {
		b = append(b, `{"ts":"`...)
		b = now.AppendFormat(b, time.RFC3339Nano)
		b = append(b, `","dump":"active","count":`...)
		b = strconv.AppendInt(b, int64(len(reqs)), 10)
		b = append(b, `,"requests":[`...)
		for i, req := range reqs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"trace":"`...)
			b = obs.AppendID(b, req.TraceID)
			b = append(b, `","endpoint":`...)
			b = appendJSONString(b, req.Endpoint)
			b = append(b, `,"query":`...)
			b = appendJSONString(b, req.Query)
			b = append(b, `,"age_ms":`...)
			b = appendJSONFloat(b, float64(now.Sub(req.Start).Microseconds())/1000)
			b = append(b, '}')
		}
		return append(b, ']', '}')
	})
	return len(reqs)
}

// --- windowed rates -----------------------------------------------------------

// Rate-window counter and gauge layout. The window stores periodic snapshots
// of these; /stats and /metrics derive 1m/5m rates from them.
const (
	rcTotal = iota
	rcErrors
	rcTimeouts
	rcRejected
	rcCanceled
	rcKMeansRestarts
	rcKMeansAbandoned
	rcExpandDone
	numRateCounters
)

const (
	rgInFlight = iota
	rgQueued
	numRateGauges
)

// rateTickInterval is the sampling period; rateWindowSamples at that period
// spans comfortably more than the longest (5m) reported window.
const (
	rateTickInterval  = 10 * time.Second
	rateWindowSamples = 40
)

// rateSample snapshots the counters the rate window tracks.
func (s *Server) rateSample(now time.Time) obs.WindowSample {
	c := make([]uint64, numRateCounters)
	c[rcTotal] = uint64(s.total.Load())
	c[rcErrors] = uint64(s.errcount.Load())
	c[rcTimeouts] = uint64(s.timeouts.Load())
	c[rcRejected] = uint64(s.rejects.Load())
	c[rcCanceled] = uint64(s.canceled.Load())
	c[rcExpandDone] = uint64(s.expandsDone.Load())
	if em, ok := s.eng.(engineMetrics); ok {
		m := em.Metrics()
		c[rcKMeansRestarts] = m.KMeansRestarts.Load()
		c[rcKMeansAbandoned] = m.AbandonedRestarts.Load()
	}
	g := make([]int64, numRateGauges)
	g[rgInFlight] = s.inFlight.Load()
	g[rgQueued] = s.queued.Load()
	return obs.WindowSample{At: now, Counters: c, Gauges: g}
}

// maybeTickRates appends a rate sample when the newest one is at least a tick
// old. Reads (/stats, /metrics) call it so windows stay fresh under test
// harnesses and curl without Serve's background ticker; the CAS keeps
// concurrent callers from double-sampling.
func (s *Server) maybeTickRates() {
	now := time.Now()
	last := s.lastRateTick.Load()
	if now.UnixNano()-last < int64(rateTickInterval) {
		return
	}
	if !s.lastRateTick.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	sample := s.rateSample(now)
	s.rates.Tick(sample)
	s.stepDegrade(now, sample)
}

// stepDegrade feeds one sampled signal set into the degradation controller.
// It runs on the rate-tick cadence (10s — by Serve's background ticker and
// lazily by /stats//metrics reads), so tier transitions happen at sample
// boundaries; the controller itself never reads a clock, which is what lets
// the soak test drive it with synthetic signal sequences and get the exact
// same ladder behaviour.
func (s *Server) stepDegrade(now time.Time, sample obs.WindowSample) {
	if s.ctrl == nil {
		return
	}
	const m1 = time.Minute
	s.ctrl.Step(degrade.Signals{
		Queued:   sample.Gauges[rgQueued],
		InFlight: sample.Gauges[rgInFlight],
		Capacity: int64(s.opts.MaxConcurrent),
		ErrorRatio: s.rates.Ratio(now, m1, rcErrors, rcTotal,
			sample.Counters[rcErrors], sample.Counters[rcTotal]),
		AbandonRatio: s.rates.Ratio(now, m1, rcKMeansAbandoned, rcKMeansRestarts,
			sample.Counters[rcKMeansAbandoned], sample.Counters[rcKMeansRestarts]),
	})
}

// DegradeSnapshot returns the degradation controller's current state; ok is
// false when degradation is disabled. qec-serve wires it to SIGUSR2.
func (s *Server) DegradeSnapshot() (degrade.Snapshot, bool) {
	if s.ctrl == nil {
		return degrade.Snapshot{}, false
	}
	return s.ctrl.Snapshot(), true
}

// retryAfterSeconds estimates when a rejected client should come back:
// queue-ahead-of-you divided by the 1m expansion completion rate (the drain
// rate), clamped to [1, 30] seconds. With no measurable drain and a standing
// queue the answer is the cap.
func (s *Server) retryAfterSeconds() int {
	queued := s.queued.Load() + s.inFlight.Load()
	now := time.Now()
	rate := s.rates.Rate(now, time.Minute, rcExpandDone, uint64(s.expandsDone.Load()))
	if rate <= 0 {
		if queued == 0 {
			return 1
		}
		return 30
	}
	secs := int(math.Ceil(float64(queued+1) / rate))
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}

// writeRetryError is writeError with a Retry-After header derived from the
// queue drain rate — every shed, saturation and timeout path goes through
// here so clients always learn when to come back.
func (s *Server) writeRetryError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeError(w, status, msg)
}

// rateStats derives the windowed rates for /stats and /metrics.
func (s *Server) rateStats() RateStats {
	s.maybeTickRates()
	now := time.Now()
	cur := s.rateSample(now)
	const m1, m5 = time.Minute, 5 * time.Minute
	rs := RateStats{
		QPS1M:         s.rates.Rate(now, m1, rcTotal, cur.Counters[rcTotal]),
		QPS5M:         s.rates.Rate(now, m5, rcTotal, cur.Counters[rcTotal]),
		ErrorRate1M:   s.rates.Ratio(now, m1, rcErrors, rcTotal, cur.Counters[rcErrors], cur.Counters[rcTotal]),
		ErrorRate5M:   s.rates.Ratio(now, m5, rcErrors, rcTotal, cur.Counters[rcErrors], cur.Counters[rcTotal]),
		AbandonRate1M: s.rates.Ratio(now, m1, rcKMeansAbandoned, rcKMeansRestarts, cur.Counters[rcKMeansAbandoned], cur.Counters[rcKMeansRestarts]),
	}
	if mean, max, ok := s.rates.GaugeTrend(now, m1, rgQueued); ok {
		rs.QueueMean1M = mean
		rs.QueueMax1M = max
	}
	return rs
}

// --- plumbing ---------------------------------------------------------------

func (s *Server) allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	s.writeError(w, http.StatusMethodNotAllowed, "method not allowed, use "+method)
	return false
}

// wireBuf is the per-request scratch the wire layer recycles: the request
// body is slurped into body and decoded off it in one shot through the
// resettable reader, and the response is encoded into out and written with
// an explicit Content-Length. At steady state neither buffer reallocates, no
// per-request buffered reader grows against the socket, and responses skip
// chunked encoding (one Write, one syscall).
type wireBuf struct {
	body bytes.Buffer
	out  bytes.Buffer
	enc  []byte // append scratch for the hand-rolled response encoders
	rdr  bytes.Reader
}

var bufPool = sync.Pool{New: func() any { return new(wireBuf) }}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	wb := bufPool.Get().(*wireBuf)
	defer bufPool.Put(wb)
	wb.body.Reset()
	if _, err := wb.body.ReadFrom(body); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		s.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return false
	}
	// Decode straight off the pooled bytes; both decode paths copy what
	// they keep (strings), so recycling the buffer after return is safe.
	// The two wire request types carry their own strict hand-rolled decoder
	// (see codec.go) — no per-request json.Decoder, no decoder read buffer;
	// anything else falls back to encoding/json with the same strictness.
	if hr, ok := v.(jsonDecodable); ok {
		if err := hr.decodeJSON(wb.body.Bytes()); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
			return false
		}
		return true
	}
	wb.rdr.Reset(wb.body.Bytes())
	dec := json.NewDecoder(&wb.rdr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: trailing data")
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	wb := bufPool.Get().(*wireBuf)
	defer bufPool.Put(wb)
	// The two hot response shapes append themselves into the pooled scratch
	// directly (see codec.go); everything else takes the generic encoder.
	if ha, ok := v.(jsonAppendable); ok {
		wb.enc = ha.appendJSON(wb.enc[:0])
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(wb.enc)))
		w.WriteHeader(status)
		_, _ = w.Write(wb.enc)
		return
	}
	wb.out.Reset()
	if err := json.NewEncoder(&wb.out).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(wb.out.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(wb.out.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.errcount.Add(1)
	s.writeJSON(w, status, ErrorResponse{Error: msg})
}
