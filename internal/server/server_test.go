package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	qec "repro"
	"repro/internal/obs"
)

// ambiguousEngine builds a corpus where "apple" has two senses, so /expand
// produces distinct per-cluster queries.
func ambiguousEngine(t testing.TB, opts ...qec.Option) *qec.Engine {
	t.Helper()
	e := qec.NewEngine(append([]qec.Option{qec.WithSeed(7)}, opts...)...)
	fruit := []string{"orchard harvest", "pie cider", "tree juice", "crop farm"}
	tech := []string{"iphone launch", "store retail", "laptop software", "stock shares"}
	for i := 0; i < 4; i++ {
		e.AddText(fmt.Sprintf("fruit-%d", i), "apple fruit "+fruit[i])
		e.AddText(fmt.Sprintf("tech-%d", i), "apple company "+tech[i])
	}
	e.Build()
	return e
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decode[T any](t testing.TB, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200", resp.StatusCode)
	}
	h := decode[HealthResponse](t, data)
	if h.Status != "ok" || h.Docs != 8 {
		t.Fatalf("health = %+v; want ok/8", h)
	}
}

func TestSearchRoundTrip(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	resp, data := postJSON(t, ts.Client(), ts.URL+"/search", SearchRequest{Query: "apple fruit", TopK: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	sr := decode[SearchResponse](t, data)
	if sr.Count != 3 || len(sr.Hits) != 3 {
		t.Fatalf("count = %d, hits = %d; want 3", sr.Count, len(sr.Hits))
	}
	for i := 1; i < len(sr.Hits); i++ {
		if sr.Hits[i].Score > sr.Hits[i-1].Score {
			t.Fatal("hits must be ranked by descending score")
		}
	}
	if sr.Hits[0].Title == "" {
		t.Fatal("hit titles should be populated")
	}
}

func TestExpandRoundTrip(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	// Clustered methods return one query per cluster; the alternative
	// paradigms (vector, lexical, orthogonal) return a flat suggestion list
	// with no clusters.
	clustered := map[string]bool{"": true, "iskr": true, "pebc": true, "deltaf": true, "or": true}
	for _, method := range []string{"", "iskr", "pebc", "deltaf", "or", "vector", "lexical", "orthogonal"} {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/expand",
			ExpandRequest{Query: "apple", K: 2, Method: method})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("method %q: status = %d, body %s", method, resp.StatusCode, data)
		}
		er := decode[ExpandResponse](t, data)
		if len(er.Original) == 0 || er.Original[0] != "apple" {
			t.Fatalf("method %q: original = %v", method, er.Original)
		}
		if len(er.Queries) == 0 {
			t.Fatalf("method %q: no queries", method)
		}
		if clustered[method] {
			if len(er.Clusters) != len(er.Queries) {
				t.Fatalf("method %q: %d queries, %d clusters", method, len(er.Queries), len(er.Clusters))
			}
		} else if len(er.Clusters) != 0 {
			t.Fatalf("method %q: non-clustered paradigm returned %d clusters", method, len(er.Clusters))
		}
		if er.Score <= 0 {
			t.Fatalf("method %q: score = %v; want > 0", method, er.Score)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{}).Handler())
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"expand empty query", "POST", "/expand", `{"query": "  "}`, http.StatusBadRequest},
		{"search empty query", "POST", "/search", `{}`, http.StatusBadRequest},
		{"expand no results", "POST", "/expand", `{"query": "zzznope"}`, http.StatusNotFound},
		{"bad json", "POST", "/expand", `{"query": `, http.StatusBadRequest},
		{"unknown field", "POST", "/expand", `{"query": "apple", "bogus": 1}`, http.StatusBadRequest},
		{"unknown method", "POST", "/expand", `{"query": "apple", "method": "magic"}`, http.StatusBadRequest},
		{"GET on expand", "GET", "/expand", ``, http.StatusMethodNotAllowed},
		{"POST on healthz", "POST", "/healthz", ``, http.StatusMethodNotAllowed},
		{"POST on stats", "POST", "/stats", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status = %d; want %d (body %s)", tc.name, resp.StatusCode, tc.wantCode, data)
		}
		e := decode[ErrorResponse](t, data)
		if e.Error == "" {
			t.Errorf("%s: error body should carry a message, got %s", tc.name, data)
		}
		if tc.name == "unknown method" {
			// The rejection is qec's one canonical error: it must enumerate
			// every valid method so the caller can self-correct.
			for _, name := range qec.MethodNames() {
				if !strings.Contains(e.Error, name) {
					t.Errorf("unknown-method error %q does not enumerate %q", e.Error, name)
				}
			}
		}
	}
}

// TestConcurrentExpandCoalesces is the acceptance scenario: 32 concurrent
// identical /expand requests compute exactly once, and a second wave is
// served from the cache (hit rate > 0).
func TestConcurrentExpandCoalesces(t *testing.T) {
	eng := ambiguousEngine(t, qec.WithExpansionCache(64))
	ts := httptest.NewServer(New(eng, Options{MaxConcurrent: 64}).Handler())
	defer ts.Close()
	client := ts.Client()

	wave := func() {
		t.Helper()
		const n = 32
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				resp, data := postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple", K: 2})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d, body %s", resp.StatusCode, data)
				}
			}()
		}
		close(start)
		wg.Wait()
	}

	wave()
	if st := eng.CacheStats(); st.Computations != 1 {
		t.Fatalf("computations after wave 1 = %d; want exactly 1 (coalescing)", st.Computations)
	}

	wave()
	st := eng.CacheStats()
	if st.Computations != 1 {
		t.Fatalf("computations after wave 2 = %d; want still 1 (cache)", st.Computations)
	}
	if st.Hits == 0 || st.HitRate() <= 0 {
		t.Fatalf("hit rate = %v (hits %d); want > 0 on the second wave", st.HitRate(), st.Hits)
	}

	// The /stats endpoint must report the same picture.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	stats := decode[StatsResponse](t, data)
	if stats.Cache.Computations != 1 || stats.Cache.HitRate <= 0 {
		t.Fatalf("/stats cache = %+v; want computations 1, hit_rate > 0", stats.Cache)
	}
	if stats.Requests.Expand != 64 {
		t.Fatalf("/stats expand count = %d; want 64", stats.Requests.Expand)
	}
	if stats.Docs != 8 || stats.UptimeSeconds < 0 {
		t.Fatalf("/stats = %+v", stats)
	}
}

// gateEngine blocks expansion until released, so tests can hold a worker
// slot. It overrides ExpandTraced because that is the method the server
// dispatches to.
type gateEngine struct {
	*qec.Engine
	entered chan struct{}
	release chan struct{}
}

func (g *gateEngine) ExpandTraced(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.Engine.ExpandTraced(ctx, raw, opts, tr)
}

func TestWorkerPoolSaturationAndTimeout(t *testing.T) {
	gate := &gateEngine{
		Engine:  ambiguousEngine(t),
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	srv := New(gate, Options{MaxConcurrent: 1, RequestTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Request A grabs the only worker and blocks inside Expand.
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple"})
		aDone <- resp.StatusCode
	}()
	<-gate.entered

	// Request B cannot get a worker before its deadline → 503, carrying a
	// Retry-After derived from the queue drain rate so well-behaved clients
	// back off instead of hammering a saturated pool.
	resp, data := postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, body %s; want 503", resp.StatusCode, data)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
		t.Fatalf("saturated Retry-After = %q, want an integer in [1,30]", resp.Header.Get("Retry-After"))
	}

	// A's own deadline has passed while gated → 504.
	if code := <-aDone; code != http.StatusGatewayTimeout {
		t.Fatalf("gated request status = %d; want 504", code)
	}
	close(gate.release) // let the background computation finish and free the slot

	// The pool recovers: a fresh request succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data = postJSON(t, client, ts.URL+"/expand", ExpandRequest{Query: "apple"})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not recover: status = %d, body %s", resp.StatusCode, data)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Counters recorded the rejection and the timeout.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	stats := decode[StatsResponse](t, body)
	if stats.Requests.Rejected != 1 || stats.Requests.Timeouts != 1 {
		t.Fatalf("rejected/timeouts = %d/%d; want 1/1", stats.Requests.Rejected, stats.Requests.Timeouts)
	}
	if stats.Requests.Errors < 2 {
		t.Fatalf("errors = %d; want >= 2", stats.Requests.Errors)
	}
}

func TestClientDisconnectNotCountedAsTimeout(t *testing.T) {
	gate := &gateEngine{
		Engine:  ambiguousEngine(t),
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	srv := New(gate, Options{MaxConcurrent: 1, RequestTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/expand",
		strings.NewReader(`{"query": "apple"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	<-gate.entered // the expansion is in flight
	cancel()       // the client walks away
	if err := <-errc; err == nil {
		t.Fatal("client.Do should fail once its context is canceled")
	}

	// The handler observes the disconnect asynchronously. Keep the gate
	// held while waiting: with the expansion still blocked, the only event
	// that can wake the handler is the connection-close cancellation, so
	// the wait cannot race against a fast completion.
	deadline := time.Now().Add(5 * time.Second)
	for srv.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate.release) // let the background expansion finish
	if n := srv.timeouts.Load(); n != 0 {
		t.Fatalf("timeouts = %d; client disconnect must not count as a timeout", n)
	}
	if n := srv.rejects.Load(); n != 0 {
		t.Fatalf("rejected = %d; client disconnect must not count as saturation", n)
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv := New(ambiguousEngine(t), Options{ShutdownTimeout: time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// The server answers while running...
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d; want 200", resp.StatusCode)
	}

	// ...and drains cleanly on cancel.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v; want nil after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server should refuse connections after shutdown")
	}
}

func TestBodyLimit(t *testing.T) {
	ts := httptest.NewServer(New(ambiguousEngine(t), Options{MaxBodyBytes: 64}).Handler())
	defer ts.Close()
	big := fmt.Sprintf(`{"query": %q}`, strings.Repeat("apple ", 100))
	resp, err := ts.Client().Post(ts.URL+"/expand", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d; want 413", resp.StatusCode)
	}
}
