package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	qec "repro"
)

// benchWire drives one endpoint through the handler directly (recorder, no
// sockets) with a warm expansion cache, so the measured cost is the wire
// layer — decode, dispatch, encode — not the expansion pipeline or the HTTP
// client. The allocs/op of these benches is what the pooled request/response
// buffers exist to keep down.
func benchWire(b *testing.B, path, body string) {
	eng := ambiguousEngine(b, qec.WithExpansionCache(64))
	h := New(eng, Options{}).Handler()
	do := func() {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	do() // populate the expansion cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}

func BenchmarkWireExpandCached(b *testing.B) {
	benchWire(b, "/expand", `{"query":"apple","k":2}`)
}

func BenchmarkWireSearch(b *testing.B) {
	benchWire(b, "/search", `{"query":"apple","top_k":5}`)
}
