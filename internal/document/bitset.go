package document

import (
	"fmt"
	"math/bits"
)

// BitSet is a set over a fixed dense ID universe 0..n-1, packed 64 IDs per
// uint64 word. It backs the expansion core's hot paths: set algebra becomes
// word-wise And/AndNot/Or and cardinality becomes popcount, replacing the
// map-backed DocSet operations that dominated the ISKR/PEBC profiles.
//
// Iteration (ForEach, IDs) is always in ascending ID order. Callers that
// accumulate floating-point sums over members therefore add in exactly the
// sorted-document order the map-backed code used, keeping results
// bit-identical — the determinism contract the expansion golden test pins.
//
// The zero value is an empty set over an empty universe. Mutating methods
// (Add, Remove, And, AndNot, Or, Fill, Clear) modify the receiver in place;
// sets combined by the binary operations must share a universe size.
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns an empty set over the universe 0..n-1.
func NewBitSet(n int) BitSet {
	if n < 0 {
		panic("document: negative BitSet universe")
	}
	return BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

// FullBitSet returns the set {0, ..., n-1}.
func FullBitSet(n int) BitSet {
	b := NewBitSet(n)
	b.Fill()
	return b
}

// N returns the universe size (the exclusive upper bound on member IDs).
func (b BitSet) N() int { return b.n }

// Words exposes the packed representation for fused word-wise loops. The
// slice is the live backing store: callers must treat it as read-only.
func (b BitSet) Words() []uint64 { return b.words }

// Contains reports membership of id. IDs outside the universe are absent.
func (b BitSet) Contains(id int) bool {
	if id < 0 || id >= b.n {
		return false
	}
	return b.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// Add inserts id (panics when outside the universe).
func (b BitSet) Add(id int) {
	if id < 0 || id >= b.n {
		panic(fmt.Sprintf("document: BitSet.Add(%d) outside universe of %d", id, b.n))
	}
	b.words[id>>6] |= 1 << (uint(id) & 63)
}

// Remove deletes id (no-op when absent or outside the universe).
func (b BitSet) Remove(id int) {
	if id < 0 || id >= b.n {
		return
	}
	b.words[id>>6] &^= 1 << (uint(id) & 63)
}

// Len returns the cardinality (popcount over the words).
func (b BitSet) Len() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether no bit is set, without a full popcount.
func (b BitSet) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Fill sets every bit of the universe.
func (b BitSet) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Clear removes every member.
func (b BitSet) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the tail bits beyond n-1 in the last word, so popcounts and
// word-wise comparisons never see ghost members.
func (b BitSet) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet {
	out := BitSet{n: b.n, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// CopyFrom overwrites b with t's members, reusing b's storage. The two sets
// must share a universe.
func (b BitSet) CopyFrom(t BitSet) {
	b.sameUniverse(t)
	copy(b.words, t.words)
}

func (b BitSet) sameUniverse(t BitSet) {
	if b.n != t.n {
		panic(fmt.Sprintf("document: BitSet universe mismatch (%d vs %d)", b.n, t.n))
	}
}

// AndOf overwrites b with x ∩ y, reusing b's storage (a fused CopyFrom+And,
// one pass). All three sets must share a universe.
func (b BitSet) AndOf(x, y BitSet) {
	b.sameUniverse(x)
	x.sameUniverse(y)
	for i := range b.words {
		b.words[i] = x.words[i] & y.words[i]
	}
}

// And intersects in place: b = b ∩ t.
func (b BitSet) And(t BitSet) {
	b.sameUniverse(t)
	for i := range b.words {
		b.words[i] &= t.words[i]
	}
}

// AndNot subtracts in place: b = b \ t.
func (b BitSet) AndNot(t BitSet) {
	b.sameUniverse(t)
	for i := range b.words {
		b.words[i] &^= t.words[i]
	}
}

// Or unions in place: b = b ∪ t.
func (b BitSet) Or(t BitSet) {
	b.sameUniverse(t)
	for i := range b.words {
		b.words[i] |= t.words[i]
	}
}

// AndLen returns |b ∩ t| without materializing the intersection.
func (b BitSet) AndLen(t BitSet) int {
	b.sameUniverse(t)
	total := 0
	for i, w := range b.words {
		total += bits.OnesCount64(w & t.words[i])
	}
	return total
}

// Equal reports whether b and t contain the same members.
func (b BitSet) Equal(t BitSet) bool {
	if b.n != t.n {
		return false
	}
	for i, w := range b.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls f for every member in ascending order.
func (b BitSet) ForEach(f func(id int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// IDs returns the members in ascending order.
func (b BitSet) IDs() []int {
	out := make([]int, 0, b.Len())
	b.ForEach(func(id int) { out = append(out, id) })
	return out
}
