package document

import (
	"math/rand"
	"testing"
)

func TestBitSetBasicOps(t *testing.T) {
	b := NewBitSet(130)
	if b.N() != 130 || b.Len() != 0 || !b.Empty() {
		t.Fatalf("fresh set: N=%d Len=%d Empty=%t", b.N(), b.Len(), b.Empty())
	}
	for _, id := range []int{0, 63, 64, 129} {
		b.Add(id)
		if !b.Contains(id) {
			t.Errorf("Contains(%d) after Add", id)
		}
	}
	if b.Len() != 4 || b.Empty() {
		t.Errorf("Len = %d, want 4", b.Len())
	}
	b.Remove(64)
	if b.Contains(64) || b.Len() != 3 {
		t.Errorf("Remove(64): Contains=%t Len=%d", b.Contains(64), b.Len())
	}
	if b.Contains(-1) || b.Contains(130) {
		t.Error("out-of-universe IDs must read as absent")
	}
	b.Remove(-1)
	b.Remove(999) // no-ops
	want := []int{0, 63, 129}
	got := b.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestBitSetFillTrimsGhostBits(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := FullBitSet(n)
		if b.Len() != n {
			t.Errorf("FullBitSet(%d).Len() = %d", n, b.Len())
		}
		if n > 0 && !b.Contains(n-1) {
			t.Errorf("FullBitSet(%d) missing %d", n, n-1)
		}
		if b.Contains(n) {
			t.Errorf("FullBitSet(%d) contains ghost bit %d", n, n)
		}
	}
}

func TestBitSetAddOutsideUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add outside the universe must panic")
		}
	}()
	NewBitSet(10).Add(10)
}

func TestBitSetUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And across universes must panic")
		}
	}()
	NewBitSet(64).And(NewBitSet(65))
}

// mirrorSet pairs a BitSet with a map DocSet and applies every operation to
// both, so the property test below can check they never diverge.
type mirrorSet struct {
	bits BitSet
	set  DocSet
}

func newMirror(n int) *mirrorSet {
	return &mirrorSet{bits: NewBitSet(n), set: DocSet{}}
}

func (m *mirrorSet) check(t *testing.T, op string) {
	t.Helper()
	if m.bits.Len() != m.set.Len() {
		t.Fatalf("%s: Len %d vs DocSet %d", op, m.bits.Len(), m.set.Len())
	}
	ids := m.bits.IDs()
	want := m.set.IDs()
	for i, id := range ids {
		if DocID(id) != want[i] {
			t.Fatalf("%s: IDs[%d] = %d, want %d (bitset iteration must be "+
				"ascending and agree with sorted DocSet)", op, i, id, want[i])
		}
	}
	if (m.bits.Len() == 0) != m.bits.Empty() {
		t.Fatalf("%s: Empty() inconsistent with Len()", op)
	}
}

// TestBitSetMatchesDocSetSemantics drives randomized operation sequences
// against a BitSet and a map-backed DocSet in lockstep: Add, Remove, Union,
// Intersect, AndNot (Subtract), Len and IDs ordering must agree after every
// step. This is the map-vs-bitset property contract the expansion core's
// dense refactor rests on.
func TestBitSetMatchesDocSetSemantics(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		m := newMirror(n)
		other := newMirror(n)
		for step := 0; step < 500; step++ {
			id := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				m.bits.Add(id)
				m.set.Add(DocID(id))
				m.check(t, "Add")
			case 1:
				m.bits.Remove(id)
				m.set.Remove(DocID(id))
				m.check(t, "Remove")
			case 2:
				other.bits.Add(id)
				other.set.Add(DocID(id))
			case 3: // Union
				m.bits.Or(other.bits)
				m.set = m.set.Union(other.set)
				m.check(t, "Or/Union")
			case 4: // Intersect
				m.bits.And(other.bits)
				m.set = m.set.Intersect(other.set)
				m.check(t, "And/Intersect")
			case 5: // Subtract
				m.bits.AndNot(other.bits)
				m.set = m.set.Subtract(other.set)
				m.check(t, "AndNot/Subtract")
			}
			if got, want := m.bits.Contains(id), m.set.Contains(DocID(id)); got != want {
				t.Fatalf("seed %d step %d: Contains(%d) = %t, DocSet %t",
					seed, step, id, got, want)
			}
			if got, want := m.bits.AndLen(other.bits), m.set.Intersect(other.set).Len(); got != want {
				t.Fatalf("seed %d step %d: AndLen = %d, want %d", seed, step, got, want)
			}
		}
		// Clone independence and equality.
		c := m.bits.Clone()
		if !c.Equal(m.bits) {
			t.Fatal("clone not equal")
		}
		c.Fill()
		if m.bits.Len() == n && n > 1 {
			continue // full set: Fill is a no-op difference
		}
		if c.Len() != n {
			t.Fatalf("Fill on clone: Len %d, want %d", c.Len(), n)
		}
	}
}

func TestBitSetCopyFrom(t *testing.T) {
	a, b := NewBitSet(100), NewBitSet(100)
	for _, id := range []int{3, 64, 99} {
		b.Add(id)
	}
	a.Add(7)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatalf("CopyFrom: %v, want %v", a.IDs(), b.IDs())
	}
	b.Remove(64)
	if a.Equal(b) {
		t.Fatal("CopyFrom must not share storage")
	}
}

func TestBitSetForEachAscending(t *testing.T) {
	b := NewBitSet(300)
	for _, id := range []int{299, 0, 64, 63, 128, 65} {
		b.Add(id)
	}
	prev := -1
	b.ForEach(func(id int) {
		if id <= prev {
			t.Fatalf("ForEach out of order: %d after %d", id, prev)
		}
		prev = id
	})
}
