package document

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTripletString(t *testing.T) {
	tr := Triplet{Entity: "tv", Attribute: "brand", Value: "toshiba"}
	if got, want := tr.String(), "tv: brand: toshiba"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTripletComposite(t *testing.T) {
	tr := Triplet{Entity: "product", Attribute: "name", Value: "ipad"}
	if got, want := tr.Composite(), "product:name:ipad"; got != want {
		t.Errorf("Composite = %q, want %q", got, want)
	}
}

func TestTripletTermsIncludesPartsAndComposite(t *testing.T) {
	tr := Triplet{Entity: "camera", Attribute: "image resolution", Value: "4752 x 3168"}
	got := tr.Terms()
	want := []string{"camera", "image", "resolution", "4752", "x", "3168",
		"camera:image resolution:4752 x 3168"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestParseCompositeRoundTrip(t *testing.T) {
	tr := Triplet{Entity: "memory", Attribute: "category", Value: "ddr3"}
	got, ok := ParseComposite(tr.Composite())
	if !ok || got != tr {
		t.Errorf("ParseComposite = %v, %v", got, ok)
	}
}

func TestParseCompositeValueMayContainColon(t *testing.T) {
	got, ok := ParseComposite("a:b:c:d")
	if !ok || got.Value != "c:d" {
		t.Errorf("ParseComposite = %v, %v; want value c:d", got, ok)
	}
}

func TestParseCompositeRejectsNonComposite(t *testing.T) {
	for _, s := range []string{"plain", "a:b", ":b:c", "a::c", "a:b:", ""} {
		if _, ok := ParseComposite(s); ok {
			t.Errorf("ParseComposite(%q) accepted", s)
		}
	}
}

func TestCorpusAddAssignsSequentialIDs(t *testing.T) {
	c := NewCorpus()
	id0 := c.AddText("t0", "body zero")
	id1 := c.AddStructured("t1", []Triplet{{"e", "a", "v"}})
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids = %d, %d", id0, id1)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Get(id1).Title != "t1" {
		t.Errorf("Get(1).Title = %q", c.Get(id1).Title)
	}
}

func TestCorpusGetOutOfRange(t *testing.T) {
	c := NewCorpus()
	c.AddText("t", "b")
	if c.Get(-1) != nil || c.Get(5) != nil {
		t.Error("Get out of range should return nil")
	}
}

func TestFullTextText(t *testing.T) {
	d := &Document{Kind: Text, Title: "San Jose", Body: "hockey team"}
	if got, want := d.FullText(), "San Jose hockey team"; got != want {
		t.Errorf("FullText = %q, want %q", got, want)
	}
	d2 := &Document{Kind: Text, Body: "only body"}
	if got := d2.FullText(); got != "only body" {
		t.Errorf("FullText = %q", got)
	}
}

func TestFullTextStructured(t *testing.T) {
	d := &Document{Kind: Structured, Title: "Canon X", Triplets: []Triplet{
		{"canonproducts", "category", "camera"},
	}}
	if got, want := d.FullText(), "Canon X canonproducts category camera"; got != want {
		t.Errorf("FullText = %q, want %q", got, want)
	}
}

func TestCompositeTermsSortedDeduped(t *testing.T) {
	d := &Document{Kind: Structured, Triplets: []Triplet{
		{"b", "y", "2"}, {"a", "x", "1"}, {"b", "y", "2"},
	}}
	got := d.CompositeTerms()
	want := []string{"a:x:1", "b:y:2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CompositeTerms = %v, want %v", got, want)
	}
}

func TestCompositeTermsEmptyForText(t *testing.T) {
	d := &Document{Kind: Text, Body: "x"}
	if got := d.CompositeTerms(); got != nil {
		t.Errorf("CompositeTerms = %v, want nil", got)
	}
}

func TestDocSetBasicOps(t *testing.T) {
	s := NewDocSet(1, 2, 3)
	if !s.Contains(2) || s.Contains(9) || s.Len() != 3 {
		t.Error("basic membership failed")
	}
	s.Add(9)
	if !s.Contains(9) {
		t.Error("Add failed")
	}
	s.Remove(9)
	if s.Contains(9) {
		t.Error("Remove failed")
	}
}

func TestDocSetAlgebra(t *testing.T) {
	a := NewDocSet(1, 2, 3, 4)
	b := NewDocSet(3, 4, 5)
	if got := a.Intersect(b).IDs(); !reflect.DeepEqual(got, []DocID{3, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b).IDs(); !reflect.DeepEqual(got, []DocID{1, 2, 3, 4, 5}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Subtract(b).IDs(); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("Subtract = %v", got)
	}
}

func TestDocSetCloneIndependent(t *testing.T) {
	a := NewDocSet(1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Error("Clone shares storage")
	}
}

func TestDocSetEqual(t *testing.T) {
	if !NewDocSet(1, 2).Equal(NewDocSet(2, 1)) {
		t.Error("order should not matter")
	}
	if NewDocSet(1).Equal(NewDocSet(1, 2)) {
		t.Error("different sizes equal")
	}
	if NewDocSet(1, 3).Equal(NewDocSet(1, 2)) {
		t.Error("different members equal")
	}
}

// generator for property tests: small random sets
func genSet(ids []uint8) DocSet {
	s := NewDocSet()
	for _, id := range ids {
		s.Add(DocID(id % 32))
	}
	return s
}

func TestDocSetPropertyDeMorgan(t *testing.T) {
	// |A ∪ B| = |A| + |B| - |A ∩ B|
	prop := func(as, bs []uint8) bool {
		a, b := genSet(as), genSet(bs)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDocSetPropertySubtractDisjoint(t *testing.T) {
	// (A \ B) ∩ B = ∅ and (A \ B) ∪ (A ∩ B) = A
	prop := func(as, bs []uint8) bool {
		a, b := genSet(as), genSet(bs)
		diff := a.Subtract(b)
		if diff.Intersect(b).Len() != 0 {
			return false
		}
		return diff.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDocSetPropertyIDsSorted(t *testing.T) {
	prop := func(as []uint8) bool {
		ids := genSet(as).IDs()
		return sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDocSetPropertyIntersectCommutative(t *testing.T) {
	prop := func(as, bs []uint8) bool {
		a, b := genSet(as), genSet(bs)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
