package document

import (
	"strings"
	"testing"
)

// FuzzParseComposite checks the composite-term round-trip invariants on
// arbitrary input: any term ParseComposite accepts must re-render via
// Composite() to a string that parses back to the identical triplet, and the
// accept/reject decision must match the documented grammar (three non-empty
// ':'-separated parts, colons allowed inside the value).
func FuzzParseComposite(f *testing.F) {
	for _, seed := range []string{
		"product:name:iPad",
		"tv:brand:toshiba",
		"routers:wireless:802.11g",
		"a:b:c:d",        // extra colon belongs to the value
		"a::c",           // empty attribute: rejected
		":b:c",           // empty entity: rejected
		"a:b:",           // empty value: rejected
		"plainword",      // no colons
		"two:parts",      // only two parts
		"entity:attr:va", // minimal valid
		"",               // empty input
		"::",             // all parts empty
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, term string) {
		trip, ok := ParseComposite(term)
		parts := strings.SplitN(term, ":", 3)
		wantOK := len(parts) == 3 && parts[0] != "" && parts[1] != "" && parts[2] != ""
		if ok != wantOK {
			t.Fatalf("ParseComposite(%q) ok=%t, grammar says %t", term, ok, wantOK)
		}
		if !ok {
			if trip != (Triplet{}) {
				t.Fatalf("rejected input %q returned non-zero triplet %+v", term, trip)
			}
			return
		}
		if trip.Entity == "" || trip.Attribute == "" || trip.Value == "" {
			t.Fatalf("accepted triplet has empty part: %+v", trip)
		}
		rendered := trip.Composite()
		if rendered != term {
			t.Fatalf("Composite() = %q, want round-trip of %q", rendered, term)
		}
		again, ok2 := ParseComposite(rendered)
		if !ok2 || again != trip {
			t.Fatalf("re-parse of %q = %+v (ok=%t), want %+v", rendered, again, ok2, trip)
		}
	})
}
