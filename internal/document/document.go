// Package document defines the data model of the system: text documents
// modeled as sets of words, and structured documents modeled as sets of
// (entity:attribute:value) feature triplets, following the paper's Section 2
// and reference [13] (Huang, Liu, Chen, SIGMOD 2008).
package document

import (
	"fmt"
	"sort"
	"strings"
)

// DocID identifies a document within a corpus. IDs are dense, starting at 0,
// assigned in insertion order.
type DocID int

// Kind distinguishes text from structured documents.
type Kind int

const (
	// Text documents are bags of words (Wikipedia-style prose).
	Text Kind = iota
	// Structured documents are sets of feature triplets (shopping products).
	Structured
)

// Triplet is a structured feature (entity:attribute:value), e.g.
// product:name:iPad or tv:brand:toshiba. All three parts are stored
// normalized (lowercase).
type Triplet struct {
	Entity    string
	Attribute string
	Value     string
}

// String renders the triplet in the paper's "entity: attribute: value" form
// used in Figures 8–9 for the shopping expanded queries.
func (t Triplet) String() string {
	return fmt.Sprintf("%s: %s: %s", t.Entity, t.Attribute, t.Value)
}

// Terms returns the searchable terms the triplet contributes: the entity,
// the attribute, the value, and the whole triplet as one composite term
// (entity:attribute:value). Queries produced for structured clusters use the
// composite term so an expanded query can pin down an exact feature, mirroring
// expansions like "canonproducts: category: camcorders" in the paper.
func (t Triplet) Terms() []string {
	terms := make([]string, 0, 8)
	for _, part := range []string{t.Entity, t.Attribute, t.Value} {
		for _, w := range strings.Fields(part) {
			terms = append(terms, w)
		}
	}
	terms = append(terms, t.Composite())
	return terms
}

// Composite returns the single-term encoding entity:attribute:value.
func (t Triplet) Composite() string {
	return t.Entity + ":" + t.Attribute + ":" + t.Value
}

// ParseComposite parses an entity:attribute:value composite term back into a
// Triplet. Returns false when the term is not a composite.
func ParseComposite(term string) (Triplet, bool) {
	parts := strings.SplitN(term, ":", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return Triplet{}, false
	}
	return Triplet{Entity: parts[0], Attribute: parts[1], Value: parts[2]}, true
}

// Document is a single searchable unit. For Text documents, Body holds the
// prose and Triplets is nil. For Structured documents, Triplets holds the
// features and Body holds the title.
type Document struct {
	ID       DocID
	Kind     Kind
	Title    string
	Body     string
	Triplets []Triplet

	// Score is the document's ranking score with respect to the user query
	// that retrieved it; the weighted precision/recall of Section 2 sums
	// these. It is populated by the search layer; a zero value means
	// "unranked" and evaluation falls back to uniform weights.
	Score float64
}

// Corpus is an ordered collection of documents with stable IDs.
type Corpus struct {
	docs []*Document
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return &Corpus{} }

// Add appends doc to the corpus, assigns its ID, and returns it.
func (c *Corpus) Add(doc *Document) DocID {
	doc.ID = DocID(len(c.docs))
	c.docs = append(c.docs, doc)
	return doc.ID
}

// AddText is a convenience for adding a prose document.
func (c *Corpus) AddText(title, body string) DocID {
	return c.Add(&Document{Kind: Text, Title: title, Body: body})
}

// AddStructured is a convenience for adding a triplet document.
func (c *Corpus) AddStructured(title string, triplets []Triplet) DocID {
	return c.Add(&Document{Kind: Structured, Title: title, Triplets: triplets})
}

// Get returns the document with the given ID, or nil when out of range.
func (c *Corpus) Get(id DocID) *Document {
	if id < 0 || int(id) >= len(c.docs) {
		return nil
	}
	return c.docs[id]
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Docs returns the documents in ID order. The slice is shared; callers must
// not mutate it.
func (c *Corpus) Docs() []*Document { return c.docs }

// FullText returns the text to analyze for indexing: title plus body for
// text documents; title plus the space-joined triplet parts for structured
// documents. Composite triplet terms are handled separately by the indexer
// (they must bypass tokenization).
func (d *Document) FullText() string {
	if d.Kind == Text {
		if d.Title == "" {
			return d.Body
		}
		return d.Title + " " + d.Body
	}
	var sb strings.Builder
	sb.WriteString(d.Title)
	for _, t := range d.Triplets {
		sb.WriteByte(' ')
		sb.WriteString(t.Entity)
		sb.WriteByte(' ')
		sb.WriteString(t.Attribute)
		sb.WriteByte(' ')
		sb.WriteString(t.Value)
	}
	return sb.String()
}

// CompositeTerms returns the composite triplet terms of a structured
// document, deduplicated and sorted. Empty for text documents.
func (d *Document) CompositeTerms() []string {
	if len(d.Triplets) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(d.Triplets))
	for _, t := range d.Triplets {
		seen[t.Composite()] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for term := range seen {
		out = append(out, term)
	}
	sort.Strings(out)
	return out
}

// DocSet is a set of document IDs with the set algebra the QEC algorithms
// need (intersection with clusters, elimination sets, delta results).
type DocSet map[DocID]struct{}

// NewDocSet builds a set from ids.
func NewDocSet(ids ...DocID) DocSet {
	s := make(DocSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Contains reports membership.
func (s DocSet) Contains(id DocID) bool {
	_, ok := s[id]
	return ok
}

// Add inserts id.
func (s DocSet) Add(id DocID) { s[id] = struct{}{} }

// Remove deletes id.
func (s DocSet) Remove(id DocID) { delete(s, id) }

// Len returns the cardinality.
func (s DocSet) Len() int { return len(s) }

// Clone returns an independent copy.
func (s DocSet) Clone() DocSet {
	out := make(DocSet, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

// Intersect returns s ∩ t.
func (s DocSet) Intersect(t DocSet) DocSet {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	out := make(DocSet)
	for id := range small {
		if large.Contains(id) {
			out.Add(id)
		}
	}
	return out
}

// Union returns s ∪ t.
func (s DocSet) Union(t DocSet) DocSet {
	out := make(DocSet, len(s)+len(t))
	for id := range s {
		out.Add(id)
	}
	for id := range t {
		out.Add(id)
	}
	return out
}

// Subtract returns s \ t.
func (s DocSet) Subtract(t DocSet) DocSet {
	out := make(DocSet)
	for id := range s {
		if !t.Contains(id) {
			out.Add(id)
		}
	}
	return out
}

// IDs returns the members sorted ascending.
func (s DocSet) IDs() []DocID {
	out := make([]DocID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether s and t contain the same IDs.
func (s DocSet) Equal(t DocSet) bool {
	if len(s) != len(t) {
		return false
	}
	for id := range s {
		if !t.Contains(id) {
			return false
		}
	}
	return true
}
