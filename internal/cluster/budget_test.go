package cluster

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// tierOptions are the degradation ladder's (quality, budget, abandon)
// combinations as the serving layer applies them: T0/T1 are the plain
// quality modes, T2 is serving with restart budget 1 + aggressive
// abandonment, T3's fallback reuses T2's clustering knobs with K=1.
func tierOptions(base Options) map[string]Options {
	t1 := base
	t1.Quality = QualityServing
	t2 := t1
	t2.RestartBudget = 1
	t2.AggressiveAbandon = true
	return map[string]Options{"T0": base, "T1": t1, "T2": t2}
}

// TestTierBitIdentityPerBudgetPair pins the ladder's determinism contract:
// for a fixed (quality, restart budget, abandon) triple the clustering is a
// pure function of the seed — repeated runs are bit-identical (distortion
// compared via Float64bits), exactly as exact/serving are pinned today.
func TestTierBitIdentityPerBudgetPair(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 20)
	base := Options{K: 3, Seed: 11, PlusPlus: true, Restarts: 5}
	for tier, opts := range tierOptions(base) {
		first := KMeans(idx, ids, opts)
		for run := 0; run < 3; run++ {
			again := KMeans(idx, ids, opts)
			if math.Float64bits(again.Distortion) != math.Float64bits(first.Distortion) {
				t.Errorf("%s run %d: distortion %x, want %x", tier, run,
					math.Float64bits(again.Distortion), math.Float64bits(first.Distortion))
			}
			if fmt.Sprint(again.Clusters) != fmt.Sprint(first.Clusters) {
				t.Errorf("%s run %d: clusters diverge between identical runs", tier, run)
			}
			if again.Restarts != first.Restarts || again.TotalIterations != first.TotalIterations {
				t.Errorf("%s run %d: bookkeeping diverges (%d/%d vs %d/%d)", tier, run,
					again.Restarts, again.TotalIterations, first.Restarts, first.TotalIterations)
			}
		}
	}
}

// TestRestartBudgetCapsAfterQuality: the budget applies on top of the
// quality mode's own cap and can only lower the count.
func TestRestartBudgetCapsAfterQuality(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 12)
	cases := []struct {
		quality Quality
		budget  int
		want    int
	}{
		{QualityExact, 0, 5},   // no budget: all requested restarts
		{QualityExact, 2, 2},   // budget caps exact mode too
		{QualityServing, 0, 2}, // serving cap alone
		{QualityServing, 1, 1}, // budget under the serving cap
		{QualityServing, 9, 2}, // budget can never raise the count
	}
	for _, tc := range cases {
		cl := KMeans(idx, ids, Options{
			K: 2, Seed: 5, PlusPlus: true, Restarts: 5,
			Quality: tc.quality, RestartBudget: tc.budget,
		})
		if cl.Restarts != tc.want {
			t.Errorf("quality=%v budget=%d: restarts %d, want %d",
				tc.quality, tc.budget, cl.Restarts, tc.want)
		}
	}
}

// TestBudgetOneMatchesSingleRestart: a restart budget of 1 is exactly a
// Restarts: 1 run — same derived seed, same clustering, bit for bit.
func TestBudgetOneMatchesSingleRestart(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 15)
	base := Options{K: 3, Seed: 42, PlusPlus: true, Quality: QualityServing}
	budgeted := base
	budgeted.Restarts = 5
	budgeted.RestartBudget = 1
	budgeted.AggressiveAbandon = true // moot with one restart, set anyway (T2)
	single := base
	single.Restarts = 1
	a, b := KMeans(idx, ids, budgeted), KMeans(idx, ids, single)
	if math.Float64bits(a.Distortion) != math.Float64bits(b.Distortion) {
		t.Errorf("distortion %v vs %v", a.Distortion, b.Distortion)
	}
	if fmt.Sprint(a.Clusters) != fmt.Sprint(b.Clusters) {
		t.Error("budget-1 clustering differs from a single-restart run")
	}
}

// TestAggressiveAbandonIsDeterministic: the tightened threshold may abandon
// more restarts but must do so identically on every run, and must change
// nothing in exact mode (abandonment is off there).
func TestAggressiveAbandonIsDeterministic(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 25)
	opts := Options{
		K: 4, Seed: 3, PlusPlus: true, Restarts: 5,
		Quality: QualityServing, AggressiveAbandon: true,
	}
	first := KMeans(idx, ids, opts)
	for run := 0; run < 3; run++ {
		again := KMeans(idx, ids, opts)
		if again.AbandonedRestarts != first.AbandonedRestarts ||
			fmt.Sprint(again.Clusters) != fmt.Sprint(first.Clusters) {
			t.Fatalf("run %d: aggressive abandonment nondeterministic", run)
		}
	}
	exact := Options{K: 4, Seed: 3, PlusPlus: true, Restarts: 5, AggressiveAbandon: true}
	plain := exact
	plain.AggressiveAbandon = false
	a, b := KMeans(idx, ids, exact), KMeans(idx, ids, plain)
	if math.Float64bits(a.Distortion) != math.Float64bits(b.Distortion) {
		t.Error("AggressiveAbandon changed a QualityExact run")
	}
}

// TestContextCancellationStopsDrive: a cancelled context stops the lockstep
// driver at a round boundary — the run ends early instead of converging —
// while an attached-but-live context changes nothing.
func TestContextCancellationStopsDrive(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 30)
	base := Options{K: 3, Seed: 7, PlusPlus: true, Restarts: 4}

	full := KMeans(idx, ids, base)
	if full.TotalIterations == 0 {
		t.Fatal("full run did no iterations")
	}

	live := base
	live.Ctx = context.Background()
	withCtx := KMeans(idx, ids, live)
	if math.Float64bits(withCtx.Distortion) != math.Float64bits(full.Distortion) ||
		withCtx.TotalIterations != full.TotalIterations {
		t.Error("a live context changed the clustering")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first round
	dead := base
	dead.Ctx = ctx
	stopped := KMeans(idx, ids, dead)
	if stopped.TotalIterations != 0 {
		t.Errorf("cancelled drive ran %d iterations, want 0", stopped.TotalIterations)
	}
}
