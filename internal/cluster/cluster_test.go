package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

// abcDict is the shared vocabulary of the hand-written vector tests.
func abcDict() *Dict {
	return NewDict([]string{"alpha", "hi", "low", "mid", "x", "y", "z"})
}

func TestDictInternsLexicographically(t *testing.T) {
	d := NewDict([]string{"y", "x", "x", "z"})
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup)", d.Len())
	}
	for i, term := range []string{"x", "y", "z"} {
		id, ok := d.ID(term)
		if !ok || id != int32(i) {
			t.Errorf("ID(%q) = %d,%v, want %d", term, id, ok, i)
		}
		if d.Term(int32(i)) != term {
			t.Errorf("Term(%d) = %q, want %q", i, d.Term(int32(i)), term)
		}
	}
	if _, ok := d.ID("missing"); ok {
		t.Error("ID of unknown term reported present")
	}
}

func TestVectorCosine(t *testing.T) {
	d := abcDict()
	a := d.Vector(map[string]float64{"x": 1, "y": 0})
	b := d.Vector(map[string]float64{"x": 1, "y": 0})
	if got := a.Cosine(b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine identical = %v, want 1", got)
	}
	c := d.Vector(map[string]float64{"z": 3})
	if got := a.Cosine(c); got != 0 {
		t.Errorf("Cosine orthogonal = %v, want 0", got)
	}
	if got := a.Cosine(d.Vector(nil)); got != 0 {
		t.Errorf("Cosine vs empty = %v, want 0", got)
	}
}

func TestVectorDotSymmetric(t *testing.T) {
	d := abcDict()
	a := d.Vector(map[string]float64{"x": 2, "y": 3})
	b := d.Vector(map[string]float64{"y": 5, "z": 7})
	if a.Dot(b) != b.Dot(a) || a.Dot(b) != 15 {
		t.Errorf("Dot = %v / %v, want 15", a.Dot(b), b.Dot(a))
	}
}

func TestVectorNorm(t *testing.T) {
	d := abcDict()
	v := d.Vector(map[string]float64{"x": 3, "y": 4})
	if got := v.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestVectorNormCacheInvalidation(t *testing.T) {
	d := abcDict()
	v := d.Vector(map[string]float64{"x": 3, "y": 4})
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v, want 5", v.Norm())
	}
	v.Scale(2)
	if got := v.Norm(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Norm after Scale = %v, want 10 (stale cache?)", got)
	}
	v.Add(d.Vector(map[string]float64{"x": 2, "z": 1}))
	want := math.Sqrt(8*8 + 8*8 + 1) // {x:6,y:8} + {x:2,z:1} = {x:8,y:8,z:1}
	if got := v.Norm(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm after Add = %v, want %v (stale cache?)", got, want)
	}
}

func TestMeanCentroid(t *testing.T) {
	d := abcDict()
	m := Mean([]*Vector{
		d.Vector(map[string]float64{"x": 2}),
		d.Vector(map[string]float64{"x": 4, "y": 2}),
	}, d.Len())
	xid, _ := d.ID("x")
	yid, _ := d.ID("y")
	if m.Weight(xid) != 3 || m.Weight(yid) != 1 {
		t.Errorf("Mean = %v", m.ToMap(d))
	}
	if got := Mean(nil, d.Len()); got.Len() != 0 {
		t.Errorf("Mean(nil) = %v", got.ToMap(d))
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	d := abcDict()
	a := d.Vector(map[string]float64{"x": 1})
	b := a.Clone()
	b.Scale(9)
	xid, _ := d.ID("x")
	if a.Weight(xid) != 1 {
		t.Error("Clone shares storage")
	}
	if b.Weight(xid) != 9 {
		t.Error("Clone did not copy weights")
	}
}

func TestTopTerms(t *testing.T) {
	d := abcDict()
	v := d.Vector(map[string]float64{"low": 1, "hi": 5, "mid": 3, "alpha": 3})
	got := v.TopTerms(d, 3)
	// ties broken alphabetically: alpha before mid
	want := []string{"hi", "alpha", "mid"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopTerms = %v, want %v", got, want)
		}
	}
	if n := len(v.TopTerms(d, 100)); n != 4 {
		t.Errorf("TopTerms(100) len = %d, want 4", n)
	}
}

// mapDot, mapNorm, mapCosine are the pre-interning reference implementation:
// map-backed vectors, accumulation over lexicographically sorted terms. The
// property tests below pin the merge-join implementation against them.
func mapDot(a, b map[string]float64) float64 {
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	terms := make([]string, 0, len(small))
	for t := range small {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	s := 0.0
	for _, t := range terms {
		if w2, ok := large[t]; ok {
			s += small[t] * w2
		}
	}
	return s
}

func mapNorm(a map[string]float64) float64 {
	terms := make([]string, 0, len(a))
	for t := range a {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	s := 0.0
	for _, t := range terms {
		s += a[t] * a[t]
	}
	return math.Sqrt(s)
}

func mapCosine(a, b map[string]float64) float64 {
	na, nb := mapNorm(a), mapNorm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return mapDot(a, b) / (na * nb)
}

// TestCosineMatchesMapReference is the refactor's compatibility property:
// on randomized sparse vectors, the interned merge-join cosine agrees with
// the old map-based cosine to 1e-12 (in fact bit-exactly, since both
// accumulate in sorted term order).
func TestCosineMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vocab := make([]string, 64)
	for i := range vocab {
		vocab[i] = string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	randSparse := func() map[string]float64 {
		m := map[string]float64{}
		nnz := rng.Intn(40)
		for j := 0; j < nnz; j++ {
			m[vocab[rng.Intn(len(vocab))]] = math.Floor(rng.Float64()*1000)/64 + 1
		}
		return m
	}
	d := NewDict(vocab)
	for trial := 0; trial < 2000; trial++ {
		a, b := randSparse(), randSparse()
		va, vb := d.Vector(a), d.Vector(b)
		if got, want := va.Dot(vb), mapDot(a, b); got != want {
			t.Fatalf("trial %d: Dot = %v, map reference %v", trial, got, want)
		}
		if got, want := va.Norm(), mapNorm(a); got != want {
			t.Fatalf("trial %d: Norm = %v, map reference %v", trial, got, want)
		}
		got, want := va.Cosine(vb), mapCosine(a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Cosine = %v, map reference %v (Δ %g)",
				trial, got, want, got-want)
		}
	}
}

// twoTopicIndex builds a corpus with two clearly separated vocabularies.
func twoTopicIndex(t *testing.T, perTopic int) (*index.Index, []document.DocID, map[document.DocID]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	fruitWords := []string{"fruit", "orchard", "juice", "tree", "harvest", "pie"}
	techWords := []string{"computer", "iphone", "store", "software", "mac", "laptop"}
	c := document.NewCorpus()
	labels := map[document.DocID]string{}
	var ids []document.DocID
	for i := 0; i < perTopic; i++ {
		text := "apple"
		for j := 0; j < 5; j++ {
			text += " " + fruitWords[rng.Intn(len(fruitWords))]
		}
		id := c.AddText("", text)
		labels[id] = "fruit"
		ids = append(ids, id)
	}
	for i := 0; i < perTopic; i++ {
		text := "apple"
		for j := 0; j < 5; j++ {
			text += " " + techWords[rng.Intn(len(techWords))]
		}
		id := c.AddText("", text)
		labels[id] = "tech"
		ids = append(ids, id)
	}
	return index.Build(c, analysis.Simple()), ids, labels
}

func TestVectorFromDocMatchesIndex(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 4)
	d := DictForDocs(idx, ids)
	for _, id := range ids {
		v := d.VectorFromDoc(idx, id)
		terms := idx.DocTerms(id)
		if v.Len() != len(terms) {
			t.Fatalf("doc %d: %d components for %d terms", id, v.Len(), len(terms))
		}
		for _, term := range terms {
			tid, ok := d.ID(term)
			if !ok {
				t.Fatalf("doc %d: term %q missing from dict", id, term)
			}
			if got, want := v.Weight(tid), float64(idx.TermFreq(id, term)); got != want {
				t.Errorf("doc %d term %q: weight %v, want TF %v", id, term, got, want)
			}
		}
	}
}

func TestKMeansSeparatesTopics(t *testing.T) {
	idx, ids, labels := twoTopicIndex(t, 15)
	cl := KMeans(idx, ids, Options{K: 2, Seed: 1, PlusPlus: true})
	if cl.K() != 2 {
		t.Fatalf("K = %d, want 2", cl.K())
	}
	if p := Purity(cl, labels); p < 0.95 {
		t.Errorf("purity = %v, want >= 0.95", p)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 10)
	a := KMeans(idx, ids, Options{K: 3, Seed: 42})
	b := KMeans(idx, ids, Options{K: 3, Seed: 42})
	if a.K() != b.K() {
		t.Fatalf("nondeterministic K: %d vs %d", a.K(), b.K())
	}
	for i := range a.Clusters {
		if len(a.Clusters[i]) != len(b.Clusters[i]) {
			t.Fatal("nondeterministic cluster sizes")
		}
		for j := range a.Clusters[i] {
			if a.Clusters[i][j] != b.Clusters[i][j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

// sameClustering compares two clusterings bit for bit (membership, order,
// distortion bits, iteration count).
func sameClustering(t *testing.T, label string, a, b *Clustering) {
	t.Helper()
	if a.K() != b.K() {
		t.Fatalf("%s: K = %d vs %d", label, a.K(), b.K())
	}
	if math.Float64bits(a.Distortion) != math.Float64bits(b.Distortion) {
		t.Fatalf("%s: distortion %v (bits %x) vs %v (bits %x)", label,
			a.Distortion, math.Float64bits(a.Distortion),
			b.Distortion, math.Float64bits(b.Distortion))
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	for i := range a.Clusters {
		if len(a.Clusters[i]) != len(b.Clusters[i]) {
			t.Fatalf("%s: cluster %d size %d vs %d", label, i,
				len(a.Clusters[i]), len(b.Clusters[i]))
		}
		for j := range a.Clusters[i] {
			if a.Clusters[i][j] != b.Clusters[i][j] {
				t.Fatalf("%s: cluster %d member %d: %d vs %d", label, i, j,
					a.Clusters[i][j], b.Clusters[i][j])
			}
		}
	}
	for id, c := range a.Assign {
		if b.Assign[id] != c {
			t.Fatalf("%s: Assign[%d] = %d vs %d", label, id, c, b.Assign[id])
		}
	}
}

// TestKMeansSerialVsConcurrentIdentical is the determinism guarantee of the
// parallel overhaul: k-means with Restarts>1 returns an identical clustering
// whether restarts (and the assignment / D² scans inside them) run on one
// worker or many.
func TestKMeansSerialVsConcurrentIdentical(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 25)
	opts := Options{K: 4, Seed: 9, PlusPlus: true, Restarts: 6}
	run := func(workers int32) *Clustering {
		workerOverride.Store(workers)
		defer workerOverride.Store(0)
		return KMeans(idx, ids, opts)
	}
	serial := run(1)
	for _, w := range []int32{2, 3, 8} {
		sameClustering(t, "workers="+string(rune('0'+w)), serial, run(w))
	}
	// And the default worker count (whatever GOMAXPROCS is here).
	sameClustering(t, "workers=default", serial, KMeans(idx, ids, opts))
}

func TestKMeansPartitionInvariants(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 12)
	cl := KMeans(idx, ids, Options{K: 4, Seed: 5, PlusPlus: true})
	seen := document.NewDocSet()
	for ord, cluster := range cl.Clusters {
		if len(cluster) == 0 {
			t.Error("empty cluster survived")
		}
		for _, id := range cluster {
			if seen.Contains(id) {
				t.Errorf("doc %d in two clusters", id)
			}
			seen.Add(id)
			if cl.Assign[id] != ord {
				t.Errorf("Assign[%d] = %d, want %d", id, cl.Assign[id], ord)
			}
		}
	}
	if seen.Len() != len(ids) {
		t.Errorf("clustered %d docs, want %d", seen.Len(), len(ids))
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 2) // 4 docs
	cl := KMeans(idx, ids, Options{K: 10, Seed: 1})
	if cl.K() > 4 {
		t.Errorf("K = %d with only 4 docs", cl.K())
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	idx, _, _ := twoTopicIndex(t, 2)
	cl := KMeans(idx, nil, Options{K: 3})
	if cl.K() != 0 {
		t.Errorf("K = %d, want 0", cl.K())
	}
}

func TestKMeansSingleDoc(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 1)
	cl := KMeans(idx, ids[:1], Options{K: 3, Seed: 1})
	if cl.K() != 1 || len(cl.Clusters[0]) != 1 {
		t.Errorf("K = %d", cl.K())
	}
}

func TestClusteringSets(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 5)
	cl := KMeans(idx, ids, Options{K: 2, Seed: 9})
	sets := cl.Sets()
	if len(sets) != cl.K() {
		t.Fatalf("Sets len = %d", len(sets))
	}
	total := 0
	for i, s := range sets {
		if s.Len() != len(cl.Clusters[i]) {
			t.Error("set size mismatch")
		}
		total += s.Len()
	}
	if total != len(ids) {
		t.Error("sets do not partition input")
	}
}

func TestAgglomerativeSeparatesTopics(t *testing.T) {
	idx, ids, labels := twoTopicIndex(t, 10)
	// Complete linkage is sensitive to outlier pairs on small noisy data;
	// hold it to a looser bar than average/single.
	minPurity := map[Linkage]float64{
		AverageLinkage: 0.9, SingleLinkage: 0.9, CompleteLinkage: 0.7,
	}
	for link, min := range minPurity {
		cl := Agglomerative(idx, ids, 2, link)
		if cl.K() != 2 {
			t.Fatalf("linkage %d: K = %d, want 2", link, cl.K())
		}
		if p := Purity(cl, labels); p < min {
			t.Errorf("linkage %d: purity = %v, want >= %v", link, p, min)
		}
	}
}

func TestAgglomerativeEdgeCases(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 2)
	if cl := Agglomerative(idx, nil, 2, AverageLinkage); cl.K() != 0 {
		t.Error("empty input should give empty clustering")
	}
	if cl := Agglomerative(idx, ids, 0, AverageLinkage); cl.K() != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", cl.K())
	}
	if cl := Agglomerative(idx, ids, 100, AverageLinkage); cl.K() != len(ids) {
		t.Errorf("k>n should give n singletons, got %d", cl.K())
	}
}

func TestPurityPerfectAndWorst(t *testing.T) {
	cl := &Clustering{
		Clusters: [][]document.DocID{{0, 1}, {2, 3}},
		Assign:   map[document.DocID]int{0: 0, 1: 0, 2: 1, 3: 1},
	}
	perfect := map[document.DocID]string{0: "a", 1: "a", 2: "b", 3: "b"}
	if p := Purity(cl, perfect); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	mixed := map[document.DocID]string{0: "a", 1: "b", 2: "a", 3: "b"}
	if p := Purity(cl, mixed); p != 0.5 {
		t.Errorf("mixed purity = %v", p)
	}
	empty := &Clustering{}
	if p := Purity(empty, nil); p != 0 {
		t.Errorf("empty purity = %v", p)
	}
}

func TestSilhouetteSeparatedHigherThanRandom(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 10)
	good := KMeans(idx, ids, Options{K: 2, Seed: 1, PlusPlus: true})
	s := Silhouette(idx, good)
	if s <= 0.1 {
		t.Errorf("silhouette of separated clustering = %v, want > 0.1", s)
	}
	// Single cluster: silhouette defined as 0.
	one := Agglomerative(idx, ids, 1, AverageLinkage)
	if got := Silhouette(idx, one); got != 0 {
		t.Errorf("silhouette with k=1 = %v, want 0", got)
	}
}

// Property: cosine similarity is symmetric and within [0,1] for TF vectors.
func TestCosinePropertyBounds(t *testing.T) {
	d := NewDict([]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	prop := func(aw, bw []uint8) bool {
		am, bm := map[string]float64{}, map[string]float64{}
		for i, w := range aw {
			am[string(rune('a'+i%8))] = float64(w%16) + 1
		}
		for i, w := range bw {
			bm[string(rune('a'+i%8))] = float64(w%16) + 1
		}
		a, b := d.Vector(am), d.Vector(bm)
		s, s2 := a.Cosine(b), b.Cosine(a)
		if math.Abs(s-s2) > 1e-9 {
			return false
		}
		return s >= -1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: k-means distortion is finite and assignment is total.
func TestKMeansPropertyTotalAssignment(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 8)
	for seed := int64(0); seed < 10; seed++ {
		cl := KMeans(idx, ids, Options{K: 3, Seed: seed, PlusPlus: seed%2 == 0})
		if len(cl.Assign) != len(ids) {
			t.Fatalf("seed %d: assigned %d of %d", seed, len(cl.Assign), len(ids))
		}
		if math.IsNaN(cl.Distortion) || math.IsInf(cl.Distortion, 0) {
			t.Fatalf("seed %d: bad distortion %v", seed, cl.Distortion)
		}
	}
}

func TestKMeansRestartsPickLowestDistortion(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 12)
	single := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true})
	multi := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true, Restarts: 8})
	if multi.Distortion > single.Distortion+1e-9 {
		t.Errorf("restarts distortion %v above single run %v",
			multi.Distortion, single.Distortion)
	}
	// Restarted runs remain deterministic.
	again := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true, Restarts: 8})
	if again.Distortion != multi.Distortion || again.K() != multi.K() {
		t.Error("restarted k-means not deterministic")
	}
}
