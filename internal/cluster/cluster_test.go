package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

func TestVectorCosine(t *testing.T) {
	a := Vector{"x": 1, "y": 0}
	b := Vector{"x": 1, "y": 0}
	if got := a.Cosine(b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine identical = %v, want 1", got)
	}
	c := Vector{"z": 3}
	if got := a.Cosine(c); got != 0 {
		t.Errorf("Cosine orthogonal = %v, want 0", got)
	}
	if got := a.Cosine(Vector{}); got != 0 {
		t.Errorf("Cosine vs empty = %v, want 0", got)
	}
}

func TestVectorDotSymmetric(t *testing.T) {
	a := Vector{"x": 2, "y": 3}
	b := Vector{"y": 5, "z": 7}
	if a.Dot(b) != b.Dot(a) || a.Dot(b) != 15 {
		t.Errorf("Dot = %v / %v, want 15", a.Dot(b), b.Dot(a))
	}
}

func TestVectorNorm(t *testing.T) {
	v := Vector{"x": 3, "y": 4}
	if got := v.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestMeanCentroid(t *testing.T) {
	m := Mean([]Vector{{"x": 2}, {"x": 4, "y": 2}})
	if m["x"] != 3 || m["y"] != 1 {
		t.Errorf("Mean = %v", m)
	}
	if got := Mean(nil); len(got) != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	a := Vector{"x": 1}
	b := a.Clone()
	b["x"] = 9
	if a["x"] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestTopTerms(t *testing.T) {
	v := Vector{"low": 1, "hi": 5, "mid": 3, "alpha": 3}
	got := v.TopTerms(3)
	// ties broken alphabetically: alpha before mid
	want := []string{"hi", "alpha", "mid"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopTerms = %v, want %v", got, want)
		}
	}
	if n := len(v.TopTerms(100)); n != 4 {
		t.Errorf("TopTerms(100) len = %d, want 4", n)
	}
}

// twoTopicIndex builds a corpus with two clearly separated vocabularies.
func twoTopicIndex(t *testing.T, perTopic int) (*index.Index, []document.DocID, map[document.DocID]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	fruitWords := []string{"fruit", "orchard", "juice", "tree", "harvest", "pie"}
	techWords := []string{"computer", "iphone", "store", "software", "mac", "laptop"}
	c := document.NewCorpus()
	labels := map[document.DocID]string{}
	var ids []document.DocID
	for i := 0; i < perTopic; i++ {
		text := "apple"
		for j := 0; j < 5; j++ {
			text += " " + fruitWords[rng.Intn(len(fruitWords))]
		}
		id := c.AddText("", text)
		labels[id] = "fruit"
		ids = append(ids, id)
	}
	for i := 0; i < perTopic; i++ {
		text := "apple"
		for j := 0; j < 5; j++ {
			text += " " + techWords[rng.Intn(len(techWords))]
		}
		id := c.AddText("", text)
		labels[id] = "tech"
		ids = append(ids, id)
	}
	return index.Build(c, analysis.Simple()), ids, labels
}

func TestKMeansSeparatesTopics(t *testing.T) {
	idx, ids, labels := twoTopicIndex(t, 15)
	cl := KMeans(idx, ids, Options{K: 2, Seed: 1, PlusPlus: true})
	if cl.K() != 2 {
		t.Fatalf("K = %d, want 2", cl.K())
	}
	if p := Purity(cl, labels); p < 0.95 {
		t.Errorf("purity = %v, want >= 0.95", p)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 10)
	a := KMeans(idx, ids, Options{K: 3, Seed: 42})
	b := KMeans(idx, ids, Options{K: 3, Seed: 42})
	if a.K() != b.K() {
		t.Fatalf("nondeterministic K: %d vs %d", a.K(), b.K())
	}
	for i := range a.Clusters {
		if len(a.Clusters[i]) != len(b.Clusters[i]) {
			t.Fatal("nondeterministic cluster sizes")
		}
		for j := range a.Clusters[i] {
			if a.Clusters[i][j] != b.Clusters[i][j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

func TestKMeansPartitionInvariants(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 12)
	cl := KMeans(idx, ids, Options{K: 4, Seed: 5, PlusPlus: true})
	seen := document.NewDocSet()
	for ord, cluster := range cl.Clusters {
		if len(cluster) == 0 {
			t.Error("empty cluster survived")
		}
		for _, id := range cluster {
			if seen.Contains(id) {
				t.Errorf("doc %d in two clusters", id)
			}
			seen.Add(id)
			if cl.Assign[id] != ord {
				t.Errorf("Assign[%d] = %d, want %d", id, cl.Assign[id], ord)
			}
		}
	}
	if seen.Len() != len(ids) {
		t.Errorf("clustered %d docs, want %d", seen.Len(), len(ids))
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 2) // 4 docs
	cl := KMeans(idx, ids, Options{K: 10, Seed: 1})
	if cl.K() > 4 {
		t.Errorf("K = %d with only 4 docs", cl.K())
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	idx, _, _ := twoTopicIndex(t, 2)
	cl := KMeans(idx, nil, Options{K: 3})
	if cl.K() != 0 {
		t.Errorf("K = %d, want 0", cl.K())
	}
}

func TestKMeansSingleDoc(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 1)
	cl := KMeans(idx, ids[:1], Options{K: 3, Seed: 1})
	if cl.K() != 1 || len(cl.Clusters[0]) != 1 {
		t.Errorf("K = %d", cl.K())
	}
}

func TestClusteringSets(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 5)
	cl := KMeans(idx, ids, Options{K: 2, Seed: 9})
	sets := cl.Sets()
	if len(sets) != cl.K() {
		t.Fatalf("Sets len = %d", len(sets))
	}
	total := 0
	for i, s := range sets {
		if s.Len() != len(cl.Clusters[i]) {
			t.Error("set size mismatch")
		}
		total += s.Len()
	}
	if total != len(ids) {
		t.Error("sets do not partition input")
	}
}

func TestAgglomerativeSeparatesTopics(t *testing.T) {
	idx, ids, labels := twoTopicIndex(t, 10)
	// Complete linkage is sensitive to outlier pairs on small noisy data;
	// hold it to a looser bar than average/single.
	minPurity := map[Linkage]float64{
		AverageLinkage: 0.9, SingleLinkage: 0.9, CompleteLinkage: 0.7,
	}
	for link, min := range minPurity {
		cl := Agglomerative(idx, ids, 2, link)
		if cl.K() != 2 {
			t.Fatalf("linkage %d: K = %d, want 2", link, cl.K())
		}
		if p := Purity(cl, labels); p < min {
			t.Errorf("linkage %d: purity = %v, want >= %v", link, p, min)
		}
	}
}

func TestAgglomerativeEdgeCases(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 2)
	if cl := Agglomerative(idx, nil, 2, AverageLinkage); cl.K() != 0 {
		t.Error("empty input should give empty clustering")
	}
	if cl := Agglomerative(idx, ids, 0, AverageLinkage); cl.K() != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", cl.K())
	}
	if cl := Agglomerative(idx, ids, 100, AverageLinkage); cl.K() != len(ids) {
		t.Errorf("k>n should give n singletons, got %d", cl.K())
	}
}

func TestPurityPerfectAndWorst(t *testing.T) {
	cl := &Clustering{
		Clusters: [][]document.DocID{{0, 1}, {2, 3}},
		Assign:   map[document.DocID]int{0: 0, 1: 0, 2: 1, 3: 1},
	}
	perfect := map[document.DocID]string{0: "a", 1: "a", 2: "b", 3: "b"}
	if p := Purity(cl, perfect); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	mixed := map[document.DocID]string{0: "a", 1: "b", 2: "a", 3: "b"}
	if p := Purity(cl, mixed); p != 0.5 {
		t.Errorf("mixed purity = %v", p)
	}
	empty := &Clustering{}
	if p := Purity(empty, nil); p != 0 {
		t.Errorf("empty purity = %v", p)
	}
}

func TestSilhouetteSeparatedHigherThanRandom(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 10)
	good := KMeans(idx, ids, Options{K: 2, Seed: 1, PlusPlus: true})
	s := Silhouette(idx, good)
	if s <= 0.1 {
		t.Errorf("silhouette of separated clustering = %v, want > 0.1", s)
	}
	// Single cluster: silhouette defined as 0.
	one := Agglomerative(idx, ids, 1, AverageLinkage)
	if got := Silhouette(idx, one); got != 0 {
		t.Errorf("silhouette with k=1 = %v, want 0", got)
	}
}

// Property: cosine similarity is symmetric and within [0,1] for TF vectors.
func TestCosinePropertyBounds(t *testing.T) {
	prop := func(aw, bw []uint8) bool {
		a, b := Vector{}, Vector{}
		for i, w := range aw {
			a[string(rune('a'+i%8))] = float64(w%16) + 1
		}
		for i, w := range bw {
			b[string(rune('a'+i%8))] = float64(w%16) + 1
		}
		s, s2 := a.Cosine(b), b.Cosine(a)
		if math.Abs(s-s2) > 1e-9 {
			return false
		}
		return s >= -1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: k-means distortion is finite and assignment is total.
func TestKMeansPropertyTotalAssignment(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 8)
	for seed := int64(0); seed < 10; seed++ {
		cl := KMeans(idx, ids, Options{K: 3, Seed: seed, PlusPlus: seed%2 == 0})
		if len(cl.Assign) != len(ids) {
			t.Fatalf("seed %d: assigned %d of %d", seed, len(cl.Assign), len(ids))
		}
		if math.IsNaN(cl.Distortion) || math.IsInf(cl.Distortion, 0) {
			t.Fatalf("seed %d: bad distortion %v", seed, cl.Distortion)
		}
	}
}

func TestKMeansRestartsPickLowestDistortion(t *testing.T) {
	idx, ids, _ := twoTopicIndex(t, 12)
	single := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true})
	multi := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true, Restarts: 8})
	if multi.Distortion > single.Distortion+1e-9 {
		t.Errorf("restarts distortion %v above single run %v",
			multi.Distortion, single.Distortion)
	}
	// Restarted runs remain deterministic.
	again := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true, Restarts: 8})
	if again.Distortion != multi.Distortion || again.K() != multi.K() {
		t.Error("restarted k-means not deterministic")
	}
}
