package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/document"
)

// The golden file pins clustering outputs of the pre-interning, map-backed
// implementation. The interned-vector rewrite must reproduce every case
// bit-for-bit (distortion is compared via Float64bits): the dictionary
// assigns term IDs in lexicographic order, so merge-join accumulation visits
// terms in exactly the order the old sorted-map accumulation did.
//
// Regenerate with QEC_UPDATE_GOLDEN=1 go test ./internal/cluster -run Golden
// (only legitimate when the clustering semantics intentionally change).

const goldenPath = "testdata/kmeans_golden.json"

type goldenCase struct {
	Name       string `json:"name"`
	PerTopic   int    `json:"per_topic"`
	K          int    `json:"k"`
	Seed       int64  `json:"seed"`
	PlusPlus   bool   `json:"plus_plus"`
	Restarts   int    `json:"restarts"`
	Linkage    int    `json:"linkage"` // -1 = k-means
	Clusters   [][]document.DocID
	Distortion uint64 `json:"distortion_bits"`
	Iterations int    `json:"iterations"`
}

func goldenCases() []goldenCase {
	cases := []goldenCase{
		{Name: "small-uniform", PerTopic: 6, K: 2, Seed: 1, Linkage: -1},
		{Name: "small-plusplus", PerTopic: 6, K: 3, Seed: 7, PlusPlus: true, Linkage: -1},
		{Name: "mid-plusplus", PerTopic: 15, K: 3, Seed: 42, PlusPlus: true, Linkage: -1},
		{Name: "mid-restarts", PerTopic: 15, K: 4, Seed: 5, PlusPlus: true, Restarts: 6, Linkage: -1},
		{Name: "large-restarts", PerTopic: 40, K: 5, Seed: 11, PlusPlus: true, Restarts: 4, Linkage: -1},
		{Name: "k-exceeds-n", PerTopic: 2, K: 9, Seed: 3, Linkage: -1},
		{Name: "agglo-average", PerTopic: 8, K: 2, Seed: 0, Linkage: int(AverageLinkage)},
		{Name: "agglo-single", PerTopic: 8, K: 3, Seed: 0, Linkage: int(SingleLinkage)},
		{Name: "agglo-complete", PerTopic: 8, K: 2, Seed: 0, Linkage: int(CompleteLinkage)},
	}
	return cases
}

func (g *goldenCase) run(t *testing.T) *Clustering {
	t.Helper()
	idx, ids, _ := twoTopicIndex(t, g.PerTopic)
	if g.Linkage >= 0 {
		return Agglomerative(idx, ids, g.K, Linkage(g.Linkage))
	}
	return KMeans(idx, ids, Options{
		K: g.K, Seed: g.Seed, PlusPlus: g.PlusPlus, Restarts: g.Restarts,
	})
}

// TestQualityExactStillMatchesGolden is the quality-knob regression pin: an
// explicit Quality: QualityExact must reproduce the golden file bit for bit
// (the zero value already is exact; this guards the knob's default and the
// dense-centroid path against drift).
func TestQualityExactStillMatchesGolden(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		if w.Linkage >= 0 {
			continue // agglomerative has no quality knob
		}
		idx, ids, _ := twoTopicIndex(t, w.PerTopic)
		cl := KMeans(idx, ids, Options{
			K: w.K, Seed: w.Seed, PlusPlus: w.PlusPlus, Restarts: w.Restarts,
			Quality: QualityExact,
		})
		if math.Float64bits(cl.Distortion) != w.Distortion {
			t.Errorf("%s: distortion bits %x, golden %x", w.Name,
				math.Float64bits(cl.Distortion), w.Distortion)
		}
		if cl.Iterations != w.Iterations {
			t.Errorf("%s: iterations %d, golden %d", w.Name, cl.Iterations, w.Iterations)
		}
		if fmt.Sprint(cl.Clusters) != fmt.Sprint(w.Clusters) {
			t.Errorf("%s: clusters diverge from golden", w.Name)
		}
	}
}

func TestClusteringMatchesPrePRGolden(t *testing.T) {
	cases := goldenCases()
	for i := range cases {
		g := &cases[i]
		cl := g.run(t)
		g.Clusters = cl.Clusters
		g.Distortion = math.Float64bits(cl.Distortion)
		g.Iterations = cl.Iterations
	}
	if os.Getenv("QEC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(cases))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with QEC_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("golden has %d cases, code has %d", len(want), len(cases))
	}
	for i, g := range cases {
		w := want[i]
		if g.Name != w.Name {
			t.Fatalf("case %d: name %q vs golden %q", i, g.Name, w.Name)
		}
		if g.Iterations != w.Iterations {
			t.Errorf("%s: iterations = %d, golden %d", g.Name, g.Iterations, w.Iterations)
		}
		if g.Distortion != w.Distortion {
			t.Errorf("%s: distortion bits = %x (%v), golden %x (%v)", g.Name,
				g.Distortion, math.Float64frombits(g.Distortion),
				w.Distortion, math.Float64frombits(w.Distortion))
		}
		if fmt.Sprint(g.Clusters) != fmt.Sprint(w.Clusters) {
			t.Errorf("%s: clusters = %v, golden %v", g.Name, g.Clusters, w.Clusters)
		}
	}
}
