package cluster

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

// randomCorpus builds a seeded multi-topic corpus for the quality property
// tests — noisier and more varied than twoTopicIndex so the bound-pruning
// and abandonment paths see realistic cluster geometry.
func randomCorpus(seed int64, n int) (*index.Index, []document.DocID) {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 300)
	for i := range vocab {
		vocab[i] = "w" + strconv.Itoa(i)
	}
	c := document.NewCorpus()
	ids := make([]document.DocID, n)
	topics := 3 + int(seed%3)
	for i := 0; i < n; i++ {
		topic := (i % topics) * (len(vocab) / topics)
		text := ""
		for j := 0; j < 10+rng.Intn(30); j++ {
			text += " " + vocab[topic+rng.Intn(len(vocab)/topics)]
		}
		ids[i] = c.AddText("", text)
	}
	return index.Build(c, analysis.Simple()), ids
}

// vecsOf materializes the global-TermID vectors of a corpus.
func vecsOf(idx *index.Index, ids []document.DocID) []*Vector {
	vecs := make([]*Vector, len(ids))
	for i, id := range ids {
		vecs[i] = VectorFromDocGlobal(idx, id)
	}
	return vecs
}

// TestPrunedAssignmentMatchesUnpruned is the losslessness property of the
// Hamerly single-bound skip: on random corpora, a run with bound-pruned
// assignment produces the identical final clustering — membership,
// iteration count and bit-exact distortion — as the same run with every
// distance computed. (Abandonment is off in both arms so only the pruning
// differs.)
func TestPrunedAssignmentMatchesUnpruned(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		idx, ids := randomCorpus(seed, 40+int(seed%7)*25)
		vecs := vecsOf(idx, ids)
		opts := Options{K: 2 + int(seed%4), Seed: seed, PlusPlus: seed%2 == 0, MaxIter: 50}
		pruned := kmeansDrive(idx.NumTerms(), vecs, ids, opts, 2, true, false)
		full := kmeansDrive(idx.NumTerms(), vecs, ids, opts, 2, false, false)
		sameClustering(t, "seed="+strconv.FormatInt(seed, 10), full, pruned)
	}
}

// TestEarlyAbandonNeverBeatsFull pins the abandonment contract: the serving
// driver picks its winner from a subset of the identical restarts, so its
// distortion is never below the full driver's, and on most corpora (all but
// the rare non-monotone trajectories) it is exactly equal.
func TestEarlyAbandonNeverBeatsFull(t *testing.T) {
	equal := 0
	const trials = 25
	for seed := int64(0); seed < trials; seed++ {
		idx, ids := randomCorpus(seed, 60)
		vecs := vecsOf(idx, ids)
		opts := Options{K: 4, Seed: seed, PlusPlus: true, MaxIter: 50}
		abandoning := kmeansDrive(idx.NumTerms(), vecs, ids, opts, 2, true, true)
		full := kmeansDrive(idx.NumTerms(), vecs, ids, opts, 2, true, false)
		if abandoning.Distortion < full.Distortion {
			t.Fatalf("seed %d: abandoning run distortion %v below full %v",
				seed, abandoning.Distortion, full.Distortion)
		}
		if math.Float64bits(abandoning.Distortion) == math.Float64bits(full.Distortion) {
			equal++
		}
	}
	// The delta should be the exception, not the rule (empirically ~5% of
	// corpora); a collapse here means abandonment fires far too eagerly.
	if equal < trials*3/4 {
		t.Fatalf("abandonment changed the winner on %d of %d corpora", trials-equal, trials)
	}
}

// TestQualityModesDeterministicAcrossRunsAndWorkers is the per-mode
// determinism contract: for a fixed seed, each quality mode returns the
// identical clustering on every run and for every worker count (lockstep
// rounds make abandonment timing-independent).
func TestQualityModesDeterministicAcrossRunsAndWorkers(t *testing.T) {
	idx, ids := randomCorpus(7, 120)
	for _, q := range []Quality{QualityExact, QualityServing} {
		opts := Options{K: 4, Seed: 11, PlusPlus: true, Restarts: 5, Quality: q}
		ref := KMeans(idx, ids, opts)
		for run := 0; run < 3; run++ {
			sameClustering(t, q.String()+" rerun", ref, KMeans(idx, ids, opts))
		}
		for _, w := range []int32{1, 2, 5} {
			workerOverride.Store(w)
			cl := KMeans(idx, ids, opts)
			workerOverride.Store(0)
			sameClustering(t, q.String()+" workers="+strconv.Itoa(int(w)), ref, cl)
		}
	}
}

// TestServingModeFewerRestartsAndConverges sanity-checks the serving trade:
// the mode still returns a valid partition of the input.
func TestServingModeFewerRestartsAndConverges(t *testing.T) {
	idx, ids := randomCorpus(3, 90)
	cl := KMeans(idx, ids, Options{K: 3, Seed: 5, PlusPlus: true, Restarts: 5,
		Quality: QualityServing})
	if len(cl.Assign) != len(ids) {
		t.Fatalf("assigned %d of %d", len(cl.Assign), len(ids))
	}
	seen := document.NewDocSet()
	for ord, cluster := range cl.Clusters {
		if len(cluster) == 0 {
			t.Error("empty cluster survived")
		}
		for _, id := range cluster {
			if seen.Contains(id) {
				t.Errorf("doc %d in two clusters", id)
			}
			seen.Add(id)
			if cl.Assign[id] != ord {
				t.Errorf("Assign[%d] = %d, want %d", id, cl.Assign[id], ord)
			}
		}
	}
	if math.IsNaN(cl.Distortion) || math.IsInf(cl.Distortion, 0) {
		t.Fatalf("bad distortion %v", cl.Distortion)
	}
}

// TestQualityStringNames pins the wire names of the quality modes.
func TestQualityStringNames(t *testing.T) {
	if QualityExact.String() != "exact" || QualityServing.String() != "serving" {
		t.Fatalf("quality names: %q / %q", QualityExact, QualityServing)
	}
}

// TestDenseCentroidMatchesSparseMean pins the dense centroid update against
// the exported sparse Mean: same support, same weights, same norm, bit for
// bit (setMean documents itself as bit-identical to Mean).
func TestDenseCentroidMatchesSparseMean(t *testing.T) {
	idx, ids := randomCorpus(13, 30)
	vecs := vecsOf(idx, ids)
	dim := idx.NumTerms()
	c := &centroid{vals: getDenseVals(dim)}
	c.setFromVector(vecs[0]) // occupy some support to exercise the clear path
	st := new(runState)
	c.setMean(vecs, &st.scratch, false)
	want := Mean(vecs, dim)
	if len(c.support) != want.Len() {
		t.Fatalf("support %d vs Mean %d", len(c.support), want.Len())
	}
	for i, id := range want.ids {
		if c.support[i] != id {
			t.Fatalf("support[%d] = %d, want %d", i, c.support[i], id)
		}
		if math.Float64bits(c.vals[id]) != math.Float64bits(want.ws[i]) {
			t.Fatalf("weight[%d] = %v, want %v", id, c.vals[id], want.ws[i])
		}
	}
	if math.Float64bits(c.norm) != math.Float64bits(want.Norm()) {
		t.Fatalf("norm %v vs %v", c.norm, want.Norm())
	}
	// And every cell outside the support is exactly zero — the gather-dot
	// bit-identity argument depends on it.
	onSupport := make(map[int32]bool, len(c.support))
	for _, id := range c.support {
		onSupport[id] = true
	}
	for id, v := range c.vals {
		if !onSupport[int32(id)] && v != 0 {
			t.Fatalf("cell %d outside support holds %v", id, v)
		}
	}
}
