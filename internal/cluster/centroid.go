package cluster

import (
	"math"
	"slices"
	"sync"

	"repro/internal/termdict"
)

// centroid is a k-means centroid in dense form: a vocabulary-sized []float64
// indexed by global TermID, plus the sorted support (the IDs of its non-zero
// cells) and the cached Euclidean norm. Points stay sparse; with the centroid
// dense, a point·centroid dot product is a gather loop over the point's IDs —
// no merge-join, no branches — which is what makes assignment cheap when
// centroid supports grow to the union of their cluster's vocabularies.
//
// Bit-identity with the sparse merge-join implementation: the gather visits
// the point's IDs ascending; IDs the sparse merge-join would skip (absent
// from the centroid) read an exact 0.0 from the dense array, and adding
// w·0 = +0.0 to a non-negative partial sum never changes its bits. All cells
// outside support are kept at exactly 0.0 (cleared on every update), so the
// gather's sum equals the merge-join's sum bit for bit.
type centroid struct {
	vals    []float64
	support []int32
	norm    float64
}

// denseValsPool recycles the vocabulary-sized value arrays across runs so a
// serving engine does not allocate (and zero) k·restarts·|vocab| floats per
// Expand. Invariant: every pooled array is entirely zero (release clears the
// support cells before putting it back).
var denseValsPool sync.Pool

// getDenseVals returns an all-zero []float64 of length dim.
func getDenseVals(dim int) []float64 {
	if v, ok := denseValsPool.Get().(*[]float64); ok && cap(*v) >= dim {
		return (*v)[:dim]
	}
	return make([]float64, dim)
}

// release zeroes the centroid's support cells and returns the value array to
// the pool, restoring the all-zero invariant.
func (c *centroid) release() {
	for _, id := range c.support {
		c.vals[id] = 0
	}
	v := c.vals[:cap(c.vals)]
	c.vals = nil
	denseValsPool.Put(&v)
}

// setFromVector scatters a sparse point into the centroid (the seeding step:
// initial centroids are copies of points). The norm carries over from the
// point's construction-time cache, exactly as Clone used to carry it.
func (c *centroid) setFromVector(v *Vector) {
	for _, id := range c.support {
		c.vals[id] = 0
	}
	c.support = append(c.support[:0], v.ids...)
	for i, id := range v.ids {
		c.vals[id] = v.ws[i]
	}
	c.norm = v.Norm()
}

// dotVec gathers the dot product point·centroid over the point's IDs in
// ascending order (see the bit-identity note on centroid).
func (c *centroid) dotVec(v *Vector) float64 {
	s := 0.0
	vals := c.vals
	for i, id := range v.ids {
		s += v.ws[i] * vals[id]
	}
	return s
}

// cosDist is 1 − cosine(point, centroid), the distance k-means minimizes —
// the same arithmetic as Vector.CosineDistance (empty operands score
// similarity 0, distance 1).
func (c *centroid) cosDist(v *Vector) float64 {
	nv := v.Norm()
	if nv == 0 || c.norm == 0 {
		return 1
	}
	return 1 - c.dotVec(v)/(nv*c.norm)
}

// setMean recomputes the centroid as the mean of vs, bit-identical to
// cluster.Mean: components accumulate in input order over the epoch-stamped
// scratch (first touch zero-initializes, like a zeroed buffer), then emit in
// ascending ID order scaled by 1/len(vs), with the norm accumulated in that
// same ascending order. When drift is true it also returns the chord-space
// distance ‖old/‖old‖ − new/‖new‖‖ = √(2·(1−cos(old,new))) between the old
// and new centroid directions — the bound Hamerly pruning needs — computed
// against the old cells before they are cleared. vs must be non-empty.
func (c *centroid) setMean(vs []*Vector, s *termdict.DenseScratch, drift bool) float64 {
	s.Reset(len(c.vals))
	for _, v := range vs {
		for i, id := range v.ids {
			s.Add(id, v.ws[i])
		}
	}
	touched := s.Touched
	slices.Sort(touched)
	f := 1 / float64(len(vs))

	d := 0.0
	if drift {
		// cos(old, new) via a gather of old cells at the new support (cells
		// outside either support contribute 0), before the old cells vanish.
		dot, newNorm := 0.0, 0.0
		for _, id := range touched {
			w := s.Vals[id] * f
			dot += w * c.vals[id]
			newNorm += w * w
		}
		newNorm = math.Sqrt(newNorm)
		if c.norm == 0 || newNorm == 0 {
			d = 2 // maximal chord distance between unit vectors: sound bound
		} else {
			cs := dot / (c.norm * newNorm)
			if diff := 2 * (1 - cs); diff > 0 {
				d = math.Sqrt(diff)
			}
		}
	}

	for _, id := range c.support {
		c.vals[id] = 0
	}
	c.support = append(c.support[:0], touched...)
	norm := 0.0
	for _, id := range c.support {
		w := s.Vals[id] * f
		c.vals[id] = w
		norm += w * w
	}
	c.norm = math.Sqrt(norm)
	return d
}
