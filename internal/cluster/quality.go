package cluster

import (
	"repro/internal/document"
	"repro/internal/index"
)

// Purity measures agreement between a clustering and ground-truth labels:
// the fraction of documents assigned to the majority label of their cluster.
// Used by dataset tests to confirm the synthetic corpora cluster the way the
// paper's corpora do (categories / senses separate cleanly).
func Purity(c *Clustering, labels map[document.DocID]string) float64 {
	total := 0
	agree := 0
	for _, ids := range c.Clusters {
		counts := map[string]int{}
		for _, id := range ids {
			counts[labels[id]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agree += best
		total += len(ids)
	}
	if total == 0 {
		return 0
	}
	return float64(agree) / float64(total)
}

// Silhouette returns the mean silhouette coefficient of the clustering under
// cosine distance, in [-1, 1]; higher is better separated. Documents in
// singleton clusters contribute 0.
func Silhouette(idx *index.Index, c *Clustering) float64 {
	var all []document.DocID
	for _, ids := range c.Clusters {
		all = append(all, ids...)
	}
	if len(all) < 2 || c.K() < 2 {
		return 0
	}
	// Corpus-global TermID vectors: same distances as the per-run Dict this
	// used to intern (both ID orders are lexicographic), no string work.
	vecs := make(map[document.DocID]*Vector, len(all))
	for _, id := range all {
		vecs[id] = VectorFromDocGlobal(idx, id)
	}
	meanDist := func(id document.DocID, ids []document.DocID) float64 {
		total, n := 0.0, 0
		for _, other := range ids {
			if other == id {
				continue
			}
			total += vecs[id].CosineDistance(vecs[other])
			n++
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	sum := 0.0
	for _, id := range all {
		own := c.Assign[id]
		if len(c.Clusters[own]) < 2 {
			continue // silhouette of a singleton is defined as 0
		}
		a := meanDist(id, c.Clusters[own])
		b := -1.0
		for ci, ids := range c.Clusters {
			if ci == own {
				continue
			}
			if d := meanDist(id, ids); b < 0 || d < b {
				b = d
			}
		}
		max := a
		if b > max {
			max = b
		}
		if max > 0 {
			sum += (b - a) / max
		}
	}
	return sum / float64(len(all))
}
