package cluster

import (
	"sync"

	"repro/internal/document"
	"repro/internal/index"
)

// Linkage selects how agglomerative clustering scores a merge.
type Linkage int

const (
	// AverageLinkage merges the pair with the highest mean pairwise cosine
	// similarity (UPGMA).
	AverageLinkage Linkage = iota
	// SingleLinkage merges the pair with the highest maximum similarity.
	SingleLinkage
	// CompleteLinkage merges the pair with the highest minimum similarity.
	CompleteLinkage
)

// Agglomerative performs hierarchical agglomerative clustering down to k
// clusters under the given linkage, using cosine similarity between TF
// vectors. It is the comparison clustering method for the paper's future
// work question ("how different clustering methods affect the expanded
// queries"). O(n^3) worst case — fine at the paper's scale (top-30 results,
// scalability sweeps to 500).
func Agglomerative(idx *index.Index, docs []document.DocID, k int, linkage Linkage) *Clustering {
	n := len(docs)
	if n == 0 {
		return &Clustering{Assign: map[document.DocID]int{}}
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Corpus-global TermID vectors — identical similarities to the per-run
	// Dict projection they replace, without the interning pass.
	vecs := make([]*Vector, n)
	for i, id := range docs {
		vecs[i] = VectorFromDocGlobal(idx, id)
	}
	// Pairwise similarity matrix; rows fill in parallel. Row i costs i dot
	// products, so workers take strided rows (w, w+W, w+2W, …) to balance
	// the triangular workload; each pair (i, j) with j < i is written only
	// by the worker owning row i, so writes stay disjoint.
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	fillRows := func(start, stride int) {
		for i := start; i < n; i += stride {
			for j := 0; j < i; j++ {
				s := vecs[i].Cosine(vecs[j])
				sim[i][j] = s
				sim[j][i] = s
			}
		}
	}
	if workers := numWorkers(); workers > 1 && n >= minParallel {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fillRows(w, workers)
			}(w)
		}
		wg.Wait()
	} else {
		fillRows(0, 1)
	}
	// active clusters as member index lists
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	merge := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := -1.0
			for _, i := range a {
				for _, j := range b {
					if sim[i][j] > best {
						best = sim[i][j]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 2.0
			for _, i := range a {
				for _, j := range b {
					if sim[i][j] < worst {
						worst = sim[i][j]
					}
				}
			}
			return worst
		default: // AverageLinkage
			total := 0.0
			for _, i := range a {
				for _, j := range b {
					total += sim[i][j]
				}
			}
			return total / float64(len(a)*len(b))
		}
	}
	for len(clusters) > k {
		bestA, bestB, bestS := 0, 1, -1.0
		for a := 0; a < len(clusters); a++ {
			for b := a + 1; b < len(clusters); b++ {
				if s := merge(clusters[a], clusters[b]); s > bestS {
					bestA, bestB, bestS = a, b, s
				}
			}
		}
		clusters[bestA] = append(clusters[bestA], clusters[bestB]...)
		clusters = append(clusters[:bestB], clusters[bestB+1:]...)
	}
	assign := make([]int, n)
	for c, members := range clusters {
		for _, i := range members {
			assign[i] = c
		}
	}
	return buildClustering(docs, assign, len(clusters), 0, n-len(clusters))
}
