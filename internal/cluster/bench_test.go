package cluster

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

// benchCorpus builds a deterministic multi-topic corpus of n documents with
// ~40 distinct terms each, the shape of a paper-scale result set.
func benchCorpus(n int) (*index.Index, []document.DocID) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 400)
	for i := range vocab {
		vocab[i] = "term" + strconv.Itoa(i)
	}
	c := document.NewCorpus()
	ids := make([]document.DocID, n)
	for i := 0; i < n; i++ {
		topic := (i % 4) * 100 // four disjoint-ish vocab bands
		text := ""
		for j := 0; j < 40; j++ {
			text += " " + vocab[topic+rng.Intn(100)]
		}
		ids[i] = c.AddText("", text)
	}
	return index.Build(c, analysis.Simple()), ids
}

// BenchmarkVectorDot measures one merge-join dot product between two ~40-term
// interned vectors (the innermost operation of the assignment loop).
func BenchmarkVectorDot(b *testing.B) {
	idx, ids := benchCorpus(64)
	dict := DictForDocs(idx, ids)
	v := dict.VectorFromDoc(idx, ids[0])
	u := dict.VectorFromDoc(idx, ids[1])
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += v.Dot(u)
	}
	_ = s
}

// BenchmarkVectorCosine includes the (cached) norms — the full per-pair cost
// k-means pays.
func BenchmarkVectorCosine(b *testing.B) {
	idx, ids := benchCorpus(64)
	dict := DictForDocs(idx, ids)
	v := dict.VectorFromDoc(idx, ids[0])
	u := dict.VectorFromDoc(idx, ids[1])
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += v.Cosine(u)
	}
	_ = s
}

// BenchmarkVectorFromDoc measures interned vector construction from the
// index (aligned term/freq walk, no posting-list binary searches).
func BenchmarkVectorFromDoc(b *testing.B) {
	idx, ids := benchCorpus(64)
	dict := DictForDocs(idx, ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict.VectorFromDoc(idx, ids[i%len(ids)])
	}
}

// BenchmarkKMeansAssign measures one parallel assignment step (n points × k
// centroids) at the paper's top-30 result-set scale and at the Figure 7
// sweep scale.
func benchKMeansAssign(b *testing.B, n, k int) {
	idx, ids := benchCorpus(n)
	dict := DictForDocs(idx, ids)
	vecs := make([]*Vector, n)
	for i, id := range ids {
		vecs[i] = dict.VectorFromDoc(idx, id)
	}
	rng := rand.New(rand.NewSource(1))
	centroids := seedPlusPlus(vecs, k, rng)
	assign := make([]int, n)
	dists := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assignStep(vecs, centroids, assign, dists)
	}
}

func BenchmarkKMeansAssignN30K3(b *testing.B)  { benchKMeansAssign(b, 30, 3) }
func BenchmarkKMeansAssignN200K5(b *testing.B) { benchKMeansAssign(b, 200, 5) }
func BenchmarkKMeansAssignN500K5(b *testing.B) { benchKMeansAssign(b, 500, 5) }

// BenchmarkKMeansFull is the whole algorithm, restarts included, at serving
// shape (top-30 results, k=3, 5 restarts — what Engine.Expand runs).
func BenchmarkKMeansFull(b *testing.B) {
	idx, ids := benchCorpus(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(idx, ids, Options{K: 3, Seed: 1, PlusPlus: true, Restarts: 5})
	}
}
