package cluster

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/document"
	"repro/internal/index"
)

// benchCorpus builds a deterministic multi-topic corpus of n documents with
// ~40 distinct terms each, the shape of a paper-scale result set.
func benchCorpus(n int) (*index.Index, []document.DocID) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 400)
	for i := range vocab {
		vocab[i] = "term" + strconv.Itoa(i)
	}
	c := document.NewCorpus()
	ids := make([]document.DocID, n)
	for i := 0; i < n; i++ {
		topic := (i % 4) * 100 // four disjoint-ish vocab bands
		text := ""
		for j := 0; j < 40; j++ {
			text += " " + vocab[topic+rng.Intn(100)]
		}
		ids[i] = c.AddText("", text)
	}
	return index.Build(c, analysis.Simple()), ids
}

// BenchmarkVectorDot measures one merge-join dot product between two ~40-term
// interned vectors (the innermost operation of the assignment loop).
func BenchmarkVectorDot(b *testing.B) {
	idx, ids := benchCorpus(64)
	dict := DictForDocs(idx, ids)
	v := dict.VectorFromDoc(idx, ids[0])
	u := dict.VectorFromDoc(idx, ids[1])
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += v.Dot(u)
	}
	_ = s
}

// BenchmarkVectorCosine includes the (cached) norms — the full per-pair cost
// k-means pays.
func BenchmarkVectorCosine(b *testing.B) {
	idx, ids := benchCorpus(64)
	dict := DictForDocs(idx, ids)
	v := dict.VectorFromDoc(idx, ids[0])
	u := dict.VectorFromDoc(idx, ids[1])
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += v.Cosine(u)
	}
	_ = s
}

// BenchmarkVectorFromDoc measures interned vector construction from the
// index (aligned term/freq walk, no posting-list binary searches).
func BenchmarkVectorFromDoc(b *testing.B) {
	idx, ids := benchCorpus(64)
	dict := DictForDocs(idx, ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict.VectorFromDoc(idx, ids[i%len(ids)])
	}
}

// benchAssignState seeds one k-means run over the bench corpus so the
// assignment step can be measured in isolation.
func benchAssignState(b *testing.B, n, k int, pruned bool) *runState {
	b.Helper()
	idx, ids := benchCorpus(n)
	vecs := make([]*Vector, n)
	for i, id := range ids {
		vecs[i] = VectorFromDocGlobal(idx, id)
	}
	return newRunState(idx.NumTerms(), vecs,
		Options{K: k, Seed: 1, PlusPlus: true, MaxIter: 50}, pruned)
}

// BenchmarkKMeansAssign measures one parallel assignment step (n points × k
// centroids, dense gather dots) at the paper's top-30 result-set scale and
// at the Figure 7 sweep scale. Baseline entries predate dense centroids, so
// the diff against them is the merge-join → gather win.
func benchKMeansAssign(b *testing.B, n, k int) {
	st := benchAssignState(b, n, k, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.assignFull()
	}
}

func BenchmarkKMeansAssignN30K3(b *testing.B)  { benchKMeansAssign(b, 30, 3) }
func BenchmarkKMeansAssignN200K5(b *testing.B) { benchKMeansAssign(b, 200, 5) }
func BenchmarkKMeansAssignN500K5(b *testing.B) { benchKMeansAssign(b, 500, 5) }

// BenchmarkKMeansDenseAssign is the dense-centroid assignment step at the
// Figure 7 sweep scale — the inner loop the dense-centroid rewrite exists
// for, gated in qec-benchdiff.
func BenchmarkKMeansDenseAssign(b *testing.B) {
	st := benchAssignState(b, 200, 5, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.assignFull()
	}
}

// BenchmarkKMeansFull is the whole algorithm, restarts included, at serving
// shape (top-30 results, k=3, 5 restarts — what Engine.Expand runs in
// QualityExact mode).
func BenchmarkKMeansFull(b *testing.B) {
	idx, ids := benchCorpus(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(idx, ids, Options{K: 3, Seed: 1, PlusPlus: true, Restarts: 5})
	}
}

// BenchmarkKMeansServingMode is the same serving-shape run under
// QualityServing (restarts capped, Hamerly bound-pruned assignment) — the
// latency the serving subsystem buys with the quality knob.
func BenchmarkKMeansServingMode(b *testing.B) {
	idx, ids := benchCorpus(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(idx, ids, Options{K: 3, Seed: 1, PlusPlus: true, Restarts: 5,
			Quality: QualityServing})
	}
}
