package cluster

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/termdict"
)

// Clustering is the output of a clustering run: an assignment of the input
// documents into non-empty clusters.
type Clustering struct {
	// Clusters holds the document IDs of each cluster, sorted ascending.
	Clusters []([]document.DocID)
	// Assign maps each clustered document to its cluster ordinal.
	Assign map[document.DocID]int
	// Distortion is the final sum of cosine distances to assigned centroids
	// (k-means only; 0 for other methods).
	Distortion float64
	// Iterations is the number of refinement rounds performed.
	Iterations int
	// Restarts, TotalIterations and AbandonedRestarts are the lockstep
	// driver's bookkeeping: restarts launched, iterations summed across all
	// of them, and restarts abandoned early (serving mode only). They feed
	// the telemetry layer and never influence the clustering itself; zero
	// for non-k-means methods.
	Restarts, TotalIterations, AbandonedRestarts int
}

// Sets returns the clusters as DocSets.
func (c *Clustering) Sets() []document.DocSet {
	out := make([]document.DocSet, len(c.Clusters))
	for i, ids := range c.Clusters {
		out[i] = document.NewDocSet(ids...)
	}
	return out
}

// K returns the number of clusters.
func (c *Clustering) K() int { return len(c.Clusters) }

// Quality selects the clustering speed/accuracy trade of a k-means run.
type Quality int

const (
	// QualityExact is the default: every restart requested by Options runs
	// to convergence with exact (unpruned) assignment arithmetic. Output is
	// bit-identical to the historical sparse merge-join implementation for a
	// fixed seed (pinned by the kmeans golden file).
	QualityExact Quality = iota
	// QualityServing trades a deterministic accuracy delta for latency: at
	// most servingRestarts restarts, and assignment uses Hamerly-style
	// single-bound pruning (points whose bound margin exceeds the centroid
	// drift skip their distance scans). Deterministic for a fixed seed —
	// runs always produce the same clustering — but not bit-comparable to
	// QualityExact, which keeps more restarts.
	QualityServing
)

// servingRestarts caps restarts in QualityServing mode.
const servingRestarts = 2

// aggressiveAbandonFactor is the Options.AggressiveAbandon threshold: a live
// restart is abandoned once its running distortion exceeds this fraction of
// the best completed restart's (plain abandonment requires strictly
// exceeding the best itself, factor 1.0).
const aggressiveAbandonFactor = 0.9

// String names the quality mode ("exact" / "serving").
func (q Quality) String() string {
	if q == QualityServing {
		return "serving"
	}
	return "exact"
}

// Options configures k-means.
type Options struct {
	// K is the requested number of clusters (an upper bound per Section 1:
	// "k is an upper bound specified by the user"; empty clusters are
	// dropped).
	K int
	// MaxIter bounds refinement rounds. Default 50.
	MaxIter int
	// Seed makes runs reproducible.
	Seed int64
	// PlusPlus enables k-means++ seeding instead of uniform sampling.
	PlusPlus bool
	// Restarts runs the whole algorithm this many times with derived seeds
	// and keeps the clustering with the lowest distortion. 0 or 1 means a
	// single run. Restarts share one vector set and run in deterministic
	// lockstep rounds. In QualityExact every restart runs to convergence
	// (the selection is bit-identical to a serial loop); QualityServing
	// additionally abandons a restart whose running distortion already
	// exceeds the best completed restart's.
	Restarts int
	// Quality selects the speed/accuracy trade (default QualityExact).
	Quality Quality
	// RestartBudget, when positive, caps restarts after the quality mode's
	// own cap — the degradation ladder's tier-2 knob (budget 1 runs a single
	// restart). For a fixed (Quality, RestartBudget) pair the output is a
	// pure function of the seed, exactly like the quality modes themselves
	// (pinned by the per-tier golden cases); it never raises the restart
	// count above Restarts.
	RestartBudget int
	// AggressiveAbandon tightens serving-mode early abandonment: a live
	// restart is abandoned once its running distortion exceeds
	// aggressiveAbandonFactor times the best completed restart's, instead of
	// strictly exceeding it — trading a further deterministic accuracy delta
	// for latency. No effect in QualityExact (abandonment is off there) or
	// when only one restart runs.
	AggressiveAbandon bool
	// Ctx, when non-nil, is checked at lockstep round boundaries: once it is
	// cancelled the driver stops stepping and returns immediately, so a
	// disconnected client frees its worker mid-run instead of finishing a
	// clustering nobody reads. The returned clustering is then partial —
	// callers must check Ctx.Err() and discard it. Cancellation never
	// changes the output of a run that completes: the check only ever stops
	// work, it reorders none.
	Ctx context.Context
	// Trail, when non-nil, receives the per-restart decision record (seed,
	// iterations, final distortion, abandoned, winner) after the drive
	// completes — the EXPLAIN surface. Recording is post-hoc bookkeeping
	// only: it never touches the clustering arithmetic, so runs with and
	// without a trail are bit-identical.
	Trail *Trail
}

// Trail is the clustering leg of a query EXPLAIN: one entry per restart the
// lockstep driver launched, in restart index order.
type Trail struct {
	Restarts []RestartTrail
}

// RestartTrail describes one restart's fate.
type RestartTrail struct {
	// Seed is the restart's derived RNG seed (base seed + index·7919).
	Seed int64
	// Iterations is how many refinement rounds the restart ran before
	// converging, hitting MaxIter, or being abandoned.
	Iterations int
	// Distortion is the restart's final (or at-abandonment) distortion.
	Distortion float64
	// Abandoned marks restarts the serving-mode driver cut early.
	Abandoned bool
	// Won marks the restart whose clustering was selected.
	Won bool
}

func (o *Options) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.K <= 0 {
		o.K = 2
	}
}

// workerOverride pins the worker count for determinism tests; 0 means use
// GOMAXPROCS.
var workerOverride atomic.Int32

func numWorkers() int {
	if w := workerOverride.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// minParallel is the slice size below which goroutine fan-out costs more
// than it saves. Chunking only changes who computes which index, never the
// values, so the threshold cannot affect results.
const minParallel = 256

// parallelFor runs fn over disjoint contiguous chunks of [0, n) on up to
// numWorkers goroutines and waits for completion. fn must only write state
// owned by its index range.
func parallelFor(n int, fn func(lo, hi int)) {
	w := numWorkers()
	if w > n {
		w = n
	}
	if w <= 1 || n < minParallel {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// fanEach runs fn(0..n-1) across up to numWorkers goroutines — one task per
// index, no minimum-size threshold (tasks are whole restart iterations, never
// cheap). Tasks only touch their own state, so scheduling cannot affect
// results.
func fanEach(n int, fn func(i int)) {
	w := numWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// KMeans clusters the given documents' TF vectors by cosine distance.
// Deterministic for a fixed seed regardless of worker count: per-point work
// is data-parallel, every floating-point reduction (distortion, the D²
// total) is accumulated serially in index order after the parallel phase,
// and restarts advance in lockstep rounds so early-abandon decisions never
// depend on goroutine scheduling. Empty input yields an empty clustering.
//
// Points come straight off the index's corpus-global TermID arenas; centroids
// are dense []float64 over the vocabulary (see centroid), so every
// point·centroid distance is a branch-free gather over the point's IDs. In
// QualityExact mode the output is bit-identical to the sparse merge-join
// implementation (pinned by the kmeans golden file); QualityServing trades a
// deterministic accuracy delta for latency (fewer restarts, bound-pruned
// assignment).
func KMeans(idx *index.Index, docs []document.DocID, opts Options) *Clustering {
	vecs := make([]*Vector, len(docs))
	for i, id := range docs {
		vecs[i] = VectorFromDocGlobal(idx, id)
	}
	return KMeansVecs(idx.NumTerms(), vecs, docs, opts)
}

// KMeansVecs is KMeans over pre-built document vectors: vecs[i] is the
// TF vector of docs[i] over a dim-sized TermID space (what
// VectorFromDocGlobal builds). Callers that already hold a resolved
// universe snapshot — the engine's expansion pipeline shares one between
// clustering and problem construction — use this to skip the per-document
// arena walk. The vectors are treated as read-only; output is bit-identical
// to KMeans over the same documents.
func KMeansVecs(dim int, vecs []*Vector, docs []document.DocID, opts Options) *Clustering {
	opts.defaults()
	n := len(docs)
	if n == 0 {
		return &Clustering{Assign: map[document.DocID]int{}}
	}
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	pruned := false
	if opts.Quality == QualityServing {
		pruned = true
		if restarts > servingRestarts {
			restarts = servingRestarts
		}
	}
	// The degradation ladder's budget cap applies after the quality cap: a
	// budget can only lower the restart count, never raise it.
	if opts.RestartBudget > 0 && restarts > opts.RestartBudget {
		restarts = opts.RestartBudget
	}
	// Early abandonment is a serving-mode trade: distortion under the
	// mean-update/cosine iteration is not strictly monotone, so a restart
	// that currently trails the best completed one can still end up winning —
	// abandoning it is deterministic but (rarely) selects a slightly worse
	// clustering. Exact mode therefore runs every restart to convergence.
	return kmeansDrive(dim, vecs, docs, opts, restarts, pruned, pruned && restarts > 1)
}

// kmeansDrive runs restarts k-means runs over the shared vectors in
// deterministic lockstep rounds and returns the best clustering.
//
// Lockstep is the determinism mechanism for early abandonment (abandon is
// only set in serving mode): each round advances every live restart by one
// iteration (fanned across workers — restarts own disjoint state), then
// bookkeeping runs serially in restart index order, so "which restarts had
// completed when restart r was checked" is a pure function of the iteration
// counts, never of goroutine timing. A restart is abandoned when its running
// distortion strictly exceeds the best completed restart's final distortion.
// With abandon off the driver reduces to "run every restart to convergence,
// first lowest distortion wins" — the historical serial semantics, bit for
// bit; every restart's own arithmetic is unchanged either way.
func kmeansDrive(dim int, vecs []*Vector, docs []document.DocID, opts Options,
	restarts int, pruned, abandon bool) *Clustering {

	states := make([]*runState, restarts)
	fanEach(restarts, func(r int) {
		ro := opts
		ro.Seed = opts.Seed + int64(r)*7919 // distinct derived seeds
		states[r] = newRunState(dim, vecs, ro, pruned)
	})

	// Aggressive abandonment (the ladder's tier-2 knob) abandons a trailing
	// restart even before it exceeds the best completed distortion — at 90%
	// of it — cutting more rounds at a further deterministic accuracy cost.
	abandonAt := func(bestDone float64) float64 {
		if opts.AggressiveAbandon {
			return bestDone * aggressiveAbandonFactor
		}
		return bestDone
	}

	bestDone := math.Inf(1)
	hasDone := false
	for {
		// Round boundary: a cancelled request stops the drive right here —
		// between rounds, never inside one, so a run that finishes is
		// bit-identical whether or not a context was attached.
		if ctx := opts.Ctx; ctx != nil && ctx.Err() != nil {
			break
		}
		var live []*runState
		for _, st := range states {
			if !st.done && !st.abandoned {
				live = append(live, st)
			}
		}
		if len(live) == 0 {
			break
		}
		fanEach(len(live), func(i int) { live[i].step() })
		// Serial bookkeeping in restart index order: completions first, then
		// abandonment against the updated best.
		for _, st := range states {
			if st.done && st.distortion < bestDone {
				bestDone = st.distortion
				hasDone = true
			}
		}
		if abandon && hasDone {
			cut := abandonAt(bestDone)
			for _, st := range states {
				if !st.done && st.distortion > cut {
					st.abandoned = true
				}
			}
		}
	}

	var best *runState
	for _, st := range states {
		if st.abandoned {
			continue
		}
		if best == nil || st.distortion < best.distortion {
			best = st
		}
	}
	cl := buildClustering(docs, best.assign, best.k, best.distortion, best.iters)
	cl.Restarts = restarts
	if opts.Trail != nil {
		opts.Trail.Restarts = make([]RestartTrail, restarts)
	}
	for r, st := range states {
		cl.TotalIterations += st.iters
		if st.abandoned {
			cl.AbandonedRestarts++
		}
		if opts.Trail != nil {
			opts.Trail.Restarts[r] = RestartTrail{
				Seed:       opts.Seed + int64(r)*7919,
				Iterations: st.iters,
				Distortion: st.distortion,
				Abandoned:  st.abandoned,
				Won:        st == best,
			}
		}
		st.release()
	}
	return cl
}

// runState is one k-means run advanced iteration-by-iteration by the lockstep
// driver. All fields are owned by the run; the driver only reads distortion /
// done / abandoned at round boundaries.
type runState struct {
	vecs    []*Vector
	k       int
	maxIter int
	pruned  bool

	cents   []*centroid
	assign  []int
	dists   []float64
	groups  [][]*Vector
	scratch termdict.DenseScratch

	// Hamerly single-bound state (pruned mode), in chord space √(2·cosDist):
	// ub[i] bounds the distance to the assigned centroid from above, lb[i]
	// the distance to every other centroid from below; drift holds the
	// per-centroid movement of the last update.
	ub, lb, drift []float64

	distortion float64
	iters      int
	done       bool
	abandoned  bool
}

// boundSlack absorbs the floating-point error of maintaining ub/lb
// incrementally: a point is only skipped when its margin clears the drift by
// more than this, so pruning never changes an assignment (distances are O(1),
// making 1e-9 many orders above the accumulated error).
const boundSlack = 1e-9

// chordDist converts a cosine distance to the chord distance between the
// corresponding unit vectors, √(2·d) — a true metric (Euclidean on the unit
// sphere), which cosine distance itself is not, so triangle-inequality bounds
// are sound in chord space only.
func chordDist(d float64) float64 {
	if d <= 0 {
		return 0
	}
	return math.Sqrt(2 * d)
}

// newRunState seeds one run (uniform or k-means++) exactly like the sparse
// implementation: the rng draw sequence is unchanged because every distance
// the D² scan consumes is bit-identical to its merge-join counterpart.
func newRunState(dim int, vecs []*Vector, opts Options, pruned bool) *runState {
	n := len(vecs)
	k := opts.K
	if k > n {
		k = n
	}
	st := &runState{
		vecs:    vecs,
		k:       k,
		maxIter: opts.MaxIter,
		pruned:  pruned,
		cents:   make([]*centroid, k),
		assign:  make([]int, n),
		dists:   make([]float64, n),
		groups:  make([][]*Vector, k),
	}
	for c := range st.cents {
		st.cents[c] = &centroid{vals: getDenseVals(dim)}
	}
	if pruned {
		st.ub = make([]float64, n)
		st.lb = make([]float64, n)
		st.drift = make([]float64, k)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.PlusPlus {
		st.seedPlusPlus(rng)
	} else {
		perm := rng.Perm(n)
		for c := range st.cents {
			st.cents[c].setFromVector(vecs[perm[c]])
		}
	}
	return st
}

// release returns the dense centroid buffers to the pool.
func (st *runState) release() {
	for _, c := range st.cents {
		c.release()
	}
}

// seedPlusPlus implements k-means++ seeding under cosine distance. The
// nearest-centroid distance of every point is maintained incrementally (a
// left-fold min, exactly the scan order of the full rescan it replaces) and
// the per-round update against the newest centroid runs in parallel; the D²
// total is then summed serially in index order, so the rng draw sequence —
// and hence the seeding — matches the sparse implementation bit for bit.
func (st *runState) seedPlusPlus(rng *rand.Rand) {
	vecs := st.vecs
	n := len(vecs)
	first := st.cents[0]
	first.setFromVector(vecs[rng.Intn(n)])
	best := make([]float64, n)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best[i] = first.cosDist(vecs[i])
		}
	})
	// fold merges a newly placed centroid into best. Placing in order keeps
	// best equal to the scalar implementation's per-round left-fold over all
	// centroids (min via strict <, no arithmetic), bit for bit.
	fold := func(c *centroid) {
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := c.cosDist(vecs[i]); d < best[i] {
					best[i] = d
				}
			}
		})
	}
	d2 := make([]float64, n)
	for placed := 1; placed < st.k; placed++ {
		total := 0.0
		for i, b := range best {
			d2[i] = b * b
			total += d2[i]
		}
		var pickVec *Vector
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			pickVec = vecs[rng.Intn(n)]
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick := n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
			pickVec = vecs[pick]
		}
		st.cents[placed].setFromVector(pickVec)
		if placed+1 < st.k {
			fold(st.cents[placed]) // the last centroid seeds no further round
		}
	}
}

// step advances the run by one iteration: assignment, distortion reduction,
// convergence check, centroid update. Mirrors the historical kmeansRun loop
// body exactly (including breaking before the centroid update on
// convergence / MaxIter exhaustion).
func (st *runState) step() {
	iter := st.iters
	st.iters++

	var changed bool
	if st.pruned && iter > 0 {
		changed = st.assignPruned()
	} else {
		changed = st.assignFull()
	}

	// Serial reduction in index order keeps the distortion bit-identical to
	// the scalar loop's running sum. In pruned mode skipped points carry the
	// distance of their last full evaluation, so this is a running estimate
	// (used only for early abandonment); the exact value is recomputed on
	// completion.
	d := 0.0
	for _, x := range st.dists {
		d += x
	}
	st.distortion = d

	if (!changed && iter > 0) || st.iters >= st.maxIter {
		st.done = true
		if st.pruned {
			st.exactDistortion()
		}
		return
	}

	// Recompute centroids from the new assignment.
	for c := range st.groups {
		st.groups[c] = st.groups[c][:0]
	}
	for i, v := range st.vecs {
		st.groups[st.assign[i]] = append(st.groups[st.assign[i]], v)
	}
	for c := range st.cents {
		if len(st.groups[c]) == 0 {
			// Empty centroid: keep previous position; the cluster will be
			// dropped at the end if it stays empty.
			if st.pruned {
				st.drift[c] = 0
			}
			continue
		}
		mv := st.cents[c].setMean(st.groups[c], &st.scratch, st.pruned)
		if st.pruned {
			st.drift[c] = mv
		}
	}
}

// assignFull reassigns every point by scanning all centroids — the exact
// path, and the bound-initializing first iteration of the pruned path. Each
// worker owns a disjoint index range and reads the shared centroids, so the
// step is race-free and its output independent of the worker count.
func (st *runState) assignFull() bool {
	var changed atomic.Bool
	vecs, cents := st.vecs, st.cents
	parallelFor(len(vecs), func(lo, hi int) {
		ch := false
		for i := lo; i < hi; i++ {
			v := vecs[i]
			best, bestD := 0, cents[0].cosDist(v)
			second := math.Inf(1)
			for c := 1; c < len(cents); c++ {
				if d := cents[c].cosDist(v); d < bestD {
					second = bestD
					best, bestD = c, d
				} else if d < second {
					second = d
				}
			}
			if st.assign[i] != best {
				st.assign[i] = best
				ch = true
			}
			st.dists[i] = bestD
			if st.pruned {
				st.ub[i] = chordDist(bestD)
				st.lb[i] = chordDist(second)
			}
		}
		if ch {
			changed.Store(true)
		}
	})
	return changed.Load()
}

// assignPruned is the Hamerly-style single-bound assignment: after the last
// update moved centroid c by drift[c] (chord space), a point whose upper
// bound to its assigned centroid stays below its lower bound to all others
// cannot change assignment and skips every distance computation. Points that
// fail the cheap test first tighten the upper bound with one exact distance,
// and only then fall back to the full scan (which restores exact bounds).
// Pruning is lossless for the assignment: the triangle inequality in chord
// space plus boundSlack guarantees a skipped point's argmin is unchanged, so
// the final clustering matches the unpruned run's (pinned by a property
// test).
func (st *runState) assignPruned() bool {
	maxDrift := 0.0
	for _, d := range st.drift {
		if d > maxDrift {
			maxDrift = d
		}
	}
	var changed atomic.Bool
	vecs, cents := st.vecs, st.cents
	parallelFor(len(vecs), func(lo, hi int) {
		ch := false
		for i := lo; i < hi; i++ {
			st.ub[i] += st.drift[st.assign[i]]
			st.lb[i] -= maxDrift
			if st.ub[i]+boundSlack < st.lb[i] {
				continue // cannot have changed assignment; dists[i] is stale
			}
			v := vecs[i]
			dA := cents[st.assign[i]].cosDist(v)
			st.ub[i] = chordDist(dA)
			st.dists[i] = dA
			if st.ub[i]+boundSlack < st.lb[i] {
				continue
			}
			best, bestD := 0, cents[0].cosDist(v)
			second := math.Inf(1)
			for c := 1; c < len(cents); c++ {
				if d := cents[c].cosDist(v); d < bestD {
					second = bestD
					best, bestD = c, d
				} else if d < second {
					second = d
				}
			}
			if st.assign[i] != best {
				st.assign[i] = best
				ch = true
			}
			st.dists[i] = bestD
			st.ub[i] = chordDist(bestD)
			st.lb[i] = chordDist(second)
		}
		if ch {
			changed.Store(true)
		}
	})
	return changed.Load()
}

// exactDistortion recomputes every point's distance to its assigned centroid
// and reduces serially in index order — the same arithmetic the last full
// assignment pass would have produced, making a pruned run's final distortion
// bit-identical to the unpruned run it matches.
func (st *runState) exactDistortion() {
	vecs := st.vecs
	parallelFor(len(vecs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.dists[i] = st.cents[st.assign[i]].cosDist(vecs[i])
		}
	})
	d := 0.0
	for _, x := range st.dists {
		d += x
	}
	st.distortion = d
}

// buildClustering converts an assignment array into a Clustering, dropping
// empty clusters and renumbering.
func buildClustering(docs []document.DocID, assign []int, k int, distortion float64, iters int) *Clustering {
	byCluster := make([][]document.DocID, k)
	for i, id := range docs {
		c := assign[i]
		byCluster[c] = append(byCluster[c], id)
	}
	out := &Clustering{Assign: make(map[document.DocID]int, len(docs)), Distortion: distortion, Iterations: iters}
	for _, ids := range byCluster {
		if len(ids) == 0 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ord := len(out.Clusters)
		out.Clusters = append(out.Clusters, ids)
		for _, id := range ids {
			out.Assign[id] = ord
		}
	}
	return out
}
