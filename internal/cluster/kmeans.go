package cluster

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/document"
	"repro/internal/index"
)

// Clustering is the output of a clustering run: an assignment of the input
// documents into non-empty clusters.
type Clustering struct {
	// Clusters holds the document IDs of each cluster, sorted ascending.
	Clusters []([]document.DocID)
	// Assign maps each clustered document to its cluster ordinal.
	Assign map[document.DocID]int
	// Distortion is the final sum of cosine distances to assigned centroids
	// (k-means only; 0 for other methods).
	Distortion float64
	// Iterations is the number of refinement rounds performed.
	Iterations int
}

// Sets returns the clusters as DocSets.
func (c *Clustering) Sets() []document.DocSet {
	out := make([]document.DocSet, len(c.Clusters))
	for i, ids := range c.Clusters {
		out[i] = document.NewDocSet(ids...)
	}
	return out
}

// K returns the number of clusters.
func (c *Clustering) K() int { return len(c.Clusters) }

// Options configures k-means.
type Options struct {
	// K is the requested number of clusters (an upper bound per Section 1:
	// "k is an upper bound specified by the user"; empty clusters are
	// dropped).
	K int
	// MaxIter bounds refinement rounds. Default 50.
	MaxIter int
	// Seed makes runs reproducible.
	Seed int64
	// PlusPlus enables k-means++ seeding instead of uniform sampling.
	PlusPlus bool
	// Restarts runs the whole algorithm this many times with derived seeds
	// and keeps the clustering with the lowest distortion. 0 or 1 means a
	// single run. Restarts share one interned vector set and run
	// concurrently; the selection (first lowest distortion wins) is
	// independent of scheduling.
	Restarts int
}

func (o *Options) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.K <= 0 {
		o.K = 2
	}
}

// workerOverride pins the worker count for determinism tests; 0 means use
// GOMAXPROCS.
var workerOverride atomic.Int32

func numWorkers() int {
	if w := workerOverride.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// minParallel is the slice size below which goroutine fan-out costs more
// than it saves. Chunking only changes who computes which index, never the
// values, so the threshold cannot affect results.
const minParallel = 256

// parallelFor runs fn over disjoint contiguous chunks of [0, n) on up to
// numWorkers goroutines and waits for completion. fn must only write state
// owned by its index range.
func parallelFor(n int, fn func(lo, hi int)) {
	w := numWorkers()
	if w > n {
		w = n
	}
	if w <= 1 || n < minParallel {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// KMeans clusters the given documents' TF vectors by cosine distance.
// Deterministic for a fixed seed regardless of worker count: per-point work
// is data-parallel, and every floating-point reduction (distortion, the D²
// total) is accumulated serially in index order after the parallel phase,
// preserving the sorted-accumulation guarantee of the scalar
// implementation. Empty input yields an empty clustering.
//
// Vectors come straight off the index's corpus-global TermID arenas — no
// per-run dictionary is interned. Global TermIDs ascend in lexicographic
// order exactly like the per-run Dict IDs they replace, so every merge-join
// dot product and norm accumulates in the same sorted-term order and the
// clustering is bit-identical to the Dict-backed implementation (pinned by
// the kmeans golden file).
func KMeans(idx *index.Index, docs []document.DocID, opts Options) *Clustering {
	opts.defaults()
	n := len(docs)
	if n == 0 {
		return &Clustering{Assign: map[document.DocID]int{}}
	}
	vecs := make([]*Vector, n)
	for i, id := range docs {
		vecs[i] = VectorFromDocGlobal(idx, id)
	}
	dim := idx.NumTerms()
	if opts.Restarts > 1 {
		return kmeansRestarts(dim, vecs, docs, opts)
	}
	return kmeansRun(dim, vecs, docs, opts)
}

// kmeansRestarts runs Restarts independent k-means runs concurrently over
// the shared vectors and keeps the best. Results land in a slice indexed by
// restart ordinal and the winner is chosen serially in that order with a
// strict <, so the outcome matches a serial loop exactly.
func kmeansRestarts(dim int, vecs []*Vector, docs []document.DocID, opts Options) *Clustering {
	restarts := opts.Restarts
	single := opts
	single.Restarts = 0
	results := make([]*Clustering, restarts)
	sem := make(chan struct{}, numWorkers())
	var wg sync.WaitGroup
	for r := 0; r < restarts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ro := single
			ro.Seed = opts.Seed + int64(r)*7919 // distinct derived seeds
			results[r] = kmeansRun(dim, vecs, docs, ro)
		}(r)
	}
	wg.Wait()
	best := results[0]
	for _, cl := range results[1:] {
		if cl.Distortion < best.Distortion {
			best = cl
		}
	}
	return best
}

// kmeansRun is a single k-means run over pre-built vectors in a
// dim-dimensional ID space.
func kmeansRun(dim int, vecs []*Vector, docs []document.DocID, opts Options) *Clustering {
	n := len(vecs)
	k := opts.K
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var centroids []*Vector
	if opts.PlusPlus {
		centroids = seedPlusPlus(vecs, k, rng)
	} else {
		perm := rng.Perm(n)
		centroids = make([]*Vector, k)
		for i := 0; i < k; i++ {
			centroids[i] = vecs[perm[i]].Clone()
		}
	}

	assign := make([]int, n)
	dists := make([]float64, n)
	var scratch meanScratch
	var distortion float64
	iters := 0
	for iter := 0; iter < opts.MaxIter; iter++ {
		iters = iter + 1
		changed := assignStep(vecs, centroids, assign, dists)
		// Serial reduction in index order keeps the distortion bit-identical
		// to the scalar loop's running sum.
		distortion = 0
		for _, d := range dists {
			distortion += d
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		groups := make([][]*Vector, len(centroids))
		for i, v := range vecs {
			groups[assign[i]] = append(groups[assign[i]], v)
		}
		for c := range centroids {
			if len(groups[c]) > 0 {
				centroids[c] = scratch.mean(groups[c], dim)
			}
			// Empty centroid: keep previous position; the cluster will be
			// dropped at the end if it stays empty.
		}
	}

	return buildClustering(docs, assign, len(centroids), distortion, iters)
}

// assignStep reassigns every vector to its nearest centroid in parallel,
// recording per-point distances for the caller's ordered reduction. Each
// worker owns a disjoint index range (and reads the shared centroids, whose
// norm caches are valid since construction), so the step is race-free and
// its output independent of the worker count.
func assignStep(vecs, centroids []*Vector, assign []int, dists []float64) bool {
	var changed atomic.Bool
	parallelFor(len(vecs), func(lo, hi int) {
		ch := false
		for i := lo; i < hi; i++ {
			v := vecs[i]
			best, bestD := 0, v.CosineDistance(centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := v.CosineDistance(centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				ch = true
			}
			dists[i] = bestD
		}
		if ch {
			changed.Store(true)
		}
	})
	return changed.Load()
}

// seedPlusPlus implements k-means++ seeding under cosine distance. The
// nearest-centroid distance of every point is maintained incrementally (a
// left-fold min, exactly the scan order of the full rescan it replaces) and
// the per-round update against the newest centroid runs in parallel; the D²
// total is then summed serially in index order, so the rng draw sequence —
// and hence the seeding — matches the scalar implementation bit for bit.
func seedPlusPlus(vecs []*Vector, k int, rng *rand.Rand) []*Vector {
	n := len(vecs)
	centroids := make([]*Vector, 0, k)
	first := vecs[rng.Intn(n)].Clone()
	centroids = append(centroids, first)
	best := make([]float64, n)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best[i] = vecs[i].CosineDistance(first)
		}
	})
	// fold merges a newly appended centroid into best. Appending in order
	// keeps best equal to the scalar implementation's per-round left-fold
	// over all centroids (min via strict <, no arithmetic), bit for bit.
	fold := func(c *Vector) {
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := vecs[i].CosineDistance(c); d < best[i] {
					best[i] = d
				}
			}
		})
	}
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, b := range best {
			d2[i] = b * b
			total += d2[i]
		}
		var next *Vector
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			next = vecs[rng.Intn(n)].Clone()
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick := n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
			next = vecs[pick].Clone()
		}
		centroids = append(centroids, next)
		if len(centroids) < k {
			fold(next) // the last centroid seeds no further round
		}
	}
	return centroids
}

// buildClustering converts an assignment array into a Clustering, dropping
// empty clusters and renumbering.
func buildClustering(docs []document.DocID, assign []int, k int, distortion float64, iters int) *Clustering {
	byCluster := make([][]document.DocID, k)
	for i, id := range docs {
		c := assign[i]
		byCluster[c] = append(byCluster[c], id)
	}
	out := &Clustering{Assign: make(map[document.DocID]int, len(docs)), Distortion: distortion, Iterations: iters}
	for _, ids := range byCluster {
		if len(ids) == 0 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ord := len(out.Clusters)
		out.Clusters = append(out.Clusters, ids)
		for _, id := range ids {
			out.Assign[id] = ord
		}
	}
	return out
}
