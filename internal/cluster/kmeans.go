package cluster

import (
	"math/rand"
	"sort"

	"repro/internal/document"
	"repro/internal/index"
)

// Clustering is the output of a clustering run: an assignment of the input
// documents into non-empty clusters.
type Clustering struct {
	// Clusters holds the document IDs of each cluster, sorted ascending.
	Clusters []([]document.DocID)
	// Assign maps each clustered document to its cluster ordinal.
	Assign map[document.DocID]int
	// Distortion is the final sum of cosine distances to assigned centroids
	// (k-means only; 0 for other methods).
	Distortion float64
	// Iterations is the number of refinement rounds performed.
	Iterations int
}

// Sets returns the clusters as DocSets.
func (c *Clustering) Sets() []document.DocSet {
	out := make([]document.DocSet, len(c.Clusters))
	for i, ids := range c.Clusters {
		out[i] = document.NewDocSet(ids...)
	}
	return out
}

// K returns the number of clusters.
func (c *Clustering) K() int { return len(c.Clusters) }

// Options configures k-means.
type Options struct {
	// K is the requested number of clusters (an upper bound per Section 1:
	// "k is an upper bound specified by the user"; empty clusters are
	// dropped).
	K int
	// MaxIter bounds refinement rounds. Default 50.
	MaxIter int
	// Seed makes runs reproducible.
	Seed int64
	// PlusPlus enables k-means++ seeding instead of uniform sampling.
	PlusPlus bool
	// Restarts runs the whole algorithm this many times with derived seeds
	// and keeps the clustering with the lowest distortion. 0 or 1 means a
	// single run.
	Restarts int
}

func (o *Options) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.K <= 0 {
		o.K = 2
	}
}

// KMeans clusters the given documents' TF vectors by cosine distance.
// Deterministic for a fixed seed. Empty input yields an empty clustering.
func KMeans(idx *index.Index, docs []document.DocID, opts Options) *Clustering {
	opts.defaults()
	if opts.Restarts > 1 {
		restarts := opts.Restarts
		single := opts
		single.Restarts = 0
		best := (*Clustering)(nil)
		for r := 0; r < restarts; r++ {
			single.Seed = opts.Seed + int64(r)*7919 // distinct derived seeds
			cl := KMeans(idx, docs, single)
			if best == nil || cl.Distortion < best.Distortion {
				best = cl
			}
		}
		return best
	}
	n := len(docs)
	if n == 0 {
		return &Clustering{Assign: map[document.DocID]int{}}
	}
	k := opts.K
	if k > n {
		k = n
	}
	vecs := make([]Vector, n)
	for i, id := range docs {
		vecs[i] = VectorFromDoc(idx, id)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var centroids []Vector
	if opts.PlusPlus {
		centroids = seedPlusPlus(vecs, k, rng)
	} else {
		perm := rng.Perm(n)
		centroids = make([]Vector, k)
		for i := 0; i < k; i++ {
			centroids[i] = vecs[perm[i]].Clone()
		}
	}

	assign := make([]int, n)
	var distortion float64
	iters := 0
	for iter := 0; iter < opts.MaxIter; iter++ {
		iters = iter + 1
		changed := false
		distortion = 0
		for i, v := range vecs {
			best, bestD := 0, v.CosineDistance(centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := v.CosineDistance(centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			distortion += bestD
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		groups := make([][]Vector, len(centroids))
		for i, v := range vecs {
			groups[assign[i]] = append(groups[assign[i]], v)
		}
		for c := range centroids {
			if len(groups[c]) > 0 {
				centroids[c] = Mean(groups[c])
			}
			// Empty centroid: keep previous position; the cluster will be
			// dropped at the end if it stays empty.
		}
	}

	return buildClustering(docs, assign, len(centroids), distortion, iters)
}

// seedPlusPlus implements k-means++ seeding under cosine distance.
func seedPlusPlus(vecs []Vector, k int, rng *rand.Rand) []Vector {
	n := len(vecs)
	centroids := make([]Vector, 0, k)
	centroids = append(centroids, vecs[rng.Intn(n)].Clone())
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, v := range vecs {
			best := v.CosineDistance(centroids[0])
			for _, c := range centroids[1:] {
				if d := v.CosineDistance(c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			centroids = append(centroids, vecs[rng.Intn(n)].Clone())
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, vecs[pick].Clone())
	}
	return centroids
}

// buildClustering converts an assignment array into a Clustering, dropping
// empty clusters and renumbering.
func buildClustering(docs []document.DocID, assign []int, k int, distortion float64, iters int) *Clustering {
	byCluster := make([][]document.DocID, k)
	for i, id := range docs {
		c := assign[i]
		byCluster[c] = append(byCluster[c], id)
	}
	out := &Clustering{Assign: make(map[document.DocID]int, len(docs)), Distortion: distortion, Iterations: iters}
	for _, ids := range byCluster {
		if len(ids) == 0 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ord := len(out.Clusters)
		out.Clusters = append(out.Clusters, ids)
		for _, id := range ids {
			out.Assign[id] = ord
		}
	}
	return out
}
