// Package cluster implements the result-clustering substrate: sparse
// term-frequency vectors with cosine similarity, k-means (the paper's
// clustering method, Appendix C) with k-means++ seeding, and agglomerative
// clustering (for the paper's future-work ablation on clustering methods).
package cluster

import (
	"math"
	"sort"

	"repro/internal/document"
	"repro/internal/index"
)

// Vector is a sparse term-weight vector. Following the experimental setup,
// "each result is modeled as a vector whose components are features in the
// results and the weight of each component is the TF of the feature".
type Vector map[string]float64

// VectorFromDoc builds the TF vector of a document from the index.
func VectorFromDoc(idx *index.Index, id document.DocID) Vector {
	v := Vector{}
	for _, term := range idx.DocTerms(id) {
		v[term] = float64(idx.TermFreq(id, term))
	}
	return v
}

// sortedTerms returns v's terms sorted. Accumulating in sorted order makes
// Norm and Dot bit-identical across runs (map iteration order varies and
// float addition is not associative); k-means assignment ties would
// otherwise flip between runs.
func (v Vector) sortedTerms() []string {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, t := range v.sortedTerms() {
		w := v[t]
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the dot product v·u.
func (v Vector) Dot(u Vector) float64 {
	small, large := v, u
	if len(u) < len(v) {
		small, large = u, v
	}
	s := 0.0
	for _, term := range small.sortedTerms() {
		if w2, ok := large[term]; ok {
			s += small[term] * w2
		}
	}
	return s
}

// Cosine returns the cosine similarity between v and u in [0,1] for
// non-negative weights; 0 when either vector is empty.
func (v Vector) Cosine(u Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// CosineDistance returns 1 - cosine similarity, the distance k-means
// minimizes here.
func (v Vector) CosineDistance(u Vector) float64 { return 1 - v.Cosine(u) }

// Add accumulates u into v.
func (v Vector) Add(u Vector) {
	for term, w := range u {
		v[term] += w
	}
}

// Scale multiplies every weight by f.
func (v Vector) Scale(f float64) {
	for term := range v {
		v[term] *= f
	}
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for term, w := range v {
		out[term] = w
	}
	return out
}

// Mean returns the centroid of vs (the zero vector for empty input).
func Mean(vs []Vector) Vector {
	out := Vector{}
	if len(vs) == 0 {
		return out
	}
	for _, v := range vs {
		out.Add(v)
	}
	out.Scale(1 / float64(len(vs)))
	return out
}

// TopTerms returns the n highest-weight terms of v, ties broken
// alphabetically, used for cluster labels and debugging.
func (v Vector) TopTerms(n int) []string {
	type tw struct {
		term string
		w    float64
	}
	all := make([]tw, 0, len(v))
	for term, w := range v {
		all = append(all, tw{term, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].term < all[j].term
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].term
	}
	return out
}
