// Package cluster implements the result-clustering substrate: sparse
// term-frequency vectors with cosine similarity, k-means (the paper's
// clustering method, Appendix C) with k-means++ seeding, and agglomerative
// clustering (for the paper's future-work ablation on clustering methods).
//
// Vectors are interned: a Dict built once per clustering run maps terms to
// dense int32 IDs in lexicographic order, and a Vector stores parallel
// sorted ID/weight slices with the Euclidean norm computed at construction
// and cached. Because ID order equals lexicographic term order, merge-join
// Dot and the norm accumulate in exactly the order the earlier map-backed
// representation used (sorted terms), so every similarity — and therefore
// every clustering — is bit-identical to it for a fixed seed.
package cluster

import (
	"math"
	"slices"
	"sort"

	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/termdict"
)

// Dict interns the vocabulary of one clustering run. Term IDs are assigned
// in lexicographic order, which is what keeps merge-join accumulation order
// identical to the old sorted-map accumulation (see package comment).
type Dict struct {
	ids   map[string]int32
	terms []string
}

// NewDict builds a dictionary over the given terms (deduplicated, sorted).
func NewDict(terms []string) *Dict {
	uniq := make([]string, len(terms))
	copy(uniq, terms)
	sort.Strings(uniq)
	n := 0
	for i, t := range uniq {
		if i == 0 || t != uniq[i-1] {
			uniq[n] = t
			n++
		}
	}
	uniq = uniq[:n]
	d := &Dict{ids: make(map[string]int32, n), terms: uniq}
	for i, t := range uniq {
		d.ids[t] = int32(i)
	}
	return d
}

// DictForDocs builds the dictionary over every distinct term of the given
// documents — the once-per-run interning step of a clustering.
func DictForDocs(idx *index.Index, docs []document.DocID) *Dict {
	seen := make(map[string]struct{})
	var terms []string
	for _, id := range docs {
		for _, t := range idx.DocTerms(id) {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				terms = append(terms, t)
			}
		}
	}
	sort.Strings(terms)
	d := &Dict{ids: make(map[string]int32, len(terms)), terms: terms}
	for i, t := range terms {
		d.ids[t] = int32(i)
	}
	return d
}

// ID returns the interned ID of term.
func (d *Dict) ID(term string) (int32, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the term for an interned ID.
func (d *Dict) Term(id int32) string { return d.terms[id] }

// Len returns the vocabulary size (the vector dimension).
func (d *Dict) Len() int { return len(d.terms) }

// Vector is a sparse term-weight vector over a Dict's ID space. Following
// the experimental setup, "each result is modeled as a vector whose
// components are features in the results and the weight of each component
// is the TF of the feature". IDs are sorted ascending; the norm is computed
// at construction and cached, and mutation (Add, Scale) invalidates it.
//
// A Vector is safe for concurrent reads once constructed; Add and Scale
// must not race with readers.
type Vector struct {
	ids    []int32
	ws     []float64
	norm   float64
	normOK bool
}

// newVectorSorted wraps already-sorted parallel slices and caches the norm.
func newVectorSorted(ids []int32, ws []float64) *Vector {
	v := &Vector{ids: ids, ws: ws}
	v.norm = v.computeNorm()
	v.normOK = true
	return v
}

// Vector builds a vector from a term→weight map. Terms absent from the
// dictionary are dropped (the vector is the projection onto d's space).
func (d *Dict) Vector(weights map[string]float64) *Vector {
	ids := make([]int32, 0, len(weights))
	for term := range weights {
		if id, ok := d.ids[term]; ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ws := make([]float64, len(ids))
	for i, id := range ids {
		ws[i] = weights[d.terms[id]]
	}
	return newVectorSorted(ids, ws)
}

// VectorFromDoc builds the TF vector of a document from the index, projected
// onto this dictionary's local ID space. Because the index keeps DocTermIDs
// sorted and both ID orders are lexicographic, the output slices come out
// sorted without a per-vector sort. Corpus-backed clustering no longer
// interns a per-run Dict — see VectorFromDocGlobal — so this path serves
// standalone dictionaries and tests.
func (d *Dict) VectorFromDoc(idx *index.Index, id document.DocID) *Vector {
	terms := idx.DocTerms(id)
	freqs := idx.DocTermFreqs(id)
	ids := make([]int32, 0, len(terms))
	ws := make([]float64, 0, len(terms))
	for i, t := range terms {
		if tid, ok := d.ids[t]; ok {
			ids = append(ids, tid)
			ws = append(ws, float64(freqs[i]))
		}
	}
	return newVectorSorted(ids, ws)
}

// VectorFromDocGlobal builds the TF vector of a document over the index's
// corpus-global TermID space: the ID slice is the document's arena slice
// itself (shared, read-only — Vector never mutates its ids in place) and only
// the weights are materialized. No dictionary, no string, no per-run
// interning. Global TermIDs are lexicographic like Dict IDs, so dot products
// and norms accumulate in the identical order.
func VectorFromDocGlobal(idx *index.Index, id document.DocID) *Vector {
	freqs := idx.DocTermFreqs(id)
	ws := make([]float64, len(freqs))
	for i, f := range freqs {
		ws[i] = float64(f)
	}
	return newVectorSorted(idx.DocTermIDs(id), ws)
}

// Len returns the number of non-zero components.
func (v *Vector) Len() int { return len(v.ids) }

// computeNorm accumulates in ascending ID (= sorted term) order.
func (v *Vector) computeNorm() float64 {
	s := 0.0
	for _, w := range v.ws {
		s += w * w
	}
	return math.Sqrt(s)
}

// Norm returns the Euclidean norm, cached since construction or the last
// mutation.
func (v *Vector) Norm() float64 {
	if !v.normOK {
		v.norm = v.computeNorm()
		v.normOK = true
	}
	return v.norm
}

// Dot returns the dot product v·u by merge-joining the sorted ID slices.
// Common terms are visited in ascending ID order — the same order the old
// map-backed Dot visited its sorted term set — so the sum is bit-identical.
func (v *Vector) Dot(u *Vector) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(v.ids) && j < len(u.ids) {
		a, b := v.ids[i], u.ids[j]
		switch {
		case a == b:
			s += v.ws[i] * u.ws[j]
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity between v and u in [0,1] for
// non-negative weights; 0 when either vector is empty.
func (v *Vector) Cosine(u *Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// CosineDistance returns 1 - cosine similarity, the distance k-means
// minimizes here.
func (v *Vector) CosineDistance(u *Vector) float64 { return 1 - v.Cosine(u) }

// Add accumulates u into v and invalidates the cached norm.
func (v *Vector) Add(u *Vector) {
	ids := make([]int32, 0, len(v.ids)+len(u.ids))
	ws := make([]float64, 0, len(v.ids)+len(u.ids))
	i, j := 0, 0
	for i < len(v.ids) || j < len(u.ids) {
		switch {
		case j == len(u.ids) || (i < len(v.ids) && v.ids[i] < u.ids[j]):
			ids = append(ids, v.ids[i])
			ws = append(ws, v.ws[i])
			i++
		case i == len(v.ids) || u.ids[j] < v.ids[i]:
			ids = append(ids, u.ids[j])
			ws = append(ws, u.ws[j])
			j++
		default:
			ids = append(ids, v.ids[i])
			ws = append(ws, v.ws[i]+u.ws[j])
			i++
			j++
		}
	}
	v.ids, v.ws = ids, ws
	v.normOK = false
}

// Scale multiplies every weight by f and invalidates the cached norm.
func (v *Vector) Scale(f float64) {
	for i := range v.ws {
		v.ws[i] *= f
	}
	v.normOK = false
}

// Clone returns an independent copy (the norm cache carries over).
func (v *Vector) Clone() *Vector {
	out := &Vector{
		ids:    make([]int32, len(v.ids)),
		ws:     make([]float64, len(v.ws)),
		norm:   v.norm,
		normOK: v.normOK,
	}
	copy(out.ids, v.ids)
	copy(out.ws, v.ws)
	return out
}

// Weight returns the weight of the component with the given ID (0 when
// absent), by binary search.
func (v *Vector) Weight(id int32) float64 {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return v.ws[i]
	}
	return 0
}

// ToMap converts back to a term→weight map, for tests and debugging.
func (v *Vector) ToMap(d *Dict) map[string]float64 {
	out := make(map[string]float64, len(v.ids))
	for i, id := range v.ids {
		out[d.terms[id]] = v.ws[i]
	}
	return out
}

// Mean returns the centroid of vs in a dim-dimensional space (the zero
// vector for empty input). Each component accumulates in input order over an
// epoch-stamped dense buffer (termdict.DenseScratch — first touch
// zero-initializes, exactly like a zeroed buffer, preserving the map-backed
// Add loop's per-term summation order) and emits in ascending ID order
// scaled by 1/len(vs).
func Mean(vs []*Vector, dim int) *Vector {
	if len(vs) == 0 {
		return newVectorSorted(nil, nil)
	}
	var s termdict.DenseScratch
	s.Reset(dim)
	for _, v := range vs {
		for i, id := range v.ids {
			s.Add(id, v.ws[i])
		}
	}
	slices.Sort(s.Touched)
	f := 1 / float64(len(vs))
	ids := make([]int32, len(s.Touched))
	ws := make([]float64, len(s.Touched))
	for i, id := range s.Touched {
		ids[i] = id
		ws[i] = s.Vals[id] * f
	}
	return newVectorSorted(ids, ws)
}

// TopTerms returns the n highest-weight terms of v, ties broken
// alphabetically (ascending ID = alphabetical), used for cluster labels and
// debugging.
func (v *Vector) TopTerms(d *Dict, n int) []string {
	order := make([]int, len(v.ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if v.ws[i] != v.ws[j] {
			return v.ws[i] > v.ws[j]
		}
		return v.ids[i] < v.ids[j]
	})
	if n > len(order) {
		n = len(order)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = d.terms[v.ids[order[i]]]
	}
	return out
}
