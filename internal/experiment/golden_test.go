package experiment

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// The golden file pins the ISKR and PEBC expansions of every test query of
// both datasets as produced by the pre-bitset, map-backed expansion core.
// The dense-ID/bitset implementation must reproduce every expanded query
// term-for-term and every precision/recall/F bit-for-bit (floats are compared
// via Float64bits): bitsets iterate documents in ascending dense-ID order,
// which is exactly the sorted-DocID order the old code used at every
// accumulation site, and the candidate pool keeps its lexicographic order, so
// argmax tie-breaks resolve identically.
//
// Regenerate with QEC_UPDATE_GOLDEN=1 go test ./internal/experiment -run Expansion
// (only legitimate when the expansion semantics intentionally change).

const expansionGoldenPath = "testdata/expansion_golden.json"

type goldenExpansion struct {
	Terms       []string  `json:"terms"`
	PRFBits     [3]uint64 `json:"prf_bits"`
	Iterations  int       `json:"iterations"`
	Evaluations int       `json:"evaluations"`
}

type goldenQuery struct {
	Dataset string            `json:"dataset"`
	QueryID string            `json:"query_id"`
	ISKR    []goldenExpansion `json:"iskr"`
	PEBC    []goldenExpansion `json:"pebc"`
}

func captureExpansion(e core.Expanded) goldenExpansion {
	return goldenExpansion{
		Terms: append([]string{}, e.Query.Terms...),
		PRFBits: [3]uint64{
			math.Float64bits(e.PRF.Precision),
			math.Float64bits(e.PRF.Recall),
			math.Float64bits(e.PRF.F),
		},
		Iterations:  e.Iterations,
		Evaluations: e.Evaluations,
	}
}

func runExpansionGolden(t *testing.T) []goldenQuery {
	t.Helper()
	r := NewRunner(DefaultConfig())
	var out []goldenQuery
	for _, qr := range r.AllQueryRuns() {
		gq := goldenQuery{Dataset: qr.Dataset.Name, QueryID: qr.TQ.ID}
		iskr := &core.ISKR{}
		pebc := &core.PEBC{Segments: r.Config.PEBCSegments,
			Iterations: r.Config.PEBCIterations, Seed: r.Config.Seed}
		for _, p := range qr.Problems {
			gq.ISKR = append(gq.ISKR, captureExpansion(iskr.Expand(p)))
			gq.PEBC = append(gq.PEBC, captureExpansion(pebc.Expand(p)))
		}
		out = append(out, gq)
	}
	return out
}

func TestExpansionMatchesPrePRGolden(t *testing.T) {
	got := runExpansionGolden(t)
	if os.Getenv("QEC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(expansionGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expansionGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d queries)", expansionGoldenPath, len(got))
		return
	}
	data, err := os.ReadFile(expansionGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with QEC_UPDATE_GOLDEN=1): %v", err)
	}
	var want []goldenQuery
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d golden queries, want %d", len(got), len(want))
	}
	for i := range want {
		compareGoldenQuery(t, got[i], want[i])
	}
}

func compareGoldenQuery(t *testing.T, got, want goldenQuery) {
	t.Helper()
	if got.Dataset != want.Dataset || got.QueryID != want.QueryID {
		t.Fatalf("query order drifted: got %s/%s want %s/%s",
			got.Dataset, got.QueryID, want.Dataset, want.QueryID)
	}
	for _, m := range []struct {
		name      string
		got, want []goldenExpansion
	}{{"ISKR", got.ISKR, want.ISKR}, {"PEBC", got.PEBC, want.PEBC}} {
		if len(m.got) != len(m.want) {
			t.Errorf("%s/%s %s: %d clusters, want %d",
				got.Dataset, got.QueryID, m.name, len(m.got), len(m.want))
			continue
		}
		for ci := range m.want {
			g, w := m.got[ci], m.want[ci]
			label := fmt.Sprintf("%s/%s %s cluster %d", got.Dataset, got.QueryID, m.name, ci)
			if len(g.Terms) != len(w.Terms) {
				t.Errorf("%s: query %v, want %v", label, g.Terms, w.Terms)
				continue
			}
			for ti := range w.Terms {
				if g.Terms[ti] != w.Terms[ti] {
					t.Errorf("%s: query %v, want %v", label, g.Terms, w.Terms)
					break
				}
			}
			if g.PRFBits != w.PRFBits {
				t.Errorf("%s: PRF bits %v, want %v", label, g.PRFBits, w.PRFBits)
			}
			if g.Iterations != w.Iterations || g.Evaluations != w.Evaluations {
				t.Errorf("%s: iterations/evaluations %d/%d, want %d/%d",
					label, g.Iterations, g.Evaluations, w.Iterations, w.Evaluations)
			}
		}
	}
}
