package experiment

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/search"
	"repro/internal/userstudy"
)

// Study is the evaluated state of every test query under every approach —
// the raw material from which each figure is derived.
type Study struct {
	runner  *Runner
	Runs    []*QueryRun
	Methods [][]MethodQueries // parallel to Runs

	// Serial re-timing pass, computed lazily: RunStudy fans queries across
	// workers, so the Elapsed fields in Methods (and the ClusterTime in
	// Runs) are measured under CPU contention and are unusable as per-method
	// costs. Figure6 and ClusteringTime re-run their measurements serially.
	timingOnce   sync.Once
	serialTimes  [][]MethodQueries
	serialKMeans []time.Duration
}

// serialTiming re-executes every query's method suite and clustering one at
// a time, so wall-clock measurements reflect per-method cost rather than
// whatever contention the parallel study fan-out produced. Method outputs
// are identical to s.Methods (everything is deterministic); only the
// Elapsed measurements differ.
func (s *Study) serialTiming() ([][]MethodQueries, []time.Duration) {
	s.timingOnce.Do(func() {
		s.serialTimes = make([][]MethodQueries, len(s.Runs))
		s.serialKMeans = make([]time.Duration, len(s.Runs))
		for i, qr := range s.Runs {
			_, s.serialKMeans[i] = s.runner.clusterResults(qr.Dataset, qr.Universe)
			s.serialTimes[i] = s.runner.RunAll(qr)
		}
	})
	return s.serialTimes, s.serialKMeans
}

// RunStudy prepares and evaluates all 20 test queries once. Evaluation fans
// out across GOMAXPROCS workers (queries are independent); collection is by
// index, so the study is identical to a serially built one.
func (r *Runner) RunStudy() *Study {
	runs := r.AllQueryRuns()
	methods := make([][]MethodQueries, len(runs))
	core.ParallelFor(len(runs), func(i int) {
		methods[i] = r.RunAll(runs[i])
	})
	return &Study{runner: r, Runs: runs, Methods: methods}
}

// --- Figures 1 & 2: individual query scores -------------------------------

// MethodSummary pairs an approach with an aggregated rater summary.
type MethodSummary struct {
	Method  string
	Summary userstudy.Summary
}

// Figure1And2 reproduces the individual-query part of the user study: every
// rater scores every expanded query of every approach; Figure 1 is the mean
// score per approach, Figure 2 the option percentages.
func (s *Study) Figure1And2() []MethodSummary {
	byMethod := map[string][]userstudy.Judgment{}
	for i, qr := range s.Runs {
		for _, mq := range s.Methods[i] {
			for _, q := range mq.Queries {
				rel := s.runner.relatedness(qr, q)
				help := s.runner.helpfulness(qr, q)
				if mq.Method == MethodGoogle {
					// Raters judge log suggestions by real-world meaning:
					// a popular suggestion is never "not related", though
					// it may still lack results-orientation (option B).
					if pop := s.runner.logPopularity(qr.Dataset, q); pop > 0 {
						if floor := 0.35 + 0.3*pop; rel < floor {
							rel = floor
						}
					}
				}
				byMethod[mq.Method] = append(byMethod[mq.Method],
					s.runner.pool.JudgeIndividual(rel, help)...)
			}
		}
	}
	return summarizeByMethod(byMethod)
}

// --- Figures 3 & 4: collective scores --------------------------------------

// Figure3And4 reproduces the collective part: per user query, raters judge
// each approach's whole set of expanded queries for comprehensiveness and
// diversity; Figure 3 is the mean collective score, Figure 4 the option
// percentages.
func (s *Study) Figure3And4() []MethodSummary {
	byMethod := map[string][]userstudy.Judgment{}
	for i, qr := range s.Runs {
		for _, mq := range s.Methods[i] {
			sets := s.runner.resultSets(qr, mq.Queries)
			compr := eval.Comprehensiveness(sets, qr.Universe, qr.Weights)
			div := eval.Diversity(sets)
			byMethod[mq.Method] = append(byMethod[mq.Method],
				s.runner.pool.JudgeCollective(compr, div)...)
		}
	}
	return summarizeByMethod(byMethod)
}

func summarizeByMethod(byMethod map[string][]userstudy.Judgment) []MethodSummary {
	keys := make([]string, 0, len(byMethod))
	for m := range byMethod {
		keys = append(keys, m)
	}
	sortByMethodOrder(keys)
	out := make([]MethodSummary, 0, len(keys))
	for _, m := range keys {
		out = append(out, MethodSummary{Method: m, Summary: userstudy.Summarize(byMethod[m])})
	}
	return out
}

// --- Figure 5: Eq. 1 scores per query --------------------------------------

// ScoreRow is one query's Eq. 1 scores for the cluster-based approaches.
type ScoreRow struct {
	QueryID string
	Scores  map[string]float64 // ISKR, PEBC, F-measure, CS
}

// Figure5 reproduces Figure 5(a) (datasetName "shopping") or 5(b)
// ("wikipedia").
func (s *Study) Figure5(datasetName string) []ScoreRow {
	var out []ScoreRow
	for i, qr := range s.Runs {
		if qr.Dataset.Name != datasetName {
			continue
		}
		row := ScoreRow{QueryID: qr.TQ.ID, Scores: map[string]float64{}}
		for _, mq := range s.Methods[i] {
			if mq.Applicable {
				row.Scores[mq.Method] = mq.Score
			}
		}
		out = append(out, row)
	}
	return out
}

// --- Figure 6: expansion time per query ------------------------------------

// TimeRow is one query's expansion time per approach.
type TimeRow struct {
	QueryID string
	Times   map[string]time.Duration // all five implemented methods
}

// Figure6 reproduces Figure 6(a)/(b): query expansion time (clustering time
// excluded, reported separately as in §5.3). Times come from the serial
// re-timing pass, uncontaminated by the parallel study fan-out.
func (s *Study) Figure6(datasetName string) []TimeRow {
	times, _ := s.serialTiming()
	var out []TimeRow
	for i, qr := range s.Runs {
		if qr.Dataset.Name != datasetName {
			continue
		}
		row := TimeRow{QueryID: qr.TQ.ID, Times: map[string]time.Duration{}}
		for _, mq := range times[i] {
			row.Times[mq.Method] = mq.Elapsed
		}
		out = append(out, row)
	}
	return out
}

// ClusteringTime returns the mean k-means time per dataset (§5.3 prose:
// 0.02s shopping, 0.35s Wikipedia on the paper's hardware), measured by the
// serial re-timing pass.
func (s *Study) ClusteringTime(datasetName string) time.Duration {
	_, kmeans := s.serialTiming()
	var total time.Duration
	n := 0
	for i, qr := range s.Runs {
		if qr.Dataset.Name != datasetName {
			continue
		}
		total += kmeans[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// --- Figure 7: scalability --------------------------------------------------

// ScalabilityRow is one point of the Figure 7 sweep: QW2 "columbia" with n
// results; times include clustering + generation, as in the paper.
type ScalabilityRow struct {
	NumResults int
	ISKR       time.Duration
	PEBC       time.Duration
}

// Figure7 runs the scalability sweep over result counts (paper: 100..500 in
// steps of 100, query QW2 "columbia").
func (r *Runner) Figure7(counts []int) []ScalabilityRow {
	if len(counts) == 0 {
		counts = []int{100, 200, 300, 400, 500}
	}
	// A corpus big enough for the largest count: columbia has 34 docs per
	// scale unit. The dataset is memoized on the Runner — repeated sweeps
	// (benchmark iterations, figure regeneration) pay generation once.
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	d := r.ScaledWiki(maxN/34 + 1)
	eng := search.NewEngine(d.Index)
	q := search.ParseQuery(d.Index, "columbia")
	all := eng.Search(q, search.And, 0)

	var out []ScalabilityRow
	for _, n := range counts {
		if n > len(all) {
			n = len(all)
		}
		results := all[:n]
		weights := eval.Weights{}
		universe := search.ResultSet(results)
		for _, res := range results {
			weights[res.Doc] = res.Score
		}
		row := ScalabilityRow{NumResults: n}
		for _, name := range []string{MethodISKR, MethodPEBC} {
			start := time.Now()
			cl := cluster.KMeans(d.Index, universe.IDs(), cluster.Options{
				K: 3, Seed: r.Config.Seed, PlusPlus: true,
			})
			problems := core.BuildProblems(d.Index, q, cl, weights, core.DefaultPoolOptions())
			var ex core.Expander
			if name == MethodISKR {
				ex = &core.ISKR{}
			} else {
				ex = &core.PEBC{Segments: r.Config.PEBCSegments,
					Iterations: r.Config.PEBCIterations, Seed: r.Config.Seed}
			}
			core.Solve(ex, problems)
			elapsed := time.Since(start)
			if name == MethodISKR {
				row.ISKR = elapsed
			} else {
				row.PEBC = elapsed
			}
		}
		out = append(out, row)
	}
	return out
}

// --- Figures 8 & 9: expanded-query listings ---------------------------------

// ListingEntry is one approach's expanded queries for one test query,
// rendered as strings (the Figures 8–9 format).
type ListingEntry struct {
	QueryID string
	Method  string
	Queries []string
}

// Listing renders every approach's expanded queries for every test query.
func (s *Study) Listing() []ListingEntry {
	var out []ListingEntry
	for i, qr := range s.Runs {
		for _, mq := range s.Methods[i] {
			entry := ListingEntry{QueryID: qr.TQ.ID, Method: mq.Method}
			for _, q := range mq.Queries {
				entry.Queries = append(entry.Queries, renderQuery(qr, q))
			}
			out = append(out, entry)
		}
	}
	return out
}

// renderQuery formats an expanded query the way Figures 8–9 do: composite
// triplet terms as "entity: attribute: value", words comma-separated after
// the user query.
func renderQuery(qr *QueryRun, q search.Query) string {
	out := ""
	for i, t := range q.Terms {
		if i > 0 {
			out += ", "
		}
		if trip, ok := parseComposite(t); ok {
			out += trip
			continue
		}
		out += t
	}
	return out
}

func parseComposite(term string) (string, bool) {
	first, rest := -1, -1
	for i := 0; i < len(term); i++ {
		if term[i] == ':' {
			if first < 0 {
				first = i
			} else {
				rest = i
				break
			}
		}
	}
	if first < 0 || rest < 0 {
		return "", false
	}
	return term[:first] + ": " + term[first+1:rest] + ": " + term[rest+1:], true
}

// Table1 returns the query sets, in the paper's layout.
func (r *Runner) Table1() (wikipedia, shopping []dataset.TestQuery) {
	return r.Wiki.Queries, r.Shopping.Queries
}
