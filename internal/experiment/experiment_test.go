package experiment

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

// The full study is the expensive fixture; build it once for all tests.
var (
	studyOnce sync.Once
	theRunner *Runner
	theStudy  *Study
)

func sharedStudy(t *testing.T) (*Runner, *Study) {
	t.Helper()
	studyOnce.Do(func() {
		theRunner = NewRunner(DefaultConfig())
		theStudy = theRunner.RunStudy()
	})
	return theRunner, theStudy
}

func TestTable1(t *testing.T) {
	r, _ := sharedStudy(t)
	wiki, shop := r.Table1()
	if len(wiki) != 10 || len(shop) != 10 {
		t.Fatalf("Table 1 = %d + %d queries, want 10 + 10", len(wiki), len(shop))
	}
	if wiki[5].ID != "QW6" || wiki[5].Raw != "java" {
		t.Errorf("QW6 = %+v", wiki[5])
	}
	if shop[0].ID != "QS1" || shop[0].Raw != "canon products" {
		t.Errorf("QS1 = %+v", shop[0])
	}
}

func TestStudyCoversAllQueriesAndMethods(t *testing.T) {
	_, s := sharedStudy(t)
	if len(s.Runs) != 20 {
		t.Fatalf("%d runs, want 20", len(s.Runs))
	}
	for i, ms := range s.Methods {
		if len(ms) != 6 {
			t.Errorf("run %d evaluated %d methods, want 6", i, len(ms))
		}
	}
}

func TestFigure5ShapeHolds(t *testing.T) {
	_, s := sharedStudy(t)
	for _, ds := range []string{"shopping", "wikipedia"} {
		rows := s.Figure5(ds)
		if len(rows) != 10 {
			t.Fatalf("%s: %d rows, want 10", ds, len(rows))
		}
		var iskr, pebc, cs float64
		for _, row := range rows {
			for m, v := range row.Scores {
				if v < 0 || v > 1+1e-9 {
					t.Errorf("%s %s %s score %v out of range", ds, row.QueryID, m, v)
				}
			}
			iskr += row.Scores[MethodISKR]
			pebc += row.Scores[MethodPEBC]
			cs += row.Scores[MethodCS]
		}
		// The paper's headline: ISKR and PEBC clearly beat CS on average.
		if iskr <= cs || pebc <= cs {
			t.Errorf("%s: mean ISKR %.2f / PEBC %.2f not above CS %.2f",
				ds, iskr/10, pebc/10, cs/10)
		}
		// And they achieve high absolute scores (many perfect on shopping).
		if iskr/10 < 0.7 {
			t.Errorf("%s: mean ISKR score %.2f too low", ds, iskr/10)
		}
	}
}

func TestFigure5ShoppingHasPerfectScores(t *testing.T) {
	_, s := sharedStudy(t)
	perfect := 0
	for _, row := range s.Figure5("shopping") {
		if row.Scores[MethodISKR] > 0.999 {
			perfect++
		}
	}
	// "On the shopping data, both algorithms achieve perfect score for many
	// queries."
	if perfect < 5 {
		t.Errorf("only %d shopping queries with perfect ISKR score, want >= 5", perfect)
	}
}

func TestFigure1And2Shape(t *testing.T) {
	_, s := sharedStudy(t)
	rows := s.Figure1And2()
	if len(rows) != 6 {
		t.Fatalf("%d methods, want 6", len(rows))
	}
	byMethod := map[string]float64{}
	for _, ms := range rows {
		byMethod[ms.Method] = ms.Summary.MeanScore
		sum := ms.Summary.PctA + ms.Summary.PctB + ms.Summary.PctC
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: option percentages sum to %v", ms.Method, sum)
		}
		if ms.Summary.MeanScore < 1 || ms.Summary.MeanScore > 5 {
			t.Errorf("%s: mean score %v out of 1..5", ms.Method, ms.Summary.MeanScore)
		}
	}
	// ISKR and PEBC above CS (Figure 1's ordering).
	if byMethod[MethodISKR] <= byMethod[MethodCS] {
		t.Errorf("ISKR %.2f not above CS %.2f", byMethod[MethodISKR], byMethod[MethodCS])
	}
	if byMethod[MethodPEBC] <= byMethod[MethodCS] {
		t.Errorf("PEBC %.2f not above CS %.2f", byMethod[MethodPEBC], byMethod[MethodCS])
	}
}

func TestFigure3And4Shape(t *testing.T) {
	_, s := sharedStudy(t)
	rows := s.Figure3And4()
	byMethod := map[string]MethodSummary{}
	for _, ms := range rows {
		byMethod[ms.Method] = ms
	}
	// ISKR/PEBC are comprehensive and diverse: mostly option C, scores above
	// every baseline (Figure 3/4's headline).
	for _, m := range []string{MethodISKR, MethodPEBC} {
		if byMethod[m].Summary.PctC < 60 {
			t.Errorf("%s: only %.0f%% option C", m, byMethod[m].Summary.PctC)
		}
		for _, base := range []string{MethodCS, MethodDataClouds, MethodGoogle} {
			if byMethod[m].Summary.MeanScore <= byMethod[base].Summary.MeanScore {
				t.Errorf("%s %.2f not above %s %.2f", m,
					byMethod[m].Summary.MeanScore, base, byMethod[base].Summary.MeanScore)
			}
		}
	}
	// Google is mostly "either not comprehensive or not diverse" (option B):
	// its suggestions miss senses or miss the corpus.
	if g := byMethod[MethodGoogle]; g.Summary.PctB < 40 {
		t.Errorf("Google: only %.0f%% option B", g.Summary.PctB)
	}
}

func TestFigure6TimesRecorded(t *testing.T) {
	_, s := sharedStudy(t)
	for _, ds := range []string{"shopping", "wikipedia"} {
		rows := s.Figure6(ds)
		if len(rows) != 10 {
			t.Fatalf("%s: %d rows", ds, len(rows))
		}
		for _, row := range rows {
			for m, d := range row.Times {
				if d <= 0 {
					t.Errorf("%s %s %s: non-positive time", ds, row.QueryID, m)
				}
			}
		}
		// This test used to pin the paper's Figure 6 ordering ("Data clouds
		// is generally faster than both ISKR and PEBC"), which held for this
		// repo's original map-backed expansion core. The dense-ID/bitset
		// core inverted it: ISKR, PEBC and even the F-measure variant now
		// undercut DataClouds' pass over the ranked results, so only the
		// recording of per-method times is asserted here. The deviation is
		// documented in the README's Performance section.
	}
}

func TestClusteringTimePositive(t *testing.T) {
	_, s := sharedStudy(t)
	for _, ds := range []string{"shopping", "wikipedia"} {
		if s.ClusteringTime(ds) <= 0 {
			t.Errorf("%s: clustering time not positive", ds)
		}
	}
}

func TestFigure7GrowsWithResultCount(t *testing.T) {
	r, _ := sharedStudy(t)
	rows := r.Figure7([]int{100, 300, 500})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Loose monotonicity: 500-result runs must cost more than 100-result
	// runs (the paper reports linear growth; wall-clock is noisy, so only
	// the endpoints are compared).
	if rows[2].ISKR <= rows[0].ISKR {
		t.Errorf("ISKR time did not grow: %v .. %v", rows[0].ISKR, rows[2].ISKR)
	}
	if rows[2].PEBC <= rows[0].PEBC {
		t.Errorf("PEBC time did not grow: %v .. %v", rows[0].PEBC, rows[2].PEBC)
	}
	for _, row := range rows {
		if row.NumResults < 100 {
			t.Errorf("row with %d results", row.NumResults)
		}
	}
}

func TestListingCoversEverything(t *testing.T) {
	_, s := sharedStudy(t)
	entries := s.Listing()
	if len(entries) != 20*6 {
		t.Fatalf("%d listing entries, want 120", len(entries))
	}
	seen := map[string]map[string]bool{}
	for _, e := range entries {
		if seen[e.QueryID] == nil {
			seen[e.QueryID] = map[string]bool{}
		}
		seen[e.QueryID][e.Method] = true
	}
	for qid, methods := range seen {
		if len(methods) != 6 {
			t.Errorf("%s: %d methods", qid, len(methods))
		}
	}
}

func TestListingRendersComposites(t *testing.T) {
	_, s := sharedStudy(t)
	found := false
	for _, e := range s.Listing() {
		for _, q := range e.Queries {
			if containsSub(q, ": category: ") {
				found = true
			}
		}
	}
	if !found {
		t.Error("no listing renders a composite triplet in 'entity: attribute: value' form")
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPrepareUniverseMatchesTopK(t *testing.T) {
	r, _ := sharedStudy(t)
	qr := r.Prepare(r.Wiki, dataset.TestQuery{ID: "QW2", Raw: "columbia"})
	if qr.Universe.Len() > r.Config.TopK {
		t.Errorf("universe %d exceeds TopK %d", qr.Universe.Len(), r.Config.TopK)
	}
	if qr.Clustering.K() < 2 {
		t.Errorf("K = %d", qr.Clustering.K())
	}
	if len(qr.Problems) != qr.Clustering.K() {
		t.Errorf("%d problems for %d clusters", len(qr.Problems), qr.Clustering.K())
	}
	total := 0
	for _, ids := range qr.Clustering.Clusters {
		total += len(ids)
	}
	if total != qr.Universe.Len() {
		t.Errorf("clusters cover %d of %d results", total, qr.Universe.Len())
	}
}

func TestLogPopularity(t *testing.T) {
	r, _ := sharedStudy(t)
	// "java tutorials" is the most popular wiki log entry (990).
	qr := r.Prepare(r.Wiki, dataset.TestQuery{ID: "QW6", Raw: "java"})
	queries := r.RunAll(qr)
	var google *MethodQueries
	for i := range queries {
		if queries[i].Method == MethodGoogle {
			google = &queries[i]
		}
	}
	if google == nil || len(google.Queries) == 0 {
		t.Fatal("no Google suggestions for java")
	}
	pop := r.logPopularity(r.Wiki, google.Queries[0])
	if pop <= 0 || pop > 1 {
		t.Errorf("popularity = %v, want (0,1]", pop)
	}
}
