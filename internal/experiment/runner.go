// Package experiment is the harness that regenerates every table and figure
// of the paper's evaluation (Section 5): the Eq. 1 score comparisons
// (Figure 5), the timing comparison (Figure 6), the scalability sweep
// (Figure 7), the simulated user study (Figures 1–4), the Table 1 query
// sets, and the Figures 8–9 expanded-query listings.
package experiment

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/search"
	"repro/internal/userstudy"
)

// Method names, in the order the paper's figures list them.
const (
	MethodISKR       = "ISKR"
	MethodPEBC       = "PEBC"
	MethodFMeasure   = "F-measure"
	MethodCS         = "CS"
	MethodDataClouds = "DataClouds"
	MethodGoogle     = "Google"
)

// Config fixes the experimental setup (Appendix C).
type Config struct {
	// Seed drives dataset generation, clustering restarts and PEBC.
	Seed int64
	// Scale multiplies corpus sizes (1 = paper-like result counts).
	Scale int
	// TopK bounds the number of results considered per query on the
	// Wikipedia data set ("all systems only consider the top 30 results").
	// 0 means 30.
	TopK int
	// MaxExpanded caps the number of expanded queries per approach
	// (paper: 5). 0 means 5.
	MaxExpanded int
	// PEBCSegments / PEBCIterations: the paper's experiments use 3 and 3.
	PEBCSegments   int
	PEBCIterations int
}

// DefaultConfig mirrors Appendix C.
func DefaultConfig() Config {
	return Config{Seed: 2011, Scale: 1, TopK: 30, MaxExpanded: 5,
		PEBCSegments: 3, PEBCIterations: 3}
}

func (c *Config) defaults() {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.TopK <= 0 {
		c.TopK = 30
	}
	if c.MaxExpanded <= 0 {
		c.MaxExpanded = 5
	}
	if c.PEBCSegments <= 0 {
		c.PEBCSegments = 3
	}
	if c.PEBCIterations <= 0 {
		c.PEBCIterations = 3
	}
}

// Runner holds the two datasets and shared machinery for all experiments.
type Runner struct {
	Config   Config
	Shopping *dataset.Dataset
	Wiki     *dataset.Dataset
	pool     *userstudy.Pool

	// scaled memoizes the scaled-up Wikipedia corpora the Figure 7 sweep
	// uses, keyed by scale. Dataset generation is a pure function of
	// (seed, scale), and regenerating the scale-15 corpus dominated every
	// Figure7 call before the cache.
	scaledMu sync.Mutex
	scaled   map[int]*dataset.Dataset
}

// ScaledWiki returns the Wikipedia dataset at the given scale for the
// runner's seed, generating it on first use and reusing it afterwards (the
// dataset is read-only once built).
func (r *Runner) ScaledWiki(scale int) *dataset.Dataset {
	r.scaledMu.Lock()
	defer r.scaledMu.Unlock()
	if r.scaled == nil {
		r.scaled = map[int]*dataset.Dataset{}
	}
	if d, ok := r.scaled[scale]; ok {
		return d
	}
	d := dataset.Wikipedia(r.Config.Seed+1, scale)
	r.scaled[scale] = d
	return d
}

// NewRunner generates both corpora and prepares the rater pool.
func NewRunner(cfg Config) *Runner {
	cfg.defaults()
	return &Runner{
		Config:   cfg,
		Shopping: dataset.Shopping(cfg.Seed, cfg.Scale),
		Wiki:     dataset.Wikipedia(cfg.Seed+1, cfg.Scale),
		pool:     userstudy.NewPool(cfg.Seed + 2),
	}
}

// QueryRun is the prepared state for one test query: ranked results, rank
// weights, the k-means clustering, and one Definition 2.2 problem per
// cluster.
type QueryRun struct {
	Dataset    *dataset.Dataset
	TQ         dataset.TestQuery
	Query      search.Query
	Results    []search.Result
	Universe   document.DocSet
	Weights    eval.Weights
	Clustering *cluster.Clustering
	Problems   []*core.Problem
	// ClusterTime is how long k-means took (reported in §5.3's prose).
	ClusterTime time.Duration

	// ubOnce/ub lazily cache the universe as a bitset over corpus DocIDs,
	// shared by every relatedness probe of the run.
	ubOnce sync.Once
	ub     document.BitSet
}

// UniverseBits returns the run's universe as a bitset over corpus DocIDs,
// built once per run. Used to make term-presence probes word-wise: instead
// of asking every universe document whether it has a term, walk the term's
// TermID postings and test membership against this set.
func (qr *QueryRun) UniverseBits() document.BitSet {
	qr.ubOnce.Do(func() {
		qr.ub = document.NewBitSet(qr.Dataset.Index.NumDocs())
		for id := range qr.Universe {
			qr.ub.Add(int(id))
		}
	})
	return qr.ub
}

// Prepare runs the shared pipeline for one test query: search, rank, take
// top-K (Wikipedia only), cluster with k-means, and build the per-cluster
// problems.
func (r *Runner) Prepare(d *dataset.Dataset, tq dataset.TestQuery) *QueryRun {
	eng := search.NewEngine(d.Index)
	q := search.ParseQuery(d.Index, tq.Raw)
	topK := 0
	if d.Name == "wikipedia" {
		topK = r.Config.TopK
	}
	results := eng.Search(q, search.And, topK)
	universe := search.ResultSet(results)
	weights := eval.Weights{}
	for _, res := range results {
		weights[res.Doc] = res.Score
	}

	cl, clusterTime := r.clusterResults(d, universe)
	problems := core.BuildProblems(d.Index, q, cl, weights, core.DefaultPoolOptions())
	return &QueryRun{
		Dataset: d, TQ: tq, Query: q, Results: results, Universe: universe,
		Weights: weights, Clustering: cl, Problems: problems,
		ClusterTime: clusterTime,
	}
}

// clusterResults picks the granularity k and runs k-means for one query's
// result universe, returning the clustering and its wall time. Also used by
// the Study's serial re-timing pass, so the §5.3 clustering-time prose is
// measured without CPU contention from the parallel study fan-out.
//
// k: the user-specified granularity. We derive it from the number of
// distinct ground-truth categories/senses among the results, capped by
// MaxExpanded — standing in for "an upper bound specified by the user".
// When the results are label-homogeneous (e.g. QS3: all routers), the
// user would still want subgroups (the paper's QS3 clusters by product
// line), so we pick k by silhouette over 2..4.
func (r *Runner) clusterResults(d *dataset.Dataset, universe document.DocSet) (*cluster.Clustering, time.Duration) {
	distinct := map[string]struct{}{}
	for id := range universe {
		distinct[d.Labels[id]] = struct{}{}
	}
	k := len(distinct)
	if k > r.Config.MaxExpanded {
		k = r.Config.MaxExpanded
	}

	start := time.Now()
	var cl *cluster.Clustering
	if k >= 2 {
		cl = cluster.KMeans(d.Index, universe.IDs(), cluster.Options{
			K: k, Seed: r.Config.Seed, PlusPlus: true, Restarts: 5,
		})
	} else {
		best := -2.0
		for kk := 2; kk <= 4; kk++ {
			cand := cluster.KMeans(d.Index, universe.IDs(), cluster.Options{
				K: kk, Seed: r.Config.Seed, PlusPlus: true, Restarts: 5,
			})
			if s := cluster.Silhouette(d.Index, cand); s > best {
				best, cl = s, cand
			}
		}
	}
	return cl, time.Since(start)
}

// expanders returns the cluster-based methods, configured per the paper.
func (r *Runner) expanders() []core.Expander {
	return []core.Expander{
		&core.ISKR{},
		&core.PEBC{Segments: r.Config.PEBCSegments,
			Iterations: r.Config.PEBCIterations, Seed: r.Config.Seed},
		&core.FMeasureVariant{},
	}
}

// MethodQueries holds the expanded queries one approach produced for one
// test query, with timing.
type MethodQueries struct {
	Method  string
	Queries []search.Query
	Elapsed time.Duration
	// Score is the Eq. 1 score; NaN-free: 0 when inapplicable (Data Clouds
	// and Google are not cluster-based, per §5.2.2).
	Score      float64
	Applicable bool // whether Score is meaningful for this method
}

// RunAll executes every approach on a prepared query and returns their
// expanded queries, Eq. 1 scores (where applicable) and timings.
func (r *Runner) RunAll(qr *QueryRun) []MethodQueries {
	var out []MethodQueries

	// Cluster-based: ISKR, PEBC, F-measure.
	for _, ex := range r.expanders() {
		start := time.Now()
		res := core.Solve(ex, qr.Problems)
		elapsed := time.Since(start)
		out = append(out, MethodQueries{
			Method: ex.Name(), Queries: res.Queries(), Elapsed: elapsed,
			Score: res.Score, Applicable: true,
		})
	}

	// CS: TFICF labels per cluster.
	cs := &baseline.CS{LabelSize: 3}
	start := time.Now()
	csQueries := cs.Suggest(qr.Dataset.Index, qr.Clustering, qr.Query)
	csScore := r.scoreAgainstClusters(qr, csQueries)
	out = append(out, MethodQueries{
		Method: MethodCS, Queries: csQueries, Elapsed: time.Since(start),
		Score: csScore, Applicable: true,
	})

	// Data Clouds: top words over the ranked results (no clusters).
	dc := &baseline.DataClouds{TopK: len(qr.Problems)}
	start = time.Now()
	dcQueries := dc.Suggest(qr.Dataset.Index, qr.Results, qr.Query)
	out = append(out, MethodQueries{
		Method: MethodDataClouds, Queries: dcQueries, Elapsed: time.Since(start),
	})

	// Google: query-log suggestions (no clusters, no corpus access).
	log := baseline.NewQueryLog(qr.Dataset.Log)
	start = time.Now()
	gQueries := log.Suggest(qr.TQ.Raw, len(qr.Problems))
	out = append(out, MethodQueries{
		Method: MethodGoogle, Queries: gQueries, Elapsed: time.Since(start),
	})

	return out
}

// logPopularity returns a suggestion's normalized popularity in the dataset's
// query log (0 when not found). The simulated raters treat popular log
// queries as inherently "related to the search" — the paper's raters judged
// Google's suggestions by real-world meaning, not corpus presence, and
// marked them down only to "related but there are better ones" when they
// were not results-oriented.
func (r *Runner) logPopularity(d *dataset.Dataset, q search.Query) float64 {
	maxCount := 0
	match := 0
	for _, e := range d.Log {
		if e.Count > maxCount {
			maxCount = e.Count
		}
		terms := search.NewQuery(strings.Fields(strings.ToLower(e.Query))...)
		if terms.Len() != q.Len() {
			continue
		}
		same := true
		for _, t := range q.Terms {
			if !terms.Contains(t) {
				same = false
				break
			}
		}
		if same && e.Count > match {
			match = e.Count
		}
	}
	if maxCount == 0 {
		return 0
	}
	return float64(match) / float64(maxCount)
}

// scoreAgainstClusters computes Eq. 1 for a set of queries that were
// generated one-per-cluster but whose terms may fall outside the candidate
// pools (CS labels): each query is evaluated with full retrieval restricted
// to the universe.
func (r *Runner) scoreAgainstClusters(qr *QueryRun, queries []search.Query) float64 {
	sets := qr.Clustering.Sets()
	n := len(queries)
	if n > len(sets) {
		n = len(sets)
	}
	fs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		retrieved := baseline.RetrieveWithin(qr.Dataset.Index, queries[i], qr.Universe)
		fs = append(fs, eval.Measure(retrieved, sets[i], qr.Weights).F)
	}
	return eval.Score(fs)
}

// resultSets evaluates each query against the universe (full retrieval, so
// out-of-corpus terms yield empty sets — the Google behaviour the paper
// describes).
func (r *Runner) resultSets(qr *QueryRun, queries []search.Query) []document.DocSet {
	out := make([]document.DocSet, len(queries))
	for i, q := range queries {
		out[i] = baseline.RetrieveWithin(qr.Dataset.Index, q, qr.Universe)
	}
	return out
}

// relatedness measures how results-oriented one expanded query is: the
// fraction of its expansion terms occurring anywhere in the original
// results, halved when the conjunctive query retrieves nothing.
func (r *Runner) relatedness(qr *QueryRun, q search.Query) float64 {
	var expansion []string
	for _, t := range q.Terms {
		if !qr.Query.Contains(t) {
			expansion = append(expansion, t)
		}
	}
	if len(expansion) == 0 {
		return 0.5 // the unmodified query: related but unhelpful
	}
	// A term occurs in the original results iff its posting list intersects
	// the universe bitset: resolve the term to a TermID once and scan its
	// postings against the per-run set, instead of probing HasTerm for every
	// universe document.
	idx := qr.Dataset.Index
	ub := qr.UniverseBits()
	present := 0
	for _, t := range expansion {
		tid, ok := idx.LookupTerm(t)
		if !ok {
			continue
		}
		for _, d := range idx.PostingsDocs(tid) {
			if ub.Contains(int(d)) {
				present++
				break
			}
		}
	}
	rel := float64(present) / float64(len(expansion))
	if baseline.RetrieveWithin(qr.Dataset.Index, q, qr.Universe).Len() == 0 {
		rel *= 0.4
	}
	return rel
}

// helpfulness is the query's best F-measure against any cluster.
func (r *Runner) helpfulness(qr *QueryRun, q search.Query) float64 {
	retrieved := baseline.RetrieveWithin(qr.Dataset.Index, q, qr.Universe)
	best := 0.0
	for _, set := range qr.Clustering.Sets() {
		if f := eval.Measure(retrieved, set, qr.Weights).F; f > best {
			best = f
		}
	}
	return best
}

// AllQueryRuns prepares every test query of both datasets, in Table 1
// order. The per-query pipelines are independent and fan out across
// GOMAXPROCS workers; results are collected by index, so the returned slice
// is identical to a serial run's.
func (r *Runner) AllQueryRuns() []*QueryRun {
	type job struct {
		d  *dataset.Dataset
		tq dataset.TestQuery
	}
	var jobs []job
	for _, d := range []*dataset.Dataset{r.Shopping, r.Wiki} {
		for _, tq := range d.Queries {
			jobs = append(jobs, job{d, tq})
		}
	}
	out := make([]*QueryRun, len(jobs))
	core.ParallelFor(len(jobs), func(i int) {
		out[i] = r.Prepare(jobs[i].d, jobs[i].tq)
	})
	return out
}

// MethodOrder is the canonical figure ordering of the six approaches.
func MethodOrder() []string {
	return []string{MethodISKR, MethodPEBC, MethodFMeasure, MethodCS,
		MethodDataClouds, MethodGoogle}
}

// sortByMethodOrder orders a method->value map's keys canonically.
func sortByMethodOrder(keys []string) {
	rank := map[string]int{}
	for i, m := range MethodOrder() {
		rank[m] = i
	}
	sort.Slice(keys, func(i, j int) bool { return rank[keys[i]] < rank[keys[j]] })
}
