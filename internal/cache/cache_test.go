package cache

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// single-shard cache so LRU order is exact and observable.
func singleShard(capacity int) *Cache[string, int] {
	return NewSharded[string, int](capacity, 1, StringHash)
}

func TestLRUEvictionOrder(t *testing.T) {
	c := singleShard(3)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)

	// Touch "a" so "b" becomes the least recently used.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if evicted := c.Add("d", 4); !evicted {
		t.Fatal("adding over capacity should evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}

	// Updating an existing key must not evict and must refresh recency.
	if evicted := c.Add("c", 30); evicted {
		t.Fatal("updating existing key must not evict")
	}
	c.Add("e", 5) // evicts "a": the Get loop above left order [d c a] → c refreshed → [c d a]
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted after c was refreshed")
	}
	if v, ok := c.Get("c"); !ok || v != 30 {
		t.Fatalf("Get(c) = %d, %v; want 30, true", v, ok)
	}

	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d; want 2", st.Evictions)
	}
	if st.Entries != 3 || st.Capacity != 3 {
		t.Fatalf("entries/capacity = %d/%d; want 3/3", st.Entries, st.Capacity)
	}
}

func TestPeekDoesNotCountOrPromote(t *testing.T) {
	c := singleShard(2)
	c.Add("a", 1)
	c.Add("b", 2) // recency: [b a]
	if v, ok := c.Peek("a"); !ok || v != 1 {
		t.Fatalf("Peek(a) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("Peek(missing) should report absent")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek must not count: hits/misses = %d/%d", st.Hits, st.Misses)
	}
	// Peek did not promote "a": adding over capacity still evicts it.
	c.Add("c", 3)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("a should have been evicted; Peek must not refresh recency")
	}
}

func TestLRURemoveAndPurge(t *testing.T) {
	c := singleShard(2)
	c.Add("a", 1)
	if !c.Remove("a") {
		t.Fatal("Remove(a) should report present")
	}
	if c.Remove("a") {
		t.Fatal("Remove(a) twice should report absent")
	}
	c.Add("x", 1)
	c.Add("y", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d; want 0", c.Len())
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("Remove/Purge must not count as evictions, got %d", st.Evictions)
	}
	// Cache still usable after Purge.
	c.Add("z", 3)
	if v, ok := c.Get("z"); !ok || v != 3 {
		t.Fatalf("Get(z) after Purge = %d, %v; want 3, true", v, ok)
	}
}

func TestShardDistribution(t *testing.T) {
	const capacity, keys = 4096, 2048
	c := NewSharded[string, int](capacity, DefaultShards, StringHash)
	if len(c.shards) != DefaultShards {
		t.Fatalf("shard count = %d; want %d", len(c.shards), DefaultShards)
	}
	for i := 0; i < keys; i++ {
		c.Add(fmt.Sprintf("query-%d", i), i)
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d; want %d (capacity is ample, nothing may evict)", c.Len(), keys)
	}
	// Every shard should hold roughly keys/shards entries; a shard further
	// than 3x from the mean means the hash is not spreading keys.
	mean := keys / DefaultShards
	for i := 0; i < DefaultShards; i++ {
		n := c.shardLen(i)
		if n == 0 || n > 3*mean {
			t.Errorf("shard %d holds %d entries (mean %d): bad distribution", i, n, mean)
		}
	}
}

func TestShardedCapacityClamping(t *testing.T) {
	// capacity < shards: shard count clamps so each shard holds >= 1 entry.
	c := NewSharded[string, int](3, 16, StringHash)
	if got := c.Stats().Capacity; got != 3 {
		t.Fatalf("total capacity = %d; want 3", got)
	}
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 3 {
		t.Fatalf("Len = %d; want <= 3", c.Len())
	}
	// Degenerate capacities are clamped to 1, not rejected.
	c2 := New[string, int](0, StringHash)
	c2.Add("a", 1)
	if v, ok := c2.Get("a"); !ok || v != 1 {
		t.Fatalf("zero-capacity cache should clamp to 1 entry, got %d, %v", v, ok)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New[string, int](128, StringHash)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", i%200)
				c.Add(k, i)
				c.Get(k)
				if i%17 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("Len = %d exceeds capacity 128", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8000 {
		t.Fatalf("hits+misses = %d; want 8000", st.Hits+st.Misses)
	}
}

func TestGroupCoalescing(t *testing.T) {
	var g Group[string, string]
	var computations atomic.Int64
	release := make(chan struct{})
	start := make(chan struct{})

	const waiters = 64
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err, _ := g.Do("apple", func() (string, error) {
				computations.Add(1)
				<-release // hold the call in flight until all goroutines queue
				return "fruit|company", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	// Wait until the one in-flight call exists and every other goroutine is
	// queued behind it (each increments Coalesced before waiting), then let
	// the flight finish.
	for g.Executions() != 1 || g.Coalesced() != waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Fatalf("computations = %d; want exactly 1 (coalescing failed)", n)
	}
	for i, r := range results {
		if r != "fruit|company" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	if g.Executions() != 1 {
		t.Fatalf("Executions = %d; want 1", g.Executions())
	}
	if g.Coalesced() != waiters-1 {
		t.Fatalf("Coalesced = %d; want %d", g.Coalesced(), waiters-1)
	}

	// After the flight lands, the key is retired: a new Do recomputes.
	_, _, shared := g.Do("apple", func() (string, error) { return "again", nil })
	if shared {
		t.Fatal("post-flight Do must not report shared")
	}
	if g.Executions() != 2 {
		t.Fatalf("Executions after retire = %d; want 2", g.Executions())
	}
}

func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do(i, func() (int, error) { return i * i, nil })
			if err != nil || v != i*i {
				t.Errorf("Do(%d) = %d, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if g.Executions() != 8 {
		t.Fatalf("Executions = %d; want 8", g.Executions())
	}
}

func TestGroupError(t *testing.T) {
	var g Group[string, int]
	wantErr := fmt.Errorf("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v; want %v", err, wantErr)
	}
	// Errors are not cached by the group: next call runs again.
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v; want 7, nil", v, err)
	}
}

func TestGroupPanicReleasesWaiters(t *testing.T) {
	var g Group[string, int]
	func() {
		defer func() {
			if r := recover(); r != "kaboom" {
				t.Errorf("recovered %v; want the original panic value \"kaboom\"", r)
			}
		}()
		g.Do("k", func() (int, error) { panic("kaboom") })
	}()
	// The key must be retired so later calls are not wedged.
	v, err, _ := g.Do("k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("post-panic Do = %d, %v; want 1, nil", v, err)
	}
	if err := func() error {
		_, err, _ := g.Do("other", func() (int, error) { return 0, nil })
		return err
	}(); err != nil {
		t.Fatalf("unrelated key after panic: %v", err)
	}
}

func TestStatsHitRate(t *testing.T) {
	var zero Stats
	if zero.HitRate() != 0 {
		t.Fatal("zero stats hit rate should be 0")
	}
	s := Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v; want 0.75", got)
	}
	if !strings.Contains(fmt.Sprintf("%+v", s), "Hits:3") {
		t.Fatalf("unexpected stats render: %+v", s)
	}
}
