// Package cache provides the serving-path caching primitives: a sharded,
// mutex-striped LRU cache generic over key and value types, and a
// singleflight-style request coalescer (Group) so concurrent identical
// computations run once.
//
// The cache is sharded to keep lock contention low under heavy concurrent
// traffic: each key hashes to one shard, and each shard has its own mutex,
// hash map and recency list. Capacity is divided evenly across shards, so
// eviction is approximate LRU globally but exact LRU per shard — the standard
// trade-off (memcached, ristretto, groupcache all make it) that buys
// near-linear scalability with core count.
package cache

import (
	"hash/maphash"
	"sync"

	"repro/internal/obs"
)

// hashSeed is the per-process seed for StringHash. A fresh seed per process
// defends against deliberately colliding keys pinning one shard.
var hashSeed = maphash.MakeSeed()

// StringHash is the default hash for string-keyed caches.
func StringHash(s string) uint64 { return maphash.String(hashSeed, s) }

// DefaultShards is the shard count used by New. Sixteen mutex stripes keep
// contention negligible for typical server core counts without fragmenting
// small capacities too much.
const DefaultShards = 16

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries dropped to make room (not explicit Removes).
	Evictions int64
	// Entries is the current number of cached entries across all shards.
	Entries int
	// Capacity is the total configured capacity across all shards.
	Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one node of a shard's intrusive doubly-linked recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// shard is one mutex stripe: a map for lookup plus a recency list whose head
// is the most recently used entry.
type shard[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	head     *entry[K, V]
	tail     *entry[K, V]
}

// Cache is a sharded LRU cache. The zero value is not usable; construct with
// New or NewSharded. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	shards []*shard[K, V]
	mask   uint64
	hash   func(K) uint64

	// Counters are obs primitives so the serving layer can surface them on
	// /metrics without translation; Stats still reports int64 snapshots.
	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
}

// New returns a cache holding up to capacity entries, striped over
// DefaultShards shards (fewer when capacity is small, so every shard can hold
// at least one entry). hash maps a key to a shard; use StringHash for string
// keys. capacity < 1 is treated as 1.
func New[K comparable, V any](capacity int, hash func(K) uint64) *Cache[K, V] {
	return NewSharded[K, V](capacity, DefaultShards, hash)
}

// NewSharded is New with an explicit shard count. The count is rounded down
// to a power of two (so shard selection is a mask, not a modulo) and clamped
// to [1, capacity].
func NewSharded[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards > capacity {
		shards = capacity
	}
	if shards < 1 {
		shards = 1
	}
	// Round down to a power of two.
	for shards&(shards-1) != 0 {
		shards &= shards - 1
	}
	c := &Cache[K, V]{
		shards: make([]*shard[K, V], shards),
		mask:   uint64(shards - 1),
		hash:   hash,
	}
	// Distribute capacity as evenly as possible; the first capacity%shards
	// shards take one extra entry so the total is exact.
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		c.shards[i] = &shard[K, V]{
			capacity: cap,
			items:    make(map[K]*entry[K, V], cap),
		}
	}
	return c
}

func (c *Cache[K, V]) shardFor(key K) *shard[K, V] {
	return c.shards[c.hash(key)&c.mask]
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Inc()
		var zero V
		return zero, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Inc()
	return v, true
}

// Peek returns the cached value for key without updating recency or the
// hit/miss counters. Use it for internal double-checks that should not skew
// the stats a Get-based workload produces.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Add inserts or updates key, marking it most recently used. It reports
// whether an existing entry was evicted to make room.
func (c *Cache[K, V]) Add(key K, val V) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		e.val = val
		s.moveToFront(e)
		s.mu.Unlock()
		return false
	}
	e := &entry[K, V]{key: key, val: val}
	s.items[key] = e
	s.pushFront(e)
	var evicted bool
	if len(s.items) > s.capacity {
		victim := s.tail
		s.unlink(victim)
		delete(s.items, victim.key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	}
	return evicted
}

// Remove deletes key, reporting whether it was present. Explicit removals do
// not count as evictions.
func (c *Cache[K, V]) Remove(key K) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return false
	}
	s.unlink(e)
	delete(s.items, key)
	return true
}

// Purge empties the cache. Counters are preserved.
func (c *Cache[K, V]) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.items = make(map[K]*entry[K, V], s.capacity)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Len returns the current number of entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[K, V]) Stats() Stats {
	st := Stats{
		Hits:      int64(c.hits.Load()),
		Misses:    int64(c.misses.Load()),
		Evictions: int64(c.evictions.Load()),
		Entries:   c.Len(),
	}
	for _, s := range c.shards {
		st.Capacity += s.capacity
	}
	return st
}

// shardLen returns the entry count of shard i (test hook for distribution).
func (c *Cache[K, V]) shardLen(i int) int {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// --- intrusive list (callers hold s.mu) -------------------------------------

func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
