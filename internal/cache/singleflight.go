package cache

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Group coalesces concurrent duplicate computations: while one call for a key
// is in flight, later Do calls for the same key wait for it and share its
// result instead of recomputing. This is the singleflight pattern
// (golang.org/x/sync/singleflight), reimplemented generically because the
// container must not take new dependencies.
//
// The zero value is ready to use. All methods are safe for concurrent use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]

	executions obs.Counter
	coalesced  obs.Counter
}

// call is one in-flight computation.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do runs fn for key, unless a call for the same key is already in flight, in
// which case it waits and returns the in-flight call's result. shared reports
// whether the result came from another caller's computation. If fn panics,
// the original panic value propagates to the initiating caller and waiters
// receive an error.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.coalesced.Inc()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call[V]{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	g.executions.Inc()
	normal := false
	defer func() {
		if !normal {
			// fn panicked: release waiters with an error, then re-panic
			// with the original value so the caller's recover logic still
			// sees what fn threw.
			r := recover()
			c.err = fmt.Errorf("cache: coalesced call panicked: %v", r)
			g.finish(key, c)
			panic(r)
		}
		g.finish(key, c)
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}

// finish publishes c's result and retires the key so the next Do recomputes.
func (g *Group[K, V]) finish(key K, c *call[V]) {
	c.wg.Done()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
}

// Executions returns how many times Do actually ran a computation.
func (g *Group[K, V]) Executions() int64 { return int64(g.executions.Load()) }

// Coalesced returns how many Do calls were satisfied by waiting on another
// caller's in-flight computation.
func (g *Group[K, V]) Coalesced() int64 { return int64(g.coalesced.Load()) }
