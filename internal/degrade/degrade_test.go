package degrade

import (
	"testing"
	"time"
)

// load builds a Signals sample with the given queue+in-flight occupancy over
// a capacity of 4 and no error/abandon pressure.
func load(queued, inFlight int64) Signals {
	return Signals{Queued: queued, InFlight: inFlight, Capacity: 4}
}

func TestClimbIsImmediateAndMonotone(t *testing.T) {
	c := New(Config{})
	ramp := []struct {
		sig  Signals
		want Tier
	}{
		{load(0, 1), Tier0},  // p = 0.25
		{load(0, 4), Tier1},  // p = 1.0 → enter T1
		{load(3, 4), Tier2},  // p = 1.75 → T2's enter edge
		{load(4, 4), Tier2},  // p = 2.0 → still T2
		{load(6, 4), Tier3},  // p = 2.5 → T3
		{load(12, 4), Tier4}, // p = 4.0 → T4
		{load(20, 4), Tier4}, // clamped at the top
	}
	prev := Tier0
	for i, step := range ramp {
		got := c.Step(step.sig)
		if got != step.want {
			t.Errorf("step %d: tier %v, want %v", i, got, step.want)
		}
		if got < prev {
			t.Errorf("step %d: tier fell %v → %v during a ramp", i, prev, got)
		}
		prev = got
	}
}

func TestDescentRequiresDwellAndStepsOneRung(t *testing.T) {
	c := New(Config{MinDwell: 3})
	c.Step(load(12, 4)) // straight to T4
	if got := c.Tier(); got != Tier4 {
		t.Fatalf("tier %v, want T4", got)
	}
	// Calm samples: pressure 0 is at or below every exit threshold, but the
	// tier may only fall one rung per MinDwell consecutive calm steps.
	want := []Tier{Tier4, Tier4, Tier3, Tier3, Tier3, Tier2}
	for i, w := range want {
		if got := c.Step(load(0, 0)); got != w {
			t.Errorf("calm step %d: tier %v, want %v", i, got, w)
		}
	}
}

func TestHysteresisBandHoldsTier(t *testing.T) {
	c := New(Config{MinDwell: 2})
	c.Step(load(0, 4)) // p=1.0 → T1
	if got := c.Tier(); got != Tier1 {
		t.Fatalf("tier %v, want T1", got)
	}
	// Pressure oscillating inside T1's hysteresis band (exit 0.5, enter
	// 1.0): neither climbs nor counts as calm.
	for i := 0; i < 10; i++ {
		if got := c.Step(load(0, 3)); got != Tier1 { // p=0.75
			t.Fatalf("band step %d: tier %v, want T1 (no flap)", i, got)
		}
	}
	// A calm streak interrupted by a band sample must restart the dwell.
	c.Step(load(0, 2)) // p=0.5 → calm 1
	c.Step(load(0, 3)) // p=0.75 → calm reset
	c.Step(load(0, 2)) // calm 1 again
	if got := c.Tier(); got != Tier1 {
		t.Fatalf("tier %v, want T1 (dwell not yet met)", got)
	}
	if got := c.Step(load(0, 2)); got != Tier0 { // calm 2 → down
		t.Fatalf("tier %v, want T0 after dwell", got)
	}
}

func TestMaxTierClampsClimbAndAdmit(t *testing.T) {
	c := New(Config{MaxTier: Tier2})
	if got := c.Step(load(40, 4)); got != Tier2 {
		t.Fatalf("tier %v, want clamp at T2", got)
	}
	dec := c.Admit(0)
	if dec.Tier != Tier2 || dec.Shed || dec.CacheOnly {
		t.Fatalf("decision %+v, want plain T2", dec)
	}
}

func TestErrorAndAbandonRatiosAddPressure(t *testing.T) {
	c := New(Config{})
	// Occupancy alone (p=0.5) stays T0; a 30% error ratio adds 0.6 and a
	// 40% abandon ratio 0.4 → p=1.5 → T1.
	sig := load(0, 2)
	sig.ErrorRatio = 0.3
	sig.AbandonRatio = 0.4
	if got := c.Step(sig); got != Tier1 {
		t.Fatalf("tier %v, want T1 under error+abandon pressure", got)
	}
}

func TestAdmitDeadlineEscalation(t *testing.T) {
	c := New(Config{TightDeadline: time.Second})
	if dec := c.Admit(10 * time.Second); dec.Tier != Tier0 {
		t.Fatalf("ample deadline: tier %v, want T0", dec.Tier)
	}
	if dec := c.Admit(500 * time.Millisecond); dec.Tier != Tier2 {
		t.Fatalf("tight deadline: tier %v, want T2", dec.Tier)
	}
	if dec := c.Admit(100 * time.Millisecond); dec.Tier != Tier3 || !dec.CacheOnly {
		t.Fatalf("desperate deadline: %+v, want cache-only T3", dec)
	}
	// Escalation never sheds, and never de-escalates a higher ladder tier.
	c.Step(load(12, 4)) // T4
	if dec := c.Admit(100 * time.Millisecond); !dec.Shed {
		t.Fatalf("ladder T4 must shed regardless of deadline: %+v", dec)
	}
}

func TestDecisionsMatchLadderSpec(t *testing.T) {
	cases := []struct {
		tier Tier
		want Decision
	}{
		{Tier0, Decision{Tier: Tier0}},
		{Tier1, Decision{Tier: Tier1, ForceServing: true}},
		{Tier2, Decision{Tier: Tier2, ForceServing: true, RestartBudget: 1, AggressiveAbandon: true}},
		{Tier3, Decision{Tier: Tier3, ForceServing: true, RestartBudget: 1, AggressiveAbandon: true, CacheOnly: true}},
		{Tier4, Decision{Tier: Tier4, Shed: true}},
	}
	for _, tc := range cases {
		c := New(Config{})
		c.tier.Store(int32(tc.tier))
		if got := c.Admit(0); got != tc.want {
			t.Errorf("%v: decision %+v, want %+v", tc.tier, got, tc.want)
		}
	}
}

// TestStepIsPureFunctionOfSignals replays the same signal sequence through
// two controllers and requires identical tier trajectories — the
// wall-clock-free determinism leg.
func TestStepIsPureFunctionOfSignals(t *testing.T) {
	seq := []Signals{
		load(0, 1), load(2, 4), load(6, 4), load(12, 4), load(4, 4),
		load(0, 1), load(0, 0), load(0, 0), load(0, 0), load(0, 0),
		load(9, 4), load(0, 0), load(0, 0),
	}
	a, b := New(Config{}), New(Config{})
	for i, sig := range seq {
		ta, tb := a.Step(sig), b.Step(sig)
		if ta != tb {
			t.Fatalf("step %d: controllers diverged (%v vs %v)", i, ta, tb)
		}
	}
	if sa, sb := a.Snapshot(), b.Snapshot(); sa != sb {
		t.Fatalf("snapshots diverged: %+v vs %+v", sa, sb)
	}
}

func TestSnapshotReportsState(t *testing.T) {
	c := New(Config{MinDwell: 5})
	c.Step(load(4, 4))
	s := c.Snapshot()
	if s.Tier != Tier2 || s.Steps != 1 || s.Transitions != 1 || s.MinDwell != 5 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Pressure < 1.99 || s.Pressure > 2.01 {
		t.Fatalf("pressure %v, want 2.0", s.Pressure)
	}
	if s.Signals != load(4, 4) {
		t.Fatalf("signals %+v", s.Signals)
	}
}

// BenchmarkAdmissionDecision pins the per-request read side: it must stay
// allocation-free and well under a microsecond, because every expand request
// pays it at admission (gated ≤200ns, +0 allocs in qec-benchdiff).
func BenchmarkAdmissionDecision(b *testing.B) {
	c := New(Config{TightDeadline: time.Second})
	c.Step(load(3, 4))
	b.ReportAllocs()
	b.ResetTimer()
	var d Decision
	for i := 0; i < b.N; i++ {
		d = c.Admit(5 * time.Second)
	}
	_ = d
}
