// Package degrade is the serving layer's admission-and-degradation
// controller: it maps observed load signals (worker queue depth and
// occupancy, windowed error/abandon ratios, remaining request deadline) onto
// an ordered ladder of serving tiers, so the server sheds *quality* before it
// sheds *requests* — serving mode, then a capped restart budget, then
// cache-only answers, and only at the top of the ladder a 503.
//
// The ladder (docs/DEGRADATION.md carries the operator-facing table):
//
//	T0  requested quality untouched
//	T1  force QualityServing (fewer restarts, bound-pruned assignment)
//	T2  serving + restart budget 1 + aggressive early-abandon
//	T3  expansion-cache only; a miss gets a fast single-cluster fallback
//	T4  shed: 503 with a Retry-After derived from the queue drain rate
//
// Determinism contract: the controller never reads the wall clock. Step is a
// pure function of the sampled Signals it is handed and of the step counter —
// two controllers fed the same Signals sequence land on the same tier at
// every step, which is what makes the degradation ladder testable (the soak
// test replays a ramp and asserts the exact climb). Hysteresis comes from
// separated enter/exit thresholds plus a minimum dwell measured in steps, so
// the tier cannot flap between adjacent levels on a noisy signal.
//
// Admit is the per-request read side: one atomic load plus pure arithmetic,
// no locks, no allocations (BenchmarkAdmissionDecision pins ≤200ns and
// 0 allocs/op through the qec-benchdiff gate) — it sits on every request.
package degrade

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tier is one rung of the degradation ladder. Higher is more degraded.
type Tier int32

const (
	// Tier0 serves the requested quality untouched.
	Tier0 Tier = iota
	// Tier1 forces QualityServing.
	Tier1
	// Tier2 forces serving quality with restart budget 1 and aggressive
	// early-abandonment.
	Tier2
	// Tier3 answers from the expansion cache only; misses run a fast
	// single-cluster fallback.
	Tier3
	// Tier4 sheds the request with a 503 + Retry-After.
	Tier4
	// NumTiers is the ladder length.
	NumTiers = int(iota)
)

// String names the tier ("T0".."T4").
func (t Tier) String() string {
	if t < 0 || int(t) >= NumTiers {
		return "T?"
	}
	return tierNames[t]
}

var tierNames = [NumTiers]string{"T0", "T1", "T2", "T3", "T4"}

// Signals is one sampled snapshot of the load inputs the controller keys on.
// The serving layer fills it from its worker-pool gauges and 1m rate windows;
// the controller itself never touches a clock or a counter.
type Signals struct {
	// Queued and InFlight are the worker pool's instantaneous occupancy
	// (requests waiting for a slot, expansions executing).
	Queued, InFlight int64
	// Capacity is the worker pool size (MaxConcurrent).
	Capacity int64
	// ErrorRatio is non-2xx responses per request over the trailing minute.
	ErrorRatio float64
	// AbandonRatio is k-means restarts abandoned per restart launched over
	// the trailing minute — the "per-cluster work is already degrading
	// itself" signal.
	AbandonRatio float64
}

// pressure collapses the signals into one scalar load measure: pool
// saturation (occupancy over capacity — 1.0 means every worker busy and an
// equally long queue would read 2.0) plus weighted error and abandonment
// ratios. The weights make a fully erroring server (ratio 1.0) worth two
// capacities of queue pressure — errors under load usually are timeouts, the
// strongest degrade signal available.
func (s Signals) pressure() float64 {
	cap := s.Capacity
	if cap <= 0 {
		cap = 1
	}
	return float64(s.Queued+s.InFlight)/float64(cap) +
		2*s.ErrorRatio + s.AbandonRatio
}

// Enter/exit pressure thresholds per tier (index 0 unused). A tier is
// entered when pressure reaches enterAt[t] and left — after MinDwell calm
// steps — when pressure falls to exitAt[t] or below. The gaps between enter
// and exit are the hysteresis band: a signal oscillating inside the band
// changes nothing.
var (
	enterAt = [NumTiers]float64{0, 1.0, 1.75, 2.5, 4.0}
	exitAt  = [NumTiers]float64{0, 0.5, 1.0, 1.5, 2.5}
)

// Config configures a Controller. The zero value gets sensible defaults.
type Config struct {
	// MaxTier clamps the ladder: the controller never climbs above it.
	// Useful to forbid shedding (MaxTier: Tier3) or pin full quality
	// (MaxTier: Tier0). Default Tier4.
	MaxTier Tier
	// MinDwell is how many consecutive calm steps (pressure at or below the
	// current tier's exit threshold) must pass before the controller steps
	// down one tier. Climbing is immediate — overload must be answered now,
	// recovery can afford to be cautious. Default 3.
	MinDwell int
	// TightDeadline is the remaining-deadline floor below which Admit
	// escalates an individual request's tier regardless of load: under
	// TightDeadline forces at least Tier2 (cheap serving), under a quarter
	// of it at least Tier3 (cache only) — a request that cannot possibly
	// finish a full pipeline should not occupy a worker trying. 0 disables
	// deadline escalation.
	TightDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxTier <= 0 || int(c.MaxTier) >= NumTiers {
		c.MaxTier = Tier4
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 3
	}
	return c
}

// Decision is what Admit hands the serving layer for one request: the tier
// plus its pre-resolved knob settings, so the handler applies it without
// consulting the ladder semantics.
type Decision struct {
	// Tier is the rung this request is served at.
	Tier Tier
	// ForceServing forces QualityServing onto the request (T1+).
	ForceServing bool
	// RestartBudget caps k-means restarts (0 = no cap; T2+ sets 1).
	RestartBudget int
	// AggressiveAbandon tightens serving-mode early abandonment (T2+).
	AggressiveAbandon bool
	// CacheOnly answers from the expansion cache, with a single-cluster
	// fallback on miss (T3).
	CacheOnly bool
	// Shed rejects the request with 503 + Retry-After (T4).
	Shed bool
}

// decisions pre-resolves every tier's knobs; Admit returns by value from
// this table, so the hot path allocates nothing and branches once.
var decisions = [NumTiers]Decision{
	Tier0: {Tier: Tier0},
	Tier1: {Tier: Tier1, ForceServing: true},
	Tier2: {Tier: Tier2, ForceServing: true, RestartBudget: 1, AggressiveAbandon: true},
	Tier3: {Tier: Tier3, ForceServing: true, RestartBudget: 1, AggressiveAbandon: true, CacheOnly: true},
	Tier4: {Tier: Tier4, Shed: true},
}

// Controller holds the ladder state. Step (the write side) is called on the
// serving layer's sampling cadence; Admit (the read side) on every request.
// Both are safe for concurrent use.
type Controller struct {
	cfg Config

	// tier is the published rung, read lock-free by Admit.
	tier atomic.Int32
	// transitions counts tier changes (both directions).
	transitions atomic.Int64

	// mu guards the step-side state below. Step runs on the sampling
	// cadence (seconds apart), so a mutex costs nothing that matters.
	mu       sync.Mutex
	steps    int64   // Step calls so far (the dwell clock)
	calm     int     // consecutive calm steps at the current tier
	pressure float64 // last computed pressure
	last     Signals // last sampled signals
}

// New returns a controller at Tier0.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Tier returns the current rung (one atomic load).
func (c *Controller) Tier() Tier { return Tier(c.tier.Load()) }

// Transitions returns how many times the tier has changed.
func (c *Controller) Transitions() int64 { return c.transitions.Load() }

// Step feeds one signal sample into the ladder and returns the resulting
// tier. Climbing: the controller moves straight to the highest tier whose
// enter threshold the pressure reaches (clamped to MaxTier) — overload is
// answered within one step. Descending: pressure must sit at or below the
// current tier's exit threshold for MinDwell consecutive steps, then the
// controller steps down exactly one rung and the dwell restarts. No wall
// clock anywhere: the outcome is a pure function of the Signals sequence.
func (c *Controller) Step(sig Signals) Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.steps++
	c.last = sig
	p := sig.pressure()
	c.pressure = p
	cur := Tier(c.tier.Load())

	// Highest tier entered by this pressure.
	target := Tier0
	for t := Tier(1); t <= c.cfg.MaxTier; t++ {
		if p >= enterAt[t] {
			target = t
		}
	}
	switch {
	case target > cur:
		c.setTier(target)
		c.calm = 0
	case cur > Tier0 && p <= exitAt[cur]:
		c.calm++
		if c.calm >= c.cfg.MinDwell {
			c.setTier(cur - 1)
			c.calm = 0
		}
	default:
		c.calm = 0
	}
	return Tier(c.tier.Load())
}

// setTier publishes a new rung and counts the transition. Caller holds mu.
func (c *Controller) setTier(t Tier) {
	if Tier(c.tier.Load()) == t {
		return
	}
	c.tier.Store(int32(t))
	c.transitions.Add(1)
}

// Admit decides how to serve one request given its remaining deadline. It is
// the per-request hot path: an atomic tier load, the deadline escalation
// comparison, one table lookup — no locks, no allocations. remaining <= 0
// means "no deadline pressure" (the caller has its full budget).
func (c *Controller) Admit(remaining time.Duration) Decision {
	t := Tier(c.tier.Load())
	if td := c.cfg.TightDeadline; td > 0 && remaining > 0 && remaining < td && t < Tier3 {
		// A request that cannot fit a full pipeline run in its remaining
		// budget is escalated individually: cheap serving under the tight
		// threshold, cache-only under a quarter of it. Escalation never
		// reaches Tier4 — deadline pressure is this request's problem, not
		// grounds to shed it.
		esc := Tier2
		if remaining < td/4 {
			esc = Tier3
		}
		if esc > t {
			t = esc
		}
	}
	if t > c.cfg.MaxTier {
		t = c.cfg.MaxTier
	}
	return decisions[t]
}

// Snapshot is a point-in-time dump of the controller's state, for SIGUSR2
// and /stats.
type Snapshot struct {
	// Tier is the current rung; MaxTier the configured clamp.
	Tier, MaxTier Tier
	// Steps counts Step calls; Calm the consecutive calm steps at the
	// current tier; MinDwell the configured descent dwell.
	Steps    int64
	Calm     int
	MinDwell int
	// Transitions counts tier changes.
	Transitions int64
	// Pressure is the last computed pressure scalar; Signals the sample it
	// came from.
	Pressure float64
	Signals  Signals
}

// Snapshot returns the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Tier:        Tier(c.tier.Load()),
		MaxTier:     c.cfg.MaxTier,
		Steps:       c.steps,
		Calm:        c.calm,
		MinDwell:    c.cfg.MinDwell,
		Transitions: c.transitions.Load(),
		Pressure:    c.pressure,
		Signals:     c.last,
	}
}
