package dataset

import (
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/document"
)

// sense is one meaning of an ambiguous query term: a topical vocabulary plus
// a share of the documents. Shares are deliberately skewed for some topics
// (e.g. "apple"-style dominance) to reproduce the ranking-bias phenomenon of
// Section 1: a rare sense still forms its own cluster.
type sense struct {
	name  string
	vocab []string
	// rare is a tail of hyper-specific words that appear only as occasional
	// high-frequency bursts in single documents ("biophosphate", "sumono",
	// "wakaheena" in the paper's CS outputs). They give TFICF-style cluster
	// labelers and tf-weighted word clouds exactly the too-specific bait the
	// paper describes.
	rare []string
	// docs is the base number of documents for this sense (scaled).
	docs int
}

// topic is one ambiguous query term with its senses.
type topic struct {
	query  string // the words every document of this topic contains
	senses []sense
}

// wikiAmbient is the shared vocabulary mixed into every document regardless
// of sense — document-centric prose noise ("sentences/paragraphs rather than
// succinct and informative features", per Section 5.2.1's explanation of why
// Wikipedia is harder).
var wikiAmbient = []string{
	"history", "article", "reference", "external", "link", "source", "year",
	"world", "people", "large", "part", "time", "early", "late", "major",
	"known", "called", "include", "found", "list", "section", "page",
}

// wikipediaQueries is Table 1's Wikipedia column.
func wikipediaQueries() []TestQuery {
	return []TestQuery{
		{ID: "QW1", Raw: "san jose"},
		{ID: "QW2", Raw: "columbia"},
		{ID: "QW3", Raw: "cvs"},
		{ID: "QW4", Raw: "domino"},
		{ID: "QW5", Raw: "eclipse"},
		{ID: "QW6", Raw: "java"},
		{ID: "QW7", Raw: "cell"},
		{ID: "QW8", Raw: "rockets"},
		{ID: "QW9", Raw: "mouse"},
		{ID: "QW10", Raw: "sportsman williams"},
	}
}

// wikipediaLog synthesizes Google's suggestions for the Wikipedia queries,
// reproducing the paper's observations: popular and meaningful ("java
// tutorials"), but sometimes one-sense-only (all "rockets" suggestions are
// about space) or off-corpus ("san jose costa rica").
func wikipediaLog() []baseline.LogEntry {
	return []baseline.LogEntry{
		{Query: "san jose attractions", Count: 940},
		{Query: "san jose costa rica", Count: 910},
		{Query: "san jose weather", Count: 620},
		{Query: "columbia country", Count: 960},
		{Query: "columbia house", Count: 850},
		{Query: "columbia wikipedia", Count: 700},
		{Query: "cvs careers", Count: 930},
		{Query: "cvs test", Count: 760},
		{Query: "cvs caremark", Count: 890},
		{Query: "domino game", Count: 920},
		{Query: "domino movie", Count: 830},
		{Query: "domino records", Count: 740},
		{Query: "eclipse mitsubishi", Count: 900},
		{Query: "eclipse car", Count: 810},
		{Query: "solar eclipse", Count: 950},
		{Query: "java tutorials", Count: 990},
		{Query: "java games", Count: 880},
		{Query: "java test", Count: 720},
		{Query: "cell parts of a cell", Count: 860},
		{Query: "cell theory", Count: 780},
		{Query: "cell animal", Count: 690},
		// All "rockets" suggestions are space rockets — the paper's example
		// of Google missing the NBA sense entirely.
		{Query: "model rockets", Count: 940},
		{Query: "space rockets", Count: 930},
		{Query: "bottle rockets", Count: 820},
		{Query: "mouse pictures", Count: 870},
		{Query: "mouse breaker", Count: 750},
		{Query: "mouse pictures of mice", Count: 640},
		{Query: "sportsman williams football", Count: 560},
		{Query: "sportsman williams baseball", Count: 480},
		{Query: "sportsman williams news", Count: 390},
	}
}

// Wikipedia generates the ambiguous-sense prose corpus. scale multiplies
// per-sense document counts (the Figure 7 scalability sweep uses scale to
// reach 500 "columbia" results). Deterministic per seed.
func Wikipedia(seed int64, scale int) *Dataset {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:    "wikipedia",
		Corpus:  document.NewCorpus(),
		Queries: wikipediaQueries(),
		Labels:  map[document.DocID]string{},
		Log:     wikipediaLog(),
	}
	for _, tp := range wikiTopics() {
		for si, sn := range tp.senses {
			n := sn.docs * scale
			for i := 0; i < n; i++ {
				// A document: the topic term(s), a topical core with
				// Zipf-ish repetition, and ambient noise. Topical words
				// dominate so senses separate, but ambient overlap keeps
				// clustering imperfect (as the paper reports).
				topical := sampleWords(rng, sn.vocab, 10+rng.Intn(8))
				noise := sampleWords(rng, wikiAmbient, 3+rng.Intn(4))
				body := tp.query + " " + join(topical) + " " + join(noise)
				// Cross-sense leakage: real articles mention sibling senses
				// (a Java-island page mentions coffee; a programming page
				// mentions Microsoft). Leakage is what makes single-word
				// expansion imprecise and forces the keyword *interaction*
				// the paper's Section 1 motivates.
				if len(tp.senses) > 1 && rng.Float64() < 0.35 {
					other := tp.senses[(si+1+rng.Intn(len(tp.senses)-1))%len(tp.senses)]
					body += " " + join(sampleWords(rng, other.vocab, 1+rng.Intn(3)))
				}
				// Occasional single-document burst of a hyper-specific rare
				// word (real prose is bursty) — the too-specific bait that
				// TFICF labels and tf-weighted clouds pick up.
				if len(sn.rare) > 0 && rng.Float64() < 0.35 {
					w := pick(rng, sn.rare)
					reps := 4 + rng.Intn(4)
					for j := 0; j < reps; j++ {
						body += " " + w
					}
				}
				// One or two document-specific proper names (people,
				// places), so the distinct-keyword count grows with the
				// corpus the way real prose does — the paper's QS8 cluster
				// had 464 distinct keywords.
				names := 1 + rng.Intn(2)
				for j := 0; j < names; j++ {
					body += " " + properName(rng)
				}
				// Some documents mention the topic twice (title-style).
				if rng.Float64() < 0.3 {
					body += " " + tp.query
				}
				id := d.Corpus.AddText("", body)
				d.Labels[id] = tp.query + "/" + sn.name
			}
		}
	}
	d.buildIndex(analysis.Simple())
	return d
}
