package dataset

// wikiTopics models the ten Table 1 Wikipedia queries. Sense vocabularies
// echo the words visible in the paper's Figures 8–9 expansions (player /
// hockey / location for San Jose, university / album / british for
// Columbia, server / code / island for Java, ...), and the rare tails
// reproduce the junk-specific words the paper's CS and Data Clouds outputs
// surface (guillermo/calvo, biophosphate/placent, sumono/yumeka, hali,
// paganu, nabble, wakaheena, ...), so the qualitative listings regenerate
// recognizably.
func wikiTopics() []topic {
	return []topic{
		{
			query: "san jose",
			senses: []sense{
				{name: "city", docs: 14, vocab: []string{
					"city", "california", "location", "downtown", "silicon",
					"valley", "population", "neighborhood", "municipal",
					"mayor", "attractions", "weather"},
					rare: []string{"wakaheena", "guadalupe", "fallon", "gold", "war"}},
				{name: "sports", docs: 16, vocab: []string{
					"player", "hockey", "sharks", "team", "season", "arena",
					"scorer", "playoff", "league", "coach"},
					rare: []string{"sabercat", "kyle", "stanley"}},
			},
		},
		{
			query: "columbia",
			senses: []sense{
				{name: "university", docs: 13, vocab: []string{
					"university", "college", "research", "student", "campus",
					"professor", "faculty", "graduate", "school"},
					rare: []string{"guillermo", "calvo", "argentina"}},
				{name: "records", docs: 11, vocab: []string{
					"album", "record", "music", "artist", "release", "label",
					"studio", "song", "bennett"},
					rare: []string{"toni", "essential", "strong"}},
				{name: "british", docs: 10, vocab: []string{
					"british", "river", "mountain", "canada", "province",
					"vancouver", "pacific", "basin"},
					rare: []string{"yakama", "highway", "light"}},
			},
		},
		{
			query: "cvs",
			senses: []sense{
				{name: "pharmacy", docs: 12, vocab: []string{
					"pharmacy", "store", "retail", "prescription", "caremark",
					"household", "prince", "shop", "drug", "careers"},
					rare: []string{"vma", "station", "distribution"}},
				{name: "versioncontrol", docs: 12, vocab: []string{
					"code", "repository", "software", "commit", "developer",
					"community", "branch", "module", "checkout", "test"},
					rare: []string{"jike", "gnuplot", "bull", "java"}},
				{name: "place", docs: 8, vocab: []string{
					"southwest", "settlement", "township", "county",
					"railroad", "eastern"},
					rare: []string{"webster", "indiana", "system"}},
			},
		},
		{
			query: "domino",
			senses: []sense{
				{name: "pizza", docs: 11, vocab: []string{
					"pizza", "food", "restaurant", "delivery", "franchise",
					"menu", "chain", "page"},
					rare: []string{"harvey", "monaghan", "long"}},
				{name: "music", docs: 12, vocab: []string{
					"album", "produce", "vocal", "single", "record", "fats",
					"song", "chart"},
					rare: []string{"die", "brand"}},
				{name: "game", docs: 9, vocab: []string{
					"queen", "game", "tile", "player", "rules", "set",
					"effect"},
					rare: []string{"mexican", "spinner", "french", "language", "christian"}},
			},
		},
		{
			query: "eclipse",
			senses: []sense{
				{name: "software", docs: 14, vocab: []string{
					"model", "software", "plugin", "ide", "java", "platform",
					"environment", "automate", "core", "workspace"},
					rare: []string{"postfix", "milestone", "official"}},
				{name: "astronomy", docs: 11, vocab: []string{
					"greek", "solar", "moon", "ancient", "athenian", "shadow",
					"observation", "march", "total"},
					rare: []string{"hali", "paganu"}},
				{name: "car", docs: 9, vocab: []string{
					"mitsubishi", "car", "coupe", "engine", "motor",
					"drive", "sport", "video"},
					rare: []string{"spyder", "gsx", "role", "origin"}},
			},
		},
		{
			query: "java",
			senses: []sense{
				{name: "programming", docs: 16, vocab: []string{
					"server", "code", "web", "software", "language", "class",
					"application", "aspectj", "virtual", "machine",
					"tutorials", "games", "test"},
					rare: []string{"nabble", "howard", "blog", "microsoft", "tool"}},
				{name: "island", docs: 10, vocab: []string{
					"island", "indonesia", "western", "south", "volcano",
					"jakarta", "sea", "population"},
					rare: []string{"molucca", "parallel"}},
				{name: "coffee", docs: 8, vocab: []string{
					"coffee", "bean", "roast", "brew", "plantation", "drink",
					"cup", "trade"},
					rare: []string{"arabica", "sumatra", "room"}},
			},
		},
		{
			query: "cell",
			senses: []sense{
				{name: "biology", docs: 14, vocab: []string{
					"biological", "express", "data", "membrane", "nucleus",
					"organism", "protein", "theory", "animal", "parts"},
					rare: []string{"biophosphate", "placent", "mosaic", "multicellular", "stomach"}},
				{name: "battery", docs: 10, vocab: []string{
					"battery", "energy", "voltage", "electrode", "charge",
					"lithium", "power", "fuel"},
					rare: []string{"kinase", "amala"}},
				{name: "phone", docs: 9, vocab: []string{
					"phone", "mobile", "network", "tower", "signal",
					"carrier", "wireless", "call"},
					rare: []string{"sumono", "yumeka", "template", "bit"}},
			},
		},
		{
			query: "rockets",
			senses: []sense{
				{name: "nba", docs: 12, vocab: []string{
					"nba", "houston", "basketball", "player", "season",
					"maxwell", "coach", "playoff", "guard"},
					rare: []string{"vernon", "orlando", "cincinnati"}},
				{name: "space", docs: 14, vocab: []string{
					"launch", "space", "orbit", "propellant", "stage",
					"satellite", "engine", "nasa", "payload", "model"},
					rare: []string{"target", "vanguard"}},
				{name: "military", docs: 9, vocab: []string{
					"missile", "dome", "israel", "anti", "artillery", "built",
					"interior", "defense"},
					rare: []string{"rhode", "singer", "iowa"}},
			},
		},
		{
			query: "mouse",
			senses: []sense{
				{name: "device", docs: 13, vocab: []string{
					"technique", "wheel", "interface", "click", "button",
					"cursor", "optical", "usb", "scroll"},
					rare: []string{"mystery", "logitech"}},
				{name: "animal", docs: 11, vocab: []string{
					"scientific", "species", "fossil", "rodent", "laboratory",
					"gene", "habitat"},
					rare: []string{"hesperian", "birch", "bush"}},
				{name: "cartoon", docs: 10, vocab: []string{
					"cartoon", "television", "adventure", "mickey",
					"animation", "character", "episode", "studio"},
					rare: []string{"laugh", "hanna"}},
			},
		},
		{
			query: "sportsman williams",
			senses: []sense{
				{name: "athlete", docs: 11, vocab: []string{
					"smith", "point", "club", "match", "champion", "title",
					"record", "career", "football", "baseball"},
					rare: []string{"piano", "american", "boston"}},
				{name: "venue", docs: 10, vocab: []string{
					"launch", "fire", "park", "stadium", "event", "crowd",
					"opening", "ceremony"},
					rare: []string{"alliance", "iraqi", "youth", "kick"}},
				{name: "profile", docs: 9, vocab: []string{
					"stuart", "biography", "born", "family", "school",
					"town", "early"},
					rare: []string{"barker", "salem", "gamebook", "highway"}},
			},
		},
	}
}
