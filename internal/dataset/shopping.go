package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/document"
)

// productFamily describes one product category of the shopping corpus: the
// umbrella entity it belongs to (e.g. "canonproducts"), its category value,
// brands, name prefixes, and category-specific feature attributes with their
// value vocabularies. Each generated product carries the umbrella words in
// its title (so the Table 1 queries retrieve it) and a set of feature
// triplets (so expanded queries can pin exact features, as in Figures 8–9).
type productFamily struct {
	label      string // ground-truth label for clustering checks
	entity     string // triplet entity, e.g. "canonproducts"
	titleWords string // words every title contains, e.g. "canon products"
	category   string // category triplet value, e.g. "camera"
	brands     []string
	namePref   []string // model-name prefixes, e.g. "pixma"
	features   []featureSpec
	count      int // base number of products (scaled by the generator)
}

type featureSpec struct {
	attribute string
	values    []string
}

// shoppingFamilies mirrors the product landscape implied by the paper's
// QS queries and the Figures 8–9 expansions: Canon cameras / camcorders /
// printers, networking routers / switches / firewalls, plasma and LCD TVs,
// HP printers / batteries / laptops, four kinds of memory, and printers.
func shoppingFamilies() []productFamily {
	return []productFamily{
		{
			label: "canon-camera", entity: "canonproducts",
			titleWords: "canon products", category: "camera",
			brands:   []string{"canon"},
			namePref: []string{"powershot", "eos", "rebel"},
			features: []featureSpec{
				{"image resolution", []string{"4752 x 3168", "3648 x 2736", "5184 x 3456"}},
				{"shutter speed", []string{"15 - 13,200 sec.", "30 - 8000 sec."}},
				{"zoom", []string{"4x", "10x", "12x"}},
			},
			count: 14,
		},
		{
			label: "canon-camcorder", entity: "canonproducts",
			titleWords: "canon products", category: "camcorders",
			brands:   []string{"canon"},
			namePref: []string{"vixia", "fs"},
			features: []featureSpec{
				{"media", []string{"flash", "dvd", "hdd"}},
				{"optical zoom", []string{"37x", "41x", "20x"}},
			},
			count: 10,
		},
		{
			label: "canon-printer", entity: "canonproducts",
			titleWords: "canon products printer", category: "printer",
			brands:   []string{"canon"},
			namePref: []string{"pixma", "imageclass"},
			features: []featureSpec{
				{"printmethod", []string{"inkjet", "laser"}},
				{"condition", []string{"new", "refurbished"}},
			},
			count: 12,
		},
		{
			label: "networking-router", entity: "networkingproducts",
			titleWords: "networking products router", category: "routers",
			brands:   []string{"linksys", "cisco", "netgear", "d-link"},
			namePref: []string{"rangemax", "integr", "wrt"},
			features: []featureSpec{
				{"rj-45ports", []string{"4", "8"}},
				{"features", []string{"mac filtering", "qos", "dhcp"}},
				{"wireless", []string{"802.11g", "802.11n"}},
			},
			count: 13,
		},
		{
			label: "networking-switch", entity: "networkingproducts",
			titleWords: "networking products switches ethernet", category: "switches",
			brands:   []string{"d-link", "netgear", "cisco"},
			namePref: []string{"des", "gs"},
			features: []featureSpec{
				{"ports", []string{"5", "8", "16", "24"}},
				{"speed", []string{"10/100", "gigabit"}},
			},
			count: 10,
		},
		{
			label: "networking-firewall", entity: "networkingproducts",
			titleWords: "networking products firewalls", category: "firewalls",
			brands:   []string{"sonicwall", "d-link", "zyxel"},
			namePref: []string{"dir", "tz"},
			features: []featureSpec{
				{"vlans", []string{"portshield", "tagged"}},
				{"form factor", []string{"desktop", "rackmount"}},
				{"vpn", []string{"ipsec", "ssl"}},
			},
			count: 9,
		},
		{
			label: "tv-plasma", entity: "tv",
			titleWords: "tv television plasma", category: "plasma",
			brands:   []string{"panasonic", "samsung", "lg"},
			namePref: []string{"viera", "pn"},
			features: []featureSpec{
				{"displayarea", []string{"42`", "50`", "58`"}},
				{"displaytype", []string{"plasma hdtv"}},
				{"resolution", []string{"1080p", "720p"}},
			},
			count: 11,
		},
		{
			label: "tv-lcd", entity: "tv",
			titleWords: "tv television lcd", category: "lcd",
			brands:   []string{"toshiba", "lg", "samsung", "sony"},
			namePref: []string{"regza", "bravia", "lg"},
			features: []featureSpec{
				{"displayarea", []string{"26`", "32`", "42`"}},
				{"displaytype", []string{"lcd hdtv"}},
				{"resolution", []string{"1080p", "720p"}},
			},
			count: 13,
		},
		{
			label: "hp-printer", entity: "hpproducts",
			titleWords: "hp products printer", category: "printer",
			brands:   []string{"hp"},
			namePref: []string{"laserjet", "deskjet", "officejet"},
			features: []featureSpec{
				{"printmethod", []string{"laser", "inkjet"}},
				{"condition", []string{"new"}},
			},
			count: 11,
		},
		{
			label: "hp-battery", entity: "hpproducts",
			titleWords: "hp products battery", category: "battery",
			brands:   []string{"hp"},
			namePref: []string{"pavilion", "compaq"},
			features: []featureSpec{
				{"compatible models", []string{"pavilion dv6", "pavilion dv7", "compaq 6720"}},
				{"cells", []string{"6", "9", "12"}},
			},
			count: 9,
		},
		{
			label: "hp-laptop", entity: "hpproducts",
			titleWords: "hp products laptop", category: "laptop",
			brands:   []string{"hp"},
			namePref: []string{"pavilion", "elitebook"},
			features: []featureSpec{
				{"screen", []string{"14`", "15.6`", "17`"}},
				{"processor", []string{"core 2 duo", "athlon x2", "turion"}},
			},
			count: 10,
		},
		{
			label: "memory-harddrive", entity: "memory",
			titleWords: "memory internal storage", category: "harddrive",
			brands:   []string{"hitachi", "seagate", "cavalry", "western digital"},
			namePref: []string{"deskstar", "barracuda", "cavalry"},
			features: []featureSpec{
				{"memory size", []string{"250gb", "500gb", "1tb"}},
				{"interface", []string{"sata", "ide"}},
				{"mount", []string{"internal", "external"}},
			},
			count: 14,
		},
		{
			label: "memory-flash", entity: "memory",
			titleWords: "memory flash portable", category: "flashmemory",
			brands:   []string{"sandisk", "transcend", "kingston"},
			namePref: []string{"cruzer", "jetflash"},
			features: []featureSpec{
				{"memory size", []string{"4gb", "8gb", "16gb"}},
				{"format", []string{"sd", "usb", "compactflash"}},
			},
			count: 13,
		},
		{
			label: "memory-ddr2", entity: "memory",
			titleWords: "memory ram module", category: "ddr2",
			brands:   []string{"kingston", "corsair", "transcend"},
			namePref: []string{"valueram", "xms2"},
			features: []featureSpec{
				{"memory size", []string{"2gb", "4gb"}},
				{"speed", []string{"667mhz", "800mhz"}},
				{"mount", []string{"internal"}},
			},
			count: 8,
		},
		{
			label: "memory-ddr3", entity: "memory",
			titleWords: "memory ram module", category: "ddr3",
			brands:   []string{"kingston", "corsair", "crucial"},
			namePref: []string{"hyperx", "vengeance"},
			features: []featureSpec{
				{"memory size", []string{"4gb", "8gb"}},
				{"speed", []string{"1333mhz", "1600mhz"}},
				{"mount", []string{"internal"}},
			},
			count: 9,
		},
	}
}

// shoppingQueries is Table 1's shopping column.
func shoppingQueries() []TestQuery {
	return []TestQuery{
		{ID: "QS1", Raw: "canon products"},
		{ID: "QS2", Raw: "networking products"},
		{ID: "QS3", Raw: "networking products routers"},
		{ID: "QS4", Raw: "tv"},
		{ID: "QS5", Raw: "tv plasma"},
		{ID: "QS6", Raw: "hp products"},
		{ID: "QS7", Raw: "memory"},
		{ID: "QS8", Raw: "memory 8gb"},
		{ID: "QS9", Raw: "memory internal"},
		{ID: "QS10", Raw: "printer"},
	}
}

// shoppingLog synthesizes the query-log suggestions the paper quotes from
// Google for the shopping queries, including out-of-corpus brands ("sony
// products") and off-domain senses ("tv hair products", "wood routers").
func shoppingLog() []baseline.LogEntry {
	return []baseline.LogEntry{
		{Query: "canon products camera", Count: 950},
		{Query: "sony products", Count: 930},
		{Query: "canon products printer", Count: 640},
		{Query: "social networking products", Count: 980},
		{Query: "computer networking products", Count: 890},
		{Query: "networking products price", Count: 560},
		{Query: "networking wireless routers", Count: 720},
		{Query: "network routers", Count: 680},
		{Query: "wood routers", Count: 610},
		{Query: "networking products routers cisco", Count: 300},
		{Query: "tv guide products", Count: 990},
		{Query: "tv electronics", Count: 840},
		{Query: "tv hair products", Count: 500},
		{Query: "tv plasma vs lcd", Count: 870},
		{Query: "tv lcd", Count: 790},
		{Query: "tv bestbuy plasma", Count: 410},
		{Query: "hp products corporation", Count: 860},
		{Query: "hp products printer", Count: 820},
		{Query: "hp products laptop", Count: 760},
		{Query: "human memory", Count: 970},
		{Query: "computer memory", Count: 880},
		{Query: "memory game", Count: 770},
		{Query: "memory cards 8gb", Count: 750},
		{Query: "memory 8gb flash", Count: 590},
		{Query: "memory 8gb ram", Count: 430},
		{Query: "dell memory internal", Count: 520},
		{Query: "memory internal dell d", Count: 210},
		{Query: "canon printer", Count: 910},
		{Query: "hp printer", Count: 900},
		{Query: "printer reviews", Count: 480},
	}
}

// Shopping generates the shopping dataset. scale multiplies the per-family
// product counts (scale 1 ≈ 150 products, in the ballpark of the paper's
// per-query result counts; QS8's largest-cluster keyword count grows with
// scale). Deterministic per seed.
func Shopping(seed int64, scale int) *Dataset {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:    "shopping",
		Corpus:  document.NewCorpus(),
		Queries: shoppingQueries(),
		Labels:  map[document.DocID]string{},
		Log:     shoppingLog(),
	}
	// Generic merchandising words shared across every family — the
	// too-general vocabulary that tf-weighted word clouds are drawn to, and
	// the cross-category noise that keeps single keywords from being
	// perfectly selective.
	marketing := []string{"black", "compact", "digital", "portable",
		"premium", "series", "pro", "edition", "warranty", "sale"}
	for _, fam := range shoppingFamilies() {
		n := fam.count * scale
		for i := 0; i < n; i++ {
			brand := pick(rng, fam.brands)
			name := fmt.Sprintf("%s %s", pick(rng, fam.namePref), model(rng, "m"))
			title := fmt.Sprintf("%s %s %s %s", fam.titleWords, brand, name,
				join(sampleWords(rng, marketing, 1+rng.Intn(3))))
			triplets := []document.Triplet{
				{Entity: fam.entity, Attribute: "category", Value: fam.category},
				{Entity: fam.category, Attribute: "brand", Value: brand},
				{Entity: fam.category, Attribute: "name", Value: name},
			}
			for _, fs := range fam.features {
				triplets = append(triplets, document.Triplet{
					Entity:    fam.category,
					Attribute: fs.attribute,
					Value:     pick(rng, fs.values),
				})
			}
			id := d.Corpus.AddStructured(title, triplets)
			d.Labels[id] = fam.label
		}
	}
	d.buildIndex(analysis.Simple())
	return d
}
