package dataset

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/search"
)

func TestShoppingDeterministic(t *testing.T) {
	a := Shopping(1, 1)
	b := Shopping(1, 1)
	if a.Corpus.Len() != b.Corpus.Len() {
		t.Fatal("different corpus sizes for same seed")
	}
	for i := 0; i < a.Corpus.Len(); i++ {
		da, db := a.Corpus.Get(document.DocID(i)), b.Corpus.Get(document.DocID(i))
		if da.Title != db.Title || len(da.Triplets) != len(db.Triplets) {
			t.Fatalf("doc %d differs between same-seed runs", i)
		}
	}
}

func TestShoppingScale(t *testing.T) {
	small := Shopping(1, 1)
	big := Shopping(1, 3)
	if big.Corpus.Len() != 3*small.Corpus.Len() {
		t.Errorf("scale 3 = %d docs, want %d", big.Corpus.Len(), 3*small.Corpus.Len())
	}
}

func TestShoppingQueriesRetrieve(t *testing.T) {
	d := Shopping(1, 1)
	eng := search.NewEngine(d.Index)
	for _, tq := range d.Queries {
		q := search.ParseQuery(d.Index, tq.Raw)
		res := eng.Eval(q, search.And)
		if len(res) == 0 {
			t.Errorf("%s %q retrieved nothing", tq.ID, tq.Raw)
		}
	}
}

func TestShoppingQS1RetrievesThreeCanonCategories(t *testing.T) {
	d := Shopping(1, 1)
	eng := search.NewEngine(d.Index)
	res := eng.Eval(search.ParseQuery(d.Index, "canon products"), search.And)
	cats := map[string]bool{}
	for _, id := range res {
		cats[d.Labels[id]] = true
	}
	for _, want := range []string{"canon-camera", "canon-camcorder", "canon-printer"} {
		if !cats[want] {
			t.Errorf("QS1 missing category %s (got %v)", want, cats)
		}
	}
	// And nothing else: canon products are exactly the canon families.
	for cat := range cats {
		switch cat {
		case "canon-camera", "canon-camcorder", "canon-printer":
		default:
			t.Errorf("QS1 retrieved unexpected category %s", cat)
		}
	}
}

func TestShoppingCompositeTermsSearchable(t *testing.T) {
	d := Shopping(1, 1)
	eng := search.NewEngine(d.Index)
	res := eng.Eval(search.NewQuery("canonproducts:category:camcorders"), search.And)
	if len(res) == 0 {
		t.Fatal("composite triplet term retrieves nothing")
	}
	for _, id := range res {
		if d.Labels[id] != "canon-camcorder" {
			t.Errorf("composite term retrieved %s", d.Labels[id])
		}
	}
}

func TestShoppingCategoriesClusterCleanly(t *testing.T) {
	// The key structural property: canon product categories separate under
	// k-means, so near-perfect expanded queries exist (Figure 5a).
	d := Shopping(1, 1)
	eng := search.NewEngine(d.Index)
	res := eng.Eval(search.ParseQuery(d.Index, "canon products"), search.And)
	cl := cluster.KMeans(d.Index, res, cluster.Options{K: 3, Seed: 7, PlusPlus: true})
	p := cluster.Purity(cl, d.Labels)
	if p < 0.9 {
		t.Errorf("canon cluster purity = %v, want >= 0.9", p)
	}
}

func TestShoppingQS8MemorySizes(t *testing.T) {
	d := Shopping(1, 1)
	eng := search.NewEngine(d.Index)
	res := eng.Eval(search.ParseQuery(d.Index, "memory 8gb"), search.And)
	if len(res) == 0 {
		t.Fatal("QS8 empty")
	}
	for _, id := range res {
		if !d.Index.HasTerm(id, "8gb") {
			t.Errorf("doc %d retrieved without 8gb", id)
		}
	}
}

func TestShoppingLogHasOutOfCorpusSuggestion(t *testing.T) {
	d := Shopping(1, 1)
	// "sony products" must be in the log while sony cameras are not a
	// product family — the paper's Google critique for QS1.
	found := false
	for _, e := range d.Log {
		if e.Query == "sony products" {
			found = true
		}
	}
	if !found {
		t.Error("log lacks the out-of-corpus 'sony products' suggestion")
	}
}

func TestWikipediaDeterministic(t *testing.T) {
	a, b := Wikipedia(2, 1), Wikipedia(2, 1)
	if a.Corpus.Len() != b.Corpus.Len() {
		t.Fatal("different sizes")
	}
	for i := 0; i < a.Corpus.Len(); i++ {
		if a.Corpus.Get(document.DocID(i)).Body != b.Corpus.Get(document.DocID(i)).Body {
			t.Fatalf("doc %d differs", i)
		}
	}
}

func TestWikipediaQueriesRetrieveAllSenses(t *testing.T) {
	d := Wikipedia(2, 1)
	eng := search.NewEngine(d.Index)
	for _, tq := range d.Queries {
		q := search.ParseQuery(d.Index, tq.Raw)
		res := eng.Eval(q, search.And)
		if len(res) < 20 {
			t.Errorf("%s retrieved only %d results", tq.ID, len(res))
		}
		senses := map[string]bool{}
		for _, id := range res {
			senses[d.Labels[id]] = true
		}
		if len(senses) < 2 {
			t.Errorf("%s: only %d senses retrieved (%v)", tq.ID, len(senses), senses)
		}
	}
}

func TestWikipediaSensesSeparate(t *testing.T) {
	d := Wikipedia(2, 1)
	eng := search.NewEngine(d.Index)
	res := eng.Eval(search.ParseQuery(d.Index, "java"), search.And)
	cl := cluster.KMeans(d.Index, res,
		cluster.Options{K: 3, Seed: 3, PlusPlus: true, Restarts: 5})
	if p := cluster.Purity(cl, d.Labels); p < 0.8 {
		t.Errorf("java sense purity = %v, want >= 0.8", p)
	}
}

func TestWikipediaScaleSupportsScalabilitySweep(t *testing.T) {
	// Figure 7 needs up to 500 "columbia" results.
	d := Wikipedia(2, 15)
	eng := search.NewEngine(d.Index)
	res := eng.Eval(search.ParseQuery(d.Index, "columbia"), search.And)
	if len(res) < 500 {
		t.Errorf("columbia at scale 15 = %d results, want >= 500", len(res))
	}
}

func TestWikipediaRocketsLogMissesNBASense(t *testing.T) {
	d := Wikipedia(2, 1)
	for _, e := range d.Log {
		if !containsWord(e.Query, "rockets") {
			continue
		}
		if containsWord(e.Query, "nba") || containsWord(e.Query, "houston") {
			t.Errorf("rockets log entry %q covers the NBA sense; the critique needs it missing", e.Query)
		}
	}
}

func containsWord(s, w string) bool {
	fields := []rune(s)
	_ = fields
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if s[start:i] == w {
				return true
			}
			start = i + 1
		}
	}
	return false
}

func TestQueryByID(t *testing.T) {
	d := Shopping(1, 1)
	q, ok := d.QueryByID("QS4")
	if !ok || q.Raw != "tv" {
		t.Errorf("QueryByID(QS4) = %v, %v", q, ok)
	}
	if _, ok := d.QueryByID("QW1"); ok {
		t.Error("shopping dataset should not contain QW1")
	}
}

func TestLabelsCoverEveryDoc(t *testing.T) {
	for _, d := range []*Dataset{Shopping(1, 1), Wikipedia(2, 1)} {
		for i := 0; i < d.Corpus.Len(); i++ {
			if d.Labels[document.DocID(i)] == "" {
				t.Errorf("%s: doc %d unlabeled", d.Name, i)
			}
		}
	}
}
