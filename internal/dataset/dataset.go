// Package dataset synthesizes the two evaluation corpora of Section 5.1.
//
// The paper used (a) a crawl of circuitcity.com (proprietary; the site no
// longer exists) and (b) the INEX 2009 Wikipedia XML collection (a licensed
// 13GB dump). Neither is available, so this package generates synthetic
// equivalents that preserve the structural properties the algorithms are
// sensitive to:
//
//   - Shopping: structured products whose categories have largely disjoint
//     feature vocabularies, so category-shaped clusters admit near-perfect
//     expanded queries (the reason Figure 5a shows many perfect scores).
//   - Wikipedia: prose documents over ambiguous terms, where each sense has
//     its own topical vocabulary but senses share ambient words, and
//     high-frequency words do not necessarily co-occur (the property that
//     degrades CS and Data Clouds in Figure 5b).
//
// Both generators are deterministic per seed. The query sets are Table 1's,
// and a synthetic query log provides the "Google" baseline's suggestions.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/document"
	"repro/internal/index"
)

// TestQuery is one entry of Table 1.
type TestQuery struct {
	// ID is the paper's query identifier (QS1..QS10, QW1..QW10).
	ID string
	// Raw is the query text as issued by the user.
	Raw string
}

// Dataset bundles a generated corpus with its index, Table 1 queries,
// ground-truth labels and the synthetic query log.
type Dataset struct {
	Name    string
	Corpus  *document.Corpus
	Index   *index.Index
	Queries []TestQuery
	// Labels maps each document to its ground-truth category or sense,
	// used to sanity-check clustering and to drive the user-study
	// simulator.
	Labels map[document.DocID]string
	// Log is the synthetic query log for the Google baseline.
	Log []baseline.LogEntry
}

// QueryByID returns the test query with the given ID.
func (d *Dataset) QueryByID(id string) (TestQuery, bool) {
	for _, q := range d.Queries {
		if q.ID == id {
			return q, true
		}
	}
	return TestQuery{}, false
}

// pick returns a deterministic pseudo-random element of xs.
func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// sampleWords draws n words from vocab with replacement.
func sampleWords(rng *rand.Rand, vocab []string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = vocab[rng.Intn(len(vocab))]
	}
	return out
}

func join(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// model builds product model names like "px-1500".
func model(rng *rand.Rand, prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, 100+rng.Intn(9000))
}

// properName synthesizes a pronounceable proper name ("velor", "kamin").
var nameOnsets = []string{"b", "d", "f", "g", "h", "k", "l", "m", "n", "p",
	"r", "s", "t", "v", "w"}
var nameNuclei = []string{"a", "e", "i", "o", "u", "ar", "el", "in", "or", "an"}

func properName(rng *rand.Rand) string {
	n := 2 + rng.Intn(2)
	out := ""
	for i := 0; i < n; i++ {
		out += pick(rng, nameOnsets) + pick(rng, nameNuclei)
	}
	return out
}

// buildIndex finalizes a dataset: indexes the corpus with the given
// analyzer.
func (d *Dataset) buildIndex(a *analysis.Analyzer) {
	d.Index = index.Build(d.Corpus, a)
}
