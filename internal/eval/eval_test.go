package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

func TestMeasurePerfect(t *testing.T) {
	c := document.NewDocSet(1, 2, 3)
	got := Measure(c.Clone(), c, nil)
	if got.Precision != 1 || got.Recall != 1 || got.F != 1 {
		t.Errorf("Measure = %+v, want all 1", got)
	}
}

func TestMeasureDisjoint(t *testing.T) {
	got := Measure(document.NewDocSet(1), document.NewDocSet(2), nil)
	if got.Precision != 0 || got.Recall != 0 || got.F != 0 {
		t.Errorf("Measure = %+v, want all 0", got)
	}
}

func TestMeasurePartial(t *testing.T) {
	// retrieved {1,2,3,4}, cluster {3,4,5,6}: p = 2/4, r = 2/4, F = 1/2
	got := Measure(document.NewDocSet(1, 2, 3, 4), document.NewDocSet(3, 4, 5, 6), nil)
	if math.Abs(got.Precision-0.5) > 1e-12 || math.Abs(got.Recall-0.5) > 1e-12 ||
		math.Abs(got.F-0.5) > 1e-12 {
		t.Errorf("Measure = %+v", got)
	}
}

func TestMeasureEmptySets(t *testing.T) {
	if got := Measure(document.DocSet{}, document.NewDocSet(1), nil); got != (PRF{}) {
		t.Errorf("empty retrieved: %+v", got)
	}
	if got := Measure(document.NewDocSet(1), document.DocSet{}, nil); got != (PRF{}) {
		t.Errorf("empty cluster: %+v", got)
	}
}

func TestMeasureWeighted(t *testing.T) {
	// cluster {1,2}: weight(1)=9, weight(2)=1; retrieve only {1}.
	w := Weights{1: 9, 2: 1}
	got := Measure(document.NewDocSet(1), document.NewDocSet(1, 2), w)
	if got.Precision != 1 {
		t.Errorf("precision = %v", got.Precision)
	}
	if math.Abs(got.Recall-0.9) > 1e-12 {
		t.Errorf("recall = %v, want 0.9 (rank-weighted)", got.Recall)
	}
}

func TestWeightsSFallsBackToOne(t *testing.T) {
	w := Weights{1: 2}
	// doc 5 absent from weights counts as 1
	if got := w.S(document.NewDocSet(1, 5)); got != 3 {
		t.Errorf("S = %v, want 3", got)
	}
	var nilW Weights
	if got := nilW.S(document.NewDocSet(1, 2, 3)); got != 3 {
		t.Errorf("nil S = %v, want 3", got)
	}
}

func TestWeightedEqualsUnweightedWhenUniform(t *testing.T) {
	r := document.NewDocSet(1, 2, 5)
	c := document.NewDocSet(2, 5, 7)
	w := Weights{1: 1, 2: 1, 5: 1, 7: 1}
	a, b := Measure(r, c, w), Measure(r, c, nil)
	if math.Abs(a.F-b.F) > 1e-12 {
		t.Errorf("uniform weighted F %v != unweighted F %v", a.F, b.F)
	}
}

func TestFMeasureHarmonic(t *testing.T) {
	if got := FMeasure(1, 0.5); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("FMeasure(1, 0.5) = %v", got)
	}
	if FMeasure(0, 0) != 0 {
		t.Error("FMeasure(0,0) should be 0")
	}
}

func TestScoreEq1(t *testing.T) {
	// harmonic mean of {0.5, 1}: 2 / (2 + 1) = 2/3
	if got := Score([]float64{0.5, 1}); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Score = %v", got)
	}
	if got := Score([]float64{0.8}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("single-query Score = %v", got)
	}
}

func TestScoreZeroFGivesZero(t *testing.T) {
	if got := Score([]float64{0.9, 0}); got != 0 {
		t.Errorf("Score with a zero F = %v, want 0", got)
	}
	if got := Score(nil); got != 0 {
		t.Errorf("Score(nil) = %v, want 0", got)
	}
}

func TestComprehensiveness(t *testing.T) {
	universe := document.NewDocSet(1, 2, 3, 4)
	half := []document.DocSet{document.NewDocSet(1), document.NewDocSet(2)}
	if got := Comprehensiveness(half, universe, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Comprehensiveness = %v, want 0.5", got)
	}
	full := []document.DocSet{document.NewDocSet(1, 2), document.NewDocSet(3, 4)}
	if got := Comprehensiveness(full, universe, nil); got != 1 {
		t.Errorf("full coverage = %v", got)
	}
	if got := Comprehensiveness(nil, document.DocSet{}, nil); got != 0 {
		t.Errorf("empty universe = %v", got)
	}
	// Results outside the universe don't inflate coverage.
	outside := []document.DocSet{document.NewDocSet(9, 10)}
	if got := Comprehensiveness(outside, universe, nil); got != 0 {
		t.Errorf("outside universe = %v", got)
	}
}

func TestDiversity(t *testing.T) {
	disjoint := []document.DocSet{document.NewDocSet(1, 2), document.NewDocSet(3, 4)}
	if got := Diversity(disjoint); got != 1 {
		t.Errorf("disjoint diversity = %v", got)
	}
	identical := []document.DocSet{document.NewDocSet(1, 2), document.NewDocSet(1, 2)}
	if got := Diversity(identical); got != 0 {
		t.Errorf("identical diversity = %v", got)
	}
	if got := Diversity([]document.DocSet{document.NewDocSet(1)}); got != 1 {
		t.Errorf("single set diversity = %v", got)
	}
	empties := []document.DocSet{{}, {}}
	if got := Diversity(empties); got != 1 {
		t.Errorf("two empty sets diversity = %v", got)
	}
}

func genSet(ids []uint8) document.DocSet {
	s := document.NewDocSet()
	for _, id := range ids {
		s.Add(document.DocID(id % 24))
	}
	return s
}

// Property: all measures lie in [0,1]; F <= 2·min(P,R)/(anything) ... more
// precisely F <= min(2P, 2R) and F <= max(P, R).
func TestMeasurePropertyBounds(t *testing.T) {
	prop := func(rs, cs []uint8, ws []uint8) bool {
		r, c := genSet(rs), genSet(cs)
		var w Weights
		if len(ws) > 0 {
			w = Weights{}
			for i, x := range ws {
				w[document.DocID(i%24)] = float64(x%10) + 0.5
			}
		}
		m := Measure(r, c, w)
		eps := 1e-9
		if m.Precision < -eps || m.Precision > 1+eps ||
			m.Recall < -eps || m.Recall > 1+eps ||
			m.F < -eps || m.F > 1+eps {
			return false
		}
		if m.F > 2*m.Precision+eps || m.F > 2*m.Recall+eps {
			return false
		}
		return m.F <= math.Max(m.Precision, m.Recall)+eps
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Eq. 1 harmonic mean is <= the minimum F-measure... actually
// harmonic mean lies between min and max.
func TestScorePropertyBetweenMinMax(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		fs := make([]float64, len(raw))
		min, max := 1.0, 0.0
		for i, x := range raw {
			fs[i] = (float64(x%100) + 1) / 101.0
			if fs[i] < min {
				min = fs[i]
			}
			if fs[i] > max {
				max = fs[i]
			}
		}
		s := Score(fs)
		eps := 1e-9
		return s >= min-eps && s <= max+eps
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: diversity and comprehensiveness lie in [0,1].
func TestDiversityComprehensivenessPropertyBounds(t *testing.T) {
	prop := func(as, bs, us []uint8) bool {
		sets := []document.DocSet{genSet(as), genSet(bs)}
		u := genSet(us)
		d := Diversity(sets)
		if d < -1e-9 || d > 1+1e-9 {
			return false
		}
		if u.Len() > 0 {
			c := Comprehensiveness(sets, u, nil)
			if c < -1e-9 || c > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
