// Package eval implements the quality measures of Section 2: precision,
// recall and F-measure of an expanded query against its cluster (both
// unweighted and rank-weighted), the Eq. 1 harmonic-mean score of a set of
// expanded queries, and the comprehensiveness/diversity measures used by the
// collective-score part of the user study.
package eval

import (
	"math/bits"

	"repro/internal/document"
)

// Weights maps documents to ranking scores. A nil Weights means "unranked":
// every document counts 1, reducing the weighted measures to the set-based
// ones.
type Weights map[document.DocID]float64

// S returns the total ranking score of a set of results — the S(·) of
// Section 2. With nil weights it is the cardinality. Documents missing from
// a non-nil Weights count as weight 1 (the search layer assigns scores only
// to ranked results). Summation runs in sorted document order so the result
// is bit-identical across runs (map iteration order varies and float
// addition is not associative).
func (w Weights) S(set document.DocSet) float64 {
	if w == nil {
		return float64(set.Len())
	}
	total := 0.0
	for _, id := range set.IDs() {
		if s, ok := w[id]; ok && s > 0 {
			total += s
		} else {
			total += 1
		}
	}
	return total
}

// AccumWord adds the weights of the set bits of one bitset word to acc as a
// flat left-fold in ascending bit order; wi is the word's index in the set
// and w the dense weight table (nil = every member counts 1). The fold shape
// matters: the dense paths must produce bit-identical sums to the historical
// sorted-ID map iteration, and float addition is not associative, so per-word
// partial sums may NOT be formed in the weighted case. Unweighted (w nil)
// sums are exact integers, where a popcount shortcut is associative and
// therefore safe. This single implementation backs both eval's measures and
// core's benefit/cost accumulation — the bit-identical-output contract
// depends on them folding identically.
func AccumWord(acc float64, wi int, word uint64, w []float64) float64 {
	if word == 0 {
		return acc
	}
	if w == nil {
		return acc + float64(bits.OnesCount64(word))
	}
	base := wi << 6
	for word != 0 {
		acc += w[base+bits.TrailingZeros64(word)]
		word &= word - 1
	}
	return acc
}

// SBits is S(·) over a dense-ID bitset: the cardinality when w is nil, else
// the sum of w[id] over the members in ascending ID order. w is indexed by
// dense ID and must already resolve the "missing weights count 1" rule.
func SBits(set document.BitSet, w []float64) float64 {
	total := 0.0
	for wi, word := range set.Words() {
		total = AccumWord(total, wi, word, w)
	}
	return total
}

// PRF holds the three measures of one expanded query.
type PRF struct {
	Precision float64
	Recall    float64
	F         float64
}

// Measure computes the rank-weighted precision, recall and F-measure of a
// retrieved set against cluster C (the ground truth), per Section 2:
//
//	precision = S(R ∩ C) / S(R),  recall = S(R ∩ C) / S(C)
//
// Conventions for empty sets: an empty retrieved set has precision 0 (and
// recall 0), so F is 0; an empty cluster makes the measure undefined and we
// return zeros.
func Measure(retrieved, cluster document.DocSet, w Weights) PRF {
	if retrieved.Len() == 0 || cluster.Len() == 0 {
		return PRF{}
	}
	inter := w.S(retrieved.Intersect(cluster))
	p := inter / w.S(retrieved)
	r := inter / w.S(cluster)
	return PRF{Precision: p, Recall: r, F: FMeasure(p, r)}
}

// MeasureIDs is Measure with the retrieved set in the search layer's sorted
// Eval form: ascending document IDs instead of a map-backed DocSet. The
// S(R ∩ C) and S(R) sums fold over the given slice in its ascending order —
// exactly the sorted-ID order Weights.S iterates — so the result is
// bit-identical to Measure over the equivalent DocSet.
func MeasureIDs(retrieved []document.DocID, cluster document.DocSet, w Weights) PRF {
	if len(retrieved) == 0 || cluster.Len() == 0 {
		return PRF{}
	}
	inter, sR := 0.0, 0.0
	for _, id := range retrieved {
		wt := 1.0
		if w != nil {
			if s, ok := w[id]; ok && s > 0 {
				wt = s
			}
		}
		sR += wt
		if cluster.Contains(id) {
			inter += wt
		}
	}
	p := inter / sR
	r := inter / w.S(cluster)
	return PRF{Precision: p, Recall: r, F: FMeasure(p, r)}
}

// MeasureBits is Measure over dense-ID bitsets — the expansion core's hot
// path. retrieved and cluster share a universe; w is the dense weight table
// (nil = unranked); sCluster is S(cluster), which callers cache because the
// cluster is fixed across the many candidate queries of one problem.
// Both sums accumulate in ascending dense-ID order (= ascending DocID order),
// so the result is bit-identical to Measure over the equivalent DocSets.
func MeasureBits(retrieved, cluster document.BitSet, w []float64, sCluster float64) PRF {
	inter, sR := 0.0, 0.0
	cw := cluster.Words()
	for wi, word := range retrieved.Words() {
		inter = AccumWord(inter, wi, word&cw[wi], w)
		sR = AccumWord(sR, wi, word, w)
	}
	// Weights are strictly positive, so a zero sum ⟺ an empty set — the same
	// empty-set conventions as Measure.
	if sR == 0 || sCluster == 0 {
		return PRF{}
	}
	p := inter / sR
	r := inter / sCluster
	return PRF{Precision: p, Recall: r, F: FMeasure(p, r)}
}

// FMeasure returns the harmonic mean of precision and recall; 0 when both
// are 0.
func FMeasure(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Score implements Eq. 1: the harmonic mean of the F-measures of the k
// expanded queries, one per cluster. If any F-measure is 0 the harmonic mean
// is 0; the empty set scores 0.
func Score(fmeasures []float64) float64 {
	if len(fmeasures) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range fmeasures {
		if f <= 0 {
			return 0
		}
		sum += 1 / f
	}
	return float64(len(fmeasures)) / sum
}

// Comprehensiveness measures how much of the original result universe the
// expanded queries jointly cover: S(∪ R_i) / S(universe). Used by the
// simulated collective user study (Figure 3/4); the paper's raters call a
// set of expanded queries comprehensive when it "covers various
// aspects/meanings of the original query".
func Comprehensiveness(retrieved []document.DocSet, universe document.DocSet, w Weights) float64 {
	if universe.Len() == 0 {
		return 0
	}
	union := document.DocSet{}
	for _, r := range retrieved {
		union = union.Union(r)
	}
	return w.S(union.Intersect(universe)) / w.S(universe)
}

// Diversity measures how little the expanded queries' result sets overlap:
// 1 − mean pairwise Jaccard similarity. A single query (or none) is
// trivially diverse.
func Diversity(retrieved []document.DocSet) float64 {
	n := len(retrieved)
	if n < 2 {
		return 1
	}
	totalJ, pairs := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			union := retrieved[i].Union(retrieved[j]).Len()
			if union == 0 {
				continue // two empty sets: count overlap as 0
			}
			inter := retrieved[i].Intersect(retrieved[j]).Len()
			totalJ += float64(inter) / float64(union)
		}
	}
	return 1 - totalJ/float64(pairs)
}
