// Package analysis implements the text-analysis pipeline used by the search
// substrate: tokenization, lowercasing, stopword removal and Porter stemming.
//
// The paper models a text document as a set of words and a structured
// document as a set of (entity:attribute:value) triplets. The analyzer turns
// raw text into the normalized term stream from which those sets are built.
package analysis

import (
	"strings"
	"unicode"
)

// Token is a single unit produced by the tokenizer. Position is the ordinal
// position of the token in the input stream (0-based) and is preserved across
// filters that drop tokens, so downstream consumers can detect gaps.
type Token struct {
	Term     string
	Position int
}

// Tokenizer splits raw text into tokens.
type Tokenizer interface {
	Tokenize(text string) []Token
}

// LetterDigitTokenizer splits on any rune that is neither a letter nor a
// digit. Runs of letters/digits become tokens; everything else is a
// separator. It additionally keeps '-' and '.' inside tokens when both
// neighbours are alphanumeric, so product names such as "wp-dc26" and model
// numbers like "6000+" tokenize the way the shopping dataset expects.
type LetterDigitTokenizer struct {
	// KeepInnerPunct preserves '-' '.' '+' between alphanumerics
	// ("wp-dc26", "d-link", "x2"). Defaults to true via NewTokenizer.
	KeepInnerPunct bool
}

// NewTokenizer returns the default tokenizer used throughout the system.
func NewTokenizer() *LetterDigitTokenizer {
	return &LetterDigitTokenizer{KeepInnerPunct: true}
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize implements Tokenizer.
func (t *LetterDigitTokenizer) Tokenize(text string) []Token {
	var tokens []Token
	runes := []rune(text)
	n := len(runes)
	pos := 0
	i := 0
	for i < n {
		if !isWordRune(runes[i]) {
			i++
			continue
		}
		start := i
		for i < n {
			if isWordRune(runes[i]) {
				i++
				continue
			}
			if t.KeepInnerPunct && (runes[i] == '-' || runes[i] == '.' || runes[i] == '+') &&
				i+1 < n && isWordRune(runes[i+1]) && i > start {
				i++
				continue
			}
			break
		}
		tokens = append(tokens, Token{Term: string(runes[start:i]), Position: pos})
		pos++
	}
	return tokens
}

// TokenFilter transforms a token stream. Filters may drop tokens (return the
// zero Token and false) or rewrite terms.
type TokenFilter interface {
	Filter(tok Token) (Token, bool)
}

// LowercaseFilter maps every term to lower case.
type LowercaseFilter struct{}

// Filter implements TokenFilter.
func (LowercaseFilter) Filter(tok Token) (Token, bool) {
	tok.Term = strings.ToLower(tok.Term)
	return tok, true
}

// MinLengthFilter drops tokens shorter than Min runes.
type MinLengthFilter struct{ Min int }

// Filter implements TokenFilter.
func (f MinLengthFilter) Filter(tok Token) (Token, bool) {
	if len([]rune(tok.Term)) < f.Min {
		return Token{}, false
	}
	return tok, true
}

// Analyzer is a tokenizer followed by a filter chain.
type Analyzer struct {
	tokenizer Tokenizer
	filters   []TokenFilter
}

// NewAnalyzer builds an analyzer from a tokenizer and an ordered filter
// chain.
func NewAnalyzer(tok Tokenizer, filters ...TokenFilter) *Analyzer {
	return &Analyzer{tokenizer: tok, filters: filters}
}

// Standard returns the analyzer configuration used for the Wikipedia-style
// prose corpus: letter/digit tokenizer, lowercase, stopwords, Porter stemmer.
func Standard() *Analyzer {
	return NewAnalyzer(NewTokenizer(),
		LowercaseFilter{},
		NewStopwordFilter(DefaultStopwords()),
		NewStemFilter(),
	)
}

// Simple returns an analyzer without stemming, used for structured shopping
// data where feature values ("camcorders", "8gb", "ddr3") must round-trip
// exactly between indexing and query expansion output.
func Simple() *Analyzer {
	return NewAnalyzer(NewTokenizer(),
		LowercaseFilter{},
		NewStopwordFilter(DefaultStopwords()),
	)
}

// Analyze runs the full pipeline over text and returns the surviving tokens.
func (a *Analyzer) Analyze(text string) []Token {
	toks := a.tokenizer.Tokenize(text)
	out := toks[:0]
	for _, tok := range toks {
		keep := true
		for _, f := range a.filters {
			tok, keep = f.Filter(tok)
			if !keep {
				break
			}
		}
		if keep && tok.Term != "" {
			out = append(out, tok)
		}
	}
	return out
}

// Terms is a convenience wrapper returning just the normalized term strings.
func (a *Analyzer) Terms(text string) []string {
	toks := a.Analyze(text)
	terms := make([]string, len(toks))
	for i, t := range toks {
		terms[i] = t.Term
	}
	return terms
}

// UniqueTerms returns the distinct normalized terms of text, in first-seen
// order. The paper models a document as a *set* of words; this is the
// set-construction step.
func (a *Analyzer) UniqueTerms(text string) []string {
	toks := a.Analyze(text)
	seen := make(map[string]struct{}, len(toks))
	var terms []string
	for _, t := range toks {
		if _, ok := seen[t.Term]; ok {
			continue
		}
		seen[t.Term] = struct{}{}
		terms = append(terms, t.Term)
	}
	return terms
}
