package analysis

import (
	"testing"
	"testing/quick"
)

// Vocabulary drawn from Porter's published examples plus domain words from
// the paper (player, hockey, location, products...).
func TestStemKnownWords(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// domain words used in the paper's examples
		"players":   "player",
		"locations": "locat",
		"products":  "product",
		"printers":  "printer",
		"routers":   "router",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "tv", "is"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlphaUnchanged(t *testing.T) {
	for _, w := range []string{"wp-dc26", "8gb", "ddr3", "Mixed", "x2", "6000+", "東京"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged (non lowercase-ASCII)", w, got)
		}
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for in, want := range cases {
		if got := measure([]byte(in)); got != want {
			t.Errorf("measure(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestIsConsonantYRule(t *testing.T) {
	// In "sky": s consonant, k consonant, y vowel (preceded by consonant).
	b := []byte("sky")
	if !isConsonant(b, 0) || !isConsonant(b, 1) || isConsonant(b, 2) {
		t.Error("y after consonant should be a vowel")
	}
	// In "say": y after vowel is a consonant.
	b = []byte("say")
	if isConsonant(b, 2) != true {
		t.Error("y after vowel should be a consonant")
	}
	// Leading y is a consonant.
	b = []byte("yes")
	if !isConsonant(b, 0) {
		t.Error("leading y should be a consonant")
	}
}

func TestEndsCVC(t *testing.T) {
	if !endsCVC([]byte("hop")) {
		t.Error("hop ends CVC")
	}
	for _, w := range []string{"snow", "box", "tray"} {
		if endsCVC([]byte(w)) {
			t.Errorf("%q should fail the *o condition", w)
		}
	}
}

// Property: stemming is idempotent for stems it produces... Porter is not
// strictly idempotent in general, but output must always be non-empty and
// no longer than the input.
func TestStemPropertyLengthBounded(t *testing.T) {
	words := []string{"running", "jumped", "happiness", "nationalization",
		"caresses", "relational", "generalizations", "oscillators"}
	for _, w := range words {
		got := Stem(w)
		if got == "" {
			t.Errorf("Stem(%q) is empty", w)
		}
		if len(got) > len(w) {
			t.Errorf("Stem(%q) = %q is longer than input", w, got)
		}
	}
}

// Property: Stem never panics and output is non-empty for non-empty input.
func TestStemPropertyTotal(t *testing.T) {
	prop := func(s string) bool {
		if s == "" {
			return Stem(s) == ""
		}
		return len(Stem(s)) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: stemming is deterministic.
func TestStemPropertyDeterministic(t *testing.T) {
	prop := func(s string) bool { return Stem(s) == Stem(s) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
