package analysis

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func terms(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Term
	}
	return out
}

func TestTokenizerBasicSplit(t *testing.T) {
	tok := NewTokenizer()
	got := terms(tok.Tokenize("Apple announced the new iPad today"))
	want := []string{"Apple", "announced", "the", "new", "iPad", "today"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerPunctuationSeparates(t *testing.T) {
	tok := NewTokenizer()
	got := terms(tok.Tokenize("camera, printer; camcorder!"))
	want := []string{"camera", "printer", "camcorder"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerKeepsInnerPunct(t *testing.T) {
	tok := NewTokenizer()
	cases := map[string][]string{
		"canon wp-dc26 underwater": {"canon", "wp-dc26", "underwater"},
		"d-link dir-130 vpn":       {"d-link", "dir-130", "vpn"},
		"version 2.5.1 released":   {"version", "2.5.1", "released"},
		"athlon x2 6000 processor": {"athlon", "x2", "6000", "processor"},
	}
	for in, want := range cases {
		if got := terms(tok.Tokenize(in)); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizerTrailingPunctNotKept(t *testing.T) {
	tok := NewTokenizer()
	got := terms(tok.Tokenize("end. next-"))
	want := []string{"end", "next"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerWithoutInnerPunct(t *testing.T) {
	tok := &LetterDigitTokenizer{KeepInnerPunct: false}
	got := terms(tok.Tokenize("wp-dc26"))
	want := []string{"wp", "dc26"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerEmptyAndWhitespace(t *testing.T) {
	tok := NewTokenizer()
	for _, in := range []string{"", "   ", "\t\n", "...", "—"} {
		if got := tok.Tokenize(in); len(got) != 0 {
			t.Errorf("Tokenize(%q) = %v, want empty", in, got)
		}
	}
}

func TestTokenizerPositionsSequential(t *testing.T) {
	tok := NewTokenizer()
	toks := tok.Tokenize("one two three four")
	for i, tk := range toks {
		if tk.Position != i {
			t.Errorf("token %d has position %d", i, tk.Position)
		}
	}
}

func TestTokenizerUnicode(t *testing.T) {
	tok := NewTokenizer()
	got := terms(tok.Tokenize("café naïve 東京"))
	want := []string{"café", "naïve", "東京"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestLowercaseFilter(t *testing.T) {
	f := LowercaseFilter{}
	got, keep := f.Filter(Token{Term: "CaNoN"})
	if !keep || got.Term != "canon" {
		t.Errorf("Filter = %q, %v", got.Term, keep)
	}
}

func TestMinLengthFilter(t *testing.T) {
	f := MinLengthFilter{Min: 2}
	if _, keep := f.Filter(Token{Term: "a"}); keep {
		t.Error("kept 1-rune token with Min=2")
	}
	if _, keep := f.Filter(Token{Term: "ab"}); !keep {
		t.Error("dropped 2-rune token with Min=2")
	}
}

func TestStopwordFilter(t *testing.T) {
	f := NewStopwordFilter(DefaultStopwords())
	for _, w := range []string{"the", "and", "is", "of"} {
		if !f.IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
		if _, keep := f.Filter(Token{Term: w}); keep {
			t.Errorf("stopword %q not dropped", w)
		}
	}
	for _, w := range []string{"apple", "java", "camera"} {
		if f.IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestDefaultStopwordsIsCopy(t *testing.T) {
	a := DefaultStopwords()
	a[0] = "mutated"
	b := DefaultStopwords()
	if b[0] == "mutated" {
		t.Error("DefaultStopwords shares backing array with caller")
	}
}

func TestStandardAnalyzerPipeline(t *testing.T) {
	a := Standard()
	got := a.Terms("The Hockey Players were skating")
	// stopwords removed, lowercased, stemmed
	want := []string{"hockei", "player", "skate"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestSimpleAnalyzerNoStemming(t *testing.T) {
	a := Simple()
	got := a.Terms("Canon Camcorders and Printers")
	want := []string{"canon", "camcorders", "printers"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestUniqueTermsDeduplicates(t *testing.T) {
	a := Simple()
	got := a.UniqueTerms("camera camera lens camera lens body")
	want := []string{"camera", "lens", "body"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueTerms = %v, want %v", got, want)
	}
}

func TestUniqueTermsEmpty(t *testing.T) {
	a := Standard()
	if got := a.UniqueTerms("the and of"); len(got) != 0 {
		t.Errorf("UniqueTerms = %v, want empty", got)
	}
}

func TestAnalyzeFilterOrderMatters(t *testing.T) {
	// Stopword filter expects lowercase input; "The" must be dropped.
	a := Standard()
	if got := a.Terms("The THE the"); len(got) != 0 {
		t.Errorf("Terms = %v, want empty", got)
	}
}

// Property: tokenizing never produces empty terms and never produces terms
// containing spaces.
func TestTokenizerPropertyNoEmptyTerms(t *testing.T) {
	tok := NewTokenizer()
	prop := func(s string) bool {
		for _, tk := range tok.Tokenize(s) {
			if tk.Term == "" || strings.ContainsAny(tk.Term, " \t\n") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: UniqueTerms returns distinct elements.
func TestUniqueTermsPropertyDistinct(t *testing.T) {
	a := Standard()
	prop := func(s string) bool {
		seen := map[string]bool{}
		for _, term := range a.UniqueTerms(s) {
			if seen[term] {
				return false
			}
			seen[term] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: analysis is deterministic.
func TestAnalyzePropertyDeterministic(t *testing.T) {
	a := Standard()
	prop := func(s string) bool {
		return reflect.DeepEqual(a.Terms(s), a.Terms(s))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
