package analysis

// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980).
// This is a from-scratch implementation of the original algorithm, steps
// 1a through 5b, operating on lowercase ASCII words. Words containing
// non-ASCII-letter runes (digits, inner punctuation such as "wp-dc26") are
// returned unchanged: stemming model numbers would corrupt the structured
// shopping vocabulary.

// StemFilter applies Porter stemming to each token.
type StemFilter struct{}

// NewStemFilter returns a Porter stemming filter.
func NewStemFilter() StemFilter { return StemFilter{} }

// Filter implements TokenFilter.
func (StemFilter) Filter(tok Token) (Token, bool) {
	tok.Term = Stem(tok.Term)
	return tok, true
}

// Stem returns the Porter stem of a lowercase word. Inputs that are not pure
// lowercase ASCII letters are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word
		}
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isConsonant reports whether b[i] is a consonant in Porter's sense: a
// non-vowel letter, where 'y' is a consonant iff preceded by a vowel (or at
// the start of the word).
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:k], per the paper's
// [C](VC)^m[V] decomposition.
func measure(b []byte) int {
	n := len(b)
	i := 0
	// skip initial consonants
	for i < n && isConsonant(b, i) {
		i++
	}
	m := 0
	for {
		// skip vowels
		for i < n && !isConsonant(b, i) {
			i++
		}
		if i >= n {
			return m
		}
		// skip consonants
		for i < n && isConsonant(b, i) {
			i++
		}
		m++
	}
}

func hasVowel(b []byte) bool {
	for i := range b {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b ends with a doubled consonant.
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	if n < 2 || b[n-1] != b[n-2] {
		return false
	}
	return isConsonant(b, n-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y ("*o" condition in the paper).
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isConsonant(b, n-3) || isConsonant(b, n-2) || !isConsonant(b, n-1) {
		return false
	}
	c := b[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix old with new if the stem before old has
// measure > minM. Returns the (possibly rewritten) word and whether old
// matched at all (regardless of the measure test).
func replaceSuffix(b []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(b, old) {
		return b, false
	}
	stem := b[:len(b)-len(old)]
	if measure(stem) > minM {
		return append(stem[:len(stem):len(stem)], new...), true
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2] // sses -> ss
	case hasSuffix(b, "ies"):
		return b[:len(b)-2] // ies -> i
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1] // eed -> ee
		}
		return b
	}
	var stem []byte
	switch {
	case hasSuffix(b, "ed") && hasVowel(b[:len(b)-2]):
		stem = b[:len(b)-2]
	case hasSuffix(b, "ing") && hasVowel(b[:len(b)-3]):
		stem = b[:len(b)-3]
	default:
		return b
	}
	// cleanup after removing ed/ing
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		c := stem[len(stem)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b[:len(b)-1]) {
		out := make([]byte, len(b))
		copy(out, b)
		out[len(out)-1] = 'i'
		return out
	}
	return b
}

// step2 maps double suffixes to single ones when m > 0.
var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replaceSuffix(b, r.old, r.new, 0); matched {
			return out
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replaceSuffix(b, r.old, r.new, 0); matched {
			return out
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if measure(stem) <= 1 {
			return b
		}
		if s == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return b
			}
		}
		return stem
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if endsDoubleConsonant(b) && b[len(b)-1] == 'l' && measure(b[:len(b)-1]) > 1 {
		return b[:len(b)-1]
	}
	return b
}
