package analysis

// StopwordFilter drops tokens whose term is in the stopword set. The term
// must already be lowercased (place LowercaseFilter before this filter).
type StopwordFilter struct {
	set map[string]struct{}
}

// NewStopwordFilter builds a filter over the given words.
func NewStopwordFilter(words []string) *StopwordFilter {
	set := make(map[string]struct{}, len(words))
	for _, w := range words {
		set[w] = struct{}{}
	}
	return &StopwordFilter{set: set}
}

// Filter implements TokenFilter.
func (f *StopwordFilter) Filter(tok Token) (Token, bool) {
	if _, ok := f.set[tok.Term]; ok {
		return Token{}, false
	}
	return tok, true
}

// IsStopword reports whether w is in the filter's set.
func (f *StopwordFilter) IsStopword(w string) bool {
	_, ok := f.set[w]
	return ok
}

// Len returns the number of stopwords in the set.
func (f *StopwordFilter) Len() int { return len(f.set) }

// defaultStopwords is the classic English stopword list (a superset of the
// Lucene/SMART core), adequate for both the prose and the product corpora.
var defaultStopwords = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "as", "at", "be", "because", "been", "before",
	"being", "below", "between", "both", "but", "by", "can", "cannot",
	"could", "did", "do", "does", "doing", "down", "during", "each", "few",
	"for", "from", "further", "had", "has", "have", "having", "he", "her",
	"here", "hers", "herself", "him", "himself", "his", "how", "i", "if",
	"in", "into", "is", "it", "its", "itself", "just", "me", "more", "most",
	"my", "myself", "no", "nor", "not", "now", "of", "off", "on", "once",
	"only", "or", "other", "our", "ours", "ourselves", "out", "over", "own",
	"same", "she", "should", "so", "some", "such", "than", "that", "the",
	"their", "theirs", "them", "themselves", "then", "there", "these",
	"they", "this", "those", "through", "to", "too", "under", "until", "up",
	"very", "was", "we", "were", "what", "when", "where", "which", "while",
	"who", "whom", "why", "with", "would", "you", "your", "yours",
	"yourself", "yourselves",
}

// DefaultStopwords returns a copy of the default English stopword list.
func DefaultStopwords() []string {
	out := make([]string, len(defaultStopwords))
	copy(out, defaultStopwords)
	return out
}
