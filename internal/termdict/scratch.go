package termdict

// DenseScratch is an epoch-stamped accumulation buffer over a dense TermID
// space: a vocabulary-sized []float64 whose cells are invalidated by epoch
// stamping instead of clearing, so resets are O(1) and repeated accumulations
// (k-means centroids per iteration, TFICF labels per cluster) do not pay a
// vocabulary-sized memset each.
//
// The contract that keeps callers bit-identical to a freshly zeroed buffer:
// the first Add of a cell in a new epoch zero-initializes it before
// accumulating, so the value of every touched cell is exactly the sum a fresh
// buffer would hold, accumulated in the same call order. Touched records the
// cells in first-touch order; callers that need ascending-ID emission sort it
// themselves (cluster does; the TFICF labeler deliberately does not).
//
// A DenseScratch is single-goroutine state; share across goroutines via
// pooling, not concurrently.
type DenseScratch struct {
	// Vals holds the accumulated value of every cell touched this epoch.
	// Cells not in Touched hold stale garbage — never read them.
	Vals []float64
	// Touched lists the cells written this epoch, in first-touch order.
	Touched []TermID

	stamp []uint32
	epoch uint32
}

// Reset prepares the scratch for a new accumulation over an n-cell space,
// growing the buffers if needed and invalidating every cell.
func (s *DenseScratch) Reset(n int) {
	if len(s.Vals) < n {
		s.Vals = make([]float64, n)
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could collide, clear them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.Touched = s.Touched[:0]
}

// Add accumulates w into cell id, zero-initializing it on the first touch of
// the current epoch (exactly like a zeroed buffer would behave).
func (s *DenseScratch) Add(id TermID, w float64) {
	if s.stamp[id] != s.epoch {
		s.stamp[id] = s.epoch
		s.Vals[id] = 0
		s.Touched = append(s.Touched, id)
	}
	s.Vals[id] += w
}
