package termdict

import "slices"

// ResolveSorted resolves a query's terms through the dictionary, drops
// out-of-vocabulary terms, and returns the TermIDs sorted ascending — the
// shape every merge-skip consumer needs. It is the one implementation of the
// resolve-query-terms pattern that used to live separately in the expansion
// core's pool scorer and both corpus-backed baselines.
func ResolveSorted(d *Dict, terms []string) []TermID {
	out := make([]TermID, 0, len(terms))
	for _, t := range terms {
		if tid, ok := d.Lookup(t); ok {
			out = append(out, tid)
		}
	}
	slices.Sort(out)
	return out
}

// SkipList consumes a sorted TermID list in one ascending merge pass:
// Contains(tid) advances an internal cursor past IDs below tid and reports
// whether tid is in the list. Probes must arrive in ascending order between
// Resets (the order every per-document TermID slice already has), which makes
// the whole pass O(len(doc) + len(list)) with no map and no binary search.
type SkipList struct {
	// IDs is the sorted TermID list to skip against.
	IDs []TermID
	i   int
}

// Reset rewinds the cursor for a new ascending pass.
func (s *SkipList) Reset() { s.i = 0 }

// Contains reports whether tid is in the list, advancing the cursor. tid
// values must not decrease between Resets.
func (s *SkipList) Contains(tid TermID) bool {
	for s.i < len(s.IDs) && s.IDs[s.i] < tid {
		s.i++
	}
	return s.i < len(s.IDs) && s.IDs[s.i] == tid
}
