// Package termdict implements the corpus-global term dictionary: a bijection
// between the vocabulary of an index and dense int32 TermIDs assigned in
// lexicographic order.
//
// Lexicographic assignment is the load-bearing property. Every layer above
// the index already assumes "sorted terms" somewhere — the clustering
// substrate interns per-run vocabularies in lexicographic order so merge-join
// dot products accumulate like the historical sorted-map loops, and the
// expansion core's pool keywords are interned in lexicographic (= sorted
// Pool slice) order. Because TermIDs ascend exactly when their terms do,
// iterating any structure in ascending TermID order reproduces the sorted-
// term iteration those layers were calibrated against, keeping floating-point
// accumulations bit-identical. It also makes dictionaries mergeable: two
// dictionaries over the same vocabulary are the same dictionary.
package termdict

import "sort"

// TermID is a dense index into a Dict's vocabulary. It is an alias (not a
// defined type) so TermID slices interoperate directly with the []int32
// dense-ID machinery of the expansion core and the postings arena without
// conversion copies.
type TermID = int32

// NoTerm is the sentinel for "term not in the dictionary".
const NoTerm TermID = -1

// Dict is an immutable term dictionary. Construct with New or FromSorted;
// after construction it is safe for concurrent readers.
type Dict struct {
	terms []string
	ids   map[string]TermID
}

// New builds a dictionary over terms (deduplicated, sorted). TermIDs are
// assigned in lexicographic order: Lookup(terms[i]) < Lookup(terms[j]) iff
// terms[i] < terms[j].
func New(terms []string) *Dict {
	uniq := make([]string, len(terms))
	copy(uniq, terms)
	sort.Strings(uniq)
	n := 0
	for i, t := range uniq {
		if i == 0 || t != uniq[n-1] {
			uniq[n] = t
			n++
		}
	}
	return FromSorted(uniq[:n:n])
}

// FromSorted wraps an already-sorted, duplicate-free term slice without
// copying it. The caller must not mutate the slice afterwards; sortedness is
// the caller's responsibility (Index.Validate re-checks it for snapshots).
func FromSorted(terms []string) *Dict {
	d := &Dict{terms: terms, ids: make(map[string]TermID, len(terms))}
	for i, t := range terms {
		d.ids[t] = TermID(i)
	}
	return d
}

// Lookup returns the TermID of term, or (NoTerm, false) when absent.
func (d *Dict) Lookup(term string) (TermID, bool) {
	id, ok := d.ids[term]
	if !ok {
		return NoTerm, false
	}
	return id, true
}

// Term returns the term of an ID. Panics on out-of-range IDs, matching slice
// semantics — callers hold IDs they obtained from this dictionary.
func (d *Dict) Term(id TermID) string { return d.terms[id] }

// Len returns the vocabulary size (the exclusive upper bound on TermIDs).
func (d *Dict) Len() int { return len(d.terms) }

// Terms returns the vocabulary in TermID (= lexicographic) order. The slice
// is the dictionary's backing store: callers must treat it as read-only.
func (d *Dict) Terms() []string { return d.terms }

// Sorted reports whether the backing vocabulary really is strictly sorted —
// the invariant FromSorted trusts. Used by Index.Validate on loaded
// snapshots, where the terms arrive from disk.
func (d *Dict) Sorted() bool {
	for i := 1; i < len(d.terms); i++ {
		if d.terms[i-1] >= d.terms[i] {
			return false
		}
	}
	return true
}
