package termdict

import (
	"sort"
	"testing"
)

func TestNewAssignsLexicographicIDs(t *testing.T) {
	d := New([]string{"zebra", "apple", "mango", "apple", "kiwi"})
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (dedup)", d.Len())
	}
	want := []string{"apple", "kiwi", "mango", "zebra"}
	for i, term := range want {
		id, ok := d.Lookup(term)
		if !ok || id != TermID(i) {
			t.Errorf("Lookup(%q) = %d,%v, want %d", term, id, ok, i)
		}
		if d.Term(TermID(i)) != term {
			t.Errorf("Term(%d) = %q, want %q", i, d.Term(TermID(i)), term)
		}
	}
	if !sort.StringsAreSorted(d.Terms()) {
		t.Error("Terms() not sorted")
	}
	if !d.Sorted() {
		t.Error("Sorted() = false on a New dictionary")
	}
}

func TestLookupMiss(t *testing.T) {
	d := New([]string{"a", "b"})
	if id, ok := d.Lookup("c"); ok || id != NoTerm {
		t.Errorf("Lookup(missing) = %d,%v, want NoTerm,false", id, ok)
	}
}

func TestEmptyDict(t *testing.T) {
	d := New(nil)
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0", d.Len())
	}
	if _, ok := d.Lookup("x"); ok {
		t.Error("Lookup on empty dict reported present")
	}
}

// TestDeterministicAndMergeable pins the property ISKR/PEBC tie-breaking and
// the cluster layer rely on: the ID assignment is a pure function of the
// vocabulary set, independent of input order.
func TestDeterministicAndMergeable(t *testing.T) {
	a := New([]string{"m", "a", "z", "k"})
	b := New([]string{"z", "k", "m", "a", "a"})
	if a.Len() != b.Len() {
		t.Fatalf("Len differs: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Term(TermID(i)) != b.Term(TermID(i)) {
			t.Errorf("Term(%d) differs: %q vs %q", i, a.Term(TermID(i)), b.Term(TermID(i)))
		}
	}
}

func TestFromSortedSharesSliceAndDetectsUnsorted(t *testing.T) {
	terms := []string{"a", "b", "c"}
	d := FromSorted(terms)
	if d.Len() != 3 || !d.Sorted() {
		t.Fatalf("FromSorted: Len=%d Sorted=%v", d.Len(), d.Sorted())
	}
	bad := FromSorted([]string{"b", "a"})
	if bad.Sorted() {
		t.Error("Sorted() = true on unsorted input")
	}
	dup := FromSorted([]string{"a", "a"})
	if dup.Sorted() {
		t.Error("Sorted() = true on duplicated input")
	}
}
