package termdict

import (
	"math"
	"testing"
)

func TestDenseScratchMatchesFreshBuffer(t *testing.T) {
	var s DenseScratch
	adds := [][2]float64{{3, 1.5}, {1, 2}, {3, 0.25}, {0, 7}, {1, 1}}
	for epoch := 0; epoch < 3; epoch++ {
		s.Reset(5)
		fresh := make([]float64, 5)
		var touched []TermID
		for _, a := range adds {
			id := TermID(a[0])
			s.Add(id, a[1])
			if fresh[id] == 0 {
				touched = append(touched, id)
			}
			fresh[id] += a[1]
		}
		if len(s.Touched) != len(touched) {
			t.Fatalf("epoch %d: touched %v, want %v", epoch, s.Touched, touched)
		}
		for i, id := range touched {
			if s.Touched[i] != id {
				t.Fatalf("epoch %d: touched order %v, want %v (first-touch order)", epoch, s.Touched, touched)
			}
			if math.Float64bits(s.Vals[id]) != math.Float64bits(fresh[id]) {
				t.Fatalf("epoch %d: cell %d = %v, want %v", epoch, id, s.Vals[id], fresh[id])
			}
		}
	}
}

func TestDenseScratchGrowsAndInvalidates(t *testing.T) {
	var s DenseScratch
	s.Reset(2)
	s.Add(1, 5)
	s.Reset(10) // grow: all cells must read as fresh
	s.Add(1, 3)
	s.Add(9, 2)
	if s.Vals[1] != 3 || s.Vals[9] != 2 || len(s.Touched) != 2 {
		t.Fatalf("after grow: vals %v %v, touched %v", s.Vals[1], s.Vals[9], s.Touched)
	}
	s.Reset(10) // same size: epoch bump must invalidate
	s.Add(1, 1)
	if s.Vals[1] != 1 || len(s.Touched) != 1 {
		t.Fatalf("after epoch bump: val %v, touched %v", s.Vals[1], s.Touched)
	}
}

func TestDenseScratchEpochWrap(t *testing.T) {
	var s DenseScratch
	s.Reset(3)
	s.Add(0, 4)
	s.epoch = ^uint32(0) // force the wrap path on the next Reset
	s.stamp[0] = s.epoch // a stale stamp that would collide after wrapping
	s.Reset(3)
	s.Add(0, 1)
	if s.Vals[0] != 1 || len(s.Touched) != 1 {
		t.Fatalf("after wrap: val %v, touched %v", s.Vals[0], s.Touched)
	}
}

func TestResolveSorted(t *testing.T) {
	d := New([]string{"delta", "alpha", "charlie", "bravo"})
	got := ResolveSorted(d, []string{"delta", "missing", "alpha", "bravo"})
	want := []TermID{0, 1, 3} // alpha, bravo, delta in lexicographic IDs
	if len(got) != len(want) {
		t.Fatalf("ResolveSorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ResolveSorted = %v, want %v", got, want)
		}
	}
	if out := ResolveSorted(d, nil); len(out) != 0 {
		t.Fatalf("ResolveSorted(nil) = %v", out)
	}
}

func TestSkipListAscendingPass(t *testing.T) {
	s := SkipList{IDs: []TermID{2, 5, 9}}
	probes := []struct {
		id   TermID
		want bool
	}{{0, false}, {2, true}, {3, false}, {5, true}, {5, true}, {8, false}, {9, true}, {11, false}}
	for _, p := range probes {
		if got := s.Contains(p.id); got != p.want {
			t.Fatalf("Contains(%d) = %v, want %v", p.id, got, p.want)
		}
	}
	// After Reset the cursor rewinds for the next document's pass.
	s.Reset()
	if !s.Contains(2) || s.Contains(3) || !s.Contains(9) {
		t.Fatal("Reset did not rewind the cursor")
	}
	var empty SkipList
	if empty.Contains(1) {
		t.Fatal("empty SkipList contains nothing")
	}
}
