package faultinject

import (
	"context"
	"fmt"
	"testing"
	"time"

	qec "repro"
)

func testEngine(t testing.TB) *qec.Engine {
	t.Helper()
	e := qec.NewEngine(qec.WithSeed(7), qec.WithExpansionCache(32))
	fruit := []string{"orchard harvest", "pie cider", "tree juice", "crop farm"}
	tech := []string{"iphone launch", "store retail", "laptop software", "stock shares"}
	for i := 0; i < 4; i++ {
		e.AddText(fmt.Sprintf("fruit-%d", i), "apple fruit "+fruit[i])
		e.AddText(fmt.Sprintf("tech-%d", i), "apple company "+tech[i])
	}
	e.Build()
	return e
}

// TestStallBlocksUntilCancel: a stalled expand returns the context's error
// once the deadline fires, and never calls the inner pipeline.
func TestStallBlocksUntilCancel(t *testing.T) {
	eng := testEngine(t)
	before := eng.CacheStats().Computations
	in := Wrap(eng, Plan{StallEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	exp, err := in.ExpandTraced(ctx, "apple", qec.ExpandOptions{K: 2}, nil)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if exp != nil {
		t.Fatal("stalled expand returned a result")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("stall returned before the deadline")
	}
	if got := eng.CacheStats().Computations; got != before {
		t.Fatalf("inner pipeline ran %d time(s) during a stall", got-before)
	}
	if c := in.Counts(); c.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", c.Stalls)
	}
}

// TestCancelInjectsCancelledContext: the real pipeline runs with a cancelled
// context and must surface an error, never a partial expansion — this is the
// round-boundary cancellation path exercised end to end.
func TestCancelInjectsCancelledContext(t *testing.T) {
	eng := testEngine(t)
	in := Wrap(eng, Plan{CancelEvery: 2})
	// Call 1: clean.
	exp, err := in.ExpandTraced(context.Background(), "apple", qec.ExpandOptions{K: 2}, nil)
	if err != nil || exp == nil {
		t.Fatalf("clean call: exp=%v err=%v", exp, err)
	}
	// Call 2: cancelled. Distinct query so the cache cannot answer it.
	exp, err = in.ExpandTraced(context.Background(), "apple store", qec.ExpandOptions{K: 2}, nil)
	if err == nil {
		t.Fatal("cancelled call returned no error")
	}
	if exp != nil {
		t.Fatal("cancelled call returned a partial expansion")
	}
	if c := in.Counts(); c.Cancels != 1 {
		t.Fatalf("cancels = %d, want 1", c.Cancels)
	}
}

// TestLatencySpikeEveryN: spikes land on exactly the scheduled calls.
func TestLatencySpikeEveryN(t *testing.T) {
	eng := testEngine(t)
	in := Wrap(eng, Plan{LatencyEvery: 3, Latency: 30 * time.Millisecond})
	for i := 1; i <= 6; i++ {
		start := time.Now()
		if _, err := in.ExpandTraced(context.Background(), "apple", qec.ExpandOptions{K: 2}, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		took := time.Since(start)
		if i%3 == 0 && took < 30*time.Millisecond {
			t.Fatalf("call %d took %v, want >=30ms spike", i, took)
		}
	}
	if c := in.Counts(); c.Spikes != 2 {
		t.Fatalf("spikes = %d, want 2", c.Spikes)
	}
}

// TestPoisonFlipsCopyNotCache: the poisoned response differs from the clean
// one, but the engine's cache still holds the pristine expansion — response
// corruption must not leak backwards into shared state.
func TestPoisonFlipsCopyNotCache(t *testing.T) {
	eng := testEngine(t)
	in := Wrap(eng, Plan{PoisonEvery: 2})
	opts := qec.ExpandOptions{K: 2}
	clean, err := in.ExpandTraced(context.Background(), "apple", opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := in.ExpandTraced(context.Background(), "apple", opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Queries) == 0 || len(poisoned.Queries) == 0 {
		t.Fatal("expansions have no queries")
	}
	if clean.Queries[0].Terms[0] == poisoned.Queries[0].Terms[0] {
		t.Fatal("poisoned response identical to clean one")
	}
	cached, ok := in.ExpandCached("apple", opts)
	if !ok {
		t.Fatal("expected cache hit")
	}
	if cached.Queries[0].Terms[0] != clean.Queries[0].Terms[0] {
		t.Fatalf("cache poisoned: %q != %q", cached.Queries[0].Terms[0], clean.Queries[0].Terms[0])
	}
	if c := in.Counts(); c.Poisons != 1 {
		t.Fatalf("poisons = %d, want 1", c.Poisons)
	}
}

// TestDeterministicSchedule: two injectors with the same plan fire the same
// faults on the same calls — the harness replays exactly.
func TestDeterministicSchedule(t *testing.T) {
	eng := testEngine(t)
	run := func() Counts {
		in := Wrap(eng, Plan{LatencyEvery: 2, Latency: time.Millisecond, PoisonEvery: 3})
		for i := 0; i < 12; i++ {
			if _, err := in.ExpandTraced(context.Background(), "apple", qec.ExpandOptions{K: 2}, nil); err != nil {
				t.Fatal(err)
			}
		}
		return in.Counts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("schedules diverged: %+v vs %+v", a, b)
	}
	if a.Spikes != 6 || a.Poisons != 4 {
		t.Fatalf("counts = %+v, want 6 spikes / 4 poisons", a)
	}
}
