// Package faultinject wraps the serving layer's engine with deterministic
// fault injectors, so the degradation ladder and the server's failure paths
// can be exercised on purpose instead of waiting for production to do it.
//
// Every injector is counter-based: "every Nth expand" — never clock- or
// randomness-based — so a failing soak run replays exactly. The wrapper
// implements the same method set as server.Engine and is intended for tests
// and for the build-tag-gated hook in qec-serve (-tags faultinject); it has
// no place in a normal serving binary.
//
// Faults, in the order they are checked (first match wins per request):
//
//   - Stall: block until the request context is cancelled, then return its
//     error. Exercises deadline handling and proves a stalled expansion
//     cannot wedge a worker slot past its deadline.
//   - Cancel: run the real pipeline with an already-cancelled context.
//     Exercises the k-means round-boundary cancellation path end to end —
//     the pipeline must return an error, never a partial expansion.
//   - Latency: sleep a fixed spike before running the real pipeline.
//     Drives queue depth and tail latency up so the controller climbs.
//   - Poison: run the real pipeline, then flip one byte in the first term
//     of a deep copy of the result. The engine's cache keeps the pristine
//     original — callers comparing against goldens must catch the flip,
//     proving response corruption cannot leak backwards into the cache.
package faultinject

import (
	"context"
	"sync/atomic"
	"time"

	qec "repro"
	"repro/internal/obs"
)

// Engine is the method set faultinject wraps — structurally identical to
// server.Engine (declared here to keep this package importable from anywhere
// without a dependency on the serving layer).
type Engine interface {
	Search(raw string, topK int) []qec.Result
	ExpandTraced(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, error)
	ExpandExplained(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, *qec.Explain, error)
	ExpandCached(raw string, opts qec.ExpandOptions) (*qec.Expansion, bool)
	Len() int
	CacheStats() qec.CacheStats
}

// Plan says which expand requests get which fault. A zero field disables
// that injector; Every-style fields fire on the Nth, 2Nth, ... expand call
// (1-indexed, counting ExpandTraced and ExpandExplained together).
type Plan struct {
	// StallEvery blocks every Nth expand until its context is cancelled.
	StallEvery int
	// CancelEvery runs every Nth expand with an already-cancelled context.
	CancelEvery int
	// LatencyEvery sleeps Latency before every Nth expand.
	LatencyEvery int
	// Latency is the spike added by LatencyEvery (default 50ms when unset).
	Latency time.Duration
	// PoisonEvery flips a byte in a deep copy of every Nth expand's result.
	PoisonEvery int
}

// Counts reports how many times each fault fired.
type Counts struct {
	Stalls, Cancels, Spikes, Poisons int64
}

// Injector wraps an Engine with a Plan. Safe for concurrent use.
type Injector struct {
	inner Engine
	plan  Plan

	calls   atomic.Int64
	stalls  atomic.Int64
	cancels atomic.Int64
	spikes  atomic.Int64
	poisons atomic.Int64
}

// Wrap returns an Injector applying plan on top of inner.
func Wrap(inner Engine, plan Plan) *Injector {
	if plan.Latency <= 0 {
		plan.Latency = 50 * time.Millisecond
	}
	return &Injector{inner: inner, plan: plan}
}

// Counts returns how many faults of each kind have fired so far.
func (in *Injector) Counts() Counts {
	return Counts{
		Stalls:  in.stalls.Load(),
		Cancels: in.cancels.Load(),
		Spikes:  in.spikes.Load(),
		Poisons: in.poisons.Load(),
	}
}

// hits reports whether 1-indexed call n is a multiple of every.
func hits(n int64, every int) bool {
	return every > 0 && n%int64(every) == 0
}

// fault decides this call's fate. It may block (stall), rewrite ctx
// (cancel), or sleep (latency); poison is signalled back to the caller
// because it applies after the pipeline runs.
func (in *Injector) fault(ctx context.Context) (_ context.Context, poison bool, err error) {
	n := in.calls.Add(1)
	switch {
	case hits(n, in.plan.StallEvery):
		in.stalls.Add(1)
		<-ctx.Done()
		return ctx, false, ctx.Err()
	case hits(n, in.plan.CancelEvery):
		in.cancels.Add(1)
		cancelled, cancel := context.WithCancel(ctx)
		cancel()
		return cancelled, false, nil
	case hits(n, in.plan.LatencyEvery):
		in.spikes.Add(1)
		select {
		case <-time.After(in.plan.Latency):
		case <-ctx.Done():
			return ctx, false, ctx.Err()
		}
	}
	return ctx, hits(n, in.plan.PoisonEvery), nil
}

// poisonCopy deep-copies exp and flips the low bit of the first byte of the
// first expanded term, leaving the original (and anything the engine cached)
// untouched.
func poisonCopy(exp *qec.Expansion) *qec.Expansion {
	if exp == nil {
		return nil
	}
	cp := *exp
	cp.Original = append([]string(nil), exp.Original...)
	cp.Queries = make([]qec.ExpandedQuery, len(exp.Queries))
	for i, q := range exp.Queries {
		cp.Queries[i] = q
		cp.Queries[i].Terms = append([]string(nil), q.Terms...)
	}
	cp.Clusters = make([][]qec.DocID, len(exp.Clusters))
	for i, c := range exp.Clusters {
		cp.Clusters[i] = append([]qec.DocID(nil), c...)
	}
	for i := range cp.Queries {
		if len(cp.Queries[i].Terms) == 0 || len(cp.Queries[i].Terms[0]) == 0 {
			continue
		}
		b := []byte(cp.Queries[i].Terms[0])
		b[0] ^= 0x01
		cp.Queries[i].Terms[0] = string(b)
		break
	}
	return &cp
}

func (in *Injector) Search(raw string, topK int) []qec.Result {
	return in.inner.Search(raw, topK)
}

func (in *Injector) ExpandTraced(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, error) {
	ctx, poison, err := in.fault(ctx)
	if err != nil {
		return nil, err
	}
	exp, err := in.inner.ExpandTraced(ctx, raw, opts, tr)
	if err == nil && poison {
		in.poisons.Add(1)
		exp = poisonCopy(exp)
	}
	return exp, err
}

func (in *Injector) ExpandExplained(ctx context.Context, raw string, opts qec.ExpandOptions, tr *obs.Trace) (*qec.Expansion, *qec.Explain, error) {
	ctx, poison, err := in.fault(ctx)
	if err != nil {
		return nil, nil, err
	}
	exp, ex, err := in.inner.ExpandExplained(ctx, raw, opts, tr)
	if err == nil && poison {
		in.poisons.Add(1)
		exp = poisonCopy(exp)
	}
	return exp, ex, err
}

func (in *Injector) ExpandCached(raw string, opts qec.ExpandOptions) (*qec.Expansion, bool) {
	return in.inner.ExpandCached(raw, opts)
}

func (in *Injector) Len() int { return in.inner.Len() }

func (in *Injector) CacheStats() qec.CacheStats { return in.inner.CacheStats() }
