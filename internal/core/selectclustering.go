package core

import (
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

// ClusteringCandidate names one clustering configuration for dynamic
// selection.
type ClusteringCandidate struct {
	Name       string
	Clustering *cluster.Clustering
}

// SelectClustering implements the paper's Section 7 future-work direction
// of "choosing the best clustering method dynamically": it runs the
// expander against every candidate clustering and keeps the one whose
// expanded queries achieve the highest Eq. 1 score. Ties go to the earliest
// candidate, so callers can order candidates by preference (e.g. cheapest
// first).
func SelectClustering(idx *index.Index, userQuery search.Query,
	candidates []ClusteringCandidate, weights eval.Weights, opts PoolOptions,
	expander Expander) (best ClusteringCandidate, result *QECResult) {

	if expander == nil {
		expander = &ISKR{}
	}
	for _, cand := range candidates {
		if cand.Clustering == nil || cand.Clustering.K() == 0 {
			continue
		}
		problems := BuildProblems(idx, userQuery, cand.Clustering, weights, opts)
		res := Solve(expander, problems)
		if result == nil || res.Score > result.Score {
			best, result = cand, res
		}
	}
	return best, result
}

// DefaultClusteringCandidates builds the standard candidate set over the
// given documents: k-means and the three agglomerative linkages, each at
// granularity k.
func DefaultClusteringCandidates(idx *index.Index, docs []document.DocID,
	k int, seed int64) []ClusteringCandidate {

	return []ClusteringCandidate{
		{Name: "kmeans", Clustering: cluster.KMeans(idx, docs,
			cluster.Options{K: k, Seed: seed, PlusPlus: true, Restarts: 5})},
		{Name: "agglomerative-average", Clustering: cluster.Agglomerative(idx,
			docs, k, cluster.AverageLinkage)},
		{Name: "agglomerative-single", Clustering: cluster.Agglomerative(idx,
			docs, k, cluster.SingleLinkage)},
		{Name: "agglomerative-complete", Clustering: cluster.Agglomerative(idx,
			docs, k, cluster.CompleteLinkage)},
	}
}
