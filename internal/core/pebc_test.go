package core

// Dedicated PEBC tests: partial-elimination target accuracy per selection
// strategy (the §4.1 vs §4.2 vs §4.3 comparison), sample-query semantics,
// and convergence behaviour.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/document"
	"repro/internal/search"
)

// eliminationError measures how far a strategy lands from the x% target on
// a problem, in eliminated-fraction points.
func eliminationError(t *testing.T, p *Problem, strategy SelectionStrategy, x float64, seed int64) float64 {
	t.Helper()
	a := &PEBC{Strategy: strategy, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	q := a.partialElimination(p, x, rng)
	remaining := p.Retrieve(q).Intersect(p.U)
	eliminated := p.S(p.U) - p.S(remaining)
	return math.Abs(eliminated/p.S(p.U)*100 - x)
}

// lumpyProblem builds a scaled Example 4.2 family: few keywords with lumpy,
// overlapping elimination sets, so the §4.1 fixed selection order yields a
// coarse "ladder" of reachable elimination counts that skips many targets,
// while per-result random selection can combine sets differently per
// target. This is the regime the paper's rejection of §4.1 is about.
func lumpyProblem(scale int) *Problem {
	u := document.DocSet{}
	for i := 0; i < 10*scale; i++ {
		u.Add(document.DocID(i))
	}
	cIDs := document.DocSet{}
	for i := 0; i < 13*scale; i++ {
		cIDs.Add(document.DocID(1000 + i))
	}
	universe := u.Union(cIDs)
	// Scaled copies of Example 4.2's elimination sets.
	elim := map[string]document.DocSet{}
	addElim := func(name string, uFrom, uTo, cFrom, cTo int) {
		set := document.DocSet{}
		for i := uFrom * scale; i < uTo*scale; i++ {
			set.Add(document.DocID(i))
		}
		for i := cFrom * scale; i < cTo*scale; i++ {
			set.Add(document.DocID(1000 + i))
		}
		elim[name] = set
	}
	addElim("job", 0, 4, 0, 2)      // benefit 4s, cost 2s
	addElim("store", 4, 10, 2, 8)   // benefit 6s, cost 6s
	addElim("location", 2, 4, 8, 9) // overlaps job's U range; cost 1s
	addElim("fruit", 3, 7, 9, 13)   // spans both; cost 4s
	contain := map[string]document.DocSet{}
	for k, e := range elim {
		contain[k] = universe.Subtract(e)
	}
	return NewProblemFromSets(search.NewQuery("seed"), cIDs, u, nil, contain)
}

func TestSingleResultHitsTargetsBetterThanFixedOrder(t *testing.T) {
	// On the lumpy family, §4.3's per-result random selection must land
	// closer to the x% elimination target than §4.1's fixed order, which
	// can only reach a fixed ladder of elimination counts (Examples
	// 4.2/4.4). Averaged over targets, seeds and scales.
	var errSingle, errFixed float64
	n := 0
	for scale := 1; scale <= 3; scale++ {
		p := lumpyProblem(scale)
		for _, x := range []float64{30, 50, 70, 90} {
			for seed := int64(0); seed < 6; seed++ {
				errSingle += eliminationError(t, p, SelectSingleResult, x, seed)
				errFixed += eliminationError(t, p, SelectFixedOrder, x, seed)
				n++
			}
		}
	}
	if errSingle >= errFixed {
		t.Errorf("single-result mean error %.2f not below fixed-order %.2f",
			errSingle/float64(n), errFixed/float64(n))
	}
}

func TestSingleResultTargetingIsUsable(t *testing.T) {
	// Sanity bound: on fine-grained instances (every keyword eliminates
	// only a small slice of U, so precise targeting is possible) the §4.3
	// procedure stays close to its target on average.
	var total float64
	n := 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		c, u := document.DocSet{}, document.DocSet{}
		for i := 0; i < 12; i++ {
			c.Add(document.DocID(i))
		}
		for i := 0; i < 24; i++ {
			u.Add(document.DocID(1000 + i))
		}
		ids := c.Union(u).IDs()
		contain := map[string]document.DocSet{}
		for k := 0; k < 16; k++ {
			name := string(rune('a' + k))
			set := document.DocSet{}
			for _, id := range ids {
				if rng.Float64() < 0.85 {
					set.Add(id)
				}
			}
			contain[name] = set
		}
		p := NewProblemFromSets(search.NewQuery("seed"), c, u, nil, contain)
		for _, x := range []float64{30, 50, 70} {
			total += eliminationError(t, p, SelectSingleResult, x, seed)
			n++
		}
	}
	if mean := total / float64(n); mean > 15 {
		t.Errorf("mean elimination error %.1f points, want <= 15", mean)
	}
}

func TestPartialEliminationZeroTargetIsSeedQuery(t *testing.T) {
	p := randomProblem(5, 10, 14, 10, false)
	for _, strategy := range []SelectionStrategy{SelectSingleResult, SelectFixedOrder, SelectSubset} {
		a := &PEBC{Strategy: strategy, Seed: 3}
		q := a.partialElimination(p, 0, rand.New(rand.NewSource(3)))
		if q.String() != p.UserQuery.String() {
			t.Errorf("%v: x=0 produced %v, want the unmodified user query",
				strategy, q.Terms)
		}
	}
}

func TestPartialEliminationFullTargetEliminatesMost(t *testing.T) {
	p := randomProblem(6, 10, 16, 12, false)
	a := &PEBC{Seed: 1}
	q := a.eliminateSingleResult(p, 100, rand.New(rand.NewSource(1)))
	remaining := p.Retrieve(q).Intersect(p.U)
	// x=100 should eliminate (nearly) everything that the keyword pool can
	// eliminate.
	if float64(remaining.Len()) > 0.3*float64(p.U.Len()) {
		t.Errorf("x=100 left %d of %d U-results", remaining.Len(), p.U.Len())
	}
}

func TestPartialEliminationNeverDropsUserQueryTerms(t *testing.T) {
	p := randomProblem(8, 10, 14, 12, false)
	for _, strategy := range []SelectionStrategy{SelectSingleResult, SelectFixedOrder, SelectSubset} {
		a := &PEBC{Strategy: strategy, Seed: 2}
		q := a.partialElimination(p, 60, rand.New(rand.NewSource(2)))
		if !q.Contains("seed") {
			t.Errorf("%v: user query term dropped: %v", strategy, q.Terms)
		}
		for _, term := range q.Terms {
			if term == "seed" {
				continue
			}
			if _, ok := p.kwID(term); !ok {
				t.Errorf("%v: non-pool term %q", strategy, term)
			}
		}
	}
}

func TestPEBCSubsetStrategyCoversSelectedResults(t *testing.T) {
	// The §4.2 strategy must still produce a valid query that eliminates
	// a nonzero fraction when asked for 50%.
	p := randomProblem(9, 10, 16, 12, false)
	a := &PEBC{Strategy: SelectSubset, Seed: 4}
	q := a.eliminateSubset(p, 50, rand.New(rand.NewSource(4)))
	remaining := p.Retrieve(q).Intersect(p.U)
	if remaining.Len() == p.U.Len() {
		t.Error("subset strategy eliminated nothing at x=50")
	}
}

func TestClosersWithout(t *testing.T) {
	// before=4, after=8, target=5 → keeping "before" is closer.
	if !closerWithout(4, 8, 5) {
		t.Error("4 is closer to 5 than 8")
	}
	if closerWithout(4, 8, 7) {
		t.Error("8 is closer to 7 than 4")
	}
	// Ties keep the smaller elimination (conservative).
	if !closerWithout(4, 6, 5) {
		t.Error("tie should prefer stopping short")
	}
}

func TestPEBCZoomNarrowsInterval(t *testing.T) {
	// With more iterations PEBC must never get worse: it keeps the best
	// sample seen.
	p := randomProblem(10, 12, 18, 12, false)
	few := (&PEBC{Segments: 3, Iterations: 1, Seed: 5}).Expand(p)
	many := (&PEBC{Segments: 3, Iterations: 4, Seed: 5}).Expand(p)
	if many.PRF.F < few.PRF.F-1e-9 {
		t.Errorf("more iterations worsened F: %v -> %v", few.PRF.F, many.PRF.F)
	}
	if many.Iterations != 4 || few.Iterations != 1 {
		t.Errorf("iterations recorded wrong: %d, %d", few.Iterations, many.Iterations)
	}
}

func TestPEBCEmptyUniverseU(t *testing.T) {
	// A cluster that IS the whole universe (U empty): PEBC degenerates to
	// the seed query with F=1.
	c := document.NewDocSet(1, 2, 3)
	contain := map[string]document.DocSet{"k": document.NewDocSet(1)}
	p := NewProblemFromSets(search.NewQuery("seed"), c, document.DocSet{}, nil, contain)
	got := (&PEBC{Seed: 1}).Expand(p)
	if got.PRF.F != 1 {
		t.Errorf("F = %v with empty U", got.PRF.F)
	}
}

func TestISKREmptyPool(t *testing.T) {
	c := document.NewDocSet(1, 2)
	u := document.NewDocSet(3)
	p := NewProblemFromSets(search.NewQuery("seed"), c, u, nil, nil)
	got := (&ISKR{}).Expand(p)
	if got.Query.String() != "seed" {
		t.Errorf("empty pool produced %v", got.Query.Terms)
	}
	if got.Iterations != 0 {
		t.Errorf("iterations = %d", got.Iterations)
	}
}
