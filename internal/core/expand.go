package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/search"
)

// ClusterExpansion is the expanded query generated for one cluster.
type ClusterExpansion struct {
	Cluster  int
	Expanded Expanded
}

// QECResult is the solution to one QEC instance (Definition 2.1): one
// expanded query per cluster plus the Eq. 1 score of the whole set.
type QECResult struct {
	Method     string
	Expansions []ClusterExpansion
	// Score is Eq. 1: the harmonic mean of the per-cluster F-measures.
	Score float64
}

// Queries returns just the expanded queries, in cluster order.
func (r *QECResult) Queries() []search.Query {
	out := make([]search.Query, len(r.Expansions))
	for i, e := range r.Expansions {
		out[i] = e.Expanded.Query
	}
	return out
}

// FMeasures returns the per-cluster F-measures, in cluster order.
func (r *QECResult) FMeasures() []float64 {
	out := make([]float64, len(r.Expansions))
	for i, e := range r.Expansions {
		out[i] = e.Expanded.PRF.F
	}
	return out
}

// TotalEvaluations sums the per-cluster evaluation counts.
func (r *QECResult) TotalEvaluations() int {
	n := 0
	for _, e := range r.Expansions {
		n += e.Expanded.Evaluations
	}
	return n
}

// fanSlots is the process-wide budget of extra fan-out workers, sized to
// the core count at startup. Every ParallelFor acquires its helpers from
// this budget non-blockingly, so nested fans (Solve inside an experiment
// fan) and concurrent fans (one per in-flight server request, where the
// serving layer already runs 2x GOMAXPROCS expansions) degrade gracefully
// to serial execution instead of oversubscribing the CPU with up to
// requests x GOMAXPROCS runnable goroutines.
var fanSlots = make(chan struct{}, runtime.GOMAXPROCS(0)-1)

// Fan telemetry: how much of the process-wide budget multi-item fans
// actually got. FanSerial counting up while the worker pool is busy is the
// degrade signal the adaptive-quality control loop (ROADMAP) keys on —
// per-cluster solving silently running serial under saturation.
var (
	FanCalls   obs.Counter // ParallelFor calls with n > 1
	FanSerial  obs.Counter // ... of those, ran serial (no spare budget)
	FanHelpers obs.Counter // total helper goroutines granted
)

// ParallelFor runs fn(0..n-1) across up to min(GOMAXPROCS, n) workers —
// the calling goroutine plus however many helpers the process-wide budget
// can spare — and waits. With no spare budget (single core, nested fan, or
// a saturated server) it degenerates to an inline serial loop. Callers
// write into index-addressed slots, so the assembled output is identical
// to a serial run regardless of how many helpers were granted. Shared by
// the per-cluster solving fan-out here and the experiment runner's
// per-query fan-out.
func ParallelFor(n int, fn func(i int)) {
	if n > 1 {
		FanCalls.Inc()
	}
	extra := 0
	for extra < n-1 {
		select {
		case fanSlots <- struct{}{}:
			extra++
			continue
		default:
		}
		break
	}
	if extra == 0 {
		if n > 1 {
			FanSerial.Inc()
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	FanHelpers.Add(uint64(extra))
	var idx atomic.Int64
	work := func() {
		for {
			i := int(idx.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			defer func() { <-fanSlots }()
			work()
		}()
	}
	work() // the caller participates
	wg.Wait()
}

// BuildProblems constructs one Definition 2.2 problem per cluster from a
// clustering of the user query's results. Since maximizing Eq. 1 decomposes
// into maximizing each query's F-measure independently (Section 2), solving
// the problems independently solves QEC.
func BuildProblems(idx *index.Index, userQuery search.Query, cl *cluster.Clustering,
	weights eval.Weights, opts PoolOptions) []*Problem {

	return problemsFromSets(idx, userQuery, cl.Sets(), weights, opts)
}

// Solve runs the expander over every cluster and assembles the QEC result.
// The per-cluster Expand calls fan out across GOMAXPROCS workers (clusters
// are independent subproblems); results are collected by cluster index, so
// the output is bit-identical to a serial run for deterministic expanders.
func Solve(expander Expander, problems []*Problem) *QECResult {
	res, _ := SolveCtx(context.Background(), expander, problems)
	return res
}

// SolveCtx is Solve with cancellation: the context is checked before each
// per-cluster Expand, so a disconnected client stops burning CPU at cluster
// granularity instead of solving every remaining subproblem. On
// cancellation it returns (nil, ctx.Err()) — partial results are never
// surfaced, so a solve that completes is bit-identical whether or not a
// context was attached (the check only skips work, it reorders none).
func SolveCtx(ctx context.Context, expander Expander, problems []*Problem) (*QECResult, error) {
	res := &QECResult{
		Method:     expander.Name(),
		Expansions: make([]ClusterExpansion, len(problems)),
	}
	ParallelFor(len(problems), func(i int) {
		if ctx.Err() != nil {
			return
		}
		res.Expansions[i] = ClusterExpansion{Cluster: i, Expanded: expander.Expand(problems[i])}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Score = eval.Score(res.FMeasures())
	return res, nil
}

// SolveParallel is retained for API compatibility: Solve itself now expands
// the clusters concurrently, so this simply delegates.
func SolveParallel(expander Expander, problems []*Problem) *QECResult {
	return Solve(expander, problems)
}
