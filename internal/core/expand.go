package core

import (
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

// ClusterExpansion is the expanded query generated for one cluster.
type ClusterExpansion struct {
	Cluster  int
	Expanded Expanded
}

// QECResult is the solution to one QEC instance (Definition 2.1): one
// expanded query per cluster plus the Eq. 1 score of the whole set.
type QECResult struct {
	Method     string
	Expansions []ClusterExpansion
	// Score is Eq. 1: the harmonic mean of the per-cluster F-measures.
	Score float64
}

// Queries returns just the expanded queries, in cluster order.
func (r *QECResult) Queries() []search.Query {
	out := make([]search.Query, len(r.Expansions))
	for i, e := range r.Expansions {
		out[i] = e.Expanded.Query
	}
	return out
}

// FMeasures returns the per-cluster F-measures, in cluster order.
func (r *QECResult) FMeasures() []float64 {
	out := make([]float64, len(r.Expansions))
	for i, e := range r.Expansions {
		out[i] = e.Expanded.PRF.F
	}
	return out
}

// TotalEvaluations sums the per-cluster evaluation counts.
func (r *QECResult) TotalEvaluations() int {
	n := 0
	for _, e := range r.Expansions {
		n += e.Expanded.Evaluations
	}
	return n
}

// BuildProblems constructs one Definition 2.2 problem per cluster from a
// clustering of the user query's results. Since maximizing Eq. 1 decomposes
// into maximizing each query's F-measure independently (Section 2), solving
// the problems independently solves QEC.
func BuildProblems(idx *index.Index, userQuery search.Query, cl *cluster.Clustering,
	weights eval.Weights, opts PoolOptions) []*Problem {

	sets := cl.Sets()
	problems := make([]*Problem, len(sets))
	for i, c := range sets {
		u := document.DocSet{}
		for j, other := range sets {
			if j != i {
				u = u.Union(other)
			}
		}
		problems[i] = NewProblem(idx, userQuery, c, u, weights, opts)
	}
	return problems
}

// Solve runs the expander over every cluster and assembles the QEC result.
func Solve(expander Expander, problems []*Problem) *QECResult {
	res := &QECResult{Method: expander.Name()}
	fs := make([]float64, 0, len(problems))
	for i, p := range problems {
		exp := expander.Expand(p)
		res.Expansions = append(res.Expansions, ClusterExpansion{Cluster: i, Expanded: exp})
		fs = append(fs, exp.PRF.F)
	}
	res.Score = eval.Score(fs)
	return res
}

// SolveParallel is Solve with one goroutine per cluster. Since Section 2
// shows Eq. 1 decomposes into independent per-cluster maximizations, the
// clusters embarrassingly parallelize; the result is identical to Solve's
// for deterministic expanders.
func SolveParallel(expander Expander, problems []*Problem) *QECResult {
	res := &QECResult{
		Method:     expander.Name(),
		Expansions: make([]ClusterExpansion, len(problems)),
	}
	done := make(chan int, len(problems))
	for i, p := range problems {
		go func(i int, p *Problem) {
			exp := expander.Expand(p)
			res.Expansions[i] = ClusterExpansion{Cluster: i, Expanded: exp}
			done <- i
		}(i, p)
	}
	for range problems {
		<-done
	}
	res.Score = eval.Score(res.FMeasures())
	return res
}
