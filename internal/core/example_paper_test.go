package core

// This file encodes the paper's worked Examples 3.1, 3.2, 4.2 and 4.4
// exactly, as executable ground truth for ISKR and PEBC.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/document"
	"repro/internal/search"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// paperExample builds the instance of Example 3.1:
// cluster C = {R1..R8} (ids 1..8), U = {R1'..R10'} (ids 101..110),
// keywords job/store/location/fruit with the elimination sets of the table.
// contain = universe minus elimination set.
func paperExample() *Problem {
	c := document.NewDocSet(1, 2, 3, 4, 5, 6, 7, 8)
	u := document.NewDocSet(101, 102, 103, 104, 105, 106, 107, 108, 109, 110)
	universe := c.Union(u)
	elim := map[string]document.DocSet{
		"job":      document.NewDocSet(1, 2, 3, 4, 5, 6, 101, 102, 103, 104, 105, 106, 107, 108),
		"store":    document.NewDocSet(1, 2, 3, 4, 101, 102, 103, 104, 109),
		"location": document.NewDocSet(2, 3, 4, 5, 105, 106, 107, 108, 110),
		"fruit":    document.NewDocSet(1, 2, 3, 102, 103, 104),
	}
	contain := map[string]document.DocSet{}
	for k, e := range elim {
		contain[k] = universe.Subtract(e)
	}
	return NewProblemFromSets(search.NewQuery("apple"), c, u, nil, contain)
}

func TestExample31InitialValues(t *testing.T) {
	p := paperExample()
	st := &iskrState{p: p, q: p.UserQuery, r: p.allB.Clone()}
	// Paper's initial table: job 8/6, store 5/4, location 5/4, fruit 3/3.
	want := map[string][2]float64{
		"job":      {8, 6},
		"store":    {5, 4},
		"location": {5, 4},
		"fruit":    {3, 3},
	}
	for k, bc := range want {
		kid, _ := p.kwID(k)
		b, c := st.addDeltas(int(kid))
		if b != bc[0] || c != bc[1] {
			t.Errorf("%s: benefit/cost = %v/%v, want %v/%v", k, b, c, bc[0], bc[1])
		}
	}
	if v := value(8, 6); math.Abs(v-1.3333333333) > 1e-6 {
		t.Errorf("value(job) = %v", v)
	}
}

func TestExample31ValuesAfterAddingJob(t *testing.T) {
	p := paperExample()
	nk := len(p.Pool)
	st := &iskrState{
		p: p, q: p.UserQuery, r: p.allB.Clone(),
		addBenefit: make([]float64, nk), addCost: make([]float64, nk),
		active: make([]bool, nk),
	}
	for ki := range p.Pool {
		b, c := st.addDeltas(ki)
		st.addBenefit[ki], st.addCost[ki] = b, c
		st.active[ki] = true
	}
	jobID, _ := p.kwID("job")
	st.apply(int(jobID), true)

	bc := func(k string) (float64, float64) {
		ki, _ := p.kwID(k)
		return st.addBenefit[ki], st.addCost[ki]
	}
	// Paper's updated table: store 1/0, location 1/0, fruit 0/0.
	// (The printed table lists store's value as "1"; under the benefit/cost
	// definition 1/0 is unbounded — treated as +Inf here, which is what
	// makes the example's continuation consistent with the ≤1 stop rule.)
	if b, c := bc("store"); b != 1 || c != 0 {
		t.Errorf("store = %v/%v, want 1/0", b, c)
	}
	if b, c := bc("location"); b != 1 || c != 0 {
		t.Errorf("location = %v/%v, want 1/0", b, c)
	}
	if b, c := bc("fruit"); b != 0 || c != 0 {
		t.Errorf("fruit = %v/%v, want 0/0", b, c)
	}
	// Removal row for job: benefit 6, cost 8 (value 0.75).
	b, c, _ := st.removeDeltas("job")
	if b != 6 || c != 8 {
		t.Errorf("remove job = %v/%v, want 6/8", b, c)
	}
	// R(q) now retrieves R7, R8 in C and R9', R10' in U.
	wantR := document.NewDocSet(7, 8, 109, 110)
	if !p.bitsToDocSet(st.r).Equal(wantR) {
		t.Errorf("R(q) = %v, want %v", p.bitsToDocSet(st.r).IDs(), wantR.IDs())
	}
}

func TestExample32FullISKRRun(t *testing.T) {
	p := paperExample()
	got := (&ISKR{}).Expand(p)
	// The paper's run ends with q = {apple, store, location} after job is
	// added and later removed (Example 3.2).
	wantTerms := map[string]bool{"apple": true, "store": true, "location": true}
	if len(got.Query.Terms) != 3 {
		t.Fatalf("final query = %v, want {apple store location}", got.Query.Terms)
	}
	for _, term := range got.Query.Terms {
		if !wantTerms[term] {
			t.Fatalf("final query = %v, want {apple store location}", got.Query.Terms)
		}
	}
	// Final result set: {R6, R7, R8} — precision 1, recall 3/8.
	r := p.Retrieve(got.Query)
	if !r.Equal(document.NewDocSet(6, 7, 8)) {
		t.Errorf("R(final) = %v, want {6 7 8}", r.IDs())
	}
	if got.PRF.Precision != 1 {
		t.Errorf("precision = %v, want 1", got.PRF.Precision)
	}
	if math.Abs(got.PRF.Recall-3.0/8.0) > 1e-12 {
		t.Errorf("recall = %v, want 3/8", got.PRF.Recall)
	}
	if math.Abs(got.PRF.F-6.0/11.0) > 1e-12 {
		t.Errorf("F = %v, want 6/11", got.PRF.F)
	}
}

func TestExample32RemovalDisabledKeepsJob(t *testing.T) {
	p := paperExample()
	got := (&ISKR{DisableRemoval: true}).Expand(p)
	// Without removal the run cannot drop job; recall stays at 2/8 so F is
	// strictly lower than the full algorithm's 6/11. (The ablation point.)
	full := (&ISKR{}).Expand(p)
	if got.PRF.F >= full.PRF.F {
		t.Errorf("no-removal F = %v, full F = %v; removal should help here",
			got.PRF.F, full.PRF.F)
	}
}

// paperExample42 builds Example 4.2's U-side instance: 10 results in U,
// 4 keywords with given benefits; each keyword eliminates a disjoint set of
// results in C with the stated costs.
func paperExample42() *Problem {
	u := document.NewDocSet(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	// C: 13 docs, ids 100.. (k1 eliminates 2, k2 six, k3 one, k4 four —
	// disjoint per the example).
	cIDs := []document.DocID{}
	for i := 100; i < 113; i++ {
		cIDs = append(cIDs, document.DocID(i))
	}
	c := document.NewDocSet(cIDs...)
	universe := c.Union(u)
	elim := map[string]document.DocSet{
		"job":      document.NewDocSet(1, 2, 3, 4, 100, 101),                            // benefit 4, cost 2
		"store":    document.NewDocSet(5, 6, 7, 8, 9, 10, 102, 103, 104, 105, 106, 107), // benefit 6, cost 6
		"location": document.NewDocSet(3, 4, 8, 108),                                    // benefit 3, cost 1
		"fruit":    document.NewDocSet(4, 5, 6, 7, 109, 110, 111, 112),                  // benefit 4, cost 4
	}
	contain := map[string]document.DocSet{}
	for k, e := range elim {
		contain[k] = universe.Subtract(e)
	}
	return NewProblemFromSets(search.NewQuery("apple"), c, u, nil, contain)
}

func TestExample42FixedOrderCannotHitSeven(t *testing.T) {
	p := paperExample42()
	// Fixed-order selection picks k3 (3/1) then k1, eliminating {3,4,8} ∪
	// {1,2} = 5 results; the next pick overshoots to 10. The paper's point:
	// 7 is unreachable. Our fixed-order run targeting 70% must therefore
	// miss the target (landing on 5 or 10).
	a := &PEBC{Strategy: SelectFixedOrder}
	q := a.eliminateFixedOrder(p, 70)
	elimCount := 10 - p.Retrieve(q).Intersect(p.U).Len()
	if elimCount == 7 {
		t.Errorf("fixed-order eliminated exactly 7 — contradicts Example 4.2")
	}
	if elimCount != 5 && elimCount != 10 {
		t.Errorf("fixed-order eliminated %d, expected 5 or 10", elimCount)
	}
}

func TestExample44SingleResultCanHitSeven(t *testing.T) {
	p := paperExample42()
	// Example 4.4: the single-result procedure can reach exactly 7
	// eliminated results ({k1, k4} -> {1,2,3,4} ∪ {4,5,6,7}). With enough
	// seeds, at least one run must land on exactly 7.
	hit := false
	for seed := int64(0); seed < 40 && !hit; seed++ {
		a := &PEBC{Strategy: SelectSingleResult, Seed: seed}
		st := newElimState(p, 70)
		_ = st
		q := a.eliminateSingleResult(p, 70, newRand(seed))
		if 10-p.Retrieve(q).Intersect(p.U).Len() == 7 {
			hit = true
		}
	}
	if !hit {
		t.Error("single-result selection never eliminated exactly 7 of 10 across 40 seeds")
	}
}
