package core

// Trail is the per-cluster solver leg of a query EXPLAIN: the candidate
// pool's initial benefit/cost table, the refinement moves ISKR chose (or the
// samples PEBC probed), and what every rejected alternative scored when the
// solver stopped. A Problem with a nil Trail (the default) records nothing;
// recording only copies values the solver already computed — it never
// touches the solve arithmetic — so runs with and without a trail produce
// bit-identical Expanded output.
type Trail struct {
	// Pool is the initial candidate table: benefit, cost and value of
	// adding each pool keyword to the seed query, in keyword-ID
	// (lexicographic) order. Filled by ISKR; PEBC fills it from its shared
	// base tables.
	Pool []KeywordTrail
	// Steps are the refinement moves in the order ISKR applied them.
	Steps []StepTrail
	// Rejected is the final candidate table at termination: what each
	// keyword that did NOT make the expanded query would have scored as
	// the next addition. Keywords in the final query are excluded.
	Rejected []KeywordTrail
	// Samples are PEBC's probes: target elimination percentage, the
	// generated query and its F-measure, in generation order.
	Samples []SampleTrail
}

// KeywordTrail is one candidate keyword's benefit/cost/value line.
type KeywordTrail struct {
	Keyword       string
	Benefit, Cost float64
	// Value is benefit/cost under the paper's conventions (0 when both
	// are 0, +Inf when only cost is 0).
	Value float64
}

// StepTrail is one applied ISKR move.
type StepTrail struct {
	// Op is "add" or "remove".
	Op      string
	Keyword string
	// Value is the move's benefit/cost ratio at selection time.
	Value float64
	// F is the F-measure of the query after applying the move.
	F float64
}

// SampleTrail is one PEBC partial-elimination probe.
type SampleTrail struct {
	// X is the target elimination percentage of U.
	X float64
	// Terms is the generated sample query.
	Terms []string
	// F is the sample's F-measure.
	F float64
}

// keywordTable renders a benefit/cost slice pair as KeywordTrail lines,
// optionally skipping keywords for which skip returns true.
func keywordTable(pool []string, benefit, cost []float64, skip func(ki int) bool) []KeywordTrail {
	out := make([]KeywordTrail, 0, len(pool))
	for ki, k := range pool {
		if skip != nil && skip(ki) {
			continue
		}
		out = append(out, KeywordTrail{
			Keyword: k,
			Benefit: benefit[ki],
			Cost:    cost[ki],
			Value:   value(benefit[ki], cost[ki]),
		})
	}
	return out
}
