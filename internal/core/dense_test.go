package core

// Property tests pinning the dense-ID/bitset representation to the map-based
// DocSet semantics it replaced: on randomized problems, every dense-path
// result must equal (bit-for-bit where floats are involved) a straightforward
// reference computation over the public DocSet API.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/search"
)

// refRetrieve recomputes R(q) the pre-bitset way: clone the universe and
// filter by per-term DocSet membership.
func refRetrieve(p *Problem, q search.Query) document.DocSet {
	r := p.Universe.Clone()
	for _, term := range q.Terms {
		if p.UserQuery.Contains(term) {
			continue
		}
		set := p.ContainSet(term)
		if set == nil {
			return document.DocSet{}
		}
		for id := range r {
			if !set.Contains(id) {
				r.Remove(id)
			}
		}
	}
	return r
}

func randomPoolQuery(p *Problem, rng *rand.Rand) search.Query {
	q := p.UserQuery
	for _, k := range p.Pool {
		if rng.Float64() < 0.3 {
			q = q.With(k)
		}
	}
	return q
}

func TestDenseRetrieveMatchesDocSetReference(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := randomProblem(seed, 6+int(seed%7), 9+int(seed%5), 12, seed%2 == 0)
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 20; trial++ {
			q := randomPoolQuery(p, rng)
			if got, want := p.Retrieve(q), refRetrieve(p, q); !got.Equal(want) {
				t.Fatalf("seed %d: Retrieve(%v) = %v, want %v",
					seed, q.Terms, got.IDs(), want.IDs())
			}
			// OR retrieval: union of the term DocSets.
			wantOR := document.DocSet{}
			for _, term := range q.Terms {
				for id := range p.ContainSet(term) {
					wantOR.Add(id)
				}
			}
			if got := p.RetrieveOR(q); !got.Equal(wantOR) {
				t.Fatalf("seed %d: RetrieveOR(%v) = %v, want %v",
					seed, q.Terms, got.IDs(), wantOR.IDs())
			}
		}
	}
}

func TestDenseMeasureMatchesEvalMeasure(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := randomProblem(seed, 6+int(seed%7), 9+int(seed%5), 12, seed%2 == 1)
		rng := rand.New(rand.NewSource(seed + 200))
		for trial := 0; trial < 20; trial++ {
			q := randomPoolQuery(p, rng)
			got := p.Measure(q)
			want := eval.Measure(refRetrieve(p, q), p.C, p.Weights)
			// The reference sums in sorted-ID order, exactly like the dense
			// fold, so the comparison is exact — not approximate.
			if got != want {
				t.Fatalf("seed %d: Measure(%v) = %+v, want %+v (bit-exact)",
					seed, q.Terms, got, want)
			}
		}
	}
}

func TestDenseBaseTablesMatchReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := randomProblem(seed, 8, 12, 14, seed%2 == 0)
		benefit, cost, count := p.baseTables()
		for ki, k := range p.Pool {
			contain := p.ContainSet(k)
			var b, c float64
			n := 0
			for _, id := range p.Universe.IDs() {
				if contain.Contains(id) {
					continue
				}
				n++
				w := 1.0
				if p.Weights != nil {
					if wv, ok := p.Weights[id]; ok && wv > 0 {
						w = wv
					}
				}
				if p.U.Contains(id) {
					b += w
				} else {
					c += w
				}
			}
			if benefit[ki] != b || cost[ki] != c || count[ki] != n {
				t.Fatalf("seed %d keyword %q: base table %v/%v/%d, want %v/%v/%d",
					seed, k, benefit[ki], cost[ki], count[ki], b, c, n)
			}
		}
	}
}

func TestDenseSumMatchesWeightsS(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := randomProblem(seed, 10, 12, 8, true)
		if got, want := p.sC, p.Weights.S(p.C); got != want {
			t.Fatalf("seed %d: sC = %v, want %v", seed, got, want)
		}
		if got, want := p.sU, p.Weights.S(p.U); got != want {
			t.Fatalf("seed %d: sU = %v, want %v", seed, got, want)
		}
	}
}

func TestDenseContainsAgreesWithContainSet(t *testing.T) {
	p := randomProblem(3, 10, 15, 12, false)
	for _, k := range p.Pool {
		set := p.ContainSet(k)
		for _, id := range p.Universe.IDs() {
			if got, want := p.Contains(id, k), set.Contains(id); got != want {
				t.Fatalf("Contains(%d, %q) = %t, want %t", id, k, got, want)
			}
		}
	}
	if p.Contains(0, "no-such-keyword") {
		t.Error("Contains must be false for non-pool keywords")
	}
	if p.Contains(999999, p.Pool[0]) {
		t.Error("Contains must be false for non-universe documents")
	}
}

// TestSolveParallelDeterminism runs Solve (which fans per-cluster work
// across GOMAXPROCS workers) repeatedly and demands identical output,
// including bit-identical scores — index-order collection must make the
// fan-out invisible.
func TestSolveParallelDeterminism(t *testing.T) {
	problems := []*Problem{
		randomProblem(1, 8, 10, 10, true),
		randomProblem(2, 9, 11, 10, false),
		randomProblem(3, 7, 12, 10, true),
		randomProblem(4, 10, 9, 10, false),
	}
	base := Solve(&ISKR{}, problems)
	for trial := 0; trial < 8; trial++ {
		got := Solve(&ISKR{}, problems)
		if math.Float64bits(got.Score) != math.Float64bits(base.Score) {
			t.Fatalf("trial %d: score %v != %v", trial, got.Score, base.Score)
		}
		for i := range base.Expansions {
			if got.Expansions[i].Expanded.Query.String() != base.Expansions[i].Expanded.Query.String() {
				t.Fatalf("trial %d cluster %d: query %v != %v", trial, i,
					got.Expansions[i].Expanded.Query.Terms,
					base.Expansions[i].Expanded.Query.Terms)
			}
		}
	}
}
