package core

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/document"
	"repro/internal/search"
)

// SelectionStrategy picks how PEBC generates a sample query that eliminates
// approximately x% of U (the "partial elimination" subproblem).
type SelectionStrategy int

const (
	// SelectSingleResult is the published strategy (§4.3): repeatedly pick
	// a random not-yet-eliminated result of U and the best keyword that
	// eliminates it.
	SelectSingleResult SelectionStrategy = iota
	// SelectFixedOrder is the rejected §4.1 strategy: always take the
	// keyword with the globally best benefit/cost ratio. Kept for the
	// ablation benchmark demonstrating why it cannot hit the x% target.
	SelectFixedOrder
	// SelectSubset is the rejected §4.2 strategy: randomly choose a target
	// subset of x% of U and greedily cover it.
	SelectSubset
)

// String names the strategy for reports.
func (s SelectionStrategy) String() string {
	switch s {
	case SelectFixedOrder:
		return "fixed-order"
	case SelectSubset:
		return "subset"
	default:
		return "single-result"
	}
}

// PEBC is the Partial Elimination Based Convergence algorithm of Section 4.
// It samples queries that eliminate 0%..100% of U in nseg+1 evenly spaced
// targets, then repeatedly zooms into the adjacent pair of samples with the
// highest average F-measure.
type PEBC struct {
	// Segments per iteration (the paper's experiments use 3; Algorithm 2's
	// default is 5). 0 means 3.
	Segments int
	// Iterations of interval zooming (experiments: 3; Algorithm 2: 5).
	// 0 means 3.
	Iterations int
	// Strategy selects the partial-elimination procedure; the zero value is
	// the published §4.3 single-result procedure.
	Strategy SelectionStrategy
	// Seed drives the randomized procedure; runs are deterministic per seed.
	Seed int64
}

// Name implements Expander.
func (a *PEBC) Name() string {
	if a.Strategy == SelectSingleResult {
		return "PEBC"
	}
	return "PEBC-" + a.Strategy.String()
}

func (a *PEBC) defaults() (nseg, nit int) {
	nseg, nit = a.Segments, a.Iterations
	if nseg <= 0 {
		nseg = 3
	}
	if nit <= 0 {
		nit = 3
	}
	return nseg, nit
}

// Expand implements Expander (Algorithm 2).
func (a *PEBC) Expand(p *Problem) Expanded {
	nseg, nit := a.defaults()
	rng := rand.New(rand.NewSource(a.Seed))

	type sample struct {
		x float64
		q search.Query
		f float64
	}

	if p.Trail != nil {
		b, c, _ := p.baseTables()
		p.Trail.Pool = keywordTable(p.Pool, b, c, nil)
	}

	evals := 0
	gen := func(x float64) sample {
		q := a.partialElimination(p, x, rng)
		evals++
		s := sample{x: x, q: q, f: p.FMeasure(q)}
		if p.Trail != nil {
			p.Trail.Samples = append(p.Trail.Samples, SampleTrail{X: s.x, Terms: s.q.Terms, F: s.f})
		}
		return s
	}

	best := sample{x: 0, q: p.UserQuery, f: p.FMeasure(p.UserQuery)}
	if p.Trail != nil {
		p.Trail.Samples = append(p.Trail.Samples, SampleTrail{X: 0, Terms: best.q.Terms, F: best.f})
	}
	left, right := 0.0, 100.0
	iterations := 0
	for it := 0; it < nit; it++ {
		iterations++
		step := (right - left) / float64(nseg)
		if step <= 0 {
			break
		}
		samples := make([]sample, 0, nseg+1)
		for i := 0; i <= nseg; i++ {
			s := gen(left + float64(i)*step)
			samples = append(samples, s)
			if approxGreater(s.f, best.f) {
				best = s
			}
		}
		// Zoom into the adjacent pair with the highest average F-measure.
		bestPair, bestAvg := 0, -1.0
		for i := 0; i+1 < len(samples); i++ {
			if avg := (samples[i].f + samples[i+1].f) / 2; approxGreater(avg, bestAvg) {
				bestPair, bestAvg = i, avg
			}
		}
		left, right = samples[bestPair].x, samples[bestPair+1].x
	}

	if p.Trail != nil {
		// PEBC keeps no incremental per-keyword table for the winning query;
		// the rejected-alternative view is the shared base table (benefit and
		// cost against the unrefined query) restricted to keywords the
		// winning sample did not use.
		b, c, _ := p.baseTables()
		p.Trail.Rejected = keywordTable(p.Pool, b, c,
			func(ki int) bool { return best.q.Contains(p.Pool[ki]) })
	}
	return Expanded{
		Query:       best.q,
		PRF:         p.Measure(best.q),
		Iterations:  iterations,
		Evaluations: evals,
	}
}

// partialElimination generates a query eliminating approximately x% of the
// total ranking score of U, maximizing retained results in C, using the
// configured strategy.
func (a *PEBC) partialElimination(p *Problem, x float64, rng *rand.Rand) search.Query {
	switch a.Strategy {
	case SelectFixedOrder:
		return a.eliminateFixedOrder(p, x)
	case SelectSubset:
		return a.eliminateSubset(p, x, rng)
	default:
		return a.eliminateSingleResult(p, x, rng)
	}
}

// elimState tracks a partial-elimination run in the problem's dense ID
// space. Benefit/cost/count tables are maintained incrementally (copied from
// the Problem's shared base tables and adjusted only for delta results on
// each add), which is what keeps PEBC's per-sample cost low — the efficiency
// property Figure 6 turns on.
//
// States are recycled through the owning Problem's elimPool: one Expand
// generates (nseg+1)·nit sample queries, and without pooling each paid for
// two universe-sized bitsets, three keyword tables and the remaining-U list.
// newElimState fully overwrites every field, so a recycled state is
// indistinguishable from a fresh one and results stay bit-identical.
type elimState struct {
	p          *Problem
	q          search.Query
	r          document.BitSet // R(q)
	remU       []int32         // not-yet-eliminated results of U, ascending dense IDs
	benefit    []float64       // indexed by keyword ID
	cost       []float64
	count      []int
	target     float64 // score of U to eliminate
	eliminated float64 // score of U eliminated so far
	totalU     float64

	// Scratch reused across calls: delta backs add()'s eliminated-results
	// set, aux the per-strategy working set (stuck results / selected
	// subset), cand the candidate list of the single-result strategy.
	delta document.BitSet
	aux   document.BitSet
	cand  []int32
}

func newElimState(p *Problem, x float64) *elimState {
	st, _ := p.elimPool.Get().(*elimState)
	if st == nil {
		n := p.nDocs()
		st = &elimState{
			r:       document.NewBitSet(n),
			delta:   document.NewBitSet(n),
			aux:     document.NewBitSet(n),
			benefit: make([]float64, len(p.Pool)),
			cost:    make([]float64, len(p.Pool)),
			count:   make([]int, len(p.Pool)),
		}
	}
	st.p = p
	st.q = p.UserQuery
	st.r.CopyFrom(p.allB)
	st.aux.Clear()
	st.remU = st.remU[:0]
	p.uB.ForEach(func(di int) { st.remU = append(st.remU, int32(di)) })
	b, c, n := p.baseTables()
	copy(st.benefit, b)
	copy(st.cost, c)
	copy(st.count, n)
	st.totalU = p.sU
	st.eliminated = 0
	st.target = x / 100 * st.totalU
	return st
}

// release returns the state to its problem's pool, dropping references that
// would pin caller data.
func (st *elimState) release() {
	p := st.p
	st.p, st.q = nil, search.Query{}
	p.elimPool.Put(st)
}

// uRemaining returns the not-yet-eliminated results of U in a stable order
// (maintained incrementally; no per-pick sorting).
func (st *elimState) uRemaining() []int32 {
	return st.remU
}

// keywordEffect returns the maintained benefit (score eliminated from U),
// cost (score eliminated from C) and eliminated-result count of keyword ki
// against the current R(q).
func (st *elimState) keywordEffect(ki int) (benefit, cost float64, count int) {
	return st.benefit[ki], st.cost[ki], st.count[ki]
}

// add applies keyword ki, updates the maintained tables for the delta
// results, and returns the U-score it eliminated. All set algebra is
// word-wise; float accumulation folds in ascending dense-ID order.
func (st *elimState) add(ki int) float64 {
	delta := st.delta
	delta.CopyFrom(st.r)
	delta.AndNot(st.p.containB[ki])
	dw := delta.Words()
	uw := st.p.uB.Words()
	var gone float64
	for wi, d := range dw {
		gone = st.p.accum(gone, wi, d&uw[wi])
	}
	st.q = st.q.With(st.p.Pool[ki])
	st.r.AndNot(delta)
	// Compact the remaining-U list in place, preserving order.
	keep := st.remU[:0]
	for _, di := range st.remU {
		if !delta.Contains(int(di)) {
			keep = append(keep, di)
		}
	}
	st.remU = keep
	// Only keywords absent from at least one delta result change value.
	for k2 := range st.benefit {
		cw := st.p.containB[k2].Words()
		var db, dc float64
		n := 0
		for wi, d := range dw {
			x := d &^ cw[wi]
			if x == 0 {
				continue
			}
			n += bits.OnesCount64(x)
			db = st.p.accum(db, wi, x&uw[wi])
			dc = st.p.accum(dc, wi, x&^uw[wi])
		}
		if n != 0 {
			st.benefit[k2] -= db
			st.cost[k2] -= dc
			st.count[k2] -= n
		}
	}
	st.eliminated += gone
	return gone
}

// closerWithout reports whether stopping before the last keyword leaves the
// eliminated fraction closer to the target than including it ("determine
// whether to include the last selected keyword based on which percentage is
// closer to x%").
func closerWithout(before, after, target float64) bool {
	return math.Abs(before-target) <= math.Abs(after-target)
}

// eliminateSingleResult is the published §4.3 procedure.
func (a *PEBC) eliminateSingleResult(p *Problem, x float64, rng *rand.Rand) search.Query {
	st := newElimState(p, x)
	defer st.release()
	if st.target <= 0 || st.totalU == 0 {
		return st.q
	}
	// Results found to be uneliminable by the current candidate pool; they
	// are skipped rather than aborting the whole procedure.
	stuck := st.aux
	for st.eliminated < st.target {
		st.cand = st.cand[:0]
		for _, di := range st.uRemaining() {
			if !stuck.Contains(int(di)) {
				st.cand = append(st.cand, di)
			}
		}
		if len(st.cand) == 0 {
			break
		}
		r := int(st.cand[rng.Intn(len(st.cand))])
		// Keywords that eliminate r: pool keywords not contained in r.
		bestKi, bestV, bestCount := -1, math.Inf(-1), 0
		for ki := range p.Pool {
			if p.containB[ki].Contains(r) || st.q.Contains(p.Pool[ki]) {
				continue
			}
			b, c, count := st.keywordEffect(ki)
			if b == 0 {
				continue
			}
			v := value(b, c)
			// Tie: prefer the keyword eliminating fewer results ("minimize
			// the risk that we eliminate too many"), then the smaller name.
			if approxGreater(v, bestV) ||
				(approxEqual(v, bestV) && (count < bestCount ||
					(count == bestCount && (bestKi < 0 || ki < bestKi)))) {
				bestKi, bestV, bestCount = ki, v, count
			}
		}
		if bestKi < 0 {
			stuck.Add(r) // r cannot be eliminated; try another result
			continue
		}
		before := st.eliminated
		st.add(bestKi)
		if st.eliminated >= st.target && closerWithout(before, st.eliminated, st.target) && before > 0 {
			// Undo: rebuild without the last keyword (cheaper than a full
			// union-restore given how small these queries are).
			st.q = st.q.Without(p.Pool[bestKi])
			st.r = p.retrieveBits(st.q)
			st.eliminated = before
			break
		}
	}
	return st.q
}

// eliminateFixedOrder is the rejected §4.1 greedy: always the globally best
// benefit/cost keyword.
func (a *PEBC) eliminateFixedOrder(p *Problem, x float64) search.Query {
	st := newElimState(p, x)
	defer st.release()
	if st.target <= 0 || st.totalU == 0 {
		return st.q
	}
	for st.eliminated < st.target {
		bestKi, bestV := -1, math.Inf(-1)
		for ki := range p.Pool {
			if st.q.Contains(p.Pool[ki]) {
				continue
			}
			b, c, _ := st.keywordEffect(ki)
			if b == 0 {
				continue
			}
			if v := value(b, c); approxGreater(v, bestV) ||
				(approxEqual(v, bestV) && (bestKi < 0 || ki < bestKi)) {
				bestKi, bestV = ki, v
			}
		}
		if bestKi < 0 {
			break
		}
		before := st.eliminated
		st.add(bestKi)
		if st.eliminated >= st.target && closerWithout(before, st.eliminated, st.target) && before > 0 {
			st.q = st.q.Without(p.Pool[bestKi])
			st.r = p.retrieveBits(st.q)
			st.eliminated = before
			break
		}
	}
	return st.q
}

// eliminateSubset is the rejected §4.2 procedure: choose a random subset S
// of U whose score is ≈x% of U's, then greedily pick keywords covering S,
// counting eliminations outside S as extra cost (Example 4.3).
func (a *PEBC) eliminateSubset(p *Problem, x float64, rng *rand.Rand) search.Query {
	st := newElimState(p, x)
	defer st.release()
	if st.target <= 0 || st.totalU == 0 {
		return st.q
	}
	// Randomly select S. The shuffle consumes the rng over DocIDs exactly as
	// the map-era implementation did (U.IDs() is ascending DocID order).
	ids := p.U.IDs()
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	selected := st.aux
	var got float64
	for _, id := range ids {
		if got >= st.target {
			break
		}
		dense, _ := p.denseID(id)
		di := int(dense)
		selected.Add(di)
		got += p.weightAt(di)
	}
	// Greedy cover of S: keyword covering the most remaining S-score with
	// the best adjusted benefit/cost.
	sw := selected.Words()
	for {
		if st.r.AndLen(selected) == 0 {
			break // S fully covered
		}
		bestKi, bestV := -1, math.Inf(-1)
		for ki := range p.Pool {
			if st.q.Contains(p.Pool[ki]) {
				continue
			}
			cw := p.containB[ki].Words()
			var b, c float64
			for wi, rw := range st.r.Words() {
				x := rw &^ cw[wi]
				if x == 0 {
					continue
				}
				// Eliminating a selected result is the benefit; eliminating
				// C or unselected U results is cost.
				b = st.p.accum(b, wi, x&sw[wi])
				c = st.p.accum(c, wi, x&^sw[wi])
			}
			if b == 0 {
				continue
			}
			if v := value(b, c); approxGreater(v, bestV) ||
				(approxEqual(v, bestV) && (bestKi < 0 || ki < bestKi)) {
				bestKi, bestV = ki, v
			}
		}
		if bestKi < 0 {
			break
		}
		st.add(bestKi)
	}
	return st.q
}

// SampleTargets returns the elimination percentages PEBC would probe in its
// first iteration — exported for tests and the ablation harness.
func (a *PEBC) SampleTargets() []float64 {
	nseg, _ := a.defaults()
	out := make([]float64, 0, nseg+1)
	step := 100.0 / float64(nseg)
	for i := 0; i <= nseg; i++ {
		out = append(out, float64(i)*step)
	}
	sort.Float64s(out)
	return out
}
