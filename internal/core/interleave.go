package core

import (
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

// Interleave implements the paper's Section 7 future-work direction of
// "interweaving the clustering and query expansion process": starting from
// an initial clustering, it alternates (a) generating one expanded query
// per cluster and (b) re-assigning every result to the cluster whose
// expanded query retrieves it best, until the assignment stabilizes or the
// round budget is exhausted. Because the expanded queries are exactly the
// boundaries users will navigate by, re-clustering around them tends to
// raise the Eq. 1 score above what one-shot clustering achieves.
type Interleave struct {
	// Expander generates queries each round (nil means ISKR).
	Expander Expander
	// MaxRounds bounds the alternation (0 means 5).
	MaxRounds int
	// PoolOptions configures candidate keywords for each round's problems.
	// Ignored when Universe is set (the snapshot bakes its own options in).
	PoolOptions PoolOptions
	// Universe optionally supplies the request's resolved universe snapshot.
	// The engine sets it so the interleaved rounds reuse the pool and
	// incidence already computed for clustering; nil builds one from the
	// initial clustering's sets. The clustering must cover exactly the
	// snapshot's documents.
	Universe *Universe
}

// InterleaveResult is the converged outcome.
type InterleaveResult struct {
	Result   *QECResult
	Clusters []document.DocSet
	Rounds   int
}

// Run alternates expansion and re-assignment starting from cl.
func (it *Interleave) Run(idx *index.Index, userQuery search.Query,
	cl *cluster.Clustering, weights eval.Weights) *InterleaveResult {

	ex := it.Expander
	if ex == nil {
		ex = &ISKR{}
	}
	maxRounds := it.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 5
	}
	opts := it.PoolOptions
	if opts.TopFraction == 0 {
		opts = DefaultPoolOptions()
	}

	sets := cl.Sets()
	// Re-assignment moves results between clusters but never in or out of
	// the universe, so one snapshot serves every round's problems.
	u := it.Universe
	if u == nil {
		all := document.DocSet{}
		for _, s := range sets {
			all = all.Union(s)
		}
		u = NewUniverse(idx, userQuery, all.IDs(), weights, opts)
	}
	universe := u.Set

	var best *QECResult
	bestSets := sets
	rounds := 0
	for round := 0; round < maxRounds; round++ {
		rounds = round + 1
		problems := u.Problems(sets)
		res := Solve(ex, problems)
		if best == nil || res.Score > best.Score {
			best = res
			bestSets = cloneSets(sets)
		}
		// Re-assign: each result goes to the cluster whose expanded query
		// retrieves it; results retrieved by several queries go to the one
		// whose cluster they already belong to if possible, else the first.
		newSets := make([]document.DocSet, len(sets))
		for i := range newSets {
			newSets[i] = document.DocSet{}
		}
		retrieved := make([]document.DocSet, len(sets))
		for i, p := range problems {
			retrieved[i] = p.Retrieve(res.Expansions[i].Expanded.Query)
		}
		for id := range universe {
			target := -1
			for i, r := range retrieved {
				if !r.Contains(id) {
					continue
				}
				if target < 0 {
					target = i
				}
				if sets[i].Contains(id) {
					target = i
					break
				}
			}
			if target < 0 {
				// Unretrieved by every query: keep the current cluster.
				for i, s := range sets {
					if s.Contains(id) {
						target = i
						break
					}
				}
			}
			newSets[target].Add(id)
		}
		// Drop emptied clusters.
		compact := newSets[:0]
		for _, s := range newSets {
			if s.Len() > 0 {
				compact = append(compact, s)
			}
		}
		newSets = compact
		if setsEqual(sets, newSets) {
			break
		}
		sets = newSets
	}
	return &InterleaveResult{Result: best, Clusters: bestSets, Rounds: rounds}
}

// problemsFromSets builds one Definition 2.2 problem per cluster set. Every
// problem's universe is the union of all sets, so the pool scoring and the
// incidence scan are resolved once into a shared snapshot and only the
// cluster-dependent state is built per problem (previously every cluster
// re-walked DocTermIDs over the same result set).
func problemsFromSets(idx *index.Index, userQuery search.Query,
	sets []document.DocSet, weights eval.Weights, opts PoolOptions) []*Problem {

	all := document.DocSet{}
	for _, s := range sets {
		all = all.Union(s)
	}
	u := NewUniverse(idx, userQuery, all.IDs(), weights, opts)
	return u.Problems(sets)
}

func cloneSets(sets []document.DocSet) []document.DocSet {
	out := make([]document.DocSet, len(sets))
	for i, s := range sets {
		out[i] = s.Clone()
	}
	return out
}

func setsEqual(a, b []document.DocSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
