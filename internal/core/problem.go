// Package core implements the paper's primary contribution: generating an
// expanded query for each cluster of keyword-search results such that the
// expanded query's result set is as close to the cluster as possible
// (Definition 2.2), plus the full QEC problem over all clusters
// (Definition 2.1). The two published algorithms — ISKR (Section 3) and
// PEBC (Section 4) — are implemented here, along with the F-measure ISKR
// variant and the rejected PEBC keyword-selection strategies (§4.1, §4.2)
// used for ablation.
//
// Internally every Problem works in a problem-local dense ID space: the
// universe documents are mapped to 0..n-1 in ascending DocID order, pool
// keywords are interned to int32 IDs in lexicographic (= Pool slice) order,
// keyword→document incidence is stored as per-keyword bitmaps, and the
// benefit/cost/count tables are flat slices indexed by keyword ID. Set
// algebra in the algorithms is therefore word-wise bitset arithmetic, and
// every floating-point accumulation folds members in ascending dense-ID
// order — exactly the sorted-DocID order the map-backed implementation used
// — so outputs are bit-identical for fixed seeds (pinned by the expansion
// golden test in internal/experiment).
package core

import (
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/termdict"
)

// Problem is one instance of Definition 2.2: a user query, a target cluster
// C, the set U of results in all other clusters, and optional ranking
// weights. All candidate keywords and incidence structures are precomputed
// so the algorithms can evaluate R(q) restricted to the universe cheaply.
type Problem struct {
	UserQuery search.Query
	C         document.DocSet // the cluster (ground truth)
	U         document.DocSet // results in all other clusters
	Universe  document.DocSet // C ∪ U
	Weights   eval.Weights    // nil = unranked

	// Pool is the candidate keyword vocabulary (the paper's setup: the
	// top-20% of result words by tfidf), excluding the user query's own
	// terms. Sorted for determinism; the position of a keyword in Pool is
	// its dense keyword ID.
	Pool []string

	// Trail, when non-nil, receives the solver's decision record (initial
	// candidate table, applied moves / probed samples, rejected
	// alternatives) — the EXPLAIN surface. nil (the default) records
	// nothing and costs nothing; see Trail for the bit-identity contract.
	Trail *Trail

	// Dense ID space: docs lists the universe in ascending DocID order (the
	// dense doc ID is the position; denseID inverts it by binary search) and
	// w holds the per-document ranking weight (nil when unranked; missing or
	// non-positive Weights entries already resolved to 1).
	docs []document.DocID
	w    []float64

	// containB[k] is the bitmap of universe documents containing pool
	// keyword k (keyword IDs are positions in the sorted Pool; kwID inverts
	// by binary search). E(k) ∩ Universe (the documents k eliminates) is its
	// complement.
	containB []document.BitSet

	// elimPool recycles PEBC partial-elimination scratch state (bitsets +
	// flat tables) across the many sample queries of one Expand.
	elimPool sync.Pool

	// resolver holds the per-candidate-query resolution cache (see
	// queryResolver) between F-measure evaluations. An atomic swap-out /
	// store-back rather than a plain field so concurrent evaluations on the
	// same Problem each see a private cache (a loser simply starts cold).
	resolver atomic.Pointer[queryResolver]

	// cB/uB/allB are the dense C, U and universe memberships; sC and sU
	// cache S(C) and S(U), constant per problem.
	cB, uB, allB document.BitSet
	sC, sU       float64

	// Cached benefit/cost/elimination-count of every pool keyword against
	// the *unrefined* query (R(q) = Universe), computed once and copied by
	// each PEBC partial-elimination run.
	baseOnce    sync.Once
	baseBenefit []float64
	baseCost    []float64
	baseCount   []int
}

// initDense builds the dense doc space and empty incidence bitmaps; callers
// fill containB afterwards. Pool must already be sorted.
func (p *Problem) initDense() {
	ids := p.Universe.IDs() // ascending: dense ID order = DocID order
	p.docs = ids
	n := len(ids)
	if p.Weights != nil {
		p.w = make([]float64, n)
		for i, id := range ids {
			if wv, ok := p.Weights[id]; ok && wv > 0 {
				p.w[i] = wv
			} else {
				p.w[i] = 1
			}
		}
	}
	p.cB, p.uB, p.allB = document.NewBitSet(n), document.NewBitSet(n), document.FullBitSet(n)
	for i, id := range ids {
		if p.C.Contains(id) {
			p.cB.Add(i)
		}
		if p.U.Contains(id) {
			p.uB.Add(i)
		}
	}
	p.sC, p.sU = p.sumBits(p.cB), p.sumBits(p.uB)
	p.containB = make([]document.BitSet, len(p.Pool))
	for ki := range p.Pool {
		p.containB[ki] = document.NewBitSet(n)
	}
}

// nDocs returns the universe size (the dense doc ID bound).
func (p *Problem) nDocs() int { return len(p.docs) }

// kwID returns the dense keyword ID of k — its position in the sorted Pool —
// by binary search. No map is kept: the Pool is small and already sorted.
func (p *Problem) kwID(k string) (int32, bool) {
	i := sort.SearchStrings(p.Pool, k)
	if i < len(p.Pool) && p.Pool[i] == k {
		return int32(i), true
	}
	return 0, false
}

// denseID returns the dense doc ID of a universe document, by binary search
// over the ascending docs slice.
func (p *Problem) denseID(id document.DocID) (int32, bool) {
	i := sort.Search(len(p.docs), func(i int) bool { return p.docs[i] >= id })
	if i < len(p.docs) && p.docs[i] == id {
		return int32(i), true
	}
	return 0, false
}

// accum adds the weights of the set bits of one bitset word to acc, folding
// in ascending dense-ID order. It delegates to eval.AccumWord — the single
// fold implementation both packages must share for bit-identical sums.
func (p *Problem) accum(acc float64, wi int, word uint64) float64 {
	return eval.AccumWord(acc, wi, word, p.w)
}

// sumBits returns the total ranking score of a dense set.
func (p *Problem) sumBits(b document.BitSet) float64 {
	total := 0.0
	for wi, word := range b.Words() {
		total = p.accum(total, wi, word)
	}
	return total
}

// weightAt returns the ranking weight of dense doc di.
func (p *Problem) weightAt(di int) float64 {
	if p.w == nil {
		return 1
	}
	return p.w[di]
}

// bitsToDocSet converts a dense set back to the public DocSet form.
func (p *Problem) bitsToDocSet(b document.BitSet) document.DocSet {
	out := make(document.DocSet, b.Len())
	b.ForEach(func(di int) { out.Add(p.docs[di]) })
	return out
}

// baseTables lazily computes the initial benefit/cost/count tables, indexed
// by dense keyword ID.
func (p *Problem) baseTables() ([]float64, []float64, []int) {
	p.baseOnce.Do(func() {
		nk := len(p.Pool)
		p.baseBenefit = make([]float64, nk)
		p.baseCost = make([]float64, nk)
		p.baseCount = make([]int, nk)
		uw := p.uB.Words()
		allw := p.allB.Words()
		for ki := 0; ki < nk; ki++ {
			cw := p.containB[ki].Words()
			var b, c float64
			n := 0
			for wi := range allw {
				x := allw[wi] &^ cw[wi] // universe docs k eliminates
				if x == 0 {
					continue
				}
				n += bits.OnesCount64(x)
				b = p.accum(b, wi, x&uw[wi])
				c = p.accum(c, wi, x&^uw[wi])
			}
			p.baseBenefit[ki], p.baseCost[ki], p.baseCount[ki] = b, c, n
		}
	})
	return p.baseBenefit, p.baseCost, p.baseCount
}

// PoolOptions configures candidate-keyword selection.
type PoolOptions struct {
	// TopFraction keeps this fraction of the distinct result terms, ranked
	// by summed tfidf over the universe (paper: 0.20).
	TopFraction float64
	// MinKeywords is a floor so tiny result sets keep a usable pool.
	MinKeywords int
	// MaxKeywords caps the pool (0 = no cap).
	MaxKeywords int
}

// DefaultPoolOptions mirrors the paper's experimental setup.
func DefaultPoolOptions() PoolOptions {
	return PoolOptions{TopFraction: 0.20, MinKeywords: 10}
}

// scorePool ranks the distinct terms of the universe by summed TF-IDF in a
// flat []float64 indexed by global TermID — no string map anywhere — and
// returns the cut pool as parallel term/TermID slices, both in ascending
// TermID (= lexicographic) order.
//
// Accumulation order is the historical one: documents ascending by DocID,
// terms ascending within each document (TermID order is lexicographic, the
// order the sorted DocTerms strings were walked in), so the sums — and hence
// the pool cut — are bit-identical to the map-backed implementation.
func scorePool(idx *index.Index, userQuery search.Query, universeIDs []document.DocID,
	opts PoolOptions) ([]string, []termdict.TermID) {

	// The user query's own terms are excluded from the pool; resolve them to
	// sorted TermIDs once so the per-occurrence skip is a merge, not a map.
	skip := termdict.SkipList{IDs: termdict.ResolveSorted(idx.Dict(), userQuery.Terms)}

	scores := make([]float64, idx.NumTerms())
	var touched []termdict.TermID
	for _, id := range universeIDs {
		tids := idx.DocTermIDs(id)
		freqs := idx.DocTermFreqs(id)
		skip.Reset()
		for i, tid := range tids {
			if skip.Contains(tid) {
				continue
			}
			// Every contribution is > 0 (freq ≥ 1 and IDF > 0 for any
			// indexed term), so a zero score marks first touch.
			if scores[tid] == 0 {
				touched = append(touched, tid)
			}
			scores[tid] += float64(freqs[i]) * idx.IDFByID(tid)
		}
	}

	ranked := touched
	slices.SortFunc(ranked, func(a, b termdict.TermID) int {
		switch {
		case scores[a] > scores[b]:
			return -1
		case scores[a] < scores[b]:
			return 1
		case a < b: // TermID order = lexicographic order
			return -1
		default:
			return 1
		}
	})

	keep := int(math.Ceil(opts.TopFraction * float64(len(ranked))))
	if keep < opts.MinKeywords {
		keep = opts.MinKeywords
	}
	if opts.MaxKeywords > 0 && keep > opts.MaxKeywords {
		keep = opts.MaxKeywords
	}
	if keep > len(ranked) {
		keep = len(ranked)
	}
	poolTids := make([]termdict.TermID, keep)
	copy(poolTids, ranked[:keep])
	slices.Sort(poolTids)
	pool := make([]string, keep)
	for i, tid := range poolTids {
		pool[i] = idx.TermByID(tid)
	}
	return pool, poolTids
}

// ScorePool exposes the candidate-pool selection (the paper's "top 20% of
// result words by tfidf") on its own: given the user query and the universe
// of its results, it returns the pool in sorted order. Exported for the
// PoolScoring benchmark, which pins that this path performs zero map
// allocations.
func ScorePool(idx *index.Index, userQuery search.Query, universeIDs []document.DocID,
	opts PoolOptions) []string {
	pool, _ := scorePool(idx, userQuery, universeIDs, opts)
	return pool
}

// NewProblem assembles a Problem from the index, the user query, the target
// cluster and the other-results set. weights may be nil.
func NewProblem(idx *index.Index, userQuery search.Query, c, u document.DocSet,
	weights eval.Weights, opts PoolOptions) *Problem {

	p := &Problem{
		UserQuery: userQuery,
		C:         c,
		U:         u,
		Universe:  c.Union(u),
		Weights:   weights,
	}

	var poolTids []termdict.TermID
	p.Pool, poolTids = scorePool(idx, userQuery, p.Universe.IDs(), opts)

	p.initDense()
	// Keyword→document incidence by merge-join: both the pool TermIDs and
	// each document's TermIDs are ascending, and pool position = keyword ID
	// (both orders are lexicographic).
	for di, id := range p.docs {
		pi := 0
		for _, tid := range idx.DocTermIDs(id) {
			for pi < len(poolTids) && poolTids[pi] < tid {
				pi++
			}
			if pi == len(poolTids) {
				break
			}
			if poolTids[pi] == tid {
				p.containB[pi].Add(di)
				pi++
			}
		}
	}
	return p
}

// NewProblemFromSets assembles a Problem directly from keyword→document
// incidence, bypassing the index. contain maps each candidate keyword to the
// set of universe documents containing it; every universe document is
// assumed to contain the user query's own keywords (it is one of its
// results). Used by tests (to encode the paper's worked examples exactly)
// and by callers with non-index substrates.
func NewProblemFromSets(userQuery search.Query, c, u document.DocSet,
	weights eval.Weights, contain map[string]document.DocSet) *Problem {

	p := &Problem{
		UserQuery: userQuery,
		C:         c,
		U:         u,
		Universe:  c.Union(u),
		Weights:   weights,
	}
	p.Pool = make([]string, 0, len(contain))
	for k := range contain {
		p.Pool = append(p.Pool, k)
	}
	sort.Strings(p.Pool)
	p.initDense()
	for k, set := range contain {
		ki, _ := p.kwID(k)
		for id := range set {
			if di, ok := p.denseID(id); ok {
				p.containB[ki].Add(int(di))
			}
		}
	}
	return p
}

// Contains reports whether universe document id contains keyword k. Keywords
// outside the pool are reported as not contained (they are never candidates).
func (p *Problem) Contains(id document.DocID, k string) bool {
	ki, ok := p.kwID(k)
	if !ok {
		return false
	}
	di, ok := p.denseID(id)
	return ok && p.containB[ki].Contains(int(di))
}

// ContainSet returns the universe documents containing pool keyword k, as a
// freshly materialized DocSet (the incidence itself is stored as bitmaps).
func (p *Problem) ContainSet(k string) document.DocSet {
	ki, ok := p.kwID(k)
	if !ok {
		return nil
	}
	return p.bitsToDocSet(p.containB[ki])
}

// queryResolver caches the keyword-ID resolution — and the running
// intersection — of one incrementally built candidate query. terms holds the
// last resolved term sequence and bufs[i] the intersection R(terms[:i+1])
// restricted to the universe (each term resolves to kwSkip for the user
// query's own terms, kwForeign for terms outside the pool, or its dense
// keyword ID; only the level buffer records the outcome).
//
// Candidate queries are built by With/Without off a shared base, so
// successive retrieveBits calls share almost their whole term prefix: the
// prefix check is a handful of pointer-equal string compares (With copies
// string headers, not bytes), the shared intersection is read straight out
// of bufs, and only the tail term resolves and intersects. Tail resolution
// itself rarely needs the binary search: the ISKR/delta-F add loops walk the
// sorted Pool in order, so the next tail is almost always the pool entry
// right after the previous one — hint remembers it and a single string
// compare confirms. This restores the delta-F ablation cost the PR 4
// keyword-map removal regressed, without reintroducing a map into
// NewProblem: the cache is lazily populated scratch, swapped in and out of
// Problem.resolver around each call.
type queryResolver struct {
	terms []string
	bufs  []document.BitSet
	hint  int32
}

const (
	kwSkip    int32 = -1 // a user-query term: satisfied by construction
	kwForeign int32 = -2 // outside the pool: retrieves nothing
)

// retrieveLevel computes R(q) restricted to the universe in dense space: the
// universe documents containing every expansion term of q, as word-wise
// intersections of the term bitmaps. The user query's own terms are
// satisfied by construction (every universe document is a result of the user
// query), so only terms beyond the user query filter; a term outside the
// pool retrieves nothing (we only expand with pool keywords; the kwForeign
// level guards foreign queries). Intersections apply in q.Terms order
// exactly as the uncached implementation did — the per-level buffers only
// memoize the identical word-wise results.
//
// The returned set aliases the resolver's level buffers (or allB for an
// empty query): it is valid only until the resolver — checked out of
// p.resolver and returned here — is stored back. Callers must treat it as
// read-only, then Store the resolver.
func (p *Problem) retrieveLevel(q search.Query) (*queryResolver, document.BitSet) {
	rv := p.resolver.Swap(nil)
	if rv == nil {
		rv = &queryResolver{hint: -1}
	}
	terms := q.Terms
	n := len(rv.terms)
	if len(terms) < n {
		n = len(terms)
	}
	l := 0
	for l < n && rv.terms[l] == terms[l] {
		l++
	}
	rv.terms = append(rv.terms[:l], terms[l:]...)
	for i := l; i < len(terms); i++ {
		t := terms[i]
		ki := kwForeign
		if p.UserQuery.Contains(t) {
			ki = kwSkip
		} else if h := rv.hint + 1; h > 0 && int(h) < len(p.Pool) && p.Pool[h] == t {
			ki = h
			rv.hint = h
		} else if k, ok := p.kwID(t); ok {
			ki = k
			rv.hint = k
		}
		if i >= len(rv.bufs) {
			rv.bufs = append(rv.bufs, document.NewBitSet(p.nDocs()))
		}
		buf := rv.bufs[i]
		prev := p.allB
		if i > 0 {
			prev = rv.bufs[i-1]
		}
		switch ki {
		case kwSkip:
			buf.CopyFrom(prev)
		case kwForeign:
			buf.Clear()
		default:
			buf.AndOf(prev, p.containB[ki])
		}
	}
	if len(terms) == 0 {
		return rv, p.allB
	}
	return rv, rv.bufs[len(terms)-1]
}

// retrieveBits is retrieveLevel with an owned (cloned) result, for callers
// that keep the set.
func (p *Problem) retrieveBits(q search.Query) document.BitSet {
	rv, lv := p.retrieveLevel(q)
	r := lv.Clone()
	p.resolver.Store(rv)
	return r
}

// Retrieve computes R(q) restricted to the universe as a DocSet.
func (p *Problem) Retrieve(q search.Query) document.DocSet {
	return p.bitsToDocSet(p.retrieveBits(q))
}

// measureBits evaluates a dense retrieved set against the cluster.
func (p *Problem) measureBits(r document.BitSet) eval.PRF {
	return eval.MeasureBits(r, p.cB, p.w, p.sC)
}

// FMeasure evaluates a candidate expanded query against the cluster. The
// measure reads straight off the cached level buffer — no per-evaluation
// clone — which is safe because the resolver stays checked out until the
// measure is done.
func (p *Problem) FMeasure(q search.Query) float64 {
	rv, lv := p.retrieveLevel(q)
	f := p.measureBits(lv).F
	p.resolver.Store(rv)
	return f
}

// Measure returns full precision/recall/F of a candidate expanded query.
func (p *Problem) Measure(q search.Query) eval.PRF {
	rv, lv := p.retrieveLevel(q)
	m := p.measureBits(lv)
	p.resolver.Store(rv)
	return m
}

// retrieveORBits computes R(q) under OR semantics restricted to the
// universe: the universe documents containing at least one of q's terms.
// The AND-path resolution cache does not apply (its levels memoize
// intersections), and the OR expander is not on the delta-F hot path.
func (p *Problem) retrieveORBits(q search.Query) document.BitSet {
	out := document.NewBitSet(p.nDocs())
	for _, t := range q.Terms {
		if ki, ok := p.kwID(t); ok {
			out.Or(p.containB[ki])
		}
	}
	return out
}

// RetrieveOR computes R(q) under OR semantics restricted to the universe.
func (p *Problem) RetrieveOR(q search.Query) document.DocSet {
	return p.bitsToDocSet(p.retrieveORBits(q))
}

// MeasureOR evaluates a candidate query under OR semantics.
func (p *Problem) MeasureOR(q search.Query) eval.PRF {
	return p.measureBits(p.retrieveORBits(q))
}

// S is the total ranking score of a set (Section 2's S(·)).
func (p *Problem) S(set document.DocSet) float64 { return p.Weights.S(set) }

// Expanded is the outcome of one expansion run.
type Expanded struct {
	Query search.Query
	// PRF is the query's precision/recall/F against the cluster.
	PRF eval.PRF
	// Iterations counts refinement steps (algorithm-specific meaning).
	Iterations int
	// Evaluations counts how many candidate queries had their F-measure
	// (or benefit/cost table) computed — the work metric the efficiency
	// comparison of Section 5.3 turns on.
	Evaluations int
}

// Expander generates an expanded query for one Problem. ISKR, PEBC and the
// F-measure variant all implement it, as do the baselines adapted to
// clusters.
type Expander interface {
	// Expand solves Definition 2.2 for the problem.
	Expand(p *Problem) Expanded
	// Name identifies the method in reports ("ISKR", "PEBC", ...).
	Name() string
}
