// Package core implements the paper's primary contribution: generating an
// expanded query for each cluster of keyword-search results such that the
// expanded query's result set is as close to the cluster as possible
// (Definition 2.2), plus the full QEC problem over all clusters
// (Definition 2.1). The two published algorithms — ISKR (Section 3) and
// PEBC (Section 4) — are implemented here, along with the F-measure ISKR
// variant and the rejected PEBC keyword-selection strategies (§4.1, §4.2)
// used for ablation.
package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

// Problem is one instance of Definition 2.2: a user query, a target cluster
// C, the set U of results in all other clusters, and optional ranking
// weights. All candidate keywords and incidence structures are precomputed
// so the algorithms can evaluate R(q) restricted to the universe cheaply.
type Problem struct {
	UserQuery search.Query
	C         document.DocSet // the cluster (ground truth)
	U         document.DocSet // results in all other clusters
	Universe  document.DocSet // C ∪ U
	Weights   eval.Weights    // nil = unranked

	// Pool is the candidate keyword vocabulary (the paper's setup: the
	// top-20% of result words by tfidf), excluding the user query's own
	// terms. Sorted for determinism.
	Pool []string

	// contain[k] is the set of universe documents containing keyword k.
	// E(k) ∩ Universe (the documents k eliminates) is its complement.
	contain map[string]document.DocSet

	// docTerms enumerates the distinct terms of a universe document that
	// are in Pool (used by PEBC: "each distinct keyword k ∉ r").
	docTerms map[document.DocID][]string

	// Cached benefit/cost/elimination-count of every pool keyword against
	// the *unrefined* query (R(q) = Universe), computed once and cloned by
	// each PEBC partial-elimination run.
	baseOnce    sync.Once
	baseBenefit map[string]float64
	baseCost    map[string]float64
	baseCount   map[string]int
}

// baseTables lazily computes the initial benefit/cost/count tables.
func (p *Problem) baseTables() (map[string]float64, map[string]float64, map[string]int) {
	p.baseOnce.Do(func() {
		p.baseBenefit = make(map[string]float64, len(p.Pool))
		p.baseCost = make(map[string]float64, len(p.Pool))
		p.baseCount = make(map[string]int, len(p.Pool))
		universe := p.Universe.IDs() // sorted: deterministic accumulation
		for _, k := range p.Pool {
			contain := p.contain[k]
			var b, c float64
			n := 0
			for _, id := range universe {
				if contain.Contains(id) {
					continue
				}
				n++
				w := weightOf(p, id)
				if p.U.Contains(id) {
					b += w
				} else {
					c += w
				}
			}
			p.baseBenefit[k], p.baseCost[k], p.baseCount[k] = b, c, n
		}
	})
	return p.baseBenefit, p.baseCost, p.baseCount
}

// PoolOptions configures candidate-keyword selection.
type PoolOptions struct {
	// TopFraction keeps this fraction of the distinct result terms, ranked
	// by summed tfidf over the universe (paper: 0.20).
	TopFraction float64
	// MinKeywords is a floor so tiny result sets keep a usable pool.
	MinKeywords int
	// MaxKeywords caps the pool (0 = no cap).
	MaxKeywords int
}

// DefaultPoolOptions mirrors the paper's experimental setup.
func DefaultPoolOptions() PoolOptions {
	return PoolOptions{TopFraction: 0.20, MinKeywords: 10}
}

// NewProblem assembles a Problem from the index, the user query, the target
// cluster and the other-results set. weights may be nil.
func NewProblem(idx *index.Index, userQuery search.Query, c, u document.DocSet,
	weights eval.Weights, opts PoolOptions) *Problem {

	p := &Problem{
		UserQuery: userQuery,
		C:         c,
		U:         u,
		Universe:  c.Union(u),
		Weights:   weights,
		contain:   make(map[string]document.DocSet),
		docTerms:  make(map[document.DocID][]string),
	}

	// Score every distinct term of the universe by summed tfidf.
	type termScore struct {
		term  string
		score float64
	}
	// Accumulate in sorted document order so the sums (and hence the pool
	// cut) are bit-identical across runs. The aligned DocTermFreqs supplies
	// each TF directly (no posting-list re-lookup per term) and the IDF of
	// a term is computed once per problem rather than once per occurrence.
	scores := make(map[string]float64)
	idfs := make(map[string]float64)
	for _, id := range p.Universe.IDs() {
		terms := idx.DocTerms(id)
		freqs := idx.DocTermFreqs(id)
		for i, term := range terms {
			if userQuery.Contains(term) {
				continue
			}
			idf, ok := idfs[term]
			if !ok {
				idf = idx.IDF(term)
				idfs[term] = idf
			}
			scores[term] += float64(freqs[i]) * idf
		}
	}
	ranked := make([]termScore, 0, len(scores))
	for term, s := range scores {
		ranked = append(ranked, termScore{term, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].term < ranked[j].term
	})

	keep := int(math.Ceil(opts.TopFraction * float64(len(ranked))))
	if keep < opts.MinKeywords {
		keep = opts.MinKeywords
	}
	if opts.MaxKeywords > 0 && keep > opts.MaxKeywords {
		keep = opts.MaxKeywords
	}
	if keep > len(ranked) {
		keep = len(ranked)
	}
	p.Pool = make([]string, keep)
	for i := 0; i < keep; i++ {
		p.Pool[i] = ranked[i].term
	}
	sort.Strings(p.Pool)

	inPool := make(map[string]struct{}, len(p.Pool))
	for _, term := range p.Pool {
		inPool[term] = struct{}{}
	}
	for _, term := range p.Pool {
		p.contain[term] = document.DocSet{}
	}
	for id := range p.Universe {
		var mine []string
		for _, term := range idx.DocTerms(id) {
			if _, ok := inPool[term]; ok {
				p.contain[term].Add(id)
				mine = append(mine, term)
			}
		}
		p.docTerms[id] = mine
	}
	return p
}

// NewProblemFromSets assembles a Problem directly from keyword→document
// incidence, bypassing the index. contain maps each candidate keyword to the
// set of universe documents containing it; every universe document is
// assumed to contain the user query's own keywords (it is one of its
// results). Used by tests (to encode the paper's worked examples exactly)
// and by callers with non-index substrates.
func NewProblemFromSets(userQuery search.Query, c, u document.DocSet,
	weights eval.Weights, contain map[string]document.DocSet) *Problem {

	p := &Problem{
		UserQuery: userQuery,
		C:         c,
		U:         u,
		Universe:  c.Union(u),
		Weights:   weights,
		contain:   make(map[string]document.DocSet, len(contain)),
		docTerms:  make(map[document.DocID][]string),
	}
	p.Pool = make([]string, 0, len(contain))
	for k, set := range contain {
		p.Pool = append(p.Pool, k)
		p.contain[k] = set.Intersect(p.Universe)
	}
	sort.Strings(p.Pool)
	for id := range p.Universe {
		var mine []string
		for _, k := range p.Pool {
			if p.contain[k].Contains(id) {
				mine = append(mine, k)
			}
		}
		p.docTerms[id] = mine
	}
	return p
}

// Contains reports whether universe document id contains keyword k. Keywords
// outside the pool are reported as not contained (they are never candidates).
func (p *Problem) Contains(id document.DocID, k string) bool {
	set, ok := p.contain[k]
	return ok && set.Contains(id)
}

// ContainSet returns the universe documents containing pool keyword k.
func (p *Problem) ContainSet(k string) document.DocSet { return p.contain[k] }

// DocPoolTerms returns the pool keywords present in universe document id.
func (p *Problem) DocPoolTerms(id document.DocID) []string { return p.docTerms[id] }

// Retrieve computes R(q) restricted to the universe: the universe documents
// containing every expansion term of q. The user query's own terms are
// satisfied by construction (every universe document is a result of the user
// query), so only terms beyond the user query filter.
func (p *Problem) Retrieve(q search.Query) document.DocSet {
	r := p.Universe.Clone()
	for _, term := range q.Terms {
		if p.UserQuery.Contains(term) {
			continue
		}
		set, ok := p.contain[term]
		if !ok {
			// A term outside the pool retrieves nothing (we only expand
			// with pool keywords; this branch guards foreign queries).
			return document.DocSet{}
		}
		for id := range r {
			if !set.Contains(id) {
				r.Remove(id)
			}
		}
	}
	return r
}

// FMeasure evaluates a candidate expanded query against the cluster.
func (p *Problem) FMeasure(q search.Query) float64 {
	return eval.Measure(p.Retrieve(q), p.C, p.Weights).F
}

// Measure returns full precision/recall/F of a candidate expanded query.
func (p *Problem) Measure(q search.Query) eval.PRF {
	return eval.Measure(p.Retrieve(q), p.C, p.Weights)
}

// RetrieveOR computes R(q) under OR semantics restricted to the universe:
// the universe documents containing at least one of q's terms.
func (p *Problem) RetrieveOR(q search.Query) document.DocSet {
	out := document.DocSet{}
	for _, t := range q.Terms {
		for id := range p.contain[t] {
			out.Add(id)
		}
	}
	return out
}

// MeasureOR evaluates a candidate query under OR semantics.
func (p *Problem) MeasureOR(q search.Query) eval.PRF {
	return eval.Measure(p.RetrieveOR(q), p.C, p.Weights)
}

// S is the total ranking score of a set (Section 2's S(·)).
func (p *Problem) S(set document.DocSet) float64 { return p.Weights.S(set) }

// Expanded is the outcome of one expansion run.
type Expanded struct {
	Query search.Query
	// PRF is the query's precision/recall/F against the cluster.
	PRF eval.PRF
	// Iterations counts refinement steps (algorithm-specific meaning).
	Iterations int
	// Evaluations counts how many candidate queries had their F-measure
	// (or benefit/cost table) computed — the work metric the efficiency
	// comparison of Section 5.3 turns on.
	Evaluations int
}

// Expander generates an expanded query for one Problem. ISKR, PEBC and the
// F-measure variant all implement it, as do the baselines adapted to
// clusters.
type Expander interface {
	// Expand solves Definition 2.2 for the problem.
	Expand(p *Problem) Expanded
	// Name identifies the method in reports ("ISKR", "PEBC", ...).
	Name() string
}
