package core

import "repro/internal/search"

// FMeasureVariant is the comparison algorithm of Section 5.1 item (4): the
// ISKR loop with the value of a keyword taken as the delta F-measure of the
// query after adding/removing it. More accurate per step than benefit/cost,
// but after every accepted step the values of *all* keywords must be
// recomputed (each requiring a full result-set evaluation), which is why the
// paper reports it over an order of magnitude slower (Figure 6).
type FMeasureVariant struct {
	// MaxIterations is a termination safeguard; 0 means 2·|Pool|+16.
	MaxIterations int
}

// Name implements Expander.
func (a *FMeasureVariant) Name() string { return "F-measure" }

// Expand implements Expander.
func (a *FMeasureVariant) Expand(p *Problem) Expanded {
	q := p.UserQuery
	f := p.FMeasure(q)
	evals := 1

	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 2*len(p.Pool) + 16
	}

	iterations := 0
	for iterations < maxIter {
		bestQ, bestF := q, f
		// Try adding every pool keyword not in q. The candidate reuses one
		// scratch term slice — only its last slot changes per keyword, which
		// also keeps the per-candidate resolution cache on its prefix-hit
		// fast path — and is cloned only when it becomes the new best.
		cand := search.Query{Terms: make([]string, len(q.Terms)+1)}
		copy(cand.Terms, q.Terms)
		for _, k := range p.Pool {
			if q.Contains(k) {
				continue
			}
			cand.Terms[len(q.Terms)] = k
			evals++
			if cf := p.FMeasure(cand); approxGreater(cf, bestF) {
				bestQ = search.Query{Terms: append([]string(nil), cand.Terms...)}
				bestF = cf
			}
		}
		// Try removing every expansion keyword.
		for _, k := range q.Terms {
			if p.UserQuery.Contains(k) {
				continue
			}
			cand := q.Without(k)
			evals++
			if cf := p.FMeasure(cand); approxGreater(cf, bestF) {
				bestQ, bestF = cand, cf
			}
		}
		if !approxGreater(bestF, f) {
			break // no single add/remove improves F
		}
		q, f = bestQ, bestF
		iterations++
	}
	return Expanded{
		Query:       q,
		PRF:         p.Measure(q),
		Iterations:  iterations,
		Evaluations: evals,
	}
}
