package core

import (
	"math"

	"repro/internal/document"
	"repro/internal/search"
)

// ORISKR solves Definition 2.2 under OR semantics — the variant the paper's
// Section 2 notes is "essentially the identical problem" (its appendix
// discussion). Under OR, a result matches a query when it contains *any*
// keyword, so every universe document already matches the user query and
// refinement cannot shrink the result set by adding terms. The OR-expanded
// query is therefore built from scratch for the cluster: keywords are
// greedily added whose newly covered cluster mass (benefit) outweighs the
// newly covered other-cluster mass (cost), with the dual removal move, and
// the same value>1 stopping rule. The returned query's terms are offered
// *instead of* the user query (it is presented alongside the original, as
// the appendix's OR formulation implies).
type ORISKR struct {
	// MaxIterations bounds refinement; 0 means 4·|Pool|+16.
	MaxIterations int
}

// Name implements Expander.
func (a *ORISKR) Name() string { return "OR-ISKR" }

// Expand implements Expander. The result's PRF is computed under OR
// retrieval within the universe. All coverage arithmetic is word-wise over
// the problem's dense ID space.
func (a *ORISKR) Expand(p *Problem) Expanded {
	q := search.NewQuery()
	covered := document.NewBitSet(p.nDocs()) // R(q) under OR
	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*len(p.Pool) + 16
	}
	cbw := p.cB.Words()
	ubw := p.uB.Words()
	evals := 0
	iterations := 0
	for iterations < maxIter {
		bestKi, bestK, bestV, bestAdd := -1, "", math.Inf(-1), true
		// Additions: benefit = newly covered C mass, cost = newly covered
		// U mass.
		for ki, k := range p.Pool {
			if q.Contains(k) {
				continue
			}
			var b, c float64
			for wi, kw := range p.containB[ki].Words() {
				x := kw &^ covered.Words()[wi]
				if x == 0 {
					continue
				}
				b = p.accum(b, wi, x&cbw[wi])
				c = p.accum(c, wi, x&^cbw[wi])
			}
			evals++
			if b == 0 {
				continue
			}
			if v := value(b, c); approxGreater(v, bestV) ||
				(approxEqual(v, bestV) && bestAdd && (bestKi < 0 || ki < bestKi)) {
				bestKi, bestK, bestV, bestAdd = ki, k, v, true
			}
		}
		// Removals: benefit = uncovered U mass, cost = uncovered C mass —
		// where "uncovered" means covered only by this keyword.
		for _, k := range q.Terms {
			other := document.NewBitSet(p.nDocs())
			for _, t := range q.Terms {
				if t == k {
					continue
				}
				if ti, ok := p.kwID(t); ok {
					other.Or(p.containB[ti])
				}
			}
			kid, _ := p.kwID(k)
			ki := int(kid)
			var b, c float64
			for wi, kw := range p.containB[ki].Words() {
				x := kw &^ other.Words()[wi]
				if x == 0 {
					continue
				}
				b = p.accum(b, wi, x&ubw[wi])
				c = p.accum(c, wi, x&^ubw[wi])
			}
			evals++
			if v := value(b, c); approxGreater(v, bestV) {
				bestKi, bestK, bestV, bestAdd = ki, k, v, false
			}
		}
		if !(bestV > 1) || bestKi < 0 {
			break
		}
		iterations++
		if bestAdd {
			q = q.With(bestK)
			covered.Or(p.containB[bestKi])
		} else {
			q = q.Without(bestK)
			covered = p.retrieveORBits(q)
		}
	}
	prf := p.MeasureOR(q)
	return Expanded{Query: q, PRF: prf, Iterations: iterations, Evaluations: evals}
}
