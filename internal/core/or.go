package core

import (
	"math"

	"repro/internal/document"
	"repro/internal/search"
)

// ORISKR solves Definition 2.2 under OR semantics — the variant the paper's
// Section 2 notes is "essentially the identical problem" (its appendix
// discussion). Under OR, a result matches a query when it contains *any*
// keyword, so every universe document already matches the user query and
// refinement cannot shrink the result set by adding terms. The OR-expanded
// query is therefore built from scratch for the cluster: keywords are
// greedily added whose newly covered cluster mass (benefit) outweighs the
// newly covered other-cluster mass (cost), with the dual removal move, and
// the same value>1 stopping rule. The returned query's terms are offered
// *instead of* the user query (it is presented alongside the original, as
// the appendix's OR formulation implies).
type ORISKR struct {
	// MaxIterations bounds refinement; 0 means 4·|Pool|+16.
	MaxIterations int
}

// Name implements Expander.
func (a *ORISKR) Name() string { return "OR-ISKR" }

// Expand implements Expander. The result's PRF is computed under OR
// retrieval within the universe.
func (a *ORISKR) Expand(p *Problem) Expanded {
	q := search.NewQuery()
	covered := document.DocSet{} // R(q) under OR
	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*len(p.Pool) + 16
	}
	evals := 0
	iterations := 0
	for iterations < maxIter {
		bestK, bestV, bestAdd := "", math.Inf(-1), true
		// Additions: benefit = newly covered C mass, cost = newly covered
		// U mass.
		for _, k := range p.Pool {
			if q.Contains(k) {
				continue
			}
			var b, c float64
			for id := range p.ContainSet(k) {
				if covered.Contains(id) {
					continue
				}
				w := weightOf(p, id)
				if p.C.Contains(id) {
					b += w
				} else {
					c += w
				}
			}
			evals++
			if b == 0 {
				continue
			}
			if v := value(b, c); approxGreater(v, bestV) ||
				(approxEqual(v, bestV) && bestAdd && (bestK == "" || k < bestK)) {
				bestK, bestV, bestAdd = k, v, true
			}
		}
		// Removals: benefit = uncovered U mass, cost = uncovered C mass —
		// where "uncovered" means covered only by this keyword.
		for _, k := range q.Terms {
			var b, c float64
			for id := range p.ContainSet(k) {
				if a.coveredByOther(p, q, k, id) {
					continue
				}
				w := weightOf(p, id)
				if p.U.Contains(id) {
					b += w
				} else {
					c += w
				}
			}
			evals++
			if v := value(b, c); approxGreater(v, bestV) {
				bestK, bestV, bestAdd = k, v, false
			}
		}
		if !(bestV > 1) || bestK == "" {
			break
		}
		iterations++
		if bestAdd {
			q = q.With(bestK)
			for id := range p.ContainSet(bestK) {
				covered.Add(id)
			}
		} else {
			q = q.Without(bestK)
			covered = p.RetrieveOR(q)
		}
	}
	prf := p.MeasureOR(q)
	return Expanded{Query: q, PRF: prf, Iterations: iterations, Evaluations: evals}
}

// coveredByOther reports whether universe doc id is covered by a term of q
// other than k.
func (a *ORISKR) coveredByOther(p *Problem, q search.Query, k string, id document.DocID) bool {
	for _, t := range q.Terms {
		if t == k {
			continue
		}
		if p.ContainSet(t).Contains(id) {
			return true
		}
	}
	return false
}
