package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

// randomInstance builds the raw material of a random Definition 2.2
// instance with nc cluster results, nu other results and a keyword
// vocabulary of size nk.
func randomInstance(seed int64, nc, nu, nk int, weighted bool) (c, u document.DocSet,
	contain map[string]document.DocSet, w eval.Weights) {

	rng := rand.New(rand.NewSource(seed))
	c, u = document.DocSet{}, document.DocSet{}
	for i := 0; i < nc; i++ {
		c.Add(document.DocID(i))
	}
	for i := 0; i < nu; i++ {
		u.Add(document.DocID(1000 + i))
	}
	universe := c.Union(u)
	ids := universe.IDs() // iterate deterministically while consuming rng
	contain = map[string]document.DocSet{}
	for k := 0; k < nk; k++ {
		name := string(rune('a'+k%26)) + string(rune('0'+k/26))
		set := document.DocSet{}
		for _, id := range ids {
			// Bias: cluster docs share keywords more often.
			pIn := 0.35
			if c.Contains(id) {
				pIn = 0.6
			}
			if rng.Float64() < pIn {
				set.Add(id)
			}
		}
		contain[name] = set
	}
	if weighted {
		w = eval.Weights{}
		for _, id := range ids {
			w[id] = 0.5 + rng.Float64()*4
		}
	}
	return c, u, contain, w
}

// randomProblem assembles a random Definition 2.2 problem.
func randomProblem(seed int64, nc, nu, nk int, weighted bool) *Problem {
	c, u, contain, w := randomInstance(seed, nc, nu, nk, weighted)
	return NewProblemFromSets(search.NewQuery("seed"), c, u, w, contain)
}

// prfClose compares PRF structs with a tolerance for floating-point
// summation order (rank weights are accumulated in map iteration order).
func prfClose(a, b eval.PRF) bool {
	const eps = 1e-9
	return math.Abs(a.Precision-b.Precision) < eps &&
		math.Abs(a.Recall-b.Recall) < eps && math.Abs(a.F-b.F) < eps
}

func TestValueConventions(t *testing.T) {
	if value(0, 0) != 0 {
		t.Error("value(0,0) should be 0")
	}
	if !math.IsInf(value(3, 0), 1) {
		t.Error("value(3,0) should be +Inf")
	}
	if value(6, 4) != 1.5 {
		t.Error("value(6,4) should be 1.5")
	}
}

func TestRetrieveIsAntiMonotone(t *testing.T) {
	p := randomProblem(1, 10, 15, 8, false)
	q := p.UserQuery
	prev := p.Retrieve(q)
	if !prev.Equal(p.Universe) {
		t.Fatal("R(user query) must be the whole universe")
	}
	for _, k := range p.Pool[:4] {
		q = q.With(k)
		cur := p.Retrieve(q)
		if cur.Subtract(prev).Len() != 0 {
			t.Fatalf("adding %q grew the result set", k)
		}
		prev = cur
	}
}

func TestRetrieveForeignTermEmpty(t *testing.T) {
	p := randomProblem(2, 5, 5, 4, false)
	r := p.Retrieve(p.UserQuery.With("not-in-pool"))
	if r.Len() != 0 {
		t.Errorf("foreign term retrieved %d docs", r.Len())
	}
}

func TestISKRTerminatesAndOutputsValidQuery(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := randomProblem(seed, 8+int(seed%5), 12, 10, seed%2 == 0)
		got := (&ISKR{}).Expand(p)
		if !got.Query.Contains("seed") {
			t.Fatalf("seed %d: expanded query lost the user query term", seed)
		}
		for _, term := range got.Query.Terms {
			if term == "seed" {
				continue
			}
			if _, ok := p.kwID(term); !ok {
				t.Fatalf("seed %d: expanded term %q not in pool", seed, term)
			}
		}
		prf := p.Measure(got.Query)
		if !prfClose(prf, got.PRF) {
			t.Fatalf("seed %d: reported PRF %+v != recomputed %+v", seed, got.PRF, prf)
		}
	}
}

func TestISKRKeepBestNeverBelowSeed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := randomProblem(seed, 10, 14, 12, false)
		seedF := p.FMeasure(p.UserQuery)
		got := (&ISKR{KeepBest: true}).Expand(p)
		if got.PRF.F < seedF-1e-12 {
			t.Fatalf("seed %d: KeepBest F %v below seed F %v", seed, got.PRF.F, seedF)
		}
	}
}

func TestISKRDeterministic(t *testing.T) {
	p1 := randomProblem(7, 10, 12, 10, false)
	p2 := randomProblem(7, 10, 12, 10, false)
	a := (&ISKR{}).Expand(p1)
	b := (&ISKR{}).Expand(p2)
	if a.Query.String() != b.Query.String() || a.PRF != b.PRF {
		t.Errorf("nondeterministic: %v vs %v", a.Query.Terms, b.Query.Terms)
	}
}

func TestISKRPerfectSeparationFindsPerfectQuery(t *testing.T) {
	// One keyword exactly selects the cluster: ISKR must find F=1.
	c := document.NewDocSet(1, 2, 3)
	u := document.NewDocSet(10, 11, 12, 13)
	contain := map[string]document.DocSet{
		"golden": c.Clone(),                     // exactly the cluster
		"noise1": document.NewDocSet(1, 10, 11), // partial
		"noise2": document.NewDocSet(2, 3, 12),  // partial
	}
	p := NewProblemFromSets(search.NewQuery("q"), c, u, nil, contain)
	got := (&ISKR{}).Expand(p)
	if got.PRF.F != 1 {
		t.Errorf("F = %v, want 1 (golden keyword available); query = %v",
			got.PRF.F, got.Query.Terms)
	}
	if !got.Query.Contains("golden") {
		t.Errorf("query = %v, want golden included", got.Query.Terms)
	}
}

func TestPEBCTerminatesAndOutputsValidQuery(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := randomProblem(seed, 9, 13, 10, seed%2 == 1)
		got := (&PEBC{Seed: seed}).Expand(p)
		if !got.Query.Contains("seed") {
			t.Fatalf("seed %d: lost user query term", seed)
		}
		if !prfClose(got.PRF, p.Measure(got.Query)) {
			t.Fatalf("seed %d: PRF mismatch", seed)
		}
		if got.Iterations == 0 || got.Evaluations == 0 {
			t.Fatalf("seed %d: no work recorded", seed)
		}
	}
}

func TestPEBCNeverWorseThanSeedQuery(t *testing.T) {
	// PEBC's x=0 sample is the unexpanded query, so the best sample can
	// never score below it.
	for seed := int64(0); seed < 20; seed++ {
		p := randomProblem(100+seed, 10, 15, 12, false)
		seedF := p.FMeasure(p.UserQuery)
		got := (&PEBC{Seed: seed}).Expand(p)
		if got.PRF.F < seedF-1e-12 {
			t.Fatalf("seed %d: PEBC F %v < seed F %v", seed, got.PRF.F, seedF)
		}
	}
}

func TestPEBCDeterministicPerSeed(t *testing.T) {
	p := randomProblem(3, 10, 12, 10, false)
	a := (&PEBC{Seed: 5}).Expand(p)
	b := (&PEBC{Seed: 5}).Expand(randomProblem(3, 10, 12, 10, false))
	if a.Query.String() != b.Query.String() {
		t.Errorf("nondeterministic per seed: %v vs %v", a.Query.Terms, b.Query.Terms)
	}
}

func TestPEBCPerfectSeparation(t *testing.T) {
	c := document.NewDocSet(1, 2, 3, 4)
	u := document.NewDocSet(10, 11, 12)
	contain := map[string]document.DocSet{
		"golden": c.Clone(),
		"half":   document.NewDocSet(1, 2, 10),
	}
	p := NewProblemFromSets(search.NewQuery("q"), c, u, nil, contain)
	got := (&PEBC{Seed: 1}).Expand(p)
	if got.PRF.F != 1 {
		t.Errorf("F = %v, want 1; query = %v", got.PRF.F, got.Query.Terms)
	}
}

func TestPEBCSampleTargets(t *testing.T) {
	a := &PEBC{Segments: 4}
	got := a.SampleTargets()
	want := []float64{0, 25, 50, 75, 100}
	if len(got) != len(want) {
		t.Fatalf("targets = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
}

func TestPEBCStrategyNames(t *testing.T) {
	if (&PEBC{}).Name() != "PEBC" {
		t.Error("default name")
	}
	if (&PEBC{Strategy: SelectFixedOrder}).Name() != "PEBC-fixed-order" {
		t.Error("fixed-order name")
	}
	if (&PEBC{Strategy: SelectSubset}).Name() != "PEBC-subset" {
		t.Error("subset name")
	}
}

func TestFMeasureVariantMonotoneImprovement(t *testing.T) {
	// Unlike ISKR, the F-measure variant accepts only F-improving steps, so
	// its result is always >= the seed query's F.
	for seed := int64(0); seed < 15; seed++ {
		p := randomProblem(200+seed, 9, 12, 10, false)
		seedF := p.FMeasure(p.UserQuery)
		got := (&FMeasureVariant{}).Expand(p)
		if got.PRF.F < seedF-1e-12 {
			t.Fatalf("seed %d: F-variant F %v < seed %v", seed, got.PRF.F, seedF)
		}
	}
}

func TestFMeasureVariantRescansEveryKeywordPerStep(t *testing.T) {
	// The efficiency claim of Section 5.3 rests on the F-measure method
	// re-evaluating every candidate per accepted step (each evaluation being
	// a full result-set computation), while ISKR touches only keywords
	// absent from some delta result.
	p := randomProblem(42, 40, 60, 60, false)
	fm := (&FMeasureVariant{}).Expand(p)
	poolSize := len(p.Pool)
	// Every iteration (plus the final non-improving scan) evaluates at
	// least the whole addition pool minus terms already in the query.
	minEvals := (fm.Iterations + 1) * (poolSize - fm.Iterations - 1)
	if fm.Evaluations < minEvals {
		t.Errorf("F-measure evals %d < expected full-rescan bound %d",
			fm.Evaluations, minEvals)
	}

	// ISKR: a keyword contained in every document is never affected by any
	// delta, so after the initial scan it must never be re-evaluated.
	// Verify by comparing against the full-recompute upper bound.
	c2, u2, contain2, _ := randomInstance(42, 40, 60, 60, false)
	contain2["ubiquitous"] = c2.Union(u2)
	p2 := NewProblemFromSets(search.NewQuery("seed"), c2, u2, nil, contain2)
	is := (&ISKR{}).Expand(p2)
	fullRecompute := len(p2.Pool) + is.Iterations*(len(p2.Pool)+8)
	if is.Evaluations >= fullRecompute {
		t.Errorf("ISKR evals %d not below full-recompute bound %d (iters %d)",
			is.Evaluations, fullRecompute, is.Iterations)
	}
}

func TestSolveAggregatesEq1(t *testing.T) {
	p1 := randomProblem(1, 8, 8, 8, false)
	p2 := randomProblem(2, 8, 8, 8, false)
	res := Solve(&ISKR{}, []*Problem{p1, p2})
	if res.Method != "ISKR" || len(res.Expansions) != 2 {
		t.Fatalf("res = %+v", res)
	}
	want := eval.Score(res.FMeasures())
	if math.Abs(res.Score-want) > 1e-12 {
		t.Errorf("Score = %v, want %v", res.Score, want)
	}
	if len(res.Queries()) != 2 {
		t.Error("Queries length")
	}
	if res.TotalEvaluations() <= 0 {
		t.Error("TotalEvaluations")
	}
}

func TestBuildProblemsPartition(t *testing.T) {
	// Index a tiny corpus, cluster it, and check the problems partition the
	// universe correctly.
	corpus := document.NewCorpus()
	texts := []string{
		"apple fruit orchard juice", "apple fruit tree harvest",
		"apple pie fruit bake", "apple computer store mac",
		"apple iphone store launch", "apple software mac laptop",
	}
	var ids []document.DocID
	for _, txt := range texts {
		ids = append(ids, corpus.AddText("", txt))
	}
	idx := index.Build(corpus, analysis.Simple())
	cl := cluster.KMeans(idx, ids, cluster.Options{K: 2, Seed: 1, PlusPlus: true})
	problems := BuildProblems(idx, search.NewQuery("apple"), cl,
		nil, DefaultPoolOptions())
	if len(problems) != cl.K() {
		t.Fatalf("built %d problems for %d clusters", len(problems), cl.K())
	}
	for i, p := range problems {
		if p.C.Intersect(p.U).Len() != 0 {
			t.Errorf("problem %d: C and U overlap", i)
		}
		if p.Universe.Len() != len(ids) {
			t.Errorf("problem %d: universe %d docs, want %d", i, p.Universe.Len(), len(ids))
		}
		if len(p.Pool) == 0 {
			t.Errorf("problem %d: empty pool", i)
		}
		for _, k := range p.Pool {
			if k == "apple" {
				t.Errorf("problem %d: user query term in pool", i)
			}
		}
	}
}

func TestNewProblemPoolRespectsBounds(t *testing.T) {
	corpus := document.NewCorpus()
	var ids []document.DocID
	words := []string{"w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9", "w10",
		"w11", "w12", "w13", "w14", "w15", "w16", "w17", "w18", "w19", "w20"}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		text := "seed"
		for j := 0; j < 8; j++ {
			text += " " + words[rng.Intn(len(words))]
		}
		ids = append(ids, corpus.AddText("", text))
	}
	idx := index.Build(corpus, analysis.Simple())
	c := document.NewDocSet(ids[:15]...)
	u := document.NewDocSet(ids[15:]...)
	p := NewProblem(idx, search.NewQuery("seed"), c, u, nil,
		PoolOptions{TopFraction: 0.2, MinKeywords: 2, MaxKeywords: 5})
	if len(p.Pool) > 5 {
		t.Errorf("pool %d exceeds max 5", len(p.Pool))
	}
	p2 := NewProblem(idx, search.NewQuery("seed"), c, u, nil,
		PoolOptions{TopFraction: 0.01, MinKeywords: 7})
	if len(p2.Pool) < 7 {
		t.Errorf("pool %d below floor 7", len(p2.Pool))
	}
}

func TestWeightedProblemPrioritizesHighRankResults(t *testing.T) {
	// Two keywords: "heavy" keeps the high-scored half of the cluster,
	// "light" keeps the low-scored half; both eliminate all of U. With rank
	// weights the algorithms must prefer "heavy".
	c := document.NewDocSet(1, 2, 3, 4)
	u := document.NewDocSet(10, 11)
	contain := map[string]document.DocSet{
		"heavy": document.NewDocSet(1, 2),
		"light": document.NewDocSet(3, 4),
	}
	w := eval.Weights{1: 10, 2: 10, 3: 1, 4: 1, 10: 1, 11: 1}
	p := NewProblemFromSets(search.NewQuery("q"), c, u, w, contain)
	got := (&ISKR{}).Expand(p)
	if got.Query.Contains("light") {
		t.Errorf("ISKR chose the low-rank keyword: %v", got.Query.Terms)
	}
	if got.Query.Contains("heavy") {
		// heavy: benefit 2 (u eliminated), cost 2 (light docs) -> weighted:
		// benefit = 2, cost = 2 -> value 1, so it may refuse both; either
		// way "light" (benefit 2, cost 20 -> 0.1) must not be chosen.
		r := p.Retrieve(got.Query)
		if r.Contains(3) || r.Contains(4) {
			t.Error("heavy query should retrieve only the heavy docs")
		}
	}
}
