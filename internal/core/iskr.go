package core

import (
	"math"

	"repro/internal/document"
	"repro/internal/search"
)

// ISKR is the Iterative Single-Keyword Refinement algorithm of Section 3.
// Starting from the user query, it repeatedly adds or removes the keyword
// with the highest benefit/cost ratio (value) and stops when no keyword has
// value > 1. Keyword values are maintained incrementally: after a step, only
// keywords absent from at least one delta result change value, and only
// those are updated.
type ISKR struct {
	// MaxIterations bounds refinement steps as a safeguard against
	// add/remove oscillation (the paper's pseudo code has no such guard;
	// with it, the algorithm provably terminates). 0 means 4·|Pool|+16.
	MaxIterations int
	// DisableRemoval turns off the keyword-removal move (Example 3.2
	// motivates removal; this switch exists for the ablation benchmark).
	DisableRemoval bool
	// KeepBest returns the highest-F query seen during refinement instead
	// of the terminal query. The paper's Algorithm 1 returns the terminal
	// query, which can score *below* the seed query (its own Example
	// 3.1/3.2 run ends at F=6/11 while the unexpanded seed scores 16/26);
	// KeepBest is an extension guaranteeing F(expanded) ≥ F(seed).
	KeepBest bool
}

// Name implements Expander.
func (a *ISKR) Name() string {
	if a.DisableRemoval {
		return "ISKR-noremove"
	}
	return "ISKR"
}

// value computes the benefit/cost ratio with the paper's conventions:
// 0 when both are 0, +Inf when only cost is 0.
func value(benefit, cost float64) float64 {
	if cost == 0 {
		if benefit == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return benefit / cost
}

// approxEqual compares two keyword values with a relative epsilon.
// Historically rank weights were accumulated in map-iteration order, so
// mathematically equal values could differ in their last bits; argmax sites
// treat those as ties (resolved by keyword ID, i.e. lexicographically). The
// dense representation accumulates deterministically, but the epsilon is
// kept so refinement trajectories match the map-era golden outputs.
func approxEqual(a, b float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*scale
}

// approxGreater reports a > b beyond float-accumulation noise.
func approxGreater(a, b float64) bool {
	return !approxEqual(a, b) && a > b
}

// iskrState carries the mutable state of one run, entirely in the problem's
// dense ID space.
type iskrState struct {
	p *Problem
	q search.Query
	r document.BitSet // R(q) within the universe

	// addBenefit/addCost for every pool keyword, indexed by keyword ID;
	// active marks the addition candidates (keywords not currently in q).
	addBenefit []float64
	addCost    []float64
	active     []bool

	evaluations int
}

// Expand implements Expander.
func (a *ISKR) Expand(p *Problem) Expanded {
	nk := len(p.Pool)
	st := &iskrState{
		p:          p,
		q:          p.UserQuery,
		r:          p.allB.Clone(),
		addBenefit: make([]float64, nk),
		addCost:    make([]float64, nk),
		active:     make([]bool, nk),
	}
	// Initial benefit/cost per keyword (Refine lines 2-8):
	// benefit(k) = S(R(q) ∩ U ∩ E(k)), cost(k) = S(R(q) ∩ C ∩ E(k)).
	for ki := 0; ki < nk; ki++ {
		b, c := st.addDeltas(ki)
		st.addBenefit[ki] = b
		st.addCost[ki] = c
		st.active[ki] = true
		st.evaluations++
	}

	if p.Trail != nil {
		p.Trail.Pool = keywordTable(p.Pool, st.addBenefit, st.addCost, nil)
	}

	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*len(p.Pool) + 16
	}

	best := st.q
	bestF := p.FMeasure(st.q)
	iterations := 0
	for iterations < maxIter {
		kind, ki, v := st.bestMove(a.DisableRemoval)
		if !(v > 1) { // stop when value(k) <= 1 (Algorithm 1, line 16)
			break
		}
		iterations++
		if kind == moveAdd {
			st.apply(ki, true)
		} else {
			st.apply(ki, false)
		}
		f := p.FMeasure(st.q)
		if f > bestF {
			bestF = f
			best = st.q
		}
		if p.Trail != nil {
			op := "add"
			if kind == moveRemove {
				op = "remove"
			}
			p.Trail.Steps = append(p.Trail.Steps, StepTrail{
				Op: op, Keyword: p.Pool[ki], Value: v, F: f,
			})
		}
	}
	out := st.q // Algorithm 1 returns the terminal refined query
	if a.KeepBest {
		out = best
	}
	if p.Trail != nil {
		// What each rejected alternative scored: the maintained add table at
		// termination, restricted to keywords outside the returned query.
		p.Trail.Rejected = keywordTable(p.Pool, st.addBenefit, st.addCost,
			func(ki int) bool { return out.Contains(p.Pool[ki]) })
	}
	return Expanded{
		Query:       out,
		PRF:         p.Measure(out),
		Iterations:  iterations,
		Evaluations: st.evaluations,
	}
}

type moveKind int

const (
	moveAdd moveKind = iota
	moveRemove
)

// addDeltas computes from scratch the benefit and cost of adding keyword ki
// to the current query: the weights of the results ki eliminates from U and
// from C. Word-wise: the eliminated set is R(q) &^ contain(ki), split by U
// membership, folded in ascending dense-ID order.
func (st *iskrState) addDeltas(ki int) (benefit, cost float64) {
	cw := st.p.containB[ki].Words()
	uw := st.p.uB.Words()
	for wi, rw := range st.r.Words() {
		x := rw &^ cw[wi]
		if x == 0 {
			continue // ki eliminates nothing in this word
		}
		benefit = st.p.accum(benefit, wi, x&uw[wi])
		cost = st.p.accum(cost, wi, x&^uw[wi])
	}
	return benefit, cost
}

// removeDeltas computes the benefit and cost of removing k from the current
// query. D(k) = R(q\k) \ R(q) are the results that come back; benefit is
// their weight in C, cost their weight in U.
func (st *iskrState) removeDeltas(k string) (benefit, cost float64, delta document.BitSet) {
	delta = st.p.retrieveBits(st.q.Without(k))
	delta.AndNot(st.r)
	cw := st.p.cB.Words()
	for wi, dw := range delta.Words() {
		if dw == 0 {
			continue
		}
		benefit = st.p.accum(benefit, wi, dw&cw[wi])
		cost = st.p.accum(cost, wi, dw&^cw[wi])
	}
	return benefit, cost, delta
}

// bestMove scans the maintained addition values and the (recomputed)
// removal values and returns the best move. Add-moves that would eliminate
// every remaining cluster result are excluded: such a move zeroes recall and
// hence F, so it can never "improve the query" (the paper's stated stopping
// intent), even though its raw benefit/cost ratio may exceed 1. Candidates
// are scanned in keyword-ID (lexicographic) order so approx-tie resolution
// is reproducible.
func (st *iskrState) bestMove(noRemoval bool) (moveKind, int, float64) {
	remainingC := 0.0
	cw := st.p.cB.Words()
	for wi, rw := range st.r.Words() {
		remainingC = st.p.accum(remainingC, wi, rw&cw[wi])
	}
	bestKind, bestKi, bestV := moveAdd, -1, math.Inf(-1)
	for ki := range st.p.Pool {
		if !st.active[ki] {
			continue // already in the query
		}
		if c := st.addCost[ki]; remainingC > 0 && c >= remainingC-1e-9 {
			continue // would empty R(q) ∩ C
		}
		v := value(st.addBenefit[ki], st.addCost[ki])
		if approxGreater(v, bestV) ||
			(approxEqual(v, bestV) && bestKind == moveAdd && bestKi >= 0 && ki < bestKi) {
			bestKind, bestKi, bestV = moveAdd, ki, v
		}
	}
	if !noRemoval {
		for _, k := range st.q.Terms {
			if st.p.UserQuery.Contains(k) {
				continue // never remove original query keywords
			}
			b, c, _ := st.removeDeltas(k)
			st.evaluations++
			if v := value(b, c); approxGreater(v, bestV) {
				ki, _ := st.p.kwID(k)
				bestKind, bestKi, bestV = moveRemove, int(ki), v
			}
		}
	}
	return bestKind, bestKi, bestV
}

// apply performs an add or remove move and incrementally updates the
// maintained addition values: only keywords absent from at least one delta
// result are affected (the Section 3 observation), and for those the delta
// is exactly the weight of the delta results they do not contain.
func (st *iskrState) apply(ki int, add bool) {
	k := st.p.Pool[ki]
	if add {
		// Delta results: D = R(q) ∩ E(k) — results eliminated by k.
		delta := st.r.Clone()
		delta.AndNot(st.p.containB[ki])
		st.q = st.q.With(k)
		st.r.And(st.p.containB[ki])
		st.updateAddValues(delta, -1)
		// k is no longer an addition candidate.
		st.active[ki] = false
	} else {
		_, _, delta := st.removeDeltas(k)
		st.q = st.q.Without(k)
		st.r.Or(delta)
		st.updateAddValues(delta, +1)
		// k becomes an addition candidate again.
		b, c := st.addDeltas(ki)
		st.addBenefit[ki] = b
		st.addCost[ki] = c
		st.active[ki] = true
		st.evaluations++
	}
}

// updateAddValues adjusts maintained addition benefits/costs for the delta
// results entering (sign=+1) or leaving (sign=-1) R(q). A keyword k' is
// affected iff it is absent from at least one delta result; the adjustment
// is the weight of exactly those results.
func (st *iskrState) updateAddValues(delta document.BitSet, sign float64) {
	if delta.Empty() {
		return
	}
	dw := delta.Words()
	uw := st.p.uB.Words()
	for ki := range st.p.Pool {
		if !st.active[ki] {
			continue
		}
		cw := st.p.containB[ki].Words()
		var db, dc float64
		for wi, d := range dw {
			x := d &^ cw[wi]
			if x == 0 {
				continue
			}
			db = st.p.accum(db, wi, x&uw[wi])
			dc = st.p.accum(dc, wi, x&^uw[wi])
		}
		if db != 0 || dc != 0 {
			st.addBenefit[ki] += sign * db
			st.addCost[ki] += sign * dc
			st.evaluations++
		}
	}
}
