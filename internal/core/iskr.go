package core

import (
	"math"

	"repro/internal/document"
	"repro/internal/search"
)

// ISKR is the Iterative Single-Keyword Refinement algorithm of Section 3.
// Starting from the user query, it repeatedly adds or removes the keyword
// with the highest benefit/cost ratio (value) and stops when no keyword has
// value > 1. Keyword values are maintained incrementally: after a step, only
// keywords absent from at least one delta result change value, and only
// those are updated.
type ISKR struct {
	// MaxIterations bounds refinement steps as a safeguard against
	// add/remove oscillation (the paper's pseudo code has no such guard;
	// with it, the algorithm provably terminates). 0 means 4·|Pool|+16.
	MaxIterations int
	// DisableRemoval turns off the keyword-removal move (Example 3.2
	// motivates removal; this switch exists for the ablation benchmark).
	DisableRemoval bool
	// KeepBest returns the highest-F query seen during refinement instead
	// of the terminal query. The paper's Algorithm 1 returns the terminal
	// query, which can score *below* the seed query (its own Example
	// 3.1/3.2 run ends at F=6/11 while the unexpanded seed scores 16/26);
	// KeepBest is an extension guaranteeing F(expanded) ≥ F(seed).
	KeepBest bool
}

// Name implements Expander.
func (a *ISKR) Name() string {
	if a.DisableRemoval {
		return "ISKR-noremove"
	}
	return "ISKR"
}

// value computes the benefit/cost ratio with the paper's conventions:
// 0 when both are 0, +Inf when only cost is 0.
func value(benefit, cost float64) float64 {
	if cost == 0 {
		if benefit == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return benefit / cost
}

// approxEqual compares two keyword values with a relative epsilon. Rank
// weights are accumulated in map-iteration order, so mathematically equal
// values can differ in their last bits between runs; argmax sites must
// treat those as ties (resolved lexicographically) or runs would be
// nondeterministic.
func approxEqual(a, b float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*scale
}

// approxGreater reports a > b beyond float-accumulation noise.
func approxGreater(a, b float64) bool {
	return !approxEqual(a, b) && a > b
}

// iskrState carries the mutable state of one run.
type iskrState struct {
	p *Problem
	q search.Query
	r document.DocSet // R(q) within the universe

	// addBenefit/addCost for every pool keyword not currently in q.
	addBenefit map[string]float64
	addCost    map[string]float64

	evaluations int
}

// Expand implements Expander.
func (a *ISKR) Expand(p *Problem) Expanded {
	st := &iskrState{
		p:          p,
		q:          p.UserQuery,
		r:          p.Universe.Clone(),
		addBenefit: make(map[string]float64, len(p.Pool)),
		addCost:    make(map[string]float64, len(p.Pool)),
	}
	// Initial benefit/cost per keyword (Refine lines 2-8):
	// benefit(k) = S(R(q) ∩ U ∩ E(k)), cost(k) = S(R(q) ∩ C ∩ E(k)).
	for _, k := range p.Pool {
		b, c := st.addDeltas(k)
		st.addBenefit[k] = b
		st.addCost[k] = c
		st.evaluations++
	}

	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*len(p.Pool) + 16
	}

	best := st.q
	bestF := p.FMeasure(st.q)
	iterations := 0
	for iterations < maxIter {
		kind, k, v := st.bestMove(a.DisableRemoval)
		if !(v > 1) { // stop when value(k) <= 1 (Algorithm 1, line 16)
			break
		}
		iterations++
		if kind == moveAdd {
			st.apply(k, true)
		} else {
			st.apply(k, false)
		}
		if f := p.FMeasure(st.q); f > bestF {
			bestF = f
			best = st.q
		}
	}
	out := st.q // Algorithm 1 returns the terminal refined query
	if a.KeepBest {
		out = best
	}
	return Expanded{
		Query:       out,
		PRF:         p.Measure(out),
		Iterations:  iterations,
		Evaluations: st.evaluations,
	}
}

type moveKind int

const (
	moveAdd moveKind = iota
	moveRemove
)

// addDeltas computes from scratch the benefit and cost of adding k to the
// current query: the weights of the results k eliminates from U and from C.
func (st *iskrState) addDeltas(k string) (benefit, cost float64) {
	contain := st.p.ContainSet(k)
	for id := range st.r {
		if contain.Contains(id) {
			continue // k does not eliminate this result
		}
		w := st.weight(id)
		if st.p.U.Contains(id) {
			benefit += w
		} else {
			cost += w
		}
	}
	return benefit, cost
}

// removeDeltas computes the benefit and cost of removing k from the current
// query. D(k) = R(q\k) \ R(q) are the results that come back; benefit is
// their weight in C, cost their weight in U.
func (st *iskrState) removeDeltas(k string) (benefit, cost float64, delta document.DocSet) {
	without := st.q.Without(k)
	rWithout := st.p.Retrieve(without)
	delta = rWithout.Subtract(st.r)
	for id := range delta {
		w := st.weight(id)
		if st.p.C.Contains(id) {
			benefit += w
		} else {
			cost += w
		}
	}
	return benefit, cost, delta
}

func (st *iskrState) weight(id document.DocID) float64 {
	if st.p.Weights == nil {
		return 1
	}
	if w, ok := st.p.Weights[id]; ok && w > 0 {
		return w
	}
	return 1
}

// bestMove scans the maintained addition values and the (recomputed)
// removal values and returns the best move. Add-moves that would eliminate
// every remaining cluster result are excluded: such a move zeroes recall and
// hence F, so it can never "improve the query" (the paper's stated stopping
// intent), even though its raw benefit/cost ratio may exceed 1.
func (st *iskrState) bestMove(noRemoval bool) (moveKind, string, float64) {
	remainingC := st.p.S(st.r.Intersect(st.p.C))
	bestKind, bestK, bestV := moveAdd, "", math.Inf(-1)
	for k, b := range st.addBenefit {
		if c := st.addCost[k]; remainingC > 0 && c >= remainingC-1e-9 {
			continue // would empty R(q) ∩ C
		}
		v := value(b, st.addCost[k])
		if approxGreater(v, bestV) ||
			(approxEqual(v, bestV) && bestKind == moveAdd && k < bestK) {
			bestKind, bestK, bestV = moveAdd, k, v
		}
	}
	if !noRemoval {
		for _, k := range st.q.Terms {
			if st.p.UserQuery.Contains(k) {
				continue // never remove original query keywords
			}
			b, c, _ := st.removeDeltas(k)
			st.evaluations++
			if v := value(b, c); approxGreater(v, bestV) {
				bestKind, bestK, bestV = moveRemove, k, v
			}
		}
	}
	return bestKind, bestK, bestV
}

// apply performs an add or remove move and incrementally updates the
// maintained addition values: only keywords absent from at least one delta
// result are affected (the Section 3 observation), and for those the delta
// is exactly the weight of the delta results they do not contain.
func (st *iskrState) apply(k string, add bool) {
	if add {
		// Delta results: D = R(q) ∩ E(k) — results eliminated by k.
		contain := st.p.ContainSet(k)
		delta := document.DocSet{}
		for id := range st.r {
			if !contain.Contains(id) {
				delta.Add(id)
			}
		}
		st.q = st.q.With(k)
		for id := range delta {
			st.r.Remove(id)
		}
		st.updateAddValues(delta, -1)
		// k is no longer an addition candidate.
		delete(st.addBenefit, k)
		delete(st.addCost, k)
	} else {
		_, _, delta := st.removeDeltas(k)
		st.q = st.q.Without(k)
		for id := range delta {
			st.r.Add(id)
		}
		st.updateAddValues(delta, +1)
		// k becomes an addition candidate again.
		b, c := st.addDeltas(k)
		st.addBenefit[k] = b
		st.addCost[k] = c
		st.evaluations++
	}
}

// updateAddValues adjusts maintained addition benefits/costs for the delta
// results entering (sign=+1) or leaving (sign=-1) R(q). A keyword k' is
// affected iff it is absent from at least one delta result; the adjustment
// is the weight of exactly those results.
func (st *iskrState) updateAddValues(delta document.DocSet, sign float64) {
	if delta.Len() == 0 {
		return
	}
	for k := range st.addBenefit {
		contain := st.p.ContainSet(k)
		var db, dc float64
		for id := range delta {
			if contain.Contains(id) {
				continue
			}
			w := st.weight(id)
			if st.p.U.Contains(id) {
				db += w
			} else {
				dc += w
			}
		}
		if db != 0 || dc != 0 {
			st.addBenefit[k] += sign * db
			st.addCost[k] += sign * dc
			st.evaluations++
		}
	}
}
