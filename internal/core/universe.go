package core

import (
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/termdict"
)

// Universe is the resolved snapshot of one expansion request's result
// universe: the documents in ascending DocID order, the dense ranking
// weights, the candidate keyword pool and its keyword→document incidence,
// and (on demand) the documents' clustering vectors. Everything a Problem
// needs that depends only on (index, user query, universe, weights, pool
// options) — not on the clustering — lives here, computed once per request
// instead of once per cluster: every per-cluster Problem has
// Universe = C ∪ U = the full result set, so the pool scoring and the
// DocTermIDs incidence scan are identical across clusters, and the
// clustering's vector build walks the same arena rows again. One snapshot
// serves all of them.
//
// The shared state is strictly read-only after construction (the solving
// algorithms only read containB/allB and clone what they mutate), so
// Problems derived from one Universe are safe to solve concurrently and
// bit-identical to independently constructed ones.
type Universe struct {
	// Query is the user query the universe was retrieved for.
	Query search.Query
	// Weights are the ranking weights (nil = unranked).
	Weights eval.Weights
	// Set is the universe membership as a DocSet, shared by every derived
	// Problem as its Universe field.
	Set document.DocSet

	idx  *index.Index
	docs []document.DocID
	w    []float64
	allB document.BitSet

	pool     []string
	poolTids []termdict.TermID
	containB []document.BitSet

	vecs []*cluster.Vector
}

// NewUniverse resolves the snapshot for a result universe. ids must be in
// ascending DocID order (the search layer's Eval/ResultIDs form, or
// DocSet.IDs()); the slice is retained. weights may be nil.
func NewUniverse(idx *index.Index, userQuery search.Query, ids []document.DocID,
	weights eval.Weights, opts PoolOptions) *Universe {

	u := &Universe{
		Query:   userQuery,
		Weights: weights,
		Set:     document.NewDocSet(ids...),
		idx:     idx,
		docs:    ids,
	}
	n := len(ids)
	if weights != nil {
		u.w = make([]float64, n)
		for i, id := range ids {
			if wv, ok := weights[id]; ok && wv > 0 {
				u.w[i] = wv
			} else {
				u.w[i] = 1
			}
		}
	}
	u.allB = document.FullBitSet(n)
	u.pool, u.poolTids = scorePool(idx, userQuery, ids, opts)
	// Keyword→document incidence by merge-join, exactly as NewProblem fills
	// it: pool TermIDs and each document's TermIDs are both ascending, and
	// pool position = keyword ID.
	u.containB = make([]document.BitSet, len(u.pool))
	for ki := range u.pool {
		u.containB[ki] = document.NewBitSet(n)
	}
	for di, id := range ids {
		pi := 0
		for _, tid := range idx.DocTermIDs(id) {
			for pi < len(u.poolTids) && u.poolTids[pi] < tid {
				pi++
			}
			if pi == len(u.poolTids) {
				break
			}
			if u.poolTids[pi] == tid {
				u.containB[pi].Add(di)
				pi++
			}
		}
	}
	return u
}

// Docs returns the universe documents in ascending DocID order. Read-only.
func (u *Universe) Docs() []document.DocID { return u.docs }

// Pool returns the candidate keyword pool in sorted order. Read-only.
func (u *Universe) Pool() []string { return u.pool }

// Vectors returns the universe documents' clustering vectors (TF over the
// corpus-global TermID space), built on first call and cached — the input
// cluster.KMeansVecs expects. Not safe to race with itself; the engine calls
// it once, from the clustering stage. Read-only.
func (u *Universe) Vectors() []*cluster.Vector {
	if u.vecs == nil && len(u.docs) > 0 {
		u.vecs = make([]*cluster.Vector, len(u.docs))
		for i, id := range u.docs {
			u.vecs[i] = cluster.VectorFromDocGlobal(u.idx, id)
		}
	}
	return u.vecs
}

// Problems builds one Definition 2.2 problem per cluster set. The sets must
// partition the universe (every cluster of the request's results does), so
// each problem's C ∪ U is the full universe and the shared snapshot state
// applies verbatim. Bit-identical to calling NewProblem per cluster; the
// per-cluster constructions fan out like problemsFromSets always did.
func (u *Universe) Problems(sets []document.DocSet) []*Problem {
	problems := make([]*Problem, len(sets))
	ParallelFor(len(sets), func(i int) {
		other := document.DocSet{}
		for j, s := range sets {
			if j != i {
				other = other.Union(s)
			}
		}
		problems[i] = u.problem(sets[i], other)
	})
	return problems
}

// problem derives one Problem for cluster c (other = the union of the other
// clusters). Only the cluster-dependent dense state — cB/uB and their sums —
// is built fresh; docs, weights, pool, incidence and the full-universe
// bitset are the shared read-only snapshot.
func (u *Universe) problem(c, other document.DocSet) *Problem {
	p := &Problem{
		UserQuery: u.Query,
		C:         c,
		U:         other,
		Universe:  u.Set,
		Weights:   u.Weights,
		Pool:      u.pool,
	}
	p.docs = u.docs
	p.w = u.w
	p.allB = u.allB
	p.containB = u.containB
	n := len(u.docs)
	p.cB, p.uB = document.NewBitSet(n), document.NewBitSet(n)
	for i, id := range u.docs {
		if c.Contains(id) {
			p.cB.Add(i)
		}
		if other.Contains(id) {
			p.uB.Add(i)
		}
	}
	p.sC, p.sU = p.sumBits(p.cB), p.sumBits(p.uB)
	return p
}
