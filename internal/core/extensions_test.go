package core

// Tests for the paper-adjacent extensions: OR semantics (the paper's
// appendix problem), interleaved clustering+expansion and dynamic
// clustering selection (both named in Section 7's future work), and
// parallel solving.

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

func TestORISKRPerfectCover(t *testing.T) {
	// Two keywords jointly cover the cluster exactly; OR-ISKR must find
	// them and score F=1.
	c := document.NewDocSet(1, 2, 3, 4)
	u := document.NewDocSet(10, 11, 12)
	contain := map[string]document.DocSet{
		"left":  document.NewDocSet(1, 2),
		"right": document.NewDocSet(3, 4),
		"bad":   document.NewDocSet(1, 10, 11, 12),
	}
	p := NewProblemFromSets(search.NewQuery("seed"), c, u, nil, contain)
	got := (&ORISKR{}).Expand(p)
	if got.PRF.F != 1 {
		t.Fatalf("F = %v, query = %v", got.PRF.F, got.Query.Terms)
	}
	if !got.Query.Contains("left") || !got.Query.Contains("right") || got.Query.Contains("bad") {
		t.Errorf("query = %v, want {left right}", got.Query.Terms)
	}
}

func TestORISKRRemovalHelps(t *testing.T) {
	// "wide" covers most of C but drags in U; adding the two precise
	// keywords afterwards makes "wide" removable.
	c := document.NewDocSet(1, 2, 3, 4, 5, 6)
	u := document.NewDocSet(10, 11)
	contain := map[string]document.DocSet{
		"wide":  document.NewDocSet(1, 2, 3, 4, 5, 10, 11),
		"left":  document.NewDocSet(1, 2, 3),
		"right": document.NewDocSet(4, 5, 6),
	}
	p := NewProblemFromSets(search.NewQuery("seed"), c, u, nil, contain)
	got := (&ORISKR{}).Expand(p)
	if got.Query.Contains("wide") {
		t.Errorf("query %v retains the imprecise keyword", got.Query.Terms)
	}
	if got.PRF.F != 1 {
		t.Errorf("F = %v", got.PRF.F)
	}
}

func TestORISKRTerminatesOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := randomProblem(300+seed, 10, 12, 10, seed%2 == 0)
		got := (&ORISKR{}).Expand(p)
		if got.PRF.Precision < 0 || got.PRF.Recall < 0 {
			t.Fatalf("seed %d: bad PRF %+v", seed, got.PRF)
		}
		// The reported PRF must be consistent with OR retrieval.
		if !prfClose(got.PRF, p.MeasureOR(got.Query)) {
			t.Fatalf("seed %d: PRF mismatch", seed)
		}
	}
}

func TestRetrieveORIsMonotone(t *testing.T) {
	p := randomProblem(7, 8, 10, 8, false)
	q := search.NewQuery()
	prev := p.RetrieveOR(q)
	if prev.Len() != 0 {
		t.Fatal("empty OR query should retrieve nothing")
	}
	for _, k := range p.Pool[:5] {
		q = q.With(k)
		cur := p.RetrieveOR(q)
		if prev.Subtract(cur).Len() != 0 {
			t.Fatalf("OR retrieval shrank when adding %q", k)
		}
		prev = cur
	}
}

// interleaveFixture builds an index plus an intentionally wrong initial
// clustering over two clean senses.
func interleaveFixture(t *testing.T) (*index.Index, search.Query, *cluster.Clustering, []document.DocID) {
	t.Helper()
	corpus := document.NewCorpus()
	texts := []string{
		"apple fruit orchard juice", "apple fruit pie orchard",
		"apple fruit tree harvest", "apple fruit cider press",
		"apple iphone store mac", "apple mac laptop store",
		"apple software mac xcode store", "apple iphone launch store",
	}
	var ids []document.DocID
	for _, txt := range texts {
		ids = append(ids, corpus.AddText("", txt))
	}
	idx := index.Build(corpus, analysis.Simple())
	// Wrong split: one fruit doc stranded in the tech cluster.
	bad := &cluster.Clustering{
		Clusters: [][]document.DocID{
			{ids[0], ids[1], ids[2]},
			{ids[3], ids[4], ids[5], ids[6], ids[7]},
		},
		Assign: map[document.DocID]int{},
	}
	for i, idsl := range bad.Clusters {
		for _, id := range idsl {
			bad.Assign[id] = i
		}
	}
	return idx, search.NewQuery("apple"), bad, ids
}

func TestInterleaveImprovesBadClustering(t *testing.T) {
	idx, q, bad, _ := interleaveFixture(t)
	baseline := Solve(&ISKR{}, BuildProblems(idx, q, bad, nil, DefaultPoolOptions()))
	it := &Interleave{}
	res := it.Run(idx, q, bad, nil)
	if res.Result.Score < baseline.Score {
		t.Errorf("interleaving worsened the score: %v -> %v",
			baseline.Score, res.Result.Score)
	}
	if res.Rounds < 1 {
		t.Error("no rounds recorded")
	}
	// The stranded fruit doc should end up with its peers, giving a
	// perfect split and score 1.
	if res.Result.Score < 0.99 {
		t.Errorf("interleaved score = %v, want ~1 on separable senses", res.Result.Score)
	}
}

func TestInterleaveClustersPartitionUniverse(t *testing.T) {
	idx, q, bad, ids := interleaveFixture(t)
	res := (&Interleave{MaxRounds: 3}).Run(idx, q, bad, nil)
	seen := document.DocSet{}
	for _, s := range res.Clusters {
		for id := range s {
			if seen.Contains(id) {
				t.Fatalf("doc %d in two clusters", id)
			}
			seen.Add(id)
		}
	}
	if seen.Len() != len(ids) {
		t.Errorf("clusters cover %d of %d docs", seen.Len(), len(ids))
	}
}

func TestSelectClusteringPicksBest(t *testing.T) {
	idx, q, _, ids := interleaveFixture(t)
	cands := DefaultClusteringCandidates(idx, ids, 2, 3)
	best, res := SelectClustering(idx, q, cands, nil, DefaultPoolOptions(), nil)
	if res == nil || best.Clustering == nil {
		t.Fatal("no selection made")
	}
	// Whatever wins must be at least as good as every candidate.
	for _, cand := range cands {
		r := Solve(&ISKR{}, BuildProblems(idx, q, cand.Clustering, nil, DefaultPoolOptions()))
		if r.Score > res.Score+1e-9 {
			t.Errorf("candidate %s scores %v above selected %v", cand.Name, r.Score, res.Score)
		}
	}
}

func TestSelectClusteringSkipsEmpty(t *testing.T) {
	idx, q, _, ids := interleaveFixture(t)
	cands := []ClusteringCandidate{
		{Name: "empty", Clustering: &cluster.Clustering{}},
		{Name: "real", Clustering: cluster.KMeans(idx, ids,
			cluster.Options{K: 2, Seed: 1, PlusPlus: true})},
	}
	best, res := SelectClustering(idx, q, cands, nil, DefaultPoolOptions(), nil)
	if best.Name != "real" || res == nil {
		t.Errorf("selected %q", best.Name)
	}
}

func TestSolveParallelMatchesSolve(t *testing.T) {
	problems := []*Problem{
		randomProblem(1, 10, 12, 10, false),
		randomProblem(2, 10, 12, 10, false),
		randomProblem(3, 10, 12, 10, false),
	}
	problems2 := []*Problem{
		randomProblem(1, 10, 12, 10, false),
		randomProblem(2, 10, 12, 10, false),
		randomProblem(3, 10, 12, 10, false),
	}
	seq := Solve(&ISKR{}, problems)
	par := SolveParallel(&ISKR{}, problems2)
	if math.Abs(seq.Score-par.Score) > 1e-12 {
		t.Fatalf("scores differ: %v vs %v", seq.Score, par.Score)
	}
	for i := range seq.Expansions {
		a := seq.Expansions[i].Expanded.Query.String()
		b := par.Expansions[i].Expanded.Query.String()
		if a != b {
			t.Errorf("cluster %d: %q vs %q", i, a, b)
		}
	}
}

func TestSolveParallelEmpty(t *testing.T) {
	res := SolveParallel(&ISKR{}, nil)
	if res.Score != 0 || len(res.Expansions) != 0 {
		t.Errorf("empty parallel solve = %+v", res)
	}
}

var _ = eval.Weights{} // keep the import for fixtures below
