// Package baseline implements the comparison systems of Section 5.1:
// Data Clouds [15] (popular words over ranked results), CS (cluster
// summarization by TFICF [6]), and a query-log suggester standing in for
// Google's related-queries feature.
//
// Both corpus-backed baselines score terms in flat tables indexed by the
// index's global TermIDs — the per-call string maps the original
// implementation rebuilt are gone, and accumulation visits documents in
// input order with terms ascending by TermID (= lexicographic order), the
// exact order the map-backed code summed in, so all scores and labels are
// unchanged.
package baseline

import (
	"slices"

	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/termdict"
)

// queryTermIDs resolves a query's terms through the index dictionary,
// dropping out-of-corpus terms, sorted ascending for merge-style skips — a
// thin wrapper over the shared termdict helper.
func queryTermIDs(idx *index.Index, q search.Query) []termdict.TermID {
	return termdict.ResolveSorted(idx.Dict(), q.Terms)
}

// DataClouds reproduces Koutrika et al. (EDBT 2009) as described by the
// paper: it "takes a set of ranked results, and returns the top-k important
// words in the results", importance being term frequency in the results the
// word appears in, inverse document frequency, and the ranking scores of
// those results. It does not cluster; each top word becomes one expanded
// query (user query + word), matching the Figures 8–9 listings.
type DataClouds struct {
	// TopK is the number of expanded queries to produce (paper cap: 5,
	// usually 3 to match the other approaches). 0 means 3.
	TopK int
}

// Name identifies the method in reports.
func (d *DataClouds) Name() string { return "DataClouds" }

// Suggest returns one expanded query per top word over the ranked results.
func (d *DataClouds) Suggest(idx *index.Index, results []search.Result, uq search.Query) []search.Query {
	topK := d.TopK
	if topK <= 0 {
		topK = 3
	}
	skip := termdict.SkipList{IDs: queryTermIDs(idx, uq)}
	scores := make([]float64, idx.NumTerms())
	var touched []termdict.TermID
	for _, res := range results {
		rank := res.Score
		if rank <= 0 {
			rank = 1
		}
		tids := idx.DocTermIDs(res.Doc)
		freqs := idx.DocTermFreqs(res.Doc)
		skip.Reset()
		for i, tid := range tids {
			if skip.Contains(tid) {
				continue // the user query's own terms never expand it
			}
			// Contributions are strictly positive (tf ≥ 1, IDF > 0, rank > 0),
			// so a zero score marks first touch.
			if scores[tid] == 0 {
				touched = append(touched, tid)
			}
			scores[tid] += float64(freqs[i]) * idx.IDFByID(tid) * rank
		}
	}
	ranked := touched
	slices.SortFunc(ranked, func(a, b termdict.TermID) int {
		switch {
		case scores[a] > scores[b]:
			return -1
		case scores[a] < scores[b]:
			return 1
		case a < b: // TermID order = lexicographic order
			return -1
		default:
			return 1
		}
	})
	if topK > len(ranked) {
		topK = len(ranked)
	}
	out := make([]search.Query, 0, topK)
	for i := 0; i < topK; i++ {
		out = append(out, uq.With(idx.TermByID(ranked[i])))
	}
	return out
}

// TopWords returns the n most important words without forming queries
// (the raw "data cloud").
func (d *DataClouds) TopWords(idx *index.Index, results []search.Result, uq search.Query, n int) []string {
	saved := d.TopK
	d.TopK = n
	queries := d.Suggest(idx, results, uq)
	d.TopK = saved
	out := make([]string, 0, len(queries))
	for _, q := range queries {
		// The added word is the term of q not in uq.
		for _, t := range q.Terms {
			if !uq.Contains(t) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// resultWeights extracts ranking weights from ranked results (shared by the
// experiment harness).
func resultWeights(results []search.Result) map[document.DocID]float64 {
	w := make(map[document.DocID]float64, len(results))
	for _, r := range results {
		w[r.Doc] = r.Score
	}
	return w
}
