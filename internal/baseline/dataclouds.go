// Package baseline implements the comparison systems of Section 5.1:
// Data Clouds [15] (popular words over ranked results), CS (cluster
// summarization by TFICF [6]), and a query-log suggester standing in for
// Google's related-queries feature.
package baseline

import (
	"sort"

	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/search"
)

// DataClouds reproduces Koutrika et al. (EDBT 2009) as described by the
// paper: it "takes a set of ranked results, and returns the top-k important
// words in the results", importance being term frequency in the results the
// word appears in, inverse document frequency, and the ranking scores of
// those results. It does not cluster; each top word becomes one expanded
// query (user query + word), matching the Figures 8–9 listings.
type DataClouds struct {
	// TopK is the number of expanded queries to produce (paper cap: 5,
	// usually 3 to match the other approaches). 0 means 3.
	TopK int
}

// Name identifies the method in reports.
func (d *DataClouds) Name() string { return "DataClouds" }

// Suggest returns one expanded query per top word over the ranked results.
func (d *DataClouds) Suggest(idx *index.Index, results []search.Result, uq search.Query) []search.Query {
	topK := d.TopK
	if topK <= 0 {
		topK = 3
	}
	type ws struct {
		word  string
		score float64
	}
	scores := make(map[string]float64)
	for _, res := range results {
		rank := res.Score
		if rank <= 0 {
			rank = 1
		}
		for _, term := range idx.DocTerms(res.Doc) {
			if uq.Contains(term) {
				continue
			}
			tf := float64(idx.TermFreq(res.Doc, term))
			scores[term] += tf * idx.IDF(term) * rank
		}
	}
	ranked := make([]ws, 0, len(scores))
	for w, s := range scores {
		ranked = append(ranked, ws{w, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].word < ranked[j].word
	})
	if topK > len(ranked) {
		topK = len(ranked)
	}
	out := make([]search.Query, 0, topK)
	for i := 0; i < topK; i++ {
		out = append(out, uq.With(ranked[i].word))
	}
	return out
}

// TopWords returns the n most important words without forming queries
// (the raw "data cloud").
func (d *DataClouds) TopWords(idx *index.Index, results []search.Result, uq search.Query, n int) []string {
	saved := d.TopK
	d.TopK = n
	queries := d.Suggest(idx, results, uq)
	d.TopK = saved
	out := make([]string, 0, len(queries))
	for _, q := range queries {
		// The added word is the term of q not in uq.
		for _, t := range q.Terms {
			if !uq.Contains(t) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// resultWeights extracts ranking weights from ranked results (shared by the
// experiment harness).
func resultWeights(results []search.Result) map[document.DocID]float64 {
	w := make(map[document.DocID]float64, len(results))
	for _, r := range results {
		w[r.Doc] = r.Score
	}
	return w
}
