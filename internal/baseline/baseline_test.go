package baseline

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/search"
)

func fixture(t *testing.T) (*index.Index, *search.Engine, []document.DocID) {
	t.Helper()
	c := document.NewCorpus()
	texts := []string{
		"apple fruit orchard juice harvest", // 0 fruit
		"apple fruit tree pie",              // 1 fruit
		"apple computer store mac laptop",   // 2 tech
		"apple iphone store launch event",   // 3 tech
		"apple software mac developer",      // 4 tech
		"apple store retail flagship",       // 5 tech
	}
	var ids []document.DocID
	for _, txt := range texts {
		ids = append(ids, c.AddText("", txt))
	}
	idx := index.Build(c, analysis.Simple())
	return idx, search.NewEngine(idx), ids
}

func TestDataCloudsSuggestsPopularWords(t *testing.T) {
	idx, eng, _ := fixture(t)
	uq := search.NewQuery("apple")
	results := eng.Search(uq, search.And, 0)
	dc := &DataClouds{TopK: 3}
	queries := dc.Suggest(idx, results, uq)
	if len(queries) != 3 {
		t.Fatalf("got %d queries", len(queries))
	}
	for _, q := range queries {
		if !q.Contains("apple") || q.Len() != 2 {
			t.Errorf("query %v should be apple + one word", q.Terms)
		}
	}
	// "store" appears in 3 of 6 docs with decent idf — it must be among the
	// suggestions; the singleton words of one fruit doc must not outrank it.
	words := dc.TopWords(idx, results, uq, 3)
	found := false
	for _, w := range words {
		if w == "store" {
			found = true
		}
	}
	if !found {
		t.Errorf("top words %v should include 'store'", words)
	}
}

func TestDataCloudsRankBias(t *testing.T) {
	// The paper's motivating flaw: Data Clouds weights words by the rank of
	// the results they appear in, so words of high-ranked results dominate.
	idx, _, _ := fixture(t)
	uq := search.NewQuery("apple")
	// Hand the tech docs huge scores and fruit docs tiny ones.
	results := []search.Result{
		{Doc: 0, Score: 0.01}, {Doc: 1, Score: 0.01},
		{Doc: 2, Score: 10}, {Doc: 3, Score: 10}, {Doc: 4, Score: 10}, {Doc: 5, Score: 10},
	}
	words := (&DataClouds{}).TopWords(idx, results, uq, 3)
	for _, w := range words {
		if w == "fruit" {
			t.Errorf("fruit should be suppressed by ranking bias, got %v", words)
		}
	}
}

func TestDataCloudsEmptyResults(t *testing.T) {
	idx, _, _ := fixture(t)
	if got := (&DataClouds{}).Suggest(idx, nil, search.NewQuery("apple")); len(got) != 0 {
		t.Errorf("Suggest on empty results = %v", got)
	}
}

func TestDataCloudsExcludesQueryTerms(t *testing.T) {
	idx, eng, _ := fixture(t)
	uq := search.NewQuery("apple", "store")
	results := eng.Search(uq, search.And, 0)
	for _, w := range (&DataClouds{}).TopWords(idx, results, uq, 5) {
		if w == "apple" || w == "store" {
			t.Errorf("query term %q suggested", w)
		}
	}
}

func TestCSLabelsAreClusterSpecific(t *testing.T) {
	idx, _, ids := fixture(t)
	cl := cluster.KMeans(idx, ids, cluster.Options{K: 2, Seed: 1, PlusPlus: true})
	if cl.K() != 2 {
		t.Skip("k-means did not produce 2 clusters on fixture")
	}
	cs := &CS{LabelSize: 3}
	uq := search.NewQuery("apple")
	l0 := cs.Label(idx, cl, 0, uq)
	l1 := cs.Label(idx, cl, 1, uq)
	if len(l0) == 0 || len(l1) == 0 {
		t.Fatal("empty labels")
	}
	// Labels must not contain the user query term and must differ between
	// clusters (ICF suppresses shared words).
	for _, w := range append(append([]string{}, l0...), l1...) {
		if w == "apple" {
			t.Error("label contains user query term")
		}
	}
	if reflect.DeepEqual(l0, l1) {
		t.Errorf("labels identical across clusters: %v", l0)
	}
}

func TestCSSuggestOnePerCluster(t *testing.T) {
	idx, _, ids := fixture(t)
	cl := cluster.KMeans(idx, ids, cluster.Options{K: 2, Seed: 1, PlusPlus: true})
	cs := &CS{LabelSize: 2}
	queries := cs.Suggest(idx, cl, search.NewQuery("apple"))
	if len(queries) != cl.K() {
		t.Fatalf("got %d queries for %d clusters", len(queries), cl.K())
	}
	for _, q := range queries {
		if !q.Contains("apple") {
			t.Errorf("query %v lost the seed", q.Terms)
		}
		if q.Len() < 2 {
			t.Errorf("query %v has no label words", q.Terms)
		}
	}
}

func TestCSLowCooccurrenceProblem(t *testing.T) {
	// Reproduce the paper's Section 1 critique: words each frequent in a
	// cluster but never co-occurring yield an AND query with no results.
	c := document.NewCorpus()
	var ids []document.DocID
	// 4 docs: "alpha" in docs 0,1; "beta" in docs 2,3 — both frequent, never
	// together. A label {alpha, beta} retrieves nothing.
	for _, txt := range []string{
		"seed alpha alpha alpha", "seed alpha alpha alpha",
		"seed beta beta beta", "seed beta beta beta",
		"seed gamma", "seed delta",
	} {
		ids = append(ids, c.AddText("", txt))
	}
	idx := index.Build(c, analysis.Simple())
	cl := &cluster.Clustering{
		Clusters: [][]document.DocID{ids[:4], ids[4:]},
		Assign: map[document.DocID]int{ids[0]: 0, ids[1]: 0, ids[2]: 0,
			ids[3]: 0, ids[4]: 1, ids[5]: 1},
	}
	cs := &CS{LabelSize: 2}
	q := cs.Suggest(idx, cl, search.NewQuery("seed"))[0]
	got := RetrieveWithin(idx, q, document.NewDocSet(ids...))
	if !q.Contains("alpha") || !q.Contains("beta") {
		t.Skipf("label selection picked %v; critique needs alpha+beta", q.Terms)
	}
	if got.Len() != 0 {
		t.Errorf("AND query %v retrieved %d results; expected the empty-result pathology", q.Terms, got.Len())
	}
}

func TestRetrieveWithinRestrictsToUniverse(t *testing.T) {
	idx, _, ids := fixture(t)
	universe := document.NewDocSet(ids[0], ids[1])
	got := RetrieveWithin(idx, search.NewQuery("apple"), universe)
	if got.Len() != 2 {
		t.Errorf("got %d, want 2", got.Len())
	}
}

func TestQueryLogSuggestByPopularity(t *testing.T) {
	log := NewQueryLog([]LogEntry{
		{Query: "java tutorials", Count: 900},
		{Query: "java games", Count: 800},
		{Query: "java test", Count: 700},
		{Query: "java island travel", Count: 10},
		{Query: "python tutorials", Count: 9999},
		{Query: "java", Count: 100000}, // the seed itself: excluded
	})
	got := log.Suggest("Java", 3)
	if len(got) != 3 {
		t.Fatalf("got %d suggestions", len(got))
	}
	want := [][]string{
		{"java", "tutorials"}, {"java", "games"}, {"java", "test"},
	}
	for i, q := range got {
		if !reflect.DeepEqual(q.Terms, want[i]) {
			t.Errorf("suggestion %d = %v, want %v", i, q.Terms, want[i])
		}
	}
}

func TestQueryLogMultiTermSeed(t *testing.T) {
	log := NewQueryLog([]LogEntry{
		{Query: "canon products cameras", Count: 50},
		{Query: "sony products", Count: 60},
		{Query: "canon printers", Count: 70},
	})
	got := log.Suggest("canon products", 5)
	if len(got) != 1 || !got[0].Contains("cameras") {
		t.Errorf("Suggest = %v", got)
	}
}

func TestQueryLogNoMatches(t *testing.T) {
	log := NewQueryLog([]LogEntry{{Query: "alpha beta", Count: 1}})
	if got := log.Suggest("gamma", 3); len(got) != 0 {
		t.Errorf("Suggest = %v", got)
	}
}

func TestQueryLogDeterministicTieBreak(t *testing.T) {
	log := NewQueryLog([]LogEntry{
		{Query: "x b", Count: 5},
		{Query: "x a", Count: 5},
	})
	got := log.Suggest("x", 2)
	if got[0].Terms[1] != "a" || got[1].Terms[1] != "b" {
		t.Errorf("tie-break not alphabetical: %v", got)
	}
}

func TestResultWeights(t *testing.T) {
	w := resultWeights([]search.Result{{Doc: 1, Score: 2.5}, {Doc: 2, Score: 1}})
	if w[1] != 2.5 || w[2] != 1 || len(w) != 2 {
		t.Errorf("resultWeights = %v", w)
	}
}
