package baseline

import (
	"sort"
	"strings"

	"repro/internal/search"
)

// LogEntry is one historical query with its popularity (issue count).
type LogEntry struct {
	Query string
	Count int
}

// QueryLog is the "Google" comparison system: related-query suggestion from
// a query log. The paper takes Google's first 3–5 suggestions per test
// query; since a live query log is unavailable here, the dataset package
// synthesizes one with the two behaviours the paper evaluates — popular,
// meaningful suggestions, but (a) sometimes suggesting terms that do not
// occur in the corpus at all (QS1 "Sony, products"), and (b) sometimes
// covering only one sense of an ambiguous query (QW8 "rockets").
type QueryLog struct {
	entries []LogEntry
}

// NewQueryLog builds a suggester over the given log.
func NewQueryLog(entries []LogEntry) *QueryLog {
	out := make([]LogEntry, len(entries))
	copy(out, entries)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Query < out[j].Query
	})
	return &QueryLog{entries: out}
}

// Name identifies the method in reports.
func (l *QueryLog) Name() string { return "Google" }

// Len returns the number of log entries.
func (l *QueryLog) Len() int { return len(l.entries) }

// Suggest returns up to n expanded queries: the most popular log queries
// that contain every seed keyword, excluding the seed itself. Terms are
// whitespace-split and lowercased; no corpus analysis is applied (the log is
// external to the corpus, which is exactly the paper's point about Google).
func (l *QueryLog) Suggest(seed string, n int) []search.Query {
	seedTerms := strings.Fields(strings.ToLower(seed))
	var out []search.Query
	for _, e := range l.entries {
		if len(out) >= n {
			break
		}
		q := strings.ToLower(e.Query)
		if q == strings.ToLower(seed) {
			continue
		}
		terms := strings.Fields(q)
		if !containsAll(terms, seedTerms) {
			continue
		}
		out = append(out, search.NewQuery(terms...))
	}
	return out
}

func containsAll(haystack, needles []string) bool {
	for _, n := range needles {
		found := false
		for _, h := range haystack {
			if h == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
