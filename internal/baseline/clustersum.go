package baseline

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/search"
)

// CS reproduces the cluster-summarization comparison system: it labels each
// cluster with its top TFICF words (term frequency × inverse cluster
// frequency, per Carmel et al., SIGIR 2009) and uses "user query + label" as
// the expanded query for the cluster. The paper's critique — CS picks words
// with high occurrence in few results and ignores keyword interaction, so
// its queries often have low recall — emerges from this construction.
type CS struct {
	// LabelSize is the number of label words per cluster (the paper's
	// examples show 3). 0 means 3.
	LabelSize int
}

// Name identifies the method in reports.
func (c *CS) Name() string { return "CS" }

// Label returns the top TFICF words of cluster ci within the clustering.
func (c *CS) Label(idx *index.Index, cl *cluster.Clustering, ci int, uq search.Query) []string {
	n := c.LabelSize
	if n <= 0 {
		n = 3
	}
	// Cluster frequency: number of clusters whose documents contain a term.
	cf := make(map[string]int)
	for _, ids := range cl.Clusters {
		seen := map[string]struct{}{}
		for _, id := range ids {
			for _, term := range idx.DocTerms(id) {
				seen[term] = struct{}{}
			}
		}
		for term := range seen {
			cf[term]++
		}
	}
	k := float64(cl.K())
	// Term frequency within the target cluster.
	tf := make(map[string]float64)
	for _, id := range cl.Clusters[ci] {
		for _, term := range idx.DocTerms(id) {
			tf[term] += float64(idx.TermFreq(id, term))
		}
	}
	type ws struct {
		word  string
		score float64
	}
	ranked := make([]ws, 0, len(tf))
	for term, f := range tf {
		if uq.Contains(term) {
			continue
		}
		icf := math.Log(1 + k/float64(cf[term]))
		ranked = append(ranked, ws{term, f * icf})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].word < ranked[j].word
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].word
	}
	return out
}

// Suggest returns one expanded query per cluster: the user query plus the
// cluster's TFICF label words.
func (c *CS) Suggest(idx *index.Index, cl *cluster.Clustering, uq search.Query) []search.Query {
	out := make([]search.Query, 0, cl.K())
	for ci := range cl.Clusters {
		q := uq
		for _, w := range c.Label(idx, cl, ci, uq) {
			q = q.With(w)
		}
		out = append(out, q)
	}
	return out
}

// RetrieveWithin evaluates an arbitrary query against the index under AND
// semantics and restricts the result to the universe — used to score
// baseline queries (whose terms need not come from any candidate pool) with
// the Section 2 measures. Universes are small (top-K result sets), so the
// membership test runs per universe document against the doc's sorted term
// set instead of intersecting full-corpus postings.
func RetrieveWithin(idx *index.Index, q search.Query, universe document.DocSet) document.DocSet {
	out := document.DocSet{}
	for id := range universe {
		all := true
		for _, t := range q.Terms {
			if !idx.HasTerm(id, t) {
				all = false
				break
			}
		}
		if all {
			out.Add(id)
		}
	}
	return out
}
