package baseline

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/termdict"
)

// CS reproduces the cluster-summarization comparison system: it labels each
// cluster with its top TFICF words (term frequency × inverse cluster
// frequency, per Carmel et al., SIGIR 2009) and uses "user query + label" as
// the expanded query for the cluster. The paper's critique — CS picks words
// with high occurrence in few results and ignores keyword interaction, so
// its queries often have low recall — emerges from this construction.
type CS struct {
	// LabelSize is the number of label words per cluster (the paper's
	// examples show 3). 0 means 3.
	LabelSize int
}

// Name identifies the method in reports.
func (c *CS) Name() string { return "CS" }

// clusterFrequencies counts, per TermID, the number of clusters whose
// documents contain the term — the "cluster frequency" of TFICF. One flat
// pass over the clustering; per-cluster dedup is an epoch stamp, not a map.
func clusterFrequencies(idx *index.Index, cl *cluster.Clustering) []int32 {
	cf := make([]int32, idx.NumTerms())
	seen := make([]int32, idx.NumTerms())
	for ci, ids := range cl.Clusters {
		stamp := int32(ci + 1)
		for _, id := range ids {
			for _, tid := range idx.DocTermIDs(id) {
				if seen[tid] != stamp {
					seen[tid] = stamp
					cf[tid]++
				}
			}
		}
	}
	return cf
}

// Label returns the top TFICF words of cluster ci within the clustering.
func (c *CS) Label(idx *index.Index, cl *cluster.Clustering, ci int, uq search.Query) []string {
	return c.labelWithCF(idx, cl, ci, uq, clusterFrequencies(idx, cl), new(termdict.DenseScratch))
}

// labelWithCF is Label with the cluster frequencies precomputed and the TF
// scratch (the shared epoch-stamped termdict.DenseScratch) reused, so
// Suggest pays the all-clusters scan and the vocabulary-sized allocation
// once instead of once per cluster (the old per-Label recomputation was
// O(k²) document scans).
func (c *CS) labelWithCF(idx *index.Index, cl *cluster.Clustering, ci int,
	uq search.Query, cf []int32, s *termdict.DenseScratch) []string {

	n := c.LabelSize
	if n <= 0 {
		n = 3
	}
	k := float64(cl.K())
	// Term frequency within the target cluster, in a flat TermID table —
	// documents in ascending order, terms ascending within each document,
	// the same summation order as the old sorted-term map walk.
	s.Reset(idx.NumTerms())
	for _, id := range cl.Clusters[ci] {
		tids := idx.DocTermIDs(id)
		freqs := idx.DocTermFreqs(id)
		for i, tid := range tids {
			s.Add(tid, float64(freqs[i]))
		}
	}
	qt := queryTermIDs(idx, uq)
	ranked := make([]termdict.TermID, 0, len(s.Touched))
	for _, tid := range s.Touched {
		skip := false
		for _, q := range qt {
			if q == tid {
				skip = true
				break
			}
		}
		if !skip {
			// The TF cell is dead after ranking, so the TFICF score
			// overwrites it in place — no second vocabulary-sized buffer.
			s.Vals[tid] *= math.Log(1 + k/float64(cf[tid]))
			ranked = append(ranked, tid)
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if s.Vals[ranked[i]] != s.Vals[ranked[j]] {
			return s.Vals[ranked[i]] > s.Vals[ranked[j]]
		}
		return ranked[i] < ranked[j] // TermID order = lexicographic order
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = idx.TermByID(ranked[i])
	}
	return out
}

// Suggest returns one expanded query per cluster: the user query plus the
// cluster's TFICF label words. Cluster frequencies are computed once and the
// TF scratch reused across every cluster's label.
func (c *CS) Suggest(idx *index.Index, cl *cluster.Clustering, uq search.Query) []search.Query {
	cf := clusterFrequencies(idx, cl)
	scratch := new(termdict.DenseScratch)
	out := make([]search.Query, 0, cl.K())
	for ci := range cl.Clusters {
		q := uq
		for _, w := range c.labelWithCF(idx, cl, ci, uq, cf, scratch) {
			q = q.With(w)
		}
		out = append(out, q)
	}
	return out
}

// RetrieveWithin evaluates an arbitrary query against the index under AND
// semantics and restricts the result to the universe — used to score
// baseline queries (whose terms need not come from any candidate pool) with
// the Section 2 measures. Universes are small (top-K result sets), so the
// membership test runs per universe document against the doc's sorted
// TermID set; query strings resolve through the dictionary once per call.
func RetrieveWithin(idx *index.Index, q search.Query, universe document.DocSet) document.DocSet {
	tids := make([]termdict.TermID, len(q.Terms))
	for i, t := range q.Terms {
		tid, ok := idx.LookupTerm(t)
		if !ok {
			return document.DocSet{} // out-of-corpus term: AND matches nothing
		}
		tids[i] = tid
	}
	out := document.DocSet{}
	for id := range universe {
		all := true
		for _, tid := range tids {
			if !idx.HasTermID(id, tid) {
				all = false
				break
			}
		}
		if all {
			out.Add(id)
		}
	}
	return out
}
