package expander

import (
	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/termdict"
)

// Orthogonal is the orthogonal-expansion backend, after Ackerman et al.:
// instead of ranking candidates independently (where the top K tend to
// describe the same dominant sense), it picks expansions greedily by
// marginal weighted coverage of the result universe, so each successive
// expansion targets results the previous picks do not cover — the
// suggestions are mutually dissimilar by construction. Candidates come from
// the expansion core's TF-IDF pool and coverage is word-wise bitset
// arithmetic over the dense universe, the same machinery the clustered
// pipeline's problems use. Stage accounting: pool + incidence construction
// runs under the "problem" span, greedy selection + measurement under
// "solve".
type Orthogonal struct{}

// Name implements Backend.
func (Orthogonal) Name() string { return "orthogonal" }

// Expand implements Backend. Determinism: the candidate pool is sorted
// ascending by TermID (= lexicographic), every coverage sum folds words in
// ascending dense-doc order through eval.AccumWord, and the greedy argmax
// updates on strictly-greater gain only — ties keep the lexicographically
// smallest keyword. No step depends on worker count; the whole selection is
// a serial fold.
func (Orthogonal) Expand(in *Input) *Output {
	tr := in.Trace

	tr.Begin(obs.StageProblem)
	universe, w := neighborhood(in)
	ids := universe.IDs() // ascending: dense ID order = DocID order
	n := len(ids)

	pool := core.ScorePool(in.Idx, in.Query, ids, core.DefaultPoolOptions())
	poolTids := termdict.ResolveSorted(in.Idx.Dict(), pool)

	// Per-keyword incidence over the dense universe by merge-join: pool
	// TermIDs and each document's TermIDs are both ascending.
	contain := make([]document.BitSet, len(pool))
	for ki := range contain {
		contain[ki] = document.NewBitSet(n)
	}
	for di, id := range ids {
		pi := 0
		for _, tid := range in.Idx.DocTermIDs(id) {
			for pi < len(poolTids) && poolTids[pi] < tid {
				pi++
			}
			if pi == len(poolTids) {
				break
			}
			if poolTids[pi] == tid {
				contain[pi].Add(di)
				pi++
			}
		}
	}

	// Dense ranking weights (nil = every document counts 1), resolved the
	// same way the clustered problems resolve theirs.
	var dw []float64
	if w != nil {
		dw = make([]float64, n)
		for i, id := range ids {
			if wv, ok := w[id]; ok && wv > 0 {
				dw[i] = wv
			} else {
				dw[i] = 1
			}
		}
	}
	tr.End(obs.StageProblem)

	tr.Begin(obs.StageSolve)
	// Greedy weighted max-coverage: each round picks the keyword whose
	// documents add the most uncovered weight, then marks them covered. A
	// keyword overlapping previous picks contributes only its *new*
	// documents, which is exactly the orthogonality pressure.
	covered := document.NewBitSet(n)
	suggestions := make([]Suggestion, 0, in.K)
	for len(suggestions) < in.K {
		best, bestGain := -1, 0.0
		for ki := range contain {
			gain := 0.0
			cov := covered.Words()
			for wi, word := range contain[ki].Words() {
				gain = eval.AccumWord(gain, wi, word&^cov[wi], dw)
			}
			if gain > bestGain {
				best, bestGain = ki, gain
			}
		}
		if best < 0 {
			break // every candidate's documents are already covered
		}
		covered.Or(contain[best])
		q := in.Query.With(pool[best])
		suggestions = append(suggestions, Suggestion{
			Terms: q.Terms,
			PRF:   measure(in, q, universe, w),
		})
		contain[best] = document.NewBitSet(n) // never re-pick (zero gain forever)
	}
	tr.End(obs.StageSolve)
	return assemble(suggestions)
}

var _ Backend = Orthogonal{}
