package expander

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/search"
)

// The golden file pins every backend's suggestions — terms and F-measure
// bits — on the deterministic Wikipedia corpus, so any change to a
// backend's candidate generation, ordering or measurement shows up as a
// diff. F is compared via Float64bits: the determinism contract promises
// bit-identity, not approximate equality.
//
// Regenerate with QEC_UPDATE_GOLDEN=1 go test ./internal/expander -run Golden
// (only legitimate when a backend's semantics intentionally change).
const goldenPath = "testdata/backends_golden.json"

type goldenSuggestion struct {
	Terms []string `json:"terms"`
	FBits uint64   `json:"f_bits"`
}

type goldenCase struct {
	Backend     string             `json:"backend"`
	Query       string             `json:"query"`
	K           int                `json:"k"`
	TopK        int                `json:"top_k"`
	Unweighted  bool               `json:"unweighted,omitempty"`
	Suggestions []goldenSuggestion `json:"suggestions"`
	ScoreBits   uint64             `json:"score_bits"`
}

var wikiOnce = sync.OnceValue(func() *dataset.Dataset {
	return dataset.Wikipedia(1, 1)
})

func backends() map[string]Backend {
	return map[string]Backend{
		"vector":     Vector{},
		"lexical":    Lexical{},
		"orthogonal": Orthogonal{},
	}
}

func newInput(t testing.TB, d *dataset.Dataset, raw string, k, topK int, unweighted bool) *Input {
	t.Helper()
	eng := search.NewEngine(d.Index)
	q := search.ParseQuery(d.Index, raw)
	results := eng.Search(q, search.And, topK)
	if len(results) == 0 {
		t.Fatalf("query %q matched nothing", raw)
	}
	return &Input{
		Idx:     d.Index,
		Eng:     eng,
		Query:   q,
		Results: results,
		K:       k, Unweighted: unweighted,
		Seed: 1,
	}
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, name := range []string{"vector", "lexical", "orthogonal"} {
		for _, q := range []string{"java", "domino", "mouse"} {
			cases = append(cases, goldenCase{Backend: name, Query: q, K: 3, TopK: 30})
		}
		cases = append(cases, goldenCase{Backend: name, Query: "eclipse", K: 4, TopK: 0, Unweighted: true})
	}
	return cases
}

func (g *goldenCase) run(t testing.TB) *Output {
	return backends()[g.Backend].Expand(newInput(t, wikiOnce(), g.Query, g.K, g.TopK, g.Unweighted))
}

func fill(g *goldenCase, out *Output) {
	g.Suggestions = g.Suggestions[:0]
	for _, s := range out.Suggestions {
		g.Suggestions = append(g.Suggestions, goldenSuggestion{Terms: s.Terms, FBits: math.Float64bits(s.PRF.F)})
	}
	g.ScoreBits = math.Float64bits(out.Score)
}

func TestBackendGolden(t *testing.T) {
	cases := goldenCases()
	if os.Getenv("QEC_UPDATE_GOLDEN") != "" {
		for i := range cases {
			fill(&cases[i], cases[i].run(t))
		}
		buf, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(cases))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with QEC_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("golden has %d cases, test defines %d — regenerate", len(want), len(cases))
	}
	for _, w := range want {
		w := w
		t.Run(fmt.Sprintf("%s/%s", w.Backend, w.Query), func(t *testing.T) {
			got := goldenCase{Backend: w.Backend, Query: w.Query, K: w.K, TopK: w.TopK, Unweighted: w.Unweighted}
			fill(&got, got.run(t))
			if len(got.Suggestions) != len(w.Suggestions) {
				t.Fatalf("got %d suggestions, golden has %d", len(got.Suggestions), len(w.Suggestions))
			}
			for i := range w.Suggestions {
				if strings.Join(got.Suggestions[i].Terms, " ") != strings.Join(w.Suggestions[i].Terms, " ") {
					t.Errorf("suggestion %d terms = %v; golden %v", i, got.Suggestions[i].Terms, w.Suggestions[i].Terms)
				}
				if got.Suggestions[i].FBits != w.Suggestions[i].FBits {
					t.Errorf("suggestion %d F bits = %x; golden %x", i, got.Suggestions[i].FBits, w.Suggestions[i].FBits)
				}
			}
			if got.ScoreBits != w.ScoreBits {
				t.Errorf("score bits = %x; golden %x", got.ScoreBits, w.ScoreBits)
			}
		})
	}
}

// TestBackendDeterminism runs every backend repeatedly — serially and from
// many concurrent goroutines sharing one index — and demands bit-identical
// output every time. The concurrent leg catches hidden shared state (a
// backend scribbling on index arenas or package scratch would interleave).
func TestBackendDeterminism(t *testing.T) {
	d := wikiOnce()
	for name, b := range backends() {
		t.Run(name, func(t *testing.T) {
			base := render(b.Expand(newInput(t, d, "java", 3, 30, false)))
			for run := 0; run < 3; run++ {
				if got := render(b.Expand(newInput(t, d, "java", 3, 30, false))); got != base {
					t.Fatalf("serial run %d diverged:\n%s\nwant:\n%s", run, got, base)
				}
			}
			const workers = 8
			got := make([]string, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					got[w] = render(b.Expand(newInput(t, d, "java", 3, 30, false)))
				}(w)
			}
			wg.Wait()
			for w, g := range got {
				if g != base {
					t.Fatalf("concurrent run %d diverged:\n%s\nwant:\n%s", w, g, base)
				}
			}
		})
	}
}

func render(o *Output) string {
	var sb strings.Builder
	for _, s := range o.Suggestions {
		fmt.Fprintf(&sb, "%v %x\n", s.Terms, math.Float64bits(s.PRF.F))
	}
	fmt.Fprintf(&sb, "score %x", math.Float64bits(o.Score))
	return sb.String()
}

// TestBackendsProduceSuggestions sanity-checks that each backend finds
// something on every ambiguous demo query — the examples smoke test and the
// CLI demos rely on non-empty output.
func TestBackendsProduceSuggestions(t *testing.T) {
	d := wikiOnce()
	for name, b := range backends() {
		for _, q := range []string{"java", "domino", "eclipse", "mouse", "cell"} {
			out := b.Expand(newInput(t, d, q, 3, 30, false))
			if len(out.Suggestions) == 0 {
				t.Errorf("%s(%q): no suggestions", name, q)
			}
			for _, s := range out.Suggestions {
				if len(s.Terms) <= 1 {
					t.Errorf("%s(%q): suggestion %v has no expansion term", name, q, s.Terms)
				}
			}
		}
	}
}

func TestLexicalEmptySource(t *testing.T) {
	d := wikiOnce()
	out := Lexical{Source: Table{}}.Expand(newInput(t, d, "java", 3, 30, false))
	if len(out.Suggestions) != 0 || out.Score != 0 {
		t.Fatalf("empty source: got %d suggestions score %v; want none", len(out.Suggestions), out.Score)
	}
}

func TestLoadTable(t *testing.T) {
	src := `# thesaurus
java: coffee, island   # directed
a, b, c
mouse: rodent
`
	tbl, err := LoadTable(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]string{
		"java":  {"coffee", "island"},
		"mouse": {"rodent"},
		"a":     {"b", "c"},
		"b":     {"a", "c"},
		"c":     {"a", "b"},
	}
	for head, want := range wants {
		got := tbl.Synonyms(head)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("Synonyms(%q) = %v; want %v", head, got, want)
		}
	}
	if got := tbl.Synonyms("JAVA"); strings.Join(got, ",") != "coffee,island" {
		t.Errorf("lookup not case-insensitive: %v", got)
	}

	for _, bad := range []string{": x", "solo", "java:", "java:  ,  "} {
		if _, err := LoadTable(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadTable(%q): expected error", bad)
		}
	}
}

func TestNewTableNormalizes(t *testing.T) {
	tbl := NewTable(map[string][]string{
		" Java ": {"Coffee", "coffee", "java", "", "Island"},
	})
	if got := tbl.Synonyms("java"); strings.Join(got, ",") != "coffee,island" {
		t.Fatalf("Synonyms(java) = %v; want [coffee island]", got)
	}
}
