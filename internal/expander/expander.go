// Package expander implements the engine's pluggable expansion backends —
// the alternative query-expansion paradigms served behind the public
// qec.Expander interface alongside the paper's clustered-results pipeline.
//
// Three backends live here:
//
//   - Vector: vector-neighborhood expansion. The top-ranked result documents
//     are embedded as TF-IDF vectors over the corpus-global TermID space and
//     averaged into a neighborhood centroid; the highest-weight centroid
//     terms outside the query become the expansions (the query-vector +
//     neighbor-mean recipe of embedding search engines, computed on the
//     index's own arenas instead of learned embeddings).
//   - Lexical: WordNet-style synonym expansion in the spirit of Pal et al.,
//     "Improving Query Expansion Using WordNet". Synonym candidates come
//     from a pluggable SynonymSource (in-memory table, file loader);
//     candidates surviving the corpus vocabulary are ranked by their
//     F-measure against the query's result neighborhood.
//   - Orthogonal: mutually dissimilar expansions à la Ackerman et al.,
//     "Orthogonal Query Expansion". Candidate keywords (the expansion
//     core's TF-IDF pool) are selected greedily by marginal weighted
//     coverage over bitsets of the result universe, so each successive
//     expansion targets results the previous ones do not cover.
//
// Every backend obeys the engine-wide backend contract (docs/EXPANDERS.md):
// output is a pure function of (corpus, query, options) — same inputs give
// bit-identical suggestions on every run and worker count. All candidate
// scans run in ascending TermID (= lexicographic) order with
// strictly-greater argmax updates, every floating-point accumulation folds
// in a deterministic order, and suggestion measurement reuses eval.Measure,
// whose sums run in sorted document order.
package expander

import (
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/search"
)

// Input carries one expansion request into a backend: the shared
// parse + search preamble has already run (the engine owns those pipeline
// stages), so backends start from the ranked results.
type Input struct {
	// Idx is the built index of the corpus.
	Idx *index.Index
	// Eng evaluates candidate expanded queries against the corpus.
	Eng *search.Engine
	// Query is the parsed user query.
	Query search.Query
	// Results are the query's ranked hits, already cut to the requested
	// TopK. Never empty — the engine rejects no-result queries before
	// dispatch.
	Results []search.Result
	// K is the requested number of suggestions (already defaulted, > 0).
	K int
	// Unweighted disables rank-weighted measurement.
	Unweighted bool
	// Seed is the engine's deterministic seed. The backends in this package
	// are seed-free (no randomized steps); it is carried for custom
	// backends and parity with the clustered pipeline.
	Seed int64
	// Synonyms is the lexical backend's synonym source (nil falls back to
	// DefaultSynonyms). Other backends ignore it.
	Synonyms SynonymSource
	// Trace receives per-stage spans; nil is safe (obs methods are
	// nil-tolerant).
	Trace *obs.Trace
}

// Suggestion is one expanded query with its measure against the query's
// result neighborhood.
type Suggestion struct {
	// Terms are the suggestion's query keywords (the original query's terms
	// first, expansion terms appended).
	Terms []string
	// PRF measures the suggestion's full-corpus results against the
	// original result neighborhood: precision is the fraction of the
	// expanded query's results that stay inside the neighborhood (weighted
	// by the original ranking unless Unweighted), recall the fraction of
	// the neighborhood it retains.
	PRF eval.PRF
}

// Output is a backend's result: ranked suggestions plus the Eq. 1-style
// harmonic mean of their F-measures.
type Output struct {
	Suggestions []Suggestion
	Score       float64
}

// Backend is the internal backend contract mirrored by the public
// qec.Expander interface.
type Backend interface {
	// Name returns the backend's canonical method string — its telemetry
	// label and expansion-cache key leg.
	Name() string
	// Expand generates suggestions. Must be deterministic: a fixed Input
	// yields bit-identical Output on every run and worker count.
	Expand(in *Input) *Output
}

// neighborhood builds the measurement substrate shared by every backend in
// this package: the result universe as a DocSet and the rank weights
// (nil when unweighted), mirroring the clustered pipeline's
// problem-construction step so cross-backend PRF values are comparable.
func neighborhood(in *Input) (document.DocSet, eval.Weights) {
	universe := search.ResultSet(in.Results)
	var w eval.Weights
	if !in.Unweighted {
		w = eval.Weights{}
		for _, r := range in.Results {
			w[r.Doc] = r.Score
		}
	}
	return universe, w
}

// measure evaluates one expanded query by full-corpus AND retrieval against
// the result neighborhood. Eval returns ascending document IDs and
// eval.MeasureIDs folds in that sorted order, so the measure is
// bit-identical across runs (and to the map-backed form it replaced).
func measure(in *Input, q search.Query, universe document.DocSet, w eval.Weights) eval.PRF {
	retrieved := in.Eng.Eval(q, search.And)
	return eval.MeasureIDs(retrieved, universe, w)
}

// assemble ranks nothing — callers pass suggestions in final order — and
// computes the harmonic-mean score.
func assemble(suggestions []Suggestion) *Output {
	fs := make([]float64, len(suggestions))
	for i, s := range suggestions {
		fs[i] = s.PRF.F
	}
	return &Output{Suggestions: suggestions, Score: eval.Score(fs)}
}
