package expander

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strings"

	"repro/internal/obs"
)

// SynonymSource supplies synonym candidates for a query term. It is the
// lexical backend's stand-in for a WordNet synset lookup: Pal et al. pull
// candidates from lexical relations and then let corpus statistics pick the
// useful ones, and the backend follows the same two-phase shape.
//
// Implementations must be deterministic: for a given term, Synonyms returns
// the same slice contents on every call, sorted ascending, never containing
// the term itself. Table and LoadTable enforce this; custom sources must
// uphold it or the backend's determinism contract breaks.
type SynonymSource interface {
	Synonyms(term string) []string
}

// Table is an in-memory SynonymSource keyed by lowercase headword. Build it
// with NewTable (or LoadTable) so entries satisfy the SynonymSource
// ordering/no-self guarantees.
type Table map[string][]string

// Synonyms implements SynonymSource.
func (t Table) Synonyms(term string) []string { return t[strings.ToLower(term)] }

// NewTable normalizes a raw headword → synonyms mapping into a Table:
// headwords and synonyms are lowercased and trimmed, duplicates and
// self-references dropped, and each entry sorted ascending.
func NewTable(raw map[string][]string) Table {
	t := make(Table, len(raw))
	for head, syns := range raw {
		head = strings.ToLower(strings.TrimSpace(head))
		if head == "" {
			continue
		}
		t.add(head, syns)
	}
	return t
}

func (t Table) add(head string, syns []string) {
	entry := t[head]
	for _, s := range syns {
		s = strings.ToLower(strings.TrimSpace(s))
		if s == "" || s == head || slices.Contains(entry, s) {
			continue
		}
		entry = append(entry, s)
	}
	slices.Sort(entry)
	if len(entry) > 0 {
		t[head] = entry
	}
}

// LoadTable parses a synonym file into a Table. Two line forms are
// accepted, mirroring common thesaurus-file conventions:
//
//	head: syn1, syn2     # directed — syn1/syn2 suggested for head only
//	a, b, c              # symmetric group — each suggests all the others
//
// Blank lines and #-comments (full-line or trailing) are ignored. Parse
// errors report the 1-based line number.
func LoadTable(r io.Reader) (Table, error) {
	t := make(Table)
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if head, rest, ok := strings.Cut(line, ":"); ok {
			head = strings.ToLower(strings.TrimSpace(head))
			if head == "" {
				return nil, fmt.Errorf("synonyms: line %d: empty headword", lineNo)
			}
			syns := splitList(rest)
			if len(syns) == 0 {
				return nil, fmt.Errorf("synonyms: line %d: headword %q has no synonyms", lineNo, head)
			}
			t.add(head, syns)
			continue
		}
		group := splitList(line)
		if len(group) < 2 {
			return nil, fmt.Errorf("synonyms: line %d: symmetric group needs at least two terms", lineNo)
		}
		for _, head := range group {
			t.add(strings.ToLower(head), group)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("synonyms: %w", err)
	}
	return t, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// DefaultSynonyms is the built-in demo table used when no synonym source is
// configured: a miniature WordNet stand-in covering the synthetic corpora's
// ambiguous headwords (each entry spans the senses the datasets give the
// word), so the lexical backend produces meaningful suggestions out of the
// box. Production deployments load a real thesaurus via LoadTable.
func DefaultSynonyms() Table {
	return NewTable(map[string][]string{
		"apple":    {"fruit", "company", "iphone", "mac", "orchard"},
		"java":     {"coffee", "island", "language", "software"},
		"domino":   {"game", "tile", "pizza", "record"},
		"eclipse":  {"shadow", "solar", "ide", "car"},
		"cell":     {"battery", "membrane", "phone", "organism"},
		"mouse":    {"rodent", "cursor", "button", "cartoon"},
		"rockets":  {"launch", "missile", "nba", "space"},
		"cvs":      {"pharmacy", "repository", "store"},
		"columbia": {"university", "river", "album"},
		"san":      {"city"},
		"jose":     {"california"},
		"coffee":   {"brew", "bean", "drink"},
		"island":   {"sea", "volcano"},
		"game":     {"player", "tile", "rules"},
		"phone":    {"mobile", "network", "signal"},
		"camera":   {"lens", "photo", "shutter"},
		"tablet":   {"screen", "battery", "stylus"},
		"laptop":   {"notebook", "keyboard", "screen"},
	})
}

// Lexical is the lexical-synonym backend: query terms map to synonym
// candidates through the SynonymSource, candidates are normalized by the
// corpus analyzer and filtered to the corpus vocabulary, and the survivors
// are ranked by the F-measure of the expanded query against the result
// neighborhood. Stage accounting: candidate generation runs under the
// "problem" span, measurement + ranking under "solve".
type Lexical struct {
	// Source supplies synonym candidates (nil falls back to the Input's
	// Synonyms source, then DefaultSynonyms).
	Source SynonymSource
}

// Name implements Backend.
func (Lexical) Name() string { return "lexical" }

// Expand implements Backend. Determinism: candidates are generated in query
// order then source order (both fixed), measured with the shared
// sorted-order fold, and ranked by F descending with ascending-term
// tie-break under a stable sort.
func (l Lexical) Expand(in *Input) *Output {
	tr := in.Trace

	src := l.Source
	if src == nil {
		src = in.Synonyms
	}
	if src == nil {
		src = DefaultSynonyms()
	}

	tr.Begin(obs.StageProblem)
	// Candidate generation: each query term's synonyms, analyzer-normalized
	// and vocabulary-checked, excluding the query's own terms, deduplicated
	// in encounter order.
	queryTerm := make(map[string]bool, len(in.Query.Terms))
	for _, t := range in.Query.Terms {
		queryTerm[t] = true
	}
	var candidates []string
	seen := make(map[string]bool)
	for _, t := range in.Query.Terms {
		for _, syn := range src.Synonyms(t) {
			for _, norm := range in.Idx.Analyzer().UniqueTerms(syn) {
				if seen[norm] || queryTerm[norm] {
					continue
				}
				seen[norm] = true
				if _, ok := in.Idx.LookupTerm(norm); ok {
					candidates = append(candidates, norm)
				}
			}
		}
	}
	tr.End(obs.StageProblem)

	tr.Begin(obs.StageSolve)
	universe, w := neighborhood(in)
	scored := make([]Suggestion, 0, len(candidates))
	for _, c := range candidates {
		q := in.Query.With(c)
		scored = append(scored, Suggestion{Terms: q.Terms, PRF: measure(in, q, universe, w)})
	}
	// Rank by F descending; ascending expansion term on ties (the pre-sort
	// by term supplies the base order, the stable sort preserves it).
	slices.SortFunc(scored, func(a, b Suggestion) int {
		return strings.Compare(a.Terms[len(a.Terms)-1], b.Terms[len(b.Terms)-1])
	})
	slices.SortStableFunc(scored, func(a, b Suggestion) int {
		switch {
		case a.PRF.F > b.PRF.F:
			return -1
		case a.PRF.F < b.PRF.F:
			return 1
		}
		return 0
	})
	if len(scored) > in.K {
		scored = scored[:in.K]
	}
	tr.End(obs.StageSolve)
	return assemble(scored)
}

var _ Backend = Lexical{}
