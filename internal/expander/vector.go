package expander

import (
	"slices"

	"repro/internal/obs"
	"repro/internal/termdict"
)

// Vector is the vector-neighborhood backend: embed the top-ranked result
// documents as TF-IDF vectors over the corpus-global TermID space, average
// them into a neighborhood centroid, and suggest the highest-weight centroid
// terms outside the query. Stage accounting: centroid accumulation runs
// under the "cluster" span, term ranking + measurement under "solve".
type Vector struct {
	// Neighbors caps how many top results form the neighborhood centroid
	// (<= 0 means DefaultNeighbors). The embedding-search recipe this
	// follows averages a handful of nearest neighbors, not the whole result
	// set — a small cap keeps the centroid on the query's dominant senses.
	Neighbors int
}

// DefaultNeighbors is the neighborhood size when Vector.Neighbors is unset.
const DefaultNeighbors = 10

// Name implements Backend.
func (Vector) Name() string { return "vector" }

// Expand implements Backend. Determinism: documents accumulate into the
// centroid in ascending rank order (the engine's result order is already
// deterministic), candidate terms rank by weight descending with ascending
// TermID tie-break, and measurement reuses the shared sorted-order fold.
func (v Vector) Expand(in *Input) *Output {
	tr := in.Trace

	tr.Begin(obs.StageCluster)
	n := v.Neighbors
	if n <= 0 {
		n = DefaultNeighbors
	}
	if n > len(in.Results) {
		n = len(in.Results)
	}
	// The neighborhood centroid, accumulated term-by-term over an
	// epoch-stamped dense buffer (first touch zero-initializes, so the sums
	// equal a fresh buffer's). The mean's 1/n scale is a positive constant
	// factor on every component — it cannot change the ranking below — so
	// it is folded away entirely.
	var s termdict.DenseScratch
	s.Reset(in.Idx.NumTerms())
	for _, r := range in.Results[:n] {
		tids := in.Idx.DocTermIDs(r.Doc)
		freqs := in.Idx.DocTermFreqs(r.Doc)
		for i, tid := range tids {
			s.Add(tid, float64(freqs[i])*in.Idx.IDFByID(tid))
		}
	}
	tr.End(obs.StageCluster)

	tr.Begin(obs.StageSolve)
	// Rank the touched terms by centroid weight descending, TermID
	// ascending on ties (the pre-sort supplies the ascending base order and
	// the stable sort preserves it within equal weights); the query's own
	// terms never become suggestions.
	qids := termdict.ResolveSorted(in.Idx.Dict(), in.Query.Terms)
	ranked := s.Touched
	slices.Sort(ranked)
	slices.SortStableFunc(ranked, func(a, b termdict.TermID) int {
		switch {
		case s.Vals[a] > s.Vals[b]:
			return -1
		case s.Vals[a] < s.Vals[b]:
			return 1
		}
		return 0
	})
	universe, w := neighborhood(in)
	suggestions := make([]Suggestion, 0, in.K)
	for _, tid := range ranked {
		if len(suggestions) == in.K {
			break
		}
		if _, isQueryTerm := slices.BinarySearch(qids, tid); isQueryTerm {
			continue
		}
		q := in.Query.With(in.Idx.TermByID(tid))
		suggestions = append(suggestions, Suggestion{
			Terms: q.Terms,
			PRF:   measure(in, q, universe, w),
		})
	}
	tr.End(obs.StageSolve)
	return assemble(suggestions)
}

var _ Backend = Vector{}
