// Command qec-bench regenerates the paper's tables and figures as text.
//
// Usage:
//
//	qec-bench -figure 5a          # one figure: 1, 2, 3, 4, 5a, 5b, 6a, 6b, 7, 8
//	qec-bench -table 1            # the Table 1 query sets
//	qec-bench -clustering-time    # §5.3's clustering-time prose numbers
//	qec-bench -all                # everything
//	qec-bench -scale 4 -seed 7 -figure 6a
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	var (
		figure      = flag.String("figure", "", "figure to regenerate: 1, 2, 3, 4, 5a, 5b, 6a, 6b, 7, 8")
		table       = flag.Int("table", 0, "table to regenerate (1)")
		clusterTime = flag.Bool("clustering-time", false, "report mean clustering time per dataset")
		all         = flag.Bool("all", false, "regenerate everything")
		seed        = flag.Int64("seed", 2011, "dataset / clustering / PEBC seed")
		scale       = flag.Int("scale", 1, "corpus scale multiplier")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	runner := experiment.NewRunner(cfg)

	if *all {
		printTable1(runner)
		study := runner.RunStudy()
		printFigure12(study)
		printFigure34(study)
		printFigure5(study, "shopping", "5a")
		printFigure5(study, "wikipedia", "5b")
		printFigure6(study, "shopping", "6a")
		printFigure6(study, "wikipedia", "6b")
		printClusteringTime(study)
		printFigure7(runner)
		printListing(study)
		return
	}

	if *table == 1 {
		printTable1(runner)
		return
	}
	if *clusterTime {
		printClusteringTime(runner.RunStudy())
		return
	}

	switch *figure {
	case "1", "2":
		printFigure12(runner.RunStudy())
	case "3", "4":
		printFigure34(runner.RunStudy())
	case "5a":
		printFigure5(runner.RunStudy(), "shopping", "5a")
	case "5b":
		printFigure5(runner.RunStudy(), "wikipedia", "5b")
	case "6a":
		printFigure6(runner.RunStudy(), "shopping", "6a")
	case "6b":
		printFigure6(runner.RunStudy(), "wikipedia", "6b")
	case "7":
		printFigure7(runner)
	case "8", "9":
		printListing(runner.RunStudy())
	case "":
		flag.Usage()
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

func printTable1(r *experiment.Runner) {
	wiki, shop := r.Table1()
	fmt.Println("Table 1: Data and Query Sets")
	fmt.Println("  Wikipedia")
	for _, q := range wiki {
		fmt.Printf("    %-5s %s\n", q.ID, q.Raw)
	}
	fmt.Println("  Shopping")
	for _, q := range shop {
		fmt.Printf("    %-5s %s\n", q.ID, q.Raw)
	}
	fmt.Println()
}

func printFigure12(s *experiment.Study) {
	fmt.Println("Figure 1: Average Individual Query Score (1-5)")
	rows := s.Figure1And2()
	for _, ms := range rows {
		fmt.Printf("  %-12s %.2f\n", ms.Method, ms.Summary.MeanScore)
	}
	fmt.Println("Figure 2: Percentage of Users Choosing Options (A), (B), (C)")
	fmt.Printf("  %-12s %6s %6s %6s\n", "method", "A%", "B%", "C%")
	for _, ms := range rows {
		fmt.Printf("  %-12s %6.1f %6.1f %6.1f\n", ms.Method,
			ms.Summary.PctA, ms.Summary.PctB, ms.Summary.PctC)
	}
	fmt.Println()
}

func printFigure34(s *experiment.Study) {
	fmt.Println("Figure 3: Collective Query Score (1-5)")
	rows := s.Figure3And4()
	for _, ms := range rows {
		fmt.Printf("  %-12s %.2f\n", ms.Method, ms.Summary.MeanScore)
	}
	fmt.Println("Figure 4: Percentage of Users Choosing Options (A), (B), (C)")
	fmt.Println("  (A) not comprehensive and not diverse / (B) one of the two / (C) both")
	fmt.Printf("  %-12s %6s %6s %6s\n", "method", "A%", "B%", "C%")
	for _, ms := range rows {
		fmt.Printf("  %-12s %6.1f %6.1f %6.1f\n", ms.Method,
			ms.Summary.PctA, ms.Summary.PctB, ms.Summary.PctC)
	}
	fmt.Println()
}

func printFigure5(s *experiment.Study, ds, label string) {
	fmt.Printf("Figure %s: Scores of Expanded Queries (Eq. 1), %s\n", label, ds)
	fmt.Printf("  %-6s %6s %6s %10s %6s\n", "query", "ISKR", "PEBC", "F-measure", "CS")
	for _, row := range s.Figure5(ds) {
		fmt.Printf("  %-6s %6.2f %6.2f %10.2f %6.2f\n", row.QueryID,
			row.Scores[experiment.MethodISKR], row.Scores[experiment.MethodPEBC],
			row.Scores[experiment.MethodFMeasure], row.Scores[experiment.MethodCS])
	}
	fmt.Println()
}

func printFigure6(s *experiment.Study, ds, label string) {
	fmt.Printf("Figure %s: Query Expansion Time, %s\n", label, ds)
	fmt.Printf("  %-6s %10s %10s %12s %10s %12s\n", "query", "ISKR", "PEBC",
		"F-measure", "CS", "DataClouds")
	for _, row := range s.Figure6(ds) {
		fmt.Printf("  %-6s %10v %10v %12v %10v %12v\n", row.QueryID,
			row.Times[experiment.MethodISKR], row.Times[experiment.MethodPEBC],
			row.Times[experiment.MethodFMeasure], row.Times[experiment.MethodCS],
			row.Times[experiment.MethodDataClouds])
	}
	fmt.Println()
}

func printClusteringTime(s *experiment.Study) {
	fmt.Println("Clustering time (§5.3 prose; paper: 0.02s shopping, 0.35s Wikipedia)")
	fmt.Printf("  shopping:  %v\n", s.ClusteringTime("shopping"))
	fmt.Printf("  wikipedia: %v\n", s.ClusteringTime("wikipedia"))
	fmt.Println()
}

func printFigure7(r *experiment.Runner) {
	fmt.Println("Figure 7: Scalability over Number of Results (QW2 'columbia';")
	fmt.Println("          clustering + generation time, as in the paper)")
	fmt.Printf("  %-8s %10s %10s\n", "results", "ISKR", "PEBC")
	for _, row := range r.Figure7(nil) {
		fmt.Printf("  %-8d %10v %10v\n", row.NumResults, row.ISKR, row.PEBC)
	}
	fmt.Println()
}

func printListing(s *experiment.Study) {
	fmt.Println("Figures 8-9: Expanded Queries")
	last := ""
	for _, e := range s.Listing() {
		if e.QueryID != last {
			fmt.Printf("%s:\n", e.QueryID)
			last = e.QueryID
		}
		fmt.Printf("  %-12s\n", e.Method)
		for i, q := range e.Queries {
			fmt.Printf("    q%d: %q\n", i+1, q)
		}
	}
}
