// Command qec-serve exposes the query expansion pipeline as a JSON HTTP
// service: POST /search, POST /expand, GET /healthz and GET /stats.
//
// The corpus comes from either a persisted index snapshot (written by
// Engine.Save / qec-serve -write-index) or one of the synthetic datasets:
//
//	qec-serve -dataset wikipedia -scale 2 -addr :8080
//	qec-serve -index wiki.idx -stemming
//	qec-serve -dataset shopping -write-index shop.idx   # build, save, serve
//
// Repeated expansions of popular queries are served from a sharded LRU cache
// (-cache) and concurrent identical requests are coalesced into a single
// computation, so a hot ambiguous query ("apple", "jaguar") costs one
// k-means + ISKR run no matter how many users issue it at once.
//
// -quality sets the default clustering quality mode for expand requests that
// don't pin one ("exact" keeps the bit-identical 5-restart pipeline;
// "serving" trades a small deterministic accuracy delta for latency —
// fewer restarts, bound-pruned assignment, early restart abandonment):
//
//	qec-serve -dataset wikipedia -quality serving
//
// Expand requests select their expansion backend with the wire field
// "method" (iskr, pebc, deltaf, or, vector, lexical, orthogonal — aliases
// accepted; see docs/EXPANDERS.md). -synonyms loads a thesaurus file for
// method=lexical requests in place of the built-in demo table:
//
//	qec-serve -dataset wikipedia -synonyms thesaurus.txt
//
// With -pprof-addr a net/http/pprof debug listener starts on a separate
// address (off by default), so serving hot paths can be profiled in place —
// profiles are labeled per pipeline stage (qec_stage=...) while it is on:
//
//	qec-serve -dataset wikipedia -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
//
// Telemetry: GET /metrics serves Prometheus text exposition (including
// windowed 1m/5m QPS and error-rate gauges and build info); GET /stats adds
// latency quantiles and the same windowed rates. -access-log writes one JSON
// line per request (trace ID, endpoint, query, latency, cache disposition,
// status); -slow-query-ms marks requests over the threshold and attaches
// their per-stage breakdown:
//
//	qec-serve -dataset wikipedia -access-log access.jsonl -slow-query-ms 50
//
// Request introspection: GET /debug/requests lists the flight recorder's
// most recent completed requests (filterable by endpoint, min_ms and
// outcome; slow and failed requests survive sampling) plus everything
// currently in flight; GET /debug/requests/{trace_id} fetches one record.
// -flight sizes the recorder. Expand requests with "explain": true receive
// the pipeline's full decision trail inline (see docs/OBSERVABILITY.md).
// SIGUSR1 dumps the in-flight request registry to the access log.
//
// Under saturation the server degrades quality before availability: an
// adaptive controller (on by default; -degrade=false disables) walks a
// five-tier ladder — forced serving quality, capped restarts, cache-only,
// and only then shedding with 503 + Retry-After. -degrade-max-tier clamps
// the ladder (3 forbids shedding); SIGUSR2 logs the controller snapshot.
// See docs/DEGRADATION.md. Building with -tags faultinject adds the
// QEC_FAULTS chaos hook for drills.
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests run
// to completion, later arrivals get a retryable 503.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	qec "repro"
	"repro/internal/dataset"
	"repro/internal/document"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		flightCap  = flag.Int("flight", 256, "flight recorder capacity: completed request records retained for GET /debug/requests")
		indexPath  = flag.String("index", "", "load a persisted index snapshot instead of generating a dataset")
		writeIndex = flag.String("write-index", "", "after building, save the index snapshot here")
		ds         = flag.String("dataset", "wikipedia", "generated corpus when -index is unset: shopping or wikipedia")
		seed       = flag.Int64("seed", 2011, "dataset generation seed")
		scale      = flag.Int("scale", 1, "corpus scale multiplier")
		stemming   = flag.Bool("stemming", false, "use the stemming analyzer (must match a loaded index)")
		cacheSize  = flag.Int("cache", 1024, "expansion cache capacity in entries (0 disables)")
		workers    = flag.Int("workers", 0, "max concurrent expansions (0 = 2x GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		quality    = flag.String("quality", "exact", "default clustering quality for expand requests that don't set one: exact or serving")
		synonyms   = flag.String("synonyms", "", `thesaurus file for method=lexical requests ("head: syn1, syn2" | "a, b, c"; empty = built-in demo table)`)
		pprofAddr  = flag.String("pprof-addr", "", "separate net/http/pprof debug listener address (empty disables)")
		accessLog  = flag.String("access-log", "", `JSON-lines access log: "stderr", "stdout" or a file path (empty disables)`)
		slowMS     = flag.Int("slow-query-ms", 0, "log requests at or above this latency with their per-stage breakdown (0 disables)")
		degrade    = flag.Bool("degrade", true, "enable the adaptive degradation controller (see docs/DEGRADATION.md)")
		degradeMax = flag.Int("degrade-max-tier", 4, "highest degradation tier the controller may reach (1-4; 3 forbids shedding)")
	)
	flag.Parse()

	defQuality, ok := qec.ParseQuality(*quality)
	if !ok {
		log.Fatalf("unknown -quality %q (want exact or serving)", *quality)
	}

	if *pprofAddr != "" {
		// Stage labels cost a little on every span; only pay for them when
		// an operator actually asked for profiling.
		obs.EnableProfileLabels(true)
		go servePprof(*pprofAddr)
	}

	accessW, err := openLog(*accessLog)
	if err != nil {
		log.Fatalf("-access-log: %v", err)
	}
	var slowW io.Writer
	if *slowMS > 0 && accessW == nil {
		// No access log: slow-query breakdowns still need somewhere to go.
		slowW = os.Stderr
	}

	var opts []qec.Option
	if *stemming {
		opts = append(opts, qec.WithStemming())
	}
	opts = append(opts, qec.WithSeed(*seed))
	if *cacheSize > 0 {
		opts = append(opts, qec.WithExpansionCache(*cacheSize))
	}
	if *synonyms != "" {
		f, err := os.Open(*synonyms)
		if err != nil {
			log.Fatalf("-synonyms: %v", err)
		}
		src, err := qec.LoadSynonyms(f)
		f.Close()
		if err != nil {
			log.Fatalf("-synonyms: %v", err)
		}
		opts = append(opts, qec.WithSynonyms(src))
	}

	eng, err := loadEngine(*indexPath, *ds, *seed, *scale, opts)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	eng.Build()
	log.Printf("corpus ready: %d documents, index built in %v", eng.Len(), time.Since(start))

	if *writeIndex != "" {
		f, err := os.Create(*writeIndex)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("index snapshot written to %s", *writeIndex)
	}

	if *slowMS <= 0 && accessW == nil && slowW == nil {
		// The active-request dump (SIGUSR1) needs a destination even when no
		// access log was configured.
		slowW = os.Stderr
	}
	srv := server.New(wrapEngine(eng), server.Options{
		RequestTimeout: *timeout,
		MaxConcurrent:  *workers,
		DefaultQuality: defQuality,
		AccessLog:      accessW,
		SlowQuery:      time.Duration(*slowMS) * time.Millisecond,
		SlowLog:        slowW,
		FlightCapacity: *flightCap,
		Degrade:        *degrade,
		DegradeMaxTier: *degradeMax,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGUSR1 dumps the in-flight request registry to the access log — the
	// "what is this server doing right now" signal, answerable without
	// restarting or attaching a debugger.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			n := srv.DumpActive()
			log.Printf("SIGUSR1: dumped %d active request(s)", n)
		}
	}()

	// SIGUSR2 dumps the degradation controller's snapshot — current tier,
	// pressure and transition count — for an operator deciding whether the
	// server is degraded because of load or stuck because of a bug.
	usr2 := make(chan os.Signal, 1)
	signal.Notify(usr2, syscall.SIGUSR2)
	go func() {
		for range usr2 {
			if snap, ok := srv.DegradeSnapshot(); ok {
				log.Printf("SIGUSR2: degrade tier=%s pressure=%.3f steps=%d transitions=%d",
					snap.Tier, snap.Pressure, snap.Steps, snap.Transitions)
			} else {
				log.Print("SIGUSR2: degradation controller disabled (-degrade=false)")
			}
		}
	}()
	log.Printf("serving on %s (cache %d entries, timeout %v, quality %s)",
		*addr, *cacheSize, *timeout, defQuality)
	if err := srv.Run(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shutdown complete")
}

// openLog resolves an -access-log destination. An empty path disables the
// log (nil writer); files are opened in append mode so restarts do not
// truncate history.
func openLog(path string) (io.Writer, error) {
	switch path {
	case "":
		return nil, nil
	case "stderr":
		return os.Stderr, nil
	case "stdout":
		return os.Stdout, nil
	default:
		return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	}
}

// servePprof runs the pprof debug mux on its own listener, kept off the
// serving mux so profiling endpoints are never exposed on the public
// address. Failure to bind is fatal: an operator who asked for profiling
// should not silently run without it.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof debug listener on %s", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}

// loadEngine restores a snapshot when path is set, otherwise fills an engine
// from a generated dataset.
func loadEngine(path, ds string, seed int64, scale int, opts []qec.Option) (*qec.Engine, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		eng, err := qec.LoadEngine(f, opts...)
		if err != nil {
			return nil, err
		}
		return eng, nil
	}

	var d *dataset.Dataset
	switch ds {
	case "shopping":
		d = dataset.Shopping(seed, scale)
	case "wikipedia":
		d = dataset.Wikipedia(seed+1, scale)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want shopping or wikipedia)", ds)
	}
	eng := qec.NewEngine(opts...)
	for _, doc := range d.Corpus.Docs() {
		if doc.Kind == document.Structured {
			eng.AddProduct(doc.Title, doc.Triplets)
		} else {
			eng.AddText(doc.Title, doc.Body)
		}
	}
	return eng, nil
}
