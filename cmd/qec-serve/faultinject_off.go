//go:build !faultinject

package main

import "repro/internal/server"

// wrapEngine is the no-op default: fault injection compiles out of normal
// builds entirely. Build with -tags faultinject to get the QEC_FAULTS hook.
func wrapEngine(eng server.Engine) server.Engine { return eng }
