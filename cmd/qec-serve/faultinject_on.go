//go:build faultinject

package main

import (
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// wrapEngine (faultinject builds only) reads a fault plan from QEC_FAULTS
// and wraps the engine with deterministic injectors — a chaos-drill switch
// for staging, never compiled into release binaries.
//
// QEC_FAULTS is comma-separated key=value pairs:
//
//	stall=N     stall every Nth expand until its deadline
//	cancel=N    run every Nth expand with a cancelled context
//	latency=N   add a latency spike to every Nth expand
//	spike=DUR   the spike duration (default 50ms), e.g. spike=200ms
//	poison=N    flip a byte in a copy of every Nth expand's response
//
// Example:
//
//	QEC_FAULTS=latency=5,spike=200ms,stall=97 qec-serve -dataset wikipedia
func wrapEngine(eng server.Engine) server.Engine {
	spec := os.Getenv("QEC_FAULTS")
	if spec == "" {
		log.Print("faultinject build: QEC_FAULTS unset, no faults active")
		return eng
	}
	var plan faultinject.Plan
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			log.Fatalf("QEC_FAULTS: bad entry %q (want key=value)", kv)
		}
		switch key {
		case "stall", "cancel", "latency", "poison":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				log.Fatalf("QEC_FAULTS: bad %s=%q", key, val)
			}
			switch key {
			case "stall":
				plan.StallEvery = n
			case "cancel":
				plan.CancelEvery = n
			case "latency":
				plan.LatencyEvery = n
			case "poison":
				plan.PoisonEvery = n
			}
		case "spike":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				log.Fatalf("QEC_FAULTS: bad spike=%q", val)
			}
			plan.Latency = d
		default:
			log.Fatalf("QEC_FAULTS: unknown key %q", key)
		}
	}
	log.Printf("faultinject build: plan %+v", plan)
	return faultinject.Wrap(eng, plan)
}
