// qec-benchdiff compares a `go test -bench` output file against a checked-in
// baseline (BENCH_BASELINE.json) and fails when a gated benchmark regressed
// by more than its threshold. It is the CI benchmark-regression gate.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=200ms -count=5 -run='^$' ./... | tee bench.txt
//	qec-benchdiff -bench bench.txt -baseline BENCH_BASELINE.json
//
// With -count > 1 each benchmark appears several times; the minimum ns/op
// (and minimum allocs/op) is used — the least-noise estimator of the true
// cost. -update rewrites the baseline from the bench file instead of
// comparing.
//
// The gate is a comma-separated list of regexp entries, each optionally
// carrying its own threshold ("pattern" or "pattern=0.30"); entries without
// one use -threshold. Every gate entry must match at least one benchmark in
// the current results — a gated benchmark that is missing (renamed, deleted,
// or simply not run) fails the gate instead of silently passing. Allocation
// regressions are gated the same way via -alloc-gate/-alloc-threshold using
// allocs/op from -benchmem output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline is the checked-in benchmark reference.
type baseline struct {
	// Note describes how the numbers were produced (machine, flags).
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to the
	// minimum observed ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps benchmark name to the minimum observed allocs/op
	// (absent when the bench run lacked -benchmem).
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// result is one parsed benchmark measurement.
type result struct {
	ns     float64
	allocs float64
	hasNs  bool
	hasAl  bool
}

// benchLine matches e.g.
// "BenchmarkVectorDot-8   4339328   55.12 ns/op   16 B/op   2 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) allocs/op)?`)

// parseBench extracts min ns/op and min allocs/op per benchmark name from
// go test -bench output.
func parseBench(data string) map[string]result {
	out := map[string]result{}
	for _, line := range strings.Split(data, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := out[m[1]]
		if !r.hasNs || ns < r.ns {
			r.ns = ns
		}
		r.hasNs = true
		if m[3] != "" {
			if al, err := strconv.ParseFloat(m[3], 64); err == nil {
				if !r.hasAl || al < r.allocs {
					r.allocs = al
				}
				r.hasAl = true
			}
		}
		out[m[1]] = r
	}
	return out
}

// gateEntry is one parsed gate pattern with its effective threshold.
type gateEntry struct {
	raw       string
	re        *regexp.Regexp
	threshold float64
}

// parseGates parses "pattern,pattern=0.30,..." using def as the fallback
// threshold.
func parseGates(spec string, def float64) ([]gateEntry, error) {
	var out []gateEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pattern, threshold := part, def
		if i := strings.LastIndex(part, "="); i >= 0 {
			f, err := strconv.ParseFloat(part[i+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("bad threshold in gate entry %q: %v", part, err)
			}
			pattern, threshold = part[:i], f
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("bad gate pattern %q: %v", pattern, err)
		}
		out = append(out, gateEntry{raw: part, re: re, threshold: threshold})
	}
	return out, nil
}

// match returns the first gate entry matching name, or nil.
func match(gates []gateEntry, name string) *gateEntry {
	for i := range gates {
		if gates[i].re.MatchString(name) {
			return &gates[i]
		}
	}
	return nil
}

func main() {
	var (
		benchPath    = flag.String("bench", "bench.txt", "go test -bench output file")
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
		threshold    = flag.Float64("threshold", 0.20, "default relative ns/op regression that fails the gate")
		gate         = flag.String("gate",
			"AdmissionDecision=1.0,ColdExpansionInstrumented=0.05,ExplainOff=0.05,ColdExpansion,ExpandServingCold,ExpandServingCached=0.35,AblationPEBC=0.30,Figure7Scalability=0.30,Figure1IndividualScores=0.30,TermDictLookup=0.50,PostingsIter=0.30,PoolScoring=0.30,Figure6aShoppingTimeFMeasure=0.05,Figure6bWikipediaTimeFMeasure=0.05,KMeansFull=0.30,KMeansDenseAssign=0.30,KMeansServingMode=0.30,SearchTopKDeep=0.30,SearchOrMerge=0.30",
			"comma-separated gate entries: regexp[=threshold]; every entry must match a benchmark in the bench output")
		allocGate = flag.String("alloc-gate",
			"AdmissionDecision=0.0,ColdExpansionInstrumented=0.0,ExplainOff=0.0,ObsOverhead=0.0,ColdExpansion,ExpandServing,AblationPEBC,Figure6,EngineExpandEndToEnd,PoolScoring,KMeansDenseAssign,KMeansServingMode,WireSearch,WireExpandCached,SearchTopKDeep=0.0,SearchOrMerge=0.0",
			"comma-separated gate entries for allocs/op regressions (requires -benchmem output)")
		allocThreshold = flag.Float64("alloc-threshold", 0.30, "default relative allocs/op regression that fails the gate")
		update         = flag.Bool("update", false, "rewrite the baseline from the bench file and exit")
		note           = flag.String("note", "", "provenance note stored with -update")
	)
	flag.Parse()

	data, err := os.ReadFile(*benchPath)
	if err != nil {
		fatalf("read bench output: %v", err)
	}
	current := parseBench(string(data))
	if len(current) == 0 {
		fatalf("no benchmark lines found in %s", *benchPath)
	}

	if *update {
		b := baseline{Note: *note, NsPerOp: map[string]float64{}, AllocsPerOp: map[string]float64{}}
		for name, r := range current {
			b.NsPerOp[name] = r.ns
			if r.hasAl {
				b.AllocsPerOp[name] = r.allocs
			}
		}
		if len(b.AllocsPerOp) == 0 {
			b.AllocsPerOp = nil
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatalf("encode baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("write baseline: %v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks, %d with allocs)\n",
			*baselinePath, len(b.NsPerOp), len(b.AllocsPerOp))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline: %v", err)
	}
	gates, err := parseGates(*gate, *threshold)
	if err != nil {
		fatalf("-gate: %v", err)
	}
	allocGates, err := parseGates(*allocGate, *allocThreshold)
	if err != nil {
		fatalf("-alloc-gate: %v", err)
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}

	fmt.Printf("%-44s %14s %14s %8s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "gate")
	for _, name := range names {
		old := base.NsPerOp[name]
		g := match(gates, name)
		cur, ok := current[name]
		if !ok {
			if g != nil {
				fail("%s: gated benchmark missing from bench output", name)
			}
			continue
		}
		delta := (cur.ns - old) / old
		status := ""
		if g != nil {
			status = "ok"
			if delta > g.threshold {
				status = fmt.Sprintf("FAIL (> +%.0f%%)", g.threshold*100)
				failed = true
			}
		}
		fmt.Printf("%-44s %14.1f %14.1f %+7.1f%%  %s\n", name, old, cur.ns, delta*100, status)

		// Allocation gate: compares allocs/op when the baseline recorded it.
		if ag := match(allocGates, name); ag != nil {
			baseAl, hasBase := base.AllocsPerOp[name]
			switch {
			case !hasBase:
				// Baseline predates -benchmem for this benchmark; nothing to
				// compare against (the next -update records it).
			case !cur.hasAl:
				fail("%s: alloc-gated benchmark has no allocs/op in bench output (run with -benchmem)", name)
			case baseAl == 0:
				if cur.allocs > 0 {
					fail("%s: allocs/op regressed from 0 to %.1f", name, cur.allocs)
				}
			case (cur.allocs-baseAl)/baseAl > ag.threshold:
				fail("%s: allocs/op %.1f vs baseline %.1f (> +%.0f%%)",
					name, cur.allocs, baseAl, ag.threshold*100)
			}
		}
	}
	for name := range current {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Printf("%-44s %14s %14.1f %8s  new (not in baseline)\n", name, "-", current[name].ns, "-")
		}
	}
	// Every gate entry must have matched something that actually ran: a gate
	// over a renamed or never-run benchmark must fail loudly, not pass
	// vacuously.
	for _, gs := range [][]gateEntry{gates, allocGates} {
		for _, g := range gs {
			matched := false
			for name := range current {
				if g.re.MatchString(name) {
					matched = true
					break
				}
			}
			if !matched {
				fail("gate entry %q matches no benchmark in the bench output", g.raw)
			}
		}
	}
	if failed {
		fatalf("benchmark regression gate failed")
	}
	fmt.Println("benchmark gate passed")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qec-benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
