// qec-benchdiff compares a `go test -bench` output file against a checked-in
// baseline (BENCH_BASELINE.json) and fails when a gated benchmark regressed
// by more than the threshold. It is the CI benchmark-regression gate.
//
// Usage:
//
//	go test -bench=. -benchtime=200ms -count=5 -run='^$' ./... | tee bench.txt
//	qec-benchdiff -bench bench.txt -baseline BENCH_BASELINE.json
//
// With -count > 1 each benchmark appears several times; the minimum ns/op is
// used (the least-noise estimator of the true cost). -update rewrites the
// baseline from the bench file instead of comparing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline is the checked-in benchmark reference.
type baseline struct {
	// Note describes how the numbers were produced (machine, flags).
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to the
	// minimum observed ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches e.g. "BenchmarkVectorDot-8   4339328   55.12 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts min ns/op per benchmark name from go test -bench output.
func parseBench(data string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(data, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out
}

func main() {
	var (
		benchPath    = flag.String("bench", "bench.txt", "go test -bench output file")
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON file")
		threshold    = flag.Float64("threshold", 0.20, "relative ns/op regression that fails the gate")
		gate         = flag.String("gate", "ColdExpansion|ExpandServingCold|ExpandServingCached",
			"regexp of benchmark names the gate enforces; others are reported only")
		update = flag.Bool("update", false, "rewrite the baseline from the bench file and exit")
		note   = flag.String("note", "", "provenance note stored with -update")
	)
	flag.Parse()

	data, err := os.ReadFile(*benchPath)
	if err != nil {
		fatalf("read bench output: %v", err)
	}
	current := parseBench(string(data))
	if len(current) == 0 {
		fatalf("no benchmark lines found in %s", *benchPath)
	}

	if *update {
		b := baseline{Note: *note, NsPerOp: current}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatalf("encode baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("write baseline: %v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baselinePath, len(current))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline: %v", err)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fatalf("bad -gate regexp: %v", err)
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-44s %14s %14s %8s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "gate")
	for _, name := range names {
		old := base.NsPerOp[name]
		gated := gateRe.MatchString(name)
		cur, ok := current[name]
		if !ok {
			if gated {
				fmt.Printf("%-44s %14.1f %14s %8s  MISSING (gated benchmark not run)\n", name, old, "-", "-")
				failed = true
			}
			continue
		}
		delta := (cur - old) / old
		status := ""
		if gated {
			status = "ok"
			if delta > *threshold {
				status = fmt.Sprintf("FAIL (> +%.0f%%)", *threshold*100)
				failed = true
			}
		}
		fmt.Printf("%-44s %14.1f %14.1f %+7.1f%%  %s\n", name, old, cur, delta*100, status)
	}
	for name := range current {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Printf("%-44s %14s %14.1f %8s  new (not in baseline)\n", name, "-", current[name], "-")
		}
	}
	if failed {
		fatalf("benchmark regression gate failed (threshold +%.0f%% on %q)", *threshold*100, *gate)
	}
	fmt.Println("benchmark gate passed")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qec-benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
