// Command qec-search runs keyword searches over one of the synthetic
// corpora and prints ranked results.
//
// Usage:
//
//	qec-search -dataset wikipedia -query "java" -top 10
//	qec-search -dataset shopping -query "canon products"
//	qec-search -dataset shopping -query "canon printer" -sem or -topk 5
//
// A positive -topk (or -top) takes the engine's pruned exact top-K path —
// identical results to full scoring, skipping most of the postings. -sem
// selects AND (every keyword) or OR (any keyword) matching. -explain prints
// the pruning counters after the run: blocks skipped wholesale, cursor
// advances, docs scored versus skipped by the block-max bound, and the
// heap-threshold trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/search"
)

func main() {
	var (
		ds      = flag.String("dataset", "wikipedia", "corpus: shopping or wikipedia")
		query   = flag.String("query", "", "keyword query (required)")
		top     = flag.Int("top", 10, "number of results to print (0 = all)")
		topk    = flag.Int("topk", -1, "exact top-K result count; overrides -top when set (0 = all)")
		sem     = flag.String("sem", "and", "match semantics: \"and\" (every keyword) or \"or\" (any keyword)")
		seed    = flag.Int64("seed", 2011, "dataset seed")
		scale   = flag.Int("scale", 1, "corpus scale multiplier")
		explain = flag.Bool("explain", false, "print the top-K pruning counters after the results")
	)
	flag.Parse()
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}
	k := *top
	if *topk >= 0 {
		k = *topk
	}
	var semantics search.Semantics
	switch *sem {
	case "and":
		semantics = search.And
	case "or":
		semantics = search.Or
	default:
		fmt.Fprintf(os.Stderr, "unknown semantics %q (want \"and\" or \"or\")\n", *sem)
		os.Exit(2)
	}

	var d *dataset.Dataset
	switch *ds {
	case "shopping":
		d = dataset.Shopping(*seed, *scale)
	case "wikipedia":
		d = dataset.Wikipedia(*seed+1, *scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	eng := search.NewEngine(d.Index)
	q := search.ParseQuery(d.Index, *query)
	var prune *search.PruneStats
	if *explain {
		prune = &search.PruneStats{}
	}
	results := eng.SearchPruned(q, semantics, k, prune)
	fmt.Printf("%d results for %q (parsed: %v) on %s (%d docs)\n",
		len(results), *query, q.Terms, d.Name, d.Corpus.Len())
	for i, r := range results {
		doc := d.Corpus.Get(r.Doc)
		text := doc.Title
		if text == "" {
			text = doc.Body
		}
		if len(text) > 90 {
			text = text[:90] + "…"
		}
		fmt.Printf("%3d. [%.3f] #%-4d %-24s %s\n", i+1, r.Score, r.Doc,
			d.Labels[r.Doc], text)
	}
	if prune != nil {
		if !prune.Pruned {
			fmt.Println("explain: full scan — no pruning possible (topk 0 or single-block postings)")
			return
		}
		fmt.Printf("explain: %d blocks skipped, %d cursor advances, %d docs scored, %d skipped by bound\n",
			prune.BlocksSkipped, prune.CursorAdvances, prune.DocsScored, prune.DocsSkipped)
		if semantics == search.Or {
			fmt.Printf("explain: %d non-essential cursors parked by max-score\n", prune.NonEssential)
		}
		if n := len(prune.Thresholds); n > 0 {
			fmt.Printf("explain: heap threshold %.4f -> %.4f over %d raises\n",
				prune.Thresholds[0], prune.Thresholds[n-1], n)
		}
	}
}
