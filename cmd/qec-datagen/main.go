// Command qec-datagen dumps one of the synthetic corpora so the generated
// data can be inspected or consumed by external tools.
//
// Usage:
//
//	qec-datagen -dataset shopping -format text | head
//	qec-datagen -dataset wikipedia -format json > wiki.json
//	qec-datagen -dataset shopping -format stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/document"
)

type jsonDoc struct {
	ID       int                `json:"id"`
	Label    string             `json:"label"`
	Title    string             `json:"title,omitempty"`
	Body     string             `json:"body,omitempty"`
	Triplets []document.Triplet `json:"triplets,omitempty"`
}

func main() {
	var (
		ds     = flag.String("dataset", "shopping", "corpus: shopping or wikipedia")
		format = flag.String("format", "text", "output: text, json, stats")
		seed   = flag.Int64("seed", 2011, "dataset seed")
		scale  = flag.Int("scale", 1, "corpus scale multiplier")
	)
	flag.Parse()

	var d *dataset.Dataset
	switch *ds {
	case "shopping":
		d = dataset.Shopping(*seed, *scale)
	case "wikipedia":
		d = dataset.Wikipedia(*seed+1, *scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	switch *format {
	case "text":
		for _, doc := range d.Corpus.Docs() {
			fmt.Printf("#%d [%s] %s\n", doc.ID, d.Labels[doc.ID], doc.FullText())
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		for _, doc := range d.Corpus.Docs() {
			jd := jsonDoc{
				ID:       int(doc.ID),
				Label:    d.Labels[doc.ID],
				Title:    doc.Title,
				Triplets: doc.Triplets,
			}
			if doc.Kind == document.Text {
				jd.Body = doc.Body
			}
			if err := enc.Encode(jd); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case "stats":
		labels := map[string]int{}
		for _, doc := range d.Corpus.Docs() {
			labels[d.Labels[doc.ID]]++
		}
		fmt.Printf("dataset: %s\ndocuments: %d\ndistinct terms: %d\navg doc length: %.1f\n",
			d.Name, d.Corpus.Len(), d.Index.NumTerms(), d.Index.AvgDocLen())
		fmt.Printf("query-log entries: %d\nlabels (%d):\n", len(d.Log), len(labels))
		for _, doc := range d.Corpus.Docs() {
			l := d.Labels[doc.ID]
			if n, ok := labels[l]; ok {
				fmt.Printf("  %-28s %d\n", l, n)
				delete(labels, l)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
}
