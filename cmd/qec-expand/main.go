// Command qec-expand runs the full pipeline of the paper on one query:
// search → cluster → one expanded query per cluster, printing each expanded
// query with its precision/recall/F against its cluster and the Eq. 1 score
// of the whole set.
//
// Usage:
//
//	qec-expand -dataset wikipedia -query "java" -method iskr
//	qec-expand -dataset shopping -query "canon products" -method pebc -k 3
//
// -trace prints a per-stage timing table (parse, search, problem, cluster,
// solve) to stderr after the run, reusing the serving layer's obs.Trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/search"
)

func main() {
	var (
		ds     = flag.String("dataset", "wikipedia", "corpus: shopping or wikipedia")
		query  = flag.String("query", "", "keyword query (required)")
		method = flag.String("method", "iskr", "iskr, pebc, fmeasure, cs, dataclouds, google")
		k      = flag.Int("k", 3, "maximum number of clusters / expanded queries")
		topK   = flag.Int("top", 30, "consider only the top-K results (0 = all)")
		seed   = flag.Int64("seed", 2011, "dataset / clustering / PEBC seed")
		scale  = flag.Int("scale", 1, "corpus scale multiplier")
		trace  = flag.Bool("trace", false, "print a per-stage timing table to stderr")
	)
	flag.Parse()
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}

	// tr stays nil without -trace; every obs.Trace method is nil-safe, so the
	// pipeline below carries no flag checks.
	var tr *obs.Trace
	if *trace {
		tr = obs.GetTrace()
		tr.ID = obs.NextTraceID()
		defer func() {
			fmt.Fprintf(os.Stderr, "\ntrace %s\n", obs.IDString(tr.ID))
			tr.WriteTable(os.Stderr)
		}()
	}

	var d *dataset.Dataset
	switch *ds {
	case "shopping":
		d = dataset.Shopping(*seed, *scale)
	case "wikipedia":
		d = dataset.Wikipedia(*seed+1, *scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	eng := search.NewEngine(d.Index)
	tr.Begin(obs.StageParse)
	q := search.ParseQuery(d.Index, *query)
	tr.End(obs.StageParse)
	tr.Begin(obs.StageSearch)
	results := eng.Search(q, search.And, *topK)
	tr.End(obs.StageSearch)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "no results for %q\n", *query)
		os.Exit(1)
	}
	tr.Begin(obs.StageProblem)
	universe := search.ResultSet(results)
	weights := eval.Weights{}
	for _, r := range results {
		weights[r.Doc] = r.Score
	}
	tr.End(obs.StageProblem)

	// Non-cluster baselines short-circuit before clustering.
	switch *method {
	case "dataclouds":
		dc := &baseline.DataClouds{TopK: *k}
		for i, eq := range dc.Suggest(d.Index, results, q) {
			fmt.Printf("q%d: %q\n", i+1, strings.Join(eq.Terms, ", "))
		}
		return
	case "google":
		log := baseline.NewQueryLog(d.Log)
		for i, eq := range log.Suggest(*query, *k) {
			fmt.Printf("q%d: %q\n", i+1, strings.Join(eq.Terms, ", "))
		}
		return
	}

	start := time.Now()
	tr.Begin(obs.StageCluster)
	cl := cluster.KMeans(d.Index, universe.IDs(), cluster.Options{
		K: *k, Seed: *seed, PlusPlus: true, Restarts: 5,
	})
	tr.End(obs.StageCluster)
	tr.SetKMeans(cl.Restarts, cl.TotalIterations, cl.AbandonedRestarts)
	fmt.Printf("%d results, %d clusters (k-means, %v)\n",
		len(results), cl.K(), time.Since(start))

	if *method == "cs" {
		cs := &baseline.CS{LabelSize: 3}
		queries := cs.Suggest(d.Index, cl, q)
		sets := cl.Sets()
		var fs []float64
		for i, eq := range queries {
			retrieved := baseline.RetrieveWithin(d.Index, eq, universe)
			m := eval.Measure(retrieved, sets[i], weights)
			fs = append(fs, m.F)
			fmt.Printf("q%d: %q  P=%.2f R=%.2f F=%.2f\n", i+1,
				strings.Join(eq.Terms, ", "), m.Precision, m.Recall, m.F)
		}
		fmt.Printf("score (Eq. 1): %.3f\n", eval.Score(fs))
		return
	}

	var ex core.Expander
	switch *method {
	case "iskr":
		ex = &core.ISKR{}
	case "pebc":
		ex = &core.PEBC{Seed: *seed}
	case "fmeasure":
		ex = &core.FMeasureVariant{}
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
	tr.Begin(obs.StageProblem)
	problems := core.BuildProblems(d.Index, q, cl, weights, core.DefaultPoolOptions())
	tr.End(obs.StageProblem)
	start = time.Now()
	tr.Begin(obs.StageSolve)
	res := core.Solve(ex, problems)
	tr.End(obs.StageSolve)
	elapsed := time.Since(start)
	for i, ce := range res.Expansions {
		prf := ce.Expanded.PRF
		fmt.Printf("q%d: %q  P=%.2f R=%.2f F=%.2f (cluster of %d)\n", i+1,
			strings.Join(ce.Expanded.Query.Terms, ", "),
			prf.Precision, prf.Recall, prf.F, len(cl.Clusters[i]))
	}
	fmt.Printf("score (Eq. 1): %.3f   expansion time: %v\n", res.Score, elapsed)
}
