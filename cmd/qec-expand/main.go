// Command qec-expand runs one expansion method on one query: search, then
// the selected backend (clustered paper pipeline, vector-neighborhood,
// lexical-synonym, or orthogonal coverage), printing each expanded query
// with its precision/recall/F against its neighborhood and the Eq. 1 score
// of the whole set.
//
// Usage:
//
//	qec-expand -dataset wikipedia -query "java" -method iskr
//	qec-expand -dataset shopping -query "canon products" -method pebc -k 3
//	qec-expand -dataset wikipedia -query "java" -method lexical -synonyms thesaurus.txt
//	qec-expand -method help
//
// -method help prints the capability matrix of every built-in method.
// -trace prints a per-stage timing table (parse, search, problem, cluster,
// solve) to stderr after the run, reusing the serving layer's obs.Trace.
// -explain prints the decision trail: top-K pruning counters, each k-means
// restart's fate, the candidate pool each cluster's solver saw (benefit,
// cost, value), the moves/samples it applied, and what every rejected
// alternative scored — the CLI face of the server's "explain": true.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	qec "repro"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	expander "repro/internal/expander"
	"repro/internal/obs"
	"repro/internal/search"
)

func main() {
	var (
		ds       = flag.String("dataset", "wikipedia", "corpus: shopping or wikipedia")
		query    = flag.String("query", "", "keyword query (required)")
		method   = flag.String("method", "iskr", `expansion method ("help" prints the matrix); baselines: cs, dataclouds, google`)
		k        = flag.Int("k", 3, "maximum number of clusters / expanded queries")
		topK     = flag.Int("top", 30, "consider only the top-K results (0 = all)")
		seed     = flag.Int64("seed", 2011, "dataset / clustering / PEBC seed")
		scale    = flag.Int("scale", 1, "corpus scale multiplier")
		synFile  = flag.String("synonyms", "", "thesaurus file for -method lexical (head: syn1, syn2 | a, b, c)")
		traceOpt = flag.Bool("trace", false, "print a per-stage timing table to stderr")
		explain  = flag.Bool("explain", false, "print the decision trail: pruning counters, k-means restart fates, candidate pools, picked keywords and rejected-alternative scores")
	)
	flag.Parse()

	if *method == "help" {
		printMethodHelp(os.Stdout)
		return
	}
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Baselines are CLI-only comparison points, outside the method registry.
	baselineMethod := *method == "cs" || *method == "dataclouds" || *method == "google"
	var m qec.Method
	if !baselineMethod {
		var err error
		if m, err = qec.ParseMethod(*method); err != nil {
			fmt.Fprintf(os.Stderr, "%v\nbaselines: cs, dataclouds, google; -method help prints the matrix\n", err)
			os.Exit(2)
		}
	}

	var synonyms expander.SynonymSource
	if *synFile != "" {
		f, err := os.Open(*synFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		synonyms, err = expander.LoadTable(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// tr stays nil without -trace; every obs.Trace method is nil-safe, so the
	// pipeline below carries no flag checks.
	var tr *obs.Trace
	if *traceOpt {
		tr = obs.GetTrace()
		tr.ID = obs.NextTraceID()
		defer func() {
			fmt.Fprintf(os.Stderr, "\ntrace %s\n", obs.IDString(tr.ID))
			tr.WriteTable(os.Stderr)
		}()
	}

	var d *dataset.Dataset
	switch *ds {
	case "shopping":
		d = dataset.Shopping(*seed, *scale)
	case "wikipedia":
		d = dataset.Wikipedia(*seed+1, *scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	eng := search.NewEngine(d.Index)
	tr.Begin(obs.StageParse)
	q := search.ParseQuery(d.Index, *query)
	tr.End(obs.StageParse)
	var prune *search.PruneStats
	if *explain {
		prune = &search.PruneStats{}
	}
	tr.Begin(obs.StageSearch)
	results := eng.SearchPruned(q, search.And, *topK, prune)
	tr.End(obs.StageSearch)
	printPruneStats(prune, *topK, len(results))
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "no results for %q\n", *query)
		os.Exit(1)
	}
	tr.Begin(obs.StageProblem)
	universe := search.ResultSet(results)
	weights := eval.Weights{}
	for _, r := range results {
		weights[r.Doc] = r.Score
	}
	tr.End(obs.StageProblem)

	// Non-cluster baselines short-circuit before clustering.
	switch *method {
	case "dataclouds":
		dc := &baseline.DataClouds{TopK: *k}
		for i, eq := range dc.Suggest(d.Index, results, q) {
			fmt.Printf("q%d: %q\n", i+1, strings.Join(eq.Terms, ", "))
		}
		return
	case "google":
		log := baseline.NewQueryLog(d.Log)
		for i, eq := range log.Suggest(*query, *k) {
			fmt.Printf("q%d: %q\n", i+1, strings.Join(eq.Terms, ", "))
		}
		return
	}

	// Flat backends (no clustering stage) run through the Backend interface.
	if !baselineMethod && !qec.Methods()[m].Clusters {
		var backend expander.Backend
		switch m {
		case qec.VectorNeighborhood:
			backend = expander.Vector{}
		case qec.LexicalSynonym:
			backend = expander.Lexical{}
		case qec.Orthogonal:
			backend = expander.Orthogonal{}
		}
		start := time.Now()
		out := backend.Expand(&expander.Input{
			Idx: d.Index, Eng: eng, Query: q, Results: results,
			K: *k, Seed: *seed, Synonyms: synonyms, Trace: tr,
		})
		for i, s := range out.Suggestions {
			fmt.Printf("q%d: %q  P=%.2f R=%.2f F=%.2f\n", i+1,
				strings.Join(s.Terms, ", "), s.PRF.Precision, s.PRF.Recall, s.PRF.F)
		}
		fmt.Printf("score (Eq. 1): %.3f   expansion time: %v\n", out.Score, time.Since(start))
		return
	}

	start := time.Now()
	copts := cluster.Options{K: *k, Seed: *seed, PlusPlus: true, Restarts: 5}
	if *explain {
		copts.Trail = &cluster.Trail{}
	}
	tr.Begin(obs.StageCluster)
	cl := cluster.KMeans(d.Index, universe.IDs(), copts)
	tr.End(obs.StageCluster)
	printKMeansTrail(copts.Trail, cl)
	tr.SetKMeans(cl.Restarts, cl.TotalIterations, cl.AbandonedRestarts)
	fmt.Printf("%d results, %d clusters (k-means, %v)\n",
		len(results), cl.K(), time.Since(start))

	if *method == "cs" {
		cs := &baseline.CS{LabelSize: 3}
		queries := cs.Suggest(d.Index, cl, q)
		sets := cl.Sets()
		var fs []float64
		for i, eq := range queries {
			retrieved := baseline.RetrieveWithin(d.Index, eq, universe)
			mm := eval.Measure(retrieved, sets[i], weights)
			fs = append(fs, mm.F)
			fmt.Printf("q%d: %q  P=%.2f R=%.2f F=%.2f\n", i+1,
				strings.Join(eq.Terms, ", "), mm.Precision, mm.Recall, mm.F)
		}
		fmt.Printf("score (Eq. 1): %.3f\n", eval.Score(fs))
		return
	}

	var ex core.Expander
	switch m {
	case qec.PEBC:
		ex = &core.PEBC{Seed: *seed}
	case qec.DeltaF:
		ex = &core.FMeasureVariant{}
	case qec.ORExpansion:
		ex = &core.ORISKR{}
	default:
		ex = &core.ISKR{}
	}
	tr.Begin(obs.StageProblem)
	problems := core.BuildProblems(d.Index, q, cl, weights, core.DefaultPoolOptions())
	tr.End(obs.StageProblem)
	if *explain {
		for _, p := range problems {
			p.Trail = &core.Trail{}
		}
	}
	start = time.Now()
	tr.Begin(obs.StageSolve)
	res := core.Solve(ex, problems)
	tr.End(obs.StageSolve)
	elapsed := time.Since(start)
	for i, ce := range res.Expansions {
		prf := ce.Expanded.PRF
		fmt.Printf("q%d: %q  P=%.2f R=%.2f F=%.2f (cluster of %d)\n", i+1,
			strings.Join(ce.Expanded.Query.Terms, ", "),
			prf.Precision, prf.Recall, prf.F, len(cl.Clusters[i]))
	}
	fmt.Printf("score (Eq. 1): %.3f   expansion time: %v\n", res.Score, elapsed)
	if *explain {
		printSolveTrails(problems, res)
	}
}

// printPruneStats renders the retrieval leg of -explain: what the top-K
// pruned path skipped and the heap-threshold trajectory. Nil-safe (no
// -explain, or a full scan that records nothing).
func printPruneStats(ps *search.PruneStats, topK, results int) {
	if ps == nil {
		return
	}
	if !ps.Pruned {
		fmt.Printf("search: full scan (top %d), %d results — no pruning possible\n", topK, results)
		return
	}
	fmt.Printf("search: top-%d pruned path: %d blocks skipped, %d cursor advances, %d docs scored, %d skipped by bound\n",
		topK, ps.BlocksSkipped, ps.CursorAdvances, ps.DocsScored, ps.DocsSkipped)
	if len(ps.Thresholds) > 0 {
		fmt.Printf("search: heap threshold %.4f -> %.4f over %d raises\n",
			ps.Thresholds[0], ps.Thresholds[len(ps.Thresholds)-1], len(ps.Thresholds))
	}
}

// printKMeansTrail renders the clustering leg of -explain: each restart's
// fate under the lockstep driver. Nil-safe.
func printKMeansTrail(trail *cluster.Trail, cl *cluster.Clustering) {
	if trail == nil {
		return
	}
	fmt.Printf("kmeans: distortion %.4f after %d restarts, %d iterations total\n",
		cl.Distortion, cl.Restarts, cl.TotalIterations)
	for i, r := range trail.Restarts {
		mark := ""
		if r.Won {
			mark = "  [won]"
		}
		if r.Abandoned {
			mark = "  [abandoned]"
		}
		fmt.Printf("  restart %d: seed %d, %d iterations, distortion %.4f%s\n",
			i, r.Seed, r.Iterations, r.Distortion, mark)
	}
}

// printSolveTrails renders the per-cluster solver leg of -explain: the
// candidate pool each solver saw, the moves it applied (ISKR) or samples it
// probed (PEBC), and what every rejected alternative scored.
func printSolveTrails(problems []*core.Problem, res *core.QECResult) {
	for i, p := range problems {
		if p.Trail == nil || i >= len(res.Expansions) {
			continue
		}
		trail := p.Trail
		final := res.Expansions[i].Expanded.Query
		fmt.Printf("\ncluster %d: %q\n", i, strings.Join(final.Terms, ", "))
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  POOL\tBENEFIT\tCOST\tVALUE")
		for _, row := range trail.Pool {
			fmt.Fprintf(tw, "  %s\t%.3f\t%.3f\t%s\n", row.Keyword, row.Benefit, row.Cost, fmtValue(row.Value))
		}
		tw.Flush()
		for _, s := range trail.Steps {
			fmt.Printf("  step: %s %q value=%s F=%.3f\n", s.Op, s.Keyword, fmtValue(s.Value), s.F)
		}
		for _, s := range trail.Samples {
			fmt.Printf("  sample: x=%.1f%% %q F=%.3f\n", s.X, strings.Join(s.Terms, ", "), s.F)
		}
		if len(trail.Rejected) > 0 {
			tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "  REJECTED\tBENEFIT\tCOST\tVALUE")
			for _, row := range trail.Rejected {
				fmt.Fprintf(tw, "  %s\t%.3f\t%.3f\t%s\n", row.Keyword, row.Benefit, row.Cost, fmtValue(row.Value))
			}
			tw.Flush()
		}
	}
}

// fmtValue renders a benefit/cost ratio, spelling out the zero-cost +Inf
// case.
func fmtValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+inf"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// printMethodHelp renders the registry's capability matrix: one row per
// built-in method plus the CLI-only baselines.
func printMethodHelp(w *os.File) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "METHOD\tALIASES\tPARADIGM\tCLUSTERS\tKNOBS\tSUMMARY")
	for _, mi := range qec.Methods() {
		var knobs []string
		if mi.UsesQuality {
			knobs = append(knobs, "quality")
		}
		if mi.UsesSeed {
			knobs = append(knobs, "seed")
		}
		if mi.UsesSynonyms {
			knobs = append(knobs, "synonyms")
		}
		knob := strings.Join(knobs, ",")
		if knob == "" {
			knob = "-"
		}
		alias := strings.Join(mi.Aliases, ",")
		if alias == "" {
			alias = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%s\t%s\n",
			mi.Name, alias, mi.Paradigm, mi.Clusters, knob, mi.Summary)
	}
	fmt.Fprintln(tw, "cs\t-\tbaseline\ttrue\tseed\tcluster-summary labels (CLI baseline)")
	fmt.Fprintln(tw, "dataclouds\t-\tbaseline\tfalse\t-\tterm-frequency data clouds (CLI baseline)")
	fmt.Fprintln(tw, "google\t-\tbaseline\tfalse\t-\tquery-log suggestions (CLI baseline)")
	tw.Flush()
}
