package qec

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestExpandTracedBitIdentical pins the observability contract: attaching a
// trace (and recording engine metrics) must not change a single bit of the
// expansion output, across quality tiers, methods and the interleave path.
func TestExpandTracedBitIdentical(t *testing.T) {
	optGrid := []ExpandOptions{
		{K: 2},
		{K: 2, Quality: QualityServing},
		{K: 2, Method: PEBC},
		{K: 2, Method: DeltaF},
		{K: 2, Method: ORExpansion},
		{K: 2, Unweighted: true},
		{K: 2, Parallel: true},
		{K: 2, Interleave: 2},
	}
	for _, opts := range optGrid {
		plain := seedEngine(t)
		traced := seedEngine(t)
		want, err := plain.Expand("apple", opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		tr := obs.GetTrace()
		got, err := traced.ExpandTraced(context.Background(), "apple", opts, tr)
		if err != nil {
			t.Fatalf("%+v traced: %v", opts, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%+v: traced expansion differs from plain:\nplain:  %+v\ntraced: %+v",
				opts, want, got)
		}
		obs.PutTrace(tr)
	}
}

// TestExpandTracedRecordsStages checks that a traced cold expansion carries
// the stage spans and k-means bookkeeping the serving layer logs.
func TestExpandTracedRecordsStages(t *testing.T) {
	e := seedEngine(t)
	tr := obs.GetTrace()
	defer obs.PutTrace(tr)
	if _, err := e.ExpandTraced(context.Background(), "apple", ExpandOptions{K: 2}, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Cache != obs.CacheComputed {
		t.Fatalf("cache state = %v; want computed", tr.Cache)
	}
	for _, s := range []obs.Stage{obs.StageParse, obs.StageSearch, obs.StageProblem,
		obs.StageCluster, obs.StageSolve, obs.StageAssemble} {
		if tr.Durations[s] <= 0 {
			t.Errorf("stage %v recorded no time", s)
		}
	}
	if tr.KMeansRestarts == 0 || tr.KMeansIterations == 0 {
		t.Fatalf("k-means bookkeeping missing: %+v", tr)
	}
}

// TestExpandTracedCacheStates drives the cache dispositions a trace reports.
func TestExpandTracedCacheStates(t *testing.T) {
	eng := NewEngine(WithSeed(7), WithExpansionCache(8))
	for _, doc := range []string{
		"apple fruit orchard juice harvest tree",
		"apple iphone store launch event keynote",
		"apple computer mac laptop software store",
		"apple fruit pie bake cider orchard",
	} {
		eng.AddText("", doc)
	}

	tr := obs.GetTrace()
	defer obs.PutTrace(tr)
	if _, err := eng.ExpandTraced(context.Background(), "apple", ExpandOptions{K: 2}, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Cache != obs.CacheComputed {
		t.Fatalf("first call cache = %v; want computed", tr.Cache)
	}
	tr.Reset()
	if _, err := eng.ExpandTraced(context.Background(), "apple", ExpandOptions{K: 2}, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Cache != obs.CacheHit {
		t.Fatalf("second call cache = %v; want hit", tr.Cache)
	}
	if tr.Total() != 0 {
		t.Fatalf("cache hit should record no stage time, got %v", tr.Total())
	}
}

// TestEngineMetricsRecorded checks the engine-level aggregates: per-quality
// and per-method latency histograms and the k-means counters move exactly
// with the pipeline runs that happened.
func TestEngineMetricsRecorded(t *testing.T) {
	e := seedEngine(t)
	if _, err := e.Expand("apple", ExpandOptions{K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Expand("apple", ExpandOptions{K: 2, Quality: QualityServing, Method: PEBC}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if got := m.PerQuality[QualityIndex(QualityExact)].Snapshot().Count; got != 1 {
		t.Fatalf("exact runs = %d; want 1", got)
	}
	if got := m.PerQuality[QualityIndex(QualityServing)].Snapshot().Count; got != 1 {
		t.Fatalf("serving runs = %d; want 1", got)
	}
	if got := m.PerMethod[int(PEBC)].Snapshot().Count; got != 1 {
		t.Fatalf("pebc runs = %d; want 1", got)
	}
	if m.KMeansRestarts.Load() == 0 || m.KMeansIterations.Load() == 0 {
		t.Fatal("k-means counters did not move")
	}
	for s := 0; s < obs.NumStages; s++ {
		if m.PerStage[s].Snapshot().Count == 0 {
			t.Errorf("stage %v histogram empty", obs.Stage(s))
		}
	}
}

func TestQualityAndMethodLabels(t *testing.T) {
	if QualityIndex(QualityExact) != 0 || QualityIndex(QualityServing) != 1 {
		t.Fatal("quality index mapping changed")
	}
	if QualityLabel(0) != "exact" || QualityLabel(1) != "serving" {
		t.Fatal("quality labels changed")
	}
	want := []string{"iskr", "pebc", "deltaf", "or", "vector", "lexical", "orthogonal", "custom"}
	for i, w := range want {
		if MethodLabel(i) != w {
			t.Fatalf("MethodLabel(%d) = %q; want %q", i, MethodLabel(i), w)
		}
	}
}
