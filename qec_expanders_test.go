package qec

// Tests for the pluggable Expander layer: registry-driven ParseMethod,
// MethodName dispatch, per-method cache isolation, custom backends, engine
// determinism across runs and worker counts, and a cross-backend interleave
// property run scored by the user-study simulator.

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/search"
	"repro/internal/userstudy"
)

// wikiEngine builds an engine over the deterministic Wikipedia corpus —
// large enough that clustering and per-cluster fans actually engage.
func wikiEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	e := NewEngine(append([]Option{WithSeed(1)}, opts...)...)
	senses := map[string][]string{
		"programming": {"server", "code", "web", "software", "language", "class", "virtual", "machine"},
		"island":      {"island", "indonesia", "volcano", "jakarta", "sea", "population"},
		"coffee":      {"coffee", "bean", "roast", "brew", "plantation", "drink"},
	}
	i := 0
	for _, sense := range []string{"programming", "island", "coffee"} {
		vocab := senses[sense]
		for d := 0; d < 8; d++ {
			body := "java"
			for w := 0; w < 6; w++ {
				body += " " + vocab[(d+w)%len(vocab)]
			}
			e.AddText(fmt.Sprintf("doc%d", i), body)
			i++
		}
	}
	return e
}

func TestParseMethodCanonicalError(t *testing.T) {
	_, err := ParseMethod("nope")
	if !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("err = %v; want ErrUnknownMethod", err)
	}
	for _, name := range MethodNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate method %q", err, name)
		}
	}
	if m, err := ParseMethod(""); err != nil || m != ISKR {
		t.Errorf(`ParseMethod("") = %v, %v; want ISKR, nil`, m, err)
	}
	// Every canonical name and alias round-trips, case-insensitively.
	for _, mi := range Methods() {
		for _, s := range append([]string{mi.Name, strings.ToUpper(mi.Name)}, mi.Aliases...) {
			m, err := ParseMethod(s)
			if err != nil || m != mi.Method {
				t.Errorf("ParseMethod(%q) = %v, %v; want %v", s, m, err, mi.Method)
			}
		}
	}
}

func TestMethodRegistryComplete(t *testing.T) {
	if len(Methods()) != NumMethods {
		t.Fatalf("registry has %d methods; NumMethods = %d", len(Methods()), NumMethods)
	}
	seen := map[string]bool{}
	for i, mi := range Methods() {
		if int(mi.Method) != i {
			t.Errorf("registry[%d].Method = %v", i, mi.Method)
		}
		for _, s := range append([]string{mi.Name}, mi.Aliases...) {
			if seen[s] {
				t.Errorf("method string %q registered twice", s)
			}
			seen[s] = true
		}
		if MethodLabel(i) != mi.Name {
			t.Errorf("MethodLabel(%d) = %q; registry name %q", i, MethodLabel(i), mi.Name)
		}
		if mi.Summary == "" || mi.Paradigm == "" {
			t.Errorf("method %q missing summary/paradigm", mi.Name)
		}
	}
}

func renderExpansion(exp *Expansion) string {
	var sb strings.Builder
	for _, q := range exp.Queries {
		fmt.Fprintf(&sb, "%v %x\n", q.Terms, math.Float64bits(q.F))
	}
	fmt.Fprintf(&sb, "score %x", math.Float64bits(exp.Score))
	return sb.String()
}

// TestMethodNameDispatch pins that MethodName selects the same backend as
// the corresponding Method value, for built-ins and aliases alike.
func TestMethodNameDispatch(t *testing.T) {
	e := wikiEngine(t)
	for _, mi := range Methods() {
		byMethod, err := e.Expand("java", ExpandOptions{K: 3, Method: mi.Method})
		if err != nil {
			t.Fatalf("%s by Method: %v", mi.Name, err)
		}
		for _, s := range append([]string{mi.Name}, mi.Aliases...) {
			byName, err := e.Expand("java", ExpandOptions{K: 3, MethodName: s})
			if err != nil {
				t.Fatalf("%s by MethodName %q: %v", mi.Name, s, err)
			}
			if renderExpansion(byName) != renderExpansion(byMethod) {
				t.Errorf("MethodName %q output differs from Method %v", s, mi.Method)
			}
		}
	}
	if _, err := e.Expand("java", ExpandOptions{MethodName: "nope"}); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unknown MethodName: err = %v; want ErrUnknownMethod", err)
	}
}

// TestNewBackendShapes pins the non-clustered backends' output contract:
// suggestions carry the original query first plus at least one expansion
// term, Clusters stays nil, and the score is the harmonic mean of the Fs.
func TestNewBackendShapes(t *testing.T) {
	e := wikiEngine(t)
	for _, m := range []Method{VectorNeighborhood, LexicalSynonym, Orthogonal} {
		exp, err := e.Expand("java", ExpandOptions{K: 3, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(exp.Queries) == 0 {
			t.Fatalf("%v: no suggestions", m)
		}
		if exp.Clusters != nil {
			t.Errorf("%v: Clusters = %v; want nil (non-clustered paradigm)", m, exp.Clusters)
		}
		fs := make([]float64, len(exp.Queries))
		for i, q := range exp.Queries {
			if q.Terms[0] != "java" {
				t.Errorf("%v: suggestion %v lost the seed term", m, q.Terms)
			}
			if len(q.Terms) < 2 {
				t.Errorf("%v: suggestion %v has no expansion term", m, q.Terms)
			}
			if q.Cluster != i {
				t.Errorf("%v: suggestion %d has Cluster %d", m, i, q.Cluster)
			}
			fs[i] = q.F
		}
		if want := eval.Score(fs); math.Float64bits(exp.Score) != math.Float64bits(want) {
			t.Errorf("%v: score %v; want harmonic mean %v", m, exp.Score, want)
		}
	}
}

// TestCacheKeyMethodCollision proves two methods on the same query never
// share a cache entry: every built-in method (plus a custom backend) caches
// its own result, and re-requesting by any spelling of the same method hits
// that method's entry and no other's.
func TestCacheKeyMethodCollision(t *testing.T) {
	e := wikiEngine(t, WithExpansionCache(64), WithExpander(constantExpander{}))
	got := map[Method]*Expansion{}
	for _, mi := range Methods() {
		exp, err := e.Expand("java", ExpandOptions{K: 3, Method: mi.Method})
		if err != nil {
			t.Fatalf("%s: %v", mi.Name, err)
		}
		got[mi.Method] = exp
	}
	custom, err := e.Expand("java", ExpandOptions{K: 3, MethodName: "constant"})
	if err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if want := int64(NumMethods + 1); st.Computations != want {
		t.Fatalf("computations = %d; want %d (one per method)", st.Computations, want)
	}
	if st.Entries != NumMethods+1 {
		t.Fatalf("cache entries = %d; want %d — methods collided", st.Entries, NumMethods+1)
	}
	// Distinct pointers per method; repeat requests (by value or by name)
	// return the cached pointer for that method only.
	seen := map[*Expansion]Method{}
	for m, exp := range got {
		if prev, dup := seen[exp]; dup {
			t.Fatalf("methods %v and %v share one cached *Expansion", prev, m)
		}
		seen[exp] = m
	}
	if _, dup := seen[custom]; dup {
		t.Fatal("custom backend shares a built-in's cached *Expansion")
	}
	for _, mi := range Methods() {
		again, err := e.Expand("java", ExpandOptions{K: 3, MethodName: mi.Name})
		if err != nil {
			t.Fatal(err)
		}
		if again != got[mi.Method] {
			t.Errorf("MethodName %q did not hit Method %v's entry", mi.Name, mi.Method)
		}
	}
	if st := e.CacheStats(); st.Computations != int64(NumMethods+1) {
		t.Errorf("re-requests recomputed: %d computations", st.Computations)
	}
}

// constantExpander is a trivial custom backend for dispatch/caching tests.
type constantExpander struct{}

func (constantExpander) Name() string { return "constant" }
func (constantExpander) Expand(in ExpandInput) (*Expansion, error) {
	return &Expansion{Original: in.Query.Terms, Score: 1}, nil
}

func TestCustomExpander(t *testing.T) {
	e := wikiEngine(t, WithExpander(constantExpander{}))
	exp, err := e.Expand("java", ExpandOptions{MethodName: "Constant"})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Score != 1 || len(exp.Queries) != 0 {
		t.Fatalf("custom backend not dispatched: %+v", exp)
	}
	// Custom runs land in the shared "custom" telemetry slot.
	if n := e.Metrics().PerMethod[CustomMethodSlot].Snapshot().Count; n != 1 {
		t.Errorf("custom slot count = %d; want 1", n)
	}
	if n := e.Metrics().PerMethod[ISKR].Snapshot().Count; n != 0 {
		t.Errorf("iskr slot count = %d; want 0", n)
	}
}

// TestExpandDeterministicAcrossWorkers runs every built-in method at
// GOMAXPROCS=1 and at the test's parallelism and demands bit-identical
// expansions — worker count must never leak into results.
func TestExpandDeterministicAcrossWorkers(t *testing.T) {
	base := map[Method]string{}
	for _, mi := range Methods() {
		e := wikiEngine(t)
		exp, err := e.Expand("java", ExpandOptions{K: 3, Method: mi.Method})
		if err != nil {
			t.Fatalf("%s: %v", mi.Name, err)
		}
		base[mi.Method] = renderExpansion(exp)
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, mi := range Methods() {
		e := wikiEngine(t)
		exp, err := e.Expand("java", ExpandOptions{K: 3, Method: mi.Method})
		if err != nil {
			t.Fatalf("%s: %v", mi.Name, err)
		}
		if got := renderExpansion(exp); got != base[mi.Method] {
			t.Errorf("%s diverged at GOMAXPROCS=1:\n%s\nwant:\n%s", mi.Name, got, base[mi.Method])
		}
	}
}

// TestInterleaveAcrossBackends is the cross-paradigm property test: run
// every built-in backend on one query, interleave their suggestions
// round-robin, and check the mix — deterministic, every producing backend
// represented, per-backend order preserved — then score the mixed set's
// comprehensiveness and diversity through the user-study simulator.
func TestInterleaveAcrossBackends(t *testing.T) {
	e := wikiEngine(t)

	type tagged struct {
		method Method
		terms  []string
	}
	mix := func() []tagged {
		perMethod := make([][]tagged, NumMethods)
		for _, mi := range Methods() {
			exp, err := e.Expand("java", ExpandOptions{K: 3, Method: mi.Method})
			if err != nil {
				t.Fatalf("%s: %v", mi.Name, err)
			}
			for _, q := range exp.Queries {
				perMethod[mi.Method] = append(perMethod[mi.Method], tagged{mi.Method, q.Terms})
			}
		}
		var out []tagged
		for round := 0; ; round++ {
			advanced := false
			for m := range perMethod {
				if round < len(perMethod[m]) {
					out = append(out, perMethod[m][round])
					advanced = true
				}
			}
			if !advanced {
				return out
			}
		}
	}

	first := mix()
	if len(first) == 0 {
		t.Fatal("no suggestions from any backend")
	}
	second := mix()
	if len(second) != len(first) {
		t.Fatalf("mix not deterministic: %d vs %d suggestions", len(second), len(first))
	}
	for i := range first {
		if first[i].method != second[i].method ||
			strings.Join(first[i].terms, " ") != strings.Join(second[i].terms, " ") {
			t.Fatalf("mix not deterministic at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	produced := map[Method]int{}
	lastRank := map[Method]int{}
	for i, s := range first {
		produced[s.method]++
		lastRank[s.method] = i
	}
	for _, mi := range Methods() {
		if produced[mi.Method] == 0 {
			t.Errorf("backend %s contributed nothing to the mix", mi.Name)
		}
	}
	_ = lastRank

	// Score the mixed set like the paper's collective user study: coverage
	// of the original result neighborhood and pairwise dissimilarity of the
	// suggestions' result sets, mapped to simulated 1-5 judgments.
	results := e.Search("java", 30)
	universe := document.DocSet{}
	weights := eval.Weights{}
	for _, r := range results {
		universe.Add(r.Doc)
		weights[r.Doc] = r.Score
	}
	var retrieved []document.DocSet
	for _, s := range first {
		retrieved = append(retrieved, document.NewDocSet(e.eng.Eval(search.NewQuery(s.terms...), search.And)...))
	}
	comp := eval.Comprehensiveness(retrieved, universe, weights)
	div := eval.Diversity(retrieved)
	if comp <= 0 || comp > 1 {
		t.Errorf("comprehensiveness = %v; want in (0,1]", comp)
	}
	if div < 0 || div > 1 {
		t.Errorf("diversity = %v; want in [0,1]", div)
	}
	sum := userstudy.Summarize(userstudy.NewPool(1).JudgeCollective(comp, div))
	if sum.MeanScore < 1 || sum.MeanScore > 5 {
		t.Errorf("collective judgment mean = %v; want within the 1-5 scale", sum.MeanScore)
	}
}
