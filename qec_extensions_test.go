package qec

import (
	"bytes"
	"strings"
	"testing"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	e := seedEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != e.Len() {
		t.Fatalf("loaded %d docs, want %d", loaded.Len(), e.Len())
	}
	a, err := e.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("scores differ after round-trip: %v vs %v", a.Score, b.Score)
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEngineExpandParallelMatchesSequential(t *testing.T) {
	seq, err := seedEngine(t).Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := seedEngine(t).Expand("apple", ExpandOptions{K: 2, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Score != par.Score || len(seq.Queries) != len(par.Queries) {
		t.Fatalf("parallel differs: %v vs %v", seq.Score, par.Score)
	}
	for i := range seq.Queries {
		if strings.Join(seq.Queries[i].Terms, " ") != strings.Join(par.Queries[i].Terms, " ") {
			t.Errorf("query %d differs", i)
		}
	}
}

func TestEngineExpandInterleaveAtLeastAsGood(t *testing.T) {
	base, err := seedEngine(t).Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := seedEngine(t).Expand("apple", ExpandOptions{K: 2, Interleave: 4})
	if err != nil {
		t.Fatal(err)
	}
	if inter.Score < base.Score-1e-9 {
		t.Errorf("interleaving worsened score: %v -> %v", base.Score, inter.Score)
	}
}

func TestEngineExpandORSemantics(t *testing.T) {
	e := seedEngine(t)
	exp, err := e.Expand("apple", ExpandOptions{K: 2, Method: ORExpansion})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Queries) != 2 {
		t.Fatalf("%d queries", len(exp.Queries))
	}
	for _, q := range exp.Queries {
		// OR queries stand alone: they must not echo the seed term, and
		// they must achieve positive F.
		for _, term := range q.Terms {
			if term == "apple" {
				t.Errorf("OR query %v echoes the seed term", q.Terms)
			}
		}
		if q.F <= 0 {
			t.Errorf("OR query %v has F = %v", q.Terms, q.F)
		}
	}
	if ORExpansion.String() != "OR-ISKR" {
		t.Error("Method name")
	}
}
