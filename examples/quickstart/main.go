// Quickstart: index a handful of documents about an ambiguous term and let
// the library generate one expanded query per meaning.
package main

import (
	"fmt"
	"log"
	"strings"

	qec "repro"
)

func main() {
	e := qec.NewEngine(qec.WithSeed(1))

	// A tiny corpus about "apple": two meanings, fruit and company. Note
	// the ranking bias the paper's introduction describes — most documents
	// are about the company.
	docs := []string{
		"apple fruit orchard juice harvest tree",
		"apple fruit pie bake cider orchard",
		"apple fruit tree grove picking season",
		"apple iphone store launch event keynote",
		"apple computer mac laptop software store",
		"apple software developer mac xcode release",
		"apple store retail flagship opening glass",
		"apple iphone mac ipad lineup store",
	}
	for _, d := range docs {
		e.AddText("", d)
	}

	// Plain search: ranked results, AND semantics.
	fmt.Println("search 'apple store':")
	for _, r := range e.Search("apple store", 3) {
		fmt.Printf("  #%d score=%.3f\n", r.Doc, r.Score)
	}

	// Query expansion: cluster the results of "apple" into 2 groups and
	// generate one expanded query per group (ISKR, the default).
	exp, err := e.Expand("apple", qec.ExpandOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpanded queries for 'apple' (Eq.1 score %.2f):\n", exp.Score)
	for _, q := range exp.Queries {
		fmt.Printf("  %-28q  P=%.2f R=%.2f F=%.2f (cluster of %d docs)\n",
			strings.Join(q.Terms, " "), q.Precision, q.Recall, q.F,
			len(exp.Clusters[q.Cluster]))
	}
}
