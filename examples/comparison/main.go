// Comparison: all six approaches of the paper's evaluation side by side on
// one query — the two proposed algorithms (ISKR, PEBC), the exact delta-F
// variant, and the three baselines (CS cluster summarization, Data Clouds,
// and the query-log "Google" suggester).
package main

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/search"
)

func main() {
	d := dataset.Wikipedia(2012, 1)
	eng := search.NewEngine(d.Index)
	raw := "eclipse"
	q := search.ParseQuery(d.Index, raw)
	results := eng.Search(q, search.And, 30)
	universe := search.ResultSet(results)
	weights := eval.Weights{}
	for _, r := range results {
		weights[r.Doc] = r.Score
	}
	cl := cluster.KMeans(d.Index, universe.IDs(), cluster.Options{
		K: 3, Seed: 5, PlusPlus: true, Restarts: 5,
	})
	sets := cl.Sets()
	problems := core.BuildProblems(d.Index, q, cl, weights, core.DefaultPoolOptions())

	show := func(name string, queries []search.Query, scored bool) {
		fmt.Printf("%-12s", name)
		if scored {
			var fs []float64
			for i, eq := range queries {
				if i >= len(sets) {
					break
				}
				retrieved := baseline.RetrieveWithin(d.Index, eq, universe)
				fs = append(fs, eval.Measure(retrieved, sets[i], weights).F)
			}
			fmt.Printf(" (Eq.1 %.2f)", eval.Score(fs))
		}
		fmt.Println()
		for i, eq := range queries {
			fmt.Printf("  q%d: %q\n", i+1, strings.Join(eq.Terms, ", "))
		}
	}

	// Cluster-based approaches.
	for _, ex := range []core.Expander{&core.ISKR{}, &core.PEBC{Seed: 5}, &core.FMeasureVariant{}} {
		res := core.Solve(ex, problems)
		fmt.Printf("%-12s (Eq.1 %.2f)\n", ex.Name(), res.Score)
		for i, ce := range res.Expansions {
			fmt.Printf("  q%d: %q  F=%.2f\n", i+1,
				strings.Join(ce.Expanded.Query.Terms, ", "), ce.Expanded.PRF.F)
		}
	}

	// CS: TFICF cluster labels.
	cs := &baseline.CS{LabelSize: 3}
	show("CS", cs.Suggest(d.Index, cl, q), true)

	// Data Clouds: popular words, no clusters.
	dc := &baseline.DataClouds{TopK: 3}
	show("DataClouds", dc.Suggest(d.Index, results, q), false)

	// Google: query-log suggestions, no corpus access at all.
	log := baseline.NewQueryLog(d.Log)
	show("Google", log.Suggest(raw, 3), false)
}
