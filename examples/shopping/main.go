// Shopping: the paper's QS1 scenario ("Canon Products") on structured
// product data. Products carry (entity:attribute:value) feature triplets;
// the expanded queries pin exact features, reproducing the paper's
// "canonproducts: category: camcorders" style of output (Figure 9).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	qec "repro"
)

// product families: category → brands, per-category features.
var families = []struct {
	category string
	models   []string
	features map[string][]string
	count    int
}{
	{"camera", []string{"powershot", "eos"}, map[string][]string{
		"image resolution": {"4752 x 3168", "3648 x 2736"},
		"zoom":             {"4x", "10x", "12x"},
	}, 12},
	{"camcorders", []string{"vixia", "fs"}, map[string][]string{
		"media":        {"flash", "dvd"},
		"optical zoom": {"37x", "41x"},
	}, 9},
	{"printer", []string{"pixma", "imageclass"}, map[string][]string{
		"printmethod": {"inkjet", "laser"},
	}, 10},
}

func main() {
	rng := rand.New(rand.NewSource(42))
	e := qec.NewEngine(qec.WithSeed(42))
	for _, fam := range families {
		for i := 0; i < fam.count; i++ {
			m := fam.models[rng.Intn(len(fam.models))]
			title := fmt.Sprintf("canon products %s %s-%d", fam.category, m, 100+rng.Intn(900))
			triplets := []qec.Triplet{
				{Entity: "canonproducts", Attribute: "category", Value: fam.category},
				{Entity: fam.category, Attribute: "brand", Value: "canon"},
			}
			for attr, vals := range fam.features {
				triplets = append(triplets, qec.Triplet{
					Entity: fam.category, Attribute: attr,
					Value: vals[rng.Intn(len(vals))],
				})
			}
			e.AddProduct(title, triplets)
		}
	}

	// QS1: "Canon Products" — the results span three product categories;
	// each category should become one expanded query (the paper's running
	// shopping example).
	exp, err := e.Expand("canon products", qec.ExpandOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QS1 'canon products': %d results in %d clusters, Eq.1 score %.2f\n",
		e.Len(), len(exp.Clusters), exp.Score)
	for i, q := range exp.Queries {
		fmt.Printf("  q%d: %q  (P=%.2f R=%.2f F=%.2f)\n", i+1,
			strings.Join(q.Terms, ", "), q.Precision, q.Recall, q.F)
	}

	// Composite feature terms are directly searchable.
	fmt.Println("\nsearch 'canonproducts:category:camcorders':")
	for _, r := range e.Search("canonproducts:category:camcorders", 3) {
		fmt.Printf("  %s\n", e.Get(r.Doc).Title)
	}
}
