// Wikipedia: the paper's QW6 scenario ("java") on the synthetic
// ambiguous-sense prose corpus — programming language, Indonesian island and
// coffee — comparing ISKR, PEBC and the delta-F variant on the same
// clustering.
package main

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/search"
)

func main() {
	d := dataset.Wikipedia(2012, 1)
	eng := search.NewEngine(d.Index)
	q := search.ParseQuery(d.Index, "java")

	// Paper setup: only the top 30 results are considered.
	results := eng.Search(q, search.And, 30)
	universe := search.ResultSet(results)
	weights := eval.Weights{}
	for _, r := range results {
		weights[r.Doc] = r.Score
	}
	fmt.Printf("QW6 'java': top %d of %d docs\n", len(results), d.Corpus.Len())

	cl := cluster.KMeans(d.Index, universe.IDs(), cluster.Options{
		K: 3, Seed: 7, PlusPlus: true, Restarts: 5,
	})
	for i, ids := range cl.Clusters {
		senses := map[string]int{}
		for _, id := range ids {
			senses[d.Labels[id]]++
		}
		fmt.Printf("  cluster %d (%d docs): %v\n", i, len(ids), senses)
	}

	problems := core.BuildProblems(d.Index, q, cl, weights, core.DefaultPoolOptions())
	for _, ex := range []core.Expander{
		&core.ISKR{},
		&core.PEBC{Seed: 7},
		&core.FMeasureVariant{},
	} {
		res := core.Solve(ex, problems)
		fmt.Printf("\n%s (Eq.1 score %.2f):\n", ex.Name(), res.Score)
		for i, ce := range res.Expansions {
			fmt.Printf("  q%d: %-32q F=%.2f\n", i+1,
				strings.Join(ce.Expanded.Query.Terms, ", "), ce.Expanded.PRF.F)
		}
	}
}
