// Interleave: the paper's Section 7 future-work idea — "interweaving the
// clustering and query expansion process". Starting from a deliberately bad
// clustering, the expanded queries themselves pull misplaced results into
// the right clusters, raising the Eq. 1 score round by round. Then the
// same idea across paradigms: suggestions from the clustered, vector,
// lexical, and orthogonal backends are interleaved round-robin into one
// mixed list, so a UI can hedge across expansion philosophies instead of
// betting on one. Also shows saving/loading an engine so the index is not
// rebuilt on every start.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	qec "repro"
)

func main() {
	e := qec.NewEngine(qec.WithSeed(5))
	docs := []string{
		"domino pizza delivery franchise menu",
		"domino pizza restaurant food chain",
		"domino pizza menu delivery order",
		"domino album single record chart",
		"domino record song vocal studio",
		"domino album chart release label",
		"domino game tile rules players",
		"domino game set tile spinner",
	}
	for _, d := range docs {
		e.AddText("", d)
	}

	// One-shot pipeline.
	base, err := e.Expand("domino", qec.ExpandOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot       Eq.1 = %.3f\n", base.Score)

	// Interleaved: up to 4 rounds of expand → re-assign → expand.
	inter, err := e.Expand("domino", qec.ExpandOptions{K: 3, Interleave: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaved    Eq.1 = %.3f\n", inter.Score)
	for i, q := range inter.Queries {
		fmt.Printf("  q%d: %q F=%.2f\n", i+1, strings.Join(q.Terms, ", "), q.F)
	}

	// Paradigm mixing: each backend reads the same query through a different
	// lens — per-cluster refinement, neighborhood-centroid terms, thesaurus
	// synonyms, coverage-orthogonal picks. Round-robin interleaving keeps
	// each backend's own ranking while alternating paradigms in the mix.
	fmt.Println("\nmixed paradigms (round-robin):")
	methods := []string{"iskr", "vector", "lexical", "orthogonal"}
	perMethod := make([][]string, len(methods))
	for i, name := range methods {
		exp, err := e.Expand("domino", qec.ExpandOptions{K: 3, MethodName: name})
		if err != nil {
			log.Fatal(err)
		}
		if len(exp.Queries) == 0 {
			log.Fatalf("method %s produced no suggestions", name)
		}
		for _, q := range exp.Queries {
			perMethod[i] = append(perMethod[i], strings.Join(q.Terms, " "))
		}
	}
	for round := 0; ; round++ {
		advanced := false
		for i, qs := range perMethod {
			if round < len(qs) {
				fmt.Printf("  [%-10s] %q\n", methods[i], qs[round])
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}

	// Persistence: serialize the engine, restore it, expand again.
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		log.Fatal(err)
	}
	snapshotSize := buf.Len()
	restored, err := qec.LoadEngine(&buf, qec.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	again, err := restored.Expand("domino", qec.ExpandOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reload   Eq.1 = %.3f (snapshot: %d bytes)\n", again.Score, snapshotSize)
}
