package qec

// Tests for the serving-path additions: concurrent-safe Build, the expansion
// cache, and request coalescing at the Engine level. The HTTP layer on top is
// tested in internal/server.

import (
	"errors"
	"sync"
	"testing"
)

// ambiguousEngine builds a small corpus where "apple" has two senses, enough
// for Expand to produce distinct per-cluster queries.
func ambiguousEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	e := NewEngine(append([]Option{WithSeed(7)}, opts...)...)
	fruit := []string{"orchard harvest", "pie cider", "tree juice", "crop farm"}
	tech := []string{"iphone launch", "store retail", "laptop software", "stock shares"}
	for i := 0; i < 4; i++ {
		e.AddText("", "apple fruit "+fruit[i])
		e.AddText("", "apple company "+tech[i])
	}
	return e
}

func TestBuildConcurrent(t *testing.T) {
	e := ambiguousEngine(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Build()
			if n := len(e.Search("apple", 0)); n != 8 {
				t.Errorf("Search after concurrent Build: %d results, want 8", n)
			}
		}()
	}
	wg.Wait()
}

func TestBuildRearmsAfterMutation(t *testing.T) {
	e := ambiguousEngine(t)
	e.Build()
	before := len(e.Search("apple", 0))
	e.AddText("", "apple banana smoothie")
	if got := len(e.Search("apple", 0)); got != before+1 {
		t.Fatalf("Search after AddText = %d results, want %d (Build did not re-arm)", got, before+1)
	}
}

func TestExpansionCacheHitReturnsSharedResult(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	opts := ExpandOptions{K: 2}
	first, err := e.Expand("apple", opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Expand("apple", opts)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("second Expand should return the cached *Expansion")
	}
	// Normalization: spacing and case differences share the entry.
	third, err := e.Expand("  APPLE  ", opts)
	if err != nil {
		t.Fatal(err)
	}
	if third != first {
		t.Fatal("normalized query variants should share a cache entry")
	}
	st := e.CacheStats()
	if st.Computations != 1 {
		t.Fatalf("computations = %d; want 1", st.Computations)
	}
	if st.Hits < 2 || st.HitRate() <= 0 {
		t.Fatalf("hits = %d, rate = %v; want >= 2 hits", st.Hits, st.HitRate())
	}
	// Different options must not share an entry.
	if _, err := e.Expand("apple", ExpandOptions{K: 2, Unweighted: true}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Computations != 2 {
		t.Fatalf("computations after option change = %d; want 2", st.Computations)
	}
}

func TestExpansionCacheInvalidatedByMutation(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	first, err := e.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.AddText("", "apple cider vinegar")
	second, err := e.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("mutation must invalidate cached expansions")
	}
	if st := e.CacheStats(); st.Computations != 2 {
		t.Fatalf("computations = %d; want 2 (recompute after mutation)", st.Computations)
	}
}

func TestExpandCoalescingConcurrent(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	e.Build()
	const callers = 32
	var wg sync.WaitGroup
	results := make([]*Expansion, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			exp, err := e.Expand("apple", ExpandOptions{K: 2})
			if err != nil {
				t.Errorf("Expand: %v", err)
				return
			}
			results[i] = exp
		}(i)
	}
	close(start)
	wg.Wait()
	if st := e.CacheStats(); st.Computations != 1 {
		t.Fatalf("computations = %d; want exactly 1 across %d concurrent callers", st.Computations, callers)
	}
	for i, r := range results {
		if r == nil || r != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

func TestExpandErrorSentinels(t *testing.T) {
	e := ambiguousEngine(t)
	if _, err := e.Expand("zzznope", ExpandOptions{}); !errors.Is(err, ErrNoResults) {
		t.Fatalf("err = %v; want ErrNoResults", err)
	}
	// "a" is a stopword-free single letter the Simple analyzer drops via its
	// minimum-length filter, so the query parses to zero terms.
	if _, err := e.Expand("a", ExpandOptions{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("err = %v; want ErrEmptyQuery", err)
	}
}

func TestExpandErrorsNotCached(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	for i := 0; i < 2; i++ {
		if _, err := e.Expand("zzznope", ExpandOptions{K: 2}); err == nil {
			t.Fatal("want error for no-result query")
		}
	}
	st := e.CacheStats()
	if st.Entries != 0 {
		t.Fatalf("entries = %d; errors must not be cached", st.Entries)
	}
	if st.Computations != 2 {
		t.Fatalf("computations = %d; want 2 (error path recomputes)", st.Computations)
	}
}

func TestCacheStatsZeroWithoutCache(t *testing.T) {
	e := ambiguousEngine(t)
	if _, err := e.Expand("apple", ExpandOptions{K: 2}); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Capacity != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("uncached engine should report empty cache stats, got %+v", st)
	}
	if st.Computations != 1 {
		t.Fatalf("computations = %d; want 1 (counted even without cache)", st.Computations)
	}
}

// TestExpandQualityModesDeterministic is the engine-level serving-vs-exact
// determinism contract: for a fixed seed, each quality mode produces an
// identical Expansion on every run, and the two modes are cached under
// distinct keys (an explicit mode never serves the other mode's entry).
func TestExpandQualityModesDeterministic(t *testing.T) {
	run := func(q Quality) *Expansion {
		e := ambiguousEngine(t)
		exp, err := e.Expand("apple", ExpandOptions{K: 2, Quality: q})
		if err != nil {
			t.Fatal(err)
		}
		return exp
	}
	sameExpansion := func(label string, a, b *Expansion) {
		t.Helper()
		if a.Score != b.Score || len(a.Queries) != len(b.Queries) {
			t.Fatalf("%s: score %v vs %v, %d vs %d queries",
				label, a.Score, b.Score, len(a.Queries), len(b.Queries))
		}
		for i := range a.Queries {
			aq, bq := a.Queries[i], b.Queries[i]
			if aq.F != bq.F || len(aq.Terms) != len(bq.Terms) {
				t.Fatalf("%s: query %d diverges (%v vs %v)", label, i, aq, bq)
			}
			for j := range aq.Terms {
				if aq.Terms[j] != bq.Terms[j] {
					t.Fatalf("%s: query %d term %d: %q vs %q",
						label, i, j, aq.Terms[j], bq.Terms[j])
				}
			}
		}
		for i := range a.Clusters {
			if len(a.Clusters[i]) != len(b.Clusters[i]) {
				t.Fatalf("%s: cluster %d size diverges", label, i)
			}
			for j := range a.Clusters[i] {
				if a.Clusters[i][j] != b.Clusters[i][j] {
					t.Fatalf("%s: cluster %d member %d diverges", label, i, j)
				}
			}
		}
	}
	for _, q := range []Quality{QualityExact, QualityServing} {
		ref := run(q)
		for i := 0; i < 2; i++ {
			sameExpansion(q.String(), ref, run(q))
		}
	}

	// Distinct cache keys per mode: with a cache attached, requesting the
	// two modes back to back computes twice (no cross-mode cache hit).
	e := ambiguousEngine(t, WithExpansionCache(8))
	if _, err := e.Expand("apple", ExpandOptions{K: 2, Quality: QualityExact}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Expand("apple", ExpandOptions{K: 2, Quality: QualityServing}); err != nil {
		t.Fatal(err)
	}
	if got := e.CacheStats().Computations; got != 2 {
		t.Fatalf("computations = %d; want 2 (quality must be part of the cache key)", got)
	}
}

// TestParseQuality pins the wire names accepted for the quality knob.
func TestParseQuality(t *testing.T) {
	cases := []struct {
		in   string
		want Quality
		ok   bool
	}{
		{"", QualityExact, true},
		{"exact", QualityExact, true},
		{"  Exact ", QualityExact, true},
		{"serving", QualityServing, true},
		{"SERVING", QualityServing, true},
		{"fast", QualityExact, false},
	}
	for _, tc := range cases {
		got, ok := ParseQuality(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseQuality(%q) = %v,%v; want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
