package qec

// Tests for the serving-path additions: concurrent-safe Build, the expansion
// cache, and request coalescing at the Engine level. The HTTP layer on top is
// tested in internal/server.

import (
	"errors"
	"sync"
	"testing"
)

// ambiguousEngine builds a small corpus where "apple" has two senses, enough
// for Expand to produce distinct per-cluster queries.
func ambiguousEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	e := NewEngine(append([]Option{WithSeed(7)}, opts...)...)
	fruit := []string{"orchard harvest", "pie cider", "tree juice", "crop farm"}
	tech := []string{"iphone launch", "store retail", "laptop software", "stock shares"}
	for i := 0; i < 4; i++ {
		e.AddText("", "apple fruit "+fruit[i])
		e.AddText("", "apple company "+tech[i])
	}
	return e
}

func TestBuildConcurrent(t *testing.T) {
	e := ambiguousEngine(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Build()
			if n := len(e.Search("apple", 0)); n != 8 {
				t.Errorf("Search after concurrent Build: %d results, want 8", n)
			}
		}()
	}
	wg.Wait()
}

func TestBuildRearmsAfterMutation(t *testing.T) {
	e := ambiguousEngine(t)
	e.Build()
	before := len(e.Search("apple", 0))
	e.AddText("", "apple banana smoothie")
	if got := len(e.Search("apple", 0)); got != before+1 {
		t.Fatalf("Search after AddText = %d results, want %d (Build did not re-arm)", got, before+1)
	}
}

func TestExpansionCacheHitReturnsSharedResult(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	opts := ExpandOptions{K: 2}
	first, err := e.Expand("apple", opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Expand("apple", opts)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("second Expand should return the cached *Expansion")
	}
	// Normalization: spacing and case differences share the entry.
	third, err := e.Expand("  APPLE  ", opts)
	if err != nil {
		t.Fatal(err)
	}
	if third != first {
		t.Fatal("normalized query variants should share a cache entry")
	}
	st := e.CacheStats()
	if st.Computations != 1 {
		t.Fatalf("computations = %d; want 1", st.Computations)
	}
	if st.Hits < 2 || st.HitRate() <= 0 {
		t.Fatalf("hits = %d, rate = %v; want >= 2 hits", st.Hits, st.HitRate())
	}
	// Different options must not share an entry.
	if _, err := e.Expand("apple", ExpandOptions{K: 2, Unweighted: true}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Computations != 2 {
		t.Fatalf("computations after option change = %d; want 2", st.Computations)
	}
}

func TestExpansionCacheInvalidatedByMutation(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	first, err := e.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.AddText("", "apple cider vinegar")
	second, err := e.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("mutation must invalidate cached expansions")
	}
	if st := e.CacheStats(); st.Computations != 2 {
		t.Fatalf("computations = %d; want 2 (recompute after mutation)", st.Computations)
	}
}

func TestExpandCoalescingConcurrent(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	e.Build()
	const callers = 32
	var wg sync.WaitGroup
	results := make([]*Expansion, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			exp, err := e.Expand("apple", ExpandOptions{K: 2})
			if err != nil {
				t.Errorf("Expand: %v", err)
				return
			}
			results[i] = exp
		}(i)
	}
	close(start)
	wg.Wait()
	if st := e.CacheStats(); st.Computations != 1 {
		t.Fatalf("computations = %d; want exactly 1 across %d concurrent callers", st.Computations, callers)
	}
	for i, r := range results {
		if r == nil || r != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

func TestExpandErrorSentinels(t *testing.T) {
	e := ambiguousEngine(t)
	if _, err := e.Expand("zzznope", ExpandOptions{}); !errors.Is(err, ErrNoResults) {
		t.Fatalf("err = %v; want ErrNoResults", err)
	}
	// "a" is a stopword-free single letter the Simple analyzer drops via its
	// minimum-length filter, so the query parses to zero terms.
	if _, err := e.Expand("a", ExpandOptions{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("err = %v; want ErrEmptyQuery", err)
	}
}

func TestExpandErrorsNotCached(t *testing.T) {
	e := ambiguousEngine(t, WithExpansionCache(8))
	for i := 0; i < 2; i++ {
		if _, err := e.Expand("zzznope", ExpandOptions{K: 2}); err == nil {
			t.Fatal("want error for no-result query")
		}
	}
	st := e.CacheStats()
	if st.Entries != 0 {
		t.Fatalf("entries = %d; errors must not be cached", st.Entries)
	}
	if st.Computations != 2 {
		t.Fatalf("computations = %d; want 2 (error path recomputes)", st.Computations)
	}
}

func TestCacheStatsZeroWithoutCache(t *testing.T) {
	e := ambiguousEngine(t)
	if _, err := e.Expand("apple", ExpandOptions{K: 2}); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Capacity != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("uncached engine should report empty cache stats, got %+v", st)
	}
	if st.Computations != 1 {
		t.Fatalf("computations = %d; want 1 (counted even without cache)", st.Computations)
	}
}
