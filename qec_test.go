package qec

import (
	"strings"
	"testing"
)

func seedEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(WithSeed(7))
	fruit := []string{
		"apple fruit orchard juice harvest tree",
		"apple fruit pie bake cider orchard",
		"apple fruit tree grove picking season",
		"apple fruit juice press cider mill",
	}
	tech := []string{
		"apple iphone store launch event keynote",
		"apple computer mac laptop software store",
		"apple software developer mac xcode release",
		"apple store retail flagship opening glass",
		"apple iphone mac ipad lineup store",
	}
	for _, b := range fruit {
		e.AddText("", b)
	}
	for _, b := range tech {
		e.AddText("", b)
	}
	return e
}

func TestEngineSearch(t *testing.T) {
	e := seedEngine(t)
	res := e.Search("apple fruit", 0)
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	res = e.Search("apple", 3)
	if len(res) != 3 {
		t.Errorf("topK=3 returned %d", len(res))
	}
}

func TestEngineExpandClassifiesSenses(t *testing.T) {
	e := seedEngine(t)
	exp, err := e.Expand("apple", ExpandOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Queries) != 2 {
		t.Fatalf("got %d expanded queries, want 2", len(exp.Queries))
	}
	if exp.Score <= 0.5 {
		t.Errorf("Eq.1 score = %v, want > 0.5 on separable senses", exp.Score)
	}
	for _, q := range exp.Queries {
		if q.Terms[0] != "apple" {
			t.Errorf("expanded query %v lost the seed term", q.Terms)
		}
		if q.F <= 0 {
			t.Errorf("query %v has F = %v", q.Terms, q.F)
		}
	}
	// The two queries must be different.
	if strings.Join(exp.Queries[0].Terms, " ") == strings.Join(exp.Queries[1].Terms, " ") {
		t.Error("both expanded queries are identical")
	}
}

func TestEngineExpandMethods(t *testing.T) {
	for _, m := range []Method{ISKR, PEBC, DeltaF} {
		e := seedEngine(t)
		exp, err := e.Expand("apple", ExpandOptions{K: 2, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if exp.Score <= 0 {
			t.Errorf("%v: score = %v", m, exp.Score)
		}
	}
}

func TestMethodString(t *testing.T) {
	if ISKR.String() != "ISKR" || PEBC.String() != "PEBC" || DeltaF.String() != "DeltaF" {
		t.Error("Method.String wrong")
	}
}

func TestEngineExpandErrors(t *testing.T) {
	e := seedEngine(t)
	if _, err := e.Expand("", ExpandOptions{}); err == nil {
		t.Error("empty query should error")
	}
	if _, err := e.Expand("zzznope", ExpandOptions{}); err == nil {
		t.Error("no-result query should error")
	}
}

func TestEngineAddProduct(t *testing.T) {
	e := NewEngine()
	id := e.AddProduct("Canon PowerShot", []Triplet{
		{Entity: "canonproducts", Attribute: "category", Value: "camera"},
	})
	if e.Len() != 1 || e.Get(id) == nil {
		t.Fatal("AddProduct failed")
	}
	res := e.Search("canonproducts:category:camera", 0)
	if len(res) != 1 {
		t.Errorf("composite search got %d results", len(res))
	}
}

func TestEngineRebuildAfterAdd(t *testing.T) {
	e := NewEngine()
	e.AddText("", "alpha beta")
	if len(e.Search("alpha", 0)) != 1 {
		t.Fatal("first search")
	}
	e.AddText("", "alpha gamma")
	if len(e.Search("alpha", 0)) != 2 {
		t.Error("index not rebuilt after post-Build add")
	}
}

func TestEngineWithStemming(t *testing.T) {
	e := NewEngine(WithStemming())
	e.AddText("", "the players were skating")
	if len(e.Search("player", 0)) != 1 {
		t.Error("stemming engine should match 'player' to 'players'")
	}
}

func TestEngineUnweighted(t *testing.T) {
	e := seedEngine(t)
	exp, err := e.Expand("apple", ExpandOptions{K: 2, Unweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Score <= 0 {
		t.Errorf("unweighted score = %v", exp.Score)
	}
}

func TestEngineExpandDeterministic(t *testing.T) {
	a, _ := seedEngine(t).Expand("apple", ExpandOptions{K: 2})
	b, _ := seedEngine(t).Expand("apple", ExpandOptions{K: 2})
	if a.Score != b.Score || len(a.Queries) != len(b.Queries) {
		t.Fatal("nondeterministic expansion")
	}
	for i := range a.Queries {
		if strings.Join(a.Queries[i].Terms, " ") != strings.Join(b.Queries[i].Terms, " ") {
			t.Fatal("nondeterministic query terms")
		}
	}
}
