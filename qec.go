package qec

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/search"
)

// Re-exported data types. External users cannot import the internal
// packages directly; these aliases are the public names.
type (
	// Document is one searchable unit (text or structured).
	Document = document.Document
	// Triplet is a structured (entity:attribute:value) feature.
	Triplet = document.Triplet
	// DocID identifies a document within an engine.
	DocID = document.DocID
	// Result is one ranked search hit.
	Result = search.Result
	// Query is a keyword query (a set of normalized terms).
	Query = search.Query
)

// Method selects the expansion algorithm.
type Method int

const (
	// ISKR is iterative single-keyword refinement (paper Section 3) — the
	// default; best quality in the paper's experiments.
	ISKR Method = iota
	// PEBC is partial elimination based convergence (Section 4) — faster
	// on large result sets, slightly lower quality.
	PEBC
	// DeltaF is the exact-but-slow ISKR variant whose keyword values are
	// delta F-measures (the paper's "F-measure" comparison method).
	DeltaF
	// ORExpansion generates expanded queries under OR semantics (the
	// paper's appendix problem): keywords whose union of results covers the
	// cluster. The returned queries stand alone (they do not include the
	// original query's terms).
	ORExpansion
)

// String names the method.
func (m Method) String() string {
	switch m {
	case PEBC:
		return "PEBC"
	case DeltaF:
		return "DeltaF"
	case ORExpansion:
		return "OR-ISKR"
	default:
		return "ISKR"
	}
}

// Engine is the top-level façade: a corpus, its index, and the expansion
// pipeline. Not safe for concurrent mutation; safe for concurrent reads
// after Build.
type Engine struct {
	corpus   *document.Corpus
	analyzer *analysis.Analyzer
	idx      *index.Index
	eng      *search.Engine
	seed     int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithStemming switches to the full prose pipeline (lowercase, stopwords,
// Porter stemmer). The default pipeline skips stemming so structured feature
// values round-trip exactly.
func WithStemming() Option {
	return func(e *Engine) { e.analyzer = analysis.Standard() }
}

// WithSeed fixes the random seed used by clustering and PEBC (default 1).
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.seed = seed }
}

// NewEngine returns an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		corpus:   document.NewCorpus(),
		analyzer: analysis.Simple(),
		seed:     1,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// AddText adds a prose document and returns its ID. Must be called before
// Build.
func (e *Engine) AddText(title, body string) DocID {
	e.idx = nil
	return e.corpus.AddText(title, body)
}

// AddProduct adds a structured document with feature triplets and returns
// its ID. Must be called before Build.
func (e *Engine) AddProduct(title string, triplets []Triplet) DocID {
	e.idx = nil
	return e.corpus.AddStructured(title, triplets)
}

// Len returns the number of documents.
func (e *Engine) Len() int { return e.corpus.Len() }

// Get returns a document by ID (nil when out of range).
func (e *Engine) Get(id DocID) *Document { return e.corpus.Get(id) }

// Build indexes the corpus. It is called implicitly by Search and Expand
// when needed; call it explicitly to control when the cost is paid.
func (e *Engine) Build() {
	if e.idx == nil {
		e.idx = index.Build(e.corpus, e.analyzer)
		e.eng = search.NewEngine(e.idx)
	}
}

// Search runs a keyword query (AND semantics) and returns results ranked by
// TF-IDF. topK <= 0 returns all results.
func (e *Engine) Search(raw string, topK int) []Result {
	e.Build()
	return e.eng.Search(search.ParseQuery(e.idx, raw), search.And, topK)
}

// Save writes the engine's index and corpus to w (gob format), so large
// corpora need not be re-indexed on every start.
func (e *Engine) Save(w io.Writer) error {
	e.Build()
	return e.idx.Save(w)
}

// LoadEngine restores an engine previously written by Save. Options must
// reproduce the original analyzer configuration (pass WithStemming if the
// saved engine used it).
func LoadEngine(r io.Reader, opts ...Option) (*Engine, error) {
	e := NewEngine(opts...)
	idx, err := index.Load(r, e.analyzer)
	if err != nil {
		return nil, err
	}
	e.corpus = idx.Corpus()
	e.idx = idx
	e.eng = search.NewEngine(idx)
	return e, nil
}

// ExpandOptions configures Expand.
type ExpandOptions struct {
	// K is the maximum number of clusters / expanded queries (the
	// user-specified granularity of Section 1). 0 means 3.
	K int
	// TopK considers only the top-ranked results (the paper uses 30 for
	// large result sets). 0 means all results.
	TopK int
	// Method selects the algorithm (default ISKR).
	Method Method
	// Unweighted disables rank-weighted precision/recall.
	Unweighted bool
	// Parallel expands the clusters concurrently (one goroutine each).
	// Results are identical to the sequential run.
	Parallel bool
	// Interleave alternates expansion and cluster re-assignment (the
	// paper's future-work "interweaving" idea) for up to this many rounds;
	// 0 disables it.
	Interleave int
}

// ExpandedQuery is one expanded query with its quality against its cluster.
type ExpandedQuery struct {
	// Terms are the query keywords (the original query's terms first).
	Terms []string
	// Cluster is the ordinal of the cluster this query targets.
	Cluster int
	// Precision, Recall and F measure the query's results against the
	// cluster (rank-weighted unless Unweighted was set).
	Precision, Recall, F float64
}

// Expansion is the result of Expand: one query per cluster plus the overall
// Eq. 1 score.
type Expansion struct {
	// Original is the parsed user query.
	Original []string
	// Queries are the expanded queries, one per cluster.
	Queries []ExpandedQuery
	// Clusters holds the document IDs of each cluster.
	Clusters [][]DocID
	// Score is the harmonic mean of the queries' F-measures (Eq. 1).
	Score float64
}

// Expand runs the full pipeline of the paper on a user query: search,
// cluster the results, and generate one expanded query per cluster.
func (e *Engine) Expand(raw string, opts ExpandOptions) (*Expansion, error) {
	e.Build()
	q := search.ParseQuery(e.idx, raw)
	if q.Len() == 0 {
		return nil, errors.New("qec: empty query")
	}
	results := e.eng.Search(q, search.And, opts.TopK)
	if len(results) == 0 {
		return nil, fmt.Errorf("qec: no results for %q", raw)
	}
	k := opts.K
	if k <= 0 {
		k = 3
	}
	universe := search.ResultSet(results)
	var weights eval.Weights
	if !opts.Unweighted {
		weights = eval.Weights{}
		for _, r := range results {
			weights[r.Doc] = r.Score
		}
	}
	cl := cluster.KMeans(e.idx, universe.IDs(), cluster.Options{
		K: k, Seed: e.seed, PlusPlus: true, Restarts: 5,
	})

	var expander core.Expander
	switch opts.Method {
	case PEBC:
		expander = &core.PEBC{Seed: e.seed}
	case DeltaF:
		expander = &core.FMeasureVariant{}
	case ORExpansion:
		expander = &core.ORISKR{}
	default:
		expander = &core.ISKR{}
	}

	var res *core.QECResult
	switch {
	case opts.Interleave > 0:
		it := &core.Interleave{Expander: expander, MaxRounds: opts.Interleave}
		res = it.Run(e.idx, q, cl, weights).Result
	case opts.Parallel:
		res = core.SolveParallel(expander,
			core.BuildProblems(e.idx, q, cl, weights, core.DefaultPoolOptions()))
	default:
		res = core.Solve(expander,
			core.BuildProblems(e.idx, q, cl, weights, core.DefaultPoolOptions()))
	}

	out := &Expansion{
		Original: q.Terms,
		Clusters: cl.Clusters,
		Score:    res.Score,
	}
	for i, ce := range res.Expansions {
		out.Queries = append(out.Queries, ExpandedQuery{
			Terms:     ce.Expanded.Query.Terms,
			Cluster:   i,
			Precision: ce.Expanded.PRF.Precision,
			Recall:    ce.Expanded.PRF.Recall,
			F:         ce.Expanded.PRF.F,
		})
	}
	return out, nil
}
